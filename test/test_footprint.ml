(* Tests for the static read-footprint analysis: the atoms of
   representative plans, ⊤ escalation (variables, unknown functions,
   atom-cap overflow), lattice operations, and — the property the
   result cache stakes its correctness on — intersection against the
   write deltas real store mutations record. *)

module Store = Mass.Store
module F = Vamana.Footprint

let compile q =
  match Vamana.Compile.compile_query q with
  | Ok plan -> plan
  | Error e -> Alcotest.failf "compile %s: %s" q e

let fp q = F.of_plan (compile q)
let atoms q = F.atoms (fp q)

(* ---- atoms of representative plans ---- *)

let test_step_tags () =
  Alcotest.(check (list string)) "chain of name tests" [ "tag:a"; "tag:b" ]
    (atoms "/child::a/descendant::b");
  Alcotest.(check (list string)) "attribute axis prefixes @" [ "tag:@id"; "tag:b" ]
    (atoms "/descendant::b[attribute::id='x']");
  Alcotest.(check (list string)) "kind tests" [ "tag:#text" ] (atoms "/descendant::text()");
  Alcotest.(check (list string)) "wildcard reads the element class"
    [ "kind:element"; "tag:a" ] (atoms "/child::a/parent::*")

let test_root_is_empty () =
  let f = fp "/" in
  Alcotest.(check bool) "bare document query reads nothing" true (F.is_empty f);
  Alcotest.(check string) "renders as empty" "∅" (F.to_string f);
  Alcotest.(check (list string)) "no atoms" [] (F.atoms f)

let test_string_value_cone () =
  (* comparing an element-emitting operand reads its whole string-value
     cone: a text write anywhere below any [b] must interfere *)
  Alcotest.(check (list string)) "element comparison adds a cone"
    [ "cone:b"; "tag:a"; "tag:b" ]
    (atoms "/child::a[child::b='x']")

let test_position_predicate_is_free () =
  (* [2] is covered by the owning step's test atom: position depends
     only on the candidate set the step already reads *)
  Alcotest.(check (list string)) "positional predicate adds nothing" [ "tag:a" ]
    (atoms "/child::a[2]")

let test_pure_function_stays_bounded () =
  Alcotest.(check (list string)) "count() is pure" [ "cone:b"; "tag:a"; "tag:b" ]
    (atoms "/child::a[count(child::b)=2]")

(* ---- ⊤ escalation ---- *)

let test_atom_cap_overflow_is_top () =
  (* a union touching more than the atom cap collapses to ⊤ — the
     analysis errs upward, never downward *)
  let store = Store.create () in
  let doc = Store.load_string store ~name:"t.xml" "<a/>" in
  let q =
    String.concat "|" (List.init 65 (fun i -> Printf.sprintf "/child::t%d" i))
  in
  match Vamana.Engine.prepare store ~scope:(Some doc.Store.doc_key) q with
  | Error e -> Alcotest.fail e
  | Ok p ->
      Alcotest.(check bool) "65 tag atoms overflow to ⊤" true
        (F.is_top p.Vamana.Engine.prep_footprint);
      Alcotest.(check string) "renders as top" "⊤"
        (F.to_string p.Vamana.Engine.prep_footprint);
      Alcotest.(check (list string)) "atoms" [ "top" ]
        (F.atoms p.Vamana.Engine.prep_footprint)

(* ---- lattice operations ---- *)

let test_union () =
  let a = fp "/child::a" and b = fp "/descendant::b" in
  Alcotest.(check (list string)) "union collects both sides" [ "tag:a"; "tag:b" ]
    (F.atoms (F.union a b));
  Alcotest.(check bool) "union with top is top" true (F.is_top (F.union a F.top));
  Alcotest.(check bool) "union with empty is identity" false
    (F.is_top (F.union a F.empty));
  Alcotest.(check (list string)) "empty is neutral" [ "tag:a" ]
    (F.atoms (F.union F.empty a))

let test_of_plans () =
  Alcotest.(check (list string)) "of_plans unions branches" [ "tag:a"; "tag:b" ]
    (F.atoms (F.of_plans [ compile "/child::a"; compile "/child::b" ]))

(* ---- intersection against real write deltas ---- *)

let deltas_since store e0 =
  match Store.write_deltas store ~since:e0 with
  | Some ds -> ds
  | None -> Alcotest.fail "delta ring lost coverage on a fresh store"

let intersects_any f ds = List.exists (F.intersects f) ds

let test_intersects_element_insert () =
  let store = Store.create () in
  let doc = Store.load_string store ~name:"t.xml" "<a><b>x</b></a>" in
  let root =
    match Store.root_element_key doc store with
    | Some k -> k
    | None -> Alcotest.fail "no root"
  in
  let e0 = Store.epoch store in
  ignore (Store.insert_element store ~parent:root "b" [] None);
  let ds = deltas_since store e0 in
  Alcotest.(check bool) "query reading b interferes" true
    (intersects_any (fp "/descendant::b") ds);
  Alcotest.(check bool) "wildcard reads every element" true
    (intersects_any (fp "/child::a/child::*") ds);
  Alcotest.(check bool) "query reading only c is spared" false
    (intersects_any (fp "/descendant::c") ds);
  Alcotest.(check bool) "text-only query is spared" false
    (intersects_any (fp "/descendant::text()") ds);
  Alcotest.(check bool) "top intersects everything" true (intersects_any F.top ds);
  Alcotest.(check bool) "empty intersects nothing" false (intersects_any F.empty ds)

let test_intersects_text_insert_via_cone () =
  let store = Store.create () in
  let doc = Store.load_string store ~name:"t.xml" "<a><b>x</b></a>" in
  let b =
    match Vamana.Engine.query_doc store doc "/child::a/child::b" with
    | Ok r -> List.hd r.Vamana.Engine.keys
    | Error e -> Alcotest.fail e
  in
  let e0 = Store.epoch store in
  ignore (Store.insert_element store ~parent:b "c" [] (Some "y"));
  let ds = deltas_since store e0 in
  (* the new text changes b's (and a's) string-value: any footprint with
     a cone over an ancestor tag must interfere *)
  Alcotest.(check bool) "cone over b sees the text write" true
    (intersects_any (fp "/child::a[child::b='x']") ds);
  Alcotest.(check bool) "tag-only query on d is spared" false
    (intersects_any (fp "/descendant::d") ds)

let test_intersects_attribute_and_value () =
  let store = Store.create () in
  let doc = Store.load_string store ~name:"t.xml" "<a><b id=\"x\"/></a>" in
  let root =
    match Store.root_element_key doc store with
    | Some k -> k
    | None -> Alcotest.fail "no root"
  in
  let e0 = Store.epoch store in
  ignore (Store.insert_element store ~parent:root "b" [ ("id", "x") ] None);
  let ds = deltas_since store e0 in
  Alcotest.(check bool) "attribute test sees the new @id" true
    (intersects_any (fp "/descendant::b[attribute::id='x']") ds);
  (* the optimizer may turn the predicate into a value-index probe whose
     footprint is the value atom — the insert's value delta must cover it *)
  (match Vamana.Engine.prepare store ~scope:(Some doc.Store.doc_key)
           "/descendant::b[attribute::id='x']"
   with
  | Error e -> Alcotest.fail e
  | Ok p ->
      Alcotest.(check bool) "optimized (value-index) footprint also interferes" true
        (intersects_any p.Vamana.Engine.prep_footprint ds));
  Alcotest.(check bool) "different attribute name is spared" false
    (intersects_any (fp "/descendant::c[attribute::name='x']") ds)

let test_intersects_delete () =
  let store = Store.create () in
  let doc = Store.load_string store ~name:"t.xml" "<a><b>x</b><c/></a>" in
  let b =
    match Vamana.Engine.query_doc store doc "/child::a/child::b" with
    | Ok r -> List.hd r.Vamana.Engine.keys
    | Error e -> Alcotest.fail e
  in
  let e0 = Store.epoch store in
  ignore (Store.delete_subtree store b);
  let ds = deltas_since store e0 in
  Alcotest.(check bool) "deleting b interferes with //b" true
    (intersects_any (fp "/descendant::b") ds);
  Alcotest.(check bool) "deleted text interferes with text readers" true
    (intersects_any (fp "/descendant::text()") ds);
  Alcotest.(check bool) "//c is spared" false (intersects_any (fp "/descendant::c") ds)

(* ---- JSON rendering ---- *)

let test_to_json () =
  let module J = Vamana.Profile.Json in
  (match F.to_json (fp "/child::a[child::b='x']") with
  | J.Obj fields ->
      Alcotest.(check (option bool)) "top flag" (Some false)
        (match List.assoc_opt "top" fields with Some (J.Bool b) -> Some b | _ -> None);
      let strs k =
        match List.assoc_opt k fields with
        | Some (J.Arr l) ->
            Some (List.filter_map (function J.Str s -> Some s | _ -> None) l)
        | _ -> None
      in
      Alcotest.(check (option (list string))) "tags" (Some [ "a"; "b" ]) (strs "tags");
      Alcotest.(check (option (list string))) "cones" (Some [ "b" ]) (strs "cones")
  | _ -> Alcotest.fail "expected an object");
  match F.to_json F.top with
  | J.Obj fields ->
      Alcotest.(check bool) "top json" true
        (List.assoc_opt "top" fields = Some (J.Bool true))
  | _ -> Alcotest.fail "expected an object"

let suite =
  ( "footprint",
    [ Alcotest.test_case "step tags" `Quick test_step_tags;
      Alcotest.test_case "bare / reads nothing" `Quick test_root_is_empty;
      Alcotest.test_case "string-value cone" `Quick test_string_value_cone;
      Alcotest.test_case "positional predicate free" `Quick test_position_predicate_is_free;
      Alcotest.test_case "pure functions bounded" `Quick test_pure_function_stays_bounded;
      Alcotest.test_case "atom cap overflows to top" `Quick test_atom_cap_overflow_is_top;
      Alcotest.test_case "union" `Quick test_union;
      Alcotest.test_case "of_plans" `Quick test_of_plans;
      Alcotest.test_case "intersects: element insert" `Quick test_intersects_element_insert;
      Alcotest.test_case "intersects: text insert via cone" `Quick
        test_intersects_text_insert_via_cone;
      Alcotest.test_case "intersects: attribute and value" `Quick
        test_intersects_attribute_and_value;
      Alcotest.test_case "intersects: delete" `Quick test_intersects_delete;
      Alcotest.test_case "json rendering" `Quick test_to_json ] )
