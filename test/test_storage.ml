(* Tests for the paged buffer-pool storage. *)

open Storage

let test_alloc_read () =
  let p = Pager.create ~pool_pages:4 () in
  let a = Pager.alloc p "a" and b = Pager.alloc p "b" in
  Alcotest.(check string) "read a" "a" (Pager.read p a);
  Alcotest.(check string) "read b" "b" (Pager.read p b);
  Alcotest.(check int) "page count" 2 (Pager.page_count p);
  Alcotest.(check int) "allocations" 2 (Pager.stats p).Stats.allocations;
  Alcotest.(check int) "no physical reads while resident" 0
    (Pager.stats p).Stats.physical_reads

let test_write_and_free () =
  let p = Pager.create () in
  let a = Pager.alloc p 1 in
  Pager.write p a 42;
  Alcotest.(check int) "updated payload" 42 (Pager.read p a);
  Pager.free p a;
  Alcotest.(check int) "freed" 0 (Pager.page_count p);
  Alcotest.check_raises "read after free" (Invalid_argument "Pager: unknown page 0")
    (fun () -> ignore (Pager.read p a))

let test_eviction_counts () =
  let p = Pager.create ~pool_pages:2 () in
  let ids = List.init 3 (fun i -> Pager.alloc p i) in
  (* allocating 3 pages with pool 2 must have evicted one *)
  Alcotest.(check int) "resident bounded" 2 (Pager.resident_count p);
  Alcotest.(check int) "one eviction" 1 (Pager.stats p).Stats.evictions;
  (* dirty page written on eviction *)
  Alcotest.(check int) "dirty writeback" 1 (Pager.stats p).Stats.page_writes;
  (* touching the evicted page is a physical read *)
  let before = (Pager.stats p).Stats.physical_reads in
  ignore (Pager.read p (List.nth ids 0));
  Alcotest.(check int) "miss on evicted page" (before + 1) (Pager.stats p).Stats.physical_reads

let test_lru_order () =
  let p = Pager.create ~pool_pages:2 () in
  let a = Pager.alloc p "a" and b = Pager.alloc p "b" in
  ignore (Pager.read p a);
  (* a is now most recent; allocating c evicts b *)
  let _c = Pager.alloc p "c" in
  let misses_before = (Pager.stats p).Stats.physical_reads in
  ignore (Pager.read p a);
  Alcotest.(check int) "a still resident" misses_before (Pager.stats p).Stats.physical_reads;
  ignore (Pager.read p b);
  Alcotest.(check int) "b was evicted" (misses_before + 1) (Pager.stats p).Stats.physical_reads

let test_hit_ratio () =
  let p = Pager.create ~pool_pages:8 () in
  let a = Pager.alloc p 0 in
  for _ = 1 to 9 do
    ignore (Pager.read p a)
  done;
  let s = Pager.stats p in
  Alcotest.(check int) "logical reads" 9 s.Stats.logical_reads;
  Alcotest.(check (float 1e-9)) "hit ratio 1.0" 1.0 (Stats.hit_ratio s)

let test_flush () =
  let p = Pager.create ~pool_pages:8 () in
  let a = Pager.alloc p 0 in
  Pager.write p a 1;
  Pager.flush p;
  let w = (Pager.stats p).Stats.page_writes in
  Alcotest.(check bool) "flush wrote dirty page" true (w >= 1);
  Pager.flush p;
  Alcotest.(check int) "second flush writes nothing" w (Pager.stats p).Stats.page_writes

let test_stats_diff () =
  let p = Pager.create ~pool_pages:1 () in
  let a = Pager.alloc p 0 and b = Pager.alloc p 1 in
  let snap = Stats.copy (Pager.stats p) in
  ignore (Pager.read p a);
  ignore (Pager.read p b);
  let d = Stats.diff (Pager.stats p) snap in
  Alcotest.(check int) "delta logical" 2 d.Stats.logical_reads;
  Alcotest.(check bool) "delta physical positive" true (d.Stats.physical_reads >= 1)

let test_stats_edges () =
  (* zero reads: the ratio is defined as 1.0, not 0/0 *)
  let s = Stats.create () in
  Alcotest.(check (float 1e-9)) "no reads" 1.0 (Stats.hit_ratio s);
  s.Stats.logical_reads <- 10;
  s.Stats.physical_reads <- 4;
  Alcotest.(check (float 1e-9)) "6 of 10 hit" 0.6 (Stats.hit_ratio s);
  (* reset returns to the zero-read state *)
  Stats.reset s;
  Alcotest.(check int) "reset clears logical" 0 s.Stats.logical_reads;
  Alcotest.(check (float 1e-9)) "post-reset ratio" 1.0 (Stats.hit_ratio s);
  (* a copy is a snapshot: mutating the source must not leak through *)
  s.Stats.logical_reads <- 5;
  let snap = Stats.copy s in
  s.Stats.logical_reads <- 9;
  Alcotest.(check int) "copy frozen" 5 snap.Stats.logical_reads;
  Alcotest.(check int) "diff vs snapshot" 4 (Stats.diff s snap).Stats.logical_reads;
  (* identical snapshots diff to all-zero, whose ratio is again 1.0 *)
  let z = Stats.diff snap (Stats.copy snap) in
  Alcotest.(check int) "zero diff" 0 z.Stats.logical_reads;
  Alcotest.(check (float 1e-9)) "zero-diff ratio" 1.0 (Stats.hit_ratio z)

let test_stats_writeback_fields () =
  (* the durable-backend counters ride through reset/copy/diff like the
     page counters do *)
  let s = Stats.create () in
  Alcotest.(check int) "fresh wb_bytes" 0 s.Stats.write_back_bytes;
  Alcotest.(check int) "fresh fsyncs" 0 s.Stats.fsyncs;
  s.Stats.write_back_bytes <- 4096;
  s.Stats.fsyncs <- 3;
  let snap = Stats.copy s in
  s.Stats.write_back_bytes <- 10240;
  s.Stats.fsyncs <- 5;
  Alcotest.(check int) "copy frozen wb" 4096 snap.Stats.write_back_bytes;
  let d = Stats.diff s snap in
  Alcotest.(check int) "diff wb_bytes" 6144 d.Stats.write_back_bytes;
  Alcotest.(check int) "diff fsyncs" 2 d.Stats.fsyncs;
  Stats.reset s;
  Alcotest.(check int) "reset wb_bytes" 0 s.Stats.write_back_bytes;
  Alcotest.(check int) "reset fsyncs" 0 s.Stats.fsyncs

let test_histogram_interpolation () =
  let open Stats in
  (* 100 observations spread evenly across one bucket (2.5ms, 5ms]:
     interpolation must spread percentiles through the bucket instead of
     snapping every one to the 5ms upper bound *)
  let h = Histogram.create () in
  for i = 1 to 100 do
    Histogram.observe h (0.0025 +. (0.0025 *. float_of_int i /. 100.))
  done;
  let p25 = Histogram.percentile h 25.0 and p75 = Histogram.percentile h 75.0 in
  Alcotest.(check bool) "p25 < p75" true (p25 < p75);
  Alcotest.(check bool) "p25 in lower half" true (p25 < 0.00375);
  Alcotest.(check bool) "p75 in upper half" true (p75 > 0.00375);
  (* clamped to the observed extremes *)
  Alcotest.(check (float 1e-12)) "p100 = max" (Histogram.max_value h)
    (Histogram.percentile h 100.0);
  Alcotest.(check bool) "p1 >= min" true (Histogram.percentile h 1.0 >= Histogram.min_value h);
  (* a singleton reports itself at every percentile *)
  let one = Histogram.create () in
  Histogram.observe one 0.003;
  Alcotest.(check (float 1e-12)) "singleton p50" 0.003 (Histogram.percentile one 50.0);
  Alcotest.(check (float 1e-12)) "singleton p99" 0.003 (Histogram.percentile one 99.0);
  Alcotest.(check (float 1e-12)) "empty" 0.0 (Histogram.percentile (Histogram.create ()) 50.0)

let test_histogram_merge () =
  let open Stats in
  (* merging an empty side is a no-op *)
  let a = Histogram.create () in
  Histogram.observe a 0.001;
  Histogram.observe a 0.004;
  Histogram.merge ~into:a (Histogram.create ());
  Alcotest.(check int) "count unchanged" 2 (Histogram.count a);
  Alcotest.(check (float 1e-12)) "sum unchanged" 0.005 (Histogram.sum a);
  Alcotest.(check (float 1e-12)) "min unchanged" 0.001 (Histogram.min_value a);
  (* merging into an empty histogram copies counts and extremes *)
  let b = Histogram.create () in
  Histogram.merge ~into:b a;
  Alcotest.(check int) "copied count" 2 (Histogram.count b);
  Alcotest.(check (float 1e-12)) "copied min" 0.001 (Histogram.min_value b);
  Alcotest.(check (float 1e-12)) "copied max" 0.004 (Histogram.max_value b);
  (* disjoint ranges: totals add and the extremes span both sides *)
  let lo = Histogram.create () and hi = Histogram.create () in
  for _ = 1 to 10 do
    Histogram.observe lo 1e-5
  done;
  for _ = 1 to 10 do
    Histogram.observe hi 1.0
  done;
  Histogram.merge ~into:lo hi;
  Alcotest.(check int) "merged count" 20 (Histogram.count lo);
  Alcotest.(check (float 1e-12)) "min from low side" 1e-5 (Histogram.min_value lo);
  Alcotest.(check (float 1e-12)) "max from high side" 1.0 (Histogram.max_value lo);
  Alcotest.(check bool) "p25 on the low side" true (Histogram.percentile lo 25.0 < 1e-3);
  Alcotest.(check bool) "p75 on the high side" true (Histogram.percentile lo 75.0 > 0.1)

(* property: under any access pattern, resident pages never exceed pool
   size and hit ratio stays within [0,1] *)
let prop_pool_invariants =
  let gen =
    let open QCheck.Gen in
    let* pool = int_range 1 5 in
    let* npages = int_range 1 10 in
    let* ops = list_size (int_range 1 200) (int_range 0 (npages - 1)) in
    return (pool, npages, ops)
  in
  QCheck.Test.make ~name:"pool never exceeds capacity" ~count:200
    (QCheck.make ~print:(fun (p, n, ops) ->
         Printf.sprintf "pool=%d pages=%d ops=%d" p n (List.length ops))
       gen)
    (fun (pool, npages, ops) ->
      let p = Pager.create ~pool_pages:pool () in
      let ids = Array.init npages (fun i -> Pager.alloc p i) in
      List.iter (fun i -> ignore (Pager.read p ids.(i))) ops;
      let s = Pager.stats p in
      Pager.resident_count p <= pool
      && Stats.hit_ratio s >= 0.0
      && Stats.hit_ratio s <= 1.0
      && List.for_all (fun i -> Pager.read p ids.(i) = i) (List.init npages Fun.id))

(* regression: freeing a dirty resident page must count the pending
   write, matching the accounting evict_one applies *)
let test_free_dirty_counts_write () =
  let p = Pager.create ~pool_pages:4 () in
  let a = Pager.alloc p 1 in
  Pager.flush p;
  let clean_writes = (Pager.stats p).Stats.page_writes in
  Pager.free p a;
  Alcotest.(check int) "freeing a clean page writes nothing" clean_writes
    (Pager.stats p).Stats.page_writes;
  let b = Pager.alloc p 2 in
  Pager.write p b 3;
  let before = (Pager.stats p).Stats.page_writes in
  Pager.free p b;
  Alcotest.(check int) "freeing a dirty page counts its pending write" (before + 1)
    (Pager.stats p).Stats.page_writes

(* free-vs-evict consistency: a dirty page costs exactly one write
   whether it leaves the pool by eviction or by free *)
let test_free_evict_write_parity () =
  let run leave =
    let p = Pager.create ~pool_pages:1 () in
    let a = Pager.alloc p 0 in
    Pager.write p a 1;
    leave p a;
    (Pager.stats p).Stats.page_writes
  in
  let via_evict = run (fun p _ -> ignore (Pager.alloc p 9)) in
  let via_free = run (fun p a -> Pager.free p a) in
  Alcotest.(check int) "same write count either way" via_evict via_free

let suite =
  ( "storage",
    [ Alcotest.test_case "alloc and read" `Quick test_alloc_read;
      Alcotest.test_case "free dirty counts write" `Quick test_free_dirty_counts_write;
      Alcotest.test_case "free/evict write parity" `Quick test_free_evict_write_parity;
      Alcotest.test_case "write and free" `Quick test_write_and_free;
      Alcotest.test_case "eviction counting" `Quick test_eviction_counts;
      Alcotest.test_case "lru order" `Quick test_lru_order;
      Alcotest.test_case "hit ratio" `Quick test_hit_ratio;
      Alcotest.test_case "flush" `Quick test_flush;
      Alcotest.test_case "stats diff" `Quick test_stats_diff;
      Alcotest.test_case "stats edge cases" `Quick test_stats_edges;
      Alcotest.test_case "stats write-back fields" `Quick test_stats_writeback_fields;
      Alcotest.test_case "histogram percentile interpolation" `Quick
        test_histogram_interpolation;
      Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
      QCheck_alcotest.to_alcotest prop_pool_invariants ] )
