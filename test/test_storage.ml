(* Tests for the paged buffer-pool storage. *)

open Storage

let test_alloc_read () =
  let p = Pager.create ~pool_pages:4 () in
  let a = Pager.alloc p "a" and b = Pager.alloc p "b" in
  Alcotest.(check string) "read a" "a" (Pager.read p a);
  Alcotest.(check string) "read b" "b" (Pager.read p b);
  Alcotest.(check int) "page count" 2 (Pager.page_count p);
  Alcotest.(check int) "allocations" 2 (Pager.stats p).Stats.allocations;
  Alcotest.(check int) "no physical reads while resident" 0
    (Pager.stats p).Stats.physical_reads

let test_write_and_free () =
  let p = Pager.create () in
  let a = Pager.alloc p 1 in
  Pager.write p a 42;
  Alcotest.(check int) "updated payload" 42 (Pager.read p a);
  Pager.free p a;
  Alcotest.(check int) "freed" 0 (Pager.page_count p);
  Alcotest.check_raises "read after free" (Invalid_argument "Pager: unknown page 0")
    (fun () -> ignore (Pager.read p a))

let test_eviction_counts () =
  let p = Pager.create ~pool_pages:2 () in
  let ids = List.init 3 (fun i -> Pager.alloc p i) in
  (* allocating 3 pages with pool 2 must have evicted one *)
  Alcotest.(check int) "resident bounded" 2 (Pager.resident_count p);
  Alcotest.(check int) "one eviction" 1 (Pager.stats p).Stats.evictions;
  (* dirty page written on eviction *)
  Alcotest.(check int) "dirty writeback" 1 (Pager.stats p).Stats.page_writes;
  (* touching the evicted page is a physical read *)
  let before = (Pager.stats p).Stats.physical_reads in
  ignore (Pager.read p (List.nth ids 0));
  Alcotest.(check int) "miss on evicted page" (before + 1) (Pager.stats p).Stats.physical_reads

let test_lru_order () =
  let p = Pager.create ~pool_pages:2 () in
  let a = Pager.alloc p "a" and b = Pager.alloc p "b" in
  ignore (Pager.read p a);
  (* a is now most recent; allocating c evicts b *)
  let _c = Pager.alloc p "c" in
  let misses_before = (Pager.stats p).Stats.physical_reads in
  ignore (Pager.read p a);
  Alcotest.(check int) "a still resident" misses_before (Pager.stats p).Stats.physical_reads;
  ignore (Pager.read p b);
  Alcotest.(check int) "b was evicted" (misses_before + 1) (Pager.stats p).Stats.physical_reads

let test_hit_ratio () =
  let p = Pager.create ~pool_pages:8 () in
  let a = Pager.alloc p 0 in
  for _ = 1 to 9 do
    ignore (Pager.read p a)
  done;
  let s = Pager.stats p in
  Alcotest.(check int) "logical reads" 9 s.Stats.logical_reads;
  Alcotest.(check (float 1e-9)) "hit ratio 1.0" 1.0 (Stats.hit_ratio s)

let test_flush () =
  let p = Pager.create ~pool_pages:8 () in
  let a = Pager.alloc p 0 in
  Pager.write p a 1;
  Pager.flush p;
  let w = (Pager.stats p).Stats.page_writes in
  Alcotest.(check bool) "flush wrote dirty page" true (w >= 1);
  Pager.flush p;
  Alcotest.(check int) "second flush writes nothing" w (Pager.stats p).Stats.page_writes

let test_stats_diff () =
  let p = Pager.create ~pool_pages:1 () in
  let a = Pager.alloc p 0 and b = Pager.alloc p 1 in
  let snap = Stats.copy (Pager.stats p) in
  ignore (Pager.read p a);
  ignore (Pager.read p b);
  let d = Stats.diff (Pager.stats p) snap in
  Alcotest.(check int) "delta logical" 2 d.Stats.logical_reads;
  Alcotest.(check bool) "delta physical positive" true (d.Stats.physical_reads >= 1)

(* property: under any access pattern, resident pages never exceed pool
   size and hit ratio stays within [0,1] *)
let prop_pool_invariants =
  let gen =
    let open QCheck.Gen in
    let* pool = int_range 1 5 in
    let* npages = int_range 1 10 in
    let* ops = list_size (int_range 1 200) (int_range 0 (npages - 1)) in
    return (pool, npages, ops)
  in
  QCheck.Test.make ~name:"pool never exceeds capacity" ~count:200
    (QCheck.make ~print:(fun (p, n, ops) ->
         Printf.sprintf "pool=%d pages=%d ops=%d" p n (List.length ops))
       gen)
    (fun (pool, npages, ops) ->
      let p = Pager.create ~pool_pages:pool () in
      let ids = Array.init npages (fun i -> Pager.alloc p i) in
      List.iter (fun i -> ignore (Pager.read p ids.(i))) ops;
      let s = Pager.stats p in
      Pager.resident_count p <= pool
      && Stats.hit_ratio s >= 0.0
      && Stats.hit_ratio s <= 1.0
      && List.for_all (fun i -> Pager.read p ids.(i) = i) (List.init npages Fun.id))

(* regression: freeing a dirty resident page must count the pending
   write, matching the accounting evict_one applies *)
let test_free_dirty_counts_write () =
  let p = Pager.create ~pool_pages:4 () in
  let a = Pager.alloc p 1 in
  Pager.flush p;
  let clean_writes = (Pager.stats p).Stats.page_writes in
  Pager.free p a;
  Alcotest.(check int) "freeing a clean page writes nothing" clean_writes
    (Pager.stats p).Stats.page_writes;
  let b = Pager.alloc p 2 in
  Pager.write p b 3;
  let before = (Pager.stats p).Stats.page_writes in
  Pager.free p b;
  Alcotest.(check int) "freeing a dirty page counts its pending write" (before + 1)
    (Pager.stats p).Stats.page_writes

(* free-vs-evict consistency: a dirty page costs exactly one write
   whether it leaves the pool by eviction or by free *)
let test_free_evict_write_parity () =
  let run leave =
    let p = Pager.create ~pool_pages:1 () in
    let a = Pager.alloc p 0 in
    Pager.write p a 1;
    leave p a;
    (Pager.stats p).Stats.page_writes
  in
  let via_evict = run (fun p _ -> ignore (Pager.alloc p 9)) in
  let via_free = run (fun p a -> Pager.free p a) in
  Alcotest.(check int) "same write count either way" via_evict via_free

let suite =
  ( "storage",
    [ Alcotest.test_case "alloc and read" `Quick test_alloc_read;
      Alcotest.test_case "free dirty counts write" `Quick test_free_dirty_counts_write;
      Alcotest.test_case "free/evict write parity" `Quick test_free_evict_write_parity;
      Alcotest.test_case "write and free" `Quick test_write_and_free;
      Alcotest.test_case "eviction counting" `Quick test_eviction_counts;
      Alcotest.test_case "lru order" `Quick test_lru_order;
      Alcotest.test_case "hit ratio" `Quick test_hit_ratio;
      Alcotest.test_case "flush" `Quick test_flush;
      Alcotest.test_case "stats diff" `Quick test_stats_diff;
      QCheck_alcotest.to_alcotest prop_pool_invariants ] )
