(* Tests for the Vamana_service query-service layer: plan-cache hit/miss
   and LRU eviction, epoch-based result-cache invalidation, the metrics
   registry, and the Lru/Histogram primitives underneath. *)

module Store = Mass.Store
module Service = Vamana_service.Service
module Metrics = Vamana_service.Metrics
module Lru = Vamana_service.Lru
module H = Storage.Stats.Histogram

let base_doc =
  "<site><people><person id='p1'><name>Ada</name><address><city>Turin</city></address></person>\
   <person id='p2'><name>Grace</name><address><city>Arlington</city></address></person>\
   </people></site>"

let setup ?plan_cache_capacity ?result_cache_capacity () =
  let store = Store.create () in
  let doc = Store.load_string store ~name:"t.xml" base_doc in
  let service = Service.create ?plan_cache_capacity ?result_cache_capacity store in
  (store, doc, service)

let keys_of service doc q =
  match Service.query_doc service doc q with
  | Ok o -> o.Service.result.Vamana.Engine.keys
  | Error e -> Alcotest.failf "query %s failed: %s" q e

let counter service = Metrics.counter (Service.metrics service)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* ---- Lru primitive ---- *)

let test_lru_basics () =
  let c = Lru.create ~capacity:2 in
  Alcotest.(check (option string)) "miss on empty" None (Lru.find c 1);
  Alcotest.(check (option (pair int string))) "no eviction below cap" None (Lru.put c 1 "a");
  ignore (Lru.put c 2 "b");
  Alcotest.(check (option string)) "hit" (Some "a") (Lru.find c 1);
  (* 1 is now MRU; inserting 3 must evict 2 *)
  Alcotest.(check (option (pair int string))) "evicts LRU" (Some (2, "b")) (Lru.put c 3 "c");
  Alcotest.(check (option string)) "2 gone" None (Lru.find c 2);
  Alcotest.(check (option string)) "1 kept" (Some "a") (Lru.find c 1);
  Alcotest.(check int) "length" 2 (Lru.length c)

let test_lru_replace_and_remove () =
  let c = Lru.create ~capacity:2 in
  ignore (Lru.put c "k" 1);
  Alcotest.(check (option (pair string int))) "replace is not eviction" None (Lru.put c "k" 2);
  Alcotest.(check (option int)) "replaced" (Some 2) (Lru.find c "k");
  Alcotest.(check int) "no duplicate entry" 1 (Lru.length c);
  Lru.remove c "k";
  Alcotest.(check (option int)) "removed" None (Lru.find c "k");
  Lru.remove c "k" (* idempotent *);
  ignore (Lru.put c "a" 1);
  ignore (Lru.put c "b" 2);
  Lru.clear c;
  Alcotest.(check int) "cleared" 0 (Lru.length c)

let test_lru_order () =
  let c = Lru.create ~capacity:3 in
  List.iter (fun (k, v) -> ignore (Lru.put c k v)) [ (1, "a"); (2, "b"); (3, "c") ];
  Alcotest.(check (list (pair int string))) "MRU first" [ (3, "c"); (2, "b"); (1, "a") ]
    (Lru.to_list c);
  ignore (Lru.find c 1);
  Alcotest.(check (list (pair int string))) "find refreshes" [ (1, "a"); (3, "c"); (2, "b") ]
    (Lru.to_list c)

let prop_lru_bounded =
  QCheck.Test.make ~name:"lru never exceeds capacity and keeps newest" ~count:200
    QCheck.(pair (int_range 1 8) (small_list (int_range 0 20)))
    (fun (cap, ops) ->
      let c = Lru.create ~capacity:cap in
      List.iter (fun k -> ignore (Lru.put c k (string_of_int k))) ops;
      Lru.length c <= cap
      && (ops = [] || Lru.find c (List.nth ops (List.length ops - 1)) <> None))

(* ---- Histogram primitive ---- *)

let test_histogram () =
  let h = H.create () in
  Alcotest.(check int) "empty count" 0 (H.count h);
  Alcotest.(check (float 1e-9)) "empty percentile" 0.0 (H.percentile h 99.0);
  List.iter (H.observe h) [ 0.001; 0.002; 0.004; 0.100; 0.2 ];
  Alcotest.(check int) "count" 5 (H.count h);
  Alcotest.(check (float 1e-9)) "sum exact" 0.307 (H.sum h);
  Alcotest.(check (float 1e-9)) "mean exact" (0.307 /. 5.) (H.mean h);
  Alcotest.(check (float 1e-9)) "min exact" 0.001 (H.min_value h);
  Alcotest.(check (float 1e-9)) "max exact" 0.2 (H.max_value h);
  (* percentiles are bucket upper bounds: monotone and bounded by max *)
  let p50 = H.percentile h 50.0 and p95 = H.percentile h 95.0 in
  Alcotest.(check bool) "p50 <= p95" true (p50 <= p95);
  Alcotest.(check bool) "p95 <= max" true (p95 <= H.max_value h);
  Alcotest.(check bool) "p50 sane" true (p50 >= 0.002 && p50 <= 0.005)

let test_histogram_merge () =
  let a = H.create () and b = H.create () in
  List.iter (H.observe a) [ 0.001; 0.01 ];
  List.iter (H.observe b) [ 0.1; 1.0 ];
  H.merge ~into:a b;
  Alcotest.(check int) "merged count" 4 (H.count a);
  Alcotest.(check (float 1e-9)) "merged min" 0.001 (H.min_value a);
  Alcotest.(check (float 1e-9)) "merged max" 1.0 (H.max_value a);
  Alcotest.(check int) "bucket totals" 4
    (List.fold_left (fun acc (_, n) -> acc + n) 0 (H.buckets a))

(* ---- query normalization ---- *)

let test_normalize () =
  Alcotest.(check string) "trims and collapses" "//person/address"
    (Service.normalize "  //person\t /\n address ");
  Alcotest.(check string) "quoted text untouched" "//a[.='x  y']/b"
    (Service.normalize "//a[.='x  y']  /b");
  Alcotest.(check string) "double quotes too" "//a[.=\"p  q\"]"
    (Service.normalize " //a[.=\"p  q\"] ");
  Alcotest.(check string) "token separation survives" "a div b"
    (Service.normalize "a  div\t b");
  Alcotest.(check string) "identity" "//person" (Service.normalize "//person")

(* ---- plan cache ---- *)

let test_plan_cache_hit () =
  let _, doc, service = setup () in
  let r1 = keys_of service doc "//person" in
  Alcotest.(check int) "two persons" 2 (List.length r1);
  Alcotest.(check int) "one compile" 1 (counter service "compiles");
  Alcotest.(check int) "miss recorded" 1 (counter service "plan_cache_misses");
  (* acceptance: a warm repeat must not compile again *)
  let r2 = keys_of service doc "//person" in
  Alcotest.(check int) "compile counter unchanged on repeat" 1 (counter service "compiles");
  Alcotest.(check bool) "same answer" true (List.for_all2 Flex.equal r1 r2)

let test_plan_cache_normalized_hit () =
  let _, doc, service = setup ~result_cache_capacity:0 () in
  ignore (keys_of service doc "//person/address");
  ignore (keys_of service doc "  //person  /  address ");
  Alcotest.(check int) "whitespace variants share one plan" 1 (counter service "compiles");
  Alcotest.(check int) "hit recorded" 1 (counter service "plan_cache_hits")

let test_plan_cache_skips_execution_path_only () =
  (* with the result cache off, a warm query still executes — only the
     front of the pipeline is skipped *)
  let _, doc, service = setup ~result_cache_capacity:0 () in
  ignore (keys_of service doc "//person");
  ignore (keys_of service doc "//person");
  let m = Service.metrics service in
  Alcotest.(check int) "compiled once" 1 (counter service "compiles");
  Alcotest.(check int) "executed twice" 2
    (match Metrics.histogram m "execute" with Some h -> H.count h | None -> 0)

let test_plan_cache_lru_eviction () =
  let _, doc, service = setup ~plan_cache_capacity:2 ~result_cache_capacity:0 () in
  ignore (keys_of service doc "//person");
  ignore (keys_of service doc "//name");
  ignore (keys_of service doc "//address");
  Alcotest.(check int) "eviction counted" 1 (counter service "plan_cache_evictions");
  Alcotest.(check int) "cache bounded" 2 (Service.plan_cache_length service);
  (* //person was LRU and must have been evicted: querying it recompiles *)
  ignore (keys_of service doc "//person");
  Alcotest.(check int) "evicted entry recompiles" 4 (counter service "compiles");
  (* //address stayed: no recompile *)
  ignore (keys_of service doc "//address");
  Alcotest.(check int) "resident entry reused" 4 (counter service "compiles")

let test_error_not_cached () =
  let _, doc, service = setup () in
  (match Service.query_doc service doc "///" with
  | Ok _ -> Alcotest.fail "expected parse error"
  | Error _ -> ());
  Alcotest.(check int) "error counted" 1 (counter service "errors");
  Alcotest.(check int) "nothing cached" 0 (Service.plan_cache_length service)

(* ---- result cache and epoch invalidation ---- *)

let test_result_cache_hit_skips_execution () =
  let _, doc, service = setup () in
  ignore (keys_of service doc "//person");
  let m = Service.metrics service in
  let executes () = match Metrics.histogram m "execute" with Some h -> H.count h | None -> 0 in
  let before = executes () in
  ignore (keys_of service doc "//person");
  Alcotest.(check int) "no execution on result-cache hit" before (executes ());
  Alcotest.(check int) "hit counted" 1 (counter service "result_cache_hits")

let test_result_cache_epoch_invalidation () =
  let store, doc, service = setup () in
  let before = keys_of service doc "//person" in
  Alcotest.(check int) "two persons before" 2 (List.length before);
  (* mutate the store between two identical queries *)
  let people =
    match Vamana.Engine.query_doc store doc "/site/people" with
    | Ok r -> List.hd r.Vamana.Engine.keys
    | Error e -> Alcotest.fail e
  in
  ignore (Store.insert_element store ~parent:people "person" [ ("id", "p3") ] (Some "Hedy"));
  let after = keys_of service doc "//person" in
  Alcotest.(check int) "fresh result, never stale" 3 (List.length after);
  Alcotest.(check int) "stale entry detected" 1 (counter service "result_cache_stale");
  (* plans survive updates; no recompile happened *)
  Alcotest.(check int) "plan cache unaffected by update" 1 (counter service "compiles");
  (* and the fresh answer is cached again under the new epoch *)
  ignore (keys_of service doc "//person");
  Alcotest.(check int) "re-cached under new epoch" 1 (counter service "result_cache_hits")

let test_result_cache_invalidated_by_delete () =
  let store, doc, service = setup () in
  let persons = keys_of service doc "//person" in
  ignore (Store.delete_subtree store (List.hd persons));
  Alcotest.(check int) "delete visible immediately" 1
    (List.length (keys_of service doc "//person"))

let test_result_cache_per_document_invalidation () =
  (* document-scoped entries are keyed to their own document's mutation
     epoch: a write to another document must not evict them *)
  let store = Store.create () in
  let da = Store.load_string store ~name:"a.xml" "<r><x/><x/></r>" in
  let db = Store.load_string store ~name:"b.xml" "<r><x/></r>" in
  let service = Service.create store in
  ignore (keys_of service da "//x");
  ignore (keys_of service da "//x");
  Alcotest.(check int) "warm" 1 (counter service "result_cache_hits");
  let root d =
    match Store.root_element_key d store with
    | Some k -> k
    | None -> Alcotest.fail "document has no root element"
  in
  ignore (Store.insert_element store ~parent:(root db) "x" [] None);
  (match Service.query_doc service da "//x" with
  | Ok o ->
      Alcotest.(check bool) "doc-A entry survives a write to doc B" true
        (o.Service.result_cache = `Hit)
  | Error e -> Alcotest.fail e);
  ignore (Store.insert_element store ~parent:(root da) "x" [] None);
  match Service.query_doc service da "//x" with
  | Ok o ->
      Alcotest.(check bool) "write to doc A invalidates" true
        (o.Service.result_cache = `Stale);
      Alcotest.(check int) "fresh answer" 3 (List.length o.Service.result.Vamana.Engine.keys)
  | Error e -> Alcotest.fail e

(* ---- footprint invalidation (the default protocol) ---- *)

let result_cache_of service doc q =
  match Service.query_doc service doc q with
  | Ok o -> o.Service.result_cache
  | Error e -> Alcotest.failf "query %s failed: %s" q e

let test_footprint_spares_non_interfering_write () =
  let store, doc, service = setup () in
  Alcotest.(check bool) "footprint is the default"
    true
    (Service.invalidation service = `Footprint);
  ignore (keys_of service doc "//person");
  let people =
    match Vamana.Engine.query_doc store doc "/site/people" with
    | Ok r -> List.hd r.Vamana.Engine.keys
    | Error e -> Alcotest.fail e
  in
  (* a tag the query's footprint never reads: provably non-interfering *)
  ignore (Store.insert_element store ~parent:people "pad" [] None);
  Alcotest.(check bool) "entry survives a disjoint write" true
    (result_cache_of service doc "//person" = `Hit);
  Alcotest.(check int) "spared counted" 1 (counter service "result_cache_spared");
  Alcotest.(check int) "no footprint eviction" 0
    (counter service "cache_invalidations_footprint");
  (* the interference check refreshed the token: the next lookup
     fast-paths without consulting deltas again *)
  Alcotest.(check bool) "token refreshed" true
    (result_cache_of service doc "//person" = `Hit);
  Alcotest.(check int) "no second interference check" 1
    (counter service "result_cache_spared");
  (* now a write the footprint does read *)
  ignore (Store.insert_element store ~parent:people "person" [ ("id", "p3") ] None);
  Alcotest.(check bool) "interfering write evicts" true
    (result_cache_of service doc "//person" = `Stale);
  Alcotest.(check int) "eviction attributed to footprint" 1
    (counter service "cache_invalidations_footprint")

let test_epoch_mode_evicts_on_any_write () =
  let store = Store.create () in
  let doc = Store.load_string store ~name:"t.xml" base_doc in
  let service = Service.create ~invalidation:`Epoch store in
  Alcotest.(check bool) "mode recorded" true (Service.invalidation service = `Epoch);
  ignore (keys_of service doc "//person");
  let people =
    match Vamana.Engine.query_doc store doc "/site/people" with
    | Ok r -> List.hd r.Vamana.Engine.keys
    | Error e -> Alcotest.fail e
  in
  ignore (Store.insert_element store ~parent:people "pad" [] None);
  Alcotest.(check bool) "disjoint write still evicts under epoch mode" true
    (result_cache_of service doc "//person" = `Stale);
  Alcotest.(check int) "eviction attributed to epoch" 1
    (counter service "cache_invalidations_epoch");
  Alcotest.(check int) "nothing spared" 0 (counter service "result_cache_spared")

(* a query whose footprint overflows the atom cap to ⊤ (65 distinct
   union branches) — the analysis can promise nothing about it *)
let top_query =
  String.concat "|" (List.init 65 (fun i -> Printf.sprintf "/child::t%d" i))

let test_unscoped_entries_across_documents () =
  (* two documents; unscoped queries (context = the store-wide document
     node) are keyed to the global epoch, so a write to ANY document
     triggers the interference check — and a ⊤ footprint must evict *)
  let store = Store.create () in
  let da = Store.load_string store ~name:"a.xml" "<r><x/><x/></r>" in
  let db = Store.load_string store ~name:"b.xml" "<r><y/></r>" in
  let service = Service.create store in
  let unscoped q =
    match Service.query service ~context:Flex.document q with
    | Ok o -> o
    | Error e -> Alcotest.failf "query %s failed: %s" q e
  in
  ignore (unscoped top_query);
  ignore (unscoped "/descendant::y");
  (* scoped doc-B entry rides along *)
  ignore (keys_of service db "//y");
  let root d =
    match Store.root_element_key d store with
    | Some k -> k
    | None -> Alcotest.fail "document has no root element"
  in
  (* write to doc A only *)
  ignore (Store.insert_element store ~parent:(root da) "x" [] None);
  (* doc B's scoped entry is untouched: its own document never mutated *)
  Alcotest.(check bool) "doc-B scoped entry survives a write to doc A" true
    (result_cache_of service db "//y" = `Hit);
  (* the unscoped ⊤ entry cannot be proven safe: evicted *)
  Alcotest.(check bool) "unscoped ⊤ entry evicted" true
    ((unscoped top_query).Service.result_cache = `Stale);
  Alcotest.(check int) "eviction attributed to ⊤" 1
    (counter service "cache_invalidations_top");
  (* the unscoped bounded entry reads only [y]: the doc-A write to [x]
     is provably disjoint even across documents *)
  Alcotest.(check bool) "unscoped bounded entry spared" true
    ((unscoped "/descendant::y").Service.result_cache = `Hit);
  Alcotest.(check int) "spared counted" 1 (counter service "result_cache_spared");
  (* but a write to doc B's [y] evicts it *)
  ignore (Store.insert_element store ~parent:(root db) "y" [] None);
  let o = unscoped "/descendant::y" in
  Alcotest.(check bool) "interfering write evicts the unscoped entry" true
    (o.Service.result_cache = `Stale);
  Alcotest.(check int) "fresh unscoped answer" 2
    (List.length o.Service.result.Vamana.Engine.keys)

let test_openmetrics_invalidation_family () =
  let store, doc, service = setup () in
  ignore (keys_of service doc "//person");
  let people =
    match Vamana.Engine.query_doc store doc "/site/people" with
    | Ok r -> List.hd r.Vamana.Engine.keys
    | Error e -> Alcotest.fail e
  in
  ignore (Store.insert_element store ~parent:people "person" [] None);
  ignore (keys_of service doc "//person");
  let om = Metrics.to_openmetrics (Service.metrics service) in
  Alcotest.(check bool) "labeled eviction family" true
    (contains ~needle:"vamana_cache_invalidations_total{reason=\"footprint\"} 1" om);
  Alcotest.(check bool) "single TYPE declaration for the family" true
    (contains ~needle:"# TYPE vamana_cache_invalidations counter" om);
  Alcotest.(check bool) "raw counter name not exported" false
    (contains ~needle:"vamana_cache_invalidations_footprint_total" om)

let test_slow_log_reuses_sampled_profile () =
  (* a slow query whose run was already sampled by the health profiler
     must not be re-executed just to attach an operator tree *)
  let store = Store.create () in
  let doc = Store.load_string store ~name:"t.xml" base_doc in
  let service =
    Service.create ~result_cache_capacity:0 ~slow_threshold:0.0 ~sample_every:1 store
  in
  ignore (keys_of service doc "//person");
  ignore (keys_of service doc "//person");
  Alcotest.(check int) "no profiling re-execution" 0 (counter service "slow_profile_rerun");
  Alcotest.(check int) "sampler's report reused" 2 (counter service "slow_profile_reused");
  let slow = Service.slow_queries service in
  Alcotest.(check int) "both runs logged" 2 (List.length slow);
  List.iter
    (fun (sq : Service.slow_query) ->
      Alcotest.(check bool) "operator tree attached" true (sq.Service.sq_profile <> None))
    slow

let test_result_cache_per_context () =
  (* identical query text under two different documents must not share
     cached results *)
  let store = Store.create () in
  let d1 = Store.load_string store ~name:"a.xml" "<r><x/><x/></r>" in
  let d2 = Store.load_string store ~name:"b.xml" "<r><x/></r>" in
  let service = Service.create store in
  Alcotest.(check int) "doc1" 2 (List.length (keys_of service d1 "//x"));
  Alcotest.(check int) "doc2" 1 (List.length (keys_of service d2 "//x"));
  Alcotest.(check int) "no cross-document hit" 0 (counter service "result_cache_hits")

let test_flush () =
  let _, doc, service = setup () in
  ignore (keys_of service doc "//person");
  Service.flush service;
  Alcotest.(check int) "plan cache empty" 0 (Service.plan_cache_length service);
  Alcotest.(check int) "result cache empty" 0 (Service.result_cache_length service);
  ignore (keys_of service doc "//person");
  Alcotest.(check int) "recompiles after flush" 2 (counter service "compiles")

(* ---- store epoch ---- *)

let test_epoch_monotone () =
  let store = Store.create () in
  let e0 = Store.epoch store in
  let doc = Store.load_string store ~name:"t.xml" base_doc in
  let e1 = Store.epoch store in
  Alcotest.(check bool) "load bumps" true (e1 > e0);
  let people =
    match Vamana.Engine.query_doc store doc "/site/people" with
    | Ok r -> List.hd r.Vamana.Engine.keys
    | Error e -> Alcotest.fail e
  in
  let k = Store.insert_element store ~parent:people "person" [] None in
  let e2 = Store.epoch store in
  Alcotest.(check bool) "insert bumps" true (e2 > e1);
  ignore (Store.delete_subtree store k);
  let e3 = Store.epoch store in
  Alcotest.(check bool) "delete bumps" true (e3 > e2);
  ignore (Vamana.Engine.query store ~context:doc.Store.doc_key "//person");
  Alcotest.(check int) "queries do not bump" e3 (Store.epoch store)

(* ---- metrics registry ---- *)

let test_metrics_registry () =
  let m = Metrics.create () in
  Metrics.inc m "a";
  Metrics.inc ~by:4 m "a";
  Metrics.inc m "b";
  Alcotest.(check int) "counter sums" 5 (Metrics.counter m "a");
  Alcotest.(check int) "unknown counter is 0" 0 (Metrics.counter m "zzz");
  Alcotest.(check (list (pair string int))) "sorted listing" [ ("a", 5); ("b", 1) ]
    (Metrics.counters m);
  Metrics.observe m "lat" 0.001;
  Metrics.observe m "lat" 0.003;
  (match Metrics.histogram m "lat" with
  | Some h -> Alcotest.(check int) "histogram count" 2 (H.count h)
  | None -> Alcotest.fail "histogram missing");
  Alcotest.(check (option (float 1e-9))) "ratio" (Some (5. /. 6.))
    (Metrics.ratio m ~hits:"a" ~misses:"b");
  Alcotest.(check (option (float 1e-9))) "ratio of untouched counters" None
    (Metrics.ratio m ~hits:"no_hits" ~misses:"no_misses");
  Metrics.reset m;
  Alcotest.(check int) "reset" 0 (Metrics.counter m "a")

let test_metrics_render () =
  let _, doc, service = setup () in
  ignore (keys_of service doc "//person");
  ignore (keys_of service doc "//person");
  let text = Service.snapshot_text service in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "text mentions %s" needle) true
        (contains ~needle text))
    [ "queries"; "plan_cache"; "result_cache"; "page I/O"; "logical_reads" ];
  let json = Service.snapshot_json service in
  Alcotest.(check bool) "json has counters" true (contains ~needle:"\"counters\"" json);
  Alcotest.(check bool) "json has io" true (contains ~needle:"\"io\"" json)

let test_metrics_json_escaping () =
  (* metric names are normally identifiers we mint, but the registry
     must not produce invalid JSON when handed hostile ones *)
  let m = Metrics.create () in
  Metrics.inc m {|quote"backslash\name|};
  Metrics.inc m "newline\nname";
  Metrics.inc m "control\x01\ttab";
  Metrics.observe m "formfeed\012\rreturn" 0.002;
  let json = Metrics.render_json m in
  match Vamana.Profile.Json.of_string json with
  | Error e -> Alcotest.fail ("render_json produced invalid JSON: " ^ e)
  | Ok v -> (
      match Vamana.Profile.Json.member "counters" v with
      | Some (Vamana.Profile.Json.Obj fields) ->
          Alcotest.(check bool) "hostile name survives round-trip" true
            (List.mem_assoc {|quote"backslash\name|} fields);
          Alcotest.(check bool) "newline name survives round-trip" true
            (List.mem_assoc "newline\nname" fields)
      | _ -> Alcotest.fail "counters object missing")

let test_profiled_query_bypasses_result_cache () =
  let _, doc, service = setup () in
  ignore (keys_of service doc "//person");
  ignore (keys_of service doc "//person");
  Alcotest.(check bool) "warm result cache" true (counter service "result_cache_hits" > 0);
  match Service.query_doc ~profile:true service doc "//person" with
  | Error e -> Alcotest.fail e
  | Ok o ->
      Alcotest.(check bool) "cache read bypassed" true (o.Service.result_cache = `Bypass);
      Alcotest.(check bool) "profile report present" true
        (o.Service.result.Vamana.Engine.profile <> None);
      (* 2: the health sampler profiled the plan's first execution (its
         baseline sample) and this explicit profile run is the second *)
      Alcotest.(check int) "profiled_queries counted" 2
        (counter service "profiled_queries")

(* ---- query_store error reporting ---- *)

let test_query_store_error_names_document () =
  let store = Store.create () in
  ignore (Store.load_string store ~name:"alpha.xml" "<r><x/></r>");
  ignore (Store.load_string store ~name:"beta.xml" "<r><y/></r>");
  (* a valid path query works across both documents *)
  (match Vamana.Engine.query_store store "//x" with
  | Ok rs -> Alcotest.(check int) "both documents queried" 2 (List.length rs)
  | Error e -> Alcotest.fail e);
  (* an unsupported expression fails naming the document it failed on *)
  match Vamana.Engine.query_store store "count(//x)" with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error msg ->
      Alcotest.(check bool) (Printf.sprintf "error names document: %s" msg) true
        (contains ~needle:"alpha.xml" msg)

let suite =
  ( "service",
    [ Alcotest.test_case "lru basics" `Quick test_lru_basics;
      Alcotest.test_case "lru replace and remove" `Quick test_lru_replace_and_remove;
      Alcotest.test_case "lru order" `Quick test_lru_order;
      QCheck_alcotest.to_alcotest prop_lru_bounded;
      Alcotest.test_case "histogram" `Quick test_histogram;
      Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
      Alcotest.test_case "normalization" `Quick test_normalize;
      Alcotest.test_case "plan cache hit skips compile" `Quick test_plan_cache_hit;
      Alcotest.test_case "normalized variants share plans" `Quick test_plan_cache_normalized_hit;
      Alcotest.test_case "warm plan still executes" `Quick test_plan_cache_skips_execution_path_only;
      Alcotest.test_case "plan cache LRU eviction" `Quick test_plan_cache_lru_eviction;
      Alcotest.test_case "errors are not cached" `Quick test_error_not_cached;
      Alcotest.test_case "result cache hit skips execution" `Quick test_result_cache_hit_skips_execution;
      Alcotest.test_case "epoch invalidation on insert" `Quick test_result_cache_epoch_invalidation;
      Alcotest.test_case "epoch invalidation on delete" `Quick test_result_cache_invalidated_by_delete;
      Alcotest.test_case "contexts do not share results" `Quick test_result_cache_per_context;
      Alcotest.test_case "per-document invalidation" `Quick
        test_result_cache_per_document_invalidation;
      Alcotest.test_case "footprint spares non-interfering write" `Quick
        test_footprint_spares_non_interfering_write;
      Alcotest.test_case "epoch mode evicts on any write" `Quick
        test_epoch_mode_evicts_on_any_write;
      Alcotest.test_case "unscoped entries across documents" `Quick
        test_unscoped_entries_across_documents;
      Alcotest.test_case "openmetrics invalidation family" `Quick
        test_openmetrics_invalidation_family;
      Alcotest.test_case "slow log reuses sampled profile" `Quick
        test_slow_log_reuses_sampled_profile;
      Alcotest.test_case "flush" `Quick test_flush;
      Alcotest.test_case "store epoch monotone" `Quick test_epoch_monotone;
      Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
      Alcotest.test_case "metrics rendering" `Quick test_metrics_render;
      Alcotest.test_case "metrics JSON escaping" `Quick test_metrics_json_escaping;
      Alcotest.test_case "profiled query bypasses result cache" `Quick
        test_profiled_query_bypasses_result_cache;
      Alcotest.test_case "query_store error names document" `Quick
        test_query_store_error_names_document ] )
