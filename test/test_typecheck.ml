(* Static checker tests: XPath 1.0 type inference, the constant-folded
   §3.4 comparison verdicts validated differentially against the generic
   evaluator, schema-walk cardinalities with emptiness proofs, and the
   source-span alignment of step notes and diagnostics. *)

module T = Xpath.Typecheck
module P = Xpath.Parser
module Store = Mass.Store

let check_plain src =
  let ast, spans = P.parse_spanned src in
  T.check ~spans ast

let setup () =
  let store, doc = Test_vamana.setup () in
  let schema =
    Mass.Synopsis.schema (Mass.Synopsis.for_store store) ~scope:(Some doc.Store.doc_key)
  in
  (store, doc, schema)

let check_schema schema src =
  let ast, spans = P.parse_spanned src in
  T.check ~schema ~spans ast

let ty_of r = T.ty_to_string r.T.rep_ty

let codes r = List.map (fun (d : T.diagnostic) -> d.T.code) r.T.rep_diagnostics

let has_code code r = List.mem code (codes r)

(* ---- type inference ---- *)

let test_infer_types () =
  let cases =
    [ ("//person", "node-set");
      ("//person/address | //item", "node-set");
      ("count(//person)", "number");
      ("1 + 2 * 3", "number");
      ("string-length('abc')", "number");
      ("concat('a', 'b')", "string");
      ("string(//person)", "string");
      ("substring-before('a-b', '-')", "string");
      ("normalize-space(' x ')", "string");
      ("true()", "boolean");
      ("not(//person)", "boolean");
      ("//person = 'x'", "boolean");
      ("1 < 2", "boolean");
      ("starts-with('ab', 'a')", "boolean") ]
  in
  List.iter
    (fun (src, expected) -> Alcotest.(check string) src expected (ty_of (check_plain src)))
    cases

let test_diagnostic_codes () =
  let _, _, schema = setup () in
  (* node-set = boolean tests existence, not value *)
  Alcotest.(check bool) "lossy-coercion" true
    (has_code "lossy-coercion" (check_schema schema "//person[@id = true()]"));
  (* non-numeric string under a relational comparison is always false *)
  Alcotest.(check bool) "nan relational" true
    (has_code "const-compare" (check_plain "//person['3' < 'x']"));
  (* string literal predicate is constant *)
  Alcotest.(check bool) "const-predicate" true
    (has_code "const-predicate" (check_plain "//person['yes']"));
  (* numeric predicate means position() = n: not constant *)
  Alcotest.(check bool) "positional predicate clean" false
    (has_code "const-predicate" (check_plain "//person[2]"));
  (* non-numeric string fed to arithmetic *)
  Alcotest.(check bool) "nan-arith" true
    (has_code "nan-arith" (check_plain "//person['x' + 1]"));
  (* a function the evaluator would reject is an error, and errors sort first *)
  let r = check_plain "nosuchfn(1)" in
  Alcotest.(check bool) "unknown-function" true (has_code "unknown-function" r);
  (match r.T.rep_diagnostics with
  | d :: _ -> Alcotest.(check string) "errors first" "error" (T.severity_to_string d.T.severity)
  | [] -> Alcotest.fail "expected a diagnostic");
  (* a clean query stays clean *)
  Alcotest.(check (list string)) "clean" [] (codes (check_schema schema "//person/address"))

(* ---- schema walk: per-step cardinalities and emptiness proofs ---- *)

let test_schema_steps () =
  let _, _, schema = setup () in
  let last_note r =
    match List.rev r.T.rep_steps with
    | n :: _ -> n
    | [] -> Alcotest.fail "no step notes"
  in
  let check_last src ~bound ~exact =
    let n = last_note (check_schema schema src) in
    Alcotest.(check int) (src ^ " bound") bound n.T.sn_bound;
    Alcotest.(check bool) (src ^ " exact") exact n.T.sn_exact
  in
  (* exact counts straight off the synopsis: the test document has 3
     person, 2 address, 3 watch, 2 @id under item *)
  check_last "//person" ~bound:3 ~exact:true;
  check_last "//person/address" ~bound:2 ~exact:true;
  check_last "/site/people/person/watches/watch" ~bound:3 ~exact:true;
  check_last "//item/@id" ~bound:2 ~exact:true;
  (* a predicate demotes exactness but keeps the bound *)
  check_last "//person[@id]/address" ~bound:2 ~exact:false;
  (* upward step after a downward chain: bounded by its input *)
  check_last "//address/parent::person" ~bound:2 ~exact:true

let test_schema_emptiness () =
  let _, _, schema = setup () in
  let r = check_schema schema "//nosuchtag/name" in
  Alcotest.(check bool) "empty" true r.T.rep_empty;
  Alcotest.(check bool) "unknown-tag diagnosed" true (has_code "unknown-tag" r);
  (* the offending step is identified *)
  let offender =
    List.find_opt (fun (n : T.step_note) -> n.T.sn_empty) r.T.rep_steps
  in
  (match offender with
  | Some n -> Alcotest.(check int) "offender bound" 0 n.T.sn_bound
  | None -> Alcotest.fail "no empty step note");
  (* a tag that exists but not on this path: empty-step, not unknown-tag *)
  let r2 = check_schema schema "/site/people/item" in
  Alcotest.(check bool) "path-level empty" true r2.T.rep_empty;
  Alcotest.(check bool) "empty-step diagnosed" true (has_code "empty-step" r2);
  Alcotest.(check bool) "not unknown-tag" false (has_code "unknown-tag" r2);
  (* an empty predicate never makes the outer path non-empty claims *)
  let r3 = check_schema schema "//person[nosuchtag]" in
  Alcotest.(check bool) "empty predicate path" true r3.T.rep_empty;
  (* without a schema no emptiness claims are made *)
  Alcotest.(check bool) "no schema, no claim" false (check_plain "//nosuchtag").T.rep_empty

let test_span_alignment () =
  let _, _, schema = setup () in
  let src = "//person[@id]/name" in
  let r = check_schema schema src in
  let texts =
    List.map
      (fun (n : T.step_note) ->
        match n.T.sn_span with
        | Some s -> String.sub src s.P.sp_start (s.P.sp_stop - s.P.sp_start)
        | None -> "?")
      r.T.rep_steps
  in
  (* the // step is noted at the token itself; predicate sub-paths are
     excluded so the list stays 1:1 with the compiled chain *)
  Alcotest.(check (list string)) "step spans" [ "//"; "person[@id]"; "name" ] texts;
  let d = check_schema schema "//person[@id = true()]" in
  match
    List.find_opt (fun (d : T.diagnostic) -> d.T.code = "lossy-coercion") d.T.rep_diagnostics
  with
  | Some { T.span = Some s; _ } ->
      Alcotest.(check string) "diagnostic span" "@id = true()"
        (String.sub "//person[@id = true()]" s.P.sp_start (s.P.sp_stop - s.P.sp_start))
  | _ -> Alcotest.fail "expected a spanned lossy-coercion diagnostic"

(* ---- differential: folded comparison verdicts vs the evaluator ---- *)

let verdict_of r =
  let ends_with suf s =
    let ls = String.length suf and l = String.length s in
    l >= ls && String.sub s (l - ls) ls = suf
  in
  List.fold_left
    (fun acc (d : T.diagnostic) ->
      match acc with
      | Some _ -> acc
      | None ->
          if d.T.code <> "const-compare" then None
          else if ends_with "always true" d.T.message then Some true
          else if ends_with "always false" d.T.message then Some false
          else None)
    None r.T.rep_diagnostics

let test_coercion_corners () =
  let store, doc, schema = setup () in
  (* every expression here folds to a constant boolean; the checker's
     verdict must match what the evaluator actually computes *)
  let corners =
    [ "1 = '1'";
      "1 = 'x'";
      "1 != 'x'";
      "'' = false()";
      "'0' = true()";
      "true() = 1";
      "0 < 'x'";
      "'x' <= 'y'";
      "'2' < '10'";
      "false() < true()";
      "2 >= '2'";
      "//nosuchtag = 'x'";
      "//nosuchtag != 'x'";
      "//nosuchtag = //nosuchtag";
      "//nosuchtag < 1" ]
  in
  List.iter
    (fun src ->
      let claimed =
        match verdict_of (check_schema schema src) with
        | Some b -> b
        | None -> Alcotest.fail (src ^ ": checker made no constant verdict")
      in
      let actual =
        match Vamana.Engine.eval store ~context:doc.Store.doc_key src with
        | Ok (Xpath.Eval.Bool b) -> b
        | Ok _ -> Alcotest.fail (src ^ ": evaluator returned a non-boolean")
        | Error e -> Alcotest.fail (src ^ ": " ^ e)
      in
      Alcotest.(check bool) src actual claimed)
    corners

let test_no_false_constants () =
  let store, doc, schema = setup () in
  (* comparisons whose outcome depends on the data must NOT be folded;
     sanity-check the evaluator agrees they are live *)
  let live =
    [ ("//province = 'Vermont'", true);
      ("//province = 'Nowhere'", false);
      ("count(//person) = 3", true);
      ("//person/@id != 'person0'", true) ]
  in
  List.iter
    (fun (src, expected) ->
      (match verdict_of (check_schema schema src) with
      | Some _ -> Alcotest.fail (src ^ ": checker folded a data-dependent comparison")
      | None -> ());
      match Vamana.Engine.eval store ~context:doc.Store.doc_key src with
      | Ok (Xpath.Eval.Bool b) -> Alcotest.(check bool) src expected b
      | Ok _ -> Alcotest.fail (src ^ ": evaluator returned a non-boolean")
      | Error e -> Alcotest.fail (src ^ ": " ^ e))
    live

(* ---- parser spans: errors carry position and expectation ---- *)

let test_parse_error_spans () =
  let fails src =
    match P.parse src with
    | exception P.Error { pos; _ } ->
        Alcotest.(check bool) (src ^ " pos in range") true (pos >= 0 && pos <= String.length src)
    | _ -> Alcotest.fail (src ^ ": expected a parse error")
  in
  List.iter fails [ "//person["; "//person]"; "child::"; "1 +"; "concat('a'"; "//a/@" ];
  (match P.parse "//person[" with
  | exception (P.Error _ as e) ->
      let caret = Option.value ~default:"" (P.error_caret "//person[" e) in
      Alcotest.(check bool) "caret renders source" true
        (String.length caret > String.length "//person[")
  | _ -> Alcotest.fail "expected a parse error");
  match P.parse "//person[1" with
  | exception P.Error { expected = Some _; _ } -> ()
  | exception P.Error { expected = None; _ } ->
      Alcotest.fail "expected an expectation hint"
  | _ -> Alcotest.fail "expected a parse error"

let suite =
  ( "typecheck",
    [ Alcotest.test_case "type inference" `Quick test_infer_types;
      Alcotest.test_case "diagnostic codes" `Quick test_diagnostic_codes;
      Alcotest.test_case "schema step cardinalities" `Quick test_schema_steps;
      Alcotest.test_case "schema emptiness proofs" `Quick test_schema_emptiness;
      Alcotest.test_case "span alignment" `Quick test_span_alignment;
      Alcotest.test_case "coercion corners vs evaluator" `Quick test_coercion_corners;
      Alcotest.test_case "no false constant verdicts" `Quick test_no_false_constants;
      Alcotest.test_case "parse errors carry spans" `Quick test_parse_error_spans ] )
