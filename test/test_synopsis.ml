(* Path-synopsis tests: DataGuide construction on a handwritten document,
   epoch-keyed caching and the self-verification pass, plus a
   differential harness on an XMark document that validates the schema
   walk's claims — exact per-step cardinalities, chain estimates and
   emptiness proofs — against actual plan execution. *)

open Vamana
module Store = Mass.Store
module Syn = Mass.Synopsis
module T = Xpath.Typecheck
module Ast = Xpath.Ast

let compile src =
  match Compile.compile_query src with Ok p -> p | Error e -> Alcotest.fail e

(* ---- construction on the handwritten auction document ---- *)

let count_of syn target =
  Syn.fold syn ~init:None ~f:(fun acc ~path ~count ->
      if path = target then Some count else acc)

let test_build_counts () =
  let store, _doc = Test_vamana.setup () in
  let syn = Syn.for_store store in
  let expect path count =
    Alcotest.(check (option int))
      (String.concat "/" path) (Some count) (count_of syn path)
  in
  expect [ "#document" ] 1;
  expect [ "#document"; "site" ] 1;
  expect [ "#document"; "site"; "people"; "person" ] 3;
  expect [ "#document"; "site"; "people"; "person"; "@id" ] 3;
  expect [ "#document"; "site"; "people"; "person"; "address" ] 2;
  expect [ "#document"; "site"; "people"; "person"; "watches"; "watch" ] 3;
  expect [ "#document"; "site"; "people"; "person"; "watches"; "watch"; "@open_auction" ] 3;
  expect [ "#document"; "site"; "regions"; "namerica"; "item"; "@id" ] 2;
  expect [ "#document"; "site"; "people"; "person"; "name"; "#text" ] 3;
  (* one node per distinct path: item/name is a different path *)
  expect [ "#document"; "site"; "regions"; "namerica"; "item"; "name"; "#text" ] 2;
  (* totals: every record is summarized exactly once *)
  let summed = Syn.fold syn ~init:0 ~f:(fun acc ~path:_ ~count -> acc + count) in
  Alcotest.(check int) "fold covers all records" (Syn.records syn) summed;
  Alcotest.(check int) "records = store records"
    (Store.statistics store).Store.record_count (Syn.records syn)

let test_cache_and_verify () =
  let store, doc = Test_vamana.setup () in
  let syn = Syn.for_store store in
  (* cached: same epoch, same synopsis, verification passes *)
  Alcotest.(check bool) "cache hit" true (Syn.for_store store == syn);
  (match Syn.verify store syn with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* a store mutation moves the epoch: the cache rebuilds and the stale
     synopsis no longer verifies *)
  let people =
    match Vamana.Engine.query store ~context:doc.Store.doc_key "/site/people" with
    | Ok r -> List.hd r.Vamana.Engine.keys
    | Error e -> Alcotest.fail e
  in
  let _k = Store.insert_element store ~parent:people "person" [] (Some "Zed") in
  let syn' = Syn.for_store store in
  Alcotest.(check bool) "rebuilt" true (syn' != syn);
  Alcotest.(check int) "epoch tracked" (Store.epoch store) (Syn.epoch syn');
  Alcotest.(check (option int)) "new count" (Some 4)
    (count_of syn' [ "#document"; "site"; "people"; "person" ]);
  (match Syn.verify store syn' with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Syn.verify store syn with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "stale synopsis verified"

let test_scope_and_chain () =
  let store, doc = Test_vamana.setup () in
  let syn = Syn.for_store store in
  Alcotest.(check int) "scoped root" 1 (List.length (Syn.roots syn ~scope:(Some doc.Store.doc_key)));
  Alcotest.(check int) "all roots" 1 (List.length (Syn.roots syn ~scope:None));
  let dslash = (Ast.Descendant_or_self, Ast.Node_test, false) in
  let step name = (Ast.Child, Ast.Name_test name, false) in
  (* exact chain counts, root-side first *)
  (match Syn.chain_estimate syn ~scope:(Some doc.Store.doc_key) [ dslash; step "person" ] with
  | Some (3, true) -> ()
  | Some (n, e) -> Alcotest.fail (Printf.sprintf "//person: got (%d, %b)" n e)
  | None -> Alcotest.fail "//person: no claim");
  (match
     Syn.chain_estimate syn ~scope:(Some doc.Store.doc_key)
       [ dslash; (Ast.Child, Ast.Name_test "person", true); step "address" ]
   with
  | Some (2, false) -> () (* a predicate upstream demotes exactness, keeps the bound *)
  | Some (n, e) -> Alcotest.fail (Printf.sprintf "//person[..]/address: got (%d, %b)" n e)
  | None -> Alcotest.fail "//person[..]/address: no claim");
  (* a scope that names no whole document makes no claim *)
  match Syn.chain_estimate syn ~scope:(Some (Flex.child doc.Store.doc_key "b")) [ step "site" ] with
  | None -> ()
  | Some _ -> Alcotest.fail "non-document scope must make no claim"

(* ---- differential harness on XMark ---- *)

let xmark_setup () =
  let store = Store.create () in
  let doc = Xmark.load store 0.15 in
  (store, doc)

(* Execute the UNCLEANED compiled plan with profiling: its context chain
   maps 1:1 to the source location steps, so each checker step note can
   be compared with the operator's observed raw tuple count. *)
let profiled_chain store (doc : Store.doc) src =
  let plan = compile src in
  let ctx = Profile.create store in
  let _keys = Exec.run ~profile:ctx store ~context:doc.Store.doc_key plan in
  let cost = Cost.estimate store ~scope:(Some doc.Store.doc_key) plan in
  let report = Profile.make ctx ~cost ~total_time:0.0 plan in
  (* the profile chain runs root-side (R) first; drop R, reverse the rest *)
  let rec collect (n : Profile.node) = n :: (match n.Profile.context with Some c -> collect c | None -> []) in
  match collect report.Profile.plan with
  | _root :: steps -> List.rev steps (* source order: first location step first *)
  | [] -> Alcotest.fail "empty profile chain"

let test_xmark_step_counts () =
  let store, doc = xmark_setup () in
  let schema = Syn.schema (Syn.for_store store) ~scope:(Some doc.Store.doc_key) in
  let queries =
    [ "//person/address";
      "//watches/watch/ancestor::person";
      "/descendant::name/parent::*/self::person/address";
      "//itemref/following-sibling::price/parent::*";
      "//province[text()='Vermont']/ancestor::person";
      "/site/people/person/watches/watch";
      "//open_auction/price";
      "//person/@id" ]
  in
  let checked = ref 0 in
  List.iter
    (fun src ->
      let ast, spans = Xpath.Parser.parse_spanned src in
      let rep = T.check ~schema ~spans ast in
      let ops = profiled_chain store doc src in
      Alcotest.(check int) (src ^ ": note/op alignment") (List.length ops)
        (List.length rep.T.rep_steps);
      List.iter2
        (fun (note : T.step_note) (op : Profile.node) ->
          let act =
            match op.Profile.act with
            | Some s -> s.Profile.tuples
            | None -> Alcotest.fail (src ^ ": operator did not run")
          in
          if note.T.sn_exact then begin
            incr checked;
            Alcotest.(check int)
              (Printf.sprintf "%s step %s::%s" src (Ast.axis_name note.T.sn_axis)
                 (Ast.node_test_to_string note.T.sn_test))
              act note.T.sn_bound
          end
          else
            (* inexact claims are upper bounds *)
            Alcotest.(check bool)
              (Printf.sprintf "%s bound %d >= actual %d" src note.T.sn_bound act)
              true (note.T.sn_bound >= act))
        rep.T.rep_steps ops)
    queries;
  Alcotest.(check bool) "exact claims were exercised" true (!checked >= 10)

let test_xmark_emptiness () =
  let store, doc = xmark_setup () in
  let schema = Syn.schema (Syn.for_store store) ~scope:(Some doc.Store.doc_key) in
  let check_one src =
    let ast, spans = Xpath.Parser.parse_spanned src in
    let rep = T.check ~schema ~spans ast in
    match Vamana.Engine.query store ~context:doc.Store.doc_key src with
    | Error e -> Alcotest.fail (src ^ ": " ^ e)
    | Ok r ->
        (* soundness: an emptiness proof means execution finds nothing *)
        if rep.T.rep_empty then
          Alcotest.(check int) (src ^ ": proof is sound") 0 (List.length r.Vamana.Engine.keys);
        (* and on this corpus the proof is also complete the other way *)
        if r.Vamana.Engine.keys = [] then
          Alcotest.(check bool) (src ^ ": emptiness detected") true rep.T.rep_empty
  in
  List.iter check_one
    [ "//nosuchtag";
      "//person/nosuchtag";
      "/site/regions/person";
      "//watch/child::*";
      "//person/@nosuchattr";
      "//closed_auction/ancestor::open_auction";
      "//person/address";
      "//people/person" ]

let test_xmark_verify () =
  let store, _doc = xmark_setup () in
  match Syn.verify store (Syn.for_store store) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let suite =
  ( "synopsis",
    [ Alcotest.test_case "build counts" `Quick test_build_counts;
      Alcotest.test_case "cache, epoch, verify" `Quick test_cache_and_verify;
      Alcotest.test_case "scope and chain estimates" `Quick test_scope_and_chain;
      Alcotest.test_case "XMark: step counts vs execution" `Quick test_xmark_step_counts;
      Alcotest.test_case "XMark: emptiness vs execution" `Quick test_xmark_emptiness;
      Alcotest.test_case "XMark: verify" `Quick test_xmark_verify ] )
