(* Unit tests for the durable disk layer: page codec round-trips, WAL
   commit/replay, checkpointing, extent reuse and corruption detection. *)

let tmp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "vamana_disk_test_%d_%d" (Unix.getpid ()) !counter)
    in
    if Sys.file_exists d then () else Unix.mkdir d 0o755;
    d

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let with_dir f =
  let d = tmp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let truncate_file path len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  Unix.ftruncate fd len;
  Unix.close fd

let file_size path = (Unix.stat path).Unix.st_size

let wal_path d = Filename.concat d "store.wal"
let data_path d = Filename.concat d "store.data"

open Storage

(* ---- crc32 ---- *)

let test_crc_known () =
  (* Standard check value: CRC-32("123456789") = 0xCBF43926. *)
  Alcotest.(check int32) "check value" 0xCBF43926l (Crc32.string "123456789");
  Alcotest.(check int32) "empty" 0l (Crc32.string "");
  let s = "hello, durable world" in
  let split = 7 in
  let chained =
    Crc32.sub ~init:(Crc32.sub s ~pos:0 ~len:split) s ~pos:split
      ~len:(String.length s - split)
  in
  Alcotest.(check int32) "chaining" (Crc32.string s) chained

(* ---- binio ---- *)

let test_binio_roundtrip () =
  let b = Buffer.create 64 in
  Binio.w_u8 b 0xab;
  Binio.w_u16 b 0xbeef;
  Binio.w_u32 b 0xdeadbeef;
  Binio.w_u64 b 123456789012345;
  Binio.w_u64 b (-1);
  Binio.w_str b "payload";
  let r = Binio.reader (Buffer.contents b) in
  Alcotest.(check int) "u8" 0xab (Binio.r_u8 r);
  Alcotest.(check int) "u16" 0xbeef (Binio.r_u16 r);
  Alcotest.(check int) "u32" 0xdeadbeef (Binio.r_u32 r);
  Alcotest.(check int) "u64" 123456789012345 (Binio.r_u64 r);
  Alcotest.(check int) "u64 sign" (-1) (Binio.r_u64 r);
  Alcotest.(check string) "str" "payload" (Binio.r_str r);
  Alcotest.(check bool) "at_end" true (Binio.at_end r);
  Alcotest.check_raises "short" Binio.Short (fun () ->
      ignore (Binio.r_u32 (Binio.reader "ab")))

(* ---- basic page round-trips ---- *)

let test_page_roundtrip () =
  with_dir (fun d ->
      let t = Disk.create ~dir:d in
      let p = Disk.pool t "idx" in
      Disk.write_page t p ~id:0 "hello";
      Disk.write_page t p ~id:1 (String.make 9000 'x');
      Disk.write_page t p ~id:2 "";
      Alcotest.(check string) "small" "hello" (Disk.read_page t p ~id:0);
      Alcotest.(check string) "multi-frame" (String.make 9000 'x')
        (Disk.read_page t p ~id:1);
      Alcotest.(check string) "empty" "" (Disk.read_page t p ~id:2);
      (* overwrite goes to a fresh extent but reads back the new image *)
      Disk.write_page t p ~id:0 "world";
      Alcotest.(check string) "overwrite" "world" (Disk.read_page t p ~id:0);
      Alcotest.(check bool) "has" true (Disk.has_page t p ~id:1);
      Disk.free_page t p ~id:1;
      Alcotest.(check bool) "freed" false (Disk.has_page t p ~id:1);
      Disk.close t)

let test_pools_are_disjoint () =
  with_dir (fun d ->
      let t = Disk.create ~dir:d in
      let a = Disk.pool t "a" and b = Disk.pool t "b" in
      Disk.write_page t a ~id:7 "from-a";
      Disk.write_page t b ~id:7 "from-b";
      Alcotest.(check string) "a" "from-a" (Disk.read_page t a ~id:7);
      Alcotest.(check string) "b" "from-b" (Disk.read_page t b ~id:7);
      Alcotest.(check (list int)) "a ids" [ 7 ] (Disk.page_ids t a);
      Disk.close t)

(* ---- durability: checkpoint + reopen ---- *)

let test_checkpoint_reopen () =
  with_dir (fun d ->
      let t = Disk.create ~dir:d in
      let p = Disk.pool t "idx" in
      for i = 0 to 19 do
        Disk.write_page t p ~id:i (Printf.sprintf "page-%d" i)
      done;
      Disk.set_metadata t "meta-blob";
      Disk.checkpoint t ~epoch:3;
      Disk.close t;
      let t = Disk.open_dir ~dir:d in
      let p = Disk.pool t "idx" in
      Alcotest.(check int) "epoch" 3 (Disk.committed_epoch t);
      Alcotest.(check string) "meta" "meta-blob" (Disk.metadata t);
      Alcotest.(check int) "pages" 20 (List.length (Disk.page_ids t p));
      for i = 0 to 19 do
        Alcotest.(check string) "payload" (Printf.sprintf "page-%d" i)
          (Disk.read_page t p ~id:i)
      done;
      Alcotest.(check (option reject)) "no recovery" None (Disk.last_recovery t);
      Disk.close t)

(* ---- durability: WAL replay after a simulated crash ---- *)

(* "Crash" = close the fds without checkpointing; the manifest is stale and
   only the WAL knows about the committed work. *)
let test_wal_replay () =
  with_dir (fun d ->
      let t = Disk.create ~dir:d in
      let p = Disk.pool t "idx" in
      Disk.write_page t p ~id:0 "committed-0";
      Disk.write_page t p ~id:1 "committed-1";
      Disk.set_metadata t "m1";
      Disk.commit t ~epoch:1;
      Disk.write_page t p ~id:1 "committed-1v2";
      Disk.free_page t p ~id:0;
      Disk.set_metadata t "m2";
      Disk.commit t ~epoch:2;
      (* uncommitted tail: must be dropped *)
      Disk.write_page t p ~id:9 "uncommitted";
      Disk.close t;
      let t = Disk.open_dir ~dir:d in
      let p = Disk.pool t "idx" in
      (match Disk.last_recovery t with
      | None -> Alcotest.fail "expected recovery"
      | Some r ->
          Alcotest.(check int) "epoch" 2 r.Disk.rec_epoch;
          Alcotest.(check int) "batches" 2 r.Disk.rec_batches;
          Alcotest.(check bool) "dropped tail" true (r.Disk.rec_dropped_bytes > 0));
      Alcotest.(check int) "epoch" 2 (Disk.committed_epoch t);
      Alcotest.(check string) "meta" "m2" (Disk.metadata t);
      Alcotest.(check string) "page 1" "committed-1v2" (Disk.read_page t p ~id:1);
      Alcotest.(check bool) "page 0 freed" false (Disk.has_page t p ~id:0);
      Alcotest.(check bool) "page 9 dropped" false (Disk.has_page t p ~id:9);
      (* recovery checkpointed: WAL is truncated, reopening again is clean *)
      Alcotest.(check int) "wal truncated" 0 (file_size (wal_path d));
      Disk.close t;
      let t = Disk.open_dir ~dir:d in
      Alcotest.(check (option reject)) "second open clean" None
        (Disk.last_recovery t);
      Disk.close t)

let test_torn_wal_tail () =
  (* Truncate the WAL at every possible byte offset; recovery must always
     land on a consistent committed epoch, never crash, never see garbage. *)
  with_dir (fun d ->
      let t = Disk.create ~dir:d in
      let p = Disk.pool t "idx" in
      Disk.write_page t p ~id:0 "alpha";
      Disk.commit t ~epoch:1;
      Disk.write_page t p ~id:0 "beta";
      Disk.write_page t p ~id:1 "gamma";
      Disk.commit t ~epoch:2;
      Disk.close t;
      let wal = wal_path d in
      let full = file_size wal in
      Alcotest.(check bool) "wal nonempty" true (full > 0);
      let wal_bytes =
        let ic = open_in_bin wal in
        let s = really_input_string ic full in
        close_in ic;
        s
      in
      let manifest = Filename.concat d "store.manifest" in
      let manifest_bytes =
        let ic = open_in_bin manifest in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      in
      let data_bytes_path = data_path d in
      let data_saved =
        let ic = open_in_bin data_bytes_path in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      in
      let restore () =
        let oc = open_out_bin wal in
        output_string oc wal_bytes;
        close_out oc;
        let oc = open_out_bin manifest in
        output_string oc manifest_bytes;
        close_out oc;
        let oc = open_out_bin data_bytes_path in
        output_string oc data_saved;
        close_out oc
      in
      (* sample offsets: every prefix length would be slow at 4 KiB pages;
         probe around record boundaries plus a stride. *)
      let offsets = ref [] in
      let len = String.length wal_bytes in
      let stride = max 1 (len / 97) in
      let o = ref 0 in
      while !o <= len do
        offsets := !o :: !offsets;
        o := !o + stride
      done;
      List.iter
        (fun cut ->
          restore ();
          truncate_file wal cut;
          let t = Disk.open_dir ~dir:d in
          let p = Disk.pool t "idx" in
          let e = Disk.committed_epoch t in
          Alcotest.(check bool)
            (Printf.sprintf "cut=%d epoch valid" cut)
            true (e = 0 || e = 1 || e = 2);
          if e >= 1 then
            Alcotest.(check string)
              (Printf.sprintf "cut=%d page0" cut)
              (if e = 2 then "beta" else "alpha")
              (Disk.read_page t p ~id:0);
          if e = 2 then
            Alcotest.(check string)
              (Printf.sprintf "cut=%d page1" cut)
              "gamma" (Disk.read_page t p ~id:1);
          Disk.close t)
        !offsets)

let test_corrupt_page_fails_loudly () =
  with_dir (fun d ->
      let t = Disk.create ~dir:d in
      let p = Disk.pool t "idx" in
      Disk.write_page t p ~id:0 (String.make 2000 'q');
      Disk.checkpoint t ~epoch:1;
      Disk.close t;
      (* flip a byte inside the stored payload *)
      let path = data_path d in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
      ignore (Unix.lseek fd 600 Unix.SEEK_SET);
      ignore (Unix.write fd (Bytes.of_string "Z") 0 1);
      Unix.close fd;
      let t = Disk.open_dir ~dir:d in
      let p = Disk.pool t "idx" in
      (match Disk.read_page t p ~id:0 with
      | exception Disk.Corrupt _ -> ()
      | _ -> Alcotest.fail "corrupted page must not decode");
      Disk.close t)

let test_corrupt_manifest_rejected () =
  with_dir (fun d ->
      let t = Disk.create ~dir:d in
      let p = Disk.pool t "idx" in
      Disk.write_page t p ~id:0 "x";
      Disk.checkpoint t ~epoch:1;
      Disk.close t;
      let path = Filename.concat d "store.manifest" in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
      ignore (Unix.lseek fd 9 Unix.SEEK_SET);
      ignore (Unix.write fd (Bytes.of_string "\xff") 0 1);
      Unix.close fd;
      (match Disk.open_dir ~dir:d with
      | exception Disk.Corrupt _ -> ()
      | t ->
          Disk.close t;
          Alcotest.fail "corrupted manifest must be rejected"))

(* ---- space management ---- *)

let test_extent_reuse () =
  with_dir (fun d ->
      let t = Disk.create ~dir:d in
      let p = Disk.pool t "idx" in
      let payload = String.make 1000 'a' in
      for i = 0 to 9 do
        Disk.write_page t p ~id:i payload
      done;
      Disk.checkpoint t ~epoch:1;
      (* Rewrite the same pages many times across checkpoints: the file must
         not grow linearly with the number of writes. *)
      for round = 2 to 21 do
        for i = 0 to 9 do
          Disk.write_page t p ~id:i payload
        done;
        Disk.checkpoint t ~epoch:round
      done;
      let frames = Disk.data_frames t in
      Alcotest.(check bool)
        (Printf.sprintf "bounded growth (%d frames)" frames)
        true (frames <= 40);
      Alcotest.(check int) "live" 10 (Disk.live_frames t);
      Disk.close t)

let test_no_overwrite_within_epoch () =
  (* Rewriting a page repeatedly without a checkpoint must not overwrite the
     manifest-pinned extent: crash-recovery to the manifest must still see
     the old image when the WAL tail is lost. *)
  with_dir (fun d ->
      let t = Disk.create ~dir:d in
      let p = Disk.pool t "idx" in
      Disk.write_page t p ~id:0 "stable";
      Disk.checkpoint t ~epoch:1;
      for i = 0 to 50 do
        Disk.write_page t p ~id:0 (Printf.sprintf "volatile-%d" i)
      done;
      (* no commit: simulate crash by discarding the WAL entirely *)
      Disk.close t;
      truncate_file (wal_path d) 0;
      let t = Disk.open_dir ~dir:d in
      let p = Disk.pool t "idx" in
      Alcotest.(check string) "manifest image intact" "stable"
        (Disk.read_page t p ~id:0);
      Disk.close t)

let test_bulk_load () =
  with_dir (fun d ->
      let t = Disk.create ~dir:d in
      let p = Disk.pool t "idx" in
      Disk.begin_bulk t;
      Alcotest.(check bool) "in bulk" true (Disk.in_bulk t);
      for i = 0 to 99 do
        Disk.write_page t p ~id:i (Printf.sprintf "bulk-%d" i)
      done;
      (* bulk writes bypass the WAL *)
      Alcotest.(check int) "wal empty during bulk" 0 (Disk.wal_bytes t);
      Disk.end_bulk t ~epoch:1;
      Disk.close t;
      let t = Disk.open_dir ~dir:d in
      let p = Disk.pool t "idx" in
      Alcotest.(check int) "pages" 100 (List.length (Disk.page_ids t p));
      Alcotest.(check string) "payload" "bulk-42" (Disk.read_page t p ~id:42);
      Disk.close t)

let test_crash_mid_bulk_recovers_to_previous () =
  with_dir (fun d ->
      let t = Disk.create ~dir:d in
      let p = Disk.pool t "idx" in
      Disk.write_page t p ~id:0 "before-bulk";
      Disk.commit t ~epoch:1;
      Disk.close t;
      let t = Disk.open_dir ~dir:d in
      let p = Disk.pool t "idx" in
      Disk.begin_bulk t;
      for i = 100 to 199 do
        Disk.write_page t p ~id:i "half-loaded"
      done;
      (* crash before end_bulk *)
      Disk.close t;
      let t = Disk.open_dir ~dir:d in
      let p = Disk.pool t "idx" in
      Alcotest.(check string) "pre-bulk state" "before-bulk"
        (Disk.read_page t p ~id:0);
      Alcotest.(check int) "bulk pages dropped" 1
        (List.length (Disk.page_ids t p));
      Disk.close t)

let test_abort_bulk () =
  with_dir (fun d ->
      let t = Disk.create ~dir:d in
      let p = Disk.pool t "idx" in
      Disk.write_page t p ~id:0 "keep";
      Disk.commit t ~epoch:1;
      let frames_before = Disk.data_frames t in
      Disk.begin_bulk t;
      Disk.write_page t p ~id:0 "overwritten-in-bulk";
      for i = 1 to 50 do
        Disk.write_page t p ~id:i (Printf.sprintf "bulk-%d" i)
      done;
      Disk.abort_bulk t;
      Alcotest.(check bool) "out of bulk" false (Disk.in_bulk t);
      Alcotest.(check int) "bulk pages gone" 1 (List.length (Disk.page_ids t p));
      Alcotest.(check string) "pre-bulk image restored" "keep"
        (Disk.read_page t p ~id:0);
      Alcotest.(check int) "appended tail dropped" frames_before
        (Disk.data_frames t);
      (* the handle keeps working: later writes commit durably *)
      Disk.write_page t p ~id:1 "after-abort";
      Disk.commit t ~epoch:2;
      Disk.close t;
      let t = Disk.open_dir ~dir:d in
      let p = Disk.pool t "idx" in
      Alcotest.(check int) "pages after reopen" 2
        (List.length (Disk.page_ids t p));
      Alcotest.(check string) "survivor" "keep" (Disk.read_page t p ~id:0);
      Alcotest.(check string) "post-abort write" "after-abort"
        (Disk.read_page t p ~id:1);
      Disk.close t)

let test_pool_cap () =
  with_dir (fun d ->
      let t = Disk.create ~dir:d in
      (* pids are a u8 on disk: a 257th pool would alias pid mod 256 *)
      for i = 0 to 255 do
        ignore (Disk.pool t (Printf.sprintf "pool-%d" i))
      done;
      Alcotest.check_raises "257th pool rejected"
        (Invalid_argument "Disk.pool: at most 256 pools per store") (fun () ->
          ignore (Disk.pool t "pool-256"));
      (* lookup of an existing pool still works at the cap *)
      ignore (Disk.pool t "pool-0");
      Disk.close t)

let test_auto_checkpoint () =
  with_dir (fun d ->
      let saved = !Disk.wal_checkpoint_bytes in
      Fun.protect
        ~finally:(fun () -> Disk.wal_checkpoint_bytes := saved)
        (fun () ->
          Disk.wal_checkpoint_bytes := 4096;
          let t = Disk.create ~dir:d in
          let p = Disk.pool t "idx" in
          let before = (Disk.io t).Disk.checkpoints in
          for i = 1 to 20 do
            Disk.write_page t p ~id:0 (String.make 1024 'w');
            Disk.commit t ~epoch:i
          done;
          Alcotest.(check bool) "auto-checkpointed" true
            ((Disk.io t).Disk.checkpoints > before);
          Alcotest.(check bool) "wal stays bounded" true
            (Disk.wal_bytes t <= 3 * 4096);
          Disk.close t))

let test_io_counters () =
  with_dir (fun d ->
      let t = Disk.create ~dir:d in
      let p = Disk.pool t "idx" in
      Disk.write_page t p ~id:0 "counted";
      Disk.commit t ~epoch:1;
      ignore (Disk.read_page t p ~id:0);
      let io = Disk.io t in
      Alcotest.(check bool) "wal records" true (io.Disk.wal_records >= 3);
      Alcotest.(check bool) "wal bytes" true (io.Disk.wal_bytes_written > 0);
      Alcotest.(check bool) "fsyncs" true (io.Disk.fsyncs >= 1);
      Alcotest.(check int) "data reads" 1 io.Disk.data_reads;
      Alcotest.(check bool) "data writes" true (io.Disk.data_writes >= 1);
      Disk.close t)

let suite =
  ( "disk",
    [
      Alcotest.test_case "crc32 known vectors" `Quick test_crc_known;
      Alcotest.test_case "binio roundtrip" `Quick test_binio_roundtrip;
      Alcotest.test_case "page roundtrip" `Quick test_page_roundtrip;
      Alcotest.test_case "pools disjoint" `Quick test_pools_are_disjoint;
      Alcotest.test_case "checkpoint reopen" `Quick test_checkpoint_reopen;
      Alcotest.test_case "wal replay" `Quick test_wal_replay;
      Alcotest.test_case "torn wal tail" `Quick test_torn_wal_tail;
      Alcotest.test_case "corrupt page fails loudly" `Quick
        test_corrupt_page_fails_loudly;
      Alcotest.test_case "corrupt manifest rejected" `Quick
        test_corrupt_manifest_rejected;
      Alcotest.test_case "extent reuse" `Quick test_extent_reuse;
      Alcotest.test_case "no overwrite within epoch" `Quick
        test_no_overwrite_within_epoch;
      Alcotest.test_case "bulk load" `Quick test_bulk_load;
      Alcotest.test_case "abort bulk" `Quick test_abort_bulk;
      Alcotest.test_case "pool cap" `Quick test_pool_cap;
      Alcotest.test_case "crash mid-bulk" `Quick
        test_crash_mid_bulk_recovers_to_previous;
      Alcotest.test_case "auto checkpoint" `Quick test_auto_checkpoint;
      Alcotest.test_case "io counters" `Quick test_io_counters;
    ] )
