(* Crash-recovery matrix for the file-backed MASS store: clean shutdown,
   kill-before-fsync, torn WAL tails, kill-mid-checkpoint (both orders),
   checksum corruption, and mem-vs-file differential behaviour. *)

module Store = Mass.Store

let tmp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "vamana_recovery_%d_%d" (Unix.getpid ()) !counter)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let with_dir f =
  let d = tmp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let read_bytes path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_bytes path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let truncate_file path len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  Unix.ftruncate fd len;
  Unix.close fd

let wal_path d = Filename.concat d "store.wal"
let data_path d = Filename.concat d "store.data"
let manifest_path d = Filename.concat d "store.manifest"

let tiny_doc = "<r><x a='1'>t</x><y>u</y><!--c--><?p d?></r>"

(* The differential corpus: every major axis and predicate shape. *)
let corpus =
  [ "/site/people/person";
    "//person/address";
    "//person[address]/name";
    "//province[text()='Vermont']/ancestor::person";
    "//watches/watch/ancestor::person";
    "//item//keyword";
    "//person/@id";
    "/site/*/item";
    "//address/following-sibling::*";
    "//category/preceding-sibling::*" ]

let run_query store doc q =
  match Vamana.Engine.query_doc store doc q with
  | Ok r -> List.map Flex.to_string r.Vamana.Engine.keys
  | Error e -> Alcotest.fail (q ^ ": " ^ e)

let corpus_results store doc = List.map (fun q -> run_query store doc q) corpus

let check_corpus_equal msg expected store doc =
  List.iter2
    (fun q exp -> Alcotest.(check (list string)) (msg ^ ": " ^ q) exp (run_query store doc q))
    corpus expected

let build_file_store dir =
  let store = Store.create ~backend:(Store.File { dir }) () in
  let d1 = Xmark.load store ~name:"auction.xml" 0.3 in
  let d2 = Store.load_string store ~name:"tiny.xml" tiny_doc in
  (store, d1, d2)

(* ---- mem/file differential ---- *)

let test_mem_file_differential () =
  with_dir (fun dir ->
      let mem = Store.create () in
      let md = Xmark.load mem ~name:"auction.xml" 0.3 in
      let file, fd, _ = build_file_store dir in
      Alcotest.(check int) "records" (Store.total_records mem)
        (Store.total_records file - Store.subtree_size file
           (Option.get (Store.find_document file "tiny.xml")).Store.doc_key);
      check_corpus_equal "file matches mem" (corpus_results mem md) file fd;
      Store.close file)

(* ---- clean shutdown ---- *)

let test_clean_close_reopen () =
  with_dir (fun dir ->
      let store, d1, _ = build_file_store dir in
      let expected = corpus_results store d1 in
      let records = Store.total_records store in
      let ep = Store.epoch store in
      Store.close store;
      let store = Store.open_file ~dir () in
      Alcotest.(check (option reject)) "no recovery needed" None
        (Store.last_recovery store);
      Alcotest.(check int) "epoch" ep (Store.epoch store);
      Alcotest.(check int) "records" records (Store.total_records store);
      Alcotest.(check int) "documents" 2 (List.length (Store.documents store));
      Store.validate store;
      let d1 = Option.get (Store.find_document store "auction.xml") in
      check_corpus_equal "after reopen" expected store d1;
      Store.close store)

(* ---- crash immediately after create: metadata already durable ---- *)

let test_crash_right_after_create () =
  with_dir (fun dir ->
      let store = Store.create ~backend:(Store.File { dir }) () in
      Store.simulate_crash store;
      (* create checkpoints the (empty) metadata into the manifest, so the
         store is reopenable before any commit ever happened *)
      let store = Store.open_file ~dir () in
      Alcotest.(check int) "no documents" 0 (List.length (Store.documents store));
      Store.validate store;
      let d = Store.load_string store ~name:"tiny.xml" tiny_doc in
      Alcotest.(check bool) "recovered store loads" true
        (Store.get store d.Store.doc_key <> None);
      Store.close store;
      let store = Store.open_file ~dir () in
      Alcotest.(check int) "document survived" 1
        (List.length (Store.documents store));
      Store.close store)

let test_crash_mid_first_load () =
  with_dir (fun dir ->
      let store = Store.create ~backend:(Store.File { dir }) () in
      Store.simulate_crash store;
      (* Bulk-load writes bypass the WAL and only append data frames, so a
         SIGKILL mid-first-load leaves exactly this on disk: the
         post-create manifest, orphan appended frames, an empty WAL. *)
      let oc =
        open_out_gen [ Open_append; Open_binary ] 0o644 (data_path dir)
      in
      output_string oc (String.make (8 * 4096) '\xab');
      close_out oc;
      let store = Store.open_file ~dir () in
      Alcotest.(check int) "pre-load state" 0
        (List.length (Store.documents store));
      Store.validate store;
      ignore (Store.load_string store ~name:"tiny.xml" tiny_doc);
      Store.close store;
      let store = Store.open_file ~dir () in
      Store.validate store;
      Alcotest.(check int) "load after recovery sticks" 1
        (List.length (Store.documents store));
      Store.close store)

(* ---- a failed bulk ingest rolls back, never lingers in bulk mode ---- *)

let test_failed_restore_rolls_back () =
  with_dir (fun dir ->
      with_dir (fun dir2 ->
          let snap = Filename.concat dir "all.snap" in
          let store, _, _ = build_file_store dir in
          Store.save_file store snap;
          Store.close store;
          let s = read_bytes snap in
          write_bytes snap (String.sub s 0 (String.length s * 2 / 3));
          (match Store.load_file ~backend:(Store.File { dir = dir2 }) snap with
          | _ -> Alcotest.fail "truncated snapshot must not restore"
          | exception Store.Corrupt_snapshot _ -> ());
          (* the target directory holds a valid, reopenable empty store:
             the aborted ingest cannot have been committed *)
          let store2 = Store.open_file ~dir:dir2 () in
          Alcotest.(check int) "rolled back to empty" 0
            (List.length (Store.documents store2));
          Store.validate store2;
          Store.close store2))

(* ---- committed updates survive a crash ---- *)

let test_crash_after_commit () =
  with_dir (fun dir ->
      let store, _, d2 = build_file_store dir in
      let root = Option.get (Store.root_element_key d2 store) in
      let k =
        Store.insert_element store ~parent:root "extra" [ ("id", "e1") ] (Some "body")
      in
      let ep = Store.epoch store in
      (* autocommit is on: the insert is already durable; now crash *)
      Store.simulate_crash store;
      let store = Store.open_file ~dir () in
      Alcotest.(check int) "epoch" ep (Store.epoch store);
      (match Store.get store k with
      | Some r -> Alcotest.(check string) "name" "extra" r.Mass.Record.name
      | None -> Alcotest.fail "committed insert lost");
      Store.validate store;
      Store.close store)

(* ---- kill before fsync: uncommitted tail is lost, not corrupting ---- *)

let test_crash_before_commit () =
  with_dir (fun dir ->
      let store, _, d2 = build_file_store dir in
      let records = Store.total_records store in
      let ep = Store.epoch store in
      let root = Option.get (Store.root_element_key d2 store) in
      Store.set_autocommit store false;
      let k = Store.insert_element store ~parent:root "volatile" [] (Some "gone") in
      ignore (Store.insert_element store ~parent:root "volatile2" [] None);
      Store.simulate_crash store;
      let store = Store.open_file ~dir () in
      Alcotest.(check int) "epoch rolled back" ep (Store.epoch store);
      Alcotest.(check int) "records rolled back" records (Store.total_records store);
      Alcotest.(check bool) "uncommitted insert gone" true (Store.get store k = None);
      Store.validate store;
      Store.close store)

(* ---- torn WAL tails at randomized offsets ---- *)

let test_torn_wal_randomized () =
  with_dir (fun dir ->
      let store, _, d2 = build_file_store dir in
      let base_records = Store.total_records store in
      let base_epoch = Store.epoch store in
      let root = Option.get (Store.root_element_key d2 store) in
      (* several committed mutations so the WAL holds several batches *)
      for i = 1 to 5 do
        ignore
          (Store.insert_element store ~parent:root
             (Printf.sprintf "upd%d" i)
             [ ("n", string_of_int i) ]
             (Some (Printf.sprintf "text%d" i)))
      done;
      let full_epoch = Store.epoch store in
      Store.simulate_crash store;
      let wal = read_bytes (wal_path dir) in
      let data = read_bytes (data_path dir) in
      let manifest = read_bytes (manifest_path dir) in
      Alcotest.(check bool) "wal has batches" true (String.length wal > 0);
      let restore () =
        write_bytes (wal_path dir) wal;
        write_bytes (data_path dir) data;
        write_bytes (manifest_path dir) manifest
      in
      let rng = Random.State.make [| 0xbeef |] in
      let cuts =
        List.init 25 (fun _ -> Random.State.int rng (String.length wal + 1))
      in
      List.iter
        (fun cut ->
          restore ();
          truncate_file (wal_path dir) cut;
          let store = Store.open_file ~dir () in
          let e = Store.epoch store in
          Alcotest.(check bool)
            (Printf.sprintf "cut=%d epoch in range" cut)
            true
            (e >= base_epoch && e <= full_epoch);
          (* every recovered state is internally consistent *)
          Store.validate store;
          Alcotest.(check bool)
            (Printf.sprintf "cut=%d records monotone" cut)
            true
            (Store.total_records store >= base_records);
          (* the recovered prefix is exactly the first (e - base_epoch)
             inserts: one element + one attribute + one text each *)
          Alcotest.(check int)
            (Printf.sprintf "cut=%d records match epoch" cut)
            (base_records + (3 * (e - base_epoch)))
            (Store.total_records store);
          Store.close store)
        cuts)

(* ---- kill mid-checkpoint ---- *)

let test_stale_manifest_tmp_ignored () =
  with_dir (fun dir ->
      let store, d1, _ = build_file_store dir in
      let expected = corpus_results store d1 in
      Store.close store;
      (* a checkpoint that died before rename leaves a half-written tmp *)
      write_bytes (manifest_path dir ^ ".tmp") "VAMMANIFgarbage-half-written";
      let store = Store.open_file ~dir () in
      Store.validate store;
      let d1 = Option.get (Store.find_document store "auction.xml") in
      check_corpus_equal "tmp ignored" expected store d1;
      Alcotest.(check bool) "tmp removed" false
        (Sys.file_exists (manifest_path dir ^ ".tmp"));
      Store.close store)

let test_manifest_renamed_wal_not_truncated () =
  (* The other half of a torn checkpoint: the new manifest is installed but
     the crash hit before the WAL was truncated.  Replay must skip batches
     at or below the manifest epoch (idempotence). *)
  with_dir (fun dir ->
      let store, _, d2 = build_file_store dir in
      let root = Option.get (Store.root_element_key d2 store) in
      let k = Store.insert_element store ~parent:root "committed" [] (Some "v") in
      let wal_before = read_bytes (wal_path dir) in
      Alcotest.(check bool) "wal nonempty" true (String.length wal_before > 0);
      let records = Store.total_records store in
      let ep = Store.epoch store in
      Store.checkpoint store;
      Store.simulate_crash store;
      (* resurrect the pre-checkpoint WAL beside the new manifest *)
      write_bytes (wal_path dir) wal_before;
      let store = Store.open_file ~dir () in
      Alcotest.(check int) "epoch" ep (Store.epoch store);
      Alcotest.(check int) "records" records (Store.total_records store);
      Alcotest.(check bool) "insert present" true (Store.get store k <> None);
      Store.validate store;
      Store.close store)

(* ---- checksum corruption fails loudly ---- *)

let test_corrupt_page_detected () =
  with_dir (fun dir ->
      let store, _, _ = build_file_store dir in
      Store.close store;
      (* flip one byte in every frame's payload region: whichever pages a
         scan touches, the CRC must catch the damage *)
      let data = Bytes.of_string (read_bytes (data_path dir)) in
      let frame = 4096 in
      let nframes = Bytes.length data / frame in
      for i = 0 to nframes - 1 do
        let off = (i * frame) + 30 in
        if off < Bytes.length data then
          Bytes.set data off (Char.chr (Char.code (Bytes.get data off) lxor 0xff))
      done;
      write_bytes (data_path dir) (Bytes.to_string data);
      let store = Store.open_file ~dir () in
      (match Store.validate store with
      | () -> Alcotest.fail "corrupted pages must not validate"
      | exception Storage.Disk.Corrupt _ -> ());
      Store.close store)

(* ---- snapshots to and from the file backend ---- *)

let test_snapshot_across_backends () =
  with_dir (fun dir ->
      with_dir (fun dir2 ->
          let snap = Filename.concat dir "all.snap" in
          let store, d1, _ = build_file_store dir in
          let expected = corpus_results store d1 in
          Store.save_file store snap;
          Store.close store;
          (* restore the snapshot into a fresh durable store *)
          let store2 = Store.load_file ~backend:(Store.File { dir = dir2 }) snap in
          let d1' = Option.get (Store.find_document store2 "auction.xml") in
          check_corpus_equal "restored to file backend" expected store2 d1';
          Store.close store2;
          (* and the restored store is itself durable *)
          let store3 = Store.open_file ~dir:dir2 () in
          Store.validate store3;
          let d1'' = Option.get (Store.find_document store3 "auction.xml") in
          check_corpus_equal "reopened restore" expected store3 d1'';
          Store.close store3))

(* ---- file backend makes eviction I/O real ---- *)

let test_constrained_pool_does_file_io () =
  with_dir (fun dir ->
      let store =
        Store.create ~pool_pages:8 ~backend:(Store.File { dir }) ()
      in
      let doc = Xmark.load store ~name:"auction.xml" 0.3 in
      Store.reset_io_stats store;
      let before =
        match Store.disk_io store with
        | Some io -> io.Storage.Disk.data_reads
        | None -> Alcotest.fail "expected a disk"
      in
      ignore (run_query store doc "//person/address");
      let stats = Store.io_stats store in
      Alcotest.(check bool) "physical reads" true
        (stats.Storage.Stats.physical_reads > 0);
      let after =
        match Store.disk_io store with
        | Some io -> io.Storage.Disk.data_reads
        | None -> assert false
      in
      Alcotest.(check bool) "file reads happened" true (after > before);
      (* and the write-back counter observed the load's page traffic *)
      let d2 = Store.load_string store ~name:"tiny.xml" tiny_doc in
      ignore d2;
      let stats = Store.io_stats store in
      Alcotest.(check bool) "write-back bytes counted" true
        (stats.Storage.Stats.write_back_bytes > 0);
      Store.close store)

let suite =
  ( "recovery",
    [
      Alcotest.test_case "mem/file differential" `Quick test_mem_file_differential;
      Alcotest.test_case "clean close reopen" `Quick test_clean_close_reopen;
      Alcotest.test_case "crash right after create" `Quick
        test_crash_right_after_create;
      Alcotest.test_case "crash mid first load" `Quick test_crash_mid_first_load;
      Alcotest.test_case "failed restore rolls back" `Quick
        test_failed_restore_rolls_back;
      Alcotest.test_case "crash after commit" `Quick test_crash_after_commit;
      Alcotest.test_case "crash before commit" `Quick test_crash_before_commit;
      Alcotest.test_case "torn wal randomized" `Quick test_torn_wal_randomized;
      Alcotest.test_case "stale manifest tmp" `Quick test_stale_manifest_tmp_ignored;
      Alcotest.test_case "manifest renamed, wal kept" `Quick
        test_manifest_renamed_wal_not_truncated;
      Alcotest.test_case "corrupt page detected" `Quick test_corrupt_page_detected;
      Alcotest.test_case "snapshot across backends" `Quick
        test_snapshot_across_backends;
      Alcotest.test_case "constrained pool file io" `Quick
        test_constrained_pool_does_file_io;
    ] )
