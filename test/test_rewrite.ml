(* Unit tests for each transformation rule: firing cases, guard cases
   (where the rewrite would be unsound and must not fire), and a per-rule
   equivalence property on random documents. *)

open Vamana
module Store = Mass.Store

let compile src =
  match Compile.compile_query src with
  | Ok p -> Rewrite.apply_cleanup p
  | Error e -> Alcotest.fail e

let chain plan =
  List.map
    (fun (op : Plan.op) ->
      match op.Plan.kind with
      | Plan.Root -> "R"
      | Plan.Step (axis, test) ->
          Xpath.Ast.axis_name axis ^ "::" ^ Xpath.Ast.node_test_to_string test
      | Plan.Value_step (v, _) -> "value::'" ^ v ^ "'"
      | Plan.Step_generic s -> "generic::" ^ Xpath.Ast.node_test_to_string s.Xpath.Ast.test)
    (Plan.context_chain plan)

(* apply one rule at the first operator where it fires *)
let apply_rule (rule : Rewrite.rule) plan =
  List.fold_left
    (fun acc (op : Plan.op) ->
      match acc with Some _ -> acc | None -> rule.Rewrite.apply plan ~target:op.Plan.id)
    None (Plan.context_chain plan)

let check_fires rule src expected_chain =
  match apply_rule rule (compile src) with
  | Some plan' -> Alcotest.(check (list string)) (rule.Rewrite.name ^ ": " ^ src) expected_chain (chain plan')
  | None -> Alcotest.fail (rule.Rewrite.name ^ " did not fire on " ^ src)

let check_no_fire rule src =
  match apply_rule rule (compile src) with
  | None -> ()
  | Some p ->
      Alcotest.fail
        (Printf.sprintf "%s should not fire on %s (got %s)" rule.Rewrite.name src
           (String.concat "/" (chain p)))

let test_self_merge () =
  (* cleanup already applies it; test through a raw compile *)
  let raw = match Compile.compile_query "//a/self::a" with Ok p -> p | Error e -> Alcotest.fail e in
  (match apply_rule Rewrite.self_merge raw with
  | Some p ->
      Alcotest.(check bool) "self gone" true
        (not (List.exists (fun s -> String.length s >= 4 && String.sub s 0 4 = "self") (chain p)))
  | None -> Alcotest.fail "self_merge did not fire");
  (* incompatible name tests must not merge *)
  check_no_fire Rewrite.self_merge "parent::a/self::b"

let raw_compile src =
  match Compile.compile_query src with Ok p -> p | Error e -> Alcotest.fail e

let test_descendant_merge () =
  (* cleanup would already apply it, so test against the raw plan *)
  (match apply_rule Rewrite.descendant_merge (raw_compile "//person") with
  | Some p -> Alcotest.(check (list string)) "merged" [ "R"; "descendant::person" ] (chain p)
  | None -> Alcotest.fail "descendant_merge did not fire");
  (* positional predicate blocks the merge *)
  match apply_rule Rewrite.descendant_merge (raw_compile "//person[2]") with
  | None -> ()
  | Some _ -> Alcotest.fail "descendant_merge must not fire on //person[2]"

let test_parent_elim () =
  check_fires Rewrite.parent_elim "descendant::name/parent::person"
    [ "R"; "descendant-or-self::person" ];
  check_fires Rewrite.parent_elim "child::name/parent::*" [ "R"; "self::*" ];
  (* ancestor axis is not parent: different rule *)
  check_no_fire Rewrite.parent_elim "descendant::name/ancestor::person";
  (* positional predicates block it *)
  check_no_fire Rewrite.parent_elim "descendant::name[2]/parent::person"

let test_ancestor_pushdown () =
  check_fires Rewrite.ancestor_pushdown "descendant::watches/child::watch/ancestor::person"
    [ "R"; "ancestor::person"; "descendant::watches" ];
  (* guard: same name test on feeder and target would lose the feeder itself *)
  check_no_fire Rewrite.ancestor_pushdown "descendant::person/child::watch/ancestor::person";
  (* leaf variant *)
  check_fires Rewrite.ancestor_pushdown "descendant::watch/ancestor::person"
    [ "R"; "descendant::person" ]

let test_child_pushdown () =
  check_fires Rewrite.child_pushdown "descendant::person/child::address"
    [ "R"; "descendant::address" ];
  (* wildcard feeder cannot be proven disjoint: from the document leaf it
     is safe (document is not an element) *)
  check_fires Rewrite.child_pushdown "descendant::*/child::address"
    [ "R"; "descendant::address" ];
  (* node() target is never safe *)
  check_no_fire Rewrite.child_pushdown "descendant::node()/child::address" |> ignore;
  (* inner position: a wildcard feeder above a non-leaf descendant step
     blocks the rewrite *)
  check_no_fire Rewrite.child_pushdown "descendant::a/descendant::*/child::b"

let test_value_index () =
  check_fires Rewrite.value_index "descendant::name[text()='Yung Flach']"
    [ "R"; "parent::name"; "value::'Yung Flach'" ];
  (* attribute variant *)
  check_fires Rewrite.value_index "descendant::person[attribute::id='p1']"
    [ "R"; "parent::person"; "value::'p1'" ];
  (* inequality is not value-indexable *)
  check_no_fire Rewrite.value_index "descendant::name[text()!='x']";
  (* deeper paths in the predicate are not a plain text()/attribute shape *)
  check_no_fire Rewrite.value_index "descendant::person[address/city='x']";
  (* child axis steps are not rewritten (depth guard) *)
  check_no_fire Rewrite.value_index "descendant::a/child::name[text()='x']"

(* ---- per-rule equivalence on random documents ---- *)

let rule_equivalence_queries =
  [ (* each exercises one rule *)
    "//person"; "descendant::name/parent::person"; "descendant::name/parent::*";
    "//watches/watch/ancestor::person"; "descendant::watch/ancestor::person";
    "descendant::person/child::address"; "//person/address/city";
    "descendant::city[text()='Monroe']"; "//person[@id='i']";
    "descendant::name[text()='Monroe']/parent::*" ]

let prop_rule_equivalence =
  QCheck.Test.make ~name:"each rewrite rule preserves node sets" ~count:40
    (QCheck.make Test_vamana.gen_tree) (fun tree ->
      let store = Store.create () in
      let doc = Store.load store ~name:"gen" tree in
      let ctx = doc.Store.doc_key in
      List.for_all
        (fun src ->
          let base = compile src in
          let expected = Exec.run store ~context:ctx base in
          List.for_all
            (fun (rule : Rewrite.rule) ->
              (* apply the rule everywhere it fires, repeatedly *)
              let rec saturate plan n =
                if n = 0 then plan
                else
                  match apply_rule rule plan with
                  | Some plan' -> saturate plan' (n - 1)
                  | None -> plan
              in
              let rewritten = saturate base 8 in
              let actual = Exec.run store ~context:ctx rewritten in
              if List.equal Flex.equal expected actual then true
              else begin
                Printf.eprintf "RULE %s breaks %s\n  expected %s\n  got      %s\n"
                  rule.Rewrite.name src
                  (String.concat "," (List.map Flex.to_string expected))
                  (String.concat "," (List.map Flex.to_string actual));
                false
              end)
            (Rewrite.cleanup_rules @ Rewrite.cost_rules))
        rule_equivalence_queries)

(* ---- per-rule property-signature preservation ---- *)

(* every stock rule, applied to a query it fires on, must keep the
   analyzer's rewrite signature intact: same static-emptiness verdict, a
   result description no wider than before, identical positional
   fingerprints — the admission contract the optimizer enforces *)
let test_signature_preservation () =
  let store, doc = Test_vamana.setup () in
  let scope = Some doc.Store.doc_key in
  let analyze p = Analysis.analyze store ~scope p in
  let firing =
    [ (Rewrite.self_merge, raw_compile "//a/self::a");
      (Rewrite.descendant_merge, raw_compile "//person");
      (Rewrite.parent_elim, compile "descendant::name/parent::person");
      (Rewrite.ancestor_pushdown, compile "descendant::watch/ancestor::person");
      (Rewrite.child_pushdown, compile "descendant::person/child::address");
      (Rewrite.value_index, compile "descendant::name[text()='Yung Flach']") ]
  in
  List.iter
    (fun ((rule : Rewrite.rule), before) ->
      match apply_rule rule before with
      | None -> Alcotest.fail (rule.Rewrite.name ^ " did not fire")
      | Some after ->
          let a_before = analyze before and a_after = analyze after in
          let verdict =
            Analysis.check_rewrite
              ~before:(Analysis.signature_of a_before before)
              ~after:(Analysis.signature_of a_after after)
              ~after_errors:(Analysis.errors a_after)
          in
          (match verdict with
          | Ok () -> ()
          | Error reason ->
              Alcotest.fail (rule.Rewrite.name ^ ": signature not preserved: " ^ reason)))
    firing

let test_cleanup_idempotent () =
  List.iter
    (fun src ->
      let once = compile src in
      let twice = Rewrite.apply_cleanup once in
      Alcotest.(check bool) (src ^ " cleanup idempotent") true (Plan.equal_structure once twice))
    [ "//person/address"; "descendant::name/parent::*/self::person/address"; "//a//b/c" ]

let suite =
  ( "rewrite",
    [ Alcotest.test_case "self merge" `Quick test_self_merge;
      Alcotest.test_case "descendant merge" `Quick test_descendant_merge;
      Alcotest.test_case "parent elimination" `Quick test_parent_elim;
      Alcotest.test_case "ancestor pushdown" `Quick test_ancestor_pushdown;
      Alcotest.test_case "child pushdown" `Quick test_child_pushdown;
      Alcotest.test_case "value index" `Quick test_value_index;
      Alcotest.test_case "cleanup idempotent" `Quick test_cleanup_idempotent;
      Alcotest.test_case "signature preservation" `Quick test_signature_preservation;
      QCheck_alcotest.to_alcotest prop_rule_equivalence ] )
