(* Telemetry export surfaces: Chrome trace conversion, OpenMetrics
   exposition, the query flight recorder, and per-query resource
   attribution — each validated by re-parsing its output format, not by
   string-matching the producer. *)

module Store = Mass.Store
module Service = Vamana_service.Service
module Metrics = Vamana_service.Metrics
module Flight = Storage.Flight
module Json = Vamana.Profile.Json

let with_bus f =
  Obs.reset ();
  Fun.protect ~finally:Obs.reset f

let tmp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "vamana_telemetry_%d_%d" (Unix.getpid ()) !counter)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let with_dir f =
  let d = tmp_dir () in
  Unix.mkdir d 0o755;
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let contains needle hay =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* ---- Chrome trace validation ------------------------------------- *)

(* Parse a trace document and enforce the format's invariants: every
   non-metadata event has a tid and a timestamp, B/E pairs are balanced
   per tid, and timestamps never go backwards within a tid.  Returns
   the event list for further assertions. *)
let validate_chrome json_str =
  match Json.of_string json_str with
  | Error m -> Alcotest.fail ("trace is not valid JSON: " ^ m)
  | Ok j ->
      let evs =
        match Json.member "traceEvents" j with
        | Some (Json.Arr l) -> l
        | _ -> Alcotest.fail "traceEvents array missing"
      in
      let per_tid = Hashtbl.create 8 in
      (* tid -> (open span depth, last ts seen) *)
      List.iter
        (fun ev ->
          let ph =
            match Json.member "ph" ev with
            | Some (Json.Str s) -> s
            | _ -> Alcotest.fail "event without ph"
          in
          if ph <> "M" then begin
            let tid =
              match Json.member "tid" ev with
              | Some (Json.Int t) -> t
              | _ -> Alcotest.fail "event without tid"
            in
            let ts =
              match Json.member "ts" ev with
              | Some (Json.Float f) -> f
              | Some (Json.Int i) -> float_of_int i
              | _ -> Alcotest.fail "event without ts"
            in
            let depth, last =
              match Hashtbl.find_opt per_tid tid with
              | Some p -> p
              | None -> (0, neg_infinity)
            in
            Alcotest.(check bool) "ts monotone within tid" true (ts >= last);
            let depth' =
              match ph with
              | "B" -> depth + 1
              | "E" ->
                  Alcotest.(check bool) "E only closes an open B" true (depth > 0);
                  depth - 1
              | "i" -> depth
              | other -> Alcotest.failf "unexpected phase %s" other
            in
            Hashtbl.replace per_tid tid (depth', ts)
          end)
        evs;
      Hashtbl.iter
        (fun tid (depth, _) ->
          if depth <> 0 then Alcotest.failf "unbalanced spans on tid %d" tid)
        per_tid;
      evs

let count_phase ph evs =
  List.length
    (List.filter (fun ev -> Json.member "ph" ev = Some (Json.Str ph)) evs)

(* synthetic events with hand-built durations exercise the nesting
   repair: two overlapping spans in one category, an instant, and a
   second category with an Int-valued duration *)
let test_trace_synthetic () =
  with_bus @@ fun () ->
  Obs.attach_ring ();
  Obs.emit ~category:"alpha" "outer" [ ("dur_ms", Obs.Float 5.0) ];
  Obs.emit ~category:"alpha" "inner" [ ("dur_ms", Obs.Float 1.0) ];
  Obs.emit ~category:"alpha" "tick" [ ("n", Obs.Int 3) ];
  Obs.emit ~category:"beta" "only" [ ("dur_ms", Obs.Int 2) ];
  let events = Obs.drain () in
  let evs = validate_chrome (Obs.Trace.to_chrome events) in
  Alcotest.(check int) "three spans open" 3 (count_phase "B" evs);
  Alcotest.(check int) "three spans close" 3 (count_phase "E" evs);
  Alcotest.(check int) "one instant" 1 (count_phase "i" evs);
  (* one process-name meta plus one thread-name meta per category *)
  Alcotest.(check int) "metadata for process and both threads" 3
    (count_phase "M" evs);
  let tids =
    List.filter_map
      (fun ev ->
        if Json.member "ph" ev = Some (Json.Str "M") then None
        else match Json.member "tid" ev with Some (Json.Int t) -> Some t | _ -> None)
      evs
  in
  Alcotest.(check int) "two threads" 2
    (List.length (List.sort_uniq compare tids))

(* a real query through the service produces a loadable trace whose
   spans carry the query id minted by the attribution context *)
let test_trace_end_to_end () =
  with_bus @@ fun () ->
  let store = Store.create ~pool_pages:256 () in
  let doc =
    Store.load store ~name:"t.xml"
      (Xml.Parser.parse "<site><a><b>one</b><b>two</b></a><c>three</c></site>")
  in
  let service = Service.create store in
  Obs.attach_ring ~capacity:4096 ();
  (match Service.query service ~context:doc.Store.doc_key "//b" with
  | Ok o ->
      Alcotest.(check int) "query answered" 2
        (List.length o.Service.result.Vamana.Engine.keys)
  | Error e -> Alcotest.fail e);
  let events = Obs.drain () in
  let trace = Obs.Trace.to_chrome events in
  let evs = validate_chrome trace in
  Alcotest.(check bool) "at least the four engine phase spans" true
    (count_phase "B" evs >= 4);
  Alcotest.(check int) "balanced" (count_phase "B" evs) (count_phase "E" evs);
  Alcotest.(check bool) "spans carry the query id" true (contains {|"qid"|} trace)

(* ---- OpenMetrics validation -------------------------------------- *)

let parse_sample line =
  let value_of s =
    match float_of_string_opt (String.trim s) with
    | Some v -> v
    | None -> Alcotest.failf "unparseable sample value in: %s" line
  in
  match String.index_opt line '{' with
  | Some i ->
      let j =
        match String.index_opt line '}' with
        | Some j when j > i -> j
        | _ -> Alcotest.failf "unterminated label set in: %s" line
      in
      ( String.sub line 0 i,
        String.sub line (i + 1) (j - i - 1),
        value_of (String.sub line (j + 1) (String.length line - j - 1)) )
  | None -> (
      match String.index_opt line ' ' with
      | Some i ->
          ( String.sub line 0 i,
            "",
            value_of (String.sub line i (String.length line - i)) )
      | None -> Alcotest.failf "malformed sample line: %s" line)

let label_value labels key =
  let marker = key ^ "=\"" in
  let n = String.length labels in
  let rec find i =
    if i + String.length marker > n then None
    else if String.sub labels i (String.length marker) = marker then begin
      let start = i + String.length marker in
      match String.index_from_opt labels start '"' with
      | Some stop -> Some (String.sub labels start (stop - start))
      | None -> None
    end
    else find (i + 1)
  in
  find 0

(* Enforce the exposition-format rules the scrapers rely on: one TYPE
   per family, every sample owned by a declared family, counter samples
   end in _total with non-negative values, histogram buckets cumulative
   with a trailing +Inf equal to _count, and a final # EOF. *)
let validate_openmetrics body =
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' body) in
  (match List.rev lines with
  | "# EOF" :: _ -> ()
  | _ -> Alcotest.fail "exposition must end with # EOF");
  let types = Hashtbl.create 32 in
  List.iter
    (fun line ->
      if String.length line > 0 && line.[0] = '#' then
        match String.split_on_char ' ' line with
        | [ "#"; "TYPE"; fam; kind ] ->
            if Hashtbl.mem types fam then
              Alcotest.failf "duplicate TYPE for %s" fam;
            if not (List.mem kind [ "counter"; "gauge"; "histogram" ]) then
              Alcotest.failf "unknown metric kind %s" kind;
            Hashtbl.replace types fam kind
        | [ "#"; "EOF" ] -> ()
        | "#" :: "HELP" :: _ -> ()
        | _ -> Alcotest.failf "malformed comment line: %s" line)
    lines;
  let samples =
    List.map parse_sample
      (List.filter (fun l -> l <> "" && l.[0] <> '#') lines)
  in
  let family_of name =
    Hashtbl.fold
      (fun fam kind acc ->
        match acc with
        | Some _ -> acc
        | None ->
            let owns =
              match kind with
              | "counter" -> name = fam ^ "_total"
              | "gauge" -> name = fam
              | "histogram" ->
                  name = fam ^ "_bucket" || name = fam ^ "_sum"
                  || name = fam ^ "_count"
              | _ -> false
            in
            if owns then Some (fam, kind) else None)
      types None
  in
  let hist_buckets = Hashtbl.create 8 and hist_count = Hashtbl.create 8 in
  List.iter
    (fun (name, labels, v) ->
      match family_of name with
      | None -> Alcotest.failf "sample %s has no TYPE declaration" name
      | Some (fam, "counter") ->
          Alcotest.(check bool) (fam ^ " counter non-negative") true (v >= 0.0)
      | Some (fam, "histogram") ->
          if name = fam ^ "_bucket" then begin
            let le =
              match label_value labels "le" with
              | Some le -> le
              | None -> Alcotest.failf "%s bucket without le label" fam
            in
            let prev =
              match Hashtbl.find_opt hist_buckets fam with
              | Some l -> l
              | None -> []
            in
            Hashtbl.replace hist_buckets fam ((le, v) :: prev)
          end
          else if name = fam ^ "_count" then Hashtbl.replace hist_count fam v
      | Some _ -> ())
    samples;
  Hashtbl.iter
    (fun fam rev_buckets ->
      let buckets = List.rev rev_buckets in
      ignore
        (List.fold_left
           (fun prev (_, v) ->
             Alcotest.(check bool) (fam ^ " buckets cumulative") true (v >= prev);
             v)
           0.0 buckets);
      match List.rev buckets with
      | (le, last_v) :: _ ->
          Alcotest.(check string) (fam ^ " last bucket le") "+Inf" le;
          (match Hashtbl.find_opt hist_count fam with
          | Some c ->
              Alcotest.(check (float 0.0)) (fam ^ " +Inf bucket equals count")
                c last_v
          | None -> Alcotest.failf "%s has buckets but no _count" fam)
      | [] -> ())
    hist_buckets;
  samples

let test_openmetrics () =
  with_bus @@ fun () ->
  with_dir @@ fun dir ->
  let store = Store.create ~backend:(Store.File { dir }) () in
  let doc =
    Store.load store ~name:"t.xml"
      (Xml.Parser.parse "<site><a><b>one</b><b>two</b></a></site>")
  in
  let service = Service.create store in
  (match Service.query service ~context:doc.Store.doc_key "//b" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let body =
    Metrics.to_openmetrics
      ~io:(Store.io_stats store)
      ~pools:(Store.io_by_index store)
      ?disk:(Store.disk_io store)
      (Service.metrics service)
  in
  let samples = validate_openmetrics body in
  let has name = List.exists (fun (n, _, _) -> n = name) samples in
  Alcotest.(check bool) "query counter exported" true
    (has "vamana_queries_total");
  Alcotest.(check bool) "aggregate page reads exported" true
    (has "vamana_page_logical_reads_total");
  Alcotest.(check bool) "per-pool samples labelled" true
    (List.exists
       (fun (n, labels, _) ->
         contains "vamana_pool_" n && label_value labels "index" <> None)
       samples);
  Alcotest.(check bool) "disk counters exported" true
    (has "vamana_fsyncs_total");
  Alcotest.(check bool) "latency histogram exported" true
    (List.exists (fun (n, _, _) -> contains "_seconds_bucket" n) samples);
  Store.close store

(* ---- flight recorder --------------------------------------------- *)

let end_record ~qid ~source ~ok =
  { Flight.qid; source; ok; cache = "miss"; latency_us = 1250 + qid;
    pages_read = 10 * qid; physical_reads = qid; wal_bytes = 0; fsyncs = 0;
    results = qid; epoch = 1; at_ms = 1_700_000_000_000 + qid;
    sampled = qid mod 2 = 0; drift = float_of_int qid /. 4. }

let test_flight_roundtrip () =
  with_dir @@ fun dir ->
  let t = Flight.open_dir ~dir () in
  for qid = 1 to 3 do
    Flight.record_begin t ~qid ~epoch:1 ~source:(Printf.sprintf "//q%d" qid);
    Flight.record_end t (end_record ~qid ~source:(Printf.sprintf "//q%d" qid) ~ok:(qid <> 2))
  done;
  Flight.close t;
  Flight.close t (* idempotent *);
  let entries = Flight.read_dir ~dir in
  Alcotest.(check int) "six records" 6 (List.length entries);
  (match entries with
  | Flight.Begin b :: Flight.End e :: _ ->
      Alcotest.(check int) "begin qid" 1 b.Flight.b_qid;
      Alcotest.(check string) "begin source" "//q1" b.Flight.b_source;
      Alcotest.(check int) "end qid" 1 e.Flight.qid;
      Alcotest.(check int) "latency survives" 1251 e.Flight.latency_us;
      Alcotest.(check int) "pages survive" 10 e.Flight.pages_read;
      Alcotest.(check bool) "ok flag survives" true e.Flight.ok
  | _ -> Alcotest.fail "expected Begin/End leading pair");
  let failed =
    List.filter_map
      (function Flight.End e when not e.Flight.ok -> Some e.Flight.qid | _ -> None)
      entries
  in
  Alcotest.(check (list int)) "error outcome survives" [ 2 ] failed;
  Alcotest.(check int) "nothing in flight" 0
    (List.length (Flight.in_flight entries))

let test_flight_in_flight () =
  with_dir @@ fun dir ->
  let t = Flight.open_dir ~dir () in
  Flight.record_begin t ~qid:1 ~epoch:1 ~source:"//done";
  Flight.record_end t (end_record ~qid:1 ~source:"//done" ~ok:true);
  Flight.record_begin t ~qid:2 ~epoch:1 ~source:"//stuck";
  Flight.close t;
  match Flight.in_flight (Flight.read_dir ~dir) with
  | [ b ] ->
      Alcotest.(check int) "in-flight qid" 2 b.Flight.b_qid;
      Alcotest.(check string) "in-flight source" "//stuck" b.Flight.b_source
  | bs -> Alcotest.failf "expected 1 in-flight query, got %d" (List.length bs)

let test_flight_rotation () =
  with_dir @@ fun dir ->
  let t = Flight.open_dir ~max_bytes:4096 ~dir () in
  let source = String.make 100 'x' in
  for qid = 1 to 60 do
    Flight.record_begin t ~qid ~epoch:1 ~source;
    Flight.record_end t (end_record ~qid ~source ~ok:true)
  done;
  Flight.close t;
  Alcotest.(check bool) "rotated generation exists" true
    (Sys.file_exists (Filename.concat dir (Flight.file_name ^ ".1")));
  Alcotest.(check bool) "log stays bounded" true
    ((Unix.stat (Filename.concat dir Flight.file_name)).Unix.st_size <= 8192);
  let entries = Flight.read_dir ~dir in
  Alcotest.(check bool) "rotation drops only old generations" true
    (List.length entries > 0 && List.length entries < 120);
  let newest =
    List.fold_left
      (fun acc -> function Flight.End e -> max acc e.Flight.qid | _ -> acc)
      0 entries
  in
  Alcotest.(check int) "newest record survives rotation" 60 newest

let test_flight_torn_tail () =
  with_dir @@ fun dir ->
  let t = Flight.open_dir ~dir () in
  for qid = 1 to 3 do
    Flight.record_end t (end_record ~qid ~source:"//q" ~ok:true)
  done;
  Flight.close t;
  let path = Filename.concat dir Flight.file_name in
  let intact_size = (Unix.stat path).Unix.st_size in
  (* garbage appended after the last intact frame is ignored *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc (String.make 20 '\xFF');
  close_out oc;
  Alcotest.(check int) "garbage tail ignored" 3
    (List.length (Flight.read_dir ~dir));
  (* a frame cut mid-write costs exactly the record being written *)
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  Unix.ftruncate fd (intact_size - 5);
  Unix.close fd;
  Alcotest.(check int) "torn frame drops only itself" 2
    (List.length (Flight.read_dir ~dir))

(* ---- per-query attribution --------------------------------------- *)

(* On a single-query batch the attributed counters must equal the
   store's global deltas — the sum-consistency the slow log, EXPLAIN
   ANALYZE and the flight recorder all rely on.  Runs on the file
   backend so the WAL/fsync columns are exercised too. *)
let test_attribution_sum_consistency () =
  with_bus @@ fun () ->
  with_dir @@ fun dir ->
  let store = Store.create ~backend:(Store.File { dir }) () in
  let doc =
    Store.load store ~name:"t.xml"
      (Xml.Parser.parse
         "<site><a><b>one</b><b>two</b></a><c><b>three</b></c></site>")
  in
  let flight = Flight.open_dir ~dir () in
  let service =
    Service.create ~result_cache_capacity:0 ~slow_threshold:0.0
      ~slow_profile:false ~flight store
  in
  Store.reset_io_stats store;
  let disk0 = Storage.Disk.copy_io (Option.get (Store.disk_io store)) in
  let outcome =
    match Service.query service ~context:doc.Store.doc_key "//b" with
    | Ok o -> o
    | Error e -> Alcotest.fail e
  in
  let a = outcome.Service.attribution in
  let g = Store.io_stats store in
  let dd = Storage.Disk.diff_io (Option.get (Store.disk_io store)) disk0 in
  Alcotest.(check bool) "query did real reads" true
    (a.Vamana.Engine.attr_io.Storage.Stats.logical_reads > 0);
  Alcotest.(check int) "logical reads sum to the global delta"
    g.Storage.Stats.logical_reads
    a.Vamana.Engine.attr_io.Storage.Stats.logical_reads;
  Alcotest.(check int) "physical reads sum to the global delta"
    g.Storage.Stats.physical_reads
    a.Vamana.Engine.attr_io.Storage.Stats.physical_reads;
  Alcotest.(check int) "wal bytes attributed" dd.Storage.Disk.wal_bytes_written
    a.Vamana.Engine.attr_wal_bytes;
  Alcotest.(check int) "fsyncs attributed" dd.Storage.Disk.fsyncs
    a.Vamana.Engine.attr_fsyncs;
  (* the slow log cites the same run *)
  (match Service.slow_queries service with
  | [ sq ] ->
      Alcotest.(check int) "slow log carries the qid"
        a.Vamana.Engine.attr_qid sq.Service.sq_qid;
      Alcotest.(check int) "slow log reads match attribution"
        a.Vamana.Engine.attr_io.Storage.Stats.logical_reads
        sq.Service.sq_io.Storage.Stats.logical_reads;
      Alcotest.(check int) "slow log wal bytes match"
        a.Vamana.Engine.attr_wal_bytes sq.Service.sq_wal_bytes
  | sqs -> Alcotest.failf "expected 1 slow query, got %d" (List.length sqs));
  (* and so does the flight record *)
  Flight.close flight;
  (match
     List.filter_map
       (function Flight.End e -> Some e | Flight.Begin _ -> None)
       (Flight.read_dir ~dir)
   with
  | [ e ] ->
      Alcotest.(check int) "flight record carries the qid"
        a.Vamana.Engine.attr_qid e.Flight.qid;
      Alcotest.(check int) "flight pages_read matches attribution"
        a.Vamana.Engine.attr_io.Storage.Stats.logical_reads e.Flight.pages_read;
      Alcotest.(check string) "flight keeps the query text" "//b"
        e.Flight.source;
      Alcotest.(check int) "flight result count" 3 e.Flight.results
  | es -> Alcotest.failf "expected 1 flight end record, got %d" (List.length es));
  Store.close store

(* explain analyze surfaces the same attribution *)
let test_explain_analyze_attribution () =
  with_bus @@ fun () ->
  let store = Store.create ~pool_pages:256 () in
  let doc =
    Store.load store ~name:"t.xml"
      (Xml.Parser.parse "<site><a><b>one</b></a></site>")
  in
  let text =
    match Vamana.Engine.explain_analyze store doc "//b" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "text report has the attribution section" true
    (contains "Attributed I/O (qid " text);
  let json =
    match Vamana.Engine.explain_analyze ~json:true store doc "//b" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  match Json.of_string json with
  | Error m -> Alcotest.fail ("explain json does not parse: " ^ m)
  | Ok j -> (
      match Json.member "attribution" j with
      | Some attribution -> (
          match
            (Json.member "qid" attribution, Json.member "pages_read" attribution)
          with
          | Some (Json.Int qid), Some (Json.Int pages) ->
              Alcotest.(check bool) "qid minted" true (qid > 0);
              Alcotest.(check bool) "pages attributed" true (pages > 0)
          | _ -> Alcotest.fail "attribution missing qid/pages_read")
      | None -> Alcotest.fail "attribution object missing from explain json")

let suite =
  ( "telemetry",
    [ Alcotest.test_case "trace synthetic" `Quick test_trace_synthetic;
      Alcotest.test_case "trace end-to-end" `Quick test_trace_end_to_end;
      Alcotest.test_case "openmetrics" `Quick test_openmetrics;
      Alcotest.test_case "flight round-trip" `Quick test_flight_roundtrip;
      Alcotest.test_case "flight in-flight" `Quick test_flight_in_flight;
      Alcotest.test_case "flight rotation" `Quick test_flight_rotation;
      Alcotest.test_case "flight torn tail" `Quick test_flight_torn_tail;
      Alcotest.test_case "attribution sum-consistency" `Quick
        test_attribution_sum_consistency;
      Alcotest.test_case "explain analyze attribution" `Quick
        test_explain_analyze_attribution ] )
