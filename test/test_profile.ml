(* Tests for EXPLAIN ANALYZE: per-operator actuals, q-error joins against
   the cost model, trace spans, JSON round-tripping, and the guarantee
   that the profile-off path stays free of profile structures. *)

open Vamana
module Store = Mass.Store
module J = Profile.Json

let doc_src =
  {xml|<root>
  <a><b>one</b><b>two</b><c/></a>
  <a><b>three</b></a>
  <a><c/></a>
</root>|xml}

let setup () =
  let store = Store.create () in
  let doc = Store.load_string store ~name:"t.xml" doc_src in
  (store, doc)

let compile src =
  match Compile.compile_query src with Ok p -> p | Error e -> Alcotest.fail e

(* profile a plan without the optimizer so operator shapes are known *)
let profile_run store ~context plan =
  let ctx = Profile.create store in
  let keys = Exec.run ~profile:ctx store ~context plan in
  let cost = Cost.estimate store ~scope:(Vamana.Engine.scope_of_context context) plan in
  (keys, Profile.make ctx ~cost ~total_time:0.0 plan)

let rec collect node acc =
  let acc = node :: acc in
  let acc = List.fold_left (fun acc (_, sub) -> collect sub acc) acc node.Profile.preds in
  match node.Profile.context with Some c -> collect c acc | None -> acc

let actual_of node =
  match node.Profile.act with Some s -> s | None -> Alcotest.fail "operator has no actuals"

let test_operator_tuple_counts () =
  let store, doc = setup () in
  let ctx = doc.Store.doc_key in
  (* default plan for //a/b: R -> child::b -> descendant::a *)
  let keys, report = profile_run store ~context:ctx (compile "//a/b") in
  Alcotest.(check int) "three b results" 3 (List.length keys);
  let root = report.Profile.plan in
  let step_b = Option.get root.Profile.context in
  let step_a = Option.get step_b.Profile.context in
  Alcotest.(check int) "root emits 3 tuples" 3 (actual_of root).Profile.tuples;
  Alcotest.(check int) "child::b emits 3 tuples" 3 (actual_of step_b).Profile.tuples;
  Alcotest.(check int) "descendant::a emits 3 tuples" 3 (actual_of step_a).Profile.tuples;
  (* child::b opens one cursor per context tuple from descendant::a; the
     descendant leaf re-seeks as it walks the subtree, so only > 0 there *)
  Alcotest.(check int) "child::b opens 3 cursors" 3 (actual_of step_b).Profile.cursor_opens;
  Alcotest.(check bool) "descendant::a opened cursors" true
    ((actual_of step_a).Profile.cursor_opens > 0);
  (* every operator was pulled one call past its last tuple *)
  List.iter
    (fun n ->
      let s = actual_of n in
      Alcotest.(check bool)
        (Printf.sprintf "%s: next_calls > tuples" s.Profile.label)
        true
        (s.Profile.next_calls > s.Profile.tuples))
    (collect root [])

let test_predicate_rerooting_counts () =
  let store, doc = setup () in
  (* //a[b]: the exists sub-plan is re-rooted once per candidate a *)
  let _, report = profile_run store ~context:doc.Store.doc_key (compile "//a[b]") in
  let step_a = Option.get report.Profile.plan.Profile.context in
  match step_a.Profile.preds with
  | [ (label, sub) ] ->
      Alcotest.(check string) "predicate label" "ξ exists" label;
      let s = actual_of sub in
      Alcotest.(check int) "re-rooted per candidate" 3 s.Profile.resets;
      (* two of the three a elements have a b child; the sub-plan stops at
         the first witness so it emits exactly one tuple per success *)
      Alcotest.(check int) "one witness per passing candidate" 2 s.Profile.tuples
  | _ -> Alcotest.fail "expected exactly one predicate sub-plan"

let test_exact_count_q_error_is_one () =
  let store, doc = setup () in
  (* descendant::b from the root: the estimate is the exact name-index
     COUNT (the paper's case 1), so est = act and q-error = 1 everywhere *)
  let keys, report = profile_run store ~context:doc.Store.doc_key (compile "//b") in
  Alcotest.(check int) "three b elements" 3 (List.length keys);
  Alcotest.(check (float 0.0)) "root q-error exactly 1" 1.0 report.Profile.root_q_error;
  Alcotest.(check (float 0.0)) "max q-error exactly 1" 1.0 report.Profile.max_q_error

let test_q_error_definition () =
  Alcotest.(check (float 0.0)) "both zero" 1.0 (Profile.q_error ~est:0 ~act:0);
  Alcotest.(check (float 0.0)) "exact" 1.0 (Profile.q_error ~est:7 ~act:7);
  Alcotest.(check (float 1e-9)) "over-estimate" 2.5 (Profile.q_error ~est:5 ~act:2);
  Alcotest.(check (float 1e-9)) "under-estimate" 2.5 (Profile.q_error ~est:2 ~act:5);
  Alcotest.(check bool) "one-sided zero" true
    (Float.is_finite (Profile.q_error ~est:3 ~act:0) = false)

let test_profile_off_no_structures () =
  let store, doc = setup () in
  let plain =
    match Engine.query store ~context:doc.Store.doc_key "//a/b" with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "no report without ~profile" true (plain.Engine.profile = None);
  let profiled =
    match Engine.query ~profile:true store ~context:doc.Store.doc_key "//a/b" with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "report present with ~profile" true (profiled.Engine.profile <> None);
  Alcotest.(check (list string))
    "instrumentation does not change results"
    (List.map Flex.to_string plain.Engine.keys)
    (List.map Flex.to_string profiled.Engine.keys)

let test_spans () =
  let store, doc = setup () in
  let r =
    match Engine.query store ~context:doc.Store.doc_key "//a/b" with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let names = List.map (fun (s : Profile.span) -> s.Profile.name) r.Engine.spans in
  List.iter
    (fun expected ->
      Alcotest.(check bool) ("span " ^ expected) true (List.mem expected names))
    [ "parse"; "compile"; "optimize"; "execute" ];
  (* the final optimize iteration is the fixpoint pass: accepted = null *)
  let optimize_spans =
    List.filter (fun (s : Profile.span) -> s.Profile.name = "optimize") r.Engine.spans
  in
  let last = List.nth optimize_spans (List.length optimize_spans - 1) in
  Alcotest.(check bool) "fixpoint iteration accepted nothing" true
    (List.assoc_opt "accepted" last.Profile.meta = Some J.Null);
  let o = Option.get r.Engine.optimizer in
  Alcotest.(check int) "one span per iteration stat"
    (List.length o.Optimizer.iteration_stats)
    (List.length optimize_spans);
  Alcotest.(check int) "iterations = admitted rewrites" o.Optimizer.iterations
    (List.length o.Optimizer.trace)

let test_json_round_trip () =
  let store, doc = setup () in
  let r =
    match Engine.query ~profile:true store ~context:doc.Store.doc_key "//a[b = 'two']" with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let rep = Option.get r.Engine.profile in
  let v = Profile.render_json rep in
  let text = J.to_string v in
  (match J.of_string text with
  | Ok v' -> Alcotest.(check bool) "parse(render) = value" true (J.equal v v')
  | Error e -> Alcotest.fail ("rendered JSON failed to parse: " ^ e));
  (* spot-check the joined numbers survive the trip *)
  match J.of_string text with
  | Error e -> Alcotest.fail e
  | Ok v' -> (
      match J.member "plan" v' with
      | Some plan -> (
          match J.member "actual" plan with
          | Some actual ->
              Alcotest.(check bool) "root tuples in JSON" true
                (J.member "tuples" actual = Some (J.Int (List.length r.Engine.keys)))
          | None -> Alcotest.fail "plan.actual missing")
      | None -> Alcotest.fail "plan missing")

let test_json_parser_edges () =
  let round s =
    match J.of_string s with
    | Ok v -> J.to_string v
    | Error e -> Alcotest.fail (s ^ ": " ^ e)
  in
  Alcotest.(check string) "escapes" {|"a\"b\\c\nd"|} (round {|"a\"b\\c\nd"|});
  Alcotest.(check string) "unicode escape" "\"\xc3\xa9\"" (round {|"é"|});
  Alcotest.(check string) "nested" {|{"a": [1, 2.5, null, true]}|}
    (round {| { "a" : [ 1 , 2.5 , null , true ] } |});
  (match J.of_string "{\"a\": }" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted malformed object");
  (match J.of_string "[1, 2] trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted trailing garbage");
  (* floats round-trip exactly, including awkward reprs *)
  List.iter
    (fun f ->
      match J.of_string (J.to_string (J.Float f)) with
      | Ok (J.Float f') -> Alcotest.(check (float 0.0)) (string_of_float f) f f'
      | Ok _ -> Alcotest.fail "float re-parsed as non-float"
      | Error e -> Alcotest.fail e)
    [ 0.1; 1.0 /. 3.0; 1e-9; 6.02e23; 0.70905685424804688 ];
  (* non-finite floats must not leak into the output *)
  Alcotest.(check string) "infinity renders as null" "null" (J.to_string (J.Float infinity));
  Alcotest.(check string) "nan renders as null" "null" (J.to_string (J.Float Float.nan))

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_explain_analyze_render () =
  let store, doc = setup () in
  (match Engine.explain_analyze store doc "//a/b" with
  | Error e -> Alcotest.fail e
  | Ok text -> Alcotest.(check bool) "mentions q-error" true (contains ~sub:"q-error" text));
  match Engine.explain_analyze ~json:true store doc "//a/b" with
  | Error e -> Alcotest.fail e
  | Ok text -> (
      match J.of_string text with
      | Ok v ->
          Alcotest.(check bool) "results field" true
            (J.member "results" v = Some (J.Int 3))
      | Error e -> Alcotest.fail ("explain_analyze --json not valid JSON: " ^ e))

let suite =
  ( "profile",
    [ Alcotest.test_case "operator tuple counts" `Quick test_operator_tuple_counts;
      Alcotest.test_case "predicate re-rooting counts" `Quick test_predicate_rerooting_counts;
      Alcotest.test_case "exact counts give q-error 1.0" `Quick test_exact_count_q_error_is_one;
      Alcotest.test_case "q-error definition" `Quick test_q_error_definition;
      Alcotest.test_case "profile off leaves no structures" `Quick test_profile_off_no_structures;
      Alcotest.test_case "trace spans" `Quick test_spans;
      Alcotest.test_case "JSON report round-trips" `Quick test_json_round_trip;
      Alcotest.test_case "JSON parser edge cases" `Quick test_json_parser_edges;
      Alcotest.test_case "explain --analyze rendering" `Quick test_explain_analyze_render ] )
