(* Tests for the small-scope bounded soundness prover: the committed
   configuration's coverage, a real-library sweep with zero
   counterexamples, the mutant catalogue (each seeded unsoundness caught,
   attributed to the right check, and shrunk within the documented
   bounds), caller-state isolation, and the S-expression / JSON
   round-trips behind [vamana prove]. *)

module SC = Vamana.Smallcheck
module J = Vamana.Profile.Json
module Store = Mass.Store
module Service = Vamana_service.Service

(* a cheaper configuration than the committed CI bounds — the mutants
   all fail within the first few hundred pairs, so the sweep
   short-circuits almost immediately *)
let small = { SC.default_bounds with SC.max_nodes = 3 }

let tiny =
  { SC.depth = 2; fanout = 1; tags = 1; texts = 1; max_nodes = 2; steps = 1 }

(* ---- committed coverage ---- *)

let test_enumeration_coverage () =
  let docs = List.length (SC.enum_documents SC.default_bounds) in
  let plans = List.length (SC.enum_queries SC.default_bounds) in
  (* the numbers EXPERIMENTS.md cites for the CI configuration *)
  Alcotest.(check int) "documents at CI bounds" 118 docs;
  Alcotest.(check int) "plans at CI bounds" 6175 plans;
  Alcotest.(check bool) "CI sweep is at least 10k pairs" true (docs * plans >= 10_000)

(* ---- the real library is sound on the bounded domain ---- *)

let test_real_library_sound () =
  let report = SC.prove ~random:50 small in
  Alcotest.(check (list string)) "no counterexamples" []
    (List.map (fun cx -> cx.SC.cx_detail) report.SC.rp_counterexamples);
  Alcotest.(check bool) "at least 10k pairs" true (report.SC.rp_pairs >= 10_000);
  Alcotest.(check int) "randomized layer ran" 50 report.SC.rp_random;
  Alcotest.(check bool) "rule sites exercised" true (report.SC.rp_sites > 0);
  (* the interference family ran at its own committed bounds *)
  Alcotest.(check bool) "at least 10k interference triples" true
    (report.SC.rp_triples >= 10_000);
  Alcotest.(check bool) "updates applied" true (report.SC.rp_updates > 0)

(* ---- the interference family ---- *)

let test_interference_family_round_trips () =
  Alcotest.(check (option string)) "family slug round-trips" (Some "interference")
    (Option.map SC.family_to_string (SC.family_of_string "interference"));
  Alcotest.(check bool) "unknown slug rejected" true (SC.family_of_string "nope" = None);
  (* committed interference bounds: single-step queries, tiny documents *)
  Alcotest.(check int) "single-step queries" 1 SC.interference_bounds.SC.steps;
  Alcotest.(check bool) "tighter than the pair sweep" true
    (SC.interference_bounds.SC.max_nodes <= SC.default_bounds.SC.max_nodes)

let test_lying_footprint_attribution () =
  (* the seeded footprint mutant claims every plan reads nothing; the
     interference sweep must catch it and name the footprint check —
     and the real subject must pass the very same shrunk pair *)
  let m =
    match SC.find_mutant "lying-footprint" with
    | Some m -> m
    | None -> Alcotest.fail "lying-footprint mutant missing from the catalogue"
  in
  Alcotest.(check (option string)) "expected check" (Some "footprint-interference")
    (SC.subject_expected_check m);
  let report = SC.prove ~subject:m ~random:0 ~max_counterexamples:1 small in
  match report.SC.rp_counterexamples with
  | [ cx ] ->
      Alcotest.(check bool) "attributed to the interference family" true
        (cx.SC.cx_family = SC.Interference)
  | l -> Alcotest.failf "expected exactly 1 counterexample, got %d" (List.length l)

(* ---- the prover proves itself: every mutant caught and shrunk ---- *)

let check_mutant name () =
  let m =
    match SC.find_mutant name with
    | Some m -> m
    | None -> Alcotest.failf "unknown mutant %s" name
  in
  let report = SC.prove ~subject:m ~random:0 ~max_counterexamples:1 small in
  match report.SC.rp_counterexamples with
  | [ cx ] ->
      (* the counterexample names exactly the seeded unsoundness *)
      Alcotest.(check (option string)) (name ^ ": check slug")
        (SC.subject_expected_check m) (Some cx.SC.cx_check);
      Alcotest.(check (option string)) (name ^ ": rule")
        (SC.subject_expected_rule m) cx.SC.cx_rule;
      (* documented shrink bound: every catalogue entry minimizes to a
         document of ≤ 2 nodes and a plan of ≤ 2 steps *)
      Alcotest.(check bool) (name ^ ": doc within shrink bound") true
        (cx.SC.cx_doc_nodes <= 2);
      Alcotest.(check bool) (name ^ ": query within shrink bound") true
        (cx.SC.cx_query_steps <= 2);
      (* the shrunk pair still reproduces under a one-shot replay *)
      (match SC.check_pair ~subject:m ~doc:cx.SC.cx_doc ~query:cx.SC.cx_query () with
      | [ cx' ] ->
          Alcotest.(check string) (name ^ ": replay reproduces the check") cx.SC.cx_check
            cx'.SC.cx_check
      | l -> Alcotest.failf "%s: replay found %d counterexamples" name (List.length l));
      (* and the real library passes the same pair: the failure really is
         the mutant's *)
      Alcotest.(check int) (name ^ ": real library passes the pair") 0
        (List.length (SC.check_pair ~doc:cx.SC.cx_doc ~query:cx.SC.cx_query ()))
  | l -> Alcotest.failf "%s: expected exactly 1 counterexample, got %d" name (List.length l)

let mutant_cases =
  List.map
    (fun m ->
      let name = SC.subject_name m in
      Alcotest.test_case ("mutant " ^ name) `Quick (check_mutant name))
    SC.mutants

let test_mutant_catalogue_complete () =
  Alcotest.(check int) "eight seeded mutants" 8 (List.length SC.mutants);
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (SC.subject_name m ^ " has an expected check")
        true
        (SC.subject_expected_check m <> None))
    SC.mutants

(* ---- caller-state isolation: prove builds its own world ---- *)

let test_caller_state_untouched () =
  let store, doc, service =
    let store = Store.create () in
    let doc = Store.load_string store ~name:"t.xml" "<site><a/><b/></site>" in
    (store, doc, Service.create store)
  in
  (match Service.query service ~context:doc.Store.doc_key "/child::site/child::a" with
  | Error e -> Alcotest.fail e
  | Ok _ -> ());
  let cache_before = Service.plan_cache_length service in
  let epoch_before = Store.epoch store in
  let docs_before = List.length (Store.documents store) in
  let report = SC.prove ~random:10 tiny in
  Alcotest.(check int) "prover found nothing" 0 (List.length report.SC.rp_counterexamples);
  Alcotest.(check int) "plan cache untouched" cache_before
    (Service.plan_cache_length service);
  Alcotest.(check int) "store epoch untouched" epoch_before (Store.epoch store);
  Alcotest.(check int) "document table untouched" docs_before
    (List.length (Store.documents store))

(* ---- replay S-expressions ---- *)

let first_mutant_cx () =
  let m = Option.get (SC.find_mutant "chain-off-by-one") in
  let report = SC.prove ~subject:m ~random:0 ~max_counterexamples:1 small in
  match report.SC.rp_counterexamples with
  | [ cx ] -> cx
  | _ -> Alcotest.fail "chain-off-by-one produced no counterexample"

let test_sexp_round_trip () =
  let cx = first_mutant_cx () in
  let sexp = SC.counterexample_to_sexp cx in
  match SC.replay_of_sexp sexp with
  | Error e -> Alcotest.fail e
  | Ok (doc, query, mutant) ->
      Alcotest.(check string) "doc survives the round trip" cx.SC.cx_doc doc;
      Alcotest.(check string) "query survives the round trip" cx.SC.cx_query query;
      (* the artifact does not pin a subject; the harness re-selects it *)
      Alcotest.(check (option string)) "no mutant field" None mutant

let test_sexp_hand_written () =
  match
    SC.replay_of_sexp
      "(replay (doc \"<a><a/></a>\") (query \"/descendant::a\") (mutant card-off-by-one))"
  with
  | Error e -> Alcotest.fail e
  | Ok (doc, query, mutant) ->
      Alcotest.(check string) "doc" "<a><a/></a>" doc;
      Alcotest.(check string) "query" "/descendant::a" query;
      Alcotest.(check (option string)) "mutant" (Some "card-off-by-one") mutant

let test_sexp_rejects_garbage () =
  (match SC.replay_of_sexp "not a sexp at all (" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error _ -> ());
  match SC.replay_of_sexp "(replay (query \"/a\"))" with
  | Ok _ -> Alcotest.fail "accepted a replay without a document"
  | Error _ -> ()

(* ---- JSON: vamana prove --json shares the lint writer ---- *)

let test_report_json_round_trip () =
  let report = SC.prove ~random:5 tiny in
  let doc = SC.report_to_json report in
  let s = J.to_string doc in
  match J.of_string s with
  | Error e -> Alcotest.failf "report JSON does not reparse: %s" e
  | Ok doc' -> Alcotest.(check bool) "exact round trip" true (J.equal doc doc')

let test_counterexample_json () =
  let cx = first_mutant_cx () in
  let m = Option.get (SC.find_mutant "chain-off-by-one") in
  let report = SC.prove ~subject:m ~random:0 ~max_counterexamples:1 small in
  let s = J.to_string (SC.report_to_json report) in
  (match J.of_string s with
  | Error e -> Alcotest.failf "mutant report JSON does not reparse: %s" e
  | Ok _ -> ());
  Alcotest.(check bool) "JSON carries the check slug" true
    (let sub = "\"" ^ cx.SC.cx_check ^ "\"" in
     let n = String.length s and m = String.length sub in
     let rec find i = i + m <= n && (String.sub s i m = sub || find (i + 1)) in
     find 0)

let suite =
  ( "smallcheck",
    [ Alcotest.test_case "enumeration coverage" `Quick test_enumeration_coverage;
      Alcotest.test_case "real library sound on bounded domain" `Quick test_real_library_sound;
      Alcotest.test_case "interference family round trips" `Quick
        test_interference_family_round_trips;
      Alcotest.test_case "lying footprint attribution" `Quick
        test_lying_footprint_attribution;
      Alcotest.test_case "mutant catalogue complete" `Quick test_mutant_catalogue_complete ]
    @ mutant_cases
    @ [ Alcotest.test_case "caller state untouched" `Quick test_caller_state_untouched;
        Alcotest.test_case "sexp round trip" `Quick test_sexp_round_trip;
        Alcotest.test_case "sexp hand-written replay" `Quick test_sexp_hand_written;
        Alcotest.test_case "sexp rejects garbage" `Quick test_sexp_rejects_garbage;
        Alcotest.test_case "report JSON round trip" `Quick test_report_json_round_trip;
        Alcotest.test_case "counterexample JSON" `Quick test_counterexample_json ] )
