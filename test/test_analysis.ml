(* Static-analysis tests: per-operator property inference, static
   emptiness (with the engine short-circuit's page-read delta), update
   safety of cached verdicts, structural well-formedness, the seeded
   order-breaking rewrite trip-check, and a differential harness that
   validates every analyzer claim against observed executor behaviour on
   generated queries. *)

open Vamana
module Store = Mass.Store
module Ast = Xpath.Ast
module A = Analysis

let compile src =
  match Compile.compile_query src with
  | Ok p -> p
  | Error e -> Alcotest.fail e

let cleaned src = Rewrite.apply_cleanup (compile src)

let analyze store (doc : Store.doc) plan = A.analyze store ~scope:(Some doc.Store.doc_key) plan

let root_props store doc src = (analyze store doc (cleaned src)).A.root_props

let check_props label (p : A.props) ~order ~distinct ~card =
  Alcotest.(check bool) (label ^ " order") true (p.A.order = order);
  Alcotest.(check bool) (label ^ " distinct") distinct p.A.distinct;
  Alcotest.(check (option int)) (label ^ " card") card p.A.card_max

(* ---- per-operator property inference ---- *)

let test_step_props () =
  let store, doc = Test_vamana.setup () in
  (* descendant over the single root context: sorted, distinct, bounded
     by COUNT(person) = 3 *)
  check_props "//person" (root_props store doc "//person") ~order:A.Doc ~distinct:true
    ~card:(Some 3);
  (* child chain: child preserves distinctness (one parent per node),
     but over a possibly-nesting descendant input order is forfeited *)
  check_props "//person/address" (root_props store doc "//person/address") ~order:A.Unordered
    ~distinct:true ~card:(Some 2);
  (* attribute axis: leaf-kind stream, never nests *)
  let p = root_props store doc "//watch/@open_auction" in
  check_props "//watch/@open_auction" p ~order:A.Unordered ~distinct:true ~card:(Some 3);
  Alcotest.(check bool) "attrs disjoint" true p.A.no_nesting;
  (* ancestor over a multi-tuple stream: nothing provable *)
  check_props "//watch/ancestor::person" (root_props store doc "//watch/ancestor::person")
    ~order:A.Unordered ~distinct:false ~card:(Some 3);
  (* self over a proven stream keeps its properties *)
  check_props "//person/self::node()" (root_props store doc "//person/self::node()")
    ~order:A.Doc ~distinct:true ~card:(Some 3);
  (* parent from a bounded input: card min(input, COUNT) *)
  check_props "/child::site/parent::node()" (root_props store doc "/child::site/parent::node()")
    ~order:A.Doc ~distinct:true ~card:(Some 1)

let test_root_and_generic_props () =
  let store, doc = Test_vamana.setup () in
  (* R passes its context through *)
  let plan = cleaned "//person" in
  let a = analyze store doc plan in
  let chain = Plan.context_chain plan in
  let step = List.nth chain 1 in
  Alcotest.(check bool) "R = step props" true
    (A.props_of a plan = A.props_of a step);
  (* a last() predicate compiles to a generic step; the evaluator sorts
     per context, and the single root context makes the claim exact *)
  let gplan = cleaned "//person[last()]" in
  Alcotest.(check bool) "generic step present" true
    (List.exists
       (fun (op : Plan.op) ->
         match op.Plan.kind with Plan.Step_generic _ -> true | _ -> false)
       (Plan.subtree_ops gplan));
  let ga = (analyze store doc gplan).A.root_props in
  Alcotest.(check bool) "generic card bounded" true
    (match ga.A.card_max with Some n -> n <= 3 | None -> false)

let test_value_step_props () =
  let store, doc = Test_vamana.setup () in
  let scope = Some doc.Store.doc_key in
  let o = Optimizer.optimize store ~scope (compile "//name[text()='Yung Flach']") in
  let has_value_step =
    List.exists
      (fun (op : Plan.op) ->
        match op.Plan.kind with Plan.Value_step _ -> true | _ -> false)
      (Plan.subtree_ops o.Optimizer.plan)
  in
  Alcotest.(check bool) "value_index fired" true has_value_step;
  let p = (analyze store doc o.Optimizer.plan).A.root_props in
  (* TC('Yung Flach') = 1: a single-tuple stream, every property holds *)
  check_props "value plan" p ~order:A.Doc ~distinct:true ~card:(Some 1)

(* ---- static emptiness and dead predicates ---- *)

let test_emptiness () =
  let store, doc = Test_vamana.setup () in
  let empty src =
    let a = analyze store doc (cleaned src) in
    A.statically_empty a
  in
  Alcotest.(check bool) "absent tag" true (empty "//nosuchtag");
  Alcotest.(check bool) "absent tag deeper" true (empty "//nosuchtag/child::x");
  Alcotest.(check bool) "position beyond COUNT" true (empty "//person[5]");
  Alcotest.(check bool) "absent value" true (empty "//province[text()='Nowhere']");
  Alcotest.(check bool) "present value not empty" false (empty "//province[text()='Vermont']");
  Alcotest.(check bool) "present tag not empty" false (empty "//person");
  (* the diagnostics name the cause *)
  let a = analyze store doc (cleaned "//province[text()='Nowhere']") in
  Alcotest.(check bool) "dead-predicate reported" true
    (List.exists (fun (d : A.diagnostic) -> d.A.code = "dead-predicate") a.A.diagnostics);
  let a = analyze store doc (cleaned "//nosuchtag") in
  Alcotest.(check bool) "empty-step reported" true
    (List.exists (fun (d : A.diagnostic) -> d.A.code = "empty-step") a.A.diagnostics);
  (* a tautological position predicate is flagged as redundant *)
  let a = analyze store doc (cleaned "//person[position()>=1]") in
  Alcotest.(check bool) "redundant-predicate reported" true
    (List.exists (fun (d : A.diagnostic) -> d.A.code = "redundant-predicate") a.A.diagnostics)

(* the engine must skip execution entirely: zero page reads *)
let test_engine_short_circuit () =
  let store, doc = Test_vamana.setup () in
  (match Engine.query store ~context:doc.Store.doc_key "//person" with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check bool) "control query reads pages" true
        (r.Engine.io.Storage.Stats.logical_reads > 0));
  match Engine.query store ~context:doc.Store.doc_key "//nosuchtag" with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check (list string)) "no results" []
        (List.map Flex.to_string r.Engine.keys);
      Alcotest.(check bool) "statically empty" true (A.statically_empty r.Engine.analysis);
      Alcotest.(check int) "zero logical reads" 0 r.Engine.io.Storage.Stats.logical_reads;
      Alcotest.(check int) "zero physical reads" 0 r.Engine.io.Storage.Stats.physical_reads

let test_short_circuit_event () =
  let store, doc = Test_vamana.setup () in
  Obs.reset ();
  Obs.attach_ring ();
  Fun.protect
    ~finally:(fun () -> Obs.reset ())
    (fun () ->
      (match Engine.query store ~context:doc.Store.doc_key "//nosuchtag" with
      | Error e -> Alcotest.fail e
      | Ok _ -> ());
      let events = Obs.drain () in
      Alcotest.(check bool) "static_empty_skip emitted" true
        (List.exists (fun (e : Obs.event) -> e.Obs.name = "static_empty_skip") events))

(* a cached emptiness verdict must not survive a store update *)
let test_update_safety () =
  let store, doc = Test_vamana.setup () in
  let scope = Some doc.Store.doc_key in
  match Engine.prepare store ~scope "//freshtag" with
  | Error e -> Alcotest.fail e
  | Ok p ->
      let r0 = Engine.execute_prepared store ~context:doc.Store.doc_key p in
      Alcotest.(check int) "empty before insert" 0 (List.length r0.Engine.keys);
      let parent =
        match Store.root_element_key doc store with
        | Some k -> k
        | None -> Alcotest.fail "no root element"
      in
      let _ = Store.insert_element store ~parent "freshtag" [] (Some "hello") in
      (* same prepared value, post-update epoch: verdict is re-derived *)
      let r1 = Engine.execute_prepared store ~context:doc.Store.doc_key p in
      Alcotest.(check int) "found after insert" 1 (List.length r1.Engine.keys)

(* ---- structural well-formedness and the strict gate ---- *)

let test_structural () =
  let leaf = Plan.mk (Plan.Step (Ast.Descendant, Ast.Name_test "person")) in
  let ok_plan = Plan.mk ~context:leaf Plan.Root in
  Alcotest.(check int) "well-formed plan" 0 (List.length (A.structural_diagnostics ok_plan));
  A.assert_well_formed ok_plan;
  (* R with predicates: the executor would silently ignore them *)
  let bad = Plan.mk ~context:leaf ~predicates:[ Plan.Position (Ast.Eq, 1.) ] Plan.Root in
  Alcotest.(check bool) "R-with-predicates flagged" true
    (List.exists (fun (d : A.diagnostic) -> d.A.severity = A.Error) (A.structural_diagnostics bad));
  (match A.assert_well_formed bad with
  | () -> Alcotest.fail "assert_well_formed accepted a bad plan"
  | exception A.Ill_formed _ -> ());
  (* β with a non-comparison operator: the executor raises mid-stream *)
  let bad_beta =
    Plan.mk
      ~context:(Plan.mk (Plan.Step (Ast.Descendant_or_self, Ast.Node_test)))
      ~predicates:
        [ Plan.Binary
            (Plan.fresh_id (), Ast.Add, Plan.Number_operand 1., Plan.Number_operand 2.) ]
      (Plan.Step (Ast.Child, Ast.Name_test "person"))
  in
  let root = Plan.mk ~context:bad_beta Plan.Root in
  Alcotest.(check bool) "non-comparison β flagged" true
    (List.exists (fun (d : A.diagnostic) -> d.A.severity = A.Error) (A.structural_diagnostics root));
  (* the strict gate validates before instantiating iterators *)
  let store, doc = Test_vamana.setup () in
  A.with_strict (fun () ->
      match Exec.run store ~context:doc.Store.doc_key root with
      | _ -> Alcotest.fail "strict executor accepted a malformed plan"
      | exception A.Ill_formed _ -> ());
  (* without strict the plan still opens (and raises only if the bad
     predicate is ever evaluated) — the gate is opt-in *)
  Alcotest.(check pass) "lenient by default" () ()

(* ---- seeded-bug trip-check: an order-breaking rule must be rejected ---- *)

(* descendant_merge with the positional-safety guard deliberately
   removed: merging [dos::node()/child::t[position()]] into
   [descendant::t[position()]] re-streams the positional candidates on a
   different axis, changing which node is "the 2nd" *)
let buggy_descendant_merge : Rewrite.rule =
  let apply root ~target =
    let chain = Plan.context_chain root in
    let rec go acc = function
      | (a : Plan.op) :: (b : Plan.op) :: rest when a.Plan.id = target -> (
          match (a.Plan.kind, b.Plan.kind) with
          | Plan.Step (Ast.Child, t), Plan.Step (Ast.Descendant_or_self, Ast.Node_test)
            when b.Plan.predicates = [] ->
              let merged = Plan.mk ~predicates:a.Plan.predicates (Plan.Step (Ast.Descendant, t)) in
              Plan.rebuild_chain (List.rev_append acc (merged :: rest))
          | _ -> None)
      | x :: rest -> go (x :: acc) rest
      | [] -> None
    in
    go [] chain
  in
  { Rewrite.name = "buggy-descendant-merge";
    description = "seeded bug: descendant merge without the positional guard";
    apply }

let test_seeded_bug_rejected () =
  let store, doc = Test_vamana.setup () in
  let scope = Some doc.Store.doc_key in
  let plan = compile "//person[2]" in
  let o = Optimizer.optimize ~rules:[ buggy_descendant_merge ] store ~scope plan in
  Alcotest.(check int) "no rewrite admitted" 0 (List.length o.Optimizer.trace);
  let property_rejections =
    List.fold_left
      (fun acc (s : Optimizer.iteration_stat) -> acc + s.Optimizer.property_rejected)
      0 o.Optimizer.iteration_stats
  in
  Alcotest.(check bool) "property check tripped" true (property_rejections > 0);
  (* the surviving plan still answers correctly *)
  let keys = Exec.run store ~context:doc.Store.doc_key o.Optimizer.plan in
  Alcotest.(check int) "correct result" 1 (List.length keys);
  (* sanity: the same merge on a positional-free plan preserves the
     signature — the rejection above is specifically about the
     positional fingerprint, not the rule shape.  (The optimizer never
     sees this case: cleanup merges positional-free dos/child pairs
     before the cost search runs.) *)
  let before = compile "//person" in
  let target = (Plan.leaf before).Plan.id in
  (* the chain is [R; child::person; dos::node()]: target the child step *)
  let target =
    match Plan.context_chain before with
    | [ _; c; _ ] -> c.Plan.id
    | _ -> target
  in
  match buggy_descendant_merge.Rewrite.apply before ~target with
  | None -> Alcotest.fail "merge did not fire on //person"
  | Some after ->
      let analyze p = A.analyze store ~scope p in
      let a_before = analyze before and a_after = analyze after in
      (match
         A.check_rewrite
           ~before:(A.signature_of a_before before)
           ~after:(A.signature_of a_after after)
           ~after_errors:(A.errors a_after)
       with
      | Ok () -> ()
      | Error reason -> Alcotest.fail ("positional-free merge rejected: " ^ reason))

let test_seeded_bug_strict_and_event () =
  let store, doc = Test_vamana.setup () in
  let scope = Some doc.Store.doc_key in
  let plan = compile "//person[2]" in
  (* the violation is visible on the bus *)
  Obs.reset ();
  Obs.attach_ring ();
  Fun.protect
    ~finally:(fun () -> Obs.reset ())
    (fun () ->
      let _ = Optimizer.optimize ~rules:[ buggy_descendant_merge ] store ~scope plan in
      let events = Obs.drain () in
      Alcotest.(check bool) "rule_property_violation emitted" true
        (List.exists
           (fun (e : Obs.event) ->
             e.Obs.name = "rule_property_violation" && e.Obs.severity = Obs.Warn)
           events));
  (* under the debug flag the rejection escalates to a hard error *)
  A.with_strict (fun () ->
      match Optimizer.optimize ~rules:[ buggy_descendant_merge ] store ~scope plan with
      | _ -> Alcotest.fail "strict mode did not raise on the seeded bug"
      | exception A.Property_violation _ -> ())

(* the stock rule library never trips the property check *)
let test_stock_rules_clean () =
  let store, doc = Test_vamana.setup () in
  let scope = Some doc.Store.doc_key in
  List.iter
    (fun src ->
      let o = Optimizer.optimize store ~scope (compile src) in
      let rejections =
        List.fold_left
          (fun acc (s : Optimizer.iteration_stat) -> acc + s.Optimizer.property_rejected)
          0 o.Optimizer.iteration_stats
      in
      Alcotest.(check int) (src ^ " property rejections") 0 rejections)
    Test_vamana.paper_queries

(* ---- differential harness: analyzer claims vs observed behaviour ---- *)

(* deterministic LCG so the generated corpus is identical on every run *)
let mk_rng seed =
  let st = ref seed in
  fun bound ->
    st := ((!st * 1103515245) + 12345) land 0x3FFFFFFF;
    !st mod bound

let pick rng l = List.nth l (rng (List.length l))

let axes =
  [ "child"; "child"; "child"; "descendant"; "descendant"; "descendant-or-self"; "self";
    "parent"; "ancestor"; "ancestor-or-self"; "following-sibling"; "preceding-sibling";
    "following"; "preceding"; "attribute" ]

let elem_tests =
  [ "person"; "name"; "address"; "city"; "watches"; "watch"; "open_auction"; "price";
    "itemref"; "province"; "item"; "nosuchtag"; "*"; "text()"; "node()" ]

let attr_tests = [ "id"; "open_auction"; "item"; "nosuchattr"; "*" ]

let predicates =
  [ ""; ""; ""; ""; ""; "[1]"; "[2]"; "[5]"; "[last()]"; "[position()>1]"; "[name]";
    "[child::name]"; "[text()='Vermont']"; "[text()='zzz-absent']"; "[@id='person0']";
    "[not(child::watches)]" ]

(* a step is "heavy" when it can fan out per context; allowing heavy
   steps only in first position (single context) keeps the harness fast
   without narrowing the grammar *)
let heavy axis test =
  match axis with
  | "following" | "preceding" -> true
  | "descendant" | "descendant-or-self" | "ancestor" | "ancestor-or-self" ->
      test = "node()" || test = "*"
  | _ -> false

let gen_query rng =
  let rec gen_steps n first acc =
    if n = 0 then List.rev acc
    else
      let axis = pick rng axes in
      let test = if axis = "attribute" then pick rng attr_tests else pick rng elem_tests in
      if heavy axis test && not first then gen_steps n first acc
      else
        let pred = pick rng predicates in
        (* positional / value predicates over an attribute step parse but
           add nothing; keep them to exercise the analyzer anyway *)
        gen_steps (n - 1) false ((axis ^ "::" ^ test ^ pred) :: acc)
  in
  let n = 1 + rng 3 in
  "/" ^ String.concat "/" (gen_steps n true [])

let is_sorted cmp l =
  let rec go = function a :: (b :: _ as rest) -> cmp a b <= 0 && go rest | _ -> true in
  go l

let is_ancestor a b =
  Flex.depth a < Flex.depth b && Flex.equal a (Flex.prefix b (Flex.depth a))

(* a violated claim is raised (not Alcotest.fail'd) so the harness can
   shrink the (document, query) pair before reporting *)
exception Claim of string

let claimf fmt = Printf.ksprintf (fun s -> raise (Claim s)) fmt

let check_claims store (doc : Store.doc) src plan =
  let a = A.analyze store ~scope:(Some doc.Store.doc_key) plan in
  let raw = Exec.run_raw store ~context:doc.Store.doc_key plan in
  let set = List.sort_uniq Flex.compare raw in
  let p = a.A.root_props in
  (match p.A.order with
  | A.Doc ->
      if not (is_sorted Flex.compare raw) then
        claimf "%s: claimed doc-order, stream is not sorted" src
  | A.Rev_doc ->
      if not (is_sorted (fun x y -> Flex.compare y x) raw) then
        claimf "%s: claimed reverse-order, stream is not reverse-sorted" src
  | A.Unordered -> ());
  if p.A.distinct && List.length raw <> List.length set then
    claimf "%s: claimed distinct, stream has duplicates" src;
  (match p.A.card_max with
  | Some n ->
      if List.length set > n then
        claimf "%s: claimed card<=%d, result set has %d" src n (List.length set)
  | None -> ());
  (if p.A.no_nesting then
     let rec adjacent = function
       | x :: (y :: _ as rest) ->
           if is_ancestor x y then
             claimf "%s: claimed disjoint, %s nests %s" src (Flex.to_string x)
               (Flex.to_string y)
           else adjacent rest
       | _ -> ()
     in
     adjacent set);
  if A.statically_empty a && raw <> [] then
    claimf "%s: claimed statically empty, stream has %d tuples" src (List.length raw);
  set

let test_differential () =
  let store = Store.create ~pool_pages:16384 () in
  let doc = Xmark.load store 0.1 in
  let seed = 20260806 in
  let rng = mk_rng seed in
  let n_queries = 220 in
  let checked = ref 0 in
  let doc_xml =
    lazy
      (match Store.to_tree store doc.Store.doc_key with
      | Some t -> Xml.Writer.to_string t
      | None -> Alcotest.fail "cannot reconstruct the XMark document")
  in
  (* a failure on the full XMark document is unreadable; shrink it to a
     minimal (document, query) pair with the bounded prover's shrinker
     and report that, together with the corpus seed for replay *)
  let fail_minimal src msg =
    match Smallcheck.shrink_pair ~doc:(Lazy.force doc_xml) ~query:src () with
    | Some cx ->
        Alcotest.failf
          "%s (corpus seed %d)\nminimal counterexample (%d shrink steps):\n  doc   %s\n  query %s\n  %s"
          msg seed cx.Smallcheck.cx_shrink_steps cx.Smallcheck.cx_doc cx.Smallcheck.cx_query
          cx.Smallcheck.cx_detail
    | None -> Alcotest.failf "%s (corpus seed %d, query %s)" msg seed src
    | exception _ -> Alcotest.failf "%s (corpus seed %d, query %s)" msg seed src
  in
  for _ = 1 to n_queries do
    let src = gen_query rng in
    try
      match (Engine.query ~optimize:false store ~context:doc.Store.doc_key src,
             Engine.query ~optimize:true store ~context:doc.Store.doc_key src)
      with
      | Error e, _ | _, Error e -> Alcotest.failf "%s: %s" src e
      | Ok r0, Ok r1 ->
          (* the engine's two pipelines must agree on the node set *)
          if not (List.equal Flex.equal r0.Engine.keys r1.Engine.keys) then
            claimf "%s: unoptimized %d keys, optimized %d keys — result sets differ" src
              (List.length r0.Engine.keys) (List.length r1.Engine.keys);
          (* every analyzer claim must hold on both plans, observed on the
             raw (unsorted, undeduplicated) executor stream *)
          let s0 = check_claims store doc src r0.Engine.executed_plan in
          let s1 = check_claims store doc src r1.Engine.executed_plan in
          if not (List.equal Flex.equal s0 s1) then
            claimf "%s: raw streams disagree with engine results" src;
          if not (List.equal Flex.equal s0 r0.Engine.keys) then
            claimf "%s: engine keys differ from observed node set" src;
          incr checked
    with Claim msg -> fail_minimal src msg
  done;
  Alcotest.(check int) "all generated queries checked" n_queries !checked;
  (* the analyzer's emptiness verdicts agree with the index probes the
     storage layer exposes *)
  Alcotest.(check bool) "test_present agrees" true
    (Store.test_present store ~scope:doc.Store.doc_key ~principal:Mass.Record.Element
       (Ast.Name_test "person"));
  Alcotest.(check bool) "absent tag agrees" false
    (Store.test_present store ~scope:doc.Store.doc_key ~principal:Mass.Record.Element
       (Ast.Name_test "nosuchtag"));
  Alcotest.(check bool) "value_present agrees" false
    (Store.value_present store ~scope:doc.Store.doc_key "zzz-absent")

let suite =
  ( "analysis",
    [ Alcotest.test_case "step properties" `Quick test_step_props;
      Alcotest.test_case "root and generic properties" `Quick test_root_and_generic_props;
      Alcotest.test_case "value step properties" `Quick test_value_step_props;
      Alcotest.test_case "static emptiness" `Quick test_emptiness;
      Alcotest.test_case "engine short-circuit" `Quick test_engine_short_circuit;
      Alcotest.test_case "short-circuit event" `Quick test_short_circuit_event;
      Alcotest.test_case "update safety" `Quick test_update_safety;
      Alcotest.test_case "structural well-formedness" `Quick test_structural;
      Alcotest.test_case "seeded bug rejected" `Quick test_seeded_bug_rejected;
      Alcotest.test_case "seeded bug strict + event" `Quick test_seeded_bug_strict_and_event;
      Alcotest.test_case "stock rules property-clean" `Quick test_stock_rules_clean;
      Alcotest.test_case "differential harness" `Slow test_differential ] )
