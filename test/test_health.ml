(* Tests for the plan-health subsystem: sampler cadence and its
   allocation-free hot path, silence on unsampled executions, the
   drift-detection -> adaptive-replan loop end to end, replan backoff,
   and sampled-profile determinism against an explicit profiled run. *)

module Store = Mass.Store
module Service = Vamana_service.Service
module Metrics = Vamana_service.Metrics
module Health = Vamana_service.Health

let counter service = Metrics.counter (Service.metrics service)

let base_doc =
  "<site><people><person id='p1'><name>Ada</name><address><city>Turin</city></address></person>\
   <person id='p2'><name>Grace</name><address><city>Arlington</city></address></person>\
   </people></site>"

let setup ?sample_every ?drift_threshold () =
  let store = Store.create () in
  let doc = Store.load_string store ~name:"t.xml" base_doc in
  (* result cache off: a served answer skips execution and the sampler
     counts real executions only *)
  let service =
    Service.create ~result_cache_capacity:0 ?sample_every ?drift_threshold store
  in
  (store, doc, service)

let run service doc q =
  match Service.query_doc service doc q with
  | Ok o -> o
  | Error e -> Alcotest.failf "query %s failed: %s" q e

let people_key store doc =
  match Vamana.Engine.query_doc store doc "/site/people" with
  | Ok r -> List.hd r.Vamana.Engine.keys
  | Error e -> Alcotest.fail e

(* ---- sampler ---- *)

let test_sampler_cadence () =
  let h = Health.create ~sample_every:4 () in
  let r = Health.record h ~key:"k" ~query:"q" ~scope:"" ~optimized:true in
  let picks = List.init 12 (fun _ -> Health.note_execution h r) in
  Alcotest.(check (list bool)) "first always, then every 4th"
    [ true; false; false; false; true; false; false; false; true; false; false; false ]
    picks;
  Alcotest.(check int) "executions counted" 12 r.Health.hr_executions;
  let off = Health.create ~sample_every:0 () in
  let r0 = Health.record off ~key:"k" ~query:"q" ~scope:"" ~optimized:true in
  Alcotest.(check bool) "sample_every 0 disables" false (Health.note_execution off r0)

let test_sampler_zero_alloc () =
  let h = Health.create ~sample_every:16 () in
  let r = Health.record h ~key:"k" ~query:"q" ~scope:"" ~optimized:true in
  ignore (Health.note_execution h r);
  (* the unsampled hot path must not allocate: integer countdown in
     mutable fields only.  Minor-heap words are a direct allocation
     meter; the slack covers Gc.minor_words's own boxing. *)
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    ignore (Health.note_execution h r)
  done;
  let words = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "10k executions allocated %.0f minor words" words)
    true (words <= 256.0)

let test_unsampled_executions_are_silent () =
  let _, doc, service = setup ~sample_every:1000 () in
  Obs.reset ();
  Obs.attach_ring ~capacity:256 ();
  Fun.protect
    ~finally:(fun () ->
      Obs.detach_ring ();
      Obs.reset ())
    (fun () ->
      for _ = 1 to 5 do
        ignore (run service doc "//person")
      done;
      let last = run service doc "//person" in
      Alcotest.(check bool) "unsampled run carries no profile" true
        (last.Service.result.Vamana.Engine.profile = None);
      Alcotest.(check int) "only the baseline was sampled" 1
        (counter service "sampled_executions");
      let health_events =
        List.filter (fun (e : Obs.event) -> e.Obs.category = "health") (Obs.drain ())
      in
      Alcotest.(check int) "no health events without drift" 0 (List.length health_events))

(* ---- drift detection -> adaptive replan, end to end ---- *)

let test_drift_detection_and_replan () =
  let store, doc, service = setup ~sample_every:1 () in
  Obs.reset ();
  Obs.attach_ring ~capacity:256 ();
  Fun.protect
    ~finally:(fun () ->
      Obs.detach_ring ();
      Obs.reset ())
    (fun () ->
      let q = "//person/address" in
      (* baseline: estimates are honest, drift stays 0 *)
      ignore (run service doc q);
      (* churn: 7x the person/address population, every newcomer carrying
         an address so the refreshed synopsis prices the plan exactly *)
      let people = people_key store doc in
      for i = 1 to 12 do
        let p =
          Store.insert_element store ~parent:people "person"
            [ ("id", Printf.sprintf "n%d" i) ] None
        in
        ignore (Store.insert_element store ~parent:p "address" [] (Some "somewhere"))
      done;
      (* sampled run against stale estimates: actual 14 vs estimated 2
         crosses the default threshold in one sample *)
      let drifted = run service doc q in
      Alcotest.(check bool) "plan served from cache" true
        (drifted.Service.plan_cache = `Hit);
      Alcotest.(check int) "drift event fired" 1 (counter service "plan_drift_events");
      (* next request transparently re-prepares *)
      let replanned = run service doc q in
      Alcotest.(check bool) "adaptive replan surfaced as `Stale" true
        (replanned.Service.plan_cache = `Stale);
      Alcotest.(check int) "replan counted" 1 (counter service "adaptive_replans");
      Alcotest.(check int) "all results found" 14
        (List.length replanned.Service.result.Vamana.Engine.keys);
      (* the replan schedules an immediate verification sample; fresh
         statistics price every operator within 1.5x *)
      (match replanned.Service.result.Vamana.Engine.profile with
      | None -> Alcotest.fail "replanned run was not sampled"
      | Some rep ->
          Alcotest.(check bool)
            (Printf.sprintf "post-replan per-op q-error %.2f <= 1.5"
               rep.Vamana.Profile.max_q_error)
            true
            (rep.Vamana.Profile.max_q_error <= 1.5));
      let events = Obs.drain () in
      let names (c : string) =
        List.filter_map
          (fun (e : Obs.event) -> if e.Obs.category = c then Some e.Obs.name else None)
          events
      in
      Alcotest.(check (list string)) "bus saw the state machine"
        [ "plan_drift"; "adaptive_replan" ] (names "health");
      (* record state after recovery *)
      match Health.records (Service.health service) with
      | [ r ] ->
          Alcotest.(check bool) "no longer stale" false (Health.stale r);
          Alcotest.(check int) "one replan on the record" 1 r.Health.hr_replans;
          Alcotest.(check bool) "drift decayed below threshold" true
            (r.Health.hr_drift < Health.default_drift_threshold)
      | rs -> Alcotest.failf "expected one health record, got %d" (List.length rs))

let test_replan_backoff () =
  (* a record whose drift a replan cannot cure must not replan on every
     sample: each replan doubles the cooldown *)
  let h = Health.create ~sample_every:1 ~drift_threshold:0.5 () in
  let r = Health.record h ~key:"k" ~query:"q" ~scope:"" ~optimized:true in
  let node =
    { Vamana.Profile.id = 0; label = "op"; est = None; act = None;
      q_error = Some 16.0; preds = []; context = None }
  in
  let rep =
    { Vamana.Profile.plan = node; spans = []; total_time = 0.0;
      root_q_error = 16.0; max_q_error = 16.0 }
  in
  let observe () = ignore (Health.observe h r ~epoch:1 ~latency:0.0 ~pages:0 ~results:0 rep) in
  let replans_after n =
    for _ = 1 to n do
      observe ();
      if Health.stale r then Health.note_replan h r ~epoch:1
    done;
    r.Health.hr_replans
  in
  (* 20 bad samples: without backoff that would be ~20 replans; the
     exponential cooldown (2, 4, 8, 16 samples) admits at most 5 *)
  let total = replans_after 20 in
  Alcotest.(check bool) (Printf.sprintf "%d replans over 20 bad samples" total) true
    (total <= 5 && total >= 2)

(* ---- sampled profile = explicit profile (EXPLAIN ANALYZE parity) ---- *)

(* operator labels embed per-compile plan ids, so parity is judged on
   tree shape and collected tuple counts, not display strings *)
let rec actuals (n : Vamana.Profile.node) =
  let own =
    match n.Vamana.Profile.act with
    | Some s -> s.Vamana.Profile.tuples
    | None -> -1
  in
  (own :: List.concat_map (fun (_, p) -> actuals p) n.Vamana.Profile.preds)
  @ (match n.Vamana.Profile.context with Some c -> actuals c | None -> [])

let test_sampled_profile_matches_explain_analyze () =
  let store, doc, service = setup ~sample_every:1 () in
  let q = "//person/address" in
  let sampled = run service doc q in
  let service_rep =
    match sampled.Service.result.Vamana.Engine.profile with
    | Some rep -> rep
    | None -> Alcotest.fail "sample_every 1 must profile every execution"
  in
  let explicit_rep =
    match Vamana.Engine.query store ~context:doc.Store.doc_key ~profile:true q with
    | Ok r -> Option.get r.Vamana.Engine.profile
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check (list int)) "same per-operator actuals"
    (actuals explicit_rep.Vamana.Profile.plan)
    (actuals service_rep.Vamana.Profile.plan);
  Alcotest.(check (float 1e-9)) "same per-operator q-errors"
    explicit_rep.Vamana.Profile.max_q_error service_rep.Vamana.Profile.max_q_error

let suite =
  ( "health",
    [ Alcotest.test_case "sampler cadence" `Quick test_sampler_cadence;
      Alcotest.test_case "sampler hot path allocates nothing" `Quick test_sampler_zero_alloc;
      Alcotest.test_case "unsampled executions are silent" `Quick
        test_unsampled_executions_are_silent;
      Alcotest.test_case "drift detection and adaptive replan" `Quick
        test_drift_detection_and_replan;
      Alcotest.test_case "replan backoff" `Quick test_replan_backoff;
      Alcotest.test_case "sampled profile matches explain analyze" `Quick
        test_sampled_profile_matches_explain_analyze ] )
