(* Tests for the telemetry event bus and its instrumentation hooks.

   The bus is process-global state, so every test starts and ends with
   [Obs.reset ()] — including on failure paths — to keep suites
   independent. *)

let with_bus f =
  Obs.reset ();
  Fun.protect ~finally:Obs.reset f

let test_inactive_by_default () =
  with_bus @@ fun () ->
  Alcotest.(check bool) "inactive" false (Obs.active ());
  (* emitting without a subscriber is a no-op, not an error *)
  Obs.emit ~category:"test" "ping" [];
  Alcotest.(check int) "nothing buffered" 0 (Obs.ring_length ());
  Alcotest.(check (list reject)) "drain empty" [] (Obs.drain ())

let test_ring_basics () =
  with_bus @@ fun () ->
  Obs.attach_ring ~capacity:8 ();
  Alcotest.(check bool) "active with ring" true (Obs.active ());
  Obs.emit ~category:"alpha" "first" [ ("n", Obs.Int 1) ];
  Obs.emit ~severity:Obs.Warn ~category:"beta" "second" [ ("ok", Obs.Bool false) ];
  Alcotest.(check int) "two buffered" 2 (Obs.ring_length ());
  (match Obs.drain () with
  | [ a; b ] ->
      Alcotest.(check string) "oldest first" "first" a.Obs.name;
      Alcotest.(check string) "category" "alpha" a.Obs.category;
      Alcotest.(check bool) "sequence grows" true (b.Obs.seq > a.Obs.seq);
      Alcotest.(check bool) "timestamps monotone" true (b.Obs.ts >= a.Obs.ts);
      (match b.Obs.severity with
      | Obs.Warn -> ()
      | _ -> Alcotest.fail "expected Warn")
  | es -> Alcotest.failf "expected 2 events, got %d" (List.length es));
  Alcotest.(check int) "drain empties the ring" 0 (Obs.ring_length ());
  Obs.detach_ring ();
  Alcotest.(check bool) "inactive after detach" false (Obs.active ())

let test_ring_overflow () =
  with_bus @@ fun () ->
  Obs.attach_ring ~capacity:4 ();
  for i = 1 to 7 do
    Obs.emit ~category:"test" "e" [ ("i", Obs.Int i) ]
  done;
  Alcotest.(check int) "bounded" 4 (Obs.ring_length ());
  Alcotest.(check int) "overwrites counted" 3 (Obs.dropped ());
  let kept =
    List.map
      (fun (e : Obs.event) ->
        match e.Obs.attrs with [ (_, Obs.Int i) ] -> i | _ -> -1)
      (Obs.drain ())
  in
  (* the ring keeps the newest events, oldest first *)
  Alcotest.(check (list int)) "last four survive" [ 4; 5; 6; 7 ] kept

let test_sampling () =
  with_bus @@ fun () ->
  Obs.attach_ring ();
  Obs.set_sample_rate "noisy" 3;
  Alcotest.(check int) "rate readable" 3 (Obs.sample_rate "noisy");
  Alcotest.(check int) "default rate" 1 (Obs.sample_rate "quiet");
  for i = 1 to 9 do
    Obs.emit ~category:"noisy" "n" [ ("i", Obs.Int i) ]
  done;
  Obs.emit ~category:"quiet" "q" [];
  let events = Obs.drain () in
  let noisy = List.filter (fun (e : Obs.event) -> e.Obs.category = "noisy") events in
  (* 1-in-3 keeps the first of each window: i = 1, 4, 7 *)
  Alcotest.(check int) "one in three kept" 3 (List.length noisy);
  Alcotest.(check (list int)) "window-first kept" [ 1; 4; 7 ]
    (List.map
       (fun (e : Obs.event) ->
         match e.Obs.attrs with [ (_, Obs.Int i) ] -> i | _ -> -1)
       noisy);
  Alcotest.(check int) "unsampled category untouched" 1
    (List.length (List.filter (fun (e : Obs.event) -> e.Obs.category = "quiet") events));
  Alcotest.(check int) "suppressed counted" 6 (Obs.sampled_out ())

let test_sinks () =
  with_bus @@ fun () ->
  let seen = ref [] in
  let s = Obs.attach_sink (fun e -> seen := e.Obs.name :: !seen) in
  Alcotest.(check bool) "active with sink" true (Obs.active ());
  Obs.emit ~category:"test" "one" [];
  Obs.emit ~category:"test" "two" [];
  Obs.detach_sink s;
  Obs.emit ~category:"test" "three" [];
  Alcotest.(check (list string)) "sink saw exactly the attached window" [ "two"; "one" ] !seen;
  Alcotest.(check bool) "inactive after detach" false (Obs.active ())

let test_time_span () =
  with_bus @@ fun () ->
  Obs.attach_ring ();
  let r = Obs.time_span ~category:"test" "work" [ ("tag", Obs.Str "x") ] (fun () -> 41 + 1) in
  Alcotest.(check int) "result passes through" 42 r;
  match Obs.drain () with
  | [ e ] ->
      Alcotest.(check string) "span name" "work" e.Obs.name;
      (match List.assoc_opt "dur_ms" e.Obs.attrs with
      | Some (Obs.Float d) -> Alcotest.(check bool) "duration non-negative" true (d >= 0.0)
      | _ -> Alcotest.fail "missing dur_ms");
      Alcotest.(check bool) "original attrs kept" true
        (List.mem_assoc "tag" e.Obs.attrs)
  | es -> Alcotest.failf "expected 1 event, got %d" (List.length es)

let test_time_span_raise () =
  with_bus @@ fun () ->
  Obs.attach_ring ();
  (match
     Obs.time_span ~category:"test" "boom" [ ("tag", Obs.Str "x") ] (fun () ->
         failwith "kaput")
   with
  | (_ : int) -> Alcotest.fail "expected the exception to propagate"
  | exception Failure msg -> Alcotest.(check string) "exception re-raised" "kaput" msg);
  match Obs.drain () with
  | [ e ] ->
      Alcotest.(check string) "span still emitted" "boom" e.Obs.name;
      (match e.Obs.severity with
      | Obs.Error -> ()
      | _ -> Alcotest.fail "failed span should be Error severity");
      (match List.assoc_opt "dur_ms" e.Obs.attrs with
      | Some (Obs.Float d) -> Alcotest.(check bool) "duration non-negative" true (d >= 0.0)
      | _ -> Alcotest.fail "missing dur_ms");
      (match List.assoc_opt "error" e.Obs.attrs with
      | Some (Obs.Str s) ->
          let contains needle hay =
            let n = String.length needle and m = String.length hay in
            let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool) "exception text captured" true (contains "kaput" s)
      | _ -> Alcotest.fail "missing error attribute");
      Alcotest.(check bool) "original attrs kept" true (List.mem_assoc "tag" e.Obs.attrs)
  | es -> Alcotest.failf "expected 1 event, got %d" (List.length es)

(* the [ts] field survives a JSON round-trip as the same monotonic
   seconds the event carries — the unit the interface promises *)
let test_ts_json_roundtrip () =
  with_bus @@ fun () ->
  Obs.attach_ring ();
  Obs.emit ~category:"test" "tick" [ ("n", Obs.Int 7) ];
  let e = List.hd (Obs.drain ()) in
  let module Json = Vamana.Profile.Json in
  match Json.of_string (Obs.to_json_string e) with
  | Error m -> Alcotest.fail ("event JSON does not parse: " ^ m)
  | Ok j ->
      let ts =
        match Json.member "ts" j with
        | Some (Json.Float f) -> f
        | Some (Json.Int i) -> float_of_int i
        | _ -> Alcotest.fail "ts field missing"
      in
      (* rendered with 9 significant digits, so round-trips to ~1e-8 rel *)
      Alcotest.(check bool) "ts is the event's seconds" true
        (Float.abs (ts -. e.Obs.ts) <= 1e-8 *. Float.max 1.0 (Float.abs e.Obs.ts));
      (match Json.member "seq" j with
      | Some (Json.Int s) -> Alcotest.(check int) "seq round-trips" e.Obs.seq s
      | _ -> Alcotest.fail "seq field missing")

let test_emission_context () =
  with_bus @@ fun () ->
  Obs.attach_ring ();
  let q = Obs.fresh_query_id () in
  Alcotest.(check int) "query ids start at 1" 1 q;
  Obs.with_context
    [ ("qid", Obs.Int q) ]
    (fun () ->
      Obs.emit ~category:"outer" "o" [];
      Obs.with_context
        [ ("step", Obs.Str "inner") ]
        (fun () -> Obs.emit ~category:"inner" "i" [ ("own", Obs.Bool true) ]));
  (* context is restored even when the scoped function raises *)
  (try Obs.with_context [ ("doomed", Obs.Bool true) ] (fun () -> failwith "x")
   with Failure _ -> ());
  Obs.emit ~category:"after" "a" [];
  (match Obs.drain () with
  | [ o; i; a ] ->
      Alcotest.(check bool) "outer event tagged" true
        (List.assoc_opt "qid" o.Obs.attrs = Some (Obs.Int 1));
      Alcotest.(check bool) "inner event keeps outer context" true
        (List.assoc_opt "qid" i.Obs.attrs = Some (Obs.Int 1));
      Alcotest.(check bool) "inner context stacks" true
        (List.assoc_opt "step" i.Obs.attrs = Some (Obs.Str "inner"));
      Alcotest.(check bool) "own attrs kept" true
        (List.assoc_opt "own" i.Obs.attrs = Some (Obs.Bool true));
      Alcotest.(check bool) "context restored after scope" true
        (not (List.mem_assoc "qid" a.Obs.attrs));
      Alcotest.(check bool) "raised scope left nothing behind" true
        (not (List.mem_assoc "doomed" a.Obs.attrs))
  | es -> Alcotest.failf "expected 3 events, got %d" (List.length es));
  Alcotest.(check int) "ids increment" 2 (Obs.fresh_query_id ());
  Obs.reset ();
  Alcotest.(check int) "reset restarts ids" 1 (Obs.fresh_query_id ())

(* re-attaching the ring resizes and clears it: no stale events from
   the previous window, and the overwrite counter restarts *)
let test_ring_reattach_resizes () =
  with_bus @@ fun () ->
  Obs.attach_ring ~capacity:4 ();
  for i = 1 to 3 do
    Obs.emit ~category:"t" "e" [ ("i", Obs.Int i) ]
  done;
  Obs.attach_ring ~capacity:2 ();
  Alcotest.(check int) "re-attach clears the ring" 0 (Obs.ring_length ());
  Alcotest.(check int) "overwrite counter restarts" 0 (Obs.dropped ());
  for i = 4 to 6 do
    Obs.emit ~category:"t" "e" [ ("i", Obs.Int i) ]
  done;
  Alcotest.(check int) "new capacity enforced" 2 (Obs.ring_length ());
  Alcotest.(check int) "dropped counts the new window only" 1 (Obs.dropped ());
  let kept =
    List.map
      (fun (e : Obs.event) ->
        match e.Obs.attrs with [ (_, Obs.Int i) ] -> i | _ -> -1)
      (Obs.drain ())
  in
  Alcotest.(check (list int)) "only post-reattach events survive" [ 5; 6 ] kept

let test_counters_across_reset () =
  with_bus @@ fun () ->
  Obs.attach_ring ~capacity:2 ();
  Obs.set_sample_rate "noisy" 2;
  for i = 1 to 6 do
    Obs.emit ~category:"noisy" "n" [ ("i", Obs.Int i) ]
  done;
  (* kept: 1, 3, 5 — of which the 2-slot ring overwrites one *)
  Alcotest.(check int) "sampling suppressed half" 3 (Obs.sampled_out ());
  Alcotest.(check int) "ring overwrote one" 1 (Obs.dropped ());
  Obs.reset ();
  Alcotest.(check int) "sampled_out cleared" 0 (Obs.sampled_out ());
  Alcotest.(check int) "dropped cleared" 0 (Obs.dropped ());
  Alcotest.(check int) "sample rates cleared" 1 (Obs.sample_rate "noisy");
  Alcotest.(check bool) "bus inactive" false (Obs.active ());
  (* and a fresh window starts clean *)
  Obs.attach_ring ();
  Obs.emit ~category:"noisy" "n" [];
  Alcotest.(check int) "fresh window records everything" 1 (Obs.ring_length ());
  Alcotest.(check int) "no ghost suppressions" 0 (Obs.sampled_out ())

(* every attached sink sees the same post-sampling stream *)
let test_multiple_sinks_sampling () =
  with_bus @@ fun () ->
  let a = ref [] and b = ref [] in
  let sa = Obs.attach_sink (fun e -> a := e.Obs.seq :: !a) in
  let sb = Obs.attach_sink (fun e -> b := e.Obs.seq :: !b) in
  Obs.set_sample_rate "noisy" 2;
  for _ = 1 to 4 do
    Obs.emit ~category:"noisy" "n" []
  done;
  Obs.emit ~category:"quiet" "q" [];
  Alcotest.(check (list int)) "identical post-sampling streams"
    (List.rev !a) (List.rev !b);
  Alcotest.(check int) "sampling applied once, before fan-out" 3 (List.length !a);
  Obs.detach_sink sa;
  Obs.emit ~category:"quiet" "late" [];
  Alcotest.(check int) "detached sink frozen" 3 (List.length !a);
  Alcotest.(check int) "remaining sink still fed" 4 (List.length !b);
  Alcotest.(check bool) "bus active with one sink left" true (Obs.active ());
  Obs.detach_sink sb;
  Alcotest.(check bool) "inactive after last detach" false (Obs.active ())

let test_json_rendering () =
  with_bus @@ fun () ->
  Obs.attach_ring ();
  Obs.emit ~category:"test" "escape"
    [ ("q", Obs.Str "//a[.='x\"y']\nnext");
      ("nan", Obs.Float Float.nan);
      ("n", Obs.Int (-3));
      ("b", Obs.Bool true) ];
  let e = List.hd (Obs.drain ()) in
  let json = Obs.to_json_string e in
  let contains needle =
    let n = String.length needle and m = String.length json in
    let rec go i = i + n <= m && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "quotes escaped" true (contains {|x\"y|});
  Alcotest.(check bool) "newline escaped" true (contains {|\nnext|});
  Alcotest.(check bool) "non-finite floats are null" true (contains {|"nan":null|});
  Alcotest.(check bool) "ints bare" true (contains {|"n":-3|});
  Alcotest.(check bool) "bools bare" true (contains {|"b":true|});
  Alcotest.(check bool) "no raw newline in line" true
    (not (String.contains json '\n'));
  (* severities round-trip through their names *)
  List.iter
    (fun s ->
      Alcotest.(check bool) "severity round-trip" true
        (Obs.severity_of_string (Obs.severity_to_string s) = Some s))
    [ Obs.Debug; Obs.Info; Obs.Warn; Obs.Error ]

(* end-to-end: a query through the service emits spans, per-index I/O
   attribution and (over the threshold) a slow-query record *)
let test_query_events () =
  with_bus @@ fun () ->
  let store = Mass.Store.create ~pool_pages:256 () in
  let doc =
    Mass.Store.load store ~name:"t.xml"
      (Xml.Parser.parse "<site><a><b>one</b><b>two</b></a><c>three</c></site>")
  in
  let service = Vamana_service.Service.create ~slow_threshold:0.0 store in
  Obs.attach_ring ();
  (match Vamana_service.Service.query service ~context:doc.Mass.Store.doc_key "//b" with
  | Ok o -> Alcotest.(check int) "query answered" 2 (List.length o.Vamana_service.Service.result.Vamana.Engine.keys)
  | Error e -> Alcotest.fail e);
  let events = Obs.drain () in
  let names cat =
    List.filter_map
      (fun (e : Obs.event) -> if e.Obs.category = cat then Some e.Obs.name else None)
      events
  in
  List.iter
    (fun span -> Alcotest.(check bool) (span ^ " span emitted") true (List.mem span (names "query")))
    [ "parse"; "compile"; "optimize"; "execute" ];
  Alcotest.(check bool) "service query event" true (List.mem "query" (names "service"));
  Alcotest.(check bool) "slow query flagged at zero threshold" true
    (List.mem "slow_query" (names "service"));
  (* per-index attribution: the name index carries //b's reads *)
  let io =
    List.filter
      (fun (e : Obs.event) -> e.Obs.category = "storage" && e.Obs.name = "query_io")
      events
  in
  Alcotest.(check bool) "query_io emitted" true (io <> []);
  List.iter
    (fun (e : Obs.event) ->
      match (List.assoc_opt "index" e.Obs.attrs, List.assoc_opt "logical_reads" e.Obs.attrs) with
      | Some (Obs.Str idx), Some (Obs.Int n) ->
          Alcotest.(check bool) (idx ^ " attributed reads") true (n > 0)
      | _ -> Alcotest.fail "query_io missing index/logical_reads")
    io;
  (* the slow-query log kept the run, with a profile attached after the fact *)
  match Vamana_service.Service.slow_queries service with
  | [ sq ] ->
      Alcotest.(check string) "logged text" "//b" sq.Vamana_service.Service.sq_query;
      Alcotest.(check int) "logged results" 2 sq.Vamana_service.Service.sq_results;
      Alcotest.(check bool) "profile attached" true
        (sq.Vamana_service.Service.sq_profile <> None)
  | sqs -> Alcotest.failf "expected 1 slow query, got %d" (List.length sqs)

(* the eviction instrumentation only fires while observed, and carries
   the owning pool's label *)
let test_eviction_events () =
  with_bus @@ fun () ->
  let p = Storage.Pager.create ~label:"tiny" ~pool_pages:1 () in
  let a = Storage.Pager.alloc p "a" in
  let _b = Storage.Pager.alloc p "b" in
  Alcotest.(check int) "unobserved eviction emits nothing" 0 (Obs.ring_length ());
  Obs.attach_ring ();
  ignore (Storage.Pager.read p a) (* faults a back in, evicting b *);
  match
    List.filter (fun (e : Obs.event) -> e.Obs.name = "eviction") (Obs.drain ())
  with
  | e :: _ ->
      Alcotest.(check bool) "pool label attached" true
        (List.assoc_opt "pool" e.Obs.attrs = Some (Obs.Str "tiny"))
  | [] -> Alcotest.fail "expected an eviction event"

let suite =
  ( "obs",
    [ Alcotest.test_case "inactive by default" `Quick test_inactive_by_default;
      Alcotest.test_case "ring basics" `Quick test_ring_basics;
      Alcotest.test_case "ring overflow" `Quick test_ring_overflow;
      Alcotest.test_case "sampling" `Quick test_sampling;
      Alcotest.test_case "sinks" `Quick test_sinks;
      Alcotest.test_case "time span" `Quick test_time_span;
      Alcotest.test_case "time span raise" `Quick test_time_span_raise;
      Alcotest.test_case "ts json round-trip" `Quick test_ts_json_roundtrip;
      Alcotest.test_case "emission context" `Quick test_emission_context;
      Alcotest.test_case "ring reattach resizes" `Quick test_ring_reattach_resizes;
      Alcotest.test_case "counters across reset" `Quick test_counters_across_reset;
      Alcotest.test_case "multiple sinks" `Quick test_multiple_sinks_sampling;
      Alcotest.test_case "json rendering" `Quick test_json_rendering;
      Alcotest.test_case "query events" `Quick test_query_events;
      Alcotest.test_case "eviction events" `Quick test_eviction_events ] )
