type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;  (** toward MRU *)
  mutable next : ('k, 'v) node option;  (** toward LRU *)
}

type ('k, 'v) t = {
  table : ('k, ('k, 'v) node) Hashtbl.t;
  cap : int;
  mutable head : ('k, 'v) node option;  (** most recently used *)
  mutable tail : ('k, 'v) node option;  (** least recently used *)
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity < 1";
  { table = Hashtbl.create (2 * capacity); cap = capacity; head = None; tail = None }

let capacity t = t.cap
let length t = Hashtbl.length t.table

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.prev <- None;
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> ());
  t.head <- Some n;
  if t.tail = None then t.tail <- Some n

let is_head t n = match t.head with Some h -> h == n | None -> false

let touch t n =
  if not (is_head t n) then begin
    unlink t n;
    push_front t n
  end

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some n ->
      touch t n;
      Some n.value

let mem t k = Hashtbl.mem t.table k

let evict_lru t =
  match t.tail with
  | None -> None
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table n.key;
      Some (n.key, n.value)

let put t k v =
  match Hashtbl.find_opt t.table k with
  | Some n ->
      n.value <- v;
      touch t n;
      None
  | None ->
      let n = { key = k; value = v; prev = None; next = None } in
      Hashtbl.replace t.table k n;
      push_front t n;
      if Hashtbl.length t.table > t.cap then evict_lru t else None

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table k

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let iter f t =
  let rec go = function
    | None -> ()
    | Some n ->
        f n.key n.value;
        go n.next
  in
  go t.head

let to_list t =
  let acc = ref [] in
  iter (fun k v -> acc := (k, v) :: !acc) t;
  List.rev !acc
