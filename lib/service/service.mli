(** Long-lived query service over {!Vamana.Engine}: the layer between
    "one query" and "millions of queries".

    A service owns a {!Mass.Store.t} and adds:

    - a {b plan cache} — an LRU of {!Vamana.Engine.prepared} values keyed
      by normalized query text + statistics scope + optimize flag, so a
      repeated query skips parse, compile and optimize entirely;
    - a {b result cache} — an optional LRU of full results keyed by plan
      key + execution context, invalidated by the store's mutation
      {!Mass.Store.epoch}: a cached answer is served only while the store
      still reports the epoch the answer was computed at, so a mutation
      between two identical queries always yields fresh results;
    - a {b metrics registry} — monotonic counters (queries, cache
      hits/misses/evictions, compiles, errors) and latency histograms for
      the compile / optimize / execute phases and the end-to-end query
      path, dumpable as text or JSON together with the store's
      buffer-pool I/O counters.

    Query normalization drops whitespace outside string literals except
    between two name/number characters, where one space survives (token
    separation: ["a div b"] must not become ["adivb"]); quoted text is
    preserved byte-for-byte.  So ["//person / address"] and
    ["//person/address"] share a cache entry while ["//a[.='x  y']"]
    keeps its literal's spacing.

    Plans survive store mutations: the optimizer only ever emits
    semantically equivalent plans, so a cached plan stays {e correct}
    across updates — only its cost estimates age.  Results do not
    survive mutations; the epoch check guarantees that. *)

type t

val create :
  ?plan_cache_capacity:int ->
  ?result_cache_capacity:int ->
  ?optimize:bool ->
  Mass.Store.t ->
  t
(** [plan_cache_capacity] defaults to 128; [result_cache_capacity]
    defaults to 512, and [0] disables result caching entirely;
    [optimize] (default [true]) selects VQP-OPT vs VQP plans for every
    query the service prepares. *)

val store : t -> Mass.Store.t
val metrics : t -> Metrics.t

type cache = [ `Hit  (** served from cache *)
             | `Miss  (** not present; computed and inserted *)
             | `Stale  (** present but from an older store epoch; recomputed *)
             | `Bypass  (** cache disabled *) ]

type outcome = {
  result : Vamana.Engine.result;
  plan_cache : cache;  (** never [`Stale] or [`Bypass] *)
  result_cache : cache;
  total_time : float;  (** end-to-end seconds inside the service *)
}

val query : ?profile:bool -> t -> context:Flex.t -> string -> (outcome, string) Result.t
(** Serve one query rooted at [context].  On a result-cache hit the
    returned {!Vamana.Engine.result} is the cached value (its phase times
    are the times of the run that populated the cache; [total_time] is
    this call's).  Errors are not cached.  With [profile] the result
    cache is bypassed on the read side so the query really executes and
    the result carries a fresh {!Vamana.Profile.report}; the
    [profiled_queries] counter tracks these. *)

val query_doc : ?profile:bool -> t -> Mass.Store.doc -> string -> (outcome, string) Result.t

val normalize : string -> string
(** The cache-key normalization (exposed for tests): outside
    single-/double-quoted literals, whitespace is dropped except for a
    single separating space between two name/number characters. *)

val plan_cache_length : t -> int
val result_cache_length : t -> int

val flush : t -> unit
(** Drop both caches (metrics are kept; bumps the [flushes] counter). *)

val snapshot_text : t -> string
(** Metrics snapshot including the store's aggregate page-I/O counters. *)

val snapshot_json : t -> string
