(** Long-lived query service over {!Vamana.Engine}: the layer between
    "one query" and "millions of queries".

    A service owns a {!Mass.Store.t} and adds:

    - a {b plan cache} — an LRU of {!Vamana.Engine.prepared} values keyed
      by normalized query text + statistics scope + optimize flag, so a
      repeated query skips parse, compile and optimize entirely;
    - a {b result cache} — an optional LRU of full results keyed by plan
      key + execution context.  Each entry carries the invalidation
      token it was computed under (the scope document's
      {!Mass.Store.doc_epoch} for scoped queries, the store-wide
      {!Mass.Store.epoch} for unscoped ones) and the plan's
      {!Vamana.Footprint} read footprint.  Under the default
      [`Footprint] invalidation a token mismatch triggers an
      interference check: the entry survives — and its token refreshes —
      when every {!Mass.Store.write_delta} recorded since is provably
      disjoint from the footprint; it is evicted when a delta
      intersects, when the footprint is ⊤, or when the delta ring no
      longer covers the entry's window.  [`Epoch] invalidation evicts on
      any token mismatch (the pre-footprint behaviour).  Either way a
      mutation visible to the query between two identical requests
      always yields fresh results;
    - a {b metrics registry} — monotonic counters (queries, cache
      hits/misses/evictions, compiles, errors) and latency histograms for
      the compile / optimize / execute phases and the end-to-end query
      path, dumpable as text or JSON together with the store's
      buffer-pool I/O counters.

    Query normalization drops whitespace outside string literals except
    between two name/number characters, where one space survives (token
    separation: ["a div b"] must not become ["adivb"]); quoted text is
    preserved byte-for-byte.  So ["//person / address"] and
    ["//person/address"] share a cache entry while ["//a[.='x  y']"]
    keeps its literal's spacing.

    Plans survive store mutations: the optimizer only ever emits
    semantically equivalent plans, so a cached plan stays {e correct}
    across updates — only its cost estimates age.  Results do not
    survive mutations; the epoch check guarantees that. *)

type t

type cache = [ `Hit  (** served from cache *)
             | `Miss  (** not present; computed and inserted *)
             | `Stale  (** present but from an older store epoch; recomputed *)
             | `Bypass  (** cache disabled *) ]

type invalidation =
  [ `Epoch  (** evict on any invalidation-token mismatch *)
  | `Footprint
    (** on a token mismatch, evict only when a write delta since the
        entry's token intersects the plan's read footprint (or the
        footprint is ⊤, or delta coverage was lost) *) ]

val create :
  ?plan_cache_capacity:int ->
  ?result_cache_capacity:int ->
  ?optimize:bool ->
  ?invalidation:invalidation ->
  ?slow_threshold:float ->
  ?slow_profile:bool ->
  ?slow_log_capacity:int ->
  ?flight:Storage.Flight.t ->
  ?sample_every:int ->
  ?drift_threshold:float ->
  Mass.Store.t ->
  t
(** [plan_cache_capacity] defaults to 128; [result_cache_capacity]
    defaults to 512, and [0] disables result caching entirely;
    [optimize] (default [true]) selects VQP-OPT vs VQP plans for every
    query the service prepares.  [slow_threshold] (seconds, default
    0.1; [infinity] disables) feeds the always-on slow-query log, a
    bounded ring of the last [slow_log_capacity] (default 128) slow
    queries; with [slow_profile] (default [true]) a slow query whose run
    carried no instrumentation is re-executed once with profiling so its
    log entry has an operator tree attached.  [invalidation] (default
    [`Footprint]) selects the result-cache invalidation protocol; the
    [cache_invalidations_footprint]/[epoch]/[top] counters attribute
    every eviction to its reason and [result_cache_spared] counts the
    entries an interference check saved.  [flight] attaches a
    {!Storage.Flight} recorder: every {!query} writes a begin/end record
    pair (the caller keeps ownership and closes it).

    [sample_every] (default {!Health.default_sample_every}) turns on the
    always-on plan-health sampler: every Nth real execution of each
    cached plan runs with profiling enabled and feeds the {!Health}
    drift detector ([0] disables sampling); [drift_threshold] (default
    {!Health.default_drift_threshold}) is the EWMA drift score above
    which a plan is marked stale and transparently re-prepared on its
    next request (an {e adaptive replan} — the outcome's [plan_cache]
    reads [`Stale], the [adaptive_replans] counter is bumped and a
    [health/adaptive_replan] event fires). *)

val store : t -> Mass.Store.t

val invalidation : t -> invalidation
(** The result-cache invalidation protocol this service runs. *)

val metrics : t -> Metrics.t

val health : t -> Health.t
(** The plan-health table: per-plan sampled q-error reservoirs, EWMA
    drift scores and replan counts (see {!Health}). *)

val default_slow_threshold : float
(** 0.1 s. *)

type outcome = {
  result : Vamana.Engine.result;
  plan_cache : cache;
      (** never [`Bypass]; [`Stale] marks an adaptive replan — the
          cached plan had drifted past the threshold and was re-prepared
          against fresh statistics for this request *)
  result_cache : cache;
  total_time : float;  (** end-to-end seconds inside the service *)
  attribution : Vamana.Engine.attribution;
      (** this call's attributed resource use over the whole service
          window (prepare + execute + cache bookkeeping) — near-zero on
          a result-cache hit, unlike the cached [result]'s own
          [attribution], which reports the populating run *)
}

val query : ?profile:bool -> t -> context:Flex.t -> string -> (outcome, string) Result.t
(** Serve one query rooted at [context].  On a result-cache hit the
    returned {!Vamana.Engine.result} is the cached value (its phase times
    are the times of the run that populated the cache; [total_time] is
    this call's).  Errors are not cached.  With [profile] the result
    cache is bypassed on the read side so the query really executes and
    the result carries a fresh {!Vamana.Profile.report}; the
    [profiled_queries] counter tracks these. *)

val query_doc : ?profile:bool -> t -> Mass.Store.doc -> string -> (outcome, string) Result.t

val normalize : string -> string
(** The cache-key normalization (exposed for tests): outside
    single-/double-quoted literals, whitespace is dropped except for a
    single separating space between two name/number characters. *)

(** {1 Slow-query log} *)

type slow_query = {
  sq_query : string;  (** query text as submitted *)
  sq_total_time : float;  (** end-to-end seconds of the offending run *)
  sq_plan_cache : cache;
  sq_result_cache : cache;
  sq_results : int;
  sq_profile : Vamana.Profile.report option;
      (** operator tree: the run's own report when it was profiled,
          otherwise a one-shot instrumented re-execution (see
          {!create}); [None] when [slow_profile] is off or the plan had
          already been evicted *)
  sq_at : float;  (** [Unix.gettimeofday] at detection *)
  sq_qid : int;  (** query id (matches the run's bus events and flight records) *)
  sq_io : Storage.Stats.t;  (** attributed buffer-pool I/O of the offending run *)
  sq_wal_bytes : int;
  sq_fsyncs : int;
  sq_drift : float;
      (** the plan's EWMA cost-drift score at detection ([0.] when the
          plan has no health record yet) — a slow query that is {e also}
          drifting is the replan candidate to look at first *)
}

val slow_threshold : t -> float
val set_slow_threshold : t -> float -> unit

val slow_queries : t -> slow_query list
(** Contents of the ring, oldest first (at most [slow_log_capacity]);
    each detection also bumps the [slow_queries] counter and emits a
    [service/slow_query] event on the {!Obs} bus. *)

val plan_cache_length : t -> int
val result_cache_length : t -> int

val flush : t -> unit
(** Drop both caches (metrics are kept; bumps the [flushes] counter). *)

val snapshot_text : t -> string
(** Metrics snapshot including the store's aggregate page-I/O counters. *)

val snapshot_json : t -> string
