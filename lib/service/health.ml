module Profile = Vamana.Profile

type sample = {
  s_at : float;
  s_epoch : int;
  s_latency : float;
  s_results : int;
  s_root_q : float;
  s_max_q : float;
  s_estimate_q : float;
  s_worst_op : string;
  s_pages : int;
  s_drift : float;
}

type record = {
  hr_query : string;
  hr_scope : string;
  hr_optimized : bool;
  mutable hr_executions : int;
  mutable hr_sampled : int;
  mutable hr_countdown : int;
  mutable hr_drift : float;
  mutable hr_stale : bool;
  mutable hr_replans : int;
  mutable hr_cooldown : int;
  mutable hr_last_epoch : int;
  mutable hr_last_at : float;
  hr_samples : sample option array;
  mutable hr_next : int;
}

type t = {
  mutable h_sample_every : int;
  mutable h_threshold : float;
  h_alpha : float;
  h_records : (string, record) Hashtbl.t;
  h_reservoir : int;
}

let default_sample_every = 16
let default_drift_threshold = 1.0
let default_alpha = 0.5

let create ?(sample_every = default_sample_every) ?(drift_threshold = default_drift_threshold)
    ?(alpha = default_alpha) ?(reservoir = 32) () =
  if reservoir < 1 then invalid_arg "Health.create: reservoir < 1";
  if not (alpha > 0.0 && alpha <= 1.0) then invalid_arg "Health.create: alpha outside (0, 1]";
  {
    h_sample_every = sample_every;
    h_threshold = drift_threshold;
    h_alpha = alpha;
    h_records = Hashtbl.create 64;
    h_reservoir = reservoir;
  }

let sample_every t = t.h_sample_every
let set_sample_every t n = t.h_sample_every <- n
let drift_threshold t = t.h_threshold
let set_drift_threshold t x = t.h_threshold <- x

let record t ~key ~query ~scope ~optimized =
  match Hashtbl.find_opt t.h_records key with
  | Some r -> r
  | None ->
      let r =
        {
          hr_query = query;
          hr_scope = scope;
          hr_optimized = optimized;
          hr_executions = 0;
          hr_sampled = 0;
          (* countdown 1: the first execution is always sampled, so every
             plan gets a baseline q-error reading immediately *)
          hr_countdown = 1;
          hr_drift = 0.0;
          hr_stale = false;
          hr_replans = 0;
          hr_cooldown = 0;
          hr_last_epoch = -1;
          hr_last_at = 0.0;
          hr_samples = Array.make t.h_reservoir None;
          hr_next = 0;
        }
      in
      Hashtbl.add t.h_records key r;
      r

let find t key = Hashtbl.find_opt t.h_records key

let records t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.h_records []
  |> List.sort (fun a b ->
         match String.compare a.hr_query b.hr_query with
         | 0 -> String.compare a.hr_scope b.hr_scope
         | c -> c)

(* the per-execution hot path: integer countdown, no allocation — a
   service at full tilt pays two loads and a store per query here *)
let note_execution t r =
  r.hr_executions <- r.hr_executions + 1;
  if t.h_sample_every <= 0 then false
  else if r.hr_countdown <= 1 then begin
    r.hr_countdown <- t.h_sample_every;
    true
  end
  else begin
    r.hr_countdown <- r.hr_countdown - 1;
    false
  end

let stale r = r.hr_stale

(* an infinite q-error (estimate 0 against a nonzero actual, or vice
   versa) is the strongest drift evidence there is — e.g. churn inserted
   a tag the plan was costed to find absent.  Clamp it to 2^8 so the
   EWMA arithmetic stays finite but the signal stays loud. *)
let clamp_q q = if Float.is_finite q then q else 256.0

(* worst per-operator q-error over the annotated tree (predicate
   sub-plans and context chains included) *)
let worst_operator (rep : Profile.report) =
  let best = ref ("?", 1.0) in
  let consider label q =
    let q = clamp_q q in
    if q > snd !best then best := (label, q)
  in
  let rec walk (n : Profile.node) =
    (match n.Profile.q_error with Some q -> consider n.Profile.label q | None -> ());
    List.iter (fun (_, p) -> walk p) n.Profile.preds;
    Option.iter walk n.Profile.context
  in
  walk rep.Profile.plan;
  !best

let push_sample r s =
  r.hr_samples.(r.hr_next) <- Some s;
  r.hr_next <- (r.hr_next + 1) mod Array.length r.hr_samples

let last_sample r =
  let n = Array.length r.hr_samples in
  r.hr_samples.((r.hr_next - 1 + n) mod n)

let samples r =
  let n = Array.length r.hr_samples in
  let out = ref [] in
  for i = 1 to n do
    (* walk backwards from the slot before [hr_next]: newest first,
       collected into [out] oldest first *)
    match r.hr_samples.((r.hr_next - i + (2 * n)) mod n) with
    | Some s -> out := s :: !out
    | None -> ()
  done;
  !out

let observe t r ~epoch ~latency ~pages ~results ?(estimate_q = 1.0) (rep : Profile.report) =
  let worst_op, worst_q = worst_operator rep in
  let root_q = clamp_q rep.Profile.root_q_error in
  let max_q = Float.max (clamp_q rep.Profile.max_q_error) worst_q in
  let estimate_q = clamp_q estimate_q in
  (* drift evidence of this sample: the worst of "estimates missed the
     actuals" and "the statistics moved under the estimates", in doublings *)
  let q = Float.max max_q estimate_q in
  let d = if q <= 1.0 then 0.0 else Float.log2 q in
  r.hr_drift <- ((1.0 -. t.h_alpha) *. r.hr_drift) +. (t.h_alpha *. d);
  r.hr_sampled <- r.hr_sampled + 1;
  r.hr_last_epoch <- epoch;
  r.hr_last_at <- Unix.gettimeofday ();
  push_sample r
    { s_at = r.hr_last_at; s_epoch = epoch; s_latency = latency; s_results = results;
      s_root_q = root_q; s_max_q = max_q; s_estimate_q = estimate_q; s_worst_op = worst_op;
      s_pages = pages; s_drift = r.hr_drift };
  (* replan backoff: when a re-prepared plan still drifts (an estimation
     error no statistics refresh can fix — e.g. a correlated predicate,
     or est > 0 over an operator that never produces), re-replanning
     every sample is pure churn.  Each replan doubles the number of
     samples that must pass before the plan may go stale again. *)
  if r.hr_cooldown > 0 then r.hr_cooldown <- r.hr_cooldown - 1;
  let crossed =
    (not r.hr_stale) && r.hr_cooldown = 0 && t.h_threshold > 0.0
    && r.hr_drift >= t.h_threshold
  in
  if crossed then begin
    r.hr_stale <- true;
    if Obs.active () then
      Obs.emit ~severity:Obs.Warn ~category:"health" "plan_drift"
        [ ("query", Obs.Str r.hr_query);
          ("scope", Obs.Str r.hr_scope);
          ("drift", Obs.Float r.hr_drift);
          ("threshold", Obs.Float t.h_threshold);
          ("root_q_error", Obs.Float root_q);
          ("max_q_error", Obs.Float max_q);
          ("estimate_q", Obs.Float estimate_q);
          ("worst_op", Obs.Str worst_op);
          ("epoch", Obs.Int epoch) ]
  end;
  crossed

let note_replan _t r ~epoch =
  r.hr_replans <- r.hr_replans + 1;
  r.hr_stale <- false;
  r.hr_drift <- 0.0;
  r.hr_cooldown <- min 64 (1 lsl r.hr_replans);
  (* verify the recovery promptly: the re-prepared plan's next execution
     is sampled regardless of where the countdown stood *)
  r.hr_countdown <- 1;
  if Obs.active () then
    Obs.emit ~severity:Obs.Warn ~category:"health" "adaptive_replan"
      [ ("query", Obs.Str r.hr_query);
        ("scope", Obs.Str r.hr_scope);
        ("replans", Obs.Int r.hr_replans);
        ("epoch", Obs.Int epoch) ]

module Json = Profile.Json

let sample_json s =
  Json.Obj
    [ ("at", Json.Float s.s_at);
      ("epoch", Json.Int s.s_epoch);
      ("latency_ms", Json.Float (s.s_latency *. 1000.));
      ("results", Json.Int s.s_results);
      ("root_q_error", Json.Float s.s_root_q);
      ("max_q_error", Json.Float s.s_max_q);
      ("estimate_q", Json.Float s.s_estimate_q);
      ("worst_op", Json.Str s.s_worst_op);
      ("pages_read", Json.Int s.s_pages);
      ("drift", Json.Float s.s_drift) ]

let record_json r =
  Json.Obj
    [ ("query", Json.Str r.hr_query);
      ("scope", Json.Str r.hr_scope);
      ("optimized", Json.Bool r.hr_optimized);
      ("executions", Json.Int r.hr_executions);
      ("samples", Json.Int r.hr_sampled);
      ("drift", Json.Float r.hr_drift);
      ("stale", Json.Bool r.hr_stale);
      ("replans", Json.Int r.hr_replans);
      ("last_sampled_epoch", Json.Int r.hr_last_epoch);
      ("q_error_trend", Json.Arr (List.map (fun s -> Json.Float s.s_max_q) (samples r)));
      ("reservoir", Json.Arr (List.map sample_json (samples r))) ]

let to_json t = Json.Obj [ ("plans", Json.Arr (List.map record_json (records t))) ]

let openmetrics_families t =
  List.map (fun r -> (r.hr_query, r.hr_drift, r.hr_replans, r.hr_sampled)) (records t)
