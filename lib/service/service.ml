module Store = Mass.Store
module Engine = Vamana.Engine

(* plan-cache key: normalized source + rendered statistics scope +
   optimize flag.  The scope is part of the key because the optimizer
   consults scope-local statistics, so the same text optimized under two
   documents may yield different plans. *)
type plan_key = { src : string; scope : string; optimized : bool }

(* [token] is the invalidation token the entry was computed under: the
   scope document's {!Mass.Store.doc_epoch} for document-scoped queries
   (so writes to other documents don't flush this entry), the global
   epoch for unscoped ones.  [fp] is the plan's read footprint: under
   footprint invalidation a token mismatch downgrades from "evict" to
   "intersect against the writes since [token]" — both epochs count the
   same store-wide mutation clock, so [token] is a valid [since] bound
   for {!Mass.Store.write_deltas} in either mode. *)
type result_entry = { token : int; fp : Vamana.Footprint.t; cached : Engine.result }

type cache = [ `Hit | `Miss | `Stale | `Bypass ]

type slow_query = {
  sq_query : string;
  sq_total_time : float;  (** end-to-end seconds of the offending run *)
  sq_plan_cache : cache;
  sq_result_cache : cache;
  sq_results : int;
  sq_profile : Vamana.Profile.report option;
  sq_at : float;  (** [Unix.gettimeofday] at detection *)
  sq_qid : int;
  sq_io : Storage.Stats.t;
  sq_wal_bytes : int;
  sq_fsyncs : int;
  sq_drift : float;  (** the plan's EWMA drift score at detection *)
}

type invalidation = [ `Epoch | `Footprint ]

type t = {
  store : Store.t;
  optimize : bool;
  invalidation : invalidation;
  metrics : Metrics.t;
  plans : (plan_key, Engine.prepared) Lru.t;
  results : (plan_key * string, result_entry) Lru.t option;
  mutable slow_threshold : float;  (* seconds; [infinity] disables *)
  slow_profile : bool;
  slow_log : slow_query Queue.t;  (* bounded ring, oldest dropped *)
  slow_log_capacity : int;
  flight : Storage.Flight.t option;
  health : Health.t;
}

(* the full counter schema, registered up front so snapshots always show
   every name (a counter never hit still renders as 0) *)
let counter_names =
  [ "queries"; "errors"; "compiles"; "compile_errors"; "result_keys"; "flushes";
    "plan_cache_hits"; "plan_cache_misses"; "plan_cache_evictions";
    "result_cache_hits"; "result_cache_misses"; "result_cache_stale";
    "result_cache_evictions"; "profiled_queries"; "optimizer_iterations";
    "optimizer_rules_accepted"; "optimizer_rules_rejected"; "optimizer_rules_considered";
    "slow_queries"; "sampled_executions"; "adaptive_replans"; "plan_drift_events";
    "slow_profile_reused"; "slow_profile_rerun"; "result_cache_spared";
    "cache_invalidations_footprint"; "cache_invalidations_epoch"; "cache_invalidations_top";
    "drift_checks_skipped" ]

let default_slow_threshold = 0.1

let create ?(plan_cache_capacity = 128) ?(result_cache_capacity = 512) ?(optimize = true)
    ?(invalidation = `Footprint) ?(slow_threshold = default_slow_threshold)
    ?(slow_profile = true) ?(slow_log_capacity = 128) ?flight
    ?(sample_every = Health.default_sample_every)
    ?(drift_threshold = Health.default_drift_threshold) store =
  let metrics = Metrics.create () in
  List.iter (fun name -> Metrics.inc ~by:0 metrics name) counter_names;
  {
    store;
    optimize;
    invalidation;
    metrics;
    plans = Lru.create ~capacity:plan_cache_capacity;
    results =
      (if result_cache_capacity = 0 then None
       else Some (Lru.create ~capacity:result_cache_capacity));
    slow_threshold;
    slow_profile;
    slow_log = Queue.create ();
    slow_log_capacity = max 1 slow_log_capacity;
    flight;
    health = Health.create ~sample_every ~drift_threshold ();
  }

let store t = t.store
let invalidation t = t.invalidation
let metrics t = t.metrics
let health t = t.health
let slow_threshold t = t.slow_threshold
let set_slow_threshold t s = t.slow_threshold <- s
let slow_queries t = List.rev (Queue.fold (fun acc sq -> sq :: acc) [] t.slow_log)

type outcome = {
  result : Engine.result;
  plan_cache : cache;
  result_cache : cache;
  total_time : float;
  attribution : Engine.attribution;
}

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

(* characters that can extend an NCName or number: whitespace between two
   of these is token-separating ("a div b", "person - 1") and must
   survive as one space; anywhere else it is insignificant and dropped,
   so "//person / address" keys identically to "//person/address" *)
let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '-'

let normalize src =
  let buf = Buffer.create (String.length src) in
  let n = String.length src in
  let rec go i quote pending_space =
    if i < n then
      let c = src.[i] in
      match quote with
      | Some q ->
          Buffer.add_char buf c;
          go (i + 1) (if c = q then None else quote) false
      | None ->
          if is_space c then go (i + 1) None true
          else begin
            (if pending_space && Buffer.length buf > 0 then
               let last = Buffer.nth buf (Buffer.length buf - 1) in
               if is_name_char last && is_name_char c then Buffer.add_char buf ' ');
            Buffer.add_char buf c;
            go (i + 1) (if c = '\'' || c = '"' then Some c else None) false
          end
  in
  go 0 None false;
  Buffer.contents buf

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let plan_key t ~scope src =
  {
    src = normalize src;
    scope = (match scope with Some s -> Flex.to_string s | None -> "");
    optimized = t.optimize;
  }

(* the plan key rendered for the health table (health records outlive
   plan-cache evictions, so they key on the same identity, not the
   cached artifact); 0x1f cannot appear in queries or rendered scopes *)
let health_key key =
  String.concat "\x1f" [ key.src; key.scope; (if key.optimized then "O" else "U") ]

let health_record t key src =
  Health.record t.health ~key:(health_key key) ~query:src ~scope:key.scope
    ~optimized:key.optimized

(* result-cache invalidation token: the scope document's own mutation
   epoch when the query is document-scoped — writes to other documents
   leave it unchanged — falling back to the store-wide epoch for
   unscoped queries or a scope that is no longer a document *)
let cache_token t ~scope =
  match scope with
  | Some s -> (
      match Store.document_of_key t.store s with
      | Some d -> Store.doc_epoch t.store d
      | None -> Store.epoch t.store)
  | None -> Store.epoch t.store

(* whole-plan estimate under current synopsis statistics vs the plan's
   compile-time costing: a ratio far from 1 means the statistics moved
   under the cached plan even before sampled actuals catch it.  The
   sentinel 256 (8 doublings) stands in for an infinite ratio (an
   estimate of 0 against a nonzero count, or vice versa). *)
let clamp_q q = if Float.is_finite q then q else 256.0

let estimate_drift t (p : Engine.prepared) =
  match (p.Engine.outcomes, p.Engine.executed_plans) with
  | Some (o :: _), plan :: _ ->
      let old_total = Vamana.Cost.total_output o.Vamana.Optimizer.cost plan in
      let now =
        Vamana.Cost.estimate
          ~stats:(Vamana.Cost.synopsis_statistics t.store)
          t.store ~scope:p.Engine.prep_scope plan
      in
      clamp_q (Vamana.Profile.q_error ~est:old_total ~act:(Vamana.Cost.total_output now plan))
  | _ -> 1.0

(* Footprint drift-skip: the estimate ratio only moves when the
   statistics under the plan's footprint move.  When every write since
   an epoch the ratio is known at is provably disjoint from the
   footprint, the recomputation is a no-op — return the known value
   instead of re-walking the synopsis.  Two anchors, tried in order:
   the prepare epoch (known ratio 1.0 — the compile-time costing and a
   fresh estimate would read the same counts) and the last sample taken
   of {e this} prepared plan (its recorded ratio). *)
let estimate_drift_for t hr (p : Engine.prepared) =
  let fp = p.Engine.prep_footprint in
  let disjoint_since anchor =
    anchor >= 0
    &&
    match Store.write_deltas t.store ~since:anchor with
    | None -> false
    | Some deltas -> List.for_all (fun d -> not (Vamana.Footprint.intersects fp d)) deltas
  in
  if t.invalidation = `Footprint && not (Vamana.Footprint.is_top fp) then
    if disjoint_since p.Engine.prep_epoch then begin
      Metrics.inc t.metrics "drift_checks_skipped";
      1.0
    end
    else if
      hr.Health.hr_last_epoch >= p.Engine.prep_epoch
      && disjoint_since hr.Health.hr_last_epoch
    then begin
      Metrics.inc t.metrics "drift_checks_skipped";
      match Health.last_sample hr with Some s -> s.Health.s_estimate_q | None -> 1.0
    end
    else estimate_drift t p
  else estimate_drift t p

(* fetch-or-prepare through the plan cache *)
let prepared t ~scope key src =
  match Lru.find t.plans key with
  | Some p ->
      Metrics.inc t.metrics "plan_cache_hits";
      Ok (p, `Hit)
  | None -> (
      Metrics.inc t.metrics "plan_cache_misses";
      Metrics.inc t.metrics "compiles";
      match Engine.prepare ~optimize:t.optimize t.store ~scope src with
      | Error _ as e ->
          Metrics.inc t.metrics "compile_errors";
          e
      | Ok p ->
          Metrics.observe t.metrics "compile" p.Engine.prep_compile_time;
          if t.optimize then Metrics.observe t.metrics "optimize" p.Engine.prep_optimize_time;
          List.iter
            (fun (s : Vamana.Profile.span) ->
              match s.Vamana.Profile.name with
              | "parse" -> Metrics.observe t.metrics "parse" s.Vamana.Profile.dur
              | "optimize" -> Metrics.observe t.metrics "optimize_iteration" s.Vamana.Profile.dur
              | _ -> ())
            p.Engine.prep_spans;
          (match p.Engine.outcomes with
          | None -> ()
          | Some outcomes ->
              List.iter
                (fun (o : Vamana.Optimizer.outcome) ->
                  Metrics.inc ~by:o.Vamana.Optimizer.iterations t.metrics "optimizer_iterations";
                  Metrics.inc
                    ~by:(List.length o.Vamana.Optimizer.trace)
                    t.metrics "optimizer_rules_accepted";
                  List.iter
                    (fun (s : Vamana.Optimizer.iteration_stat) ->
                      Metrics.inc ~by:s.Vamana.Optimizer.considered t.metrics
                        "optimizer_rules_considered";
                      Metrics.inc ~by:s.Vamana.Optimizer.rejected t.metrics
                        "optimizer_rules_rejected";
                      Metrics.inc ~by:s.Vamana.Optimizer.property_rejected t.metrics
                        "optimizer_rules_property_rejected")
                    o.Vamana.Optimizer.iteration_stats)
                outcomes);
          if Lru.put t.plans key p <> None then
            Metrics.inc t.metrics "plan_cache_evictions";
          Ok (p, `Miss))

let execute t ~profile ~scope ~context key p =
  let result, _ = time (fun () -> Engine.execute_prepared ~profile t.store ~context p) in
  Metrics.observe t.metrics "execute" result.Engine.execute_time;
  Metrics.inc ~by:(List.length result.Engine.keys) t.metrics "result_keys";
  if result.Engine.profile <> None then Metrics.inc t.metrics "profiled_queries";
  (match t.results with
  | None -> ()
  | Some cache ->
      let entry =
        { token = cache_token t ~scope; fp = p.Engine.prep_footprint; cached = result }
      in
      if Lru.put cache (key, Flex.to_string context) entry <> None then
        Metrics.inc t.metrics "result_cache_evictions");
  result

let cache_tag = function
  | `Hit -> "hit"
  | `Miss -> "miss"
  | `Stale -> "stale"
  | `Bypass -> "bypass"

(* always-on slow-query log: record the query, its cache outcomes, and —
   when the offending run carried no instrumentation — re-execute the
   cached plan with profiling so the entry has an operator tree to read.
   A run the health sampler (or an explicit profile request) already
   instrumented is reused as-is: the plan never executes twice. *)
let note_slow t ~context src (o : outcome) =
  if o.total_time >= t.slow_threshold then begin
    Metrics.inc t.metrics "slow_queries";
    let scope = Engine.scope_of_context context in
    let key = plan_key t ~scope src in
    let profile =
      match o.result.Engine.profile with
      | Some _ as p ->
          Metrics.inc t.metrics "slow_profile_reused";
          p
      | None ->
          if not t.slow_profile then None
          else (
            match Lru.find t.plans key with
            | Some p ->
                Metrics.inc t.metrics "slow_profile_rerun";
                (Engine.execute_prepared ~profile:true t.store ~context p).Engine.profile
            | None -> None)
    in
    let drift =
      match Health.find t.health (health_key key) with
      | Some r -> r.Health.hr_drift
      | None -> 0.0
    in
    let a = o.attribution in
    let entry =
      { sq_query = src;
        sq_total_time = o.total_time;
        sq_plan_cache = o.plan_cache;
        sq_result_cache = o.result_cache;
        sq_results = List.length o.result.Engine.keys;
        sq_profile = profile;
        sq_at = Unix.gettimeofday ();
        sq_qid = a.Engine.attr_qid;
        sq_io = a.Engine.attr_io;
        sq_wal_bytes = a.Engine.attr_wal_bytes;
        sq_fsyncs = a.Engine.attr_fsyncs;
        sq_drift = drift }
    in
    if Queue.length t.slow_log >= t.slow_log_capacity then ignore (Queue.pop t.slow_log);
    Queue.push entry t.slow_log;
    if Obs.active () then
      Obs.emit ~severity:Obs.Warn ~category:"service" "slow_query"
        [ ("query", Obs.Str src);
          ("total_ms", Obs.Float (o.total_time *. 1000.));
          ("plan_cache", Obs.Str (cache_tag o.plan_cache));
          ("result_cache", Obs.Str (cache_tag o.result_cache));
          ("results", Obs.Int entry.sq_results);
          ("pages_read", Obs.Int a.Engine.attr_io.Storage.Stats.logical_reads);
          ("wal_bytes", Obs.Int a.Engine.attr_wal_bytes);
          ("fsyncs", Obs.Int a.Engine.attr_fsyncs);
          ("profiled", Obs.Bool (profile <> None));
          ("drift", Obs.Float entry.sq_drift) ]
  end

let query ?(profile = false) t ~context src =
  (* the whole serve path runs under this query's id: every bus event
     below (engine spans, pager evictions, WAL appends) carries it, and
     the entry/exit I/O snapshots become the query's attributed use *)
  let qid = Obs.fresh_query_id () in
  Obs.with_context [ ("qid", Obs.Int qid) ] @@ fun () ->
  let io_before = Storage.Stats.copy (Store.io_stats t.store) in
  let disk_before = Option.map Storage.Disk.copy_io (Store.disk_io t.store) in
  (match t.flight with
  | Some fr -> Storage.Flight.record_begin fr ~qid ~epoch:(Store.epoch t.store) ~source:src
  | None -> ());
  let sampled_run = ref false in
  let drift_now = ref 0.0 in
  let outcome, total_time =
    time (fun () ->
        Metrics.inc t.metrics "queries";
        let scope = Engine.scope_of_context context in
        let key = plan_key t ~scope src in
        let cached_result =
          match t.results with
          | None -> `Bypass
          (* a profiled query must actually execute: a cached answer
             carries no (or a stale) operator profile *)
          | Some _ when profile -> `Bypass
          | Some cache -> (
              let rkey = (key, Flex.to_string context) in
              match Lru.find cache rkey with
              | Some entry when entry.token = cache_token t ~scope -> `Cached entry.cached
              | Some entry -> (
                  (* written under an older invalidation token: this
                     query's document (or, unscoped, the store) has
                     mutated since.  Under epoch invalidation that alone
                     evicts; under footprint invalidation the entry
                     survives if every write since is provably disjoint
                     from the plan's read footprint *)
                  let evict reason =
                    Lru.remove cache rkey;
                    Metrics.inc t.metrics "result_cache_stale";
                    Metrics.inc t.metrics ("cache_invalidations_" ^ reason);
                    `Stale
                  in
                  match t.invalidation with
                  | `Epoch -> evict "epoch"
                  | `Footprint -> (
                      if Vamana.Footprint.is_top entry.fp then evict "top"
                      else
                        match Store.write_deltas t.store ~since:entry.token with
                        | None ->
                            (* the delta ring no longer covers the
                               entry's window; only the epoch argument
                               remains *)
                            evict "epoch"
                        | Some deltas ->
                            (* a scoped entry only reads inside its
                               document, so other documents' deltas
                               cannot touch it (a delta without a
                               document attribution stays relevant) *)
                            let own_doc =
                              match scope with
                              | Some s ->
                                  Option.map
                                    (fun d -> d.Store.doc_id)
                                    (Store.document_of_key t.store s)
                              | None -> None
                            in
                            let relevant d =
                              match (own_doc, d.Store.wd_doc) with
                              | Some id, Some wid -> wid = id
                              | _, _ -> true
                            in
                            if
                              List.for_all
                                (fun d ->
                                  (not (relevant d))
                                  || not (Vamana.Footprint.intersects entry.fp d))
                                deltas
                            then begin
                              (* provably untouched: refresh the token so
                                 the next lookup fast-paths again *)
                              ignore
                                (Lru.put cache rkey
                                   { entry with token = cache_token t ~scope });
                              Metrics.inc t.metrics "result_cache_spared";
                              `Cached entry.cached
                            end
                            else evict "footprint"))
              | None -> `Miss)
        in
        match cached_result with
        | `Cached result ->
            Metrics.inc t.metrics "result_cache_hits";
            Ok
              { result; plan_cache = `Hit; result_cache = `Hit; total_time = 0.0;
                attribution = result.Engine.attribution }
        | (`Bypass | `Stale | `Miss) as status ->
            if status <> `Bypass then Metrics.inc t.metrics "result_cache_misses";
            let result_cache = (status :> cache) in
            let hr = health_record t key src in
            (* adaptive replan: when the drift detector marked this plan
               stale, drop the cached plan and re-prepare against fresh
               statistics — the plan-cache disposition reads [`Stale] *)
            let replanning = Health.stale hr in
            if replanning then begin
              Lru.remove t.plans key;
              Metrics.inc t.metrics "adaptive_replans"
            end;
            (match prepared t ~scope key src with
            | Error msg ->
                Metrics.inc t.metrics "errors";
                Error msg
            | Ok (p, plan_cache) ->
                let plan_cache = if replanning then `Stale else plan_cache in
                if replanning then Health.note_replan t.health hr ~epoch:(Store.epoch t.store);
                (* the always-on sampler: every Nth execution of this
                   plan runs instrumented and feeds the drift detector *)
                let sampled = Health.note_execution t.health hr in
                if sampled then Metrics.inc t.metrics "sampled_executions";
                sampled_run := sampled;
                let result = execute t ~profile:(profile || sampled) ~scope ~context key p in
                (match result.Engine.profile with
                | Some rep ->
                    if
                      Health.observe t.health hr ~epoch:(Store.epoch t.store)
                        ~latency:result.Engine.execute_time
                        ~pages:result.Engine.io.Storage.Stats.logical_reads
                        ~results:(List.length result.Engine.keys)
                        ~estimate_q:(estimate_drift_for t hr p) rep
                    then Metrics.inc t.metrics "plan_drift_events"
                | None -> ());
                drift_now := hr.Health.hr_drift;
                Ok
                  { result; plan_cache; result_cache; total_time = 0.0;
                    attribution = result.Engine.attribution }))
  in
  Metrics.observe t.metrics "query" total_time;
  (* service-window attribution: covers prepare (on plan-cache misses)
     and execute, so a single query's counters sum to the Stats globals *)
  let attr_io = Storage.Stats.diff (Store.io_stats t.store) io_before in
  let attr_wal_bytes, attr_fsyncs =
    match (disk_before, Store.disk_io t.store) with
    | Some before, Some live ->
        let d = Storage.Disk.diff_io live before in
        (d.Storage.Disk.wal_bytes_written, d.Storage.Disk.fsyncs)
    | _ -> (0, 0)
  in
  let attribution =
    { Engine.attr_qid = qid; attr_io; attr_wal_bytes; attr_fsyncs }
  in
  let outcome = Result.map (fun o -> { o with total_time; attribution }) outcome in
  (match t.flight with
  | Some fr ->
      let ok, cache, results =
        match outcome with
        | Ok o -> (true, cache_tag o.result_cache, List.length o.result.Engine.keys)
        | Error _ -> (false, "error", 0)
      in
      Storage.Flight.record_end fr
        { Storage.Flight.qid; source = src; ok; cache;
          latency_us = int_of_float (total_time *. 1e6);
          pages_read = attr_io.Storage.Stats.logical_reads;
          physical_reads = attr_io.Storage.Stats.physical_reads;
          wal_bytes = attr_wal_bytes; fsyncs = attr_fsyncs; results;
          epoch = Store.epoch t.store;
          at_ms = int_of_float (Unix.gettimeofday () *. 1000.);
          sampled = !sampled_run; drift = !drift_now }
  | None -> ());
  (match outcome with
  | Ok o ->
      note_slow t ~context src o;
      if Obs.active () then
        Obs.emit ~category:"service" "query"
          [ ("query", Obs.Str src);
            ("total_ms", Obs.Float (total_time *. 1000.));
            ("plan_cache", Obs.Str (cache_tag o.plan_cache));
            ("result_cache", Obs.Str (cache_tag o.result_cache));
            ("results", Obs.Int (List.length o.result.Engine.keys));
            ("pages_read", Obs.Int attr_io.Storage.Stats.logical_reads);
            ("wal_bytes", Obs.Int attr_wal_bytes);
            ("fsyncs", Obs.Int attr_fsyncs);
            ("sampled", Obs.Bool !sampled_run) ]
  | Error msg ->
      if Obs.active () then
        Obs.emit ~severity:Obs.Error ~category:"service" "query_error"
          [ ("query", Obs.Str src); ("error", Obs.Str msg) ]);
  outcome

let query_doc ?profile t doc src = query ?profile t ~context:doc.Store.doc_key src

let plan_cache_length t = Lru.length t.plans
let result_cache_length t = match t.results with None -> 0 | Some c -> Lru.length c

let flush t =
  Lru.clear t.plans;
  (match t.results with Some c -> Lru.clear c | None -> ());
  Metrics.inc t.metrics "flushes"

let snapshot_text t = Metrics.render_text ~io:(Store.io_stats t.store) t.metrics
let snapshot_json t = Metrics.render_json ~io:(Store.io_stats t.store) t.metrics
