(** Metrics registry for the query service: named monotonic counters and
    named latency histograms ({!Storage.Stats.Histogram}), with text and
    JSON snapshot rendering.

    Names are created on first use; readers see every name touched so
    far.  Snapshots can fold in a {!Storage.Stats.t} of buffer-pool I/O
    counters so one dump covers the whole service. *)

type t

val create : unit -> t

(** {1 Counters} *)

val inc : ?by:int -> t -> string -> unit
(** Add [by] (default 1) to the named counter, creating it at 0 first. *)

val counter : t -> string -> int
(** Current value; [0] for a name never incremented. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

(** {1 Histograms} *)

val observe : t -> string -> float -> unit
(** Record a latency (seconds) in the named histogram, creating it on
    first use. *)

val histogram : t -> string -> Storage.Stats.Histogram.h option

val histograms : t -> (string * Storage.Stats.Histogram.h) list
(** All histograms, sorted by name. *)

(** {1 Derived} *)

val ratio : t -> hits:string -> misses:string -> float option
(** [hits / (hits + misses)] from two counters; [None] when both are 0. *)

(** {1 Snapshots} *)

val render_text : ?io:Storage.Stats.t -> t -> string
(** Human-readable snapshot: counters, cache hit rates, histogram
    summary lines, and (when given) the I/O counters. *)

val render_json : ?io:Storage.Stats.t -> t -> string
(** The same snapshot as a single JSON object:
    [{"counters": {...}, "histograms": {name: {count, mean_ms, min_ms,
    max_ms, p50_ms, p95_ms, p99_ms}}, "io": {...}}].  Hand-rolled
    rendering — no JSON library dependency. *)

val to_openmetrics :
  ?io:Storage.Stats.t ->
  ?pools:(string * Storage.Stats.t) list ->
  ?disk:Storage.Disk.io ->
  ?plan_health:(string * float * int * int) list ->
  t ->
  string
(** The snapshot in OpenMetrics / Prometheus text exposition format,
    scrape-ready: every registry counter becomes a [vamana_<name>]
    counter family ([_total] sample) — except the
    [cache_invalidations_<reason>] counters, which fold into the single
    labeled family
    [vamana_cache_invalidations_total{reason="footprint"|"epoch"|"top"}]
    — cache hit rates become gauges,
    histograms become [vamana_<name>_seconds] with cumulative
    [le]-labelled buckets plus [_sum]/[_count].  [io] adds the
    aggregate buffer-pool counters ([vamana_page_*]), [pools] the same
    per index (label [index="..."]), [disk] the WAL/data-file counters
    ([vamana_wal_*], [vamana_fsyncs], ...).  [plan_health] entries
    [(query, drift, replans, samples)] (see
    {!Health.openmetrics_families}) render as
    [vamana_plan_drift_score{plan="..."}] gauges plus
    [vamana_plan_replans] / [vamana_plan_samples] counters; the three
    [# TYPE] declarations are emitted even when the list is empty.
    Terminated by [# EOF]. *)

val reset : t -> unit
(** Forget every counter and histogram (test support). *)
