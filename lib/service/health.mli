(** Plan-health monitoring: always-on sampled profiling, cost-model
    drift detection, and the adaptive re-optimization state machine.

    The service keeps one {!record} per plan-cache key (the records
    outlive cache evictions — health is about the {e query}, not the
    cached artifact).  Every execution of a cached plan passes through
    {!note_execution}, an allocation-free countdown that elects every
    Nth execution for profiling.  Sampled runs feed {!observe}: the
    per-operator actuals from the {!Vamana.Profile.report} are compared
    against the plan's compile-time {!Vamana.Cost.costed} estimates
    (the report's q-errors) and against a fresh estimate under the
    current synopsis statistics (the [estimate_q] the service passes
    in), and folded into an EWMA {e drift score}

    {[ drift <- (1 - alpha) * drift + alpha * log2 (max 1 q) ]}

    where [q] is the worst of the sample's per-operator q-error and the
    stale-vs-fresh estimate ratio.  A drift score of 1.0 therefore
    means the cost model is off by a {e sustained} factor of two.  When
    the score crosses the configured threshold the record is marked
    stale and a [health/plan_drift] event names the offending operator;
    the service treats the next plan-cache hit for a stale record as a
    miss, re-prepares against fresh statistics, and calls
    {!note_replan}, which resets the score, counts the replan, emits
    [health/adaptive_replan], and schedules an immediate sample so the
    recovery is verified by the very next execution. *)

type t

type sample = {
  s_at : float;  (** [Unix.gettimeofday] at the sampled run *)
  s_epoch : int;  (** store mutation epoch of the sampled run *)
  s_latency : float;  (** execute seconds *)
  s_results : int;
  s_root_q : float;  (** plan-cardinality q-error at the root *)
  s_max_q : float;  (** worst per-operator q-error *)
  s_estimate_q : float;
      (** compile-time vs current-statistics whole-plan estimate ratio *)
  s_worst_op : string;  (** label of the worst-q-error operator *)
  s_pages : int;  (** attributed logical page reads *)
  s_drift : float;  (** EWMA drift score {e after} this sample *)
}

type record = {
  hr_query : string;  (** query text as first submitted *)
  hr_scope : string;  (** rendered statistics scope ("" = store-wide) *)
  hr_optimized : bool;
  mutable hr_executions : int;  (** real executions (result-cache hits excluded) *)
  mutable hr_sampled : int;
  mutable hr_countdown : int;
  mutable hr_drift : float;  (** current EWMA drift score *)
  mutable hr_stale : bool;  (** drift crossed the threshold; replan pending *)
  mutable hr_replans : int;
  mutable hr_cooldown : int;
      (** samples left before the record may go stale again — set to
          [min 64 (2^replans)] by {!note_replan}, so a plan whose replan
          did not cure the drift (an estimation error no statistics
          refresh can fix) is re-planned with exponentially decreasing
          frequency instead of on every sample *)
  mutable hr_last_epoch : int;  (** epoch of the last sample; [-1] before any *)
  mutable hr_last_at : float;
  hr_samples : sample option array;  (** bounded reservoir, ring-indexed *)
  mutable hr_next : int;
}

val default_sample_every : int
(** 16: one profiled run per 16 executions of each plan. *)

val default_drift_threshold : float
(** 1.0 — a sustained 2x estimate-vs-actual error. *)

val default_alpha : float
(** 0.5: the EWMA smoothing factor. *)

val create :
  ?sample_every:int -> ?drift_threshold:float -> ?alpha:float -> ?reservoir:int -> unit -> t
(** [sample_every <= 0] disables sampling entirely (executions are still
    counted); [reservoir] (default 32) bounds the per-plan sample ring. *)

val sample_every : t -> int
val set_sample_every : t -> int -> unit
val drift_threshold : t -> float
val set_drift_threshold : t -> float -> unit

val record : t -> key:string -> query:string -> scope:string -> optimized:bool -> record
(** Find or create the health record for a plan key (the service renders
    its plan-cache key to [key]). *)

val find : t -> string -> record option
val records : t -> record list
(** All records, sorted by query text. *)

val note_execution : t -> record -> bool
(** Count one real execution; [true] when this execution is elected for
    profiling.  The first execution of every record is always sampled
    (the baseline); afterwards every [sample_every]-th.  Allocates
    nothing — integer countdown only — so the unsampled path costs two
    loads and a store (verified by test). *)

val observe :
  t ->
  record ->
  epoch:int ->
  latency:float ->
  pages:int ->
  results:int ->
  ?estimate_q:float ->
  Vamana.Profile.report ->
  bool
(** Fold one sampled run into the record; [estimate_q] (default 1.0) is
    the whole-plan compile-time vs current-statistics estimate ratio.
    Returns [true] when this sample pushed the drift score over the
    threshold (the record is now stale; a [health/plan_drift] event was
    emitted if the bus is active). *)

val stale : record -> bool

val note_replan : t -> record -> epoch:int -> unit
(** The service re-prepared a stale plan: count it, reset drift and
    staleness, schedule an immediate sample, start the replan-backoff
    cooldown, emit [health/adaptive_replan]. *)

val samples : record -> sample list
(** Reservoir contents, oldest first. *)

val last_sample : record -> sample option
(** Most recent sample, if any — what the service's footprint drift-skip
    reuses when no write since [hr_last_epoch] can have touched the
    plan. *)

val worst_operator : Vamana.Profile.report -> string * float
(** Label and q-error of the worst-q-error operator in the report
    (["?"], [1.0] when no operator carries one). *)

val record_json : record -> Vamana.Profile.Json.t
(** One record as JSON: query, scope, executions, samples, drift,
    stale, replans, last-sampled epoch, and the reservoir (q-error
    trend oldest first). *)

val to_json : t -> Vamana.Profile.Json.t
(** [{"plans": [...]}] over {!records}. *)

val openmetrics_families : t -> (string * float * int * int) list
(** Per-plan [(query, drift score, replans, samples)] tuples in the
    shape {!Metrics.to_openmetrics} renders as the
    [vamana_plan_drift_score] / [vamana_plan_replans] /
    [vamana_plan_samples] families. *)
