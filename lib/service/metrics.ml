module H = Storage.Stats.Histogram

type t = {
  counters : (string, int ref) Hashtbl.t;
  histograms : (string, H.h) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 32; histograms = Hashtbl.create 16 }

let counter_ref t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters name r;
      r

let inc ?(by = 1) t name =
  let r = counter_ref t name in
  r := !r + by

let counter t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let histogram_of t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
      let h = H.create () in
      Hashtbl.add t.histograms name h;
      h

let observe t name v = H.observe (histogram_of t name) v
let histogram t name = Hashtbl.find_opt t.histograms name

let histograms t =
  Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.histograms []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let ratio t ~hits ~misses =
  let h = counter t hits and m = counter t misses in
  if h + m = 0 then None else Some (float_of_int h /. float_of_int (h + m))

(* both caches follow the "<name>_hits"/"<name>_misses" convention; find
   the pairs so snapshots can report derived hit rates *)
let hit_rates t =
  List.filter_map
    (fun (name, _) ->
      match Filename.chop_suffix_opt ~suffix:"_hits" name with
      | Some base ->
          Option.map (fun r -> (base, r)) (ratio t ~hits:name ~misses:(base ^ "_misses"))
      | None -> None)
    (counters t)

let render_text ?io t =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "== counters ==";
  List.iter (fun (name, v) -> line "%-28s %d" name v) (counters t);
  (match hit_rates t with
  | [] -> ()
  | rates ->
      line "== hit rates ==";
      List.iter (fun (base, r) -> line "%-28s %.1f%%" base (100. *. r)) rates);
  (match histograms t with
  | [] -> ()
  | hs ->
      line "== latency histograms ==";
      List.iter (fun (name, h) -> line "%-28s %s" name (Format.asprintf "%a" H.pp h)) hs);
  (match io with
  | None -> ()
  | Some s ->
      line "== page I/O ==";
      line "%-28s %d" "logical_reads" s.Storage.Stats.logical_reads;
      line "%-28s %d" "physical_reads" s.Storage.Stats.physical_reads;
      line "%-28s %d" "page_writes" s.Storage.Stats.page_writes;
      line "%-28s %d" "evictions" s.Storage.Stats.evictions;
      line "%-28s %d" "allocations" s.Storage.Stats.allocations;
      line "%-28s %.3f" "hit_ratio" (Storage.Stats.hit_ratio s));
  Buffer.contents buf

(* ---- JSON rendering (hand-rolled: keys are identifiers we mint and
   the only string data is metric names, but escape defensively) ---- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_obj fields =
  "{" ^ String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" (json_escape k) v) fields) ^ "}"

let json_float f =
  (* JSON has no inf/nan literals; "%.6g" would emit them verbatim *)
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let histogram_json h =
  let ms v = json_float (v *. 1000.) in
  json_obj
    [ ("count", string_of_int (H.count h));
      ("sum_ms", ms (H.sum h));
      ("mean_ms", ms (H.mean h));
      ("min_ms", ms (H.min_value h));
      ("max_ms", ms (H.max_value h));
      ("p50_ms", ms (H.percentile h 50.0));
      ("p95_ms", ms (H.percentile h 95.0));
      ("p99_ms", ms (H.percentile h 99.0)) ]

let render_json ?io t =
  let counters_json =
    json_obj (List.map (fun (name, v) -> (name, string_of_int v)) (counters t))
  in
  let rates_json =
    json_obj (List.map (fun (base, r) -> (base, json_float r)) (hit_rates t))
  in
  let histograms_json =
    json_obj (List.map (fun (name, h) -> (name, histogram_json h)) (histograms t))
  in
  let fields =
    [ ("counters", counters_json); ("hit_rates", rates_json); ("histograms", histograms_json) ]
  in
  let fields =
    match io with
    | None -> fields
    | Some s ->
        fields
        @ [ ( "io",
              json_obj
                [ ("logical_reads", string_of_int s.Storage.Stats.logical_reads);
                  ("physical_reads", string_of_int s.Storage.Stats.physical_reads);
                  ("page_writes", string_of_int s.Storage.Stats.page_writes);
                  ("evictions", string_of_int s.Storage.Stats.evictions);
                  ("allocations", string_of_int s.Storage.Stats.allocations);
                  ("hit_ratio", json_float (Storage.Stats.hit_ratio s)) ] ) ]
  in
  json_obj fields

(* ---- OpenMetrics text exposition ----

   Hand-rolled like the JSON: one "# TYPE" line per family, counter
   samples suffixed "_total", histograms as cumulative "le" buckets
   with "_sum"/"_count", "# EOF" terminator.  Metric names we mint are
   already identifier-shaped; [om_name] is a belt for names arriving
   from the registry. *)

let om_name s =
  let s = if s = "" then "unnamed" else s in
  let s =
    String.map (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_') as c -> c | _ -> '_') s
  in
  match s.[0] with '0' .. '9' -> "_" ^ s | _ -> s

let om_label_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let om_float f = if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f else Printf.sprintf "%g" f

let to_openmetrics ?io ?(pools = []) ?disk ?(plan_health = []) t =
  let buf = Buffer.create 4096 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let counter_family name v =
    line "# TYPE %s counter" name;
    line "%s_total %d" name v
  in
  let gauge_family name v =
    line "# TYPE %s gauge" name;
    line "%s %s" name (om_float v)
  in
  (* invalidation-reason counters fold into one labeled family:
     cache_invalidations_<reason> renders as
     vamana_cache_invalidations_total{reason="<reason>"} *)
  let inval_prefix = "cache_invalidations_" in
  let plain, inval =
    List.partition
      (fun (name, _) ->
        not
          (String.length name > String.length inval_prefix
          && String.sub name 0 (String.length inval_prefix) = inval_prefix))
      (counters t)
  in
  List.iter (fun (name, v) -> counter_family ("vamana_" ^ om_name name) v) plain;
  if inval <> [] then begin
    line "# TYPE vamana_cache_invalidations counter";
    List.iter
      (fun (name, v) ->
        let reason =
          String.sub name (String.length inval_prefix)
            (String.length name - String.length inval_prefix)
        in
        line "vamana_cache_invalidations_total{reason=\"%s\"} %d" (om_label_escape reason) v)
      inval
  end;
  List.iter (fun (base, r) -> gauge_family ("vamana_" ^ om_name base ^ "_hit_ratio") r) (hit_rates t);
  List.iter
    (fun (name, h) ->
      let fam = "vamana_" ^ om_name name ^ "_seconds" in
      line "# TYPE %s histogram" fam;
      let cum = ref 0 in
      List.iter
        (fun (ub, n) ->
          cum := !cum + n;
          if Float.is_finite ub then line "%s_bucket{le=\"%s\"} %d" fam (om_float ub) !cum
          else line "%s_bucket{le=\"+Inf\"} %d" fam !cum)
        (H.buckets h);
      line "%s_sum %s" fam (om_float (H.sum h));
      line "%s_count %d" fam (H.count h))
    (histograms t);
  let stat_fields =
    [ ("logical_reads", fun (s : Storage.Stats.t) -> s.logical_reads);
      ("physical_reads", fun (s : Storage.Stats.t) -> s.physical_reads);
      ("writes", fun (s : Storage.Stats.t) -> s.page_writes);
      ("evictions", fun (s : Storage.Stats.t) -> s.evictions);
      ("allocations", fun (s : Storage.Stats.t) -> s.allocations);
      ("write_back_bytes", fun (s : Storage.Stats.t) -> s.write_back_bytes) ]
  in
  (match io with
  | None -> ()
  | Some s ->
      List.iter (fun (fname, get) -> counter_family ("vamana_page_" ^ fname) (get s)) stat_fields;
      gauge_family "vamana_page_hit_ratio" (Storage.Stats.hit_ratio s));
  if pools <> [] then
    List.iter
      (fun (fname, get) ->
        let fam = "vamana_pool_" ^ fname in
        line "# TYPE %s counter" fam;
        List.iter
          (fun (idx, s) -> line "%s_total{index=\"%s\"} %d" fam (om_label_escape idx) (get s))
          pools)
      stat_fields;
  (match disk with
  | None -> ()
  | Some (d : Storage.Disk.io) ->
      counter_family "vamana_wal_records" d.wal_records;
      counter_family "vamana_wal_bytes_written" d.wal_bytes_written;
      counter_family "vamana_fsyncs" d.fsyncs;
      counter_family "vamana_data_reads" d.data_reads;
      counter_family "vamana_data_read_bytes" d.data_read_bytes;
      counter_family "vamana_data_writes" d.data_writes;
      counter_family "vamana_data_write_bytes" d.data_write_bytes;
      counter_family "vamana_checkpoints" d.checkpoints);
  (* plan-health families are always declared — a scrape can tell "no
     plans sampled yet" apart from "exporter predates plan health" *)
  line "# TYPE vamana_plan_drift_score gauge";
  List.iter
    (fun (plan, drift, _, _) ->
      line "vamana_plan_drift_score{plan=\"%s\"} %s" (om_label_escape plan) (om_float drift))
    plan_health;
  line "# TYPE vamana_plan_replans counter";
  List.iter
    (fun (plan, _, replans, _) ->
      line "vamana_plan_replans_total{plan=\"%s\"} %d" (om_label_escape plan) replans)
    plan_health;
  line "# TYPE vamana_plan_samples counter";
  List.iter
    (fun (plan, _, _, samples) ->
      line "vamana_plan_samples_total{plan=\"%s\"} %d" (om_label_escape plan) samples)
    plan_health;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.histograms
