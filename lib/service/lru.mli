(** Bounded LRU cache: hash map plus an intrusive recency list.

    [find] refreshes recency; inserting beyond capacity evicts the least
    recently used entry.  All operations are O(1) expected.  Keys are
    compared with structural equality ([Hashtbl] semantics), so
    composite keys (tuples of strings/ints) work directly. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; a hit moves the entry to most-recently-used. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Presence test without refreshing recency. *)

val put : ('k, 'v) t -> 'k -> 'v -> ('k * 'v) option
(** Insert or replace; the entry becomes most-recently-used.  Returns the
    evicted (least recently used) binding when the insert overflowed
    capacity. *)

val remove : ('k, 'v) t -> 'k -> unit

val clear : ('k, 'v) t -> unit

val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
(** Most-recently-used first; does not refresh recency. *)

val to_list : ('k, 'v) t -> ('k * 'v) list
(** Bindings, most-recently-used first. *)
