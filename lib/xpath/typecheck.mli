(** Static checking of XPath 1.0 expressions against a path synopsis.

    Infers XPath 1.0 static types (node-set / string / number / boolean)
    with constant folding that mirrors {!Eval}'s §3.4 comparison
    semantics, and interprets location paths over a DataGuide-style
    structural summary to attach an exact (or estimated) cardinality to
    every step — zero being a sound, schema-level emptiness proof.

    The summary is supplied through the polymorphic {!schema} record so
    this module stays storage-agnostic; [Mass.Synopsis] provides the
    concrete instantiation over a loaded store. *)

type ty = Nodeset | Num | Str | Bool | Unknown

val ty_to_string : ty -> string

type severity = Info | Warning | Error

val severity_to_string : severity -> string

type diagnostic = {
  severity : severity;
  code : string;
      (** stable machine key: [unknown-tag], [empty-step],
          [empty-predicate], [const-predicate], [const-compare],
          [lossy-coercion], [nan-arith], [type-error],
          [unknown-function] *)
  span : Parser.span option;
  message : string;
}

(** {1 Schema abstraction} *)

type 'n schema = {
  sch_roots : 'n list;  (** document nodes (tag ["#document"]) *)
  sch_tag : 'n -> string;
      (** record tag as {!Mass.Store.tag_of} spells it: element name,
          ["@name"] for attributes, ["#text"], ["#comment"], ["#pi"],
          ["#document"] *)
  sch_count : 'n -> int;  (** exact number of records on this path *)
  sch_children : 'n -> 'n list;
  sch_parent : 'n -> 'n option;
}

(** Occurrence facts for one synopsis path inside an abstract tuple
    stream. [all] implies [exact] and [distinct]. *)
type occ = { bound : int; exact : bool; all : bool; distinct : bool }

type 'n reach = ('n * occ) list

val walk_step : 'n schema -> 'n reach -> Ast.axis -> Ast.node_test -> 'n reach
(** Push a stream abstraction through one location step. *)

val reach_bound : 'n reach -> int
val reach_exact : 'n reach -> bool
val roots_reach : 'n schema -> 'n reach

val chain_estimate : 'n schema -> (Ast.axis * Ast.node_test * bool) list -> int * bool
(** Raw output cardinality of a location-step chain evaluated with the
    document node as context.  Steps are root-side first; the [bool]
    per step records whether it carries predicates (they demote
    exactness but keep the bound).  Returns [(n, exact)]: when [exact]
    is true, [n] is the precise raw tuple count of the last step; when
    false it is an estimate — except [n = 0], which is always a sound
    emptiness proof. *)

(** {1 Checking} *)

type step_note = {
  sn_axis : Ast.axis;
  sn_test : Ast.node_test;
  sn_span : Parser.span option;
  sn_bound : int;
  sn_exact : bool;
  sn_empty : bool;
}

type report = {
  rep_ty : ty;
  rep_diagnostics : diagnostic list;  (** errors first *)
  rep_steps : step_note list;
      (** top-level location-path steps in source order (predicate
          sub-paths are excluded so the list stays 1:1 with the
          compiled step chain) *)
  rep_empty : bool;
      (** the whole expression is a provably empty node-set *)
}

val check : ?schema:'n schema -> ?spans:Parser.spans -> Ast.expr -> report
(** Check one expression.  Without [schema], only type inference and
    constant-folding diagnostics run.  Relative paths are interpreted as
    if evaluated with the document node as context (the engine's
    default); callers gating on {!report.rep_empty} must ensure that is
    the actual evaluation context. *)

val diagnostic_to_string : diagnostic -> string

val pp_diagnostic : ?src:string -> Format.formatter -> diagnostic -> unit
(** With [src], renders a caret line under the diagnostic's span. *)
