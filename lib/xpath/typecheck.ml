(* Static checking of XPath 1.0 source expressions against a path
   synopsis (a DataGuide-style structural summary).  Two cooperating
   analyses share one walk of the AST:

   - type inference: every expression gets an XPath 1.0 static type
     (node-set / string / number / boolean), with constant folding that
     mirrors [Eval]'s §3.4 comparison semantics, so lossy coercions and
     always-false comparisons surface before execution;

   - schema walking: location paths are interpreted over an abstract
     stream domain keyed by synopsis nodes, yielding per-step cardinality
     facts — an exact count when the stream provably carries every record
     of a path exactly once, an estimate otherwise, and zero as a sound
     schema-level emptiness proof.

   The synopsis is abstracted as a polymorphic {!schema} record so this
   module stays storage-agnostic ([lib/xpath] cannot see [Mass]); the
   concrete instantiation lives in [Mass.Synopsis]. *)

type ty = Nodeset | Num | Str | Bool | Unknown

let ty_to_string = function
  | Nodeset -> "node-set"
  | Num -> "number"
  | Str -> "string"
  | Bool -> "boolean"
  | Unknown -> "unknown"

type severity = Info | Warning | Error

let severity_to_string = function Info -> "info" | Warning -> "warning" | Error -> "error"

type diagnostic = {
  severity : severity;
  code : string;
  span : Parser.span option;
  message : string;
}

(* ---- the abstract schema ---- *)

type 'n schema = {
  sch_roots : 'n list;  (** document nodes (tag ["#document"]) *)
  sch_tag : 'n -> string;
  sch_count : 'n -> int;
  sch_children : 'n -> 'n list;
  sch_parent : 'n -> 'n option;
}

(* Occurrence facts for the tuples of one synopsis path inside a stream:
   [bound] tuples at most; [exact] — [bound] is the precise raw tuple
   count; [all] — the stream carries every record of the path exactly
   once; [distinct] — no record appears twice.  [all] implies [exact]
   and [distinct] by construction. *)
type occ = { bound : int; exact : bool; all : bool; distinct : bool }

type 'n reach = ('n * occ) list

(* Saturating arithmetic: bounds only need to be ordered, not precise,
   once they leave the exact regime. *)
let sat_cap = max_int / 4
let sat n = if n > sat_cap then sat_cap else n
let sat_add a b = sat (a + b)
let sat_mul a b = if a = 0 || b = 0 then 0 else if a > sat_cap / b then sat_cap else sat (a * b)

type nkind = KDoc | KElem | KAttr | KText | KComment | KPi

let kind_of_tag t =
  if t = "#document" then KDoc
  else if t = "#text" then KText
  else if t = "#comment" then KComment
  else if t = "#pi" then KPi
  else if String.length t > 0 && t.[0] = '@' then KAttr
  else KElem

(* Mirror of [Mass.Record.matches_test] over synopsis tags.  [Maybe]
   covers the one fact the synopsis loses: a processing-instruction
   target ("#pi" keeps no per-target counts). *)
type tri = Yes | No | Maybe

let matches ~principal (test : Ast.node_test) tag =
  let k = kind_of_tag tag in
  match test with
  | Ast.Name_test n -> (
      match principal with
      | KAttr -> if k = KAttr && tag = "@" ^ n then Yes else No
      | _ -> if k = KElem && tag = n then Yes else No)
  | Ast.Wildcard -> if k = principal then Yes else No
  | Ast.Text_test -> if k = KText then Yes else No
  | Ast.Comment_test -> if k = KComment then Yes else No
  | Ast.Node_test -> Yes
  | Ast.Pi_test None -> if k = KPi then Yes else No
  | Ast.Pi_test (Some _) -> if k = KPi then Maybe else No

let principal_of (axis : Ast.axis) =
  match axis with Ast.Attribute -> KAttr | _ -> KElem

(* ---- the abstract step transfer function ---- *)

let demote o = { o with exact = false; all = false }

let rec strict_descendants sch n acc =
  List.fold_left
    (fun acc c ->
      if kind_of_tag (sch.sch_tag c) = KAttr then acc
      else strict_descendants sch c (c :: acc))
    acc (sch.sch_children n)

let rec root_of sch n = match sch.sch_parent n with None -> n | Some p -> root_of sch p

let rec prefixes sch n acc =
  match sch.sch_parent n with None -> acc | Some p -> prefixes sch p (p :: acc)

(* One step of the abstract walk: push every [(node, occ)] fact through
   [axis::test] and merge contributions per target node.  Raw streams
   concatenate per-tuple outputs, so merged bounds add; a merged fact is
   exact iff every contribution was (each target record is reached the
   claimed number of times), but loses [all]/[distinct] because two
   contributions may carry the same records. *)
let walk_step sch (inp : 'n reach) (axis : Ast.axis) (test : Ast.node_test) : 'n reach =
  let principal = principal_of axis in
  let out = ref [] in
  let add n (o : occ) =
    if o.bound = 0 && o.exact then ()
    else
      match List.partition (fun (n', _) -> n' == n) !out with
      | [], _ -> out := (n, o) :: !out
      | (_, o') :: _, rest ->
          let merged =
            { bound = sat_add o.bound o'.bound;
              exact = o.exact && o'.exact;
              all = false;
              distinct = false }
          in
          out := (n, merged) :: rest
  in
  (* Exact regime for downward axes: from an [all] stream each target
     record is emitted exactly once (its ancestor at the source path is
     unique), so the synopsis count is the raw tuple count.  From a
     merely-distinct stream the count is an upper bound; from an
     arbitrary stream only [bound * count] is safe. *)
  let downward (o : occ) m matched =
    let k = sch.sch_count m in
    let ex = matched = Yes in
    if o.all then { bound = k; exact = ex; all = ex; distinct = true }
    else if o.distinct then { bound = k; exact = false; all = false; distinct = true }
    else { bound = sat_mul o.bound k; exact = false; all = false; distinct = false }
  in
  let self_occ (o : occ) matched =
    match matched with Yes -> o | _ -> demote o
  in
  (* Sibling and document-order axes give estimates, not bounds: a target
     record can be emitted once per qualifying context tuple.  The total
     synopsis count of the target path is the natural estimate (callers
     min it against the Table I bound); zero remains a sound emptiness
     proof because no matching path means no matching records. *)
  let estimate m = { bound = sch.sch_count m; exact = false; all = false; distinct = false } in
  let each (n, o) =
    let tag = sch.sch_tag n in
    let k = kind_of_tag tag in
    match axis with
    | Ast.Child ->
        List.iter
          (fun m ->
            if kind_of_tag (sch.sch_tag m) <> KAttr then
              match matches ~principal test (sch.sch_tag m) with
              | No -> ()
              | t -> add m (downward o m t))
          (sch.sch_children n)
    | Ast.Attribute ->
        List.iter
          (fun m ->
            if kind_of_tag (sch.sch_tag m) = KAttr then
              match matches ~principal test (sch.sch_tag m) with
              | No -> ()
              | t -> add m (downward o m t))
          (sch.sch_children n)
    | Ast.Descendant | Ast.Descendant_or_self ->
        if axis = Ast.Descendant_or_self then begin
          match matches ~principal test tag with
          | No -> ()
          | t -> add n (self_occ o t)
        end;
        List.iter
          (fun m ->
            match matches ~principal test (sch.sch_tag m) with
            | No -> ()
            | t -> add m (downward o m t))
          (strict_descendants sch n [])
    | Ast.Self -> (
        match matches ~principal test tag with No -> () | t -> add n (self_occ o t))
    | Ast.Parent -> (
        match sch.sch_parent n with
        | None -> ()
        | Some p -> (
            match matches ~principal test (sch.sch_tag p) with
            | No -> ()
            | t ->
                (* each context tuple has exactly one parent record *)
                add p
                  { bound = o.bound;
                    exact = o.exact && t = Yes;
                    all = false;
                    distinct = o.distinct && o.bound <= 1 }))
    | Ast.Ancestor | Ast.Ancestor_or_self ->
        if axis = Ast.Ancestor_or_self then begin
          match matches ~principal test tag with
          | No -> ()
          | t -> add n (self_occ o t)
        end;
        List.iter
          (fun p ->
            match matches ~principal test (sch.sch_tag p) with
            | No -> ()
            | t ->
                (* each context tuple has exactly one ancestor record at
                   every strict prefix path *)
                add p
                  { bound = o.bound;
                    exact = o.exact && t = Yes;
                    all = false;
                    distinct = o.distinct && o.bound <= 1 })
          (prefixes sch n [])
    | Ast.Following_sibling | Ast.Preceding_sibling -> (
        if k = KAttr then ()
        else
          match sch.sch_parent n with
          | None -> ()
          | Some p ->
              List.iter
                (fun m ->
                  if kind_of_tag (sch.sch_tag m) <> KAttr then
                    match matches ~principal test (sch.sch_tag m) with
                    | No -> ()
                    | _ -> add m (estimate m))
                (sch.sch_children p))
    | Ast.Following | Ast.Preceding ->
        let r = root_of sch n in
        List.iter
          (fun m ->
            let mk = kind_of_tag (sch.sch_tag m) in
            if mk <> KAttr && mk <> KDoc then
              match matches ~principal test (sch.sch_tag m) with
              | No -> ()
              | _ -> add m (estimate m))
          (strict_descendants sch r [])
    | Ast.Namespace -> ()
  in
  List.iter each inp;
  !out

let reach_bound (r : _ reach) = List.fold_left (fun a (_, o) -> sat_add a o.bound) 0 r
let reach_exact (r : _ reach) = List.for_all (fun (_, o) -> o.exact) r

let start_occ = { bound = 1; exact = true; all = true; distinct = true }
let roots_reach sch = List.map (fun r -> (r, start_occ)) sch.sch_roots

(* Chain estimation for the cost model: steps are [(axis, test,
   has_predicates)] root-side first; predicates demote exactness but keep
   the bound (they only filter).  Returns the raw output estimate of the
   last step and whether it is exact. *)
let chain_estimate sch spec =
  let out =
    List.fold_left
      (fun inp (axis, test, has_preds) ->
        let out = walk_step sch inp axis test in
        if has_preds then List.map (fun (n, o) -> (n, demote o)) out else out)
      (roots_reach sch) spec
  in
  (reach_bound out, reach_exact out)

(* Does [name] occur as an element tag anywhere in the synopsis? *)
let tag_known sch name =
  let rec scan n =
    sch.sch_tag n = name || List.exists scan (sch.sch_children n)
  in
  List.exists scan sch.sch_roots

(* ---- constant folding (mirrors Eval §3.4) ---- *)

type value = VBool of bool | VNum of float | VStr of string

let number_of_string s =
  let s = String.trim s in
  if s = "" then Float.nan
  else match float_of_string_opt s with Some f -> f | None -> Float.nan

let bool_of_value = function
  | VBool b -> b
  | VNum f -> f <> 0.0 && not (Float.is_nan f)
  | VStr s -> String.length s > 0

let num_of_value = function
  | VNum f -> f
  | VStr s -> number_of_string s
  | VBool b -> if b then 1.0 else 0.0

let str_of_value = function
  | VStr s -> s
  | VBool b -> if b then "true" else "false"
  | VNum f ->
      if Float.is_integer f && Float.abs f < 1e16 then
        Printf.sprintf "%.0f" f
      else Printf.sprintf "%g" f

(* Comparison of two known atomic values, per §3.4 priority for [=]/[!=]
   (boolean > number > string) and forced numeric comparison for the
   relational operators. *)
let fold_compare (op : Ast.binop) a b =
  match op with
  | Ast.Eq | Ast.Neq ->
      let eq =
        match (a, b) with
        | VBool _, _ | _, VBool _ -> bool_of_value a = bool_of_value b
        | VNum _, _ | _, VNum _ ->
            let x = num_of_value a and y = num_of_value b in
            (not (Float.is_nan x)) && (not (Float.is_nan y)) && x = y
        | VStr x, VStr y -> x = y
      in
      Some (VBool (if op = Ast.Eq then eq else not eq))
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      let x = num_of_value a and y = num_of_value b in
      if Float.is_nan x || Float.is_nan y then Some (VBool false)
      else
        let r =
          match op with
          | Ast.Lt -> x < y
          | Ast.Le -> x <= y
          | Ast.Gt -> x > y
          | Ast.Ge -> x >= y
          | _ -> assert false
        in
        Some (VBool r)
  | _ -> None

(* ---- the checker ---- *)

type step_note = {
  sn_axis : Ast.axis;
  sn_test : Ast.node_test;
  sn_span : Parser.span option;
  sn_bound : int;
  sn_exact : bool;
  sn_empty : bool;
}

type report = {
  rep_ty : ty;
  rep_diagnostics : diagnostic list;
  rep_steps : step_note list;
  rep_empty : bool;  (** the whole expression is a provably empty node-set *)
}

type info = {
  i_ty : ty;
  i_empty : bool;  (** provably empty node-set *)
  i_value : value option;  (** statically known result *)
}

let core_functions =
  (* name, allowed arities, return type, indices of arguments that must
     be node-sets (mirrors Eval's [call] table, which raises
     [Unsupported] on anything else) *)
  [
    ("position", [ 0 ], Num, []);
    ("last", [ 0 ], Num, []);
    ("count", [ 1 ], Num, [ 0 ]);
    ("not", [ 1 ], Bool, []);
    ("true", [ 0 ], Bool, []);
    ("false", [ 0 ], Bool, []);
    ("boolean", [ 1 ], Bool, []);
    ("number", [ 0; 1 ], Num, []);
    ("string", [ 0; 1 ], Str, []);
    ("concat", [], Str, []) (* arity >= 2, special-cased *);
    ("contains", [ 2 ], Bool, []);
    ("starts-with", [ 2 ], Bool, []);
    ("string-length", [ 0; 1 ], Num, []);
    ("normalize-space", [ 0; 1 ], Str, []);
    ("name", [ 0; 1 ], Str, [ 0 ]);
    ("local-name", [ 0; 1 ], Str, [ 0 ]);
    ("sum", [ 1 ], Num, [ 0 ]);
    ("floor", [ 1 ], Num, []);
    ("ceiling", [ 1 ], Num, []);
    ("round", [ 1 ], Num, []);
    ("substring-before", [ 2 ], Str, []);
    ("substring-after", [ 2 ], Str, []);
    ("substring", [ 2; 3 ], Str, []);
    ("translate", [ 3 ], Str, []);
  ]

type 'n ctx = {
  spans : Parser.spans option;
  mutable diags : diagnostic list;
  mutable steps : step_note list;
  mutable note_steps : bool;
      (** record {!step_note}s — on for the main location path, off
          inside predicates so notes stay 1:1 with the compiled chain *)
}

let diag ctx severity code span message = ctx.diags <- { severity; code; span; message } :: ctx.diags

let espan ctx e = match ctx.spans with None -> None | Some sp -> Parser.expr_span sp e
let sspan ctx s = match ctx.spans with None -> None | Some sp -> Parser.step_span sp s

let describe_test (t : Ast.node_test) =
  match t with
  | Ast.Name_test n -> Printf.sprintf "%S" n
  | _ -> Ast.node_test_to_string t

(* Walk a location path over the schema from [from], emitting one
   {!step_note} per step and diagnosing the first step whose reach is
   provably empty.  Relative paths are checked as if evaluated with the
   document node as context — the engine's default and the only context
   under which its schema-empty short-circuit fires. *)
let rec walk_path : 'n. 'n ctx -> 'n schema -> 'n reach -> Ast.step list -> 'n reach =
  fun ctx sch from steps ->
  match steps with
  | [] -> from
  | step :: rest ->
      let out = walk_step sch from step.Ast.axis step.Ast.test in
      let out =
        List.fold_left
          (fun out pred ->
            let pi = infer_predicate ctx sch out pred in
            match pi with
            | `Always_false -> []
            | `Always_true -> out
            | `Unknown -> List.map (fun (n, o) -> (n, demote o)) out)
          out step.Ast.predicates
      in
      let bound = reach_bound out in
      let exact = reach_exact out in
      let span = sspan ctx step in
      if ctx.note_steps then
        ctx.steps <-
          { sn_axis = step.Ast.axis;
            sn_test = step.Ast.test;
            sn_span = span;
            sn_bound = bound;
            sn_exact = exact;
            sn_empty = bound = 0 }
          :: ctx.steps;
      if bound = 0 && reach_bound from > 0 then begin
        (* first offending step: distinguish a tag unknown to the whole
           document from one merely unreachable on this axis *)
        match step.Ast.test with
        | Ast.Name_test name
          when step.Ast.axis <> Ast.Attribute && not (tag_known sch name) ->
            diag ctx Warning "unknown-tag" span
              (Printf.sprintf "element %S occurs nowhere in the document" name)
        | t ->
            diag ctx Warning "empty-step" span
              (Printf.sprintf "step %s::%s matches nothing at this point in the path"
                 (Ast.axis_name step.Ast.axis) (describe_test t))
      end;
      walk_path ctx sch out rest

(* A predicate is pushed through each candidate tuple; for schema
   reasoning we only need its truth when it is statically constant or a
   provably empty node-set (existential semantics make those false). *)
and infer_predicate : 'n. 'n ctx -> 'n schema -> 'n reach -> Ast.expr ->
  [ `Always_false | `Always_true | `Unknown ] =
  fun ctx sch from pred ->
  let pred_from =
    List.map (fun (n, _) -> (n, { bound = 1; exact = false; all = false; distinct = true })) from
  in
  let saved = ctx.note_steps in
  ctx.note_steps <- false;
  let i = infer ctx (Some (sch, pred_from)) pred in
  ctx.note_steps <- saved;
  match i.i_value with
  | Some (VNum _) -> `Unknown (* numeric predicate means position() = n *)
  | Some v ->
      let b = bool_of_value v in
      diag ctx Warning "const-predicate" (espan ctx pred)
        (Printf.sprintf "predicate is constant: always %b" b);
      if b then `Always_true else `Always_false
  | None ->
      if i.i_ty = Nodeset && i.i_empty then begin
        diag ctx Warning "empty-predicate" (espan ctx pred)
          "predicate selects a provably empty node-set: always false";
        `Always_false
      end
      else `Unknown

(* Full inference.  [env] carries the schema plus the reach the current
   expression is evaluated from ([None] when no schema is available or
   the context is unknown). *)
and infer : 'n. 'n ctx -> ('n schema * 'n reach) option -> Ast.expr -> info =
  fun ctx env e ->
  let nodeset_operand what sub =
    let i = infer ctx env sub in
    if i.i_ty <> Nodeset && i.i_ty <> Unknown then
      diag ctx Error "type-error" (espan ctx e)
        (Printf.sprintf "%s requires a node-set, found %s" what (ty_to_string i.i_ty));
    i
  in
  match e with
  | Ast.Path p ->
      let empty =
        match env with
        | Some (sch, from) ->
            let from = if p.Ast.absolute then roots_reach sch else from in
            let out = walk_path ctx sch from p.Ast.steps in
            reach_bound out = 0
        | None ->
            (* no schema: no cardinality claims, but predicates still get
               type-checked *)
            List.iter
              (fun (st : Ast.step) ->
                List.iter (fun pr -> infer_filter_predicate ctx None pr) st.Ast.predicates)
              p.Ast.steps;
            false
      in
      { i_ty = Nodeset; i_empty = empty; i_value = None }
  | Ast.Literal s -> { i_ty = Str; i_empty = false; i_value = Some (VStr s) }
  | Ast.Number f -> { i_ty = Num; i_empty = false; i_value = Some (VNum f) }
  | Ast.Var _ -> { i_ty = Unknown; i_empty = false; i_value = None }
  | Ast.Neg sub ->
      let i = infer ctx env sub in
      check_numeric ctx sub i;
      let value = match i.i_value with Some v -> Some (VNum (-.num_of_value v)) | None -> None in
      { i_ty = Num; i_empty = false; i_value = value }
  | Ast.Binop (op, a, b) -> infer_binop ctx env e op a b
  | Ast.Call (f, args) -> infer_call ctx env e f args
  | Ast.Filter (sub, preds) ->
      let i = nodeset_operand "a filter expression" sub in
      (* the filter's context nodes are unknown statically, so predicate
         sub-paths are type-checked without schema reasoning *)
      List.iter (fun p -> infer_filter_predicate ctx None p) preds;
      { i_ty = Nodeset; i_empty = i.i_ty = Nodeset && i.i_empty; i_value = None }
  | Ast.Located (sub, p) ->
      let i = nodeset_operand "a path-start expression" sub in
      (* the base reach is unknown (any node the filter selects), so the
         relative steps are only type-checked, not schema-walked; if the
         base is provably empty, so is the whole expression *)
      let saved = ctx.note_steps in
      ctx.note_steps <- false;
      List.iter
        (fun (s : Ast.step) ->
          List.iter (fun pr -> infer_filter_predicate ctx None pr) s.Ast.predicates)
        p.Ast.steps;
      ctx.note_steps <- saved;
      { i_ty = Nodeset; i_empty = i.i_ty = Nodeset && i.i_empty; i_value = None }

and infer_filter_predicate : 'n. 'n ctx -> ('n schema * 'n reach) option -> Ast.expr ->
  unit =
  fun ctx env p ->
  let i = infer ctx env p in
  match i.i_value with
  | Some (VNum _) | None -> ()
  | Some v ->
      diag ctx Warning "const-predicate" (espan ctx p)
        (Printf.sprintf "predicate is constant: always %b" (bool_of_value v))

and check_numeric : 'n. 'n ctx -> Ast.expr -> info -> unit =
  fun ctx sub i ->
  match i.i_value with
  | Some (VStr s) when Float.is_nan (number_of_string s) ->
      diag ctx Warning "nan-arith" (espan ctx sub)
        (Printf.sprintf "string %S is not a number: arithmetic yields NaN" s)
  | _ -> ()

and infer_binop : 'n. 'n ctx -> ('n schema * 'n reach) option -> Ast.expr -> Ast.binop ->
  Ast.expr -> Ast.expr -> info =
  fun ctx env e op a b ->
  let ia = infer ctx env a in
  let ib = infer ctx env b in
  match op with
  | Ast.Or | Ast.And ->
      let value =
        match (ia.i_value, ib.i_value) with
        | Some va, Some vb ->
            let x = bool_of_value va and y = bool_of_value vb in
            Some (VBool (if op = Ast.Or then x || y else x && y))
        | _ -> None
      in
      { i_ty = Bool; i_empty = false; i_value = value }
  | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      infer_comparison ctx e op ia ib a b
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod ->
      check_numeric ctx a ia;
      check_numeric ctx b ib;
      let value =
        match (ia.i_value, ib.i_value) with
        | Some va, Some vb ->
            let x = num_of_value va and y = num_of_value vb in
            let r =
              match op with
              | Ast.Add -> x +. y
              | Ast.Sub -> x -. y
              | Ast.Mul -> x *. y
              | Ast.Div -> x /. y
              | Ast.Mod -> Float.rem x y
              | _ -> assert false
            in
            Some (VNum r)
        | _ -> None
      in
      { i_ty = Num; i_empty = false; i_value = value }
  | Ast.Union ->
      List.iter
        (fun (sub, i) ->
          if i.i_ty <> Nodeset && i.i_ty <> Unknown then
            diag ctx Error "type-error" (espan ctx sub)
              (Printf.sprintf "union operand must be a node-set, found %s" (ty_to_string i.i_ty)))
        [ (a, ia); (b, ib) ];
      { i_ty = Nodeset;
        i_empty = ia.i_ty = Nodeset && ia.i_empty && ib.i_ty = Nodeset && ib.i_empty;
        i_value = None }

and infer_comparison : 'n. 'n ctx -> Ast.expr -> Ast.binop -> info -> info -> Ast.expr ->
  Ast.expr -> info =
  fun ctx e op ia ib a b ->
  let relational = match op with Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> true | _ -> false in
  (* a provably empty node-set operand makes any §3.4 existential
     comparison false — including [!=] *)
  if (ia.i_ty = Nodeset && ia.i_empty) || (ib.i_ty = Nodeset && ib.i_empty) then begin
    diag ctx Warning "const-compare" (espan ctx e)
      "comparison with a provably empty node-set: always false";
    { i_ty = Bool; i_empty = false; i_value = Some (VBool false) }
  end
  else begin
    (match (ia.i_ty, ib.i_ty) with
    | Nodeset, Bool | Bool, Nodeset ->
        if not relational then
          diag ctx Warning "lossy-coercion" (espan ctx e)
            "node-set compared to a boolean tests existence, not value"
    | _ -> ());
    (if relational then
       let warn_side sub i =
         match i.i_value with
         | Some (VStr s) when Float.is_nan (number_of_string s) ->
             diag ctx Warning "const-compare" (espan ctx sub)
               (Printf.sprintf
                  "string %S is not a number: relational comparison is always false" s)
         | _ -> ()
       in
       warn_side a ia;
       warn_side b ib);
    let value =
      match (ia.i_value, ib.i_value) with
      | Some va, Some vb -> fold_compare op va vb
      | _ ->
          (* number =/!= non-numeric string: NaN never equals, so the
             verdict is constant even though one side is dynamic *)
          let nan_vs_number i j =
            (match i.i_value with
            | Some (VStr s) -> Float.is_nan (number_of_string s)
            | Some (VNum f) -> Float.is_nan f
            | _ -> false)
            && j.i_ty = Num && not relational
          in
          if nan_vs_number ia ib || nan_vs_number ib ia then
            Some (VBool (op = Ast.Neq))
          else None
    in
    (match value with
    | Some v when ia.i_value = None || ib.i_value = None ->
        diag ctx Warning "const-compare" (espan ctx e)
          (Printf.sprintf "comparison is constant: always %b" (bool_of_value v))
    | Some v when ia.i_value <> None && ib.i_value <> None ->
        diag ctx Info "const-compare" (espan ctx e)
          (Printf.sprintf "comparison of constants: always %b" (bool_of_value v))
    | _ -> ());
    { i_ty = Bool; i_empty = false; i_value = value }
  end

and infer_call : 'n. 'n ctx -> ('n schema * 'n reach) option -> Ast.expr -> string ->
  Ast.expr list -> info =
  fun ctx env e f args ->
  let infos = List.map (fun a -> infer ctx env a) args in
  let n = List.length args in
  let ret =
    if f = "concat" then begin
      if n < 2 then
        diag ctx Error "unknown-function" (espan ctx e)
          (Printf.sprintf "function concat/%d: concat needs at least two arguments" n);
      Str
    end
    else
      match List.find_opt (fun (name, _, _, _) -> name = f) core_functions with
      | None ->
          diag ctx Error "unknown-function" (espan ctx e)
            (Printf.sprintf "unknown function %s/%d" f n);
          Unknown
      | Some (_, arities, ret, nodeset_args) ->
          if not (List.mem n arities) then
            diag ctx Error "unknown-function" (espan ctx e)
              (Printf.sprintf "function %s/%d: wrong number of arguments" f n);
          List.iteri
            (fun idx i ->
              if List.mem idx nodeset_args && i.i_ty <> Nodeset && i.i_ty <> Unknown then
                diag ctx Error "type-error" (espan ctx e)
                  (Printf.sprintf "%s expects a node-set argument, found %s" f
                     (ty_to_string i.i_ty)))
            infos;
          ret
  in
  let value =
    match (f, infos) with
    | "true", [] -> Some (VBool true)
    | "false", [] -> Some (VBool false)
    | "not", [ { i_value = Some v; _ } ] -> Some (VBool (not (bool_of_value v)))
    | "not", [ { i_ty = Nodeset; i_empty = true; _ } ] -> Some (VBool true)
    | "boolean", [ { i_value = Some v; _ } ] -> Some (VBool (bool_of_value v))
    | "boolean", [ { i_ty = Nodeset; i_empty = true; _ } ] -> Some (VBool false)
    | "number", [ { i_value = Some v; _ } ] -> Some (VNum (num_of_value v))
    | "string", [ { i_value = Some v; _ } ] -> Some (VStr (str_of_value v))
    | "count", [ { i_ty = Nodeset; i_empty = true; _ } ] -> Some (VNum 0.0)
    | _ -> None
  in
  { i_ty = ret; i_empty = false; i_value = value }

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let check : type n. ?schema:n schema -> ?spans:Parser.spans -> Ast.expr -> report =
 fun ?schema ?spans e ->
  let ctx = { spans; diags = []; steps = []; note_steps = true } in
  let env =
    match schema with None -> None | Some sch -> Some (sch, roots_reach sch)
  in
  let i = infer ctx env e in
  {
    rep_ty = i.i_ty;
    rep_diagnostics =
      List.stable_sort
        (fun a b -> compare (severity_rank a.severity) (severity_rank b.severity))
        (List.rev ctx.diags);
    rep_steps = List.rev ctx.steps;
    rep_empty = i.i_ty = Nodeset && i.i_empty;
  }

let diagnostic_to_string d =
  Printf.sprintf "%s [%s] %s" (severity_to_string d.severity) d.code d.message

let pp_diagnostic ?src ppf d =
  Format.fprintf ppf "%s" (diagnostic_to_string d);
  match (src, d.span) with
  | Some src, Some span -> Format.fprintf ppf "@\n%s" (Parser.caret ~src span)
  | _ -> ()
