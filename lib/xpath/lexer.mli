(** XPath 1.0 lexer.

    Implements the specification's lexical disambiguation rule (§3.7):
    after a token that can end an operand, [*] lexes as the multiply
    operator and the names [and], [or], [div], [mod] lex as operators;
    elsewhere [*] is the wildcard node test and those names are ordinary
    names. *)

type token =
  | NAME of string  (** NCName / QName *)
  | NUM of float
  | LIT of string  (** quoted literal, quotes stripped *)
  | VAR of string  (** [$name] — recognized so the parser can reject it with a useful error *)
  | LPAREN
  | RPAREN
  | LBRACK
  | RBRACK
  | DOT
  | DOTDOT
  | AT
  | COMMA
  | COLONCOLON
  | SLASH
  | DSLASH
  | PIPE
  | PLUS
  | MINUS
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | STAR  (** wildcard node test *)
  | MUL  (** multiply operator *)
  | AND
  | OR
  | DIV
  | MOD
  | EOF

exception Error of { pos : int; msg : string }
(** Lexical error with a 0-based character offset. *)

val tokenize : string -> (token * int * int) array
(** Token stream with source offsets, ending in [EOF].  Each entry is
    [(token, start, stop)] with [stop] exclusive, so [stop - start] is
    the token's width in the source text. *)

val token_to_string : token -> string
