type token =
  | NAME of string
  | NUM of float
  | LIT of string
  | VAR of string
  | LPAREN
  | RPAREN
  | LBRACK
  | RBRACK
  | DOT
  | DOTDOT
  | AT
  | COMMA
  | COLONCOLON
  | SLASH
  | DSLASH
  | PIPE
  | PLUS
  | MINUS
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | STAR
  | MUL
  | AND
  | OR
  | DIV
  | MOD
  | EOF

exception Error of { pos : int; msg : string }

let fail pos fmt = Format.kasprintf (fun msg -> raise (Error { pos; msg })) fmt

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || Char.code c >= 128

let is_name_char c = is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'
let is_digit c = c >= '0' && c <= '9'

(* Per XPath 1.0 §3.7: an operator reading of '*'/and/or/div/mod is forced
   when the preceding token can end an operand. *)
let operand_ended = function
  | Some (NAME _ | NUM _ | LIT _ | VAR _ | RPAREN | RBRACK | DOT | DOTDOT | STAR) -> true
  | Some
      ( LPAREN | LBRACK | AT | COMMA | COLONCOLON | SLASH | DSLASH | PIPE | PLUS | MINUS
      | EQ | NEQ | LT | LE | GT | GE | MUL | AND | OR | DIV | MOD | EOF )
  | None ->
      false

let tokenize src =
  let n = String.length src in
  let out = ref [] in
  let prev = ref None in
  (* [emit start stop tok]: [stop] is exclusive, so [stop - start] is the
     token's width in the source — diagnostics use it to size caret spans. *)
  let emit pos stop tok =
    out := (tok, pos, stop) :: !out;
    prev := Some tok
  in
  let pos = ref 0 in
  let peek_at i = if i < n then Some src.[i] else None in
  while !pos < n do
    let p = !pos in
    let c = src.[p] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if c = '(' then (emit p (p + 1) LPAREN; incr pos)
    else if c = ')' then (emit p (p + 1) RPAREN; incr pos)
    else if c = '[' then (emit p (p + 1) LBRACK; incr pos)
    else if c = ']' then (emit p (p + 1) RBRACK; incr pos)
    else if c = '@' then (emit p (p + 1) AT; incr pos)
    else if c = ',' then (emit p (p + 1) COMMA; incr pos)
    else if c = '|' then (emit p (p + 1) PIPE; incr pos)
    else if c = '+' then (emit p (p + 1) PLUS; incr pos)
    else if c = '-' then (emit p (p + 1) MINUS; incr pos)
    else if c = '=' then (emit p (p + 1) EQ; incr pos)
    else if c = '!' then
      if peek_at (p + 1) = Some '=' then (emit p (p + 2) NEQ; pos := p + 2)
      else fail p "expected '=' after '!'"
    else if c = '<' then
      if peek_at (p + 1) = Some '=' then (emit p (p + 2) LE; pos := p + 2)
      else (emit p (p + 1) LT; incr pos)
    else if c = '>' then
      if peek_at (p + 1) = Some '=' then (emit p (p + 2) GE; pos := p + 2)
      else (emit p (p + 1) GT; incr pos)
    else if c = '/' then
      if peek_at (p + 1) = Some '/' then (emit p (p + 2) DSLASH; pos := p + 2)
      else (emit p (p + 1) SLASH; incr pos)
    else if c = ':' then
      if peek_at (p + 1) = Some ':' then (emit p (p + 2) COLONCOLON; pos := p + 2)
      else fail p "unexpected ':'"
    else if c = '*' then begin
      if operand_ended !prev then emit p (p + 1) MUL else emit p (p + 1) STAR;
      incr pos
    end
    else if c = '$' then begin
      let start = p + 1 in
      let e = ref start in
      while !e < n && is_name_char src.[!e] do incr e done;
      if !e = start then fail p "expected a name after '$'";
      emit p !e (VAR (String.sub src start (!e - start)));
      pos := !e
    end
    else if c = '"' || c = '\'' then begin
      let e = ref (p + 1) in
      while !e < n && src.[!e] <> c do incr e done;
      if !e >= n then fail p "unterminated literal";
      emit p (!e + 1) (LIT (String.sub src (p + 1) (!e - p - 1)));
      pos := !e + 1
    end
    else if is_digit c || (c = '.' && (match peek_at (p + 1) with Some d -> is_digit d | None -> false))
    then begin
      let e = ref p in
      while !e < n && is_digit src.[!e] do incr e done;
      if !e < n && src.[!e] = '.' then begin
        incr e;
        while !e < n && is_digit src.[!e] do incr e done
      end;
      let s = String.sub src p (!e - p) in
      (match float_of_string_opt s with
      | Some f -> emit p !e (NUM f)
      | None -> fail p "malformed number %S" s);
      pos := !e
    end
    else if c = '.' then
      if peek_at (p + 1) = Some '.' then (emit p (p + 2) DOTDOT; pos := p + 2)
      else (emit p (p + 1) DOT; incr pos)
    else if is_name_start c then begin
      let e = ref p in
      while !e < n && is_name_char src.[!e] do incr e done;
      (* QName: a single ':' followed by a name (but not '::') *)
      if !e < n && src.[!e] = ':' && peek_at (!e + 1) <> Some ':' then begin
        incr e;
        if !e < n && (is_name_start src.[!e] || src.[!e] = '*') then begin
          if src.[!e] = '*' then incr e
          else while !e < n && is_name_char src.[!e] do incr e done
        end
        else fail !e "expected a local name after ':'"
      end;
      let name = String.sub src p (!e - p) in
      (* the axis keyword position: name followed by '::' never reads as an
         operator *)
      let followed_by_axis_sep = !e + 1 < n && src.[!e] = ':' && src.[!e + 1] = ':' in
      let tok =
        if operand_ended !prev && not followed_by_axis_sep then
          match name with
          | "and" -> AND
          | "or" -> OR
          | "div" -> DIV
          | "mod" -> MOD
          | _ -> NAME name
        else NAME name
      in
      emit p !e tok;
      pos := !e
    end
    else fail p "unexpected character %C" c
  done;
  emit n n EOF;
  Array.of_list (List.rev !out)

let token_to_string = function
  | NAME s -> s
  | NUM f -> Printf.sprintf "%g" f
  | LIT s -> Printf.sprintf "'%s'" s
  | VAR s -> "$" ^ s
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACK -> "["
  | RBRACK -> "]"
  | DOT -> "."
  | DOTDOT -> ".."
  | AT -> "@"
  | COMMA -> ","
  | COLONCOLON -> "::"
  | SLASH -> "/"
  | DSLASH -> "//"
  | PIPE -> "|"
  | PLUS -> "+"
  | MINUS -> "-"
  | EQ -> "="
  | NEQ -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | STAR | MUL -> "*"
  | AND -> "and"
  | OR -> "or"
  | DIV -> "div"
  | MOD -> "mod"
  | EOF -> "<eof>"
