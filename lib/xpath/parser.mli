(** Recursive-descent XPath 1.0 parser. *)

exception Error of { pos : int; msg : string; expected : string option }
(** Syntax error with a 0-based character offset into the source.
    [expected] names the token class the parser needed at that point,
    when it knows one — diagnostics use it for "expected X" hints. *)

type span = { sp_start : int; sp_stop : int }
(** Half-open byte range [\[sp_start, sp_stop)] into the source text. *)

type spans = {
  sp_src : string;
  sp_steps : (Ast.step * span) list;
  sp_exprs : (Ast.expr * span) list;
}
(** Source spans for the parse tree, keyed by physical identity of the
    AST nodes (every node is a fresh allocation, so [==] pins the exact
    occurrence).  Spans only survive for the tree as parsed — rewritten
    plans allocate new nodes and lose them, which is fine: static
    diagnostics run on the source tree. *)

val parse : string -> Ast.expr
(** Parse a complete XPath expression.
    @raise Error on malformed input.  Variable references parse to
    {!Ast.Var}; binding them is the caller's concern (the XQuery layer
    supplies an environment; bare engine queries reject them at
    evaluation time). *)

val parse_spanned : string -> Ast.expr * spans
(** Like {!parse}, additionally returning source spans for every step
    and for predicate / literal / comparison expressions. *)

val parse_path : string -> Ast.path
(** Parse an expression that must be a location path.
    @raise Error if the expression is not a plain location path. *)

val step_span : spans -> Ast.step -> span option
(** Span of a step from the parsed tree (physical identity lookup). *)

val expr_span : spans -> Ast.expr -> span option

val caret : src:string -> span -> string
(** Two-line rendering: the source text, then a caret line underlining
    the span. *)

val error_to_string : exn -> string option

val error_caret : string -> exn -> string option
(** Like {!error_to_string} but with a caret rendering of the offending
    position; the first argument is the source text. *)
