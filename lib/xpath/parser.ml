exception Error of { pos : int; msg : string; expected : string option }

let fail pos fmt =
  Format.kasprintf (fun msg -> raise (Error { pos; msg; expected = None })) fmt

type span = { sp_start : int; sp_stop : int }

(* Spans are keyed by physical identity: every AST node comes out of a
   fresh constructor application, so [==] identifies the exact parse-tree
   occurrence even when two steps are structurally equal. *)
type spans = {
  sp_src : string;
  sp_steps : (Ast.step * span) list;
  sp_exprs : (Ast.expr * span) list;
}

type state = {
  toks : (Lexer.token * int * int) array;
  mutable i : int;
  mutable steps : (Ast.step * span) list;
  mutable exprs : (Ast.expr * span) list;
}

let peek st = let t, _, _ = st.toks.(st.i) in t
let peek2 st =
  if st.i + 1 < Array.length st.toks then let t, _, _ = st.toks.(st.i + 1) in t
  else Lexer.EOF
let pos st = let _, p, _ = st.toks.(st.i) in p
let advance st = st.i <- st.i + 1

(* End offset of the most recently consumed token. *)
let prev_stop st =
  if st.i = 0 then 0 else let _, _, q = st.toks.(st.i - 1) in q

let note_step st start step =
  st.steps <- (step, { sp_start = start; sp_stop = prev_stop st }) :: st.steps;
  step

let note_expr st start expr =
  st.exprs <- (expr, { sp_start = start; sp_stop = prev_stop st }) :: st.exprs;
  expr

let expect st tok =
  if peek st = tok then advance st
  else
    let expected = Lexer.token_to_string tok in
    raise
      (Error
         { pos = pos st;
           msg =
             Printf.sprintf "expected %s, found %s" expected
               (Lexer.token_to_string (peek st));
           expected = Some expected })

let node_type_names = [ "text"; "node"; "comment"; "processing-instruction" ]

(* ---- steps and node tests ---- *)

let parse_node_test st : Ast.node_test =
  match peek st with
  | Lexer.STAR ->
      advance st;
      Ast.Wildcard
  | Lexer.NAME name when peek2 st = Lexer.LPAREN && List.mem name node_type_names ->
      advance st;
      expect st Lexer.LPAREN;
      let test =
        match name with
        | "text" -> Ast.Text_test
        | "node" -> Ast.Node_test
        | "comment" -> Ast.Comment_test
        | "processing-instruction" -> (
            match peek st with
            | Lexer.LIT target ->
                advance st;
                Ast.Pi_test (Some target)
            | _ -> Ast.Pi_test None)
        | _ -> assert false
      in
      expect st Lexer.RPAREN;
      test
  | Lexer.NAME name ->
      advance st;
      Ast.Name_test name
  | t ->
      raise
        (Error
           { pos = pos st;
             msg =
               Printf.sprintf "expected a node test, found %s"
                 (Lexer.token_to_string t);
             expected = Some "a node test" })

let rec parse_step st : Ast.step =
  let start = pos st in
  match peek st with
  | Lexer.DOT ->
      advance st;
      note_step st start (Ast.step Ast.Self Ast.Node_test)
  | Lexer.DOTDOT ->
      advance st;
      note_step st start (Ast.step Ast.Parent Ast.Node_test)
  | Lexer.AT ->
      advance st;
      let test = parse_node_test st in
      let predicates = parse_predicates st in
      note_step st start { Ast.axis = Ast.Attribute; test; predicates }
  | Lexer.NAME name when peek2 st = Lexer.COLONCOLON -> (
      match Ast.axis_of_name name with
      | Some axis ->
          advance st;
          advance st;
          let test = parse_node_test st in
          let predicates = parse_predicates st in
          note_step st start { Ast.axis; test; predicates }
      | None -> fail (pos st) "unknown axis %S" name)
  | _ ->
      let test = parse_node_test st in
      let predicates = parse_predicates st in
      note_step st start { Ast.axis = Ast.Child; test; predicates }

and parse_predicates st =
  if peek st = Lexer.LBRACK then begin
    advance st;
    let start = pos st in
    let e = note_expr st start (parse_or st) in
    expect st Lexer.RBRACK;
    e :: parse_predicates st
  end
  else []

(* The [//] abbreviation synthesizes a descendant-or-self::node() step;
   its span is the two-character token itself. *)
and dslash_step st =
  let start = pos st in
  advance st;
  note_step st start (Ast.step Ast.Descendant_or_self Ast.Node_test)

and parse_relative_path st : Ast.step list =
  let s = parse_step st in
  match peek st with
  | Lexer.SLASH ->
      advance st;
      s :: parse_relative_path st
  | Lexer.DSLASH ->
      let d = dslash_step st in
      let rest = parse_relative_path st in
      s :: d :: rest
  | _ -> [ s ]

and parse_location_path st : Ast.path =
  match peek st with
  | Lexer.SLASH ->
      advance st;
      let steps =
        match peek st with
        | Lexer.NAME _ | Lexer.STAR | Lexer.AT | Lexer.DOT | Lexer.DOTDOT ->
            parse_relative_path st
        | _ -> []
      in
      { Ast.absolute = true; steps }
  | Lexer.DSLASH ->
      let d = dslash_step st in
      let steps = parse_relative_path st in
      { Ast.absolute = true; steps = d :: steps }
  | _ -> { Ast.absolute = false; steps = parse_relative_path st }

(* ---- expressions ---- *)

and starts_location_path st =
  match peek st with
  | Lexer.SLASH | Lexer.DSLASH | Lexer.STAR | Lexer.AT | Lexer.DOT | Lexer.DOTDOT -> true
  | Lexer.NAME name ->
      if peek2 st = Lexer.LPAREN then List.mem name node_type_names else true
  | _ -> false

and parse_primary st : Ast.expr =
  let start = pos st in
  match peek st with
  | Lexer.LPAREN ->
      advance st;
      let e = parse_or st in
      expect st Lexer.RPAREN;
      e
  | Lexer.LIT s ->
      advance st;
      note_expr st start (Ast.Literal s)
  | Lexer.NUM f ->
      advance st;
      note_expr st start (Ast.Number f)
  | Lexer.VAR v ->
      advance st;
      note_expr st start (Ast.Var v)
  | Lexer.NAME f when peek2 st = Lexer.LPAREN ->
      advance st;
      expect st Lexer.LPAREN;
      let arguments =
        if peek st = Lexer.RPAREN then []
        else begin
          let rec more acc =
            if peek st = Lexer.COMMA then begin
              advance st;
              more (parse_or st :: acc)
            end
            else List.rev acc
          in
          more [ parse_or st ]
        end
      in
      expect st Lexer.RPAREN;
      note_expr st start (Ast.Call (f, arguments))
  | t ->
      raise
        (Error
           { pos = pos st;
             msg =
               Printf.sprintf "expected an expression, found %s"
                 (Lexer.token_to_string t);
             expected = Some "an expression" })

and parse_path_expr st : Ast.expr =
  let is_filter_start =
    match peek st with
    | Lexer.LPAREN | Lexer.LIT _ | Lexer.NUM _ | Lexer.VAR _ -> true
    | Lexer.NAME name when peek2 st = Lexer.LPAREN -> not (List.mem name node_type_names)
    | _ -> false
  in
  if is_filter_start then begin
    let prim = parse_primary st in
    let preds = parse_predicates st in
    let filtered = if preds = [] then prim else Ast.Filter (prim, preds) in
    match peek st with
    | Lexer.SLASH ->
        advance st;
        Ast.Located (filtered, { Ast.absolute = false; steps = parse_relative_path st })
    | Lexer.DSLASH ->
        let d = dslash_step st in
        let rest = parse_relative_path st in
        Ast.Located (filtered, { Ast.absolute = false; steps = d :: rest })
    | _ -> filtered
  end
  else if starts_location_path st then Ast.Path (parse_location_path st)
  else fail (pos st) "expected a path or expression, found %s" (Lexer.token_to_string (peek st))

and parse_union st =
  let e = parse_path_expr st in
  if peek st = Lexer.PIPE then begin
    advance st;
    Ast.Binop (Ast.Union, e, parse_union st)
  end
  else e

and parse_unary st =
  if peek st = Lexer.MINUS then begin
    advance st;
    Ast.Neg (parse_unary st)
  end
  else parse_union st

and binary_level ops sub st =
  let start = pos st in
  let rec loop acc =
    match List.assoc_opt (peek st) ops with
    | Some op ->
        advance st;
        let rhs = sub st in
        loop (note_expr st start (Ast.Binop (op, acc, rhs)))
    | None -> acc
  in
  loop (sub st)

and parse_multiplicative st =
  binary_level [ (Lexer.MUL, Ast.Mul); (Lexer.DIV, Ast.Div); (Lexer.MOD, Ast.Mod) ]
    parse_unary st

and parse_additive st =
  binary_level [ (Lexer.PLUS, Ast.Add); (Lexer.MINUS, Ast.Sub) ] parse_multiplicative st

and parse_relational st =
  binary_level
    [ (Lexer.LT, Ast.Lt); (Lexer.LE, Ast.Le); (Lexer.GT, Ast.Gt); (Lexer.GE, Ast.Ge) ]
    parse_additive st

and parse_equality st =
  binary_level [ (Lexer.EQ, Ast.Eq); (Lexer.NEQ, Ast.Neq) ] parse_relational st

and parse_and st = binary_level [ (Lexer.AND, Ast.And) ] parse_equality st
and parse_or st = binary_level [ (Lexer.OR, Ast.Or) ] parse_and st

let parse_spanned src =
  let toks =
    try Lexer.tokenize src
    with Lexer.Error { pos; msg } -> raise (Error { pos; msg; expected = None })
  in
  let st = { toks; i = 0; steps = []; exprs = [] } in
  let e = parse_or st in
  if peek st <> Lexer.EOF then
    fail (pos st) "trailing input starting with %s" (Lexer.token_to_string (peek st));
  (e, { sp_src = src; sp_steps = st.steps; sp_exprs = st.exprs })

let parse src = fst (parse_spanned src)

let parse_path src =
  match parse src with
  | Ast.Path p -> p
  | _ ->
      raise (Error { pos = 0; msg = "expression is not a plain location path"; expected = None })

let step_span spans (s : Ast.step) =
  List.find_map (fun (s', sp) -> if s' == s then Some sp else None) spans.sp_steps

let expr_span spans (e : Ast.expr) =
  List.find_map (fun (e', sp) -> if e' == e then Some sp else None) spans.sp_exprs

let caret ~src { sp_start; sp_stop } =
  let n = String.length src in
  let start = max 0 (min sp_start n) in
  let stop = max (start + 1) (min sp_stop n) in
  Printf.sprintf "%s\n%s%s" src (String.make start ' ') (String.make (stop - start) '^')

let error_to_string = function
  | Error { pos; msg; expected = _ } -> Some (Printf.sprintf "XPath error at offset %d: %s" pos msg)
  | _ -> None

let error_caret src = function
  | Error { pos; msg; expected = _ } ->
      let at = { sp_start = pos; sp_stop = pos + 1 } in
      Some (Printf.sprintf "XPath error at offset %d: %s\n%s" pos msg (caret ~src at))
  | _ -> None
