(** Read-footprint analysis: static query–update interference.

    An abstract interpretation over compiled plans computing a
    conservative {e read footprint} — everything a plan's result can
    depend on, expressed in the same vocabulary {!Mass.Store} uses to
    describe mutations:

    - {b tags}: name-index tags ({!Mass.Store.tag_of} spelling) whose
      posting lists the plan reads — element names, ["@attr"] for
      attributes, ["#text"], ["#comment"], ["#pi"], ["#document"];
    - {b kinds}: record kinds read through a wildcard or [node()] test,
      where no finite tag set covers the read;
    - {b values}: value-index keys probed by [value::'v'] steps;
    - {b cones}: element tags (or ["#document"], or the wildcard ["*"])
      whose XPath {e string-value} — concatenated descendant text — the
      plan compares or converts, so a text insertion anywhere below such
      an element interferes even though the element record itself never
      changes.

    The soundness contract (proved on the bounded domain by the
    {!Smallcheck} interference family): if {!intersects} is [false] for
    every {!Mass.Store.write_delta} recorded since a cached result was
    computed, the result is provably still the answer the engine would
    compute now.  The analysis errs upward only: unknown constructs
    (variables, unrecognized functions) collapse the footprint to ⊤,
    never to a smaller set.

    Footprints are context-free: they cover the plan's reads under {e
    any} context node, so one footprint serves every cached (plan,
    context) entry. *)

type t

val empty : t
(** Reads nothing: no update can interfere. *)

val top : t
(** ⊤ — may read anything; every update interferes. *)

val is_top : t -> bool
val is_empty : t -> bool

val union : t -> t -> t

val of_plan : Plan.op -> t
(** Footprint of one compiled plan: every context-chain step, predicate
    sub-plan and generic-expression fallback contributes its atoms. *)

val of_plans : Plan.op list -> t
(** Union over a prepared query's union branches. *)

val intersects : t -> Mass.Store.write_delta -> bool
(** [true] when the update described by the delta {e may} change this
    plan's result (⊤ on either side intersects everything).  [false] is
    a proof of non-interference. *)

val atoms : t -> string list
(** Sorted human-readable atom listing, e.g. [["cone:*"; "kind:element";
    "tag:person"; "value:x"]]; [["top"]] for ⊤. *)

val to_string : t -> string
(** One-line rendering of {!atoms}, ["⊤"] for top, ["∅"] for empty. *)

val to_json : t -> Profile.Json.t
(** [{"top": bool, "tags": […], "kinds": […], "values": […],
    "cones": […]}] — the shape [vamana footprint --json] and
    [lint --json] embed. *)
