(** VAMANA engine facade: compile → (optionally) optimize → execute.

    Results are FLEX keys in document order without duplicates, plus the
    plans, cost annotations, optimizer trace, timings and buffer-pool I/O
    deltas — everything the benchmark harness reports. *)

type attribution = {
  attr_qid : int;  (** the query id every event emitted below carried *)
  attr_io : Storage.Stats.t;
      (** buffer-pool I/O over the attributed window — for {!query} the
          whole prepare+execute window (optimizer probes included), for
          a bare {!execute_prepared} the execute window only *)
  attr_wal_bytes : int;  (** WAL bytes appended during the window (0 on [Mem]) *)
  attr_fsyncs : int;  (** disk fsyncs during the window (0 on [Mem]) *)
}
(** Per-query resource attribution.  Execution runs inside an
    {!Obs.with_context} scope carrying [("qid", Int attr_qid)], so bus
    events fired by any layer during this query (evictions,
    [wal_append], [wal_fsync], ...) carry the same id — the deltas here
    and the event stream tell one story. *)

type result = {
  keys : Flex.t list;  (** document order, duplicate-free *)
  default_plan : Plan.op;
  executed_plan : Plan.op;  (** = [default_plan] when optimization is off *)
  optimizer : Optimizer.outcome option;
  compile_time : float;  (** seconds *)
  optimize_time : float;
  execute_time : float;
  io : Storage.Stats.t;  (** I/O performed by execution only *)
  spans : Profile.span list;
      (** trace spans: [parse], [compile], one [optimize] span per
          optimizer iteration (with accepted/considered/rejected rule
          counts), and [execute] — always collected, they cost a handful
          of allocations per query *)
  profile : Profile.report option;
      (** per-operator actuals joined with estimates; [Some] only when
          the query ran with [~profile:true] *)
  analysis : Analysis.t;
      (** inferred stream properties and diagnostics of the executed plan
          (first branch for a union), as consulted by the execution path *)
  attribution : attribution;  (** this query's attributed resource use *)
}

type prepared = {
  source : string;  (** the query text the plans came from *)
  default_plans : Plan.op list;  (** one per union branch *)
  executed_plans : Plan.op list;  (** = [default_plans] when optimization is off *)
  outcomes : Optimizer.outcome list option;
  analyses : Analysis.t list;  (** one per executed plan, at [prep_epoch]/[prep_scope] *)
  prep_report : Xpath.Typecheck.report;
      (** source-level static check against the path synopsis: XPath 1.0
          type/coercion diagnostics with source spans, per-step schema
          cardinalities, and the schema-emptiness verdict.  Derived at
          [prep_epoch]; {!execute_prepared} only acts on the emptiness
          proof while the store still reports that epoch and the
          execution context is the checked document node. *)
  prep_footprint : Footprint.t;
      (** conservative read footprint over all union branches — what the
          result-cache intersects against store write deltas to decide
          whether an update can invalidate a cached result.  Purely
          structural (no statistics), so it never goes stale. *)
  prep_scope : Flex.t option;
  prep_epoch : int;  (** {!Mass.Store.epoch} at preparation time *)
  prep_compile_time : float;  (** seconds *)
  prep_optimize_time : float;
  prep_spans : Profile.span list;  (** parse/compile/optimize spans *)
}
(** A compiled (and optionally optimized) query, detached from any
    execution context — the unit a plan cache stores.  Plans are immutable
    and scope-dependent only through the statistics the optimizer saw, so
    a [prepared] value stays {e semantically} valid across store updates
    (the optimizer guarantees any plan it emits computes the same result
    set); only its cost estimates can go stale.  The stored analyses are
    statistics {e snapshots}: {!execute_prepared} re-derives them when the
    store epoch or the execution scope has moved, so a cached
    static-emptiness verdict can never leak across an update. *)

val prepare :
  ?optimize:bool -> Mass.Store.t -> scope:Flex.t option -> string -> (prepared, string) Result.t
(** Parse, statically check, compile and (by default) optimize a location
    path — or a union of location paths — without executing it.  [scope]
    bounds the statistics the optimizer consults ([None] = whole store);
    {!scope_of_context} derives it from an execution context.

    The static check ({!Xpath.Typecheck}) runs against the store's path
    synopsis before plan construction; its report lands in
    [prep_report].  The optimizer consults the synopsis too
    ({!Cost.synopsis_statistics}), replacing per-step Table I products
    with exact multi-step chain counts where the walk stays exact.  A
    schema-empty query skips the optimizer search entirely. *)

val execute_prepared : ?profile:bool -> Mass.Store.t -> context:Flex.t -> prepared -> result
(** Run a prepared query rooted at [context].  The returned
    [compile_time]/[optimize_time] are the preparation times recorded in
    the [prepared] value (zero cost was paid on this call).  [profile]
    (default [false]) instruments every operator and fills the result's
    [profile] report; for a union, the report tree covers the first
    branch.  The unprofiled path allocates no profiling structures.

    Statically-empty plans (per {!Analysis.statically_empty}) return []
    without instantiating the executor — zero page reads — and emit an
    [Obs] [static_empty_skip] event.  When the analyzer proves the raw
    tuple stream already sorted and duplicate-free, the final
    sort/deduplication pass is skipped. *)

val scope_of_context : Flex.t -> Flex.t option
(** Statistics scope of an execution context: the context's document root
    component, or [None] for the store root. *)

val query :
  ?optimize:bool ->
  ?profile:bool ->
  Mass.Store.t ->
  context:Flex.t ->
  string ->
  (result, string) Result.t
(** Run an XPath location path — or a union of location paths — rooted at
    [context] (normally a document key from {!Mass.Store.documents}).
    [optimize] defaults to [true] (the paper's VQP-OPT; pass [false] for
    VQP); [profile] (default [false]) collects the per-operator execution
    profile.  Union branches compile and optimize independently; for a
    union, the plan/optimizer fields report the first branch.  Equivalent
    to {!prepare} followed by {!execute_prepared}. *)

val query_doc :
  ?optimize:bool ->
  ?profile:bool ->
  Mass.Store.t ->
  Mass.Store.doc ->
  string ->
  (result, string) Result.t

val query_store :
  ?optimize:bool ->
  Mass.Store.t ->
  string ->
  ((Mass.Store.doc * result) list, string) Result.t
(** Run the query against every document in the store (the paper's
    whole-database scope); per-document plans are optimized with
    per-document statistics.  On failure the error names the document
    whose query failed and how many documents had already succeeded. *)

val eval :
  Mass.Store.t -> context:Flex.t -> string -> (Flex.t Xpath.Eval.value, string) Result.t
(** Evaluate an arbitrary XPath expression (not necessarily a path)
    through the generic evaluator — e.g. [count(//person)]. *)

val materialize : Mass.Store.t -> Flex.t list -> Mass.Record.t list
(** Fetch the records for a result (data access, charged to the pool). *)

val explain : ?optimize:bool -> Mass.Store.t -> Mass.Store.doc -> string -> (string, string) Result.t
(** Cost-annotated plan rendering (paper Figures 6–9 style), including
    the optimizer trace, the inferred per-operator stream properties and
    the analyzer's diagnostics. *)

val explain_analyze :
  ?optimize:bool ->
  ?json:bool ->
  Mass.Store.t ->
  Mass.Store.doc ->
  string ->
  (string, string) Result.t
(** EXPLAIN ANALYZE: execute the query with profiling on and render the
    annotated plan tree — per-operator estimated vs actual cardinality,
    q-error, exclusive timings, page I/O — plus the
    parse/compile/optimize/execute trace spans, as text or (with [json])
    a single JSON document. *)
