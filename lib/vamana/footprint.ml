(* Read-footprint analysis (DESIGN.md §11).

   The abstract domain is a flat lattice: ⊤, or a finite set of atoms in
   four sorts sharing the store's write-delta vocabulary.  Every rule
   errs upward — a construct we cannot bound precisely contributes ⊤ —
   so [intersects fp delta = false] is a proof of non-interference,
   checked exhaustively on the small-scope domain by the Smallcheck
   interference family. *)

module Ast = Xpath.Ast
module Record = Mass.Record
module SS = Set.Make (String)

(* Record kinds as a bitmask, for wildcard/node() reads where no finite
   tag set covers the step. *)
let kbit = function
  | Record.Document -> 1
  | Record.Element -> 2
  | Record.Attribute -> 4
  | Record.Text -> 8
  | Record.Comment -> 16
  | Record.Pi -> 32

let all_node_kinds =
  (* node() on a non-attribute axis: any non-attribute node. *)
  kbit Record.Document lor kbit Record.Element lor kbit Record.Text
  lor kbit Record.Comment lor kbit Record.Pi

type atoms = { tags : SS.t; kinds : int; values : SS.t; cones : SS.t }
type t = Top | Atoms of atoms

let empty = Atoms { tags = SS.empty; kinds = 0; values = SS.empty; cones = SS.empty }
let top = Top
let is_top = function Top -> true | Atoms _ -> false

let is_empty = function
  | Top -> false
  | Atoms a -> SS.is_empty a.tags && a.kinds = 0 && SS.is_empty a.values && SS.is_empty a.cones

(* Past this many atoms the footprint is no longer a useful filter and
   set operations stop being cheap; collapse to ⊤. *)
let atom_cap = 64

let normalize = function
  | Top -> Top
  | Atoms a as t ->
      if SS.cardinal a.tags + SS.cardinal a.values + SS.cardinal a.cones > atom_cap then Top
      else t

let union a b =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | Atoms x, Atoms y ->
      normalize
        (Atoms
           {
             tags = SS.union x.tags y.tags;
             kinds = x.kinds lor y.kinds;
             values = SS.union x.values y.values;
             cones = SS.union x.cones y.cones;
           })

(* {1 Collection} *)

type acc = {
  mutable a_tags : SS.t;
  mutable a_kinds : int;
  mutable a_values : SS.t;
  mutable a_cones : SS.t;
  mutable a_top : bool;
}

let fresh_acc () =
  { a_tags = SS.empty; a_kinds = 0; a_values = SS.empty; a_cones = SS.empty; a_top = false }

let add_tag acc n = acc.a_tags <- SS.add n acc.a_tags
let add_kind acc bits = acc.a_kinds <- acc.a_kinds lor bits
let add_value acc v = acc.a_values <- SS.add v acc.a_values
let add_cone acc c = acc.a_cones <- SS.add c acc.a_cones
let to_top acc = acc.a_top <- true

(* Atoms of one location-step test: the name-index posting lists (or
   kind classes) the step's candidate scan depends on.  Sound for the
   step's own output and for position()/last() within it: positions are
   counted among axis candidates passing this same test, so any insert
   or delete that shifts them carries a matching tag/kind in its
   delta. *)
let add_test acc axis (test : Ast.node_test) =
  let attribute_axis = axis = Ast.Attribute in
  match test with
  | Ast.Name_test n -> add_tag acc (if attribute_axis then "@" ^ n else n)
  | Ast.Wildcard ->
      add_kind acc (kbit (if attribute_axis then Record.Attribute else Record.Element))
  | Ast.Text_test -> add_tag acc "#text"
  | Ast.Comment_test -> add_tag acc "#comment"
  | Ast.Pi_test _ -> add_tag acc "#pi"
  | Ast.Node_test ->
      add_kind acc (if attribute_axis then kbit Record.Attribute else all_node_kinds)

(* String-value cone of the nodes a sub-plan (or path tail) emits.
   Only element and document nodes have mutable string-values (text
   inserted anywhere below changes them); attribute/text/comment/PI
   values are immutable in the store, and set-membership changes are
   already covered by the step's tag atoms. *)
let add_emit_cone acc axis (test : Ast.node_test) =
  if axis <> Ast.Attribute then
    match test with
    | Ast.Name_test n -> add_cone acc n
    | Ast.Wildcard | Ast.Node_test -> add_cone acc "*"
    | Ast.Text_test | Ast.Comment_test | Ast.Pi_test _ -> ()

(* Core functions whose value is fully determined by their (walked)
   arguments plus the candidate set already covered by step atoms.
   Notably absent: id() reads attribute values document-wide. *)
let pure_functions =
  [
    "position"; "last"; "count"; "not"; "true"; "false"; "string"; "number"; "boolean";
    "concat"; "contains"; "starts-with"; "substring"; "substring-before"; "substring-after";
    "string-length"; "normalize-space"; "translate"; "name"; "local-name"; "floor";
    "ceiling"; "round"; "sum";
  ]

let rec walk_expr acc (e : Ast.expr) =
  match e with
  | Ast.Literal _ | Ast.Number _ -> ()
  | Ast.Var _ -> to_top acc
  | Ast.Path p -> walk_path acc p
  | Ast.Binop (_, a, b) ->
      walk_expr acc a;
      walk_expr acc b
  | Ast.Neg e -> walk_expr acc e
  | Ast.Call (f, args) ->
      if not (List.mem f pure_functions) then to_top acc;
      List.iter (walk_expr acc) args
  | Ast.Filter (e, preds) ->
      walk_expr acc e;
      List.iter (walk_expr acc) preds
  | Ast.Located (e, p) ->
      walk_expr acc e;
      walk_path acc p

and walk_path acc (p : Ast.path) =
  List.iter
    (fun (s : Ast.step) ->
      add_test acc s.axis s.test;
      List.iter (walk_expr acc) s.predicates)
    p.steps;
  (* The path's node-set may be converted to a string or number by the
     enclosing expression; blanket the final step's string-value cone. *)
  match List.rev p.steps with
  | last :: _ -> add_emit_cone acc last.axis last.test
  | [] -> add_cone acc (if p.absolute then "#document" else "*")

(* Cone of a predicate operand: the string-values the comparison reads.
   The emitting operator is the sub-plan's top op; [R] echoes its
   context chain, and a context-less [R] echoes the candidate itself,
   whose element tag is unknown statically. *)
let rec operand_cones acc (op : Plan.op) =
  match op.kind with
  | Plan.Root -> (
      match op.context with Some c -> operand_cones acc c | None -> add_cone acc "*")
  | Plan.Step (axis, test) -> add_emit_cone acc axis test
  | Plan.Step_generic s -> add_emit_cone acc s.Ast.axis s.Ast.test
  | Plan.Value_step _ ->
      (* Emits the nodes holding an immutable indexed value; membership
         changes are covered by the value atom. *)
      ()

let rec walk_op acc (op : Plan.op) =
  (match op.kind with
  | Plan.Root -> ()
  | Plan.Step (axis, test) -> add_test acc axis test
  | Plan.Value_step (v, _) -> add_value acc v
  | Plan.Step_generic s ->
      add_test acc s.Ast.axis s.Ast.test;
      List.iter (walk_expr acc) s.Ast.predicates);
  List.iter (walk_pred acc) op.predicates;
  match op.context with Some c -> walk_op acc c | None -> ()

and walk_pred acc (p : Plan.pred) =
  match p with
  | Plan.Exists sub -> walk_op acc sub
  | Plan.Binary (_, _, a, b) ->
      walk_operand acc a;
      walk_operand acc b
  | Plan.And (a, b) | Plan.Or (a, b) ->
      walk_pred acc a;
      walk_pred acc b
  | Plan.Not p -> walk_pred acc p
  | Plan.Position (_, _) ->
      (* position() cmp n: counted among the owning step's candidates,
         covered by that step's own test atoms. *)
      ()
  | Plan.Generic e -> walk_expr acc e

and walk_operand acc (o : Plan.operand) =
  match o with
  | Plan.Literal (_, _) | Plan.Number_operand _ -> ()
  | Plan.Path_operand sub ->
      walk_op acc sub;
      operand_cones acc sub

let close acc =
  if acc.a_top then Top
  else
    normalize
      (Atoms { tags = acc.a_tags; kinds = acc.a_kinds; values = acc.a_values; cones = acc.a_cones })

let of_plan op =
  let acc = fresh_acc () in
  walk_op acc op;
  close acc

let of_plans ops = List.fold_left (fun t op -> union t (of_plan op)) empty ops

(* {1 Intersection with a write delta} *)

let kind_of_tag tag =
  if String.length tag > 0 && tag.[0] = '@' then Record.Attribute
  else
    match tag with
    | "#text" -> Record.Text
    | "#comment" -> Record.Comment
    | "#pi" -> Record.Pi
    | "#document" -> Record.Document
    | _ -> Record.Element

let intersects t (wd : Mass.Store.write_delta) =
  match t with
  | Top -> true
  | Atoms a ->
      wd.Mass.Store.wd_top
      || List.exists
           (fun tag -> SS.mem tag a.tags || a.kinds land kbit (kind_of_tag tag) <> 0)
           wd.Mass.Store.wd_tags
      || List.exists (fun v -> SS.mem v a.values) wd.Mass.Store.wd_values
      || (wd.Mass.Store.wd_cones <> []
         && (SS.mem "*" a.cones
            || List.exists (fun c -> SS.mem c a.cones) wd.Mass.Store.wd_cones))

(* {1 Rendering} *)

let kind_names bits =
  List.filter_map
    (fun k -> if bits land kbit k <> 0 then Some (String.lowercase_ascii (Record.kind_to_string k)) else None)
    [ Record.Document; Record.Element; Record.Attribute; Record.Text; Record.Comment; Record.Pi ]

let atoms = function
  | Top -> [ "top" ]
  | Atoms a ->
      List.sort String.compare
        (List.concat
           [
             List.map (fun s -> "tag:" ^ s) (SS.elements a.tags);
             List.map (fun s -> "kind:" ^ s) (kind_names a.kinds);
             List.map (fun s -> "value:" ^ s) (SS.elements a.values);
             List.map (fun s -> "cone:" ^ s) (SS.elements a.cones);
           ])

let to_string t =
  match t with
  | Top -> "\xe2\x8a\xa4"
  | Atoms _ when is_empty t -> "\xe2\x88\x85"
  | Atoms _ -> String.concat " " (atoms t)

let to_json t =
  let module J = Profile.Json in
  let strs l = J.Arr (List.map (fun s -> J.Str s) l) in
  match t with
  | Top ->
      J.Obj
        [
          ("top", J.Bool true); ("tags", J.Arr []); ("kinds", J.Arr []); ("values", J.Arr []);
          ("cones", J.Arr []);
        ]
  | Atoms a ->
      J.Obj
        [
          ("top", J.Bool false);
          ("tags", strs (SS.elements a.tags));
          ("kinds", strs (kind_names a.kinds));
          ("values", strs (SS.elements a.values));
          ("cones", strs (SS.elements a.cones));
        ]
