module Store = Mass.Store

let log_src = Logs.Src.create "vamana.engine" ~doc:"VAMANA engine facade"

module Log = (val Logs.src_log log_src)

type attribution = {
  attr_qid : int;
  attr_io : Storage.Stats.t;
  attr_wal_bytes : int;
  attr_fsyncs : int;
}

type result = {
  keys : Flex.t list;
  default_plan : Plan.op;
  executed_plan : Plan.op;
  optimizer : Optimizer.outcome option;
  compile_time : float;
  optimize_time : float;
  execute_time : float;
  io : Storage.Stats.t;
  spans : Profile.span list;
  profile : Profile.report option;
  analysis : Analysis.t;
  attribution : attribution;
}

(* ---- per-query attribution ----

   Every execution runs under an [Obs] context carrying its query id,
   so events emitted anywhere below (pager evictions, WAL appends,
   fsyncs) attribute to the query that caused them.  A caller that
   already established a qid context (the service does) wins; otherwise
   a fresh id is minted here. *)

let current_qid () =
  match List.assoc_opt "qid" (Obs.context ()) with
  | Some (Obs.Int q) -> Some q
  | _ -> None

let with_qid f =
  match current_qid () with
  | Some q -> f q
  | None ->
      let q = Obs.fresh_query_id () in
      Obs.with_context [ ("qid", Obs.Int q) ] (fun () -> f q)

let disk_window store before =
  match (before, Store.disk_io store) with
  | Some b, Some live ->
      let d = Storage.Disk.diff_io live b in
      (d.Storage.Disk.wal_bytes_written, d.Storage.Disk.fsyncs)
  | _ -> (0, 0)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let scope_of_context context = if Flex.depth context = 0 then None else Some (Flex.prefix context 1)

(* a top-level union evaluates as independent plans whose result sets
   merge; each branch is optimized separately *)
let rec union_branches (e : Xpath.Ast.expr) =
  match e with
  | Xpath.Ast.Binop (Xpath.Ast.Union, a, b) -> (
      match (union_branches a, union_branches b) with
      | Some xs, Some ys -> Some (xs @ ys)
      | _ -> None)
  | Xpath.Ast.Path p -> Some [ p ]
  | _ -> None

type prepared = {
  source : string;
  default_plans : Plan.op list;  (** one per union branch *)
  executed_plans : Plan.op list;
  outcomes : Optimizer.outcome list option;
  analyses : Analysis.t list;
  prep_report : Xpath.Typecheck.report;
  prep_footprint : Footprint.t;
  prep_scope : Flex.t option;
  prep_epoch : int;
  prep_compile_time : float;
  prep_optimize_time : float;
  prep_spans : Profile.span list;
}

(* one span per optimizer iteration, carrying the accepted rule and the
   considered/rejected counts of that iteration's search *)
let iteration_spans (o : Optimizer.outcome) =
  List.mapi
    (fun i (s : Optimizer.iteration_stat) ->
      Profile.span "optimize"
        ~meta:
          [ ("iteration", Profile.Json.Int (i + 1));
            ( "accepted",
              match s.Optimizer.accepted with
              | Some rule -> Profile.Json.Str rule
              | None -> Profile.Json.Null );
            ("considered", Profile.Json.Int s.Optimizer.considered);
            ("rejected", Profile.Json.Int s.Optimizer.rejected);
            ("property_rejected", Profile.Json.Int s.Optimizer.property_rejected) ]
        s.Optimizer.duration)
    o.Optimizer.iteration_stats

let prepare ?(optimize = true) store ~scope src =
  let parsed, parse_time =
    time (fun () ->
        match Xpath.Parser.parse_spanned src with
        | parsed -> Ok parsed
        | exception (Xpath.Parser.Error _ as exn) ->
            Error (Option.value ~default:"parse error" (Xpath.Parser.error_to_string exn)))
  in
  match parsed with
  | Error msg -> Error msg
  | Ok (ast, spans) -> (
      (* source-level static check against the path synopsis: runs before
         plan construction, so a schema-level emptiness proof suppresses
         the optimizer search and (context permitting) execution *)
      let prep_report, check_time =
        time (fun () ->
            let schema = Mass.Synopsis.schema (Mass.Synopsis.for_store store) ~scope in
            Xpath.Typecheck.check ~schema ~spans ast)
      in
      let compiled, compile_only_time =
        time (fun () ->
            match ast with
            | Xpath.Ast.Path p -> Ok [ Compile.compile_path p ]
            | ast -> (
                (* not a single path: try a union of paths *)
                match union_branches ast with
                | Some paths -> Ok (List.map Compile.compile_path paths)
                | None -> Error "expression is not a location path or union of paths"))
      in
      match compiled with
      | Error msg -> Error msg
      | Ok default_plans ->
          let outcomes, optimize_time =
            if optimize && not prep_report.Xpath.Typecheck.rep_empty then
              let stats = Cost.synopsis_statistics store in
              let os, t =
                time (fun () ->
                    List.map (Optimizer.optimize ~stats store ~scope) default_plans)
              in
              (Some os, t)
            else (None, 0.0)
          in
          let executed_plans =
            match outcomes with
            | Some os -> List.map (fun (o : Optimizer.outcome) -> o.Optimizer.plan) os
            | None -> default_plans
          in
          let prep_spans =
            [ Profile.span "parse" parse_time;
              Profile.span "typecheck" check_time;
              Profile.span "compile" compile_only_time ]
            @ (match outcomes with
              | Some (o :: _) -> iteration_spans o
              | Some [] | None -> [])
          in
          let analyses = List.map (Analysis.analyze store ~scope) executed_plans in
          let prep_footprint = Footprint.of_plans executed_plans in
          Ok
            { source = src; default_plans; executed_plans; outcomes; analyses; prep_report;
              prep_footprint; prep_scope = scope; prep_epoch = Store.epoch store;
              prep_compile_time = parse_time +. check_time +. compile_only_time;
              prep_optimize_time = optimize_time; prep_spans })

(* telemetry: primitive span metadata rides along as event attributes *)
let attrs_of_meta meta =
  List.filter_map
    (fun (k, v) ->
      match (v : Profile.Json.t) with
      | Profile.Json.Int i -> Some (k, Obs.Int i)
      | Profile.Json.Float f -> Some (k, Obs.Float f)
      | Profile.Json.Str s -> Some (k, Obs.Str s)
      | Profile.Json.Bool b -> Some (k, Obs.Bool b)
      | Profile.Json.Null | Profile.Json.Arr _ | Profile.Json.Obj _ -> None)
    meta

let emit_query_events store ~context p spans by_index_before =
  let doc_name =
    match Store.document_of_key store context with
    | Some d -> d.Store.doc_name
    | None -> ""
  in
  List.iter
    (fun (s : Profile.span) ->
      Obs.emit ~category:"query" s.Profile.name
        (("query", Obs.Str p.source)
         :: ("dur_ms", Obs.Float (s.Profile.dur *. 1000.))
         :: attrs_of_meta s.Profile.meta))
    spans;
  List.iter2
    (fun (name, before) (name', live) ->
      assert (String.equal name name');
      let d = Storage.Stats.diff live before in
      if d.Storage.Stats.logical_reads > 0 || d.Storage.Stats.physical_reads > 0 then
        Obs.emit ~category:"storage" "query_io"
          [ ("index", Obs.Str name);
            ("doc", Obs.Str doc_name);
            ("query", Obs.Str p.source);
            ("logical_reads", Obs.Int d.Storage.Stats.logical_reads);
            ("physical_reads", Obs.Int d.Storage.Stats.physical_reads);
            ("evictions", Obs.Int d.Storage.Stats.evictions);
            ("hit_ratio", Obs.Float (Storage.Stats.hit_ratio d)) ])
    by_index_before (Store.io_by_index store)

let execute_prepared ?(profile = false) store ~context p =
  with_qid @@ fun qid ->
  let pctx = if profile then Some (Profile.create store) else None in
  let observed = Obs.active () in
  let by_index_before =
    if observed then
      List.map (fun (n, s) -> (n, Storage.Stats.copy s)) (Store.io_by_index store)
    else []
  in
  let io_before = Storage.Stats.copy (Store.io_stats store) in
  let disk_before = Option.map Storage.Disk.copy_io (Store.disk_io store) in
  (* prepared analyses are statistics snapshots: reusable exactly while
     the store reports the preparation epoch and the context stays in the
     analyzed scope; otherwise re-derive (cheap, index-count probes) *)
  let analyses =
    if
      p.prep_epoch = Store.epoch store
      && Option.equal Flex.equal p.prep_scope (scope_of_context context)
    then p.analyses
    else
      List.map (Analysis.analyze store ~scope:(scope_of_context context)) p.executed_plans
  in
  let skip plan a =
    if Analysis.statically_empty a then begin
      if Obs.active () then
        Obs.emit ~category:"engine" "static_empty_skip"
          [ ("query", Obs.Str p.source); ("plan", Obs.Str (Plan.kind_to_string (Plan.leaf plan))) ];
      true
    end
    else false
  in
  (* The typecheck walk interprets the query with the document node as
     context, so its emptiness proof only transfers when this execution
     really starts there (and the store hasn't moved since preparation). *)
  let schema_skip =
    p.prep_report.Xpath.Typecheck.rep_empty
    && p.prep_epoch = Store.epoch store
    && (match p.prep_scope with
       | Some dk -> Flex.equal dk context
       | None -> Flex.depth context = 0)
  in
  let keys, execute_time =
    time (fun () ->
        if schema_skip then begin
          if Obs.active () then
            Obs.emit ~category:"engine" "static_empty_skip"
              [ ("query", Obs.Str p.source); ("source", Obs.Str "synopsis") ];
          []
        end
        else
        match List.combine p.executed_plans analyses with
        | [ (plan, a) ] ->
            if skip plan a then []
            else
              let rp = a.Analysis.root_props in
              if rp.Analysis.order = Analysis.Doc && rp.Analysis.distinct then
                (* the analyzer proved the raw stream sorted and
                   duplicate-free: the final sort_uniq is a no-op *)
                Exec.run_raw ?profile:pctx store ~context plan
              else Exec.run ?profile:pctx store ~context plan
        | pairs ->
            (* union branches execute independently; the result sets merge *)
            List.sort_uniq Flex.compare
              (List.concat_map
                 (fun (plan, a) ->
                   if skip plan a then [] else Exec.run ?profile:pctx store ~context plan)
                 pairs))
  in
  let io = Storage.Stats.diff (Store.io_stats store) io_before in
  let spans = p.prep_spans @ [ Profile.span "execute" execute_time ] in
  if observed then emit_query_events store ~context p spans by_index_before;
  let profile_report =
    Option.map
      (fun ctx ->
        (* a union profiles every branch into one context; the annotated
           tree reports the first branch (matching the plan fields) *)
        let plan = List.hd p.executed_plans in
        let cost =
          match p.outcomes with
          | Some (o :: _) -> o.Optimizer.cost
          | Some [] | None -> Cost.estimate store ~scope:(scope_of_context context) plan
        in
        Profile.make ctx ~cost ~spans ~total_time:execute_time plan)
      pctx
  in
  Log.debug (fun m ->
      m "%s: %d results, compile %.3fms opt %.3fms exec %.3fms, %d page reads" p.source
        (List.length keys) (p.prep_compile_time *. 1000.) (p.prep_optimize_time *. 1000.)
        (execute_time *. 1000.) io.Storage.Stats.logical_reads);
  let attribution =
    let wal, fs = disk_window store disk_before in
    { attr_qid = qid; attr_io = io; attr_wal_bytes = wal; attr_fsyncs = fs }
  in
  { keys;
    default_plan = List.hd p.default_plans;
    executed_plan = List.hd p.executed_plans;
    optimizer = Option.map List.hd p.outcomes;
    compile_time = p.prep_compile_time;
    optimize_time = p.prep_optimize_time;
    execute_time; io; spans; profile = profile_report;
    analysis = List.hd analyses; attribution }

let query ?optimize ?profile store ~context src =
  (* attribute over the whole prepare+execute window: optimizer and
     synopsis probe reads belong to the query that triggered them, so a
     single query's attributed counters sum to the Stats globals *)
  with_qid @@ fun qid ->
  let io_before = Storage.Stats.copy (Store.io_stats store) in
  let disk_before = Option.map Storage.Disk.copy_io (Store.disk_io store) in
  match prepare ?optimize store ~scope:(scope_of_context context) src with
  | Error _ as e -> e
  | Ok p ->
      let r = execute_prepared ?profile store ~context p in
      let wal, fs = disk_window store disk_before in
      let attribution =
        { attr_qid = qid;
          attr_io = Storage.Stats.diff (Store.io_stats store) io_before;
          attr_wal_bytes = wal;
          attr_fsyncs = fs }
      in
      Ok { r with attribution }

let query_doc ?optimize ?profile store doc src =
  query ?optimize ?profile store ~context:doc.Store.doc_key src

let query_store ?optimize store src =
  (* one pipeline per document; results concatenate in store order because
     document roots are ordered FLEX components *)
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | doc :: rest -> (
        match query_doc ?optimize store doc src with
        | Ok r -> go ((doc, r) :: acc) rest
        | Error msg ->
            Error
              (Printf.sprintf "document %S (doc %d, %d of %d succeeded): %s"
                 doc.Store.doc_name doc.Store.doc_id (List.length acc)
                 (List.length (Store.documents store)) msg))
  in
  go [] (Store.documents store)

let eval store ~context src =
  match Xpath.Parser.parse src with
  | exception (Xpath.Parser.Error _ as exn) ->
      Error (Option.value ~default:"parse error" (Xpath.Parser.error_to_string exn))
  | ast -> (
      match Nav.E.eval store ~context ast with
      | v -> Ok v
      | exception Xpath.Eval.Unsupported msg -> Error msg)

let materialize store keys = List.filter_map (Store.get store) keys

let explain ?(optimize = true) store doc src =
  match Compile.compile_query src with
  | Error msg -> Error msg
  | Ok default_plan ->
      let scope = Some doc.Store.doc_key in
      let buf = Buffer.create 512 in
      let ppf = Format.formatter_of_buffer buf in
      let costed = Cost.estimate store ~scope default_plan in
      let a0 = Analysis.analyze store ~scope default_plan in
      Format.fprintf ppf "Default plan:@.%a@." (Analysis.pp_annotated ~costed a0) default_plan;
      let final_analysis, final_plan =
        if optimize then begin
          let o = Optimizer.optimize store ~scope default_plan in
          List.iter
            (fun (t : Optimizer.trace_entry) ->
              Format.fprintf ppf "applied %s at %s: cost %d -> %d@." t.Optimizer.rule
                t.Optimizer.target t.Optimizer.cost_before t.Optimizer.cost_after)
            o.Optimizer.trace;
          let a1 = Analysis.analyze store ~scope o.Optimizer.plan in
          Format.fprintf ppf "Optimized plan (%d iterations):@.%a@." o.Optimizer.iterations
            (Analysis.pp_annotated ~costed:o.Optimizer.cost a1) o.Optimizer.plan;
          (a1, o.Optimizer.plan)
        end
        else (a0, default_plan)
      in
      (if Analysis.statically_empty final_analysis then
         Format.fprintf ppf "Statically empty: execution will be skipped@.");
      Format.fprintf ppf "Footprint: %s@."
        (Footprint.to_string (Footprint.of_plan final_plan));
      (match final_analysis.Analysis.diagnostics with
      | [] -> ()
      | ds ->
          Format.fprintf ppf "Diagnostics:@.";
          List.iter
            (fun d -> Format.fprintf ppf "  %s@." (Analysis.diagnostic_to_string d))
            ds);
      Format.pp_print_flush ppf ();
      Ok (Buffer.contents buf)

let explain_analyze ?(optimize = true) ?(json = false) store doc src =
  match query ~optimize ~profile:true store ~context:doc.Store.doc_key src with
  | Error _ as e -> e
  | Ok r -> (
      match r.profile with
      | None -> Error "profiling produced no report"
      | Some rep ->
          if json then
            Ok
              (Profile.Json.to_string
                 (Profile.Json.Obj
                    [ ("query", Profile.Json.Str src);
                      ("results", Profile.Json.Int (List.length r.keys));
                      ("report", Profile.render_json rep);
                      ("analysis", Analysis.to_json r.analysis r.executed_plan);
                      ("footprint", Footprint.to_json (Footprint.of_plan r.executed_plan));
                      ( "attribution",
                        let a = r.attribution in
                        Profile.Json.Obj
                          [ ("qid", Profile.Json.Int a.attr_qid);
                            ("pages_read", Profile.Json.Int a.attr_io.Storage.Stats.logical_reads);
                            ( "physical_reads",
                              Profile.Json.Int a.attr_io.Storage.Stats.physical_reads );
                            ("evictions", Profile.Json.Int a.attr_io.Storage.Stats.evictions);
                            ("wal_bytes", Profile.Json.Int a.attr_wal_bytes);
                            ("fsyncs", Profile.Json.Int a.attr_fsyncs) ] ) ]))
          else
            let props_section =
              Format.asprintf "Static properties:@.%a"
                (Analysis.pp_annotated ?costed:None r.analysis)
                r.executed_plan
            in
            let diag_section =
              match r.analysis.Analysis.diagnostics with
              | [] -> ""
              | ds ->
                  "Diagnostics:\n"
                  ^ String.concat "\n"
                      (List.map (fun d -> "  " ^ Analysis.diagnostic_to_string d) ds)
                  ^ "\n"
            in
            let footprint_section =
              Printf.sprintf "Footprint: %s\n"
                (Footprint.to_string (Footprint.of_plan r.executed_plan))
            in
            let attr_section =
              let a = r.attribution in
              Printf.sprintf
                "Attributed I/O (qid %d): pages_read=%d physical_reads=%d evictions=%d wal_bytes=%d fsyncs=%d\n"
                a.attr_qid a.attr_io.Storage.Stats.logical_reads
                a.attr_io.Storage.Stats.physical_reads a.attr_io.Storage.Stats.evictions
                a.attr_wal_bytes a.attr_fsyncs
            in
            Ok
              (Printf.sprintf "Query: %s\n%d results\n%s%s%s%s%s" src (List.length r.keys)
                 (Profile.render_text rep) props_section diag_section footprint_section
                 attr_section))
