(** Cost-driven heuristic optimizer (paper §VI).

    Iterates the paper's three phases — clean-up, cost gathering,
    rewriting — until no transformation is admitted.  Each iteration costs
    the plan from live index statistics, orders operators by selectivity,
    and tries the transformation library on the most selective operator
    first.  A transformation is admitted only if the re-estimated plan
    cost (total tuple output) does not increase, which yields the paper's
    guarantee that the optimized plan is never slower than the default
    plan. *)

type trace_entry = {
  rule : string;
  target : string;  (** display form of the operator rewritten *)
  cost_before : int;
  cost_after : int;
}

type iteration_stat = {
  duration : float;  (** seconds spent costing + searching this iteration *)
  considered : int;  (** rewrites that produced a candidate plan *)
  rejected : int;  (** candidates whose re-estimated cost increased *)
  property_rejected : int;
      (** cost-admissible candidates rejected because
          {!Analysis.check_rewrite} found a semantic-property change *)
  accepted : string option;  (** admitted rule, [None] on the fixpoint iteration *)
}

type outcome = {
  plan : Plan.op;
  iterations : int;
  trace : trace_entry list;
  iteration_stats : iteration_stat list;
      (** one entry per search iteration, including the final fixpoint
          pass that admitted nothing — the raw material for per-iteration
          trace spans *)
  cost : Cost.costed;  (** final plan's annotations *)
}

val optimize :
  ?rules:Rewrite.rule list ->
  ?stats:Cost.statistics_source ->
  Mass.Store.t ->
  scope:Flex.t option ->
  Plan.op ->
  outcome
(** [rules] defaults to the full transformation library
    ({!Rewrite.cost_rules}); restricting it supports ablation studies.
    [stats] defaults to live index-backed statistics; a frozen source
    ({!Frozen_stats}) reproduces stale-dictionary behaviour.

    Every cost-admissible candidate is additionally vetted by
    {!Analysis.check_rewrite} against the current plan's semantic
    signature; a violating candidate is skipped (with an [Obs]
    [rule_property_violation] event) — or, under
    {!Analysis.with_strict}, escalated to
    {!Analysis.Property_violation}. *)

val max_iterations : int
(** Safety bound on optimization iterations (the rewrite system
    terminates structurally; this is belt-and-braces). *)
