let log_src = Logs.Src.create "vamana.optimizer" ~doc:"VAMANA cost-driven optimizer"

module Log = (val Logs.src_log log_src)

type trace_entry = {
  rule : string;
  target : string;
  cost_before : int;
  cost_after : int;
}

type iteration_stat = {
  duration : float;
  considered : int;
  rejected : int;
  property_rejected : int;
  accepted : string option;
}

type outcome = {
  plan : Plan.op;
  iterations : int;
  trace : trace_entry list;
  iteration_stats : iteration_stat list;
  cost : Cost.costed;
}

let max_iterations = 16

let optimize ?(rules = Rewrite.cost_rules) ?stats store ~scope plan =
  let plan = Rewrite.apply_cleanup plan in
  let rec loop plan iterations trace stats_acc =
    if iterations >= max_iterations then finish plan iterations trace stats_acc
    else begin
      let t0 = Unix.gettimeofday () in
      let considered = ref 0 and rejected = ref 0 and property_rejected = ref 0 in
      let costed = Cost.estimate ?stats store ~scope plan in
      let current_cost = Cost.total_output costed plan in
      let ordered = Cost.ordered_by_selectivity costed plan in
      let analysis = Analysis.analyze ?stats store ~scope plan in
      let sig_before = Analysis.signature_of analysis plan in
      (* most selective operator first; first admissible rewrite wins *)
      let candidate =
        List.fold_left
          (fun acc ((op : Plan.op), _) ->
            match acc with
            | Some _ -> acc
            | None ->
                List.fold_left
                  (fun acc (rule : Rewrite.rule) ->
                    match acc with
                    | Some _ -> acc
                    | None -> (
                        match rule.Rewrite.apply plan ~target:op.Plan.id with
                        | None -> None
                        | Some plan' ->
                            incr considered;
                            let plan' = Rewrite.apply_cleanup plan' in
                            let costed' = Cost.estimate ?stats store ~scope plan' in
                            let cost' = Cost.total_output costed' plan' in
                            if cost' <= current_cost then begin
                              (* cost admits the rewrite; semantics must
                                 agree too — a rule that changes the
                                 plan's inferred properties is buggy no
                                 matter how cheap its plan looks *)
                              let analysis' = Analysis.analyze ?stats store ~scope plan' in
                              match
                                Analysis.check_rewrite
                                  ~before:sig_before
                                  ~after:(Analysis.signature_of analysis' plan')
                                  ~after_errors:(Analysis.errors analysis')
                              with
                              | Error reason ->
                                  incr property_rejected;
                                  if Obs.active () then
                                    Obs.emit ~severity:Obs.Warn ~category:"optimizer"
                                      "rule_property_violation"
                                      [ ("rule", Obs.Str rule.Rewrite.name);
                                        ("target", Obs.Str (Plan.kind_to_string op));
                                        ("reason", Obs.Str reason) ];
                                  Log.warn (fun m ->
                                      m "rejected %s at %s: %s" rule.Rewrite.name
                                        (Plan.kind_to_string op) reason);
                                  if Analysis.strict_enabled () then
                                    raise
                                      (Analysis.Property_violation
                                         (Printf.sprintf "%s at %s: %s" rule.Rewrite.name
                                            (Plan.kind_to_string op) reason));
                                  None
                              | Ok () ->
                                  if Obs.active () then
                                    Obs.emit ~category:"optimizer" "rule_accepted"
                                      [ ("rule", Obs.Str rule.Rewrite.name);
                                        ("target", Obs.Str (Plan.kind_to_string op));
                                        ("cost_before", Obs.Int current_cost);
                                        ("cost_after", Obs.Int cost') ];
                                  Some
                                    ( plan',
                                      { rule = rule.Rewrite.name;
                                        target = Plan.kind_to_string op;
                                        cost_before = current_cost;
                                        cost_after = cost' } )
                            end
                            else begin
                              incr rejected;
                              if Obs.active () then
                                Obs.emit ~severity:Obs.Debug ~category:"optimizer"
                                  "rule_rejected"
                                  [ ("rule", Obs.Str rule.Rewrite.name);
                                    ("target", Obs.Str (Plan.kind_to_string op));
                                    ("cost_before", Obs.Int current_cost);
                                    ("cost_after", Obs.Int cost') ];
                              None
                            end))
                  None rules)
          None ordered
      in
      let stat accepted =
        { duration = Unix.gettimeofday () -. t0;
          considered = !considered;
          rejected = !rejected;
          property_rejected = !property_rejected;
          accepted }
      in
      match candidate with
      | Some (plan', entry) ->
          Log.debug (fun m ->
              m "applied %s at %s: cost %d -> %d" entry.rule entry.target entry.cost_before
                entry.cost_after);
          loop plan' (iterations + 1) (entry :: trace) (stat (Some entry.rule) :: stats_acc)
      | None -> finish plan iterations trace (stat None :: stats_acc)
    end
  and finish plan iterations trace stats_acc =
    { plan; iterations; trace = List.rev trace; iteration_stats = List.rev stats_acc;
      cost = Cost.estimate ?stats store ~scope plan }
  in
  loop plan 0 [] []
