(* ---- JSON values ---- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\b' -> Buffer.add_string buf "\\b"
        | '\012' -> Buffer.add_string buf "\\f"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  (* shortest decimal form that re-parses to the same float *)
  let float_repr f =
    let s = Printf.sprintf "%.12g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    (* a bare integer form would re-parse as Int; force a float marker *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E' || c = 'n' || c = 'i') s then s
    else s ^ ".0"

  let rec write buf v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        Buffer.add_string buf (if Float.is_finite f then float_repr f else "null")
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | Arr xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_string buf ", ";
            write buf x)
          xs;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_string buf ", ";
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\": ";
            write buf x)
          fields;
        Buffer.add_char buf '}'

  let to_string v =
    let buf = Buffer.create 256 in
    write buf v;
    Buffer.contents buf

  exception Parse_error of string

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let expect c =
      if !pos < n && s.[!pos] = c then advance ()
      else fail (Printf.sprintf "expected '%c'" c)
    in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let literal word v =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        v
      end
      else fail ("expected " ^ word)
    in
    let add_utf8 buf code =
      (* BMP code points only; lone surrogates are kept as-is *)
      if code < 0x80 then Buffer.add_char buf (Char.chr code)
      else if code < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        if c = '"' then Buffer.contents buf
        else if c = '\\' then begin
          (if !pos >= n then fail "unterminated escape");
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
              in
              add_utf8 buf code
          | _ -> fail "bad escape");
          go ()
        end
        else begin
          Buffer.add_char buf c;
          go ()
        end
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while !pos < n && is_num_char s.[!pos] do
        advance ()
      done;
      let text = String.sub s start (!pos - start) in
      if text = "" then fail "expected a value";
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "bad number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else begin
            let rec items acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  items (v :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> fail "expected ',' or ']'"
            in
            Arr (items [])
          end
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let field () =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              (k, parse_value ())
            in
            let rec fields acc =
              let f = field () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  fields (f :: acc)
              | Some '}' ->
                  advance ();
                  List.rev (f :: acc)
              | _ -> fail "expected ',' or '}'"
            in
            Obj (fields [])
          end
      | Some _ -> parse_number ()
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse_error msg -> Error msg

  let rec equal a b =
    match (a, b) with
    | Null, Null -> true
    | Bool x, Bool y -> x = y
    | Int x, Int y -> x = y
    | Float x, Float y -> x = y || (Float.is_nan x && Float.is_nan y)
    | Str x, Str y -> String.equal x y
    | Arr xs, Arr ys -> List.equal equal xs ys
    | Obj xs, Obj ys ->
        List.equal (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2) xs ys
    | (Null | Bool _ | Int _ | Float _ | Str _ | Arr _ | Obj _), _ -> false

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

(* ---- collection ---- *)

type slot = {
  op_id : int;
  label : string;
  mutable tuples : int;
  mutable next_calls : int;
  mutable resets : int;
  mutable cursor_opens : int;
  mutable started : int;
  mutable exhausted : int;
  mutable self_time : float;
  mutable self_reads : int;
  mutable self_phys : int;
}

type ctx = {
  read_io : unit -> int * int;
      (** current (logical, physical) read totals of the profiled store
          ({!Mass.Store.io_stats} recomputes a snapshot per call) *)
  table : (int, slot) Hashtbl.t;
  (* inclusive time/reads of completed callee frames inside the frame
     currently on the stack; saved/restored around each frame so every
     slot ends up with exact exclusive figures *)
  mutable child_time : float;
  mutable child_reads : int;
  mutable child_phys : int;
}

let create store =
  { read_io =
      (fun () ->
        let s = Mass.Store.io_stats store in
        (s.Storage.Stats.logical_reads, s.Storage.Stats.physical_reads));
    table = Hashtbl.create 16;
    child_time = 0.0;
    child_reads = 0;
    child_phys = 0 }

let slot ctx ~op_id ~label =
  match Hashtbl.find_opt ctx.table op_id with
  | Some s -> s
  | None ->
      let s =
        { op_id; label; tuples = 0; next_calls = 0; resets = 0; cursor_opens = 0;
          started = 0; exhausted = 0; self_time = 0.0; self_reads = 0; self_phys = 0 }
      in
      Hashtbl.add ctx.table op_id s;
      s

let frame ctx s f =
  s.next_calls <- s.next_calls + 1;
  let saved_t = ctx.child_time and saved_r = ctx.child_reads and saved_p = ctx.child_phys in
  ctx.child_time <- 0.0;
  ctx.child_reads <- 0;
  ctx.child_phys <- 0;
  let t0 = Unix.gettimeofday () in
  let r0, p0 = ctx.read_io () in
  match f () with
  | result ->
      let dt = Unix.gettimeofday () -. t0 in
      let r1, p1 = ctx.read_io () in
      let dr = r1 - r0 in
      let dp = p1 - p0 in
      s.self_time <- s.self_time +. dt -. ctx.child_time;
      s.self_reads <- s.self_reads + dr - ctx.child_reads;
      s.self_phys <- s.self_phys + dp - ctx.child_phys;
      ctx.child_time <- saved_t +. dt;
      ctx.child_reads <- saved_r + dr;
      ctx.child_phys <- saved_p + dp;
      (match result with Some _ -> s.tuples <- s.tuples + 1 | None -> ());
      result
  | exception e ->
      ctx.child_time <- saved_t;
      ctx.child_reads <- saved_r;
      ctx.child_phys <- saved_p;
      raise e

let slots ctx =
  Hashtbl.fold (fun _ s acc -> s :: acc) ctx.table []
  |> List.sort (fun a b -> compare a.op_id b.op_id)

(* ---- spans ---- *)

type span = { name : string; dur : float; meta : (string * Json.t) list }

let span ?(meta = []) name dur = { name; dur; meta }

(* ---- reports ---- *)

type node = {
  id : int;
  label : string;
  est : Cost.stats option;
  act : slot option;
  q_error : float option;
  preds : (string * node) list;
  context : node option;
}

type report = {
  plan : node;
  spans : span list;
  total_time : float;
  root_q_error : float;
  max_q_error : float;
}

let q_error ~est ~act =
  if est = act then 1.0
  else if est = 0 || act = 0 then Float.infinity
  else
    let e = float_of_int est and a = float_of_int act in
    Float.max (e /. a) (a /. e)

let rec node_of ctx ~cost (op : Plan.op) =
  let act = Hashtbl.find_opt ctx.table op.Plan.id in
  let est = Hashtbl.find_opt cost op.Plan.id in
  let q_error =
    match est with
    | Some e -> Some (q_error ~est:e.Cost.output ~act:(match act with Some s -> s.tuples | None -> 0))
    | None -> None
  in
  { id = op.Plan.id;
    label = Plan.kind_to_string op;
    est;
    act;
    q_error;
    preds = List.concat_map (pred_nodes ctx ~cost) op.Plan.predicates;
    context = Option.map (node_of ctx ~cost) op.Plan.context }

and pred_nodes ctx ~cost (pred : Plan.pred) =
  match pred with
  | Plan.Exists sub -> [ ("ξ exists", node_of ctx ~cost sub) ]
  | Plan.Binary (_, cmp, a, b) ->
      let operand o =
        match o with
        | Plan.Path_operand sub ->
            [ ("β " ^ Plan.binop_symbol cmp, node_of ctx ~cost sub) ]
        | Plan.Literal _ | Plan.Number_operand _ -> []
      in
      operand a @ operand b
  | Plan.And (a, b) | Plan.Or (a, b) -> pred_nodes ctx ~cost a @ pred_nodes ctx ~cost b
  | Plan.Not a -> pred_nodes ctx ~cost a
  | Plan.Position _ | Plan.Generic _ -> []

let rec fold_nodes f acc node =
  let acc = f acc node in
  let acc = List.fold_left (fun acc (_, sub) -> fold_nodes f acc sub) acc node.preds in
  match node.context with Some c -> fold_nodes f acc c | None -> acc

let make ctx ~cost ?(spans = []) ~total_time (plan : Plan.op) =
  let tree = node_of ctx ~cost plan in
  let root_q_error = match tree.q_error with Some q -> q | None -> 1.0 in
  let max_q_error =
    fold_nodes
      (fun acc n -> match n.q_error with Some q when q > acc -> q | _ -> acc)
      1.0 tree
  in
  { plan = tree; spans; total_time; root_q_error; max_q_error }

(* ---- rendering ---- *)

let q_string q = if Float.is_finite q then Printf.sprintf "%.3g" q else "∞"

let line_of_node n =
  let est =
    match n.est with
    | Some e ->
        Printf.sprintf " est{COUNT=%d IN=%d OUT=%d}" e.Cost.count e.Cost.input e.Cost.output
    | None -> ""
  in
  let act =
    match n.act with
    | Some s ->
        Printf.sprintf " act{out=%d next=%d reset=%d cursors=%d t=%.3fms io=%d/%d}" s.tuples
          s.next_calls s.resets s.cursor_opens (s.self_time *. 1000.) s.self_reads
          s.self_phys
    | None -> " act{not executed}"
  in
  let q = match n.q_error with Some q -> Printf.sprintf " q=%s" (q_string q) | None -> "" in
  Printf.sprintf "%s%s%s%s" n.label est act q

let render_text r =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "execution profile: %.3f ms, root q-error %s, max operator q-error %s"
    (r.total_time *. 1000.) (q_string r.root_q_error) (q_string r.max_q_error);
  let rec render ~indent ~prefix n =
    line "%s%s%s" (String.make indent ' ') prefix (line_of_node n);
    List.iter (fun (label, sub) -> render ~indent:(indent + 2) ~prefix:(label ^ " ") sub) n.preds;
    match n.context with Some c -> render ~indent:(indent + 2) ~prefix:"" c | None -> ()
  in
  render ~indent:0 ~prefix:"" r.plan;
  if r.spans <> [] then begin
    line "spans:";
    List.iter
      (fun s ->
        let meta =
          if s.meta = [] then ""
          else
            "  "
            ^ String.concat " "
                (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (Json.to_string v)) s.meta)
        in
        line "  %-10s %10.3f ms%s" s.name (s.dur *. 1000.) meta)
      r.spans
  end;
  Buffer.contents buf

let jfloat f = if Float.is_finite f then Json.Float f else Json.Null

let json_of_slot s =
  Json.Obj
    [ ("tuples", Json.Int s.tuples);
      ("next_calls", Json.Int s.next_calls);
      ("resets", Json.Int s.resets);
      ("cursor_opens", Json.Int s.cursor_opens);
      ("started", Json.Int s.started);
      ("exhausted", Json.Int s.exhausted);
      ("self_ms", jfloat (s.self_time *. 1000.));
      ("logical_reads", Json.Int s.self_reads);
      ("physical_reads", Json.Int s.self_phys) ]

let json_of_est (e : Cost.stats) =
  Json.Obj
    [ ("count", Json.Int e.Cost.count);
      ("in", Json.Int e.Cost.input);
      ("out", Json.Int e.Cost.output);
      ("selectivity", jfloat e.Cost.selectivity) ]

let rec json_of_node n =
  let fields =
    [ ("id", Json.Int n.id);
      ("op", Json.Str n.label);
      ("estimated", match n.est with Some e -> json_of_est e | None -> Json.Null);
      ("actual", match n.act with Some s -> json_of_slot s | None -> Json.Null);
      ("q_error", match n.q_error with Some q -> jfloat q | None -> Json.Null) ]
  in
  let fields =
    if n.preds = [] then fields
    else
      fields
      @ [ ( "predicates",
            Json.Arr
              (List.map
                 (fun (label, sub) ->
                   Json.Obj [ ("label", Json.Str label); ("plan", json_of_node sub) ])
                 n.preds) ) ]
  in
  let fields =
    match n.context with
    | Some c -> fields @ [ ("context", json_of_node c) ]
    | None -> fields
  in
  Json.Obj fields

let json_of_span s =
  Json.Obj
    ([ ("name", Json.Str s.name); ("ms", jfloat (s.dur *. 1000.)) ] @ s.meta)

let render_json r =
  Json.Obj
    [ ("total_ms", jfloat (r.total_time *. 1000.));
      ("root_q_error", jfloat r.root_q_error);
      ("max_q_error", jfloat r.max_q_error);
      ("spans", Json.Arr (List.map json_of_span r.spans));
      ("plan", json_of_node r.plan) ]

let render_json_string r = Json.to_string (render_json r)
