(** Cost estimation (paper §VI-B and Table I).

    Statistics are taken directly from the MASS indexes — exact counted
    B+-tree probes, no histograms — so estimates stay accurate under
    updates.  For each operator the estimator derives:

    - [COUNT]: nodes satisfying the node test (name-index count, scoped
      to the queried document);
    - [TC]: occurrences of a literal value (value-index count);
    - [IN]: tuples the operator will receive — [COUNT] for a context-path
      leaf, the context child's [OUT] for inner operators, the candidate
      count for predicate-path leaves;
    - [OUT]: the Table I upper bound — downward axes are bounded by
      [COUNT], upward/lateral axes by [IN], [self] by the table's
      max-like rule; a value-comparable binary predicate caps [OUT] at
      [min IN TC] (the paper's case 5);
    - selectivity δ = IN/OUT, the optimizer's ordering key.

    The paper's Figure 7 takes the predicate-path text-step [COUNT] from
    the candidate element count; we use the document-wide node-test count,
    which preserves every ordering the heuristics rely on. *)

type stats = {
  count : int;
  tc : int option;  (** literal operators only *)
  input : int;
  output : int;
  selectivity : float;  (** IN/OUT; [infinity] when OUT = 0 *)
}

type costed = (int, stats) Hashtbl.t
(** Operator id → statistics. *)

type statistics_source = {
  node_count : scope:Flex.t option -> principal:Mass.Record.kind -> Xpath.Ast.node_test -> int;
  value_count : scope:Flex.t option -> string -> int;
  chain_out :
    (scope:Flex.t option ->
     (Xpath.Ast.axis * Xpath.Ast.node_test * bool) list ->
     (int * bool) option)
    option;
      (** optional path-synopsis refinement for a whole step chain
          (leaf-side first, each step tagged with whether it carries
          predicates): [Some (n, true)] is the exact raw tuple count of
          the chain's last step, [Some (n, false)] an estimate that only
          tightens the Table I bound, [None] makes no claim.  The
          refinement assumes the document node as evaluation context and
          is consulted for main-chain operators only. *)
}
(** Where the estimator reads COUNT and TC from.  The engine uses
    {!live_statistics} (exact, index-backed, always current); alternative
    sources support experiments — e.g. {!Frozen_stats} models the stale
    data dictionaries the paper argues against. *)

val live_statistics : Mass.Store.t -> statistics_source
(** Exact index-backed COUNT/TC; no synopsis refinement, so estimates
    are the pure Table I model. *)

val synopsis_statistics : Mass.Store.t -> statistics_source
(** {!live_statistics} plus {!Mass.Synopsis} chain refinement: exact
    multi-step IN/OUT where the synopsis walk stays exact, tightened
    bounds elsewhere.  The synopsis is the store-cached one
    ({!Mass.Synopsis.for_store}), so the first estimate after a store
    mutation pays one rebuild scan. *)

val estimate :
  ?stats:statistics_source -> Mass.Store.t -> scope:Flex.t option -> Plan.op -> costed
(** Cost a plan (pass the document key as [scope] for per-document
    statistics, [None] for store-wide).  [stats] defaults to
    {!live_statistics}. *)

val estimate_with : statistics_source -> scope:Flex.t option -> Plan.op -> costed

val total_output : costed -> Plan.op -> int
(** Sum of [OUT] over all operators — the plan-cost measure the optimizer
    uses to accept or reject a transformation (monotone under the paper's
    improvement guarantee). *)

val ordered_by_selectivity : costed -> Plan.op -> (Plan.op * float) list
(** The paper's ordered list [L(P)]: step/value operators sorted by
    selectivity, most selective first, δ scaled to [0, 1]. *)

val pp_annotated : costed -> Format.formatter -> Plan.op -> unit
(** Plan tree with COUNT/IN/OUT annotations (paper Figures 6 and 7). *)
