module Store = Mass.Store
open Xpath

type stats = {
  count : int;
  tc : int option;
  input : int;
  output : int;
  selectivity : float;
}

type costed = (int, stats) Hashtbl.t

type statistics_source = {
  node_count : scope:Flex.t option -> principal:Mass.Record.kind -> Xpath.Ast.node_test -> int;
  value_count : scope:Flex.t option -> string -> int;
  chain_out :
    (scope:Flex.t option ->
     (Xpath.Ast.axis * Xpath.Ast.node_test * bool) list ->
     (int * bool) option)
    option;
      (* path-synopsis refinement of a step chain's output (root-side
         first, each step tagged with whether it carries predicates):
         [Some (n, true)] is the exact raw tuple count, [Some (n, false)]
         an estimate.  [None] (the source has no synopsis, or the scope
         is not a whole document) falls back to Table I alone. *)
}

let live_statistics store =
  {
    node_count = (fun ~scope ~principal test -> Store.count_test store ?scope ~principal test);
    value_count = (fun ~scope v -> Store.text_value_count store ?scope v);
    chain_out = None;
  }

let synopsis_statistics store =
  let live = live_statistics store in
  {
    live with
    chain_out =
      Some
        (fun ~scope spec ->
          Mass.Synopsis.chain_estimate (Mass.Synopsis.for_store store) ~scope spec);
  }

let selectivity_of ~input ~output =
  if output = 0 then Float.infinity
  else float_of_int input /. float_of_int output

let record x ~(costed : costed) id = Hashtbl.replace costed id x

(* Table I: upper bound on the tuples a step operator emits. *)
let table_one (axis : Ast.axis) ~count ~input =
  match axis with
  | Ast.Child | Ast.Descendant | Ast.Descendant_or_self | Ast.Attribute -> count
  | Ast.Parent | Ast.Ancestor | Ast.Ancestor_or_self | Ast.Following
  | Ast.Following_sibling | Ast.Preceding | Ast.Preceding_sibling ->
      input
  | Ast.Self -> if count > input then count else input
  | Ast.Namespace -> 0

let count_for stats ~scope (axis : Ast.axis) test =
  let principal =
    match axis with Ast.Attribute -> Mass.Record.Attribute | _ -> Mass.Record.Element
  in
  stats.node_count ~scope ~principal test

(* A literal binary predicate comparable through the value index (the
   paper's case 5): [path = 'literal'] with equality. *)
let value_comparable (pred : Plan.pred) =
  match pred with
  | Plan.Binary (_, Ast.Eq, Plan.Path_operand _, Plan.Literal (_, v))
  | Plan.Binary (_, Ast.Eq, Plan.Literal (_, v), Plan.Path_operand _) ->
      Some v
  | _ -> None

(* Leaf-first [(axis, test, has_predicates)] spec of the step chain that
   feeds [op], ending with [op] itself carrying [final_preds].  [None]
   when the chain contains anything but plain steps (a value step, a
   nested root) — the synopsis walker models location steps only. *)
let chain_spec (op : Plan.op) ~final_preds =
  let rec below (o : Plan.op option) =
    match o with
    | None -> Some []
    | Some o -> (
        match below o.context with
        | None -> None
        | Some acc -> (
            match o.kind with
            | Plan.Step (axis, test) -> Some (acc @ [ (axis, test, o.predicates <> []) ])
            | Plan.Step_generic st ->
                Some
                  (acc
                  @ [ (st.Xpath.Ast.axis, st.Xpath.Ast.test,
                       st.Xpath.Ast.predicates <> [] || o.predicates <> []) ])
            | Plan.Root | Plan.Value_step _ -> None))
  in
  match below op.context with
  | None -> None
  | Some acc -> (
      match op.kind with
      | Plan.Step (axis, test) -> Some (acc @ [ (axis, test, final_preds) ])
      | Plan.Step_generic st ->
          Some (acc @ [ (st.Xpath.Ast.axis, st.Xpath.Ast.test, final_preds) ])
      | Plan.Root | Plan.Value_step _ -> None)

(* Synopsis refinement of the Table I bound: exact chain counts replace
   it, estimates only tighten it.  Applies to the main context chain
   only — predicate sub-plans ([leaf_input] set) run from candidate
   tuples, not the document node the synopsis walk starts at. *)
let refine_with_chain stats ~scope ~leaf_input (op : Plan.op) ~final_preds axis_out =
  match (stats.chain_out, leaf_input) with
  | Some chain, None -> (
      match chain_spec op ~final_preds with
      | None -> axis_out
      | Some spec -> (
          match chain ~scope spec with
          | Some (n, true) -> n
          | Some (n, false) -> min axis_out n
          | None -> axis_out))
  | _ -> axis_out

let rec estimate_op stats ~scope ~costed ~leaf_input (op : Plan.op) : stats =
  match op.kind with
  | Plan.Root ->
      let inner =
        match op.context with
        | Some c -> estimate_op stats ~scope ~costed ~leaf_input c
        | None -> { count = 0; tc = None; input = 0; output = 0; selectivity = 1.0 }
      in
      let s =
        { count = inner.output; tc = None; input = inner.output; output = inner.output;
          selectivity = 1.0 }
      in
      record s ~costed op.id;
      s
  | Plan.Step (axis, test) ->
      let count = count_for stats ~scope axis test in
      let input =
        match op.context with
        | Some c -> (estimate_op stats ~scope ~costed ~leaf_input c).output
        | None -> ( match leaf_input with Some n -> n | None -> count)
      in
      let axis_out = table_one axis ~count ~input in
      let axis_out =
        refine_with_chain stats ~scope ~leaf_input op ~final_preds:false axis_out
      in
      let output = estimate_predicates stats ~scope ~costed ~candidates:axis_out op.predicates in
      let s = { count; tc = None; input; output; selectivity = selectivity_of ~input ~output } in
      record s ~costed op.id;
      s
  | Plan.Value_step (v, _) ->
      let tc = stats.value_count ~scope v in
      let input =
        match op.context with
        | Some c -> (estimate_op stats ~scope ~costed ~leaf_input c).output
        | None -> ( match leaf_input with Some n -> n | None -> 1)
      in
      let output = estimate_predicates stats ~scope ~costed ~candidates:tc op.predicates in
      let s =
        { count = tc; tc = Some tc; input; output; selectivity = selectivity_of ~input ~output }
      in
      record s ~costed op.id;
      s
  | Plan.Step_generic st ->
      (* no specialized model: treat like the underlying axis without
         predicate refinement *)
      let count = count_for stats ~scope st.Ast.axis st.Ast.test in
      let input =
        match op.context with
        | Some c -> (estimate_op stats ~scope ~costed ~leaf_input c).output
        | None -> ( match leaf_input with Some n -> n | None -> count)
      in
      let output = table_one st.Ast.axis ~count ~input in
      let output =
        refine_with_chain stats ~scope ~leaf_input op
          ~final_preds:(st.Ast.predicates <> []) output
      in
      let s = { count; tc = None; input; output; selectivity = selectivity_of ~input ~output } in
      record s ~costed op.id;
      s

(* Returns the refined output bound after applying the predicate cases:
   case 5 (value-comparable binary: min(candidates, TC)), case 6 (other
   predicates leave the bound unchanged).  Predicate sub-plans are costed
   too, with the candidate count as their leaf input (case 3). *)
and estimate_predicates stats ~scope ~costed ~candidates preds =
  List.fold_left
    (fun bound pred ->
      cost_pred_subplans stats ~scope ~costed ~candidates pred;
      match value_comparable pred with
      | Some v ->
          let tc = stats.value_count ~scope v in
          min bound tc
      | None -> (
          match pred with
          | Plan.Position ((Ast.Eq : Ast.binop), _) -> min bound candidates
          | _ -> bound))
    candidates preds

and cost_pred_subplans stats ~scope ~costed ~candidates (pred : Plan.pred) =
  match pred with
  | Plan.Exists sub ->
      let s = estimate_op stats ~scope ~costed ~leaf_input:(Some candidates) sub in
      (* an existence probe resets per candidate and stops at its first
         witness, so it emits at most one tuple per candidate; the
         refined-statistics source models that (the pure Table I source
         keeps the paper's figures) *)
      if stats.chain_out <> None && s.output > candidates then
        record
          { s with
            output = candidates;
            selectivity = selectivity_of ~input:s.input ~output:candidates }
          ~costed sub.Plan.id
  | Plan.Binary (_, _, a, b) ->
      cost_operand stats ~scope ~costed ~candidates a;
      cost_operand stats ~scope ~costed ~candidates b
  | Plan.And (a, b) | Plan.Or (a, b) ->
      cost_pred_subplans stats ~scope ~costed ~candidates a;
      cost_pred_subplans stats ~scope ~costed ~candidates b
  | Plan.Not a -> cost_pred_subplans stats ~scope ~costed ~candidates a
  | Plan.Position _ | Plan.Generic _ -> ()

and cost_operand stats ~scope ~costed ~candidates (o : Plan.operand) =
  match o with
  | Plan.Path_operand sub ->
      ignore (estimate_op stats ~scope ~costed ~leaf_input:(Some candidates) sub)
  | Plan.Literal _ | Plan.Number_operand _ -> ()

let estimate_with stats ~scope plan : costed =
  let costed = Hashtbl.create 16 in
  ignore (estimate_op stats ~scope ~costed ~leaf_input:None plan);
  costed

let estimate ?stats store ~scope plan : costed =
  let stats = match stats with Some s -> s | None -> live_statistics store in
  estimate_with stats ~scope plan

let total_output (costed : costed) plan =
  List.fold_left
    (fun acc (op : Plan.op) ->
      match Hashtbl.find_opt costed op.id with Some s -> acc + s.output | None -> acc)
    0 (Plan.subtree_ops plan)

let ordered_by_selectivity (costed : costed) plan =
  let ops =
    Plan.subtree_ops plan
    |> List.filter (fun (op : Plan.op) ->
           match op.kind with
           | Plan.Step _ | Plan.Value_step _ -> true
           | Plan.Root | Plan.Step_generic _ -> false)
  in
  let with_sel =
    List.filter_map
      (fun op ->
        match Hashtbl.find_opt costed op.Plan.id with
        | Some s -> Some (op, s.selectivity)
        | None -> None)
      ops
  in
  let max_sel =
    List.fold_left
      (fun acc (_, s) -> if Float.is_finite s && s > acc then s else acc)
      1.0 with_sel
  in
  (* scale into [0, 1]; infinite selectivity (empty output) scales to 1 *)
  let scaled =
    List.map
      (fun (op, s) -> (op, if Float.is_finite s then s /. max_sel else 1.0))
      with_sel
  in
  List.stable_sort (fun (_, a) (_, b) -> Float.compare b a) scaled

let pp_annotated (costed : costed) ppf plan =
  let annot (op : Plan.op) =
    match Hashtbl.find_opt costed op.id with
    | Some s ->
        Printf.sprintf "  {COUNT=%d IN=%d OUT=%d δ=%s}" s.count s.input s.output
          (if Float.is_finite s.selectivity then Printf.sprintf "%.3g" s.selectivity else "∞")
    | None -> ""
  in
  let rec pp_op ~indent (op : Plan.op) =
    Format.fprintf ppf "%s%s%s@," (String.make indent ' ') (Plan.kind_to_string op) (annot op);
    List.iter (pp_pred ~indent:(indent + 2)) op.predicates;
    match op.context with Some c -> pp_op ~indent:(indent + 2) c | None -> ()
  and pp_pred ~indent (pred : Plan.pred) =
    let pad = String.make indent ' ' in
    match pred with
    | Plan.Exists sub ->
        Format.fprintf ppf "%sξ exists@," pad;
        pp_op ~indent:(indent + 2) sub
    | Plan.Binary (id, _, a, b) ->
        Format.fprintf ppf "%sβ%d@," pad id;
        pp_operand ~indent:(indent + 2) a;
        pp_operand ~indent:(indent + 2) b
    | Plan.And (a, b) | Plan.Or (a, b) ->
        pp_pred ~indent a;
        pp_pred ~indent b
    | Plan.Not a -> pp_pred ~indent a
    | Plan.Position _ | Plan.Generic _ -> Format.fprintf ppf "%s[predicate]@," pad
  and pp_operand ~indent (o : Plan.operand) =
    match o with
    | Plan.Path_operand sub -> pp_op ~indent sub
    | Plan.Literal (id, v) ->
        Format.fprintf ppf "%sL%d '%s'@," (String.make indent ' ') id v
    | Plan.Number_operand f ->
        Format.fprintf ppf "%s%g@," (String.make indent ' ') f
  in
  Format.fprintf ppf "@[<v>";
  pp_op ~indent:0 plan;
  Format.fprintf ppf "@]"
