(** Static plan analysis (plan property inference + rewrite safety).

    An abstract interpretation over the physical plan tree.  For every
    operator it infers a conservative description of the FLEX-key stream
    the operator emits:

    - {e order}: document order, reverse document order, or unknown;
    - {e distinct}: no key appears twice in the stream;
    - {e no_nesting}: the emitted subtrees are pairwise disjoint (no key
      is an ancestor of another) — the property that lets a downward
      axis over the stream stay sorted and duplicate-free;
    - {e card_max}: an upper bound on the {e result set} (the
      deduplicated stream), derived from the MASS counted indexes —
      [Some 0] is a proof of static emptiness.

    All claims are sound: [Doc]/[distinct]/[no_nesting] are only
    asserted when they hold for every store; [Unordered] and [None]
    mean "not proven", never "proven false".

    The analyzer also produces severity-ranked {!diagnostic}s (empty
    steps, dead predicates, un-eliminated reverse axes, malformed
    operators) and a per-plan {!signature} that the optimizer compares
    across a rewrite: a rule whose rewritten plan changes the signature
    is semantically suspect and is rejected regardless of cost. *)

type order =
  | Doc  (** ascending document order *)
  | Rev_doc  (** descending document order (reverse-axis proximity) *)
  | Unordered  (** no order proven *)

type props = {
  order : order;
  distinct : bool;
  no_nesting : bool;
  card_max : int option;  (** result-set upper bound; [None] = unbounded *)
}

type severity = Info | Warning | Error

type diagnostic = {
  severity : severity;
  code : string;  (** stable slug, e.g. ["empty-step"], ["malformed"] *)
  op_id : int;
  op_label : string;  (** {!Plan.kind_to_string} of the operator *)
  message : string;
}

type t = {
  props : (int, props) Hashtbl.t;  (** operator id → inferred stream properties *)
  diagnostics : diagnostic list;  (** in plan order, structural first *)
  root_props : props;
}

val analyze :
  ?stats:Cost.statistics_source -> Mass.Store.t -> scope:Flex.t option -> Plan.op -> t
(** Infer properties for every operator of [plan].  [scope] is the
    document key for per-document statistics (as in {!Cost.estimate});
    [stats] defaults to {!Cost.live_statistics}. *)

val analyze_with : Cost.statistics_source -> scope:Flex.t option -> Plan.op -> t

val statically_empty : t -> bool
(** The root's [card_max] is [Some 0]: the plan provably returns no
    tuples on the analyzed store, so the engine may skip execution. *)

val props_of : t -> Plan.op -> props option
val errors : t -> diagnostic list
(** [Error]-severity diagnostics only. *)

(** {1 Rewrite admission}

    A rewrite rule must preserve plan semantics, not just improve cost.
    The analyzer condenses the semantic content of a plan into a
    signature with three components: static emptiness, a description of
    the node population the plan can emit, and the fingerprints of all
    position-sensitive predicates together with the step that streams
    their candidates.  Legitimate rules keep all three stable (the node
    description may only narrow); an order-breaking rule — e.g. one
    that re-streams a positional predicate's candidates on a different
    axis — perturbs the fingerprint list and is rejected. *)

type node_desc = {
  kinds : Mass.Record.kind list;  (** possible node kinds, ⊆ over-approximation *)
  name : string option;  (** [Some n] if every emitted node is named [n] *)
}

type signature = {
  sig_empty : bool;
  sig_desc : node_desc;
  sig_positional : string list;  (** sorted fingerprints of position-sensitive predicates *)
}

val signature_of : t -> Plan.op -> signature

val check_rewrite :
  before:signature -> after:signature -> after_errors:diagnostic list ->
  (unit, string) result
(** [Ok ()] iff the rewritten plan is admissible: no [Error]-severity
    diagnostics, equal static emptiness, node description narrowed or
    equal, positional fingerprints unchanged. *)

(** {1 Structural well-formedness}

    Checks that need no statistics: nested [R] operators, predicates on
    [R] (the executor ignores them), non-comparison [β] conditions (the
    executor raises on those), value steps sourced from node tests that
    can never hold a value.  Used by the executor's strict debug gate
    before instantiating a plan. *)

val structural_diagnostics : Plan.op -> diagnostic list

exception Ill_formed of string
(** Raised by {!assert_well_formed} on a structural [Error]. *)

exception Property_violation of string
(** Raised by the optimizer (under {!with_strict}) when an admissible-cost
    rewrite fails {!check_rewrite}. *)

val assert_well_formed : Plan.op -> unit

val with_strict : (unit -> 'a) -> 'a
(** Run [f] with strict mode on, restoring the previous setting on exit
    (normal or exceptional — [Fun.protect]).  While active, {!Exec.build}
    validates plan structure before opening it and the optimizer
    escalates property violations from rejection to
    {!Property_violation}.  Scoped activation cannot leak across test
    cases or prover runs the way flipping the raw flag could. *)

val strict_enabled : unit -> bool
(** Whether strict mode is currently active. *)

(** {1 Rendering} *)

val severity_to_string : severity -> string
val props_to_string : props -> string
(** e.g. ["{doc-order, distinct, disjoint, card≤42}"]. *)

val diagnostic_to_string : diagnostic -> string

val pp_annotated : ?costed:Cost.costed -> t -> Format.formatter -> Plan.op -> unit
(** Plan tree annotated with inferred properties and, when [costed] is
    given, the COUNT/IN/OUT estimates beside them. *)

val to_json : t -> Plan.op -> Profile.Json.t
(** Self-contained JSON: root properties, per-operator properties,
    diagnostics, the static-emptiness verdict. *)
