(** Pipelined, iterative plan execution (paper §VII, Algorithms 1 and 2).

    Every operator is a demand-driven iterator in one of the paper's three
    states — INITIAL, FETCHING, OUT_OF_TUPLES.  Tuples are FLEX keys; only
    predicates and result materialization touch node records.  Leaf
    operators on the context path stream from MASS cursors rooted at the
    initial context; predicate sub-plans are re-rooted at each candidate
    tuple ({e dynamic setting of context}, §V-B). *)

type iterator

val state : iterator -> [ `Initial | `Fetching | `Out_of_tuples ]

val next : iterator -> Flex.t option
(** Pull the next tuple. *)

val reset : iterator -> Flex.t -> unit
(** Re-root the iterator's leaf context and return it to INITIAL. *)

val build : ?profile:Profile.ctx -> Mass.Store.t -> context:Flex.t -> Plan.op -> iterator
(** Instantiate a plan over a store with the given initial context
    (normally a document key).  When [profile] is given every operator
    (context chain and predicate sub-plans alike) records its actuals —
    tuples, [next]/[reset] calls, cursor openings, state transitions,
    exclusive wall time and page-read deltas — into the context; without
    it, iterators carry no profiling structures and the hot path is
    unchanged.

    Under {!Analysis.with_strict} the plan's structure is validated once at
    the root before any iterator is instantiated; a malformed plan
    raises {!Analysis.Ill_formed} instead of failing mid-stream. *)

val run : ?profile:Profile.ctx -> Mass.Store.t -> context:Flex.t -> Plan.op -> Flex.t list
(** Execute to exhaustion; result in document order, duplicate-free (the
    node-{e set} semantics of XPath). *)

val run_raw : ?profile:Profile.ctx -> Mass.Store.t -> context:Flex.t -> Plan.op -> Flex.t list
(** Execute without the final sort/deduplication — the raw tuple stream,
    exposing duplicate work that rewrites like the paper's Q2
    duplicate-elimination remove. *)
