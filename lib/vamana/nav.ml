include Mass.Nav
