(** Small-scope bounded soundness prover.

    The small-scope hypothesis: a buggy rewrite rule, property analyzer
    or cost model almost always fails on {e some} tiny instance — so
    exhaustively checking every XML document and every query plan within
    small bounds is a practical soundness proof for the bounded domain,
    and a far denser net than sampled differential testing.

    The prover enumerates all documents up to configurable bounds
    (element depth, fanout, tag alphabet, optional text values), loads
    each into an in-memory {!Mass.Store}, enumerates XPath location
    paths up to a bounded step count over all 13 axes with
    exist/value/position predicates, and checks three invariant families
    on every (document, plan) pair:

    - {b rule soundness}: every rule in {!Rewrite.all_rules}, applied at
      {e every} site where it fires ({!Rewrite.applications}), must
      produce a plan whose executed node set equals the original's, and
      the rewrite must pass {!Analysis.check_rewrite};
    - {b analysis soundness}: every {!Analysis.props_of} claim
      (ordering, distinctness, cardinality bound, static emptiness) is
      validated against the raw {!Exec} stream of the operator's
      sub-plan, and every exact {!Xpath.Typecheck} step bound against
      the executed chain and {!Engine.eval};
    - {b cost-model invariants}: {!Cost.estimate_with} never produces
      negative or NaN figures, a synopsis [chain_out] count claimed
      exact equals the profiled actual raw tuple count, and no
      cost-admitted rewrite whose totals were claimed exact raises the
      actual executed total.

    A fourth family sweeps (document, plan, {e update}) triples at its
    own committed {!interference_bounds}:

    - {b interference}: apply each bounded store update (child insert
      over the tag alphabet, text- and attribute-carrying inserts,
      subtree delete, at every element position) to a fresh copy of the
      document and re-run the plan — whenever the result changes, the
      update's {!Mass.Store.write_delta} must intersect the plan's
      {!Footprint}.  A violation is exactly the case where
      footprint-based result-cache invalidation would serve a stale
      answer.

    On failure the prover shrinks the (document, query) pair — dropping
    document subtrees, truncating plan steps, shrinking the tag
    alphabet — to a minimal counterexample and renders it as a
    replayable S-expression ([vamana prove --replay]).

    The prover is itself proved by mutation testing: {!mutants} is a
    library of deliberately unsound rules/analyzers/statistics sources,
    each of which {!prove} must catch and shrink. *)

type bounds = {
  depth : int;  (** maximum element nesting depth (root element = 1) *)
  fanout : int;  (** maximum children per element *)
  tags : int;  (** tag alphabet size, names [a], [b], ... *)
  texts : int;  (** text-value domain size, values [x], [y], ... (0 = no text, no attributes) *)
  max_nodes : int;  (** per-document node budget (elements + texts + attributes) *)
  steps : int;  (** maximum location-path step count *)
}

val default_bounds : bounds
(** The committed CI configuration: exhaustive and still fast (see
    EXPERIMENTS.md for the measured pair count / wall time). *)

val ci_random_bounds : bounds
(** Bounds of the randomized layer run in CI on top of the exhaustive
    sweep: deeper documents and longer plans than the exhaustive net. *)

val ci_random_cases : int
val ci_seed : int

val interference_bounds : bounds
(** Committed bounds of the (document, plan, update) interference
    sweep.  The triple domain multiplies documents × plans × updates,
    so it is tighter than the pair sweep — single-step queries still
    cover all 13 axes and the whole predicate menu.  {!prove} always
    runs this family at these bounds, regardless of the pair bounds it
    was given. *)

(** {1 Verdicts} *)

type family = Rule_soundness | Analysis_soundness | Cost_invariants | Interference

val family_to_string : family -> string

val family_of_string : string -> family option
(** Inverse of {!family_to_string}; [None] for unknown slugs. *)

type counterexample = {
  cx_family : family;
  cx_check : string;  (** stable slug, e.g. ["rule-node-set"], ["analysis-order"] *)
  cx_rule : string option;  (** offending rule, for rule-soundness findings *)
  cx_doc : string;  (** minimal document, XML *)
  cx_query : string;  (** minimal query, XPath *)
  cx_detail : string;  (** expected vs observed *)
  cx_shrink_steps : int;  (** accepted shrink iterations (0 = already minimal or unshrunk) *)
  cx_doc_nodes : int;  (** node count of [cx_doc] *)
  cx_query_steps : int;  (** step count of [cx_query] *)
}

type report = {
  rp_subject : string;
  rp_bounds : bounds;
  rp_docs : int;  (** documents enumerated *)
  rp_plans : int;  (** queries enumerated *)
  rp_pairs : int;  (** (document, plan) pairs checked, exhaustive + random *)
  rp_random : int;  (** randomized pairs among [rp_pairs] *)
  rp_seed : int option;  (** seed of the randomized layer, for replay *)
  rp_sites : int;  (** rule application sites exercised *)
  rp_updates : int;  (** store updates applied by the interference sweep *)
  rp_triples : int;  (** (document, plan form, update) interference triples checked *)
  rp_counterexamples : counterexample list;
  rp_wall : float;  (** seconds *)
}

(** {1 Subjects and mutants} *)

type subject
(** What is being verified: a rule library, an analyzer, a statistics
    source and a footprint analysis.  {!real_subject} wires in the
    production implementations; mutant subjects replace one piece with
    a deliberately unsound variant. *)

val real_subject : subject
val subject_name : subject -> string

val subject_expected_check : subject -> string option
(** For a mutant: the check slug its counterexamples must carry. *)

val subject_expected_rule : subject -> string option
(** For a rule mutant: the rule name its counterexamples must carry. *)

val mutants : subject list
(** The seeded-unsoundness catalogue (see DESIGN.md §10): every entry
    must be caught and shrunk by {!prove} at {!default_bounds}. *)

val find_mutant : string -> subject option

(** {1 Enumeration}

    Exposed so tests can assert the committed configuration's coverage
    (pair counts) without re-deriving the combinatorics. *)

val enum_documents : bounds -> Xml.Tree.spec list
(** Every document within bounds: one root element (tag [a]), nesting
    depth ≤ [depth], ≤ [fanout] children per element, ≤ [max_nodes]
    nodes, tags/texts from the bounded alphabets, no adjacent text
    nodes (they would merge on reparse and break replay). *)

val enum_queries : bounds -> Xpath.Ast.path list
(** Every absolute location path within bounds: 1..[steps] steps, the
    final step over all 13 axes with the predicate menu, non-final
    steps over the downward axes. *)

(** {1 Proving} *)

val prove :
  ?subject:subject ->
  ?random:int ->
  ?random_bounds:bounds ->
  ?seed:int ->
  ?max_counterexamples:int ->
  bounds ->
  report
(** Exhaustively check every (document, plan) pair within [bounds],
    plus [random] randomized pairs drawn from [random_bounds] (default
    {!ci_random_bounds}) with the given [seed] (default {!ci_seed}),
    then sweep the interference family over every (document, plan,
    update) triple within {!interference_bounds}.  Stops collecting
    after [max_counterexamples] (default 5) distinct failures; each
    collected counterexample is shrunk to a local minimum.  The prover
    builds its own in-memory store; it never touches caller state. *)

val check_pair :
  ?subject:subject -> doc:string -> query:string -> unit -> counterexample list
(** Replay one (document XML, query) pair through every check — the
    engine behind [vamana prove --replay].  Counterexamples are
    reported unshrunk. *)

val shrink_pair :
  ?subject:subject -> doc:string -> query:string -> unit -> counterexample option
(** Like {!check_pair}, but shrink the failure to a local minimum —
    the entry point external harnesses (the differential test suite)
    use to turn a large failing (document, query) pair into a minimal
    reportable one.  [None] when every check passes. *)

(** {1 Rendering and replay} *)

val counterexample_to_sexp : counterexample -> string
(** Replayable S-expression carrying the document, query, subject and
    verdict. *)

val replay_of_sexp : string -> (string * string * string option, string) result
(** Parse a {!counterexample_to_sexp} rendering (or a hand-written
    [(replay (doc "<xml>") (query "/p") (mutant name)?)] form) into
    (document XML, query, mutant name). *)

val report_to_json : report -> Profile.Json.t
(** Exact-float JSON via {!Profile.Json} — the same writer [vamana
    lint --json] uses. *)

val report_to_string : report -> string
(** Human-readable summary, counterexamples included. *)
