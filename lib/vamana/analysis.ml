(* Static plan analysis: property inference, diagnostics, rewrite
   signatures.  See analysis.mli for the contract; DESIGN.md §5⅞ for the
   lattice and the soundness argument of each transfer function. *)

module Ast = Xpath.Ast
module Store = Mass.Store
module Record = Mass.Record
module Json = Profile.Json

type order = Doc | Rev_doc | Unordered

type props = {
  order : order;
  distinct : bool;
  no_nesting : bool;
  card_max : int option;
}

type severity = Info | Warning | Error

type diagnostic = {
  severity : severity;
  code : string;
  op_id : int;
  op_label : string;
  message : string;
}

type t = {
  props : (int, props) Hashtbl.t;
  diagnostics : diagnostic list;
  root_props : props;
}

exception Ill_formed of string
exception Property_violation of string

(* Strict-mode state is private: the only way to enable it is the
   scoped [with_strict], so it cannot leak across test cases. *)
let strict_state = ref false
let strict_enabled () = !strict_state

let with_strict f =
  let saved = !strict_state in
  strict_state := true;
  Fun.protect ~finally:(fun () -> strict_state := saved) f

(* The stream a chain leaf pulls from: the single engine context tuple.
   Predicate sub-plans likewise re-root at one candidate at a time. *)
let context_stream = { order = Doc; distinct = true; no_nesting = true; card_max = Some 1 }

(* An empty stream trivially has every property. *)
let empty_stream = { order = Doc; distinct = true; no_nesting = true; card_max = Some 0 }

let is_empty p = p.card_max = Some 0

(* A stream of at most one key, each key appearing once. *)
let single p = p.distinct && (match p.card_max with Some n -> n <= 1 | None -> false)

type env = {
  stats : Cost.statistics_source;
  scope : Flex.t option;
  tbl : (int, props) Hashtbl.t;
  mutable diags : diagnostic list;  (* reverse order *)
}

let diag env severity code (op : Plan.op) message =
  env.diags <-
    { severity; code; op_id = op.Plan.id; op_label = Plan.kind_to_string op; message }
    :: env.diags

(* COUNT for a step, matching the cost model's principal-kind choice. *)
let count_for env axis test =
  let principal = if axis = Ast.Attribute then Record.Attribute else Record.Element in
  env.stats.Cost.node_count ~scope:env.scope ~principal test

(* ------------------------------------------------------------------ *)
(* Constant folding for β operands                                     *)

let num_cmp (cmp : Ast.binop) a b =
  match cmp with
  | Ast.Eq -> a = b
  | Ast.Neq -> a <> b
  | Ast.Lt -> a < b
  | Ast.Le -> a <= b
  | Ast.Gt -> a > b
  | Ast.Ge -> a >= b
  | _ -> false

let is_comparison (cmp : Ast.binop) =
  match cmp with
  | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> true
  | _ -> false

let operand_const (o : Plan.operand) =
  match o with
  | Plan.Literal (_, s) -> Some (`Str s)
  | Plan.Number_operand n -> Some (`Num n)
  | Plan.Path_operand _ -> None

let to_num = function
  | `Num n -> n
  | `Str s -> ( match float_of_string_opt (String.trim s) with Some n -> n | None -> Float.nan)

(* XPath 1.0 comparison of two constants. *)
let const_cmp cmp a b =
  match (cmp, a, b) with
  | (Ast.Eq, `Str x, `Str y) -> String.equal x y
  | (Ast.Neq, `Str x, `Str y) -> not (String.equal x y)
  | _ -> num_cmp cmp (to_num a) (to_num b)

(* ------------------------------------------------------------------ *)
(* Node descriptions                                                   *)

(* Fixed kind order so descriptions compare structurally. *)
let kind_rank = function
  | Record.Document -> 0
  | Record.Element -> 1
  | Record.Attribute -> 2
  | Record.Text -> 3
  | Record.Comment -> 4
  | Record.Pi -> 5

let norm_kinds ks = List.sort_uniq (fun a b -> compare (kind_rank a) (kind_rank b)) ks

type node_desc = { kinds : Record.kind list; name : string option }

let desc_of_test axis (test : Ast.node_test) =
  if axis = Ast.Attribute then
    match test with
    | Ast.Name_test n -> { kinds = [ Record.Attribute ]; name = Some n }
    | Ast.Wildcard | Ast.Node_test -> { kinds = [ Record.Attribute ]; name = None }
    | Ast.Text_test | Ast.Comment_test | Ast.Pi_test _ -> { kinds = []; name = None }
  else
    match test with
    | Ast.Name_test n -> { kinds = [ Record.Element ]; name = Some n }
    | Ast.Wildcard -> { kinds = [ Record.Element ]; name = None }
    | Ast.Text_test -> { kinds = [ Record.Text ]; name = None }
    | Ast.Comment_test -> { kinds = [ Record.Comment ]; name = None }
    | Ast.Pi_test _ -> { kinds = [ Record.Pi ]; name = None }
    | Ast.Node_test ->
        let ks =
          match axis with
          | Ast.Ancestor | Ast.Ancestor_or_self | Ast.Parent ->
              (* upward axes can reach the document node *)
              [ Record.Document; Record.Element; Record.Text; Record.Comment; Record.Pi ]
          | _ -> [ Record.Element; Record.Text; Record.Comment; Record.Pi ]
        in
        { kinds = norm_kinds ks; name = None }

(* A predicate that can only hold on a node with children (the sub-path
   starts with child:: or descendant::) or with attributes: every
   comparison β is existential, so an empty sub-path falsifies it.  Not
   is excluded (it inverts the requirement); Or requires both arms. *)
let rec pred_narrows (p : Plan.pred) =
  let of_sub (sub : Plan.op) =
    match (Plan.leaf sub).Plan.kind with
    | Plan.Step ((Ast.Child | Ast.Descendant), _) -> Some `Children
    | Plan.Step (Ast.Attribute, _) -> Some `Attrs
    | _ -> None
  in
  match p with
  | Plan.Exists sub
  | Plan.Binary (_, _, Plan.Path_operand sub, _)
  | Plan.Binary (_, _, _, Plan.Path_operand sub) ->
      of_sub sub
  | Plan.And (a, b) -> ( match pred_narrows a with Some _ as r -> r | None -> pred_narrows b)
  | Plan.Or (a, b) -> (
      match (pred_narrows a, pred_narrows b) with
      | Some `Attrs, Some _ | Some _, Some `Attrs -> Some `Attrs
      | Some `Children, Some `Children -> Some `Children
      | _ -> None)
  | Plan.Not _ | Plan.Binary _ | Plan.Position _ | Plan.Generic _ -> None

(* Only documents and elements have children; only elements have
   attributes. *)
let refine_desc_by_preds (op : Plan.op) desc =
  List.fold_left
    (fun d p ->
      match pred_narrows p with
      | Some `Children ->
          { d with
            kinds = List.filter (fun k -> k = Record.Document || k = Record.Element) d.kinds }
      | Some `Attrs -> { d with kinds = List.filter (fun k -> k = Record.Element) d.kinds }
      | None -> d)
    desc op.Plan.predicates

(* Description of the nodes an operator can emit (the operator is the
   chain top of its sub-plan). *)
let rec desc_of (op : Plan.op) = refine_desc_by_preds op (desc_of_kind op)

and desc_of_kind (op : Plan.op) =
  match op.Plan.kind with
  | Plan.Root -> (
      match op.Plan.context with
      | Some c -> desc_of c
      | None -> { kinds = []; name = None })
  | Plan.Step (axis, test) -> (
      match axis with
      | Ast.Self -> (
          (* self narrows the input description by the test *)
          let input =
            match op.Plan.context with
            | Some c -> desc_of c
            | None ->
                { kinds = norm_kinds [ Record.Document; Record.Element; Record.Attribute;
                                       Record.Text; Record.Comment; Record.Pi ];
                  name = None }
          in
          let test_desc = desc_of_test axis test in
          match test with
          | Ast.Node_test -> input
          | _ ->
              { kinds = List.filter (fun k -> List.mem k input.kinds)
                  (match test_desc.kinds with [] -> input.kinds | ks -> ks);
                name = (match test_desc.name with Some _ as n -> n | None -> input.name) })
      | _ -> desc_of_test axis test)
  | Plan.Step_generic s -> desc_of_test s.Ast.axis s.Ast.test
  | Plan.Value_step (_, source) -> (
      match source with
      | Some (Ast.Name_test n) -> { kinds = [ Record.Attribute ]; name = Some n }
      | Some Ast.Text_test -> { kinds = [ Record.Text ]; name = None }
      | Some _ -> { kinds = []; name = None }
      | None -> { kinds = norm_kinds [ Record.Text; Record.Attribute ]; name = None })

let desc_subset ~sub ~super =
  sub.kinds = []
  || (List.for_all (fun k -> List.mem k super.kinds) sub.kinds
      && (match super.name with
          | None -> true
          | Some n -> ( match sub.name with Some m -> String.equal m n | None -> false)))

(* ------------------------------------------------------------------ *)
(* Structural well-formedness (no statistics needed)                   *)

let structural_diagnostics (plan : Plan.op) =
  let acc = ref [] in
  let add severity code (op : Plan.op) message =
    acc := { severity; code; op_id = op.Plan.id; op_label = Plan.kind_to_string op; message } :: !acc
  in
  let top_id = plan.Plan.id in
  Plan.iter_ops
    (fun op ->
      (match op.Plan.kind with
      | Plan.Root ->
          if op.Plan.id <> top_id then add Error "malformed" op "nested R operator inside a plan";
          if op.Plan.predicates <> [] then
            add Error "malformed" op "R operator carries predicates the executor ignores"
      | Plan.Value_step (_, Some ((Ast.Comment_test | Ast.Pi_test _ | Ast.Node_test) as t)) ->
          add Error "malformed" op
            (Printf.sprintf "value step sourced from %s, which never carries an indexed value"
               (Ast.node_test_to_string t))
      | _ -> ());
      let rec scan (p : Plan.pred) =
        match p with
        | Plan.Binary (bid, cond, _, _) ->
            if not (is_comparison cond) then
              add Error "malformed" op
                (Printf.sprintf "β%d uses non-comparison operator '%s'" bid (Plan.binop_symbol cond))
        | Plan.And (a, b) | Plan.Or (a, b) -> scan a; scan b
        | Plan.Not a -> scan a
        | Plan.Position (cond, _) ->
            if not (is_comparison cond) then
              add Error "malformed" op
                (Printf.sprintf "position predicate uses non-comparison operator '%s'"
                   (Plan.binop_symbol cond))
        | Plan.Exists _ | Plan.Generic _ -> ()
      in
      List.iter scan op.Plan.predicates)
    plan;
  List.rev !acc

let assert_well_formed plan =
  match List.find_opt (fun d -> d.severity = Error) (structural_diagnostics plan) with
  | None -> ()
  | Some d -> raise (Ill_formed (Printf.sprintf "%s: %s" d.op_label d.message))

(* ------------------------------------------------------------------ *)
(* Predicate rendering (diagnostic messages)                           *)

let rec pred_label (p : Plan.pred) =
  match p with
  | Plan.Exists op -> Printf.sprintf "ξ %s" (Plan.kind_to_string (Plan.leaf op))
  | Plan.Binary (_, cond, a, b) ->
      Printf.sprintf "%s %s %s" (operand_label a) (Plan.binop_symbol cond) (operand_label b)
  | Plan.And (a, b) -> Printf.sprintf "(%s and %s)" (pred_label a) (pred_label b)
  | Plan.Or (a, b) -> Printf.sprintf "(%s or %s)" (pred_label a) (pred_label b)
  | Plan.Not a -> Printf.sprintf "not(%s)" (pred_label a)
  | Plan.Position (cond, n) ->
      Printf.sprintf "position() %s %g" (Plan.binop_symbol cond) n
  | Plan.Generic e -> Ast.expr_to_string e

and operand_label (o : Plan.operand) =
  match o with
  | Plan.Path_operand op -> Plan.kind_to_string op
  | Plan.Literal (_, s) -> Printf.sprintf "'%s'" s
  | Plan.Number_operand n -> Printf.sprintf "%g" n

(* ------------------------------------------------------------------ *)
(* Inference                                                           *)

type sat = Unsat | Valid | Unknown

let rec infer env (op : Plan.op) : props =
  let p =
    match op.Plan.kind with
    | Plan.Root -> ( match op.Plan.context with Some c -> infer env c | None -> empty_stream)
    | Plan.Step (axis, test) -> infer_step env op ~axis ~test ~generic:false
    | Plan.Step_generic s -> infer_step env op ~axis:s.Ast.axis ~test:s.Ast.test ~generic:true
    | Plan.Value_step (v, source) -> infer_value env op v source
  in
  (* an empty stream has every property; a ≤1-element duplicate-free
     stream is trivially sorted and non-nesting *)
  let p =
    if is_empty p then empty_stream
    else if single p then { p with order = Doc; no_nesting = true }
    else p
  in
  Hashtbl.replace env.tbl op.Plan.id p;
  p

and input_props env (op : Plan.op) =
  match op.Plan.context with Some c -> infer env c | None -> context_stream

and infer_step env op ~axis ~test ~generic =
  let i = input_props env op in
  let count = count_for env axis test in
  let forward = not (Ast.is_reverse_axis axis) in
  let one = single i in
  (* a per-context stream of leaf-kind nodes can never nest *)
  let leaf_kind_test =
    axis = Ast.Attribute
    || (match test with Ast.Text_test | Ast.Comment_test | Ast.Pi_test _ -> true | _ -> false)
  in
  (* axes whose results stay inside the context node's subtree: distinct
     disjoint inputs in document order yield globally sorted output *)
  let subtree_contained =
    match axis with
    | Ast.Child | Ast.Attribute | Ast.Descendant | Ast.Descendant_or_self | Ast.Self -> true
    | _ -> false
  in
  let order =
    if axis = Ast.Self then i.order
    else if one then
      (* one cursor: forward axes stream document order, reverse axes
         reverse document order; the generic evaluator always sorts *)
      if forward || generic then Doc else Rev_doc
    else if i.order = Doc && i.distinct && i.no_nesting && subtree_contained then Doc
    else Unordered
  in
  let distinct =
    one
    || (i.distinct
        && (match axis with
           | Ast.Self | Ast.Child | Ast.Attribute -> true
           | Ast.Descendant | Ast.Descendant_or_self -> i.no_nesting
           | _ -> false))
  in
  let no_nesting =
    leaf_kind_test
    || (match axis with
       | Ast.Self -> i.no_nesting
       | Ast.Child | Ast.Attribute -> one || i.no_nesting
       | Ast.Parent | Ast.Following_sibling | Ast.Preceding_sibling -> one
       | _ -> false)
  in
  let base_card =
    if is_empty i then Some 0
    else
      match axis with
      | Ast.Namespace -> Some 0
      | Ast.Parent | Ast.Self -> (
          match i.card_max with Some n -> Some (min n count) | None -> Some count)
      | _ -> Some count
  in
  (if axis = Ast.Namespace then
     diag env Info "empty-step" op "namespace axis yields no nodes (the data model carries none)"
   else if count = 0 && not (is_empty i) then
     diag env Warning "empty-step" op
       (Printf.sprintf "no %s::%s nodes in scope (COUNT = 0): step is provably empty"
          (Ast.axis_name axis) (Ast.node_test_to_string test)));
  (* parent:: is excluded: the optimizer introduces it on purpose (value
     index, pushdowns) and it costs one prefix truncation per tuple *)
  (if (not forward) && axis <> Ast.Parent then
     diag env Info "reverse-axis" op
       (Printf.sprintf "reverse axis %s:: survives optimization (streams in reverse document order)"
          (Ast.axis_name axis)));
  (if (not forward)
      && List.exists
           (fun (p : Plan.pred) ->
             match p with Plan.Position _ -> true | _ -> false)
           op.Plan.predicates
   then
     diag env Warning "position-on-reverse-axis" op
       "position() over a reverse axis counts in proximity order (nearest first), which often surprises");
  apply_predicates env op ~count ~input:i
    { order; distinct; no_nesting; card_max = base_card }

and infer_value env op v source =
  let i = input_props env op in
  let tc = env.stats.Cost.value_count ~scope:env.scope v in
  let dead_source =
    match source with
    | Some (Ast.Comment_test | Ast.Pi_test _ | Ast.Node_test) -> true
    | _ -> false
  in
  let base_card = if is_empty i || dead_source then Some 0 else Some tc in
  (if tc = 0 && (not (is_empty i)) && not dead_source then
     diag env Warning "empty-step" op
       (Printf.sprintf "no indexed value equals '%s' (TC = 0): step is provably empty" v));
  (* value cursors scan the value index in document order; disjoint
     distinct sorted contexts keep the merged stream sorted and
     duplicate-free, and value hits are text/attribute leaves *)
  let streamy = single i || (i.order = Doc && i.distinct && i.no_nesting) in
  apply_predicates env op ~count:tc ~input:i
    { order = (if streamy then Doc else Unordered);
      distinct = streamy;
      no_nesting = true;
      card_max = base_card }

(* Fold predicate effects into the operator's properties: an unsatisfiable
   predicate empties the stream; equality predicates tighten card_max. *)
and apply_predicates env op ~count ~input props =
  let card =
    List.fold_left
      (fun card pred ->
        let st = pred_status env ~count pred in
        (match st with
        | Unsat ->
            diag env Warning "dead-predicate" op
              (Printf.sprintf "predicate can never hold: %s" (pred_label pred))
        | Valid ->
            diag env Info "redundant-predicate" op
              (Printf.sprintf "predicate is always true: %s" (pred_label pred))
        | Unknown -> ());
        if st = Unsat then Some 0
        else
          match card with
          | Some 0 -> card
          | _ -> (
              match pred with
              | Plan.Position (Ast.Eq, _) -> (
                  (* at most one hit per distinct context *)
                  match (input.card_max, card) with
                  | Some n, Some c -> Some (min n c)
                  | Some n, None -> Some n
                  | None, c -> c)
              | _ -> (
                  match value_cap env pred with
                  | Some tc -> ( match card with Some c -> Some (min c tc) | None -> Some tc)
                  | None -> card)))
      props.card_max op.Plan.predicates
  in
  { props with card_max = card }

(* TC cap: a depth-1 [text() = 'v'] / [@a = 'v'] predicate bounds the
   result set by the value count (paper Table I case 5). *)
and value_cap env (pred : Plan.pred) =
  match pred with
  | Plan.Binary (_, Ast.Eq, a, b) -> (
      let pick path lit =
        match (path : Plan.op) with
        | { Plan.kind = Plan.Step ((Ast.Child | Ast.Attribute), _); context = None; _ }
          when (desc_of path).kinds <> []
               && List.for_all
                    (fun k -> k = Record.Text || k = Record.Attribute)
                    (desc_of path).kinds ->
            Some (env.stats.Cost.value_count ~scope:env.scope lit)
        | _ -> None
      in
      match (a, b) with
      | (Plan.Path_operand p, Plan.Literal (_, v)) | (Plan.Literal (_, v), Plan.Path_operand p) ->
          pick p v
      | _ -> None)
  | _ -> None

(* Three-valued satisfiability of a predicate over any candidate. *)
and pred_status env ~count (pred : Plan.pred) : sat =
  match pred with
  | Plan.Exists sub ->
      let sp = infer env sub in
      if is_empty sp then Unsat else Unknown
  | Plan.Binary (_, cond, a, b) ->
      analyze_operand env a;
      analyze_operand env b;
      binary_status env cond a b
  | Plan.And (a, b) -> (
      match (pred_status env ~count a, pred_status env ~count b) with
      | Unsat, _ | _, Unsat -> Unsat
      | Valid, Valid -> Valid
      | _ -> Unknown)
  | Plan.Or (a, b) -> (
      match (pred_status env ~count a, pred_status env ~count b) with
      | Valid, _ | _, Valid -> Valid
      | Unsat, Unsat -> Unsat
      | _ -> Unknown)
  | Plan.Not a -> (
      match pred_status env ~count a with
      | Unsat -> Valid
      | Valid -> Unsat
      | Unknown -> Unknown)
  | Plan.Position (cond, n) -> position_status ~count cond n
  | Plan.Generic _ -> Unknown

and analyze_operand env (o : Plan.operand) =
  match o with Plan.Path_operand op -> ignore (infer env op) | _ -> ()

and binary_status env cond a b : sat =
  if not (is_comparison cond) then Unknown
  else
    match (operand_const a, operand_const b) with
    | Some ca, Some cb -> if const_cmp cond ca cb then Valid else Unsat
    | _ -> (
        (* path = literal with TC = 0 is unsatisfiable when the path can
           only yield text/attribute nodes (an element's string-value
           concatenates text, so TC = 0 proves nothing for elements) *)
        let path_lit =
          match (a, b) with
          | (Plan.Path_operand p, (Plan.Literal (_, v))) -> Some (p, v)
          | ((Plan.Literal (_, v)), Plan.Path_operand p) -> Some (p, v)
          | _ -> None
        in
        match (cond, path_lit) with
        | (Ast.Eq, Some (p, v)) ->
            let d = desc_of p in
            if
              d.kinds <> []
              && List.for_all (fun k -> k = Record.Text || k = Record.Attribute) d.kinds
              && env.stats.Cost.value_count ~scope:env.scope v = 0
            then Unsat
            else Unknown
        | _ -> Unknown)

(* position() runs 1..k per context, k bounded by the step's COUNT. *)
and position_status ~count cond n : sat =
  let countf = float_of_int count in
  if Float.is_nan n then if cond = Ast.Neq then Valid else Unsat
  else
    let integral = Float.is_integer n in
    match cond with
    | Ast.Eq -> if (not integral) || n < 1. || n > countf then Unsat else Unknown
    | Ast.Neq -> if (not integral) || n < 1. || n > countf then Valid else Unknown
    | Ast.Lt -> if n <= 1. then Unsat else if n > countf then Valid else Unknown
    | Ast.Le -> if n < 1. then Unsat else if n >= countf then Valid else Unknown
    | Ast.Gt -> if n < 1. then Valid else if n >= countf then Unsat else Unknown
    | Ast.Ge -> if n <= 1. then Valid else if n > countf then Unsat else Unknown
    | _ -> Unknown

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

let analyze_with stats ~scope plan =
  let env = { stats; scope; tbl = Hashtbl.create 16; diags = [] } in
  let root_props = infer env plan in
  { props = env.tbl;
    diagnostics = structural_diagnostics plan @ List.rev env.diags;
    root_props }

let analyze ?stats store ~scope plan =
  let stats = match stats with Some s -> s | None -> Cost.live_statistics store in
  analyze_with stats ~scope plan

let statically_empty t = t.root_props.card_max = Some 0
let props_of t (op : Plan.op) = Hashtbl.find_opt t.props op.Plan.id
let errors t = List.filter (fun d -> d.severity = Error) t.diagnostics

(* ------------------------------------------------------------------ *)
(* Rewrite signatures                                                  *)

type signature = {
  sig_empty : bool;
  sig_desc : node_desc;
  sig_positional : string list;
}

(* Fingerprint every position-sensitive predicate together with the step
   that streams its candidates: "<axis>::<test> [position() = 2]".  A
   rule that re-streams the candidates of a positional predicate on a
   different axis (changing which node is "second") moves a fingerprint
   and is caught by list comparison. *)
let positional_fingerprints plan =
  let acc = ref [] in
  Plan.iter_ops
    (fun op ->
      let carrier =
        match op.Plan.kind with
        | Plan.Step (axis, test) ->
            Printf.sprintf "%s::%s" (Ast.axis_name axis) (Ast.node_test_to_string test)
        | Plan.Value_step (v, _) -> Printf.sprintf "value::'%s'" v
        | Plan.Root -> "R"
        | Plan.Step_generic _ -> "generic"
      in
      (match op.Plan.kind with
      | Plan.Step_generic s ->
          (* generic steps evaluate their own AST predicates; fingerprint
             the whole step so it cannot be silently altered *)
          acc :=
            Printf.sprintf "generic %s::%s%s" (Ast.axis_name s.Ast.axis)
              (Ast.node_test_to_string s.Ast.test)
              (String.concat ""
                 (List.map (fun e -> "[" ^ Ast.expr_to_string e ^ "]") s.Ast.predicates))
            :: !acc
      | _ -> ());
      let rec scan (p : Plan.pred) =
        match p with
        | Plan.Position (cond, n) ->
            acc :=
              Printf.sprintf "%s [position() %s %g]" carrier (Plan.binop_symbol cond) n :: !acc
        | Plan.Generic e ->
            acc := Printf.sprintf "%s [%s]" carrier (Ast.expr_to_string e) :: !acc
        | Plan.And (a, b) | Plan.Or (a, b) -> scan a; scan b
        | Plan.Not a -> scan a
        | Plan.Exists _ | Plan.Binary _ -> ()
      in
      List.iter scan op.Plan.predicates)
    plan;
  List.sort String.compare !acc

let signature_of t plan =
  { sig_empty = statically_empty t;
    sig_desc = desc_of plan;
    sig_positional = positional_fingerprints plan }

let check_rewrite ~before ~after ~after_errors =
  match List.find_opt (fun d -> d.severity = Error) after_errors with
  | Some d -> Result.Error (Printf.sprintf "rewritten plan is ill-formed: %s" d.message)
  | None ->
      if before.sig_empty <> after.sig_empty then
        Result.Error
          (Printf.sprintf "static emptiness changed (%b before, %b after)" before.sig_empty
             after.sig_empty)
      else if not (desc_subset ~sub:after.sig_desc ~super:before.sig_desc) then
        Result.Error "rewritten plan may emit nodes outside the original result description"
      else if not (List.equal String.equal before.sig_positional after.sig_positional) then
        Result.Error "a position-sensitive predicate was moved or its candidate stream changed"
      else Ok ()

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let severity_to_string = function Info -> "info" | Warning -> "warning" | Error -> "error"
let order_to_string = function Doc -> "doc-order" | Rev_doc -> "reverse-order" | Unordered -> "unordered"

let props_to_string p =
  Printf.sprintf "{%s, %s, %s, card%s}" (order_to_string p.order)
    (if p.distinct then "distinct" else "dups?")
    (if p.no_nesting then "disjoint" else "nesting?")
    (match p.card_max with Some n -> Printf.sprintf "≤%d" n | None -> " unbounded")

let diagnostic_to_string d =
  Printf.sprintf "%s [%s] %s: %s" (severity_to_string d.severity) d.code d.op_label d.message

let pp_annotated ?costed t ppf plan =
  let cost_annot (op : Plan.op) =
    match costed with
    | None -> ""
    | Some c -> (
        match Hashtbl.find_opt c op.Plan.id with
        | None -> ""
        | Some (s : Cost.stats) ->
            let tc = match s.Cost.tc with Some n -> Printf.sprintf " TC=%d" n | None -> "" in
            Printf.sprintf "  {COUNT=%d%s IN=%d OUT=%d}" s.Cost.count tc s.Cost.input s.Cost.output)
  in
  let props_annot (op : Plan.op) =
    match Hashtbl.find_opt t.props op.Plan.id with
    | None -> ""
    | Some p -> "  " ^ props_to_string p
  in
  let line indent text = Format.fprintf ppf "%s%s@." (String.make indent ' ') text in
  let rec pp_op indent (op : Plan.op) =
    line indent (Plan.kind_to_string op ^ props_annot op ^ cost_annot op);
    List.iter (pp_pred (indent + 2)) op.Plan.predicates;
    match op.Plan.context with Some c -> pp_op (indent + 2) c | None -> ()
  and pp_pred indent (p : Plan.pred) =
    match p with
    | Plan.Exists op ->
        line indent "ξ";
        pp_op (indent + 2) op
    | Plan.Binary (bid, cond, a, b) ->
        line indent (Printf.sprintf "β%d %s" bid (Plan.binop_symbol cond));
        pp_operand (indent + 2) a;
        pp_operand (indent + 2) b
    | Plan.And (a, b) ->
        line indent "and";
        pp_pred (indent + 2) a;
        pp_pred (indent + 2) b
    | Plan.Or (a, b) ->
        line indent "or";
        pp_pred (indent + 2) a;
        pp_pred (indent + 2) b
    | Plan.Not a ->
        line indent "not";
        pp_pred (indent + 2) a
    | Plan.Position (cond, n) ->
        line indent (Printf.sprintf "position() %s %g" (Plan.binop_symbol cond) n)
    | Plan.Generic e -> line indent (Printf.sprintf "generic [%s]" (Ast.expr_to_string e))
  and pp_operand indent (o : Plan.operand) =
    match o with
    | Plan.Path_operand op -> pp_op indent op
    | Plan.Literal (lid, s) -> line indent (Printf.sprintf "L%d '%s'" lid s)
    | Plan.Number_operand n -> line indent (Printf.sprintf "%g" n)
  in
  pp_op 0 plan

let props_json p =
  Json.Obj
    [ ("order", Json.Str (order_to_string p.order));
      ("distinct", Json.Bool p.distinct);
      ("no_nesting", Json.Bool p.no_nesting);
      ("card_max", match p.card_max with Some n -> Json.Int n | None -> Json.Null) ]

let diagnostic_json d =
  Json.Obj
    [ ("severity", Json.Str (severity_to_string d.severity));
      ("code", Json.Str d.code);
      ("op", Json.Str d.op_label);
      ("message", Json.Str d.message) ]

let to_json t plan =
  let operators =
    List.filter_map
      (fun (op : Plan.op) ->
        match Hashtbl.find_opt t.props op.Plan.id with
        | None -> None
        | Some p ->
            Some
              (Json.Obj
                 (("id", Json.Int op.Plan.id)
                  :: ("op", Json.Str (Plan.kind_to_string op))
                  :: (match props_json p with Json.Obj fields -> fields | _ -> []))))
      (Plan.subtree_ops plan)
  in
  Json.Obj
    [ ("statically_empty", Json.Bool (statically_empty t));
      ("root", props_json t.root_props);
      ("operators", Json.Arr operators);
      ("diagnostics", Json.Arr (List.map diagnostic_json t.diagnostics)) ]
