(** Transformation library (paper §VI): equivalence rules over the
    physical algebra, adapted from the XPath rewriting literature
    [Olteanu et al., "XPath looking forward"].

    Each rule matches a region of the plan's context chain around a target
    operator and returns an equivalent plan.  Equivalence is {e node-set}
    equivalence (pipelines may differ in duplicate multiplicity — the Q2
    duplicate-elimination effect).  Rules carry the structural guards that
    make them exact; the optimizer additionally verifies estimated cost
    before accepting a rewrite. *)

type rule = {
  name : string;
  description : string;
  apply : Plan.op -> target:int -> Plan.op option;
      (** [apply root ~target] — attempt the rewrite around the context-
          chain operator with id [target]; [None] if the pattern does not
          match there. *)
}

val self_merge : rule
(** […/axis::t1/self::t2 ⇒ …/axis::(t1 ∩ t2)] — clean-up of self steps
    (paper Figure 5). *)

val descendant_merge : rule
(** [descendant-or-self::node()/child::t ⇒ descendant::t] — the classic
    [//] contraction. *)

val parent_elim : rule
(** [child::A/parent::B ⇒ self::B［child::A］] and
    [descendant::A/parent::B ⇒ descendant-or-self::B［child::A］]
    (paper Figure 8) — reverse-axis elimination. *)

val ancestor_pushdown : rule
(** [X/child::A/ancestor::B ⇒ X［child::A］/ancestor::B] when the tests of
    X and B are disjoint (paper §VIII Q2 — duplicate elimination), with a
    leaf variant [descendant::A/ancestor::B ⇒ descendant::B［descendant::A］]. *)

val child_pushdown : rule
(** [descendant::B/child::A ⇒ descendant::A［parent::B］] when the outer
    context cannot match B (paper Figure 11) — pushes a selective step
    down to the index. *)

val value_index : rule
(** [descendant::n［text() = 'v'］ ⇒ value::'v'/parent::n] and the
    attribute-value variant (paper Figure 9) — turns a value comparison
    into a value-index location step. *)

val cleanup_rules : rule list
(** Always-beneficial normalizations ({!self_merge}, {!descendant_merge})
    applied to fixpoint before costing. *)

val cost_rules : rule list
(** The cost-gated transformations, tried in library order. *)

val apply_cleanup : Plan.op -> Plan.op
(** Apply {!cleanup_rules} to fixpoint over the whole context chain. *)

val all_rules : rule list
(** [cleanup_rules @ cost_rules] — the whole library, for exhaustive
    verification sweeps. *)

val applications : rule -> Plan.op -> (int * Plan.op) list
(** Every site on [root]'s context chain where [rule] fires, as
    [(target id, rewritten plan)] pairs in root-first chain order.  The
    bounded-verification layer ({!Smallcheck}) uses this to check a rule
    at {e every} application site, not just the one the optimizer would
    pick. *)
