(** VAMANA physical algebra (paper §V).

    A query plan is a tree of operators.  Every operator has at most one
    {e context child} — the operator it pulls context tuples from — and a
    list of {e predicate operators} filtering its output.  The plan root
    is the paper's [R] operator; its context chain runs down to the leaf
    step, which streams tuples straight from the MASS index.

    Plans are immutable values: the optimizer rewrites by rebuilding, and
    cost annotations live in a side table keyed by operator id. *)

type op = {
  id : int;
  kind : kind;
  context : op option;  (** context child *)
  predicates : pred list;
}

and kind =
  | Root  (** [R] — returns every tuple of its context child *)
  | Step of Xpath.Ast.axis * Xpath.Ast.node_test  (** [Φ axis::test] *)
  | Value_step of string * Xpath.Ast.node_test option
      (** [Φ value::'v'] — value-index location step introduced by the
          optimizer; the optional node test restricts the {e source} node
          (e.g. [text()] or an attribute name) and requires a record
          fetch per hit. *)
  | Step_generic of Xpath.Ast.step
      (** Escape hatch: a location step whose predicates need full XPath
          semantics (e.g. [last()]); executed through the generic
          evaluator per context tuple. *)

and pred =
  | Exists of op  (** [ξ] — path-existence filter; the sub-plan's leaf is re-rooted at each candidate tuple *)
  | Binary of int * Xpath.Ast.binop * operand * operand  (** [β cond] *)
  | And of pred * pred
  | Or of pred * pred
  | Not of pred
  | Position of Xpath.Ast.binop * float
      (** positional filter: [position() cmp n]; a bare numeric predicate
          [[n]] is [(Eq, n)] *)
  | Generic of Xpath.Ast.expr  (** fallback: full evaluator on the candidate *)

and operand =
  | Path_operand of op  (** relative sub-plan; values are the string-values of its tuples *)
  | Literal of int * string  (** [L 'v'] *)
  | Number_operand of float

(** {1 Construction helpers} *)

val fresh_id : unit -> int
(** Process-wide operator id supply (ids only need to be unique within a
    plan; a global counter keeps rewrites collision-free). *)

val mk : ?context:op -> ?predicates:pred list -> kind -> op

(** {1 Traversal} *)

val context_chain : op -> op list
(** Operators from this op down its context chain, root side first
    (paper: the {e context path}). *)

val leaf : op -> op
(** Last operator of the context chain. *)

val rebuild_chain : op list -> op option
(** Inverse of {!context_chain}: re-links a root-side-first operator list
    into a chain (each element keeps its kind/predicates, contexts are
    overwritten). [None] on an empty list. *)

val iter_ops : (op -> unit) -> op -> unit
(** Visit every operator: context chain and predicate sub-plans. *)

val subtree_ops : op -> op list

(** {1 Printing (paper Figure 4 notation)} *)

val kind_to_string : op -> string
(** e.g. ["Φ3 parent::person"], ["R1"], ["β5 ="], ["L7 'Yung Flach'"]. *)

val binop_symbol : Xpath.Ast.binop -> string
(** Display form of a binary operator (["="], ["!="], ["div"], …). *)

val pp : Format.formatter -> op -> unit
(** Indented plan tree. *)

val to_string : op -> string

val equal_structure : op -> op -> bool
(** Structural equality ignoring operator ids. *)
