(** EXPLAIN ANALYZE support: per-operator execution profiling, trace
    spans, and estimate-vs-actual (q-error) reporting.

    A {!ctx} is handed to {!Exec.build} to instrument a pipeline: every
    iterator gets a {!slot} recording tuples produced, [next]/[reset]
    calls, cursor openings, state transitions, wall time {e exclusive of
    children}, and buffer-pool read deltas.  The uninstrumented path pays
    nothing — iterators built without a context carry no profile
    structures at all.

    After execution, {!make} joins the actuals against the cost
    estimator's {!Cost.costed} table to produce an annotated plan tree
    with per-operator q-error (max(est/act, act/est)), renderable as text
    or JSON. *)

(** Minimal self-contained JSON values with exact round-trip
    serialization (floats re-parse to the same value), used for the
    profile/trace output and the benchmark drift files — no external JSON
    dependency. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float  (** non-finite values serialize as [null] *)
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact rendering; object fields keep their given order. *)

  val of_string : string -> (t, string) result
  (** Parse a complete JSON document (the full language: escapes,
      [\uXXXX] decoded to UTF-8, exponents). *)

  val equal : t -> t -> bool

  val member : string -> t -> t option
  (** First field of that name, for [Obj]; [None] otherwise. *)
end

(** {1 Collection} *)

type slot = {
  op_id : int;
  label : string;  (** display form of the operator *)
  mutable tuples : int;  (** tuples produced ([Some] results of [next]) *)
  mutable next_calls : int;
  mutable resets : int;  (** re-rootings (Algorithm 2 dynamic context) *)
  mutable cursor_opens : int;  (** MASS cursors opened *)
  mutable started : int;  (** INITIAL → FETCHING transitions *)
  mutable exhausted : int;  (** transitions into OUT_OF_TUPLES *)
  mutable self_time : float;  (** wall seconds, exclusive of children *)
  mutable self_reads : int;  (** logical page reads, exclusive of children *)
  mutable self_phys : int;  (** physical page reads, exclusive of children *)
}

type ctx

val create : Mass.Store.t -> ctx
(** A collection context over the store whose buffer-pool counters the
    per-operator I/O deltas are read from. *)

val slot : ctx -> op_id:int -> label:string -> slot
(** The slot for a plan operator, created on first request (one slot per
    operator id; rebuilding an iterator reuses its slot). *)

val frame : ctx -> slot -> (unit -> 'a option) -> 'a option
(** Run one [next] call under the slot: counts the call and the produced
    tuple, and attributes elapsed wall time and page reads to the slot
    {e minus} whatever nested frames (child iterators) consumed. *)

val slots : ctx -> slot list
(** All slots, in operator-id order. *)

(** {1 Trace spans} *)

type span = {
  name : string;  (** [parse], [compile], [optimize], [execute] *)
  dur : float;  (** seconds *)
  meta : (string * Json.t) list;
}

val span : ?meta:(string * Json.t) list -> string -> float -> span

(** {1 Reports} *)

type node = {
  id : int;
  label : string;
  est : Cost.stats option;  (** estimator's view, when costed *)
  act : slot option;  (** collected actuals, when the operator ran *)
  q_error : float option;
      (** max(est OUT / actual, actual / est OUT); [1.0] when both are 0,
          [infinity] when exactly one is 0; [None] without an estimate *)
  preds : (string * node) list;  (** predicate sub-plans, labelled *)
  context : node option;
}

type report = {
  plan : node;
  spans : span list;
  total_time : float;  (** execution wall seconds *)
  root_q_error : float;  (** plan-cardinality q-error at the root *)
  max_q_error : float;  (** worst per-operator q-error; [1.0] if no data *)
}

val q_error : est:int -> act:int -> float

val make :
  ctx -> cost:Cost.costed -> ?spans:span list -> total_time:float -> Plan.op -> report
(** Join collected actuals with the cost table over the plan tree. *)

val render_text : report -> string
(** Annotated plan tree (paper Figure 6/7 style plus actuals), followed
    by the span list. *)

val render_json : report -> Json.t

val render_json_string : report -> string
