open Xpath

type rule = {
  name : string;
  description : string;
  apply : Plan.op -> target:int -> Plan.op option;
}

(* ---- chain surgery helpers ----

   Rules work on the leaf-first context chain [s1; …; sn; Root]: an
   operator's context child is the element before it. *)

let leaf_first root = List.rev (Plan.context_chain root)

let rebuild leaf_first_ops =
  match Plan.rebuild_chain (List.rev leaf_first_ops) with
  | Some root -> root
  | None -> invalid_arg "Rewrite: empty chain"

(* Replace the two elements at [i-1, i] with [replacement] (one op). *)
let splice2 ops i replacement =
  List.concat
    (List.mapi
       (fun j op -> if j = i - 1 then [] else if j = i then [ replacement ] else [ op ])
       ops)

(* Replace the element at [i] with [replacements]. *)
let splice1 ops i replacements =
  List.concat (List.mapi (fun j op -> if j = i then replacements else [ op ]) ops)

let find_target ops target =
  let rec go i = function
    | [] -> None
    | (op : Plan.op) :: _ when op.id = target -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 ops

(* ---- node-test reasoning ---- *)

let intersect_tests (t1 : Ast.node_test) (t2 : Ast.node_test) =
  match (t1, t2) with
  | Ast.Node_test, t | t, Ast.Node_test -> Some t
  | Ast.Name_test a, Ast.Name_test b -> if String.equal a b then Some t1 else None
  | Ast.Name_test _, Ast.Wildcard -> Some t1
  | Ast.Wildcard, Ast.Name_test _ -> Some t2
  | Ast.Wildcard, Ast.Wildcard -> Some Ast.Wildcard
  | Ast.Text_test, Ast.Text_test -> Some Ast.Text_test
  | Ast.Comment_test, Ast.Comment_test -> Some Ast.Comment_test
  | Ast.Pi_test a, Ast.Pi_test b -> (
      match (a, b) with
      | None, x | x, None -> Some (Ast.Pi_test x)
      | Some x, Some y -> if String.equal x y then Some t1 else None)
  | _ -> None

(* Can a node matching [feeder] (as the principal element kind) also match
   [t]?  Used to guard rewrites that would otherwise re-admit the context
   node itself. *)
let tests_disjoint (feeder : Ast.node_test) (t : Ast.node_test) =
  match (feeder, t) with
  | Ast.Name_test a, Ast.Name_test b -> not (String.equal a b)
  | (Ast.Text_test | Ast.Comment_test | Ast.Pi_test _), (Ast.Name_test _ | Ast.Wildcard) -> true
  | (Ast.Name_test _ | Ast.Wildcard), (Ast.Text_test | Ast.Comment_test | Ast.Pi_test _) -> true
  | _ -> false

(* The context that feeds the chain element at index [i]: either the
   previous operator's node test, or — for the chain leaf — the engine
   context, which is always a document record in this engine. *)
let feeder_cannot_match ops i (t : Ast.node_test) =
  if i = 0 then
    (* leaf context = document record: only node() selects it *)
    (match t with Ast.Node_test -> false | _ -> true)
  else
    match (List.nth ops (i - 1) : Plan.op).kind with
    | Plan.Step (_, feeder) | Plan.Step_generic { Ast.test = feeder; _ } ->
        tests_disjoint feeder t
    | Plan.Value_step _ -> true (* text/attribute nodes are never elements *)
    | Plan.Root -> false

(* ---- the rules ---- *)

(* Positional predicates ([n], position(), and any Generic expression,
   which may hide position()/last()) are not stable under relocation to a
   different tuple stream; every rule that moves or re-streams predicates
   requires them to be positional-free. *)
let rec positional_free (p : Plan.pred) =
  match p with
  | Plan.Position _ | Plan.Generic _ -> false
  | Plan.And (a, b) | Plan.Or (a, b) -> positional_free a && positional_free b
  | Plan.Not a -> positional_free a
  | Plan.Exists _ | Plan.Binary _ -> true

let positional_free_list preds = List.for_all positional_free preds



let self_merge =
  let apply root ~target =
    let ops = leaf_first root in
    match find_target ops target with
    | Some i when i > 0 -> (
        match ((List.nth ops i).kind, (List.nth ops (i - 1) : Plan.op)) with
        | Plan.Step (Ast.Self, t2), ({ kind = Plan.Step (axis, t1); _ } as below) -> (
            match intersect_tests t1 t2 with
            (* narrowing the lower test changes the candidate stream its
               own positional predicates count over: *[2]/self::b is the
               2nd child if it is a b, not the 2nd b *)
            | Some merged
              when positional_free_list (List.nth ops i).Plan.predicates
                   && (merged = t1 || positional_free_list below.Plan.predicates) ->
                let x = List.nth ops i in
                let replacement =
                  { below with
                    Plan.kind = Plan.Step (axis, merged);
                    predicates = below.Plan.predicates @ x.Plan.predicates }
                in
                Some (rebuild (splice2 ops i replacement))
            | Some _ | None -> None)
        | _ -> None)
    | _ -> None
  in
  { name = "self-merge";
    description = "merge a self:: step into the step below it (Fig. 5)";
    apply }

let descendant_merge =
  let apply root ~target =
    let ops = leaf_first root in
    match find_target ops target with
    | Some i when i > 0 -> (
        match ((List.nth ops i).kind, (List.nth ops (i - 1) : Plan.op)) with
        | ( Plan.Step (Ast.Child, t),
            { kind = Plan.Step (Ast.Descendant_or_self, Ast.Node_test); predicates = []; _ } )
          when positional_free_list (List.nth ops i).Plan.predicates ->
            let x = List.nth ops i in
            let replacement =
              Plan.mk ~predicates:x.Plan.predicates (Plan.Step (Ast.Descendant, t))
            in
            Some (rebuild (splice2 ops i replacement))
        | _ -> None)
    | _ -> None
  in
  { name = "descendant-merge";
    description = "descendant-or-self::node()/child::t => descendant::t";
    apply }

let parent_elim =
  let apply root ~target =
    let ops = leaf_first root in
    match find_target ops target with
    | Some i when i > 0 -> (
        match ((List.nth ops i).kind, (List.nth ops (i - 1) : Plan.op)) with
        | Plan.Step (Ast.Parent, tb), { kind = Plan.Step (axa, ta); predicates = preds_a; _ }
          when (axa = Ast.Child || axa = Ast.Descendant)
               && positional_free_list preds_a
               && positional_free_list (List.nth ops i).Plan.predicates ->
            let x = List.nth ops i in
            let new_axis = if axa = Ast.Child then Ast.Self else Ast.Descendant_or_self in
            let exists_sub = Plan.mk ~predicates:preds_a (Plan.Step (Ast.Child, ta)) in
            let replacement =
              Plan.mk
                ~predicates:(x.Plan.predicates @ [ Plan.Exists exists_sub ])
                (Plan.Step (new_axis, tb))
            in
            Some (rebuild (splice2 ops i replacement))
        | _ -> None)
    | _ -> None
  in
  { name = "parent-elim";
    description = "descendant::A/parent::B => descendant-or-self::B[child::A] (Fig. 8)";
    apply }

let ancestor_pushdown =
  let apply root ~target =
    let ops = leaf_first root in
    match find_target ops target with
    | Some i when i > 0 -> (
        let x = List.nth ops i in
        let below = (List.nth ops (i - 1) : Plan.op) in
        match (x.Plan.kind, below.kind) with
        | Plan.Step (Ast.Ancestor, tb), Plan.Step (Ast.Child, ta)
          when i >= 2 && tb <> Ast.Node_test
               && positional_free_list below.Plan.predicates
               && positional_free_list x.Plan.predicates ->
            (* X/child::A/ancestor::B => X[child::A]/ancestor::B, guarded
               so X's nodes can never be B themselves *)
            let feeder = (List.nth ops (i - 2) : Plan.op) in
            let feeder_test =
              match feeder.kind with
              | Plan.Step (_, t) | Plan.Step_generic { Ast.test = t; _ } -> Some t
              | Plan.Value_step _ | Plan.Root -> None
            in
            (match feeder_test with
            | Some ft when tests_disjoint ft tb ->
                let exists_sub =
                  Plan.mk ~predicates:below.Plan.predicates (Plan.Step (Ast.Child, ta))
                in
                let feeder' =
                  { feeder with
                    Plan.predicates = feeder.Plan.predicates @ [ Plan.Exists exists_sub ] }
                in
                (* drop the child::A step, folding it into the feeder *)
                Some (rebuild (splice2 ops (i - 1) feeder'))
            | _ -> None)
        | Plan.Step (Ast.Ancestor, tb), Plan.Step (Ast.Descendant, ta)
          when i = 1 && tb <> Ast.Node_test
               && positional_free_list below.Plan.predicates
               && positional_free_list x.Plan.predicates ->
            (* leaf variant: descendant::A/ancestor::B =>
               descendant::B[descendant::A] (document context) *)
            let exists_sub =
              Plan.mk ~predicates:below.Plan.predicates (Plan.Step (Ast.Descendant, ta))
            in
            let replacement =
              Plan.mk
                ~predicates:(x.Plan.predicates @ [ Plan.Exists exists_sub ])
                (Plan.Step (Ast.Descendant, tb))
            in
            Some (rebuild (splice2 ops i replacement))
        | _ -> None)
    | _ -> None
  in
  { name = "ancestor-pushdown";
    description = "X/child::A/ancestor::B => X[child::A]/ancestor::B (dup-elim, §VIII Q2)";
    apply }

let child_pushdown =
  let apply root ~target =
    let ops = leaf_first root in
    match find_target ops target with
    | Some i when i > 0 -> (
        let x = List.nth ops i in
        let below = (List.nth ops (i - 1) : Plan.op) in
        match (x.Plan.kind, below.kind) with
        | Plan.Step (Ast.Child, ta), Plan.Step ((Ast.Descendant | Ast.Descendant_or_self) as axb, tb)
          when (axb = Ast.Descendant_or_self || feeder_cannot_match ops (i - 1) tb)
               && tb <> Ast.Node_test
               && positional_free_list below.Plan.predicates
               && positional_free_list x.Plan.predicates ->
            let exists_sub =
              Plan.mk ~predicates:below.Plan.predicates (Plan.Step (Ast.Parent, tb))
            in
            let replacement =
              Plan.mk
                ~predicates:(x.Plan.predicates @ [ Plan.Exists exists_sub ])
                (Plan.Step (Ast.Descendant, ta))
            in
            Some (rebuild (splice2 ops i replacement))
        | _ -> None)
    | _ -> None
  in
  { name = "child-pushdown";
    description = "descendant::B/child::A => descendant::A[parent::B] (Fig. 11)";
    apply }

(* match [text() = 'v'] and [@attr = 'v'] predicate shapes *)
let value_predicate_shape (pred : Plan.pred) =
  let operand_source (o : Plan.operand) =
    match o with
    | Plan.Path_operand { kind = Plan.Step (Ast.Child, Ast.Text_test); predicates = []; context = None; _ } ->
        Some Ast.Text_test
    | Plan.Path_operand { kind = Plan.Step (Ast.Attribute, (Ast.Name_test _ as t)); predicates = []; context = None; _ } ->
        Some t
    | _ -> None
  in
  match pred with
  | Plan.Binary (_, Ast.Eq, p, Plan.Literal (_, v)) | Plan.Binary (_, Ast.Eq, Plan.Literal (_, v), p)
    -> (
      match operand_source p with Some src -> Some (src, v) | None -> None)
  | _ -> None

let value_index =
  let apply root ~target =
    let ops = leaf_first root in
    match find_target ops target with
    | Some i -> (
        let x = List.nth ops i in
        match x.Plan.kind with
        | Plan.Step (((Ast.Descendant | Ast.Descendant_or_self) as _axis), (Ast.Name_test _ as tn))
          when feeder_cannot_match ops i tn && positional_free_list x.Plan.predicates -> (
            let rec split seen = function
              | [] -> None
              | p :: rest -> (
                  match value_predicate_shape p with
                  | Some (src, v) -> Some (src, v, List.rev_append seen rest)
                  | None -> split (p :: seen) rest)
            in
            match split [] x.Plan.predicates with
            | Some (src, v, other_preds) ->
                let value_op = Plan.mk (Plan.Value_step (v, Some src)) in
                let parent_op =
                  Plan.mk ~predicates:other_preds (Plan.Step (Ast.Parent, tn))
                in
                Some (rebuild (splice1 ops i [ value_op; parent_op ]))
            | None -> None)
        | _ -> None)
    | None -> None
  in
  { name = "value-index";
    description = "descendant::n[text()='v'] => value::'v'/parent::n (Fig. 9)";
    apply }

let cleanup_rules = [ descendant_merge; self_merge ]
let cost_rules = [ value_index; parent_elim; ancestor_pushdown; child_pushdown ]
let all_rules = cleanup_rules @ cost_rules

let applications rule root =
  List.filter_map
    (fun (op : Plan.op) ->
      match rule.apply root ~target:op.id with
      | Some rewritten -> Some (op.id, rewritten)
      | None -> None)
    (Plan.context_chain root)

let apply_cleanup root =
  let try_rules plan =
    let ids = List.map (fun (op : Plan.op) -> op.id) (Plan.context_chain plan) in
    List.fold_left
      (fun acc target ->
        match acc with
        | Some _ -> acc
        | None ->
            List.fold_left
              (fun acc rule ->
                match acc with Some _ -> acc | None -> rule.apply plan ~target)
              None cleanup_rules)
      None ids
  in
  let rec fix plan n =
    if n = 0 then plan
    else match try_rules plan with Some plan' -> fix plan' (n - 1) | None -> plan
  in
  fix root 32
