(* Small-scope bounded soundness prover: exhaustively enumerate tiny XML
   documents and bounded XPath plans, and check the rewrite library, the
   property analyzer and the cost model against ground truth (the raw
   executor stream and the generic evaluator) on every pair.  See
   smallcheck.mli and DESIGN.md §10. *)

open Xpath
module Store = Mass.Store
module Json = Profile.Json

type bounds = {
  depth : int;
  fanout : int;
  tags : int;
  texts : int;
  max_nodes : int;
  steps : int;
}

(* Committed CI configuration — exhaustive; EXPERIMENTS.md records the
   measured pair count and wall time.  Adjust deliberately: CI enforces
   the minimum pair count. *)
let default_bounds = { depth = 3; fanout = 2; tags = 2; texts = 1; max_nodes = 4; steps = 2 }
let ci_random_bounds = { depth = 5; fanout = 3; tags = 3; texts = 2; max_nodes = 14; steps = 4 }
let ci_random_cases = 500
let ci_seed = 20260808

(* Committed bounds of the (document, plan, update) interference sweep.
   The triple domain multiplies documents × plans × updates, so it is
   kept much tighter than the pair sweep: single-step queries still
   cover all 13 axes and the whole predicate menu, which is where the
   footprint analysis earns its keep.  EXPERIMENTS.md records the
   measured triple count and wall time. *)
let interference_bounds =
  { depth = 2; fanout = 2; tags = 2; texts = 1; max_nodes = 3; steps = 1 }

type family = Rule_soundness | Analysis_soundness | Cost_invariants | Interference

let family_to_string = function
  | Rule_soundness -> "rule-soundness"
  | Analysis_soundness -> "analysis-soundness"
  | Cost_invariants -> "cost-invariants"
  | Interference -> "interference"

let family_of_string = function
  | "rule-soundness" -> Some Rule_soundness
  | "analysis-soundness" -> Some Analysis_soundness
  | "cost-invariants" -> Some Cost_invariants
  | "interference" -> Some Interference
  | _ -> None

type counterexample = {
  cx_family : family;
  cx_check : string;
  cx_rule : string option;
  cx_doc : string;
  cx_query : string;
  cx_detail : string;
  cx_shrink_steps : int;
  cx_doc_nodes : int;
  cx_query_steps : int;
}

type report = {
  rp_subject : string;
  rp_bounds : bounds;
  rp_docs : int;
  rp_plans : int;
  rp_pairs : int;
  rp_random : int;
  rp_seed : int option;
  rp_sites : int;
  rp_updates : int;
  rp_triples : int;
  rp_counterexamples : counterexample list;
  rp_wall : float;
}

(* ---- alphabets ---- *)

let tag_name i = String.make 1 (Char.chr (Char.code 'a' + i))
let text_value i = String.make 1 (Char.chr (Char.code 'x' + i))

let spec_nodes spec =
  let rec go = function
    | Xml.Tree.E (_, attrs, kids) ->
        1 + List.length attrs + List.fold_left (fun a k -> a + go k) 0 kids
    | Xml.Tree.D _ | Xml.Tree.Cm _ | Xml.Tree.Proc _ -> 1
  in
  go spec

(* ---- document enumeration ----

   Every document with one root element, nesting depth ≤ [depth], at most
   [fanout] children per element, tags from the first [tags] letters,
   text values from the first [texts] letters, and at most [max_nodes]
   nodes total.  Adjacent text children are never generated (they would
   merge on XML reparse, breaking counterexample replay).  Elements may
   carry one [id] attribute (first text value) when the text domain is
   non-empty — that is what the value-index rule's attribute variant
   matches.  The root tag is fixed to [a]: queries start at the document
   node, so varying the root tag only rescales the sweep. *)

let enum_documents (b : bounds) : Xml.Tree.spec list =
  let tags = List.init b.tags tag_name in
  let texts = List.init b.texts text_value in
  let attr_opts = if b.texts > 0 then [ []; [ ("id", text_value 0) ] ] else [ [] ] in
  let memo : (int * int, (Xml.Tree.spec * int) list) Hashtbl.t = Hashtbl.create 64 in
  let rec elements ~root depth budget =
    if depth < 1 || budget < 1 then []
    else
      let key = ((if root then -depth else depth), budget) in
      match Hashtbl.find_opt memo key with
      | Some r -> r
      | None ->
          let r =
            List.concat_map
              (fun tag ->
                List.concat_map
                  (fun attrs ->
                    let used = 1 + List.length attrs in
                    if used > budget then []
                    else
                      List.map
                        (fun (kids, ksz) -> (Xml.Tree.E (tag, attrs, kids), used + ksz))
                        (forests ~prev_text:false depth b.fanout (budget - used)))
                  attr_opts)
              (if root then [ tag_name 0 ] else tags)
          in
          Hashtbl.add memo key r;
          r
  and forests ~prev_text depth slots budget =
    ([], 0)
    ::
    (if slots = 0 || budget = 0 then []
     else
       let elem_heads = elements ~root:false (depth - 1) budget in
       let text_heads =
         if prev_text then [] else List.map (fun v -> (Xml.Tree.D v, 1)) texts
       in
       let with_head is_text (head, hsz) =
         List.map
           (fun (rest, rsz) -> (head :: rest, hsz + rsz))
           (forests ~prev_text:is_text depth (slots - 1) (budget - hsz))
       in
       List.concat_map (with_head false) elem_heads
       @ List.concat_map (with_head true) text_heads)
  in
  List.map fst (elements ~root:true b.depth b.max_nodes)

(* ---- query enumeration ----

   Absolute location paths of 1..steps steps.  The final step ranges
   over all 13 axes, element/wildcard/node/text tests, and the predicate
   menu (none, positional [2], existence [a], value [text()='x'],
   attribute-value [@id='x']).  Non-final steps are restricted to the
   downward axes — reverse and lateral axes from the document node are
   almost always empty, so spending the final position on them already
   covers their semantics, and every rewrite-rule pattern in the library
   keys on a downward feeder. *)

let pred_menu (b : bounds) =
  let first_tag = tag_name 0 in
  [ [];
    [ Ast.Number 2. ];
    [ Ast.Path { Ast.absolute = false; steps = [ Ast.step Ast.Child (Ast.Name_test first_tag) ] } ]
  ]
  @
  if b.texts > 0 then
    let v = text_value 0 in
    [ [ Ast.Binop
          ( Ast.Eq,
            Ast.Path { Ast.absolute = false; steps = [ Ast.step Ast.Child Ast.Text_test ] },
            Ast.Literal v ) ];
      [ Ast.Binop
          ( Ast.Eq,
            Ast.Path
              { Ast.absolute = false; steps = [ Ast.step Ast.Attribute (Ast.Name_test "id") ] },
            Ast.Literal v ) ] ]
  else []

let enum_queries (b : bounds) : Ast.path list =
  let names = List.init b.tags (fun i -> Ast.Name_test (tag_name i)) in
  let final_tests = names @ [ Ast.Wildcard; Ast.Node_test; Ast.Text_test ] in
  let inner_tests = names @ [ Ast.Wildcard; Ast.Node_test ] in
  let inner_axes = [ Ast.Child; Ast.Descendant; Ast.Descendant_or_self ] in
  let preds = pred_menu b in
  let finals =
    List.concat_map
      (fun axis ->
        List.concat_map
          (fun test -> List.map (fun p -> Ast.step ~predicates:p axis test) preds)
          final_tests)
      Ast.all_axes
  in
  let inners =
    (* wildcard/node() inner steps also carry a positional predicate:
       a later rule narrowing the test under a [2] changes which node
       is "the 2nd" — the bug class that killed self-merge's original
       guard hides exactly here *)
    List.concat_map
      (fun axis ->
        List.map (Ast.step axis) inner_tests
        @ List.map
            (fun t -> Ast.step ~predicates:[ Ast.Number 2. ] axis t)
            [ Ast.Wildcard; Ast.Node_test ])
      inner_axes
  in
  let rec prefixes k =
    if k <= 0 then [ [] ]
    else
      let shorter = prefixes (k - 1) in
      shorter
      @ List.concat_map
          (fun p -> if List.length p = k - 1 then List.map (fun s -> p @ [ s ]) inners else [])
          shorter
  in
  List.concat_map
    (fun pre -> List.map (fun f -> { Ast.absolute = true; steps = pre @ [ f ] }) finals)
    (prefixes (b.steps - 1))

(* ---- subjects: the real library and the seeded-unsound mutants ---- *)

type subject = {
  sub_name : string;
  sub_desc : string;
  sub_expected_check : string option;
  sub_expected_rule : string option;
  sub_rules : Rewrite.rule list;
  sub_analyze : Store.t -> scope:Flex.t option -> Plan.op -> Analysis.t;
  sub_stats : Store.t -> Cost.statistics_source;
  sub_footprint : Plan.op -> Footprint.t;
}

let subject_name s = s.sub_name
let subject_expected_check s = s.sub_expected_check
let subject_expected_rule s = s.sub_expected_rule

let real_subject =
  { sub_name = "real";
    sub_desc = "production rule library, analyzer, synopsis statistics and footprint analysis";
    sub_expected_check = None;
    sub_expected_rule = None;
    sub_rules = Rewrite.all_rules;
    sub_analyze = (fun store ~scope plan -> Analysis.analyze store ~scope plan);
    sub_stats = Cost.synopsis_statistics;
    sub_footprint = Footprint.of_plan }

(* -- mutant rules -- *)

let chain_leaf_first p = List.rev (Plan.context_chain p)

let rebuild_leaf_first ops =
  match Plan.rebuild_chain (List.rev ops) with Some p -> p | None -> invalid_arg "empty chain"

let rec pred_positional = function
  | Plan.Position _ | Plan.Generic _ -> true
  | Plan.And (a, b) | Plan.Or (a, b) -> pred_positional a || pred_positional b
  | Plan.Not p -> pred_positional p
  | Plan.Exists _ | Plan.Binary _ -> false

(* descendant_merge with its positional-safety guard removed: merging
   [descendant-or-self::node()/child::t[2]] into [descendant::t[2]]
   re-streams the positional candidates on a different axis, changing
   which node is "the 2nd".  Restricted to the positional case the real
   rule refuses, so every firing is unsound. *)
let mutant_positional_merge : Rewrite.rule =
  let apply root ~target =
    let ops = chain_leaf_first root in
    let rec go i = function
      | (below : Plan.op) :: (x : Plan.op) :: _ when x.Plan.id = target -> Some (i, below, x)
      | _ :: rest -> go (i + 1) rest
      | [] -> None
    in
    match go 0 ops with
    | Some (i, below, x) -> (
        match (below.Plan.kind, x.Plan.kind) with
        | Plan.Step (Ast.Descendant_or_self, Ast.Node_test), Plan.Step (Ast.Child, t)
          when below.Plan.predicates = []
               && List.exists pred_positional x.Plan.predicates ->
            let merged = Plan.mk ~predicates:x.Plan.predicates (Plan.Step (Ast.Descendant, t)) in
            let spliced =
              List.concat
                (List.mapi
                   (fun j o -> if j = i then [] else if j = i + 1 then [ merged ] else [ o ])
                   ops)
            in
            Some (rebuild_leaf_first spliced)
        | _ -> None)
    | None -> None
  in
  { Rewrite.name = "mutant-positional-merge";
    description = "descendant merge without the positional-safety guard (unsound)";
    apply }

(* Silently drops a step's predicates — the classic lost-filter rewrite
   bug. *)
let mutant_drop_predicate : Rewrite.rule =
  let apply root ~target =
    let ops = chain_leaf_first root in
    if
      List.exists
        (fun (o : Plan.op) ->
          o.Plan.id = target
          && o.Plan.predicates <> []
          && match o.Plan.kind with Plan.Step _ -> true | _ -> false)
        ops
    then
      Some
        (rebuild_leaf_first
           (List.map
              (fun (o : Plan.op) ->
                if o.Plan.id = target then Plan.mk ~predicates:[] o.Plan.kind else o)
              ops))
    else None
  in
  { Rewrite.name = "mutant-drop-predicate";
    description = "rewrite that silently discards a step's predicates (unsound)";
    apply }

(* -- mutant analyzers: post-process the real analysis -- *)

let mutate_props f store ~scope plan =
  let a = Analysis.analyze store ~scope plan in
  let props = Hashtbl.copy a.Analysis.props in
  Hashtbl.filter_map_inplace (fun _ p -> Some (f p)) props;
  { a with Analysis.props; root_props = f a.Analysis.root_props }

let order_everywhere store ~scope plan =
  mutate_props (fun p -> { p with Analysis.order = Analysis.Doc }) store ~scope plan

let distinct_everywhere store ~scope plan =
  mutate_props (fun p -> { p with Analysis.distinct = true }) store ~scope plan

let card_off_by_one store ~scope plan =
  mutate_props
    (fun p ->
      match p.Analysis.card_max with
      | Some n when n >= 2 -> { p with Analysis.card_max = Some (n - 1) }
      | _ -> p)
    store ~scope plan

(* Claims every text() step statically empty — modelling an analyzer
   that forgot text records exist. *)
let empty_text_step store ~scope plan =
  let a = Analysis.analyze store ~scope plan in
  let props = Hashtbl.copy a.Analysis.props in
  Plan.iter_ops
    (fun op ->
      match op.Plan.kind with
      | Plan.Step (_, Ast.Text_test) -> (
          match Hashtbl.find_opt props op.Plan.id with
          | Some p -> Hashtbl.replace props op.Plan.id { p with Analysis.card_max = Some 0 }
          | None -> ())
      | _ -> ())
    plan;
  { a with Analysis.props }

(* -- mutant statistics: a synopsis that claims exact counts one off -- *)

let chain_off_by_one store =
  let base = Cost.synopsis_statistics store in
  { base with
    Cost.chain_out =
      Option.map
        (fun f ~scope spec ->
          match f ~scope spec with Some (n, true) -> Some (n + 1, true) | r -> r)
        base.Cost.chain_out }

let mutant ?rule ?(footprint = Footprint.of_plan) ~check ~desc name ~rules ~analyze ~stats =
  { sub_name = name;
    sub_desc = desc;
    sub_expected_check = Some check;
    sub_expected_rule = rule;
    sub_rules = rules;
    sub_analyze = analyze;
    sub_stats = stats;
    sub_footprint = footprint }

let mutants =
  let real = real_subject in
  [ mutant "positional-merge" ~rule:"mutant-positional-merge" ~check:"rule-signature"
      ~desc:"axis merge that keeps positional predicates across the axis change"
      ~rules:(Rewrite.all_rules @ [ mutant_positional_merge ])
      ~analyze:real.sub_analyze ~stats:real.sub_stats;
    mutant "drop-predicate" ~rule:"mutant-drop-predicate" ~check:"rule-node-set"
      ~desc:"rewrite that silently discards a step's predicates"
      ~rules:(Rewrite.all_rules @ [ mutant_drop_predicate ])
      ~analyze:real.sub_analyze ~stats:real.sub_stats;
    mutant "order-unsorted" ~check:"analysis-order"
      ~desc:"analyzer that claims document order without proving a sort"
      ~rules:real.sub_rules ~analyze:order_everywhere ~stats:real.sub_stats;
    mutant "distinct-everywhere" ~check:"analysis-distinct"
      ~desc:"analyzer that claims duplicate-freedom unconditionally"
      ~rules:real.sub_rules ~analyze:distinct_everywhere ~stats:real.sub_stats;
    mutant "card-off-by-one" ~check:"analysis-card"
      ~desc:"analyzer whose cardinality bounds are one too small"
      ~rules:real.sub_rules ~analyze:card_off_by_one ~stats:real.sub_stats;
    mutant "empty-text-step" ~check:"analysis-empty"
      ~desc:"analyzer that proves every text() step empty"
      ~rules:real.sub_rules ~analyze:empty_text_step ~stats:real.sub_stats;
    mutant "chain-off-by-one" ~check:"cost-chain-exact"
      ~desc:"synopsis whose exact chain counts are inflated by one"
      ~rules:real.sub_rules ~analyze:real.sub_analyze ~stats:chain_off_by_one;
    (* the lying footprint: claims every plan reads nothing, so every
       update is "provably" non-interfering — the exact unsoundness the
       interference family exists to catch *)
    mutant "lying-footprint" ~check:"footprint-interference"
      ~desc:"footprint analysis that claims every plan reads nothing"
      ~rules:real.sub_rules ~analyze:real.sub_analyze ~stats:real.sub_stats
      ~footprint:(fun _ -> Footprint.empty) ]

let find_mutant name = List.find_opt (fun s -> s.sub_name = name) mutants

(* ---- the checks ---- *)

type check_error = {
  e_family : family;
  e_check : string;
  e_rule : string option;
  e_detail : string;
}

exception Fail of check_error

let fail ?rule family check detail =
  raise (Fail { e_family = family; e_check = check; e_rule = rule; e_detail = detail })

let is_sorted cmp l =
  let rec go = function a :: (b :: _ as rest) -> cmp a b <= 0 && go rest | _ -> true in
  go l

let is_ancestor a b = Flex.depth a < Flex.depth b && Flex.equal a (Flex.prefix b (Flex.depth a))

let keys_to_string l =
  let n = List.length l in
  let shown = List.filteri (fun i _ -> i < 8) l in
  Printf.sprintf "[%s%s] (%d)"
    (String.concat " " (List.map Flex.to_string shown))
    (if n > 8 then " …" else "")
    n

type compiled_query = {
  q_src : string;
  q_ast : Ast.path;
  q_plan : Plan.op;
  q_clean : Plan.op option;  (* cleanup-normalized form, when different *)
  q_sites : (Rewrite.rule * Plan.op * Plan.op) list;  (* every rule firing on either form *)
}

let compile_case subject ast =
  let plan = Compile.compile_path ast in
  let clean =
    let c = Rewrite.apply_cleanup plan in
    if Plan.equal_structure plan c then None else Some c
  in
  let bases = plan :: Option.to_list clean in
  let sites =
    List.concat_map
      (fun base ->
        List.concat_map
          (fun rule ->
            List.map (fun (_, rw) -> (rule, base, rw)) (Rewrite.applications rule base))
          subject.sub_rules)
      bases
  in
  { q_src = Ast.path_to_string ast; q_ast = ast; q_plan = plan; q_clean = clean; q_sites = sites }

let step_spec (op : Plan.op) =
  match op.Plan.kind with
  | Plan.Step (axis, test) -> Some (axis, test, op.Plan.predicates <> [])
  | _ -> None

(* The full main chain as a leaf-first chain_out spec, when every chain
   operator is a plain step. *)
let chain_spec plan =
  let steps =
    List.filter (fun (o : Plan.op) -> o.Plan.kind <> Plan.Root) (chain_leaf_first plan)
  in
  let specs = List.map step_spec steps in
  if List.for_all Option.is_some specs then Some (List.map Option.get specs) else None

let check_analysis subject store ~scope raw plan =
  let a = subject.sub_analyze store ~scope plan in
  List.iter
    (fun (op : Plan.op) ->
      match Analysis.props_of a op with
      | None -> ()
      | Some p ->
          let r = raw op in
          let set = List.sort_uniq Flex.compare r in
          (match p.Analysis.order with
          | Analysis.Doc ->
              if not (is_sorted Flex.compare r) then
                fail Analysis_soundness "analysis-order"
                  (Printf.sprintf "%s claims doc order, raw stream %s is unsorted"
                     (Plan.kind_to_string op) (keys_to_string r))
          | Analysis.Rev_doc ->
              if not (is_sorted (fun x y -> Flex.compare y x) r) then
                fail Analysis_soundness "analysis-order"
                  (Printf.sprintf "%s claims reverse doc order, raw stream %s is not reverse-sorted"
                     (Plan.kind_to_string op) (keys_to_string r))
          | Analysis.Unordered -> ());
          if p.Analysis.distinct && List.length r <> List.length set then
            fail Analysis_soundness "analysis-distinct"
              (Printf.sprintf "%s claims distinct, raw stream %s has duplicates"
                 (Plan.kind_to_string op) (keys_to_string r));
          (match p.Analysis.card_max with
          | Some 0 ->
              if r <> [] then
                fail Analysis_soundness "analysis-empty"
                  (Printf.sprintf "%s claims statically empty, raw stream is %s"
                     (Plan.kind_to_string op) (keys_to_string r))
          | Some n ->
              if List.length set > n then
                fail Analysis_soundness "analysis-card"
                  (Printf.sprintf "%s claims card≤%d, result set has %d nodes"
                     (Plan.kind_to_string op) n (List.length set))
          | None -> ());
          if p.Analysis.no_nesting then
            let rec adjacent = function
              | x :: (y :: _ as rest) ->
                  if is_ancestor x y then
                    fail Analysis_soundness "analysis-nesting"
                      (Printf.sprintf "%s claims disjoint, %s nests %s" (Plan.kind_to_string op)
                         (Flex.to_string x) (Flex.to_string y))
                  else adjacent rest
              | _ -> ()
            in
            adjacent set)
    (Plan.context_chain plan)

let check_typecheck store ~scope ~context raw cq =
  let schema = Mass.Synopsis.schema (Mass.Synopsis.for_store store) ~scope in
  let report = Typecheck.check ~schema (Ast.Path cq.q_ast) in
  let step_ops =
    List.filter (fun (o : Plan.op) -> o.Plan.kind <> Plan.Root) (chain_leaf_first cq.q_plan)
  in
  (if List.length report.Typecheck.rep_steps <> List.length step_ops then
     fail Analysis_soundness "typecheck-shape"
       (Printf.sprintf "typecheck produced %d step notes for a %d-step chain"
          (List.length report.Typecheck.rep_steps)
          (List.length step_ops)));
  List.iter2
    (fun (note : Typecheck.step_note) op ->
      let n = List.length (raw op) in
      if note.Typecheck.sn_empty && n > 0 then
        fail Analysis_soundness "typecheck-empty"
          (Printf.sprintf "step %s::%s claimed schema-empty, executor streams %d tuples"
             (Ast.axis_name note.Typecheck.sn_axis)
             (Ast.node_test_to_string note.Typecheck.sn_test)
             n);
      if note.Typecheck.sn_exact && n <> note.Typecheck.sn_bound then
        fail Analysis_soundness "typecheck-exact"
          (Printf.sprintf "step %s::%s claimed exactly %d tuples, executor streams %d"
             (Ast.axis_name note.Typecheck.sn_axis)
             (Ast.node_test_to_string note.Typecheck.sn_test)
             note.Typecheck.sn_bound n))
    report.Typecheck.rep_steps step_ops;
  (* the generic evaluator is the ground truth for the whole query *)
  match Engine.eval store ~context cq.q_src with
  | Error e -> fail Analysis_soundness "eval-error" (Printf.sprintf "generic evaluator failed: %s" e)
  | Ok (Eval.Nodes keys) ->
      if report.Typecheck.rep_empty && keys <> [] then
        fail Analysis_soundness "typecheck-empty"
          (Printf.sprintf "query claimed schema-empty, evaluator returns %s" (keys_to_string keys));
      let engine_keys = Exec.run store ~context cq.q_plan in
      if not (List.equal Flex.equal keys engine_keys) then
        fail Analysis_soundness "eval-differ"
          (Printf.sprintf "generic evaluator %s vs physical pipeline %s" (keys_to_string keys)
             (keys_to_string engine_keys))
  | Ok _ -> ()

let check_cost subject store ~scope raw cq =
  let stats = subject.sub_stats store in
  let plans = cq.q_plan :: Option.to_list cq.q_clean in
  List.iter
    (fun plan ->
      let costed = Cost.estimate_with stats ~scope plan in
      List.iter
        (fun (op : Plan.op) ->
          match Hashtbl.find_opt costed op.Plan.id with
          | None -> ()
          | Some s ->
              if
                s.Cost.count < 0 || s.Cost.input < 0 || s.Cost.output < 0
                || match s.Cost.tc with Some tc -> tc < 0 | None -> false
              then
                fail Cost_invariants "cost-negative"
                  (Printf.sprintf "%s costed COUNT=%d IN=%d OUT=%d" (Plan.kind_to_string op)
                     s.Cost.count s.Cost.input s.Cost.output);
              if Float.is_nan s.Cost.selectivity || s.Cost.selectivity < 0. then
                fail Cost_invariants "cost-nan"
                  (Printf.sprintf "%s selectivity is %f" (Plan.kind_to_string op)
                     s.Cost.selectivity))
        (Plan.subtree_ops plan))
    plans;
  match stats.Cost.chain_out with
  | None -> ()
  | Some chain_out ->
      (* a chain count claimed exact must equal the profiled actual *)
      List.iter
        (fun plan ->
          let steps =
            List.filter (fun (o : Plan.op) -> o.Plan.kind <> Plan.Root) (chain_leaf_first plan)
          in
          if List.for_all (fun o -> Option.is_some (step_spec o)) steps then
            ignore
              (List.fold_left
                 (fun spec_acc op ->
                   let spec = spec_acc @ [ Option.get (step_spec op) ] in
                   (match chain_out ~scope spec with
                   | Some (n, true) ->
                       let actual = List.length (raw op) in
                       if n <> actual then
                         fail Cost_invariants "cost-chain-exact"
                           (Printf.sprintf
                              "synopsis claims exactly %d raw tuples at %s, executor streams %d" n
                              (Plan.kind_to_string op) actual)
                   | Some _ | None -> ());
                   spec)
                 [] steps))
        plans;
      (* an admitted rewrite whose totals were both claimed exact must
         not raise the actual executed total *)
      let exact_total plan =
        match chain_spec plan with
        | None -> None
        | Some spec -> (
            match chain_out ~scope spec with Some (n, true) -> Some n | _ -> None)
      in
      List.iter
        (fun ((rule : Rewrite.rule), base, rw) ->
          let cb = Cost.estimate_with stats ~scope base in
          let ca = Cost.estimate_with stats ~scope rw in
          let admitted = Cost.total_output ca rw <= Cost.total_output cb base in
          match (admitted, exact_total base, exact_total rw) with
          | true, Some _, Some _ ->
              let act_b = List.length (raw base) and act_a = List.length (raw rw) in
              if act_a > act_b then
                fail ~rule:rule.Rewrite.name Cost_invariants "cost-admitted-raises"
                  (Printf.sprintf
                     "admitted rewrite raises the actual total: %d raw tuples before, %d after"
                     act_b act_a)
          | _ -> ())
        cq.q_sites

let check_rules subject store ~scope ~context cq =
  List.iter
    (fun ((rule : Rewrite.rule), base, rw) ->
      let ns_b = Exec.run store ~context base and ns_a = Exec.run store ~context rw in
      if not (List.equal Flex.equal ns_b ns_a) then
        fail ~rule:rule.Rewrite.name Rule_soundness "rule-node-set"
          (Printf.sprintf "%s changes the node set: %s before, %s after" rule.Rewrite.name
             (keys_to_string ns_b) (keys_to_string ns_a));
      let ab = subject.sub_analyze store ~scope base in
      let aa = subject.sub_analyze store ~scope rw in
      match
        Analysis.check_rewrite
          ~before:(Analysis.signature_of ab base)
          ~after:(Analysis.signature_of aa rw)
          ~after_errors:(Analysis.errors aa)
      with
      | Ok () -> ()
      | Error reason ->
          fail ~rule:rule.Rewrite.name Rule_soundness "rule-signature"
            (Printf.sprintf "sound firing rejected by check_rewrite: %s" reason))
    cq.q_sites

(* Run every check family on one (document, plan) pair; first failure
   wins.  Family order is fixed so a given mutant is always attributed
   to the same check. *)
let check_one subject store ~doc_key cq =
  let scope = Some doc_key in
  let context = doc_key in
  let raw op = Exec.run_raw store ~context op in
  try
    List.iter (check_analysis subject store ~scope raw) (cq.q_plan :: Option.to_list cq.q_clean);
    check_typecheck store ~scope ~context raw cq;
    check_cost subject store ~scope raw cq;
    check_rules subject store ~scope ~context cq;
    None
  with Fail e -> Some e

(* ---- the interference family ----

   The footprint analysis promises: a plan whose read footprint is
   disjoint from an update's write delta returns the same result before
   and after the update.  Sweep the contrapositive over (document,
   plan, update) triples — apply each bounded update to a fresh copy of
   each bounded document, re-run each bounded plan, and whenever the
   result changed, require the write delta to intersect the plan's
   footprint.  A disjoint verdict here is exactly the case where the
   service's result cache would have served a stale answer. *)

type update = { u_desc : string; u_apply : Store.t -> Store.doc -> unit }

let all_elements =
  lazy
    (Compile.compile_path
       { Ast.absolute = true; steps = [ Ast.step Ast.Descendant_or_self Ast.Wildcard ] })

(* i-th element of the document in document order (the root element is
   #0) — resolved at apply time so the update lands on the fresh copy *)
let nth_element store (doc : Store.doc) i =
  List.nth_opt (Exec.run store ~context:doc.Store.doc_key (Lazy.force all_elements)) i

let rec spec_elements = function
  | Xml.Tree.E (_, _, kids) -> 1 + List.fold_left (fun a k -> a + spec_elements k) 0 kids
  | Xml.Tree.D _ | Xml.Tree.Cm _ | Xml.Tree.Proc _ -> 0

(* Update menu per element position: child inserts over the tag
   alphabet, a text-carrying insert, an attribute-carrying insert, and
   a subtree delete.  Positions come from the spec's static element
   count, so every enumerated update really applies (an update that
   silently no-ops would make the triple vacuous). *)
let enum_updates (b : bounds) spec =
  let insert ?text ?(attrs = []) ~desc tag i =
    { u_desc = Printf.sprintf "insert %s under element #%d" desc i;
      u_apply =
        (fun store doc ->
          match nth_element store doc i with
          | Some parent -> ignore (Store.insert_element store ~parent tag attrs text)
          | None -> ()) }
  in
  let delete i =
    { u_desc = Printf.sprintf "delete the subtree of element #%d" i;
      u_apply =
        (fun store doc ->
          match nth_element store doc i with
          | Some key -> ignore (Store.delete_subtree store key)
          | None -> ()) }
  in
  List.concat
    (List.init (spec_elements spec) (fun i ->
         List.init b.tags (fun t ->
             insert ~desc:(Printf.sprintf "<%s/>" (tag_name t)) (tag_name t) i)
         @ (if b.texts > 0 then
              [ insert
                  ~desc:
                    (Printf.sprintf "<%s>%s</%s>" (tag_name 0) (text_value 0) (tag_name 0))
                  ~text:(text_value 0) (tag_name 0) i;
                insert
                  ~desc:(Printf.sprintf "<%s id=\"%s\"/>" (tag_name 0) (text_value 0))
                  ~attrs:[ ("id", text_value 0) ] (tag_name 0) i ]
            else [])
         @ [ delete i ]))

(* Fresh copy of [spec], [update] applied, plus the write deltas the
   update recorded (captured by epoch so the load's own delta is
   excluded).  A fresh store's ring always covers [e0], so the
   [write_deltas] coverage fallback cannot fire here. *)
let apply_update spec update =
  let store = Store.create ~backend:Store.Mem () in
  let doc = Store.load store ~name:"i" (Xml.Tree.document [ spec ]) in
  let e0 = Store.epoch store in
  update.u_apply store doc;
  let deltas = Option.value ~default:[] (Store.write_deltas store ~since:e0) in
  (store, doc, deltas)

let interference_error subject update deltas ~before ~after plan =
  if List.equal Flex.equal before after then None
  else
    let fp = subject.sub_footprint plan in
    if List.exists (Footprint.intersects fp) deltas then None
    else
      Some
        { e_family = Interference;
          e_check = "footprint-interference";
          e_rule = None;
          e_detail =
            Printf.sprintf
              "%s changed the result %s -> %s but every write delta is disjoint from the \
               footprint %s"
              update.u_desc (keys_to_string before) (keys_to_string after)
              (Footprint.to_string fp) }

let case_plans cq = cq.q_plan :: Option.to_list cq.q_clean

let check_interference subject spec cq =
  let store0 = Store.create ~backend:Store.Mem () in
  let doc0 = Store.load store0 ~name:"i" (Xml.Tree.document [ spec ]) in
  let plans = case_plans cq in
  let before = List.map (Exec.run store0 ~context:doc0.Store.doc_key) plans in
  List.fold_left
    (fun acc u ->
      match acc with
      | Some _ -> acc
      | None ->
          let store1, doc1, deltas = apply_update spec u in
          List.fold_left2
            (fun acc plan rb ->
              match acc with
              | Some _ -> acc
              | None ->
                  let ra = Exec.run store1 ~context:doc1.Store.doc_key plan in
                  interference_error subject u deltas ~before:rb ~after:ra plan)
            None plans before)
    None
    (enum_updates interference_bounds spec)

(* ---- one-shot pair checking (replay, shrinking) ---- *)

let check_spec_pair subject spec ast =
  let store = Store.create ~backend:Store.Mem () in
  let doc = Store.load store ~name:"replay" (Xml.Tree.document [ spec ]) in
  let cq = compile_case subject ast in
  match check_one subject store ~doc_key:doc.Store.doc_key cq with
  | Some e -> Some e
  | None -> check_interference subject spec cq

(* ---- shrinking ----

   Greedy descent: try every smaller candidate (document subtree
   dropped, element hoisted out, tag/text renamed toward the first
   letter, attribute dropped, plan step dropped, predicate dropped) and
   take the first one that still fails the same check; repeat until
   nothing smaller fails.  Every candidate strictly decreases
   (nodes + steps + preds + renameable atoms), so descent terminates. *)

let normalize_specs specs =
  (* merge adjacent text children (reparse would anyway) *)
  let rec merge = function
    | Xml.Tree.D a :: Xml.Tree.D b :: rest -> merge (Xml.Tree.D (a ^ b) :: rest)
    | x :: rest -> x :: merge rest
    | [] -> []
  in
  merge specs

let rec spec_complexity spec =
  match spec with
  | Xml.Tree.E (tag, attrs, kids) ->
      (if tag = tag_name 0 then 0 else 1)
      + List.length attrs
      + List.fold_left (fun a k -> a + spec_complexity k) 0 kids
  | Xml.Tree.D v -> if v = text_value 0 then 0 else 1
  | Xml.Tree.Cm _ | Xml.Tree.Proc _ -> 1

let path_preds (p : Ast.path) =
  List.fold_left (fun a (s : Ast.step) -> a + List.length s.Ast.predicates) 0 p.Ast.steps

let case_size spec (ast : Ast.path) =
  spec_nodes spec + List.length ast.Ast.steps + path_preds ast + spec_complexity spec

(* All single-edit document shrinks. *)
let doc_candidates spec =
  let rec shrink_spec = function
    | Xml.Tree.E (tag, attrs, kids) ->
        let dropped =
          List.mapi
            (fun i _ ->
              Xml.Tree.E
                (tag, attrs, normalize_specs (List.filteri (fun j _ -> j <> i) kids)))
            kids
        in
        let hoisted =
          List.concat
            (List.mapi
               (fun i k ->
                 match k with
                 | Xml.Tree.E (_, _, grandkids) ->
                     let kids' =
                       List.concat (List.mapi (fun j k' -> if j = i then grandkids else [ k' ]) kids)
                     in
                     [ Xml.Tree.E (tag, attrs, normalize_specs kids') ]
                 | _ -> [])
               kids)
        in
        let renamed =
          if tag <> tag_name 0 then [ Xml.Tree.E (tag_name 0, attrs, kids) ] else []
        in
        let attr_dropped = if attrs <> [] then [ Xml.Tree.E (tag, [], kids) ] else [] in
        let in_kids =
          List.concat
            (List.mapi
               (fun i k ->
                 List.map
                   (fun k' ->
                     Xml.Tree.E
                       ( tag,
                         attrs,
                         normalize_specs
                           (List.concat (List.mapi (fun j k0 -> [ (if j = i then k' else k0) ]) kids))
                       ))
                   (shrink_spec k))
               kids)
        in
        dropped @ hoisted @ renamed @ attr_dropped @ in_kids
    | Xml.Tree.D v -> if v <> text_value 0 then [ Xml.Tree.D (text_value 0) ] else []
    | Xml.Tree.Cm _ | Xml.Tree.Proc _ -> []
  in
  shrink_spec spec

(* All single-edit query shrinks. *)
let query_candidates (ast : Ast.path) =
  let steps = ast.Ast.steps in
  let n = List.length steps in
  let drop_step =
    if n <= 1 then []
    else
      List.init n (fun i ->
          { ast with Ast.steps = List.filteri (fun j _ -> j <> i) steps })
  in
  let drop_preds =
    List.concat
      (List.mapi
         (fun i (s : Ast.step) ->
           if s.Ast.predicates = [] then []
           else
             [ { ast with
                 Ast.steps =
                   List.mapi
                     (fun j s0 -> if j = i then Ast.step s.Ast.axis s.Ast.test else s0)
                     steps } ])
         steps)
  in
  let rename =
    List.concat
      (List.mapi
         (fun i (s : Ast.step) ->
           match s.Ast.test with
           | Ast.Name_test t when t <> tag_name 0 ->
               [ { ast with
                   Ast.steps =
                     List.mapi
                       (fun j s0 ->
                         if j = i then
                           Ast.step ~predicates:s.Ast.predicates s.Ast.axis
                             (Ast.Name_test (tag_name 0))
                         else s0)
                       steps } ]
           | _ -> [])
         steps)
  in
  drop_step @ drop_preds @ rename

let shrink subject spec ast (e : check_error) =
  let same_failure spec' ast' =
    match check_spec_pair subject spec' ast' with
    | Some e' -> e'.e_check = e.e_check && e'.e_rule = e.e_rule
    | None -> false
    | exception _ -> false
  in
  let rec descend spec ast detail n =
    let size = case_size spec ast in
    let candidates =
      List.map (fun s -> (s, ast)) (doc_candidates spec)
      @ List.map (fun a -> (spec, a)) (query_candidates ast)
    in
    let next =
      List.find_opt (fun (s, a) -> case_size s a < size && same_failure s a) candidates
    in
    match next with
    | Some (s, a) ->
        let detail =
          match check_spec_pair subject s a with Some e' -> e'.e_detail | None -> detail
        in
        descend s a detail (n + 1)
    | None -> (spec, ast, detail, n)
  in
  let spec, ast, detail, steps = descend spec ast e.e_detail 0 in
  { cx_family = e.e_family;
    cx_check = e.e_check;
    cx_rule = e.e_rule;
    cx_doc = Xml.Writer.to_string (Xml.Tree.document [ spec ]);
    cx_query = Ast.path_to_string ast;
    cx_detail = detail;
    cx_shrink_steps = steps;
    cx_doc_nodes = spec_nodes spec;
    cx_query_steps = List.length ast.Ast.steps }

(* ---- randomized layer ---- *)

let mk_rng seed =
  let st = ref seed in
  fun bound ->
    st := ((!st * 1103515245) + 12345) land 0x3FFFFFFF;
    if bound <= 0 then 0 else !st mod bound

let pick rng l = List.nth l (rng (List.length l))

let gen_doc rng (b : bounds) =
  let remaining = ref (b.max_nodes - 1) in
  let rec gen_elem depth tag =
    let attrs =
      if b.texts > 0 && !remaining > 0 && rng 4 = 0 then (
        decr remaining;
        [ ("id", text_value (rng b.texts)) ])
      else []
    in
    let rec kids slots prev_text acc =
      if slots = 0 || !remaining <= 0 then List.rev acc
      else if depth > 1 && rng 3 > 0 then (
        decr remaining;
        let child = gen_elem (depth - 1) (tag_name (rng b.tags)) in
        kids (slots - 1) false (child :: acc))
      else if b.texts > 0 && (not prev_text) && rng 3 = 0 then (
        decr remaining;
        kids (slots - 1) true (Xml.Tree.D (text_value (rng b.texts)) :: acc))
      else if rng 2 = 0 then List.rev acc
      else kids (slots - 1) prev_text acc
    in
    Xml.Tree.E (tag, attrs, kids b.fanout false [])
  in
  gen_elem b.depth (tag_name (rng b.tags))

let gen_query rng (b : bounds) =
  let names = List.init b.tags (fun i -> Ast.Name_test (tag_name i)) in
  let tests = names @ [ Ast.Wildcard; Ast.Node_test; Ast.Text_test ] in
  let preds = pred_menu b in
  let n = 1 + rng b.steps in
  let steps =
    List.init n (fun _ ->
        let axis = pick rng Ast.all_axes in
        let test = pick rng tests in
        let predicates = if rng 2 = 0 then pick rng preds else [] in
        Ast.step ~predicates axis test)
  in
  { Ast.absolute = true; steps }

(* ---- the prover ---- *)

let prove ?(subject = real_subject) ?(random = 0) ?(random_bounds = ci_random_bounds)
    ?(seed = ci_seed) ?(max_counterexamples = 5) bounds =
  let t0 = Unix.gettimeofday () in
  let docs = enum_documents bounds in
  let queries = enum_queries bounds in
  let cqs = List.map (compile_case subject) queries in
  let store = Store.create ~backend:Store.Mem () in
  let loaded =
    List.mapi
      (fun i spec ->
        (spec, Store.load store ~name:(Printf.sprintf "d%d" i) (Xml.Tree.document [ spec ])))
      docs
  in
  let pairs = ref 0 and sites = ref 0 in
  let cxs = ref [] and n_cxs = ref 0 in
  let seen = Hashtbl.create 8 in
  let record spec ast e =
    let key = (e.e_check, e.e_rule) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      incr n_cxs;
      cxs := shrink subject spec ast e :: !cxs
    end
  in
  let consider spec (doc : Store.doc) cq =
    if !n_cxs < max_counterexamples then begin
      incr pairs;
      sites := !sites + List.length cq.q_sites;
      match check_one subject store ~doc_key:doc.Store.doc_key cq with
      | None -> ()
      | Some e -> record spec cq.q_ast e
    end
  in
  List.iter (fun (spec, doc) -> List.iter (consider spec doc) cqs) loaded;
  let n_random = ref 0 in
  if random > 0 then begin
    let rng = mk_rng seed in
    for i = 1 to random do
      if !n_cxs < max_counterexamples then begin
        let spec = gen_doc rng random_bounds in
        let ast = gen_query rng random_bounds in
        let doc =
          Store.load store ~name:(Printf.sprintf "r%d" i) (Xml.Tree.document [ spec ])
        in
        incr n_random;
        consider spec doc (compile_case subject ast)
      end
    done
  end;
  (* interference sweep, always at its own committed bounds: the triple
     domain (documents × plan forms × updates) is independent of the
     pair sweep's [bounds] so the family's coverage does not silently
     shrink when a caller passes a cheaper pair configuration *)
  let n_updates = ref 0 and n_triples = ref 0 in
  if !n_cxs < max_counterexamples then begin
    let i_cqs = List.map (compile_case subject) (enum_queries interference_bounds) in
    List.iter
      (fun spec ->
        if !n_cxs < max_counterexamples then begin
          let store0 = Store.create ~backend:Store.Mem () in
          let doc0 = Store.load store0 ~name:"i0" (Xml.Tree.document [ spec ]) in
          let before =
            List.map
              (fun cq -> List.map (Exec.run store0 ~context:doc0.Store.doc_key) (case_plans cq))
              i_cqs
          in
          List.iter
            (fun u ->
              if !n_cxs < max_counterexamples then begin
                incr n_updates;
                let store1, doc1, deltas = apply_update spec u in
                List.iter2
                  (fun cq rbs ->
                    List.iter2
                      (fun plan rb ->
                        if !n_cxs < max_counterexamples then begin
                          incr n_triples;
                          let ra = Exec.run store1 ~context:doc1.Store.doc_key plan in
                          match
                            interference_error subject u deltas ~before:rb ~after:ra plan
                          with
                          | None -> ()
                          | Some e -> record spec cq.q_ast e
                        end)
                      (case_plans cq) rbs)
                  i_cqs before
              end)
            (enum_updates interference_bounds spec)
        end)
      (enum_documents interference_bounds)
  end;
  { rp_subject = subject.sub_name;
    rp_bounds = bounds;
    rp_docs = List.length docs;
    rp_plans = List.length queries;
    rp_pairs = !pairs;
    rp_random = !n_random;
    rp_seed = (if random > 0 then Some seed else None);
    rp_sites = !sites;
    rp_updates = !n_updates;
    rp_triples = !n_triples;
    rp_counterexamples = List.rev !cxs;
    rp_wall = Unix.gettimeofday () -. t0 }

let shrink_pair ?(subject = real_subject) ~doc ~query () =
  let spec = Xml.Tree.element_spec (Xml.Parser.parse doc) in
  let ast = Parser.parse_path query in
  match check_spec_pair subject spec ast with
  | None -> None
  | Some e -> Some (shrink subject spec ast e)

let check_pair ?(subject = real_subject) ~doc ~query () =
  let spec = Xml.Tree.element_spec (Xml.Parser.parse doc) in
  let ast = Parser.parse_path query in
  match check_spec_pair subject spec ast with
  | None -> []
  | Some e ->
      [ { cx_family = e.e_family;
          cx_check = e.e_check;
          cx_rule = e.e_rule;
          cx_doc = doc;
          cx_query = query;
          cx_detail = e.e_detail;
          cx_shrink_steps = 0;
          cx_doc_nodes = spec_nodes spec;
          cx_query_steps = List.length ast.Ast.steps } ]

(* ---- S-expression rendering and replay ---- *)

let sexp_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let counterexample_to_sexp cx =
  let field k v = Printf.sprintf " (%s \"%s\")\n" k (sexp_escape v) in
  "(replay\n"
  ^ field "family" (family_to_string cx.cx_family)
  ^ field "check" cx.cx_check
  ^ (match cx.cx_rule with Some r -> field "rule" r | None -> "")
  ^ field "query" cx.cx_query ^ field "doc" cx.cx_doc ^ field "detail" cx.cx_detail
  ^ Printf.sprintf " (shrink-steps %d)\n" cx.cx_shrink_steps
  ^ ")\n"

type sx = Atom of string | L of sx list

let parse_sexp s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        skip_ws ()
    | _ -> ()
  in
  let parse_string () =
    incr pos;
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then failwith "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            if !pos + 1 >= n then failwith "dangling escape";
            (match s.[!pos + 1] with
            | 'n' -> Buffer.add_char buf '\n'
            | c -> Buffer.add_char buf c);
            pos := !pos + 2;
            go ()
        | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec parse_one () =
    skip_ws ();
    match peek () with
    | None -> failwith "unexpected end of input"
    | Some '(' ->
        incr pos;
        let rec items acc =
          skip_ws ();
          match peek () with
          | Some ')' ->
              incr pos;
              List.rev acc
          | None -> failwith "unterminated list"
          | _ -> items (parse_one () :: acc)
        in
        L (items [])
    | Some '"' -> Atom (parse_string ())
    | Some _ ->
        let start = !pos in
        let rec atom () =
          match peek () with
          | Some (' ' | '\t' | '\n' | '\r' | '(' | ')' | '"') | None -> ()
          | Some _ ->
              incr pos;
              atom ()
        in
        atom ();
        Atom (String.sub s start (!pos - start))
  in
  let v = parse_one () in
  skip_ws ();
  v

let replay_of_sexp s =
  match parse_sexp s with
  | exception Failure msg -> Error ("malformed replay file: " ^ msg)
  | Atom _ -> Error "malformed replay file: expected a (replay …) form"
  | L (Atom "replay" :: fields) -> (
      let find k =
        List.find_map
          (function L [ Atom k'; Atom v ] when k' = k -> Some v | _ -> None)
          fields
      in
      match (find "doc", find "query") with
      | Some doc, Some query -> Ok (doc, query, find "mutant")
      | _ -> Error "replay file must carry (doc \"…\") and (query \"…\")")
  | L _ -> Error "malformed replay file: expected a (replay …) form"

(* ---- rendering ---- *)

let bounds_to_json b =
  Json.Obj
    [ ("depth", Json.Int b.depth);
      ("fanout", Json.Int b.fanout);
      ("tags", Json.Int b.tags);
      ("texts", Json.Int b.texts);
      ("max_nodes", Json.Int b.max_nodes);
      ("steps", Json.Int b.steps) ]

let counterexample_to_json cx =
  Json.Obj
    [ ("family", Json.Str (family_to_string cx.cx_family));
      ("check", Json.Str cx.cx_check);
      ("rule", match cx.cx_rule with Some r -> Json.Str r | None -> Json.Null);
      ("doc", Json.Str cx.cx_doc);
      ("query", Json.Str cx.cx_query);
      ("detail", Json.Str cx.cx_detail);
      ("shrink_steps", Json.Int cx.cx_shrink_steps);
      ("doc_nodes", Json.Int cx.cx_doc_nodes);
      ("query_steps", Json.Int cx.cx_query_steps) ]

let report_to_json r =
  Json.Obj
    [ ("subject", Json.Str r.rp_subject);
      ("bounds", bounds_to_json r.rp_bounds);
      ("documents", Json.Int r.rp_docs);
      ("plans", Json.Int r.rp_plans);
      ("pairs", Json.Int r.rp_pairs);
      ("random_pairs", Json.Int r.rp_random);
      ("seed", match r.rp_seed with Some s -> Json.Int s | None -> Json.Null);
      ("rule_sites", Json.Int r.rp_sites);
      ("updates", Json.Int r.rp_updates);
      ("triples", Json.Int r.rp_triples);
      ("counterexamples", Json.Arr (List.map counterexample_to_json r.rp_counterexamples));
      ("wall_seconds", Json.Float r.rp_wall) ]

let report_to_string r =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "subject %s: %d documents × %d plans = %d pairs (%d randomized), %d rule sites, %d \
     updates / %d interference triples, %.2fs\n"
    r.rp_subject r.rp_docs r.rp_plans r.rp_pairs r.rp_random r.rp_sites r.rp_updates
    r.rp_triples r.rp_wall;
  (match r.rp_seed with Some s -> Printf.bprintf b "random seed: %d (replay with --seed %d)\n" s s | None -> ());
  (match r.rp_counterexamples with
  | [] -> Buffer.add_string b "no counterexamples: every invariant holds on the bounded domain\n"
  | cxs ->
      Printf.bprintf b "%d counterexample(s):\n" (List.length cxs);
      List.iter
        (fun cx ->
          Printf.bprintf b "  [%s/%s%s] doc %s  query %s\n    %s\n    (shrunk in %d steps to %d nodes / %d steps)\n"
            (family_to_string cx.cx_family) cx.cx_check
            (match cx.cx_rule with Some r -> " rule " ^ r | None -> "")
            cx.cx_doc cx.cx_query cx.cx_detail cx.cx_shrink_steps cx.cx_doc_nodes
            cx.cx_query_steps)
        cxs);
  Buffer.contents b

