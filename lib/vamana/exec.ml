module Store = Mass.Store
open Xpath

type pred_rt =
  | RExists of iterator
  | RBinary of Ast.binop * operand_rt * operand_rt
  | RAnd of pred_rt * pred_rt
  | ROr of pred_rt * pred_rt
  | RNot of pred_rt
  | RPosition of Ast.binop * float
  | RGeneric of Ast.expr

and operand_rt = RPath of iterator | RLit of string | RNum of float

and layer = { pred : pred_rt; mutable seen : int }

and iterator = {
  store : Store.t;
  op : Plan.op;
  child : iterator option;
  layers : layer list;
  prof : (Profile.ctx * Profile.slot) option;
      (** profiling slot; [None] on the uninstrumented path *)
  mutable st : [ `Initial | `Fetching | `Out_of_tuples ];
  mutable root_ctx : Flex.t;  (** leaf context (meaningful when [child = None]) *)
  mutable cursor : Store.cursor option;
  mutable generic_queue : Flex.t list;  (** buffered results for [Step_generic] *)
}

let state it = it.st

(* ---- construction ---- *)

let rec build ?profile store ~context (op : Plan.op) =
  let child = Option.map (build ?profile store ~context) op.context in
  let layers =
    List.map (fun p -> { pred = build_pred ?profile store ~context p; seen = 0 }) op.predicates
  in
  let prof =
    match profile with
    | None -> None
    | Some ctx ->
        Some (ctx, Profile.slot ctx ~op_id:op.id ~label:(Plan.kind_to_string op))
  in
  { store; op; child; layers; prof; st = `Initial; root_ctx = context; cursor = None;
    generic_queue = [] }

and build_pred ?profile store ~context (p : Plan.pred) =
  match p with
  | Plan.Exists sub -> RExists (build ?profile store ~context sub)
  | Plan.Binary (_, cmp, a, b) ->
      RBinary (cmp, build_operand ?profile store ~context a, build_operand ?profile store ~context b)
  | Plan.And (a, b) -> RAnd (build_pred ?profile store ~context a, build_pred ?profile store ~context b)
  | Plan.Or (a, b) -> ROr (build_pred ?profile store ~context a, build_pred ?profile store ~context b)
  | Plan.Not a -> RNot (build_pred ?profile store ~context a)
  | Plan.Position (cmp, n) -> RPosition (cmp, n)
  | Plan.Generic e -> RGeneric e

and build_operand ?profile store ~context (o : Plan.operand) =
  match o with
  | Plan.Path_operand sub -> RPath (build ?profile store ~context sub)
  | Plan.Literal (_, v) -> RLit v
  | Plan.Number_operand f -> RNum f

(* ---- dynamic context setting (Algorithm 2) ---- *)

let rec reset it ctx =
  (match it.prof with Some (_, s) -> s.Profile.resets <- s.Profile.resets + 1 | None -> ());
  it.st <- `Initial;
  it.cursor <- None;
  it.generic_queue <- [];
  List.iter (fun l -> l.seen <- 0) it.layers;
  match it.child with Some c -> reset c ctx | None -> it.root_ctx <- ctx

(* ---- predicate evaluation ---- *)

let num_cmp (cmp : Ast.binop) a b =
  match cmp with
  | Ast.Eq -> a = b
  | Ast.Neq -> a <> b
  | Ast.Lt -> a < b
  | Ast.Le -> a <= b
  | Ast.Gt -> a > b
  | Ast.Ge -> a >= b
  | Ast.And | Ast.Or | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Union ->
      invalid_arg "Exec: not a comparison"

let number_of_string store s = Nav.E.to_number store (Xpath.Eval.Str s)

let rec next it : Flex.t option =
  match it.prof with
  | None -> next_inner it
  | Some (ctx, s) ->
      let before = it.st in
      let r = Profile.frame ctx s (fun () -> next_inner it) in
      (if it.st <> before then begin
         (if before = `Initial then s.Profile.started <- s.Profile.started + 1);
         if it.st = `Out_of_tuples then s.Profile.exhausted <- s.Profile.exhausted + 1
       end);
      r

and next_inner it : Flex.t option =
  match it.st with
  | `Out_of_tuples -> None
  | `Initial | `Fetching -> (
      match it.op.kind with
      | Plan.Root -> (
          it.st <- `Fetching;
          match it.child with
          | Some c -> (
              match next c with
              | Some k -> Some k
              | None ->
                  it.st <- `Out_of_tuples;
                  None)
          | None ->
              it.st <- `Out_of_tuples;
              None)
      | Plan.Step_generic s -> next_generic it s
      | Plan.Step _ | Plan.Value_step _ -> next_step it)

(* the paper's Algorithm 1, adapted to cursor-backed steps *)
and next_step it =
  match it.cursor with
  | Some cur -> (
      match cur () with
      | Some k -> if passes it k then Some k else next_step it
      | None ->
          it.cursor <- None;
          next_step it)
  | None -> (
      match it.child with
      | Some child -> (
          (* non-leaf: pull the next context tuple from the context child *)
          match next child with
          | Some ctx ->
              set_cursor it ctx;
              next_step it
          | None ->
              it.st <- `Out_of_tuples;
              None)
      | None ->
          (* leaf: the engine-provided context drives the single cursor *)
          if it.st = `Initial then begin
            it.st <- `Fetching;
            set_cursor it it.root_ctx;
            next_step it
          end
          else begin
            it.st <- `Out_of_tuples;
            None
          end)

and set_cursor it ctx =
  it.st <- `Fetching;
  (match it.prof with
  | Some (_, s) -> s.Profile.cursor_opens <- s.Profile.cursor_opens + 1
  | None -> ());
  List.iter (fun l -> l.seen <- 0) it.layers;
  match it.op.kind with
  | Plan.Step (axis, test) -> it.cursor <- Some (Store.axis_cursor it.store axis test ctx)
  | Plan.Value_step (v, source) ->
      let raw = Store.value_cursor ~scope:ctx it.store v in
      let filtered =
        match source with
        | None -> raw
        | Some test ->
            let matches k =
              match Store.get it.store k with
              | Some r -> (
                  match test with
                  | Ast.Text_test -> r.Mass.Record.kind = Mass.Record.Text
                  | Ast.Name_test n ->
                      r.Mass.Record.kind = Mass.Record.Attribute && String.equal r.Mass.Record.name n
                  | Ast.Node_test -> true
                  | Ast.Wildcard -> r.Mass.Record.kind = Mass.Record.Attribute
                  | Ast.Comment_test | Ast.Pi_test _ -> false)
              | None -> false
            in
            let rec pull () =
              match raw () with
              | Some k -> if matches k then Some k else pull ()
              | None -> None
            in
            pull
      in
      it.cursor <- Some filtered
  | Plan.Root | Plan.Step_generic _ -> assert false

and next_generic it s =
  match it.generic_queue with
  | k :: rest ->
      it.generic_queue <- rest;
      Some k
  | [] -> (
      let feed ctx =
        match
          Nav.E.eval it.store ~context:ctx (Ast.Path { Ast.absolute = false; steps = [ s ] })
        with
        | Xpath.Eval.Nodes ns -> ns
        | _ -> []
      in
      match it.child with
      | Some child -> (
          match next child with
          | Some ctx ->
              it.st <- `Fetching;
              it.generic_queue <- feed ctx;
              next_generic it s
          | None ->
              it.st <- `Out_of_tuples;
              None)
      | None ->
          if it.st = `Initial then begin
            it.st <- `Fetching;
            it.generic_queue <- feed it.root_ctx;
            next_generic it s
          end
          else begin
            it.st <- `Out_of_tuples;
            None
          end)

and passes it k =
  List.for_all
    (fun l ->
      l.seen <- l.seen + 1;
      eval_pred it.store l.pred k (float_of_int l.seen))
    it.layers

and eval_pred store pred k position =
  match pred with
  | RExists sub ->
      reset sub k;
      next sub <> None
  | RBinary (cmp, a, b) -> compare_sides store cmp (side store a k) (side store b k)
  | RAnd (a, b) -> eval_pred store a k position && eval_pred store b k position
  | ROr (a, b) -> eval_pred store a k position || eval_pred store b k position
  | RNot a -> not (eval_pred store a k position)
  | RPosition (cmp, n) -> num_cmp cmp position n
  | RGeneric e -> (
      match Nav.E.eval store ~context:k e with
      | Xpath.Eval.Num f -> f = position
      | v -> Nav.E.to_boolean store v)

and side store operand k =
  match operand with
  | RPath sub ->
      reset sub k;
      let rec go acc =
        match next sub with
        | Some n -> go (Store.string_value store n :: acc)
        | None -> List.rev acc
      in
      `Values (go [])
  | RLit s -> `Str s
  | RNum f -> `Num f

(* XPath 1.0 §3.4 comparison semantics over materialized string values *)
and compare_sides store cmp a b =
  let relational = match cmp with Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> true | _ -> false in
  let num = number_of_string store in
  match (a, b) with
  | `Values va, `Values vb ->
      List.exists
        (fun x ->
          List.exists
            (fun y -> if relational then num_cmp cmp (num x) (num y) else str_eq cmp x y)
            vb)
        va
  | `Values va, `Str s -> List.exists (fun x -> if relational then num_cmp cmp (num x) (num s) else str_eq cmp x s) va
  | `Str s, `Values vb -> List.exists (fun y -> if relational then num_cmp cmp (num s) (num y) else str_eq cmp s y) vb
  | `Values va, `Num f -> List.exists (fun x -> num_cmp cmp (num x) f) va
  | `Num f, `Values vb -> List.exists (fun y -> num_cmp cmp f (num y)) vb
  | `Str x, `Str y -> if relational then num_cmp cmp (num x) (num y) else str_eq cmp x y
  | `Str x, `Num f -> num_cmp cmp (num x) f
  | `Num f, `Str y -> num_cmp cmp f (num y)
  | `Num x, `Num y -> num_cmp cmp x y

and str_eq cmp x y =
  match (cmp : Ast.binop) with
  | Ast.Eq -> String.equal x y
  | Ast.Neq -> not (String.equal x y)
  | _ -> assert false

(* ---- whole-plan execution ---- *)

(* Strict debug gate: validate plan structure once, at the root, before
   instantiating any iterator (malformed plans otherwise surface as
   confusing mid-stream invalid_arg failures). *)
let build ?profile store ~context op =
  if Analysis.strict_enabled () then Analysis.assert_well_formed op;
  build ?profile store ~context op

let run_raw ?profile store ~context plan =
  let it = build ?profile store ~context plan in
  let rec go acc = match next it with Some k -> go (k :: acc) | None -> List.rev acc in
  go []

let run ?profile store ~context plan =
  List.sort_uniq Flex.compare (run_raw ?profile store ~context plan)
