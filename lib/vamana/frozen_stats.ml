type t = {
  names : (string, int) Hashtbl.t;
  values : (string, int) Hashtbl.t;
  updates : int;
}

let of_assoc pairs =
  let h = Hashtbl.create (List.length pairs * 2) in
  List.iter (fun (k, n) -> Hashtbl.replace h k n) pairs;
  h

let capture store =
  {
    names = of_assoc (Mass.Store.name_statistics store);
    values = of_assoc (Mass.Store.value_statistics store);
    updates = 0;
  }

let lookup h k = Option.value ~default:0 (Hashtbl.find_opt h k)

(* mirrors Mass.Store's tag scheme; a dictionary has global counts only,
   so the scope argument is ignored — exactly the granularity loss the
   paper points out *)
let source t : Cost.statistics_source =
  {
    Cost.node_count =
      (fun ~scope ~principal test ->
        ignore scope;
        match (test : Xpath.Ast.node_test) with
        | Xpath.Ast.Name_test n -> (
            match (principal : Mass.Record.kind) with
            | Mass.Record.Attribute -> lookup t.names ("@" ^ n)
            | _ -> lookup t.names n)
        | Xpath.Ast.Text_test -> lookup t.names "#text"
        | Xpath.Ast.Comment_test -> lookup t.names "#comment"
        | Xpath.Ast.Pi_test _ -> lookup t.names "#pi"
        | Xpath.Ast.Wildcard | Xpath.Ast.Node_test ->
            Hashtbl.fold
              (fun tag n acc ->
                if String.length tag > 0 && tag.[0] <> '@' && tag.[0] <> '#' then acc + n
                else acc)
              t.names 0);
    Cost.value_count =
      (fun ~scope v ->
        ignore scope;
        lookup t.values v);
    Cost.chain_out = None;
  }

let age t ~updates = { t with updates = t.updates + updates }
let update_count t = t.updates
let distinct_names t = Hashtbl.length t.names
let distinct_values t = Hashtbl.length t.values
