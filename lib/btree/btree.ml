module type KEY = sig
  type t

  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

let nil = -1

module Make (K : KEY) = struct
  type 'v leaf = { keys : K.t array; vals : 'v array; prev : int; next : int }
  type inner = { seps : K.t array; children : int array; counts : int array }
  type 'v node = Leaf of 'v leaf | Node of inner

  type 'v t = { pager : 'v node Storage.Pager.t; mutable root : int; order : int }

  module P = Storage.Pager

  let node_codec ~enc_key ~dec_key ~enc_val ~dec_val =
    let open Storage.Binio in
    let encode node =
      let b = Buffer.create 256 in
      (match node with
      | Leaf l ->
          w_u8 b 0;
          w_u64 b l.prev;
          w_u64 b l.next;
          w_u32 b (Array.length l.keys);
          Array.iteri
            (fun i k ->
              enc_key b k;
              enc_val b l.vals.(i))
            l.keys
      | Node n ->
          w_u8 b 1;
          w_u32 b (Array.length n.seps);
          Array.iter (fun s -> enc_key b s) n.seps;
          w_u32 b (Array.length n.children);
          Array.iteri
            (fun i c ->
              w_u64 b c;
              w_u64 b n.counts.(i))
            n.children);
      Buffer.contents b
    in
    let decode s =
      let r = reader s in
      match r_u8 r with
      | 0 ->
          let prev = r_u64 r in
          let next = r_u64 r in
          let n = r_u32 r in
          let rec entries i acc =
            if i = n then List.rev acc
            else
              let k = dec_key r in
              let v = dec_val r in
              entries (i + 1) ((k, v) :: acc)
          in
          let kvs = entries 0 [] in
          Leaf
            {
              keys = Array.of_list (List.map fst kvs);
              vals = Array.of_list (List.map snd kvs);
              prev;
              next;
            }
      | 1 ->
          let nseps = r_u32 r in
          let rec seps i acc =
            if i = nseps then List.rev acc else seps (i + 1) (dec_key r :: acc)
          in
          let seps = Array.of_list (seps 0 []) in
          let nch = r_u32 r in
          let rec kids i acc =
            if i = nch then List.rev acc
            else
              let c = r_u64 r in
              let cnt = r_u64 r in
              kids (i + 1) ((c, cnt) :: acc)
          in
          let kids = kids 0 [] in
          Node
            {
              seps;
              children = Array.of_list (List.map fst kids);
              counts = Array.of_list (List.map snd kids);
            }
      | tag -> failwith (Printf.sprintf "Btree: bad node tag %d" tag)
    in
    { P.encode; P.decode }

  let create ?label ?(order = 64) ?pool_pages ?backend () =
    if order < 4 then invalid_arg "Btree.create: order < 4";
    let pager = P.create ?label ?pool_pages ?backend () in
    let root = P.alloc pager (Leaf { keys = [||]; vals = [||]; prev = nil; next = nil }) in
    { pager; root; order }

  let open_existing ?label ?(order = 64) ?pool_pages ~backend ~root () =
    if order < 4 then invalid_arg "Btree.open_existing: order < 4";
    let pager = P.attach ?label ?pool_pages ~backend () in
    { pager; root; order }

  let root_id t = t.root
  let flush t = P.flush t.pager

  (* ---- array helpers ---- *)

  let insert_at a i x =
    let n = Array.length a in
    let b = Array.make (n + 1) x in
    Array.blit a 0 b 0 i;
    Array.blit a i b (i + 1) (n - i);
    b

  let remove_at a i =
    let n = Array.length a in
    let b = Array.sub a 0 (n - 1) in
    Array.blit a (i + 1) b i (n - 1 - i);
    b

  let sum = Array.fold_left ( + ) 0

  (* first index i with [f a.(i) >= 0], or [length a] *)
  let lower_bound f a =
    let lo = ref 0 and hi = ref (Array.length a) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if f a.(mid) >= 0 then hi := mid else lo := mid + 1
    done;
    !lo

  (* first index i with [a.(i) > k], or [length a]: the child an exact-key
     descent takes (keys equal to a separator live in the right subtree) *)
  let child_index seps k = lower_bound (fun s -> if K.compare s k > 0 then 0 else -1) seps

  let node_entry_count = function
    | Leaf l -> Array.length l.keys
    | Node n -> sum n.counts

  let length t = node_entry_count (P.read t.pager t.root)

  let height t =
    let rec go page acc =
      match P.read t.pager page with
      | Leaf _ -> acc
      | Node n -> go n.children.(0) (acc + 1)
    in
    go t.root 1

  (* ---- find ---- *)

  let find t k =
    let rec go page =
      match P.read t.pager page with
      | Leaf l ->
          let i = lower_bound (fun k' -> K.compare k' k) l.keys in
          if i < Array.length l.keys && K.compare l.keys.(i) k = 0 then Some l.vals.(i)
          else None
      | Node n -> go n.children.(child_index n.seps k)
    in
    go t.root

  let mem t k = find t k <> None

  (* ---- insert ---- *)

  type 'v split = { sep : K.t; right : int; right_count : int }

  let rec ins t page k v : bool * 'v split option =
    match P.read t.pager page with
    | Leaf l ->
        let i = lower_bound (fun k' -> K.compare k' k) l.keys in
        if i < Array.length l.keys && K.compare l.keys.(i) k = 0 then begin
          let vals = Array.copy l.vals in
          vals.(i) <- v;
          P.write t.pager page (Leaf { l with vals });
          (false, None)
        end
        else begin
          let keys = insert_at l.keys i k and vals = insert_at l.vals i v in
          let len = Array.length keys in
          if len <= t.order then begin
            P.write t.pager page (Leaf { l with keys; vals });
            (true, None)
          end
          else begin
            let mid = len / 2 in
            let rkeys = Array.sub keys mid (len - mid)
            and rvals = Array.sub vals mid (len - mid) in
            let right =
              P.alloc t.pager (Leaf { keys = rkeys; vals = rvals; prev = page; next = l.next })
            in
            (* fix the back link of the old successor *)
            (if l.next <> nil then
               match P.read t.pager l.next with
               | Leaf nl -> P.write t.pager l.next (Leaf { nl with prev = right })
               | Node _ -> assert false);
            P.write t.pager page
              (Leaf { keys = Array.sub keys 0 mid; vals = Array.sub vals 0 mid;
                      prev = l.prev; next = right });
            (true, Some { sep = rkeys.(0); right; right_count = Array.length rkeys })
          end
        end
    | Node n ->
        let i = child_index n.seps k in
        let added, sp = ins t n.children.(i) k v in
        let delta = if added then 1 else 0 in
        let seps, children, counts =
          match sp with
          | None ->
              let counts = Array.copy n.counts in
              counts.(i) <- counts.(i) + delta;
              (n.seps, n.children, counts)
          | Some { sep; right; right_count } ->
              let counts = Array.copy n.counts in
              counts.(i) <- counts.(i) + delta - right_count;
              ( insert_at n.seps i sep,
                insert_at n.children (i + 1) right,
                insert_at counts (i + 1) right_count )
        in
        if Array.length seps <= t.order then begin
          P.write t.pager page (Node { seps; children; counts });
          (added, None)
        end
        else begin
          let m = Array.length seps in
          let mid = m / 2 in
          let promoted = seps.(mid) in
          let rseps = Array.sub seps (mid + 1) (m - mid - 1) in
          let rchildren = Array.sub children (mid + 1) (m - mid) in
          let rcounts = Array.sub counts (mid + 1) (m - mid) in
          let right =
            P.alloc t.pager (Node { seps = rseps; children = rchildren; counts = rcounts })
          in
          P.write t.pager page
            (Node
               { seps = Array.sub seps 0 mid;
                 children = Array.sub children 0 (mid + 1);
                 counts = Array.sub counts 0 (mid + 1) });
          (added, Some { sep = promoted; right; right_count = sum rcounts })
        end

  let insert t k v =
    let _, sp = ins t t.root k v in
    match sp with
    | None -> ()
    | Some { sep; right; right_count } ->
        let left_count = node_entry_count (P.read t.pager t.root) in
        t.root <-
          P.alloc t.pager
            (Node
               { seps = [| sep |]; children = [| t.root; right |];
                 counts = [| left_count; right_count |] })

  (* ---- delete (lazy: no rebalancing, counts stay exact) ---- *)

  let delete t k =
    let rec go page =
      match P.read t.pager page with
      | Leaf l ->
          let i = lower_bound (fun k' -> K.compare k' k) l.keys in
          if i < Array.length l.keys && K.compare l.keys.(i) k = 0 then begin
            P.write t.pager page
              (Leaf { l with keys = remove_at l.keys i; vals = remove_at l.vals i });
            true
          end
          else false
      | Node n ->
          let i = child_index n.seps k in
          let removed = go n.children.(i) in
          if removed then begin
            let counts = Array.copy n.counts in
            counts.(i) <- counts.(i) - 1;
            P.write t.pager page (Node { n with counts })
          end;
          removed
    in
    go t.root

  (* ---- probing ---- *)

  let rank t f =
    let rec go page =
      match P.read t.pager page with
      | Leaf l -> lower_bound f l.keys
      | Node n ->
          let i = lower_bound f n.seps in
          let before = ref 0 in
          for j = 0 to i - 1 do
            before := !before + n.counts.(j)
          done;
          !before + go n.children.(i)
    in
    go t.root

  let count_range t ~lo ~hi =
    let n = rank t hi - rank t lo in
    if n < 0 then 0 else n

  (* ---- cursors ---- *)

  type 'v cursor = { tree : 'v t; mutable page : int; mutable idx : int }
  (* Position: before entry [idx] of leaf [page]. [idx] may equal the leaf
     length, meaning "at the end of this leaf". *)

  let seek t f =
    let rec go page =
      match P.read t.pager page with
      | Leaf l -> { tree = t; page; idx = lower_bound f l.keys }
      | Node n -> go n.children.(lower_bound f n.seps)
    in
    go t.root

  let seek_key t k = seek t (fun k' -> K.compare k' k)
  let seek_min t = seek t (fun _ -> 0)

  let seek_max t =
    let rec go page =
      match P.read t.pager page with
      | Leaf l -> { tree = t; page; idx = Array.length l.keys }
      | Node n -> go n.children.(Array.length n.children - 1)
    in
    go t.root

  let read_leaf t page =
    match P.read t.pager page with
    | Leaf l -> l
    | Node _ -> assert false

  let next c =
    let rec go page idx =
      let l = read_leaf c.tree page in
      if idx < Array.length l.keys then begin
        c.page <- page;
        c.idx <- idx + 1;
        Some (l.keys.(idx), l.vals.(idx))
      end
      else if l.next = nil then begin
        c.page <- page;
        c.idx <- idx;
        None
      end
      else go l.next 0
    in
    go c.page c.idx

  let prev c =
    let rec go page idx =
      let l = read_leaf c.tree page in
      if idx > 0 then begin
        c.page <- page;
        c.idx <- idx - 1;
        Some (l.keys.(idx - 1), l.vals.(idx - 1))
      end
      else if l.prev = nil then begin
        c.page <- page;
        c.idx <- 0;
        None
      end
      else
        let pl = read_leaf c.tree l.prev in
        go l.prev (Array.length pl.keys)
    in
    go c.page c.idx

  let peek c =
    let saved_page = c.page and saved_idx = c.idx in
    let r = next c in
    c.page <- saved_page;
    c.idx <- saved_idx;
    r

  let min_binding t = next (seek_min t)
  let max_binding t = prev (seek_max t)

  (* ---- iteration ---- *)

  let iter f t =
    let c = seek_min t in
    let rec go () =
      match next c with
      | Some (k, v) ->
          f k v;
          go ()
      | None -> ()
    in
    go ()

  let fold f init t =
    let acc = ref init in
    iter (fun k v -> acc := f !acc k v) t;
    !acc

  let to_list t = List.rev (fold (fun acc k v -> (k, v) :: acc) [] t)

  (* ---- introspection ---- *)

  let stats t = P.stats t.pager
  let page_count t = P.page_count t.pager
  let resident_count t = P.resident_count t.pager
  let pool_pages t = P.pool_pages t.pager

  let check_invariants t =
    let fail fmt = Format.kasprintf failwith fmt in
    let leaves = ref [] in
    (* returns (entry count, leaf depth); bounds are exclusive/inclusive
       key constraints inherited from ancestors *)
    let rec go page lo hi =
      let in_bounds k =
        (match lo with None -> true | Some b -> K.compare b k <= 0)
        && match hi with None -> true | Some b -> K.compare k b < 0
      in
      match P.read t.pager page with
      | Leaf l ->
          let n = Array.length l.keys in
          if Array.length l.vals <> n then fail "leaf %d: keys/vals mismatch" page;
          for i = 0 to n - 2 do
            if K.compare l.keys.(i) l.keys.(i + 1) >= 0 then
              fail "leaf %d: keys not strictly sorted" page
          done;
          Array.iter
            (fun k -> if not (in_bounds k) then fail "leaf %d: key out of bounds" page)
            l.keys;
          leaves := (page, l.prev, l.next, l.keys) :: !leaves;
          (n, 1)
      | Node n ->
          let m = Array.length n.seps in
          if Array.length n.children <> m + 1 then fail "node %d: children arity" page;
          if Array.length n.counts <> m + 1 then fail "node %d: counts arity" page;
          for i = 0 to m - 2 do
            if K.compare n.seps.(i) n.seps.(i + 1) >= 0 then
              fail "node %d: separators not sorted" page
          done;
          Array.iter
            (fun s -> if not (in_bounds s) then fail "node %d: separator out of bounds" page)
            n.seps;
          let depth = ref 0 in
          let total = ref 0 in
          Array.iteri
            (fun i child ->
              let clo = if i = 0 then lo else Some n.seps.(i - 1) in
              let chi = if i = m then hi else Some n.seps.(i) in
              let cnt, d = go child clo chi in
              if cnt <> n.counts.(i) then
                fail "node %d: child %d count %d, recorded %d" page i cnt n.counts.(i);
              if !depth = 0 then depth := d
              else if d <> !depth then fail "node %d: uneven leaf depth" page;
              total := !total + cnt)
            n.children;
          (!total, !depth + 1)
    in
    ignore (go t.root None None);
    (* leaf chain must visit the leaves in key order *)
    let ordered = List.rev !leaves in
    let rec chain = function
      | (p1, _, next1, _) :: ((p2, prev2, _, _) :: _ as rest) ->
          if next1 <> p2 then fail "leaf chain: %d.next = %d, expected %d" p1 next1 p2;
          if prev2 <> p1 then fail "leaf chain: %d.prev = %d, expected %d" p2 prev2 p1;
          chain rest
      | [ (p, _, next, _) ] -> if next <> nil then fail "last leaf %d has a successor" p
      | [] -> ()
    in
    (match ordered with
    | (p, prev, _, _) :: _ -> if prev <> nil then fail "first leaf %d has a predecessor" p
    | [] -> ());
    chain ordered
end
