(** Counted B+-tree over buffer-pool-managed pages.

    The tree is the index primitive under MASS.  Two properties matter for
    the paper's cost model and index-only plans:

    - {b Counted interior nodes}: every routing entry carries the number of
      entries in its child subtree, so {!rank} and {!count_range} run in
      O(log n) touching only one root-to-leaf path each — counts are
      computed "on the index level without going to data" (paper §IV-B).
    - {b Seek-able cursors}: {!seek} positions by an arbitrary monotone
      probe, which lets axis cursors jump past whole subtrees (child and
      sibling axes) instead of scanning.

    Keys are unique; {!insert} is an upsert.  Deletion removes entries and
    maintains exact counts but does not rebalance (empty leaves remain
    chained and are skipped by cursors) — the classic lazy-deletion
    trade-off, adequate because the workload is read-mostly. *)

module type KEY = sig
  type t

  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

(** A monotone probe [f] classifies keys: [f k < 0] for keys before the
    target position and [f k >= 0] at or after it.  [f] must be
    non-decreasing along the key order. *)

module Make (K : KEY) : sig
  type 'v t

  type 'v node
  (** The pager payload: a leaf or counted interior node.  Abstract —
      only {!node_codec} gives the durable layer a view of it. *)

  val node_codec :
    enc_key:(Buffer.t -> K.t -> unit) ->
    dec_key:(Storage.Binio.reader -> K.t) ->
    enc_val:(Buffer.t -> 'v -> unit) ->
    dec_val:(Storage.Binio.reader -> 'v) ->
    'v node Storage.Pager.codec
  (** Build a page serializer from key/value serializers, for running the
      tree on the {!Storage.Pager.File} backend.  The wire format is the
      node structure verbatim (tag, leaf chain links, entries or
      separators+children+counts); integrity is the disk layer's job. *)

  val create :
    ?label:string ->
    ?order:int ->
    ?pool_pages:int ->
    ?backend:'v node Storage.Pager.backend ->
    unit ->
    'v t
  (** [order] is the maximum number of entries per node (default 64);
      [pool_pages] sizes the buffer pool; [label] names the underlying
      pager in telemetry events and introspection output; [backend]
      (default in-memory) selects where pages live.
      @raise Invalid_argument if [order < 4]. *)

  val open_existing :
    ?label:string ->
    ?order:int ->
    ?pool_pages:int ->
    backend:'v node Storage.Pager.backend ->
    root:int ->
    unit ->
    'v t
  (** Reattach to a tree previously persisted through a {!File} backend:
      [root] is the page id {!root_id} reported when it was last flushed.
      [order] must match the order the tree was built with. *)

  val root_id : 'v t -> int
  (** Current root page id (changes when the root splits — persist it on
      every commit). *)

  val flush : 'v t -> unit
  (** Write all dirty pages through to the backend. *)

  val length : 'v t -> int
  (** Total number of entries, O(1). *)

  val height : 'v t -> int
  (** Levels from root to leaf (1 for a single-leaf tree). *)

  val insert : 'v t -> K.t -> 'v -> unit
  (** Upsert: replaces the value if the key is present. *)

  val find : 'v t -> K.t -> 'v option
  val mem : 'v t -> K.t -> bool

  val delete : 'v t -> K.t -> bool
  (** Remove a key; returns whether it was present. *)

  val min_binding : 'v t -> (K.t * 'v) option
  val max_binding : 'v t -> (K.t * 'v) option

  (** {1 Probing} *)

  val rank : 'v t -> (K.t -> int) -> int
  (** [rank t f] — number of keys strictly before the probe position
      (keys with [f k < 0]).  O(log n). *)

  val count_range : 'v t -> lo:(K.t -> int) -> hi:(K.t -> int) -> int
  (** Entries at or after [lo] and strictly before [hi]:
      [rank t hi - rank t lo].  O(log n), no data access. *)

  (** {1 Cursors}

      A cursor is a position between entries.  Cursors are invalidated by
      any update to the tree. *)

  type 'v cursor

  val seek : 'v t -> (K.t -> int) -> 'v cursor
  (** Position just before the first key [k] with [f k >= 0]. *)

  val seek_key : 'v t -> K.t -> 'v cursor
  (** Position just before [k] (or where it would be). *)

  val seek_min : 'v t -> 'v cursor
  val seek_max : 'v t -> 'v cursor
  (** Position after the last entry. *)

  val next : 'v cursor -> (K.t * 'v) option
  (** Entry just after the cursor, advancing past it. *)

  val prev : 'v cursor -> (K.t * 'v) option
  (** Entry just before the cursor, retreating before it. *)

  val peek : 'v cursor -> (K.t * 'v) option
  (** Like {!next} without advancing. *)

  (** {1 Whole-tree iteration} *)

  val iter : (K.t -> 'v -> unit) -> 'v t -> unit
  val fold : ('a -> K.t -> 'v -> 'a) -> 'a -> 'v t -> 'a
  val to_list : 'v t -> (K.t * 'v) list

  (** {1 Introspection} *)

  val stats : 'v t -> Storage.Stats.t
  val page_count : 'v t -> int

  val resident_count : 'v t -> int
  (** Pages currently resident in the buffer pool. *)

  val pool_pages : 'v t -> int
  (** Configured buffer-pool capacity in pages. *)

  val check_invariants : 'v t -> unit
  (** Validate structural invariants (sortedness, partition bounds, exact
      counts, uniform depth, leaf chaining).  @raise Failure on violation.
      Test support. *)
end
