(** Telemetry event bus: the always-on observability spine.

    One process-wide bus carries structured events — log records, counter
    bumps and timing spans — from every layer (storage buffer pools, the
    optimizer, the engine, the query service) to whatever subscribers are
    attached: a bounded ring buffer (drained by [vamana events]), a JSONL
    sink, or arbitrary callbacks.

    The design constraint is the hot path.  With no subscriber attached
    {!active} is a single load-and-branch, and instrumentation sites are
    written as

    {[ if Obs.active () then Obs.emit ~category:"storage" "eviction" [...] ]}

    so an unobserved process pays one predictable branch per site — no
    event record, no attribute list, no timestamp syscall.  Events are
    only materialized while someone is listening.

    Per-category sampling thins high-frequency categories (page-level
    storage events under a scan) without touching low-frequency ones
    (slow queries): a sample rate of [n] keeps every [n]-th event of that
    category, counting the skipped ones so drains can report what was
    thinned. *)

type severity = Debug | Info | Warn | Error

type value =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type event = {
  seq : int;  (** process-wide emission sequence number, from 0 *)
  ts : float;  (** monotonic seconds since the bus first woke up *)
  severity : severity;
  category : string;  (** e.g. ["storage"], ["optimizer"], ["query"], ["service"] *)
  name : string;  (** event name within the category *)
  attrs : (string * value) list;
}

val severity_to_string : severity -> string
val severity_of_string : string -> severity option

(** {1 Hot-path gate} *)

val active : unit -> bool
(** [true] iff at least one subscriber (ring or sink) is attached.  This
    is the single branch instrumentation sites pay when nobody listens;
    guard every [emit] with it so attribute lists are never built in
    vain. *)

val emit :
  ?severity:severity -> category:string -> string -> (string * value) list -> unit
(** Emit an event to every subscriber (after the category's sampling
    decision).  A no-op when {!active} is [false].  [severity] defaults
    to [Info]. *)

val time_span :
  ?severity:severity ->
  category:string ->
  string ->
  (string * value) list ->
  (unit -> 'a) ->
  'a
(** [time_span ~category name attrs f] runs [f] and, if the bus is
    active, emits the event with a [dur_ms] attribute appended.  When
    inactive it costs the one branch and runs [f] directly. *)

(** {1 Sampling} *)

val set_sample_rate : string -> int -> unit
(** Keep one event in [n] for the category (default 1 = keep all).
    @raise Invalid_argument if [n < 1]. *)

val sample_rate : string -> int

val sampled_out : unit -> int
(** Events suppressed by sampling since the last {!reset}. *)

(** {1 Ring buffer} *)

val attach_ring : ?capacity:int -> unit -> unit
(** Start collecting events into the process ring buffer (default
    capacity {!default_ring_capacity}).  Re-attaching resizes and clears
    the ring. *)

val detach_ring : unit -> unit
val default_ring_capacity : int

val drain : unit -> event list
(** Remove and return the ring's contents, oldest first. *)

val ring_length : unit -> int

val dropped : unit -> int
(** Events overwritten because the ring was full, since attach/reset. *)

(** {1 Sinks} *)

type sink

val attach_sink : (event -> unit) -> sink
(** Subscribe a callback to every (post-sampling) event.  Exceptions
    raised by the callback propagate to the emitter — sinks are trusted
    plumbing, not user code. *)

val detach_sink : sink -> unit

val attach_jsonl : out_channel -> sink
(** A sink writing each event as one JSON line (see {!to_json_string})
    to the channel, flushing per event so [--follow] output is live. *)

(** {1 JSON} *)

val to_json_string : event -> string
(** One-line JSON object:
    [{"seq":0,"ts_ms":1.25,"severity":"info","category":"storage",
      "name":"eviction","attrs":{...}}]. *)

val to_text : event -> string
(** One-line human rendering for [vamana events] without [--json]. *)

(** {1 Lifecycle} *)

val reset : unit -> unit
(** Detach everything, clear the ring, sampling tables and counters
    (test support; also gives [vamana events] a clean slate). *)
