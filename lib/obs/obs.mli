(** Telemetry event bus: the always-on observability spine.

    One process-wide bus carries structured events — log records, counter
    bumps and timing spans — from every layer (storage buffer pools, the
    optimizer, the engine, the query service) to whatever subscribers are
    attached: a bounded ring buffer (drained by [vamana events]), a JSONL
    sink, or arbitrary callbacks.

    The design constraint is the hot path.  With no subscriber attached
    {!active} is a single load-and-branch, and instrumentation sites are
    written as

    {[ if Obs.active () then Obs.emit ~category:"storage" "eviction" [...] ]}

    so an unobserved process pays one predictable branch per site — no
    event record, no attribute list, no timestamp syscall.  Events are
    only materialized while someone is listening.

    Per-category sampling thins high-frequency categories (page-level
    storage events under a scan) without touching low-frequency ones
    (slow queries): a sample rate of [n] keeps every [n]-th event of that
    category, counting the skipped ones so drains can report what was
    thinned. *)

type severity = Debug | Info | Warn | Error

type value =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type event = {
  seq : int;  (** process-wide emission sequence number, from 0 *)
  ts : float;
      (** monotonic {e seconds} since the bus first woke up — the one
          timestamp unit, used verbatim by {!to_json_string} ([ts]
          field) and {!to_text} *)
  severity : severity;
  category : string;  (** e.g. ["storage"], ["optimizer"], ["query"], ["service"] *)
  name : string;  (** event name within the category *)
  attrs : (string * value) list;
}

val severity_to_string : severity -> string
val severity_of_string : string -> severity option

(** {1 Hot-path gate} *)

val active : unit -> bool
(** [true] iff at least one subscriber (ring or sink) is attached.  This
    is the single branch instrumentation sites pay when nobody listens;
    guard every [emit] with it so attribute lists are never built in
    vain. *)

val emit :
  ?severity:severity -> category:string -> string -> (string * value) list -> unit
(** Emit an event to every subscriber (after the category's sampling
    decision).  A no-op when {!active} is [false].  [severity] defaults
    to [Info]. *)

val time_span :
  ?severity:severity ->
  category:string ->
  string ->
  (string * value) list ->
  (unit -> 'a) ->
  'a
(** [time_span ~category name attrs f] runs [f] and, if the bus is
    active, emits the event with a [dur_ms] attribute appended.  When
    inactive it costs the one branch and runs [f] directly.  If [f]
    raises, the span is still emitted — at [Error] severity with an
    [error] attribute holding the exception text — and the exception is
    re-raised with its backtrace intact, so failed work shows up in
    traces instead of vanishing. *)

(** {1 Emission context}

    Dynamically scoped attributes attached to every event emitted
    within the scope — how a query id minted at the service layer
    reaches storage events fired five layers down without threading it
    through every signature. *)

val with_context : (string * value) list -> (unit -> 'a) -> 'a
(** [with_context attrs f] appends [attrs] to the attributes of every
    event emitted during [f] (nests: inner contexts stack on outer
    ones).  The previous context is restored when [f] returns or
    raises. *)

val context : unit -> (string * value) list
(** The attributes the current scope would append (outermost first). *)

val fresh_query_id : unit -> int
(** Mint a process-unique query id (1, 2, ...).  Independent of the
    bus's active state — flight-recorder records need ids even when
    nobody is tracing.  Restarts from 1 after {!reset}. *)

(** {1 Sampling} *)

val set_sample_rate : string -> int -> unit
(** Keep one event in [n] for the category (default 1 = keep all).
    @raise Invalid_argument if [n < 1]. *)

val sample_rate : string -> int

val sampled_out : unit -> int
(** Events suppressed by sampling since the last {!reset}. *)

(** {1 Ring buffer} *)

val attach_ring : ?capacity:int -> unit -> unit
(** Start collecting events into the process ring buffer (default
    capacity {!default_ring_capacity}).  Re-attaching resizes and clears
    the ring. *)

val detach_ring : unit -> unit
val default_ring_capacity : int

val drain : unit -> event list
(** Remove and return the ring's contents, oldest first. *)

val ring_length : unit -> int

val dropped : unit -> int
(** Events overwritten because the ring was full, since attach/reset. *)

(** {1 Sinks} *)

type sink

val attach_sink : (event -> unit) -> sink
(** Subscribe a callback to every (post-sampling) event.  Exceptions
    raised by the callback propagate to the emitter — sinks are trusted
    plumbing, not user code. *)

val detach_sink : sink -> unit

val attach_jsonl : out_channel -> sink
(** A sink writing each event as one JSON line (see {!to_json_string})
    to the channel, flushing per event so [--follow] output is live. *)

(** {1 JSON} *)

val to_json_string : event -> string
(** One-line JSON object:
    [{"seq":0,"ts":0.00125,"severity":"info","category":"storage",
      "name":"eviction","attrs":{...}}].  [ts] is the event's monotonic
    seconds, unchanged. *)

val to_text : event -> string
(** One-line human rendering for [vamana events] without [--json];
    leads with the timestamp in seconds. *)

(** {1 Chrome trace_event export} *)

module Trace : sig
  val to_chrome : ?process_name:string -> event list -> string
  (** Render events as a Chrome [trace_event] JSON document (the
      [{"traceEvents":[...]}] object form) loadable in Perfetto or
      chrome://tracing.  Each category becomes one named thread
      (tid); events carrying a [dur_ms] attribute become [B]/[E]
      span pairs (the bus stamps spans at their {e end}, so the [B]
      timestamp is [ts - dur]); other events become thread-scoped
      instants.  Span nesting is repaired so B/E pairs are always
      balanced and properly nested per tid, and timestamps (in
      microseconds, as the format requires) are monotone per tid.
      [process_name] defaults to ["vamana"]. *)
end

(** {1 Lifecycle} *)

val reset : unit -> unit
(** Detach everything, clear the ring, sampling tables and counters
    (test support; also gives [vamana events] a clean slate). *)
