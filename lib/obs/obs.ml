type severity = Debug | Info | Warn | Error

type value =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type event = {
  seq : int;
  ts : float;
  severity : severity;
  category : string;
  name : string;
  attrs : (string * value) list;
}

let severity_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let severity_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

(* ---- bus state ----

   One process-wide bus.  [active_flag] is the only word the hot path
   reads; it is true exactly while a ring or at least one sink is
   attached, so instrumentation sites guarded by [active ()] cost one
   load-and-branch when the process is unobserved. *)

type sink = { id : int; fn : event -> unit }

type ring = {
  slots : event option array;
  mutable head : int;  (* next write position *)
  mutable length : int;
  mutable dropped : int;
}

let default_ring_capacity = 4096

let active_flag = ref false
let ring_state : ring option ref = ref None
let sinks : sink list ref = ref []
let next_sink_id = ref 0
let seq_counter = ref 0
let sampled_out_count = ref 0

(* per-category sampling: rate n keeps every n-th event; [tick] counts
   emissions within the current window *)
type sampler = { mutable rate : int; mutable tick : int }

let samplers : (string, sampler) Hashtbl.t = Hashtbl.create 16

(* the bus clock starts on first use; timestamps are seconds since then,
   monotone because they come from one process-local origin *)
let epoch = ref nan
let now () =
  let t = Unix.gettimeofday () in
  if Float.is_nan !epoch then epoch := t;
  t -. !epoch

let refresh_active () = active_flag := !ring_state <> None || !sinks <> []
let active () = !active_flag

(* ---- sampling ---- *)

let set_sample_rate category n =
  if n < 1 then invalid_arg "Obs.set_sample_rate: rate < 1";
  match Hashtbl.find_opt samplers category with
  | Some s ->
      s.rate <- n;
      s.tick <- 0
  | None -> Hashtbl.add samplers category { rate = n; tick = 0 }

let sample_rate category =
  match Hashtbl.find_opt samplers category with Some s -> s.rate | None -> 1

let sampled_out () = !sampled_out_count

(* keep the first event of each window so a freshly attached subscriber
   sees every category immediately *)
let sample_pass category =
  match Hashtbl.find_opt samplers category with
  | None -> true
  | Some s ->
      if s.rate <= 1 then true
      else begin
        let keep = s.tick = 0 in
        s.tick <- (s.tick + 1) mod s.rate;
        if not keep then incr sampled_out_count;
        keep
      end

(* ---- ring ---- *)

let attach_ring ?(capacity = default_ring_capacity) () =
  if capacity < 1 then invalid_arg "Obs.attach_ring: capacity < 1";
  ring_state := Some { slots = Array.make capacity None; head = 0; length = 0; dropped = 0 };
  refresh_active ()

let detach_ring () =
  ring_state := None;
  refresh_active ()

let ring_push r e =
  let cap = Array.length r.slots in
  r.slots.(r.head) <- Some e;
  r.head <- (r.head + 1) mod cap;
  if r.length < cap then r.length <- r.length + 1 else r.dropped <- r.dropped + 1

let drain () =
  match !ring_state with
  | None -> []
  | Some r ->
      let cap = Array.length r.slots in
      let start = (r.head - r.length + cap * 2) mod cap in
      let out =
        List.init r.length (fun i ->
            match r.slots.((start + i) mod cap) with
            | Some e -> e
            | None -> assert false)
      in
      Array.fill r.slots 0 cap None;
      r.head <- 0;
      r.length <- 0;
      out

let ring_length () = match !ring_state with None -> 0 | Some r -> r.length
let dropped () = match !ring_state with None -> 0 | Some r -> r.dropped

(* ---- sinks ---- *)

let attach_sink fn =
  let s = { id = !next_sink_id; fn } in
  incr next_sink_id;
  sinks := !sinks @ [ s ];
  refresh_active ();
  s

let detach_sink s =
  sinks := List.filter (fun s' -> s'.id <> s.id) !sinks;
  refresh_active ()

(* ---- emission context ----

   Dynamically scoped attributes appended to every event emitted within
   [with_context]; the service wraps query execution in a [qid] context
   so storage events fired deep inside pagers attribute to the query
   that caused them without threading ids through every layer. *)

let context_attrs : (string * value) list ref = ref []
let context () = !context_attrs

let with_context attrs f =
  let saved = !context_attrs in
  context_attrs := saved @ attrs;
  Fun.protect ~finally:(fun () -> context_attrs := saved) f

(* query ids are minted even while the bus is inactive: the flight
   recorder needs them whether or not anyone is tracing *)
let query_id_counter = ref 0

let fresh_query_id () =
  incr query_id_counter;
  !query_id_counter

(* ---- emission ---- *)

let emit ?(severity = Info) ~category name attrs =
  if !active_flag && sample_pass category then begin
    let attrs = match !context_attrs with [] -> attrs | ctx -> attrs @ ctx in
    let e = { seq = !seq_counter; ts = now (); severity; category; name; attrs } in
    incr seq_counter;
    (match !ring_state with Some r -> ring_push r e | None -> ());
    List.iter (fun s -> s.fn e) !sinks
  end

let time_span ?severity ~category name attrs f =
  if !active_flag then begin
    let t0 = Unix.gettimeofday () in
    match f () with
    | r ->
        let dur_ms = (Unix.gettimeofday () -. t0) *. 1000. in
        emit ?severity ~category name (attrs @ [ ("dur_ms", Float dur_ms) ]);
        r
    | exception exn ->
        (* a span that raises still happened: emit it with the error
           attached so failed queries appear in traces, then re-raise *)
        let bt = Printexc.get_raw_backtrace () in
        let dur_ms = (Unix.gettimeofday () -. t0) *. 1000. in
        emit ~severity:Error ~category name
          (attrs @ [ ("dur_ms", Float dur_ms); ("error", Str (Printexc.to_string exn)) ]);
        Printexc.raise_with_backtrace exn bt
  end
  else f ()

(* ---- JSON / text rendering ----

   Hand-rolled like Metrics: names are identifiers we mint, but query
   text rides in attributes, so escape fully. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let value_to_json = function
  | Int n -> string_of_int n
  | Float f -> json_float f
  | Str s -> "\"" ^ json_escape s ^ "\""
  | Bool b -> if b then "true" else "false"

let to_json_string e =
  let attrs =
    String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) (value_to_json v)) e.attrs)
  in
  (* ts is monotonic seconds, same unit as the record field: %.9g keeps
     microsecond resolution for hours of uptime without trailing noise *)
  Printf.sprintf "{\"seq\":%d,\"ts\":%s,\"severity\":\"%s\",\"category\":\"%s\",\"name\":\"%s\",\"attrs\":{%s}}"
    e.seq
    (if Float.is_finite e.ts then Printf.sprintf "%.9g" e.ts else "null")
    (severity_to_string e.severity)
    (json_escape e.category) (json_escape e.name) attrs

let value_to_text = function
  | Int n -> string_of_int n
  | Float f -> Printf.sprintf "%.3f" f
  | Str s -> s
  | Bool b -> string_of_bool b

let to_text e =
  Printf.sprintf "%12.6f %-5s %-10s %-16s %s" e.ts
    (severity_to_string e.severity)
    e.category e.name
    (String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ value_to_text v) e.attrs))

let attach_jsonl oc =
  attach_sink (fun e ->
      output_string oc (to_json_string e);
      output_char oc '\n';
      flush oc)

(* ---- Chrome trace_event export ---- *)

module Trace = struct
  (* Each bus category becomes one Chrome "thread": categories are the
     process's logical lanes (query, storage, service, ...), and lanes
     are what Perfetto renders as rows.  Events carrying a [dur_ms]
     attribute were emitted at span *end*, so the B timestamp is
     recovered as [ts - dur]; everything else becomes an instant.

     Chrome requires B/E pairs per tid to nest like a call stack.  Bus
     spans are only approximately nested (ends are measured, starts are
     derived), so we repair them: intervals sorted by (start asc, end
     desc) are replayed against an explicit stack, a child's end is
     clamped to its parent's, and every B gets exactly one E.  The
     result is guaranteed balanced and per-tid monotonic. *)

  let span_duration e =
    match List.assoc_opt "dur_ms" e.attrs with
    | Some (Float ms) -> Some (Float.max 0.0 ms /. 1000.)
    | Some (Int ms) -> Some (Float.max 0.0 (float_of_int ms) /. 1000.)
    | _ -> None

  let us t = Printf.sprintf "%.3f" (t *. 1e6)

  let args_json attrs =
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) (value_to_json v))
           attrs)
    ^ "}"

  let meta_event ~tid name args =
    Printf.sprintf "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"ts\":0,\"args\":%s}"
      name tid args

  let begin_event ~tid ~ts e =
    Printf.sprintf
      "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"B\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"args\":%s}"
      (json_escape e.name) (json_escape e.category) tid (us ts)
      (args_json (("severity", Str (severity_to_string e.severity)) :: e.attrs))

  let end_event ~tid ~ts e =
    Printf.sprintf
      "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"E\",\"pid\":1,\"tid\":%d,\"ts\":%s}"
      (json_escape e.name) (json_escape e.category) tid (us ts)

  let instant_event ~tid e =
    Printf.sprintf
      "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"args\":%s}"
      (json_escape e.name) (json_escape e.category) tid (us e.ts)
      (args_json (("severity", Str (severity_to_string e.severity)) :: e.attrs))

  let to_chrome ?(process_name = "vamana") events =
    let cats = List.sort_uniq String.compare (List.map (fun e -> e.category) events) in
    let tids = List.mapi (fun i c -> (c, i + 1)) cats in
    let tid_of c = List.assoc c tids in
    let out = ref [] in
    (* collected in emission order; (ts, json) so a final stable sort by
       ts can interleave lanes without breaking per-tid ordering *)
    let push ts json = out := (ts, json) :: !out in
    List.iter
      (fun cat ->
        let tid = tid_of cat in
        let spans, instants =
          List.partition_map
            (fun e ->
              match span_duration e with
              | Some d -> Left (Float.max 0.0 (e.ts -. d), e.ts, e)
              | None -> Right e)
            (List.filter (fun e -> e.category = cat) events)
        in
        List.iter (fun e -> push e.ts (instant_event ~tid e)) instants;
        let spans =
          List.stable_sort
            (fun (s1, e1, _) (s2, e2, _) ->
              match Float.compare s1 s2 with 0 -> Float.compare e2 e1 | c -> c)
            spans
        in
        let stack = ref [] in
        let pop_until limit =
          let rec go () =
            match !stack with
            | (end_ts, ev) :: rest when end_ts <= limit ->
                push end_ts (end_event ~tid ~ts:end_ts ev);
                stack := rest;
                go ()
            | _ -> ()
          in
          go ()
        in
        List.iter
          (fun (start, stop, ev) ->
            pop_until start;
            let stop =
              match !stack with
              | (parent_end, _) :: _ -> Float.min stop parent_end
              | [] -> stop
            in
            let stop = Float.max stop start in
            push start (begin_event ~tid ~ts:start ev);
            stack := (stop, ev) :: !stack)
          spans;
        pop_until infinity)
      cats;
    let body = List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) (List.rev !out) in
    let meta =
      meta_event ~tid:0 "process_name"
        (Printf.sprintf "{\"name\":\"%s\"}" (json_escape process_name))
      :: List.map
           (fun (c, tid) ->
             meta_event ~tid "thread_name" (Printf.sprintf "{\"name\":\"%s\"}" (json_escape c)))
           tids
    in
    Printf.sprintf "{\"traceEvents\":[%s],\"displayTimeUnit\":\"ms\"}"
      (String.concat "," (meta @ List.map snd body))
end

(* ---- lifecycle ---- *)

let reset () =
  ring_state := None;
  sinks := [];
  Hashtbl.reset samplers;
  sampled_out_count := 0;
  seq_counter := 0;
  query_id_counter := 0;
  context_attrs := [];
  epoch := nan;
  refresh_active ()
