type severity = Debug | Info | Warn | Error

type value =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type event = {
  seq : int;
  ts : float;
  severity : severity;
  category : string;
  name : string;
  attrs : (string * value) list;
}

let severity_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let severity_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

(* ---- bus state ----

   One process-wide bus.  [active_flag] is the only word the hot path
   reads; it is true exactly while a ring or at least one sink is
   attached, so instrumentation sites guarded by [active ()] cost one
   load-and-branch when the process is unobserved. *)

type sink = { id : int; fn : event -> unit }

type ring = {
  slots : event option array;
  mutable head : int;  (* next write position *)
  mutable length : int;
  mutable dropped : int;
}

let default_ring_capacity = 4096

let active_flag = ref false
let ring_state : ring option ref = ref None
let sinks : sink list ref = ref []
let next_sink_id = ref 0
let seq_counter = ref 0
let sampled_out_count = ref 0

(* per-category sampling: rate n keeps every n-th event; [tick] counts
   emissions within the current window *)
type sampler = { mutable rate : int; mutable tick : int }

let samplers : (string, sampler) Hashtbl.t = Hashtbl.create 16

(* the bus clock starts on first use; timestamps are seconds since then,
   monotone because they come from one process-local origin *)
let epoch = ref nan
let now () =
  let t = Unix.gettimeofday () in
  if Float.is_nan !epoch then epoch := t;
  t -. !epoch

let refresh_active () = active_flag := !ring_state <> None || !sinks <> []
let active () = !active_flag

(* ---- sampling ---- *)

let set_sample_rate category n =
  if n < 1 then invalid_arg "Obs.set_sample_rate: rate < 1";
  match Hashtbl.find_opt samplers category with
  | Some s ->
      s.rate <- n;
      s.tick <- 0
  | None -> Hashtbl.add samplers category { rate = n; tick = 0 }

let sample_rate category =
  match Hashtbl.find_opt samplers category with Some s -> s.rate | None -> 1

let sampled_out () = !sampled_out_count

(* keep the first event of each window so a freshly attached subscriber
   sees every category immediately *)
let sample_pass category =
  match Hashtbl.find_opt samplers category with
  | None -> true
  | Some s ->
      if s.rate <= 1 then true
      else begin
        let keep = s.tick = 0 in
        s.tick <- (s.tick + 1) mod s.rate;
        if not keep then incr sampled_out_count;
        keep
      end

(* ---- ring ---- *)

let attach_ring ?(capacity = default_ring_capacity) () =
  if capacity < 1 then invalid_arg "Obs.attach_ring: capacity < 1";
  ring_state := Some { slots = Array.make capacity None; head = 0; length = 0; dropped = 0 };
  refresh_active ()

let detach_ring () =
  ring_state := None;
  refresh_active ()

let ring_push r e =
  let cap = Array.length r.slots in
  r.slots.(r.head) <- Some e;
  r.head <- (r.head + 1) mod cap;
  if r.length < cap then r.length <- r.length + 1 else r.dropped <- r.dropped + 1

let drain () =
  match !ring_state with
  | None -> []
  | Some r ->
      let cap = Array.length r.slots in
      let start = (r.head - r.length + cap * 2) mod cap in
      let out =
        List.init r.length (fun i ->
            match r.slots.((start + i) mod cap) with
            | Some e -> e
            | None -> assert false)
      in
      Array.fill r.slots 0 cap None;
      r.head <- 0;
      r.length <- 0;
      out

let ring_length () = match !ring_state with None -> 0 | Some r -> r.length
let dropped () = match !ring_state with None -> 0 | Some r -> r.dropped

(* ---- sinks ---- *)

let attach_sink fn =
  let s = { id = !next_sink_id; fn } in
  incr next_sink_id;
  sinks := !sinks @ [ s ];
  refresh_active ();
  s

let detach_sink s =
  sinks := List.filter (fun s' -> s'.id <> s.id) !sinks;
  refresh_active ()

(* ---- emission ---- *)

let emit ?(severity = Info) ~category name attrs =
  if !active_flag && sample_pass category then begin
    let e = { seq = !seq_counter; ts = now (); severity; category; name; attrs } in
    incr seq_counter;
    (match !ring_state with Some r -> ring_push r e | None -> ());
    List.iter (fun s -> s.fn e) !sinks
  end

let time_span ?severity ~category name attrs f =
  if !active_flag then begin
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dur_ms = (Unix.gettimeofday () -. t0) *. 1000. in
    emit ?severity ~category name (attrs @ [ ("dur_ms", Float dur_ms) ]);
    r
  end
  else f ()

(* ---- JSON / text rendering ----

   Hand-rolled like Metrics: names are identifiers we mint, but query
   text rides in attributes, so escape fully. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let value_to_json = function
  | Int n -> string_of_int n
  | Float f -> json_float f
  | Str s -> "\"" ^ json_escape s ^ "\""
  | Bool b -> if b then "true" else "false"

let to_json_string e =
  let attrs =
    String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) (value_to_json v)) e.attrs)
  in
  Printf.sprintf "{\"seq\":%d,\"ts_ms\":%s,\"severity\":\"%s\",\"category\":\"%s\",\"name\":\"%s\",\"attrs\":{%s}}"
    e.seq
    (json_float (e.ts *. 1000.))
    (severity_to_string e.severity)
    (json_escape e.category) (json_escape e.name) attrs

let value_to_text = function
  | Int n -> string_of_int n
  | Float f -> Printf.sprintf "%.3f" f
  | Str s -> s
  | Bool b -> string_of_bool b

let to_text e =
  Printf.sprintf "%10.3f %-5s %-10s %-16s %s" (e.ts *. 1000.)
    (severity_to_string e.severity)
    e.category e.name
    (String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ value_to_text v) e.attrs))

let attach_jsonl oc =
  attach_sink (fun e ->
      output_string oc (to_json_string e);
      output_char oc '\n';
      flush oc)

(* ---- lifecycle ---- *)

let reset () =
  ring_state := None;
  sinks := [];
  Hashtbl.reset samplers;
  sampled_out_count := 0;
  seq_counter := 0;
  epoch := nan;
  refresh_active ()
