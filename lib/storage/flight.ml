(* The flight recorder: a bounded append-only log of per-query records
   under the store's data directory.

   Framing per record: magic u32, kind u8, payload-length u32, CRC-32
   of the payload u32, payload bytes.  Appends are buffered and flushed
   (not fsynced) per record — the budget is "survive a process crash",
   not "survive power loss", and the OS page cache delivers that
   without a disk round-trip per query.  Readers stop at the first
   short or checksum-failing record, so a torn tail costs at most the
   record being written when the process died.

   Bounding is by rotation: when [flight.log] outgrows [max_bytes] it
   is renamed to [flight.log.1] (replacing the previous generation) and
   a fresh log is started, so the pair holds between one and two
   generations of history. *)

let magic = 0x544C4656 (* "VFLT" little-endian *)
let kind_begin = 1
let kind_end = 2 (* original End layout; still decoded, no longer written *)
let kind_end2 = 3 (* End + plan-health fields (sampled flag, drift score) *)
let file_name = "flight.log"
let rotated_name = "flight.log.1"
let default_max_bytes = 1 lsl 20

type begin_record = { b_qid : int; b_epoch : int; b_source : string; b_at_ms : int }

type query_record = {
  qid : int;
  source : string;
  ok : bool;
  cache : string;
  latency_us : int;
  pages_read : int;
  physical_reads : int;
  wal_bytes : int;
  fsyncs : int;
  results : int;
  epoch : int;
  at_ms : int;
  sampled : bool;
  drift : float;
}

type entry = Begin of begin_record | End of query_record

type t = {
  dir : string;
  max_bytes : int;
  mutable oc : out_channel;
  mutable size : int;
  mutable closed : bool;
}

let log_path dir = Filename.concat dir file_name
let rotated_path dir = Filename.concat dir rotated_name

let open_log dir =
  open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644 (log_path dir)

let open_dir ?(max_bytes = default_max_bytes) ~dir () =
  if max_bytes < 4096 then invalid_arg "Flight.open_dir: max_bytes < 4096";
  if not (Sys.file_exists dir) then invalid_arg ("Flight.open_dir: no such directory: " ^ dir);
  let size = try (Unix.stat (log_path dir)).st_size with Unix.Unix_error _ -> 0 in
  { dir; max_bytes; oc = open_log dir; size; closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    close_out_noerr t.oc
  end

let rotate t =
  close_out_noerr t.oc;
  Sys.rename (log_path t.dir) (rotated_path t.dir);
  t.oc <- open_log t.dir;
  t.size <- 0

let append t kind payload =
  if t.closed then invalid_arg "Flight.append: recorder closed";
  let frame = Buffer.create (String.length payload + 16) in
  Binio.w_u32 frame magic;
  Binio.w_u8 frame kind;
  Binio.w_u32 frame (String.length payload);
  Binio.w_u32 frame (Int32.to_int (Crc32.string payload) land 0xFFFFFFFF);
  Buffer.add_string frame payload;
  Buffer.output_buffer t.oc frame;
  flush t.oc;
  t.size <- t.size + Buffer.length frame;
  if t.size > t.max_bytes then rotate t

let now_ms () = int_of_float (Unix.gettimeofday () *. 1000.)

let record_begin t ~qid ~epoch ~source =
  let b = Buffer.create 64 in
  Binio.w_u64 b qid;
  Binio.w_u64 b epoch;
  Binio.w_u64 b (now_ms ());
  Binio.w_str b source;
  append t kind_begin (Buffer.contents b)

let record_end t (r : query_record) =
  let b = Buffer.create 128 in
  Binio.w_u64 b r.qid;
  Binio.w_u8 b (if r.ok then 1 else 0);
  Binio.w_str b r.cache;
  Binio.w_u64 b r.latency_us;
  Binio.w_u64 b r.pages_read;
  Binio.w_u64 b r.physical_reads;
  Binio.w_u64 b r.wal_bytes;
  Binio.w_u64 b r.fsyncs;
  Binio.w_u64 b r.results;
  Binio.w_u64 b r.epoch;
  Binio.w_u64 b r.at_ms;
  Binio.w_str b r.source;
  Binio.w_u8 b (if r.sampled then 1 else 0);
  (* drift in micro-units: scores are small (doublings of q-error), so
     micro precision loses nothing and keeps the frame all-integer *)
  Binio.w_u64 b (int_of_float (Float.max 0.0 r.drift *. 1e6));
  append t kind_end2 (Buffer.contents b)

let decode_begin payload =
  let r = Binio.reader payload in
  let b_qid = Binio.r_u64 r in
  let b_epoch = Binio.r_u64 r in
  let b_at_ms = Binio.r_u64 r in
  let b_source = Binio.r_str r in
  { b_qid; b_epoch; b_source; b_at_ms }

let decode_end ~v2 payload =
  let r = Binio.reader payload in
  let qid = Binio.r_u64 r in
  let ok = Binio.r_u8 r = 1 in
  let cache = Binio.r_str r in
  let latency_us = Binio.r_u64 r in
  let pages_read = Binio.r_u64 r in
  let physical_reads = Binio.r_u64 r in
  let wal_bytes = Binio.r_u64 r in
  let fsyncs = Binio.r_u64 r in
  let results = Binio.r_u64 r in
  let epoch = Binio.r_u64 r in
  let at_ms = Binio.r_u64 r in
  let source = Binio.r_str r in
  let sampled, drift =
    if v2 then
      let s = Binio.r_u8 r = 1 in
      let d = float_of_int (Binio.r_u64 r) /. 1e6 in
      (s, d)
    else (false, 0.0)
  in
  { qid; source; ok; cache; latency_us; pages_read; physical_reads; wal_bytes; fsyncs;
    results; epoch; at_ms; sampled; drift }

(* parse one file's records, stopping quietly at the first torn or
   corrupt frame: everything before it is intact by CRC *)
let parse_file path =
  if not (Sys.file_exists path) then []
  else begin
    let contents = In_channel.with_open_bin path In_channel.input_all in
    let len = String.length contents in
    let out = ref [] in
    let pos = ref 0 in
    (try
       while !pos + 13 <= len do
         let r = Binio.reader ~pos:!pos contents in
         if Binio.r_u32 r <> magic then raise Exit;
         let kind = Binio.r_u8 r in
         let plen = Binio.r_u32 r in
         let crc = Binio.r_u32 r in
         if r.pos + plen > len then raise Exit;
         let payload = String.sub contents r.pos plen in
         if Int32.to_int (Crc32.string payload) land 0xFFFFFFFF <> crc then raise Exit;
         (if kind = kind_begin then out := Begin (decode_begin payload) :: !out
          else if kind = kind_end then out := End (decode_end ~v2:false payload) :: !out
          else if kind = kind_end2 then out := End (decode_end ~v2:true payload) :: !out);
         pos := r.pos + plen
       done
     with Exit | Binio.Short -> ());
    List.rev !out
  end

let read_dir ~dir = parse_file (rotated_path dir) @ parse_file (log_path dir)

let in_flight entries =
  let ended = Hashtbl.create 64 in
  List.iter (function End e -> Hashtbl.replace ended e.qid () | Begin _ -> ()) entries;
  List.filter_map
    (function Begin b when not (Hashtbl.mem ended b.b_qid) -> Some b | _ -> None)
    entries
