(** I/O statistics counters for the simulated paged storage.

    The reproduction runs on a simulated disk (everything is resident in
    process memory), so wall-clock time alone would understate the I/O
    behaviour the paper's figures depend on.  These counters make page
    traffic observable: a {e logical read} is any page access, a
    {e physical read} is an access to a page not currently resident in
    the buffer pool. *)

type t = {
  mutable logical_reads : int;
  mutable physical_reads : int;
  mutable page_writes : int;  (** dirty pages written back on eviction/flush *)
  mutable evictions : int;
  mutable allocations : int;
  mutable write_back_bytes : int;
      (** encoded bytes written back to the disk layer (file backend;
          [0] on the simulated in-memory disk) *)
  mutable fsyncs : int;  (** fsync calls issued on behalf of this pool *)
}

val create : unit -> t
val reset : t -> unit
val copy : t -> t

val diff : t -> t -> t
(** [diff later earlier] — counter deltas between two snapshots. *)

val hit_ratio : t -> float
(** Buffer-pool hit ratio in [0,1]; [1.0] when there were no reads. *)

val pp : Format.formatter -> t -> unit

(** Fixed-bucket latency histograms (seconds) for the service layer's
    phase timings: 1-2.5-5 log-scale bounds from 1 µs to 10 s plus an
    overflow bucket, with exact count/sum/min/max alongside, so
    percentiles are bucket-resolution estimates but means are exact. *)
module Histogram : sig
  type h

  val create : unit -> h
  val observe : h -> float -> unit
  val count : h -> int
  val sum : h -> float
  val mean : h -> float
  val min_value : h -> float
  val max_value : h -> float

  val percentile : h -> float -> float
  (** [percentile h p] for [p] in [0,100]: linear interpolation within
      the bucket holding the p-th percentile observation, clamped to the
      observed min/max; [0.0] when empty. *)

  val buckets : h -> (float * int) list
  (** [(upper_bound, count)] per bucket, non-cumulative; the final bucket
      has bound [infinity]. *)

  val merge : into:h -> h -> unit

  val pp : Format.formatter -> h -> unit
  (** One-line summary: count, mean/min/max, p50/p95/p99 (milliseconds). *)
end
