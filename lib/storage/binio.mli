(** Little-endian binary encode/decode helpers shared by the page
    codecs, the WAL and the manifest.

    Writers append to a [Buffer.t]; readers consume a string through a
    mutable cursor and raise {!Short} on truncation, which the disk
    layer maps to its corruption error (a frame that passes its CRC but
    fails to decode is treated the same as a torn one). *)

exception Short
(** Raised by readers on a truncated or out-of-bounds input. *)

val w_u8 : Buffer.t -> int -> unit
val w_u16 : Buffer.t -> int -> unit
val w_u32 : Buffer.t -> int -> unit

val w_u64 : Buffer.t -> int -> unit
(** Writes an OCaml [int] as a little-endian 64-bit value (sign
    extended, so [-1] round-trips). *)

val w_str : Buffer.t -> string -> unit
(** u32 byte length + bytes. *)

type reader = { src : string; mutable pos : int }

val reader : ?pos:int -> string -> reader
val r_u8 : reader -> int
val r_u16 : reader -> int
val r_u32 : reader -> int

val r_u64 : reader -> int
(** @raise Short also when the value does not fit in an OCaml [int]. *)

val r_str : reader -> string
val at_end : reader -> bool
