(** Query flight recorder: a bounded, crash-tolerant per-query log.

    The service appends one [Begin] record when it starts executing a
    query and one [End] record when it finishes (either way), into
    [flight.log] under the store's data directory.  Records are CRC-32
    framed; readers stop at the first torn or corrupt frame, so a
    process crash costs at most the record being written.  The log is
    bounded by rotation: past [max_bytes] it becomes [flight.log.1]
    (replacing the previous generation) and a fresh log begins.

    A [Begin] with no matching [End] is a query that was {e in flight}
    when the process died — [vamana report] and [vamana fsck] surface
    these after recovery.

    Appends flush to the OS but do not fsync: the durability target is
    process crashes (SIGKILL), not power loss, and a per-query fsync
    would dwarf the queries being measured. *)

type begin_record = {
  b_qid : int;  (** query id, from {!Obs.fresh_query_id} *)
  b_epoch : int;  (** store epoch when the query started *)
  b_source : string;  (** query text *)
  b_at_ms : int;  (** wall-clock start, Unix milliseconds *)
}

type query_record = {
  qid : int;
  source : string;  (** query text (repeated so [End]s survive rotation alone) *)
  ok : bool;  (** [false]: the query raised *)
  cache : string;  (** result-cache disposition: hit / miss / stale / bypass *)
  latency_us : int;  (** end-to-end service latency, microseconds *)
  pages_read : int;  (** logical page reads attributed to this query *)
  physical_reads : int;  (** of which faulted in from disk *)
  wal_bytes : int;  (** WAL bytes appended during this query *)
  fsyncs : int;  (** disk fsyncs during this query *)
  results : int;  (** result-sequence length (0 on error) *)
  epoch : int;  (** store epoch when the query ran *)
  at_ms : int;  (** wall-clock completion, Unix milliseconds *)
  sampled : bool;
      (** this execution carried the plan-health sampler's profiling *)
  drift : float;
      (** the plan's EWMA cost-drift score after this query (micro-unit
          precision on disk; 0 for unsampled plans and old-format logs) *)
}

type entry = Begin of begin_record | End of query_record

(** {1 Writing} *)

type t

val open_dir : ?max_bytes:int -> dir:string -> unit -> t
(** Open (appending) or create the recorder log in [dir].  [max_bytes]
    (default 1 MiB) bounds each generation; the directory must exist.
    @raise Invalid_argument if [dir] does not exist or
    [max_bytes < 4096]. *)

val close : t -> unit
(** Flush and close.  Idempotent. *)

val record_begin : t -> qid:int -> epoch:int -> source:string -> unit
val record_end : t -> query_record -> unit

(** {1 Reading} *)

val read_dir : dir:string -> entry list
(** All intact records, oldest first ([flight.log.1] then
    [flight.log]).  Missing files are simply empty; a torn or corrupt
    tail ends the parse quietly. *)

val in_flight : entry list -> begin_record list
(** [Begin]s with no matching [End] — queries running when the process
    died, in start order. *)

val file_name : string
(** ["flight.log"], relative to the data directory. *)
