exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let frame_bytes = 4096

(* On-disk magics.  The page and WAL magics are little-endian u32s spelling
   "VAMP" and "WALR"; the manifest leads with an 8-byte tag. *)
let page_magic = 0x504d4156 (* "VAMP" *)
let wal_magic = 0x524c4157 (* "WALR" *)
let manifest_magic = "VAMMANIF"
let manifest_version = 1

let wal_page = 1
let wal_free = 2
let wal_meta = 3
let wal_commit = 4

let data_name = "store.data"
let wal_name = "store.wal"
let manifest_name = "store.manifest"

let wal_checkpoint_bytes = ref (8 * 1024 * 1024)

type pool = { pid : int; pname : string }

(* Pool ids travel as a u8 in WAL records and page headers. *)
let max_pools = 256

(* A page lives in a contiguous extent of [frames] frames starting at frame
   [off]; [bytes] is the payload length inside it. *)
type loc = { off : int; frames : int; bytes : int }

(* Everything a bulk span can mutate, captured at [begin_bulk] so
   [abort_bulk] can restore the exact pre-bulk state (bulk writes only
   append to the data file, so truncating back to [s_eof] completes the
   rollback). *)
type bulk_snapshot = {
  s_pools : string array;
  s_table : (int * int, loc) Hashtbl.t;
  s_eof : int;
  s_free : loc list;
  s_deferred : loc list;
  s_meta : string;
}

type io = {
  mutable wal_records : int;
  mutable wal_bytes_written : int;
  mutable fsyncs : int;
  mutable data_reads : int;
  mutable data_read_bytes : int;
  mutable data_writes : int;
  mutable data_write_bytes : int;
  mutable checkpoints : int;
}

type recovery = {
  rec_epoch : int;
  rec_batches : int;
  rec_records : int;
  rec_dropped_bytes : int;
}

type t = {
  dir : string;
  data_fd : Unix.file_descr;
  wal_fd : Unix.file_descr;
  mutable wal_len : int;
  mutable pools : string array; (* index = pid *)
  table : (int * int, loc) Hashtbl.t; (* (pid, page) -> extent *)
  mutable eof : int; (* frames allocated in the data file *)
  mutable free : loc list; (* reusable extents *)
  mutable deferred : loc list; (* freed, but the manifest still points here *)
  pinned : (int, int) Hashtbl.t; (* frame off -> frames, manifest extents *)
  mutable meta : string;
  mutable epoch : int;
  mutable bulk : bool;
  mutable bulk_snap : bulk_snapshot option;
  mutable closed : bool;
  io : io;
  mutable last_recovery : recovery option;
}

let dir t = t.dir
let metadata t = t.meta
let io t = t.io

let copy_io (i : io) =
  {
    wal_records = i.wal_records;
    wal_bytes_written = i.wal_bytes_written;
    fsyncs = i.fsyncs;
    data_reads = i.data_reads;
    data_read_bytes = i.data_read_bytes;
    data_writes = i.data_writes;
    data_write_bytes = i.data_write_bytes;
    checkpoints = i.checkpoints;
  }

let diff_io (later : io) (earlier : io) =
  {
    wal_records = later.wal_records - earlier.wal_records;
    wal_bytes_written = later.wal_bytes_written - earlier.wal_bytes_written;
    fsyncs = later.fsyncs - earlier.fsyncs;
    data_reads = later.data_reads - earlier.data_reads;
    data_read_bytes = later.data_read_bytes - earlier.data_read_bytes;
    data_writes = later.data_writes - earlier.data_writes;
    data_write_bytes = later.data_write_bytes - earlier.data_write_bytes;
    checkpoints = later.checkpoints - earlier.checkpoints;
  }
let committed_epoch t = t.epoch
let wal_bytes t = t.wal_len
let last_recovery t = t.last_recovery
let in_bulk t = t.bulk
let is_closed t = t.closed
let data_frames t = t.eof
let live_frames t = Hashtbl.fold (fun _ l acc -> acc + l.frames) t.table 0

let check_open t = if t.closed then invalid_arg "Disk: store is closed"

(* ---- raw file I/O ---- *)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

let pwrite fd ~off s =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  write_all fd s

(* Returns the bytes actually available (short at EOF). *)
let pread fd ~off ~len =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let b = Bytes.create len in
  let rec go p =
    if p >= len then p
    else
      match Unix.read fd b p (len - p) with 0 -> p | n -> go (p + n)
  in
  let got = go 0 in
  Bytes.sub_string b 0 got

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec mkdir_p d =
  if d <> "" && not (Sys.file_exists d) then begin
    let parent = Filename.dirname d in
    if parent <> d then mkdir_p parent;
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let fsync_dir dir =
  (* Make a rename durable.  Some filesystems refuse fsync on a directory
     fd; the rename itself is still atomic, so ignore those. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

let crc_int s = Int32.to_int (Crc32.string s) land 0xffffffff
let crc_sub_int s ~pos ~len = Int32.to_int (Crc32.sub s ~pos ~len) land 0xffffffff

(* ---- pools ---- *)

let pool t name =
  check_open t;
  let n = Array.length t.pools in
  let rec find i = if i >= n then None else if t.pools.(i) = name then Some i else find (i + 1) in
  match find 0 with
  | Some pid -> { pid; pname = name }
  | None ->
      if n >= max_pools then
        invalid_arg
          (Printf.sprintf "Disk.pool: at most %d pools per store" max_pools);
      t.pools <- Array.append t.pools [| name |];
      { pid = n; pname = name }

let page_ids t p =
  check_open t;
  Hashtbl.fold (fun (pid, id) _ acc -> if pid = p.pid then id :: acc else acc) t.table []

let has_page t p ~id = Hashtbl.mem t.table (p.pid, id)

(* ---- extent allocation ----

   No-overwrite discipline: extents the last manifest references are pinned;
   replacing or freeing a pinned extent sends it to [deferred], which only
   rejoins [free] after the next manifest supersedes the old one.  Everything
   recovery could need to read therefore survives until it cannot be needed
   any more. *)

let retire t l =
  if Hashtbl.mem t.pinned l.off then t.deferred <- l :: t.deferred
  else t.free <- { l with bytes = 0 } :: t.free

let alloc_extent t n =
  let append () =
    let off = t.eof in
    t.eof <- off + n;
    off
  in
  if t.bulk then append ()
  else
    let rec pick acc = function
      | [] -> None
      | l :: rest when l.frames >= n ->
          let rem = l.frames - n in
          let free' = List.rev_append acc rest in
          t.free <-
            (if rem > 0 then { off = l.off + n; frames = rem; bytes = 0 } :: free'
             else free');
          Some l.off
      | l :: rest -> pick (l :: acc) rest
    in
    match pick [] t.free with Some off -> off | None -> append ()

(* ---- WAL append ---- *)

let wal_append t ~typ ~pid ~arg ~payload =
  let b = Buffer.create (24 + String.length payload) in
  Binio.w_u32 b wal_magic;
  Binio.w_u8 b typ;
  Binio.w_u8 b pid;
  Binio.w_u16 b 0;
  Binio.w_u64 b arg;
  Binio.w_u32 b (String.length payload);
  Binio.w_u32 b (crc_int payload);
  Buffer.add_string b payload;
  let s = Buffer.contents b in
  write_all t.wal_fd s;
  t.wal_len <- t.wal_len + String.length s;
  t.io.wal_records <- t.io.wal_records + 1;
  t.io.wal_bytes_written <- t.io.wal_bytes_written + String.length s;
  if Obs.active () then
    Obs.emit ~severity:Obs.Debug ~category:"storage" "wal_append"
      [ ("type", Obs.Int typ);
        ("bytes", Obs.Int (String.length s));
        ("wal_bytes", Obs.Int t.wal_len) ]

(* ---- page I/O ---- *)

(* 28-byte extent header: magic u32, pid u8, pad u8 + u16, frames u32
   (matching the manifest's u32 — a u16 here would truncate extents of
   65536+ frames), page u64, payload bytes u32, payload crc u32; zero
   padding to the frame boundary. *)
let page_header_bytes = 28
let frames_for len = (page_header_bytes + len + frame_bytes - 1) / frame_bytes

let install_page t ~pid ~id payload ~log =
  let len = String.length payload in
  let n = frames_for len in
  let off = alloc_extent t n in
  let b = Buffer.create (n * frame_bytes) in
  Binio.w_u32 b page_magic;
  Binio.w_u8 b pid;
  Binio.w_u8 b 0;
  Binio.w_u16 b 0;
  Binio.w_u32 b n;
  Binio.w_u64 b id;
  Binio.w_u32 b len;
  Binio.w_u32 b (crc_int payload);
  Buffer.add_string b payload;
  let pad = (n * frame_bytes) - Buffer.length b in
  Buffer.add_string b (String.make pad '\000');
  pwrite t.data_fd ~off:(off * frame_bytes) (Buffer.contents b);
  t.io.data_writes <- t.io.data_writes + 1;
  t.io.data_write_bytes <- t.io.data_write_bytes + (n * frame_bytes);
  (match Hashtbl.find_opt t.table (pid, id) with
  | Some old -> retire t old
  | None -> ());
  Hashtbl.replace t.table (pid, id) { off; frames = n; bytes = len };
  if log && not t.bulk then wal_append t ~typ:wal_page ~pid ~arg:id ~payload

let write_page t p ~id payload =
  check_open t;
  install_page t ~pid:p.pid ~id payload ~log:true

let drop_page t ~pid ~id ~log =
  match Hashtbl.find_opt t.table (pid, id) with
  | None -> ()
  | Some l ->
      Hashtbl.remove t.table (pid, id);
      retire t l;
      if log && not t.bulk then wal_append t ~typ:wal_free ~pid ~arg:id ~payload:""

let free_page t p ~id =
  check_open t;
  drop_page t ~pid:p.pid ~id ~log:true

let read_page t p ~id =
  check_open t;
  match Hashtbl.find_opt t.table (p.pid, id) with
  | None -> invalid_arg (Printf.sprintf "Disk: pool %s has no page %d" p.pname id)
  | Some l ->
      let want = l.frames * frame_bytes in
      let s = pread t.data_fd ~off:(l.off * frame_bytes) ~len:want in
      if String.length s <> want then
        corrupt "%s: short read for %s page %d (%d of %d bytes)" t.dir p.pname id
          (String.length s) want;
      t.io.data_reads <- t.io.data_reads + 1;
      t.io.data_read_bytes <- t.io.data_read_bytes + want;
      let r = Binio.reader s in
      (try
         let magic = Binio.r_u32 r in
         if magic <> page_magic then
           corrupt "%s: bad page magic for %s page %d" t.dir p.pname id;
         let pid = Binio.r_u8 r in
         let _pad8 = Binio.r_u8 r in
         let _pad16 = Binio.r_u16 r in
         let frames = Binio.r_u32 r in
         let page = Binio.r_u64 r in
         let bytes = Binio.r_u32 r in
         let crc = Binio.r_u32 r in
         if pid <> p.pid || page <> id || frames <> l.frames || bytes <> l.bytes
         then
           corrupt "%s: page header mismatch for %s page %d" t.dir p.pname id;
         if crc_sub_int s ~pos:page_header_bytes ~len:bytes <> crc then
           corrupt "%s: checksum failure for %s page %d" t.dir p.pname id
       with Binio.Short ->
         corrupt "%s: truncated page header for %s page %d" t.dir p.pname id);
      String.sub s page_header_bytes l.bytes

(* ---- metadata ---- *)

let set_metadata t s =
  check_open t;
  t.meta <- s

(* The META payload carries the pool names alongside the caller blob so
   recovery can resolve pool ids from the WAL alone (the initial manifest of
   a fresh store knows no pools yet). *)
let encode_meta t =
  let b = Buffer.create (256 + String.length t.meta) in
  Binio.w_u32 b (Array.length t.pools);
  Array.iter (fun name -> Binio.w_str b name) t.pools;
  Binio.w_str b t.meta;
  Buffer.contents b

let decode_meta t s =
  try
    let r = Binio.reader s in
    let n = Binio.r_u32 r in
    let pools = Array.init n (fun _ -> Binio.r_str r) in
    let meta = Binio.r_str r in
    t.pools <- pools;
    t.meta <- meta
  with Binio.Short -> corrupt "%s: malformed META record" t.dir

(* ---- manifest ---- *)

let encode_manifest t ~epoch =
  let b = Buffer.create 4096 in
  Buffer.add_string b manifest_magic;
  Binio.w_u32 b manifest_version;
  Binio.w_u64 b epoch;
  Binio.w_u32 b (Array.length t.pools);
  Array.iter (fun name -> Binio.w_str b name) t.pools;
  Binio.w_u64 b (Hashtbl.length t.table);
  Hashtbl.iter
    (fun (pid, page) l ->
      Binio.w_u8 b pid;
      Binio.w_u64 b page;
      Binio.w_u64 b l.off;
      Binio.w_u32 b l.frames;
      Binio.w_u32 b l.bytes)
    t.table;
  Binio.w_str b t.meta;
  Binio.w_u32 b (crc_sub_int (Buffer.contents b) ~pos:0 ~len:(Buffer.length b));
  Buffer.contents b

let checkpoint t ~epoch =
  check_open t;
  if t.bulk then invalid_arg "Disk.checkpoint: store is in bulk mode";
  Unix.fsync t.data_fd;
  t.io.fsyncs <- t.io.fsyncs + 1;
  let path = Filename.concat t.dir manifest_name in
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  write_all fd (encode_manifest t ~epoch);
  Unix.fsync fd;
  Unix.close fd;
  t.io.fsyncs <- t.io.fsyncs + 1;
  Unix.rename tmp path;
  fsync_dir t.dir;
  (* Old manifest superseded: its private extents become reusable, current
     live extents become the pinned set. *)
  Unix.ftruncate t.wal_fd 0;
  Unix.fsync t.wal_fd;
  t.io.fsyncs <- t.io.fsyncs + 1;
  t.wal_len <- 0;
  Hashtbl.reset t.pinned;
  Hashtbl.iter (fun _ l -> Hashtbl.replace t.pinned l.off l.frames) t.table;
  t.free <- List.rev_append (List.map (fun l -> { l with bytes = 0 }) t.deferred) t.free;
  t.deferred <- [];
  t.epoch <- epoch;
  t.io.checkpoints <- t.io.checkpoints + 1;
  if Obs.active () then
    Obs.emit ~severity:Obs.Info ~category:"storage" "checkpoint"
      [ ("dir", Obs.Str t.dir);
        ("epoch", Obs.Int epoch);
        ("pages", Obs.Int (Hashtbl.length t.table));
        ("live_frames", Obs.Int (live_frames t));
        ("data_frames", Obs.Int t.eof) ]

let commit t ~epoch =
  check_open t;
  if t.bulk then invalid_arg "Disk.commit: store is in bulk mode";
  wal_append t ~typ:wal_meta ~pid:0 ~arg:0 ~payload:(encode_meta t);
  wal_append t ~typ:wal_commit ~pid:0 ~arg:epoch ~payload:"";
  Unix.fsync t.wal_fd;
  t.io.fsyncs <- t.io.fsyncs + 1;
  t.epoch <- epoch;
  if Obs.active () then
    Obs.emit ~severity:Obs.Debug ~category:"storage" "wal_fsync"
      [ ("dir", Obs.Str t.dir);
        ("epoch", Obs.Int epoch);
        ("wal_bytes", Obs.Int t.wal_len) ];
  if t.wal_len > !wal_checkpoint_bytes then checkpoint t ~epoch

let begin_bulk t =
  check_open t;
  if t.bulk then invalid_arg "Disk.begin_bulk: already in bulk mode";
  t.bulk_snap <-
    Some
      {
        s_pools = Array.copy t.pools;
        s_table = Hashtbl.copy t.table;
        s_eof = t.eof;
        s_free = t.free;
        s_deferred = t.deferred;
        s_meta = t.meta;
      };
  t.bulk <- true

let end_bulk t ~epoch =
  check_open t;
  if not t.bulk then invalid_arg "Disk.end_bulk: not in bulk mode";
  t.bulk <- false;
  t.bulk_snap <- None;
  checkpoint t ~epoch

let abort_bulk t =
  check_open t;
  if not t.bulk then invalid_arg "Disk.abort_bulk: not in bulk mode";
  let s = Option.get t.bulk_snap in
  t.pools <- s.s_pools;
  Hashtbl.reset t.table;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.table k v) s.s_table;
  t.free <- s.s_free;
  t.deferred <- s.s_deferred;
  t.meta <- s.s_meta;
  (* bulk writes only append past the snapshot eof; drop that tail *)
  (try Unix.ftruncate t.data_fd (s.s_eof * frame_bytes)
   with Unix.Unix_error _ -> ());
  t.eof <- s.s_eof;
  t.bulk_snap <- None;
  t.bulk <- false;
  if Obs.active () then
    Obs.emit ~severity:Obs.Warn ~category:"storage" "bulk_abort"
      [ ("dir", Obs.Str t.dir); ("epoch", Obs.Int t.epoch) ]

(* ---- lifecycle ---- *)

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try Unix.close t.data_fd with Unix.Unix_error _ -> ());
    (try Unix.close t.wal_fd with Unix.Unix_error _ -> ())
  end

let make ~dir ~data_fd ~wal_fd =
  let t =
    {
      dir;
      data_fd;
      wal_fd;
      wal_len = 0;
      pools = [||];
      table = Hashtbl.create 1024;
      eof = 0;
      free = [];
      deferred = [];
      pinned = Hashtbl.create 64;
      meta = "";
      epoch = 0;
      bulk = false;
      bulk_snap = None;
      closed = false;
      io =
        {
          wal_records = 0;
          wal_bytes_written = 0;
          fsyncs = 0;
          data_reads = 0;
          data_read_bytes = 0;
          data_writes = 0;
          data_write_bytes = 0;
          checkpoints = 0;
        };
      last_recovery = None;
    }
  in
  Gc.finalise close t;
  t

let is_store ~dir = Sys.file_exists (Filename.concat dir manifest_name)

let create ~dir =
  mkdir_p dir;
  let tmp = Filename.concat dir (manifest_name ^ ".tmp") in
  if Sys.file_exists tmp then Sys.remove tmp;
  let data_fd =
    Unix.openfile (Filename.concat dir data_name)
      [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let wal_fd =
    Unix.openfile (Filename.concat dir wal_name)
      [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_APPEND ] 0o644
  in
  let t = make ~dir ~data_fd ~wal_fd in
  checkpoint t ~epoch:0;
  t

(* ---- open + recovery ---- *)

let open_dir ~dir =
  let mpath = Filename.concat dir manifest_name in
  if not (Sys.file_exists mpath) then corrupt "%s: no store manifest" dir;
  (* A leftover manifest.tmp is a checkpoint that never committed. *)
  let tmp = mpath ^ ".tmp" in
  if Sys.file_exists tmp then Sys.remove tmp;
  let data_fd =
    Unix.openfile (Filename.concat dir data_name) [ Unix.O_RDWR; Unix.O_CREAT ] 0o644
  in
  let wal_fd =
    Unix.openfile (Filename.concat dir wal_name)
      [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  let t = make ~dir ~data_fd ~wal_fd in
  (* -- manifest -- *)
  let s = read_file mpath in
  (try
     if String.length s < 16 then corrupt "%s: manifest too short" dir;
     let body = String.length s - 4 in
     let stored = Int32.to_int (String.get_int32_le s body) land 0xffffffff in
     if crc_sub_int s ~pos:0 ~len:body <> stored then
       corrupt "%s: manifest checksum failure" dir;
     if String.sub s 0 8 <> manifest_magic then
       corrupt "%s: bad manifest magic" dir;
     let r = Binio.reader ~pos:8 s in
     let version = Binio.r_u32 r in
     if version <> manifest_version then
       corrupt "%s: unsupported manifest version %d" dir version;
     let epoch = Binio.r_u64 r in
     let npools = Binio.r_u32 r in
     t.pools <- Array.init npools (fun _ -> Binio.r_str r);
     let n = Binio.r_u64 r in
     for _ = 1 to n do
       let pid = Binio.r_u8 r in
       let page = Binio.r_u64 r in
       let off = Binio.r_u64 r in
       let frames = Binio.r_u32 r in
       let bytes = Binio.r_u32 r in
       Hashtbl.replace t.table (pid, page) { off; frames; bytes }
     done;
     t.meta <- Binio.r_str r;
     t.epoch <- epoch
   with Binio.Short -> corrupt "%s: truncated manifest" dir);
  (* -- free-space map: complement of the live extents -- *)
  let file_frames =
    let len = (Unix.fstat data_fd).Unix.st_size in
    (len + frame_bytes - 1) / frame_bytes
  in
  let extents =
    Hashtbl.fold (fun _ l acc -> l :: acc) t.table []
    |> List.sort (fun a b -> compare a.off b.off)
  in
  let eof =
    List.fold_left (fun acc l -> max acc (l.off + l.frames)) file_frames extents
  in
  t.eof <- eof;
  let cursor = ref 0 in
  List.iter
    (fun l ->
      if l.off < !cursor then corrupt "%s: overlapping extents in manifest" dir;
      if l.off > !cursor then
        t.free <- { off = !cursor; frames = l.off - !cursor; bytes = 0 } :: t.free;
      cursor := l.off + l.frames;
      Hashtbl.replace t.pinned l.off l.frames)
    extents;
  if !cursor < eof then
    t.free <- { off = !cursor; frames = eof - !cursor; bytes = 0 } :: t.free;
  (* -- WAL replay -- *)
  let manifest_epoch = t.epoch in
  let wal = read_file (Filename.concat dir wal_name) in
  let wal_total = String.length wal in
  t.wal_len <- wal_total;
  let pos = ref 0 in
  let consumed = ref 0 in (* end of the last complete committed batch *)
  let pending = ref [] in
  let batches = ref 0 in
  let applied = ref 0 in
  let stop = ref false in
  while not !stop do
    if wal_total - !pos < 24 then stop := true
    else begin
      let r = Binio.reader ~pos:!pos wal in
      match
        let magic = Binio.r_u32 r in
        let typ = Binio.r_u8 r in
        let pid = Binio.r_u8 r in
        let _pad = Binio.r_u16 r in
        let arg = Binio.r_u64 r in
        let len = Binio.r_u32 r in
        let crc = Binio.r_u32 r in
        if magic <> wal_magic || typ < wal_page || typ > wal_commit then None
        else if wal_total - r.Binio.pos < len then None
        else
          let payload = String.sub wal r.Binio.pos len in
          if crc_int payload <> crc then None
          else Some (typ, pid, arg, payload, r.Binio.pos + len)
      with
      | exception Binio.Short -> stop := true
      | None -> stop := true
      | Some (typ, pid, arg, payload, next) ->
          pos := next;
          if typ = wal_commit then begin
            (* A complete batch.  Replay it only if it post-dates the
               manifest (a crash between manifest rename and WAL truncate
               leaves already-applied batches behind). *)
            if arg > t.epoch then begin
              List.iter
                (fun (ty, pi, ar, pl) ->
                  if ty = wal_page then install_page t ~pid:pi ~id:ar pl ~log:false
                  else if ty = wal_free then drop_page t ~pid:pi ~id:ar ~log:false
                  else if ty = wal_meta then decode_meta t pl;
                  incr applied)
                (List.rev !pending);
              t.epoch <- arg;
              incr batches
            end;
            pending := [];
            consumed := !pos
          end
          else pending := (typ, pid, arg, payload) :: !pending
    end
  done;
  let dropped = wal_total - !consumed in
  if wal_total > 0 then
    (* Make the recovered state the new baseline and truncate the log. *)
    checkpoint t ~epoch:t.epoch;
  if !batches > 0 || dropped > 0 then begin
    t.last_recovery <-
      Some
        {
          rec_epoch = t.epoch;
          rec_batches = !batches;
          rec_records = !applied;
          rec_dropped_bytes = dropped;
        };
    if Obs.active () then
      Obs.emit
        ~severity:(if dropped > 0 then Obs.Warn else Obs.Info)
        ~category:"storage" "recovery"
        [ ("dir", Obs.Str dir);
          ("epoch", Obs.Int t.epoch);
          ("manifest_epoch", Obs.Int manifest_epoch);
          ("batches", Obs.Int !batches);
          ("records", Obs.Int !applied);
          ("dropped_bytes", Obs.Int dropped) ]
  end;
  t
