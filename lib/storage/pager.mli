(** Buffer-pool-managed page store.

    Pages hold arbitrary payloads (B-tree nodes, node-record slabs).  All
    payloads live in a backing table (the simulated disk); the pool tracks
    which pages are {e resident}.  Accessing a non-resident page counts a
    physical read and may evict the least-recently-used resident page
    (writing it back first if dirty).  This yields realistic relative I/O
    costs for index probes versus scans without an actual disk. *)

type id = int
(** Page identifier, dense from 0. *)

type 'a t

type 'a codec = { encode : 'a -> string; decode : string -> 'a }
(** Payload serializer for the file backend.  [decode (encode p)] must be
    equivalent to [p]; the disk layer guards the bytes in between with
    checksums, so [decode] may assume well-formed input. *)

type 'a backend =
  | Mem
      (** The simulated disk: payloads stay in the process, eviction only
          flips residency bits.  The historical default. *)
  | File of { disk : Disk.t; pool : Disk.pool; codec : 'a codec }
      (** Real files: a dirty page is encoded and written through to the
          {!Disk} pool on eviction/flush, and its in-memory payload is
          dropped when non-resident, so a pool smaller than the data makes
          physical reads cost actual file I/O. *)

val create : ?label:string -> ?pool_pages:int -> ?backend:'a backend -> unit -> 'a t
(** [create ~label ~pool_pages ()] — a pager whose buffer pool holds at
    most [pool_pages] resident pages (default 1024 ≈ 4 MiB of 4 KiB
    pages).  [label] (default ["pager"]) names the pool in telemetry
    events and introspection output.  [backend] defaults to {!Mem}.
    @raise Invalid_argument if [pool_pages < 1]. *)

val attach : ?label:string -> ?pool_pages:int -> backend:'a backend -> unit -> 'a t
(** Reopen a pager over existing pages of a {!File} backend: every page id
    the disk pool holds becomes a non-resident clean entry, and allocation
    continues after the highest existing id.
    @raise Invalid_argument on a {!Mem} backend. *)

val backend : 'a t -> 'a backend
val label : 'a t -> string

val pool_pages : 'a t -> int
(** The configured pool capacity in pages. *)

val default_page_bytes : int
(** Nominal page size used to translate pool sizes to bytes: 4096. *)

val alloc : 'a t -> 'a -> id
(** Allocate a new page with the given payload; the page enters the pool
    resident and dirty. *)

val read : 'a t -> id -> 'a
(** Fetch a page's payload, updating LRU/statistics.
    @raise Invalid_argument on an unknown id. *)

val write : 'a t -> id -> 'a -> unit
(** Replace a page's payload, marking it dirty (counts as a logical
    access). @raise Invalid_argument on an unknown id. *)

val free : 'a t -> id -> unit
(** Release a page. @raise Invalid_argument on an unknown id. *)

val flush : 'a t -> unit
(** Write back all dirty resident pages (counts page writes). *)

val page_count : 'a t -> int
(** Number of live (allocated, not freed) pages. *)

val resident_count : 'a t -> int
val stats : 'a t -> Stats.t
(** The pager's live counters (mutated in place by operations). *)
