(** Buffer-pool-managed page store.

    Pages hold arbitrary payloads (B-tree nodes, node-record slabs).  All
    payloads live in a backing table (the simulated disk); the pool tracks
    which pages are {e resident}.  Accessing a non-resident page counts a
    physical read and may evict the least-recently-used resident page
    (writing it back first if dirty).  This yields realistic relative I/O
    costs for index probes versus scans without an actual disk. *)

type id = int
(** Page identifier, dense from 0. *)

type 'a t

val create : ?label:string -> ?pool_pages:int -> unit -> 'a t
(** [create ~label ~pool_pages ()] — a pager whose buffer pool holds at
    most [pool_pages] resident pages (default 1024 ≈ 4 MiB of 4 KiB
    pages).  [label] (default ["pager"]) names the pool in telemetry
    events and introspection output.
    @raise Invalid_argument if [pool_pages < 1]. *)

val label : 'a t -> string

val pool_pages : 'a t -> int
(** The configured pool capacity in pages. *)

val default_page_bytes : int
(** Nominal page size used to translate pool sizes to bytes: 4096. *)

val alloc : 'a t -> 'a -> id
(** Allocate a new page with the given payload; the page enters the pool
    resident and dirty. *)

val read : 'a t -> id -> 'a
(** Fetch a page's payload, updating LRU/statistics.
    @raise Invalid_argument on an unknown id. *)

val write : 'a t -> id -> 'a -> unit
(** Replace a page's payload, marking it dirty (counts as a logical
    access). @raise Invalid_argument on an unknown id. *)

val free : 'a t -> id -> unit
(** Release a page. @raise Invalid_argument on an unknown id. *)

val flush : 'a t -> unit
(** Write back all dirty resident pages (counts page writes). *)

val page_count : 'a t -> int
(** Number of live (allocated, not freed) pages. *)

val resident_count : 'a t -> int
val stats : 'a t -> Stats.t
(** The pager's live counters (mutated in place by operations). *)
