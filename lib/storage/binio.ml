exception Short

let w_u8 b n = Buffer.add_uint8 b (n land 0xff)
let w_u16 b n = Buffer.add_uint16_le b (n land 0xffff)
let w_u32 b n = Buffer.add_int32_le b (Int32.of_int n)
let w_u64 b n = Buffer.add_int64_le b (Int64.of_int n)

let w_str b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

type reader = { src : string; mutable pos : int }

let reader ?(pos = 0) src = { src; pos }

let need r n = if r.pos + n > String.length r.src then raise Short

let r_u8 r =
  need r 1;
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_u16 r =
  need r 2;
  let v = String.get_uint16_le r.src r.pos in
  r.pos <- r.pos + 2;
  v

let r_u32 r =
  need r 4;
  let v = Int32.to_int (String.get_int32_le r.src r.pos) land 0xffffffff in
  r.pos <- r.pos + 4;
  v

let r_u64 r =
  need r 8;
  let v64 = String.get_int64_le r.src r.pos in
  let v = Int64.to_int v64 in
  if Int64.of_int v <> v64 then raise Short;
  r.pos <- r.pos + 8;
  v

let r_str r =
  let n = r_u32 r in
  need r n;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let at_end r = r.pos = String.length r.src
