(** Durable file-backed page store: the disk under the buffer pools.

    One [Disk.t] manages a directory holding three files and serves any
    number of named {e pools} (one per buffer pool / B-tree index), so a
    whole MASS store shares a single write-ahead log and a single commit
    point:

    - [store.data] — fixed-size 4 KiB frames.  Each page occupies a
      contiguous extent of frames headed by a magic + identity + CRC-32
      header; reads verify all of it and raise {!Corrupt} rather than
      return wrong bytes.  Extents are never overwritten in place while
      the last checkpoint still references them (no-overwrite within a
      checkpoint interval), so the manifest's view of the file stays
      intact until the next manifest replaces it.
    - [store.wal] — a redo-only write-ahead log of full page images with
      per-record CRCs.  Every data-file page write appends a matching
      [PAGE] record; {!commit} appends the store metadata and a
      [COMMIT(epoch)] marker and fsyncs.  Recovery replays complete
      committed batches and discards a torn tail, landing exactly on the
      last consistent epoch.
    - [store.manifest] — the checkpoint: page table, pool names and
      metadata, CRC-protected and written atomically (temp + rename).
      {!checkpoint} fsyncs the data file first, then installs the
      manifest, then truncates the WAL.

    The layer is mechanism only: what a page payload means is the
    caller's business (the pager brings a codec), and when to commit is
    the store's business (every epoch bump). *)

exception Corrupt of string
(** A checksum, magic, bound or decode failure in any on-disk structure.
    Raised loudly — a page that fails verification is never returned. *)

type t
type pool

val frame_bytes : int
(** 4096. *)

val create : dir:string -> t
(** Initialize a fresh store in [dir] (created if missing; existing
    store files are truncated).  Writes an empty manifest immediately so
    the directory is openable from that point on. *)

val open_dir : dir:string -> t
(** Open an existing store and run recovery: load the manifest, replay
    every complete committed WAL batch newer than it, drop a torn tail,
    and checkpoint the recovered state.
    @raise Corrupt on a missing/invalid manifest or a malformed
    structure that checksums cannot vouch for. *)

val is_store : dir:string -> bool
(** [dir] contains a store manifest. *)

val close : t -> unit
(** Close file descriptors.  Does {e not} commit or checkpoint — pair
    with {!checkpoint} for a clean shutdown.  Idempotent; also attached
    as a GC finalizer so abandoned handles do not leak descriptors. *)

val is_closed : t -> bool
(** The handle has been {!close}d; every other operation would raise. *)

val dir : t -> string

(** {1 Pools} *)

val pool : t -> string -> pool
(** Register (or look up) a pool by name.  Pool names are persisted in
    the manifest; reopening resolves the same names to the same pages.
    Pool ids travel as a u8 in page and WAL headers, so a store holds at
    most 256 pools; registering more raises [Invalid_argument]. *)

val page_ids : t -> pool -> int list
(** Ids of every page the pool currently stores, unsorted. *)

(** {1 Page I/O}

    Payloads are opaque byte strings (the pager encodes/decodes). *)

val write_page : t -> pool -> id:int -> string -> unit
(** Write a page image: fresh extent in the data file plus a WAL [PAGE]
    record (suppressed in bulk mode).  Not yet durable — {!commit} is
    the durability point. *)

val read_page : t -> pool -> id:int -> string
(** @raise Corrupt on checksum/identity mismatch;
    @raise Invalid_argument if the pool holds no such page. *)

val free_page : t -> pool -> id:int -> unit
(** Drop a page (WAL [FREE] record if it was on disk).  A no-op for
    pages that never reached the disk. *)

val has_page : t -> pool -> id:int -> bool

(** {1 Durability} *)

val set_metadata : t -> string -> unit
(** An opaque caller blob (the MASS store serializes its document table,
    B-tree roots and epoch here) carried by every commit and manifest. *)

val metadata : t -> string

val commit : t -> epoch:int -> unit
(** Append [META] + [COMMIT epoch] to the WAL, flush and fsync it: the
    group-commit durability point.  Auto-checkpoints afterwards when the
    WAL has outgrown {!wal_checkpoint_bytes}. *)

val checkpoint : t -> epoch:int -> unit
(** Fsync the data file, atomically install a fresh manifest, truncate
    the WAL and recycle extents the previous manifest had pinned. *)

val committed_epoch : t -> int
(** Epoch of the last durable commit (or of the manifest after open). *)

val wal_bytes : t -> int
(** Current WAL length in bytes. *)

val wal_checkpoint_bytes : int ref
(** Auto-checkpoint threshold for {!commit} (default 8 MiB). *)

(** {1 Bulk ingest}

    Between [begin_bulk] and [end_bulk] page writes skip the WAL and
    only append extents sequentially — the document-ingest fast path.
    [end_bulk] checkpoints, making the whole batch durable at once; a
    crash mid-bulk recovers to the pre-bulk manifest.  If the ingest
    fails, call [abort_bulk] — a handle must never be left in bulk mode,
    where commits and checkpoints are suppressed and every later
    mutation would be silently non-durable. *)

val begin_bulk : t -> unit
(** @raise Invalid_argument if already in bulk mode. *)

val end_bulk : t -> epoch:int -> unit

val abort_bulk : t -> unit
(** Abandon the bulk span: restore the page table, pool set, metadata
    and free map to their [begin_bulk] snapshot, truncate the appended
    tail off the data file, and leave bulk mode.  The handle continues
    from the exact pre-bulk state (bulk writes never touch the WAL, the
    manifest, or pre-existing extents, so nothing else moved). *)

val in_bulk : t -> bool

(** {1 Introspection} *)

type io = {
  mutable wal_records : int;
  mutable wal_bytes_written : int;
  mutable fsyncs : int;
  mutable data_reads : int;
  mutable data_read_bytes : int;
  mutable data_writes : int;
  mutable data_write_bytes : int;
  mutable checkpoints : int;
}

val io : t -> io
(** Live counters (mutated in place). *)

val copy_io : io -> io
(** An immutable-by-convention snapshot of the live counters — take one
    before a window of work and {!diff_io} it against another after. *)

val diff_io : io -> io -> io
(** [diff_io later earlier]: per-field subtraction, for attributing a
    window of I/O (a query's, a batch's) out of the live counters. *)

type recovery = {
  rec_epoch : int;  (** epoch recovered to *)
  rec_batches : int;  (** committed WAL batches replayed *)
  rec_records : int;  (** WAL records applied *)
  rec_dropped_bytes : int;  (** torn/uncommitted tail discarded *)
}

val last_recovery : t -> recovery option
(** Set by {!open_dir} when it found anything to replay or drop. *)

val data_frames : t -> int
(** Frames currently allocated in the data file (file size / 4096). *)

val live_frames : t -> int
(** Frames referenced by live pages. *)
