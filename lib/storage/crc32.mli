(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial) over strings.

    Every on-disk artifact of the durable storage layer — page frames,
    WAL records, the manifest — carries a CRC so that torn writes and
    bit rot are detected loudly instead of being decoded into garbage. *)

val string : ?init:int32 -> string -> int32
(** [string s] — CRC-32 of the whole string.  [init] continues a
    running checksum (pass the previous result to chain buffers). *)

val sub : ?init:int32 -> string -> pos:int -> len:int -> int32
(** CRC-32 of a substring. @raise Invalid_argument on bad bounds. *)
