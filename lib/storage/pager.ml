type id = int

let default_page_bytes = 4096
let nil = -1

type 'a codec = { encode : 'a -> string; decode : string -> 'a }

type 'a backend =
  | Mem
  | File of { disk : Disk.t; pool : Disk.pool; codec : 'a codec }

(* [payload = None] only on the file backend: the page lives on disk and is
   decoded on the next access.  The in-memory backend keeps every payload
   (it {e is} the simulated disk), so eviction there only flips bookkeeping
   bits — exactly the pre-durability behaviour. *)
type 'a entry = {
  mutable payload : 'a option;
  mutable resident : bool;
  mutable dirty : bool;
  (* LRU doubly-linked list links (only meaningful while resident) *)
  mutable prev : id;
  mutable next : id;
}

type 'a t = {
  pages : (id, 'a entry) Hashtbl.t;
  mutable next_id : int;
  pool_pages : int;
  mutable resident_pages : int;
  mutable lru_head : id;  (* most recently used *)
  mutable lru_tail : id;  (* least recently used *)
  stats : Stats.t;
  label : string;  (* telemetry attribution: which pool this traffic is *)
  backend : 'a backend;
}

let create ?(label = "pager") ?(pool_pages = 1024) ?(backend = Mem) () =
  if pool_pages < 1 then invalid_arg "Pager.create: pool_pages < 1";
  {
    pages = Hashtbl.create 4096;
    next_id = 0;
    pool_pages;
    resident_pages = 0;
    lru_head = nil;
    lru_tail = nil;
    stats = Stats.create ();
    label;
    backend;
  }

let attach ?label ?pool_pages ~backend () =
  match backend with
  | Mem -> invalid_arg "Pager.attach: the in-memory backend has no disk state"
  | File { disk; pool; _ } ->
      let t = create ?label ?pool_pages ~backend () in
      let ids = Disk.page_ids disk pool in
      List.iter
        (fun id ->
          Hashtbl.add t.pages id
            { payload = None; resident = false; dirty = false; prev = nil; next = nil })
        ids;
      t.next_id <- 1 + List.fold_left max (-1) ids;
      t

let label t = t.label
let pool_pages t = t.pool_pages
let backend t = t.backend

let get t id =
  match Hashtbl.find_opt t.pages id with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Pager: unknown page %d" id)

(* ---- LRU list maintenance ---- *)

let unlink t e =
  let p = e.prev and n = e.next in
  if p <> nil then (Hashtbl.find t.pages p).next <- n else t.lru_head <- n;
  if n <> nil then (Hashtbl.find t.pages n).prev <- p else t.lru_tail <- p;
  e.prev <- nil;
  e.next <- nil

let push_front t id e =
  e.prev <- nil;
  e.next <- t.lru_head;
  if t.lru_head <> nil then (Hashtbl.find t.pages t.lru_head).prev <- id;
  t.lru_head <- id;
  if t.lru_tail = nil then t.lru_tail <- id

(* Write a dirty page's image through to the disk layer (file backend only;
   the memory backend keeps the payload, which is the whole simulation). *)
let write_back t id e =
  match t.backend with
  | Mem -> ()
  | File { disk; pool; codec } ->
      let image =
        match e.payload with
        | Some p -> codec.encode p
        | None -> assert false (* dirty implies in-memory payload *)
      in
      Disk.write_page disk pool ~id image;
      t.stats.write_back_bytes <- t.stats.write_back_bytes + String.length image

let evict_one t =
  let victim = t.lru_tail in
  assert (victim <> nil);
  let e = Hashtbl.find t.pages victim in
  unlink t e;
  e.resident <- false;
  let wrote_back = e.dirty in
  if e.dirty then begin
    write_back t victim e;
    t.stats.page_writes <- t.stats.page_writes + 1;
    e.dirty <- false
  end;
  (match t.backend with
  | Mem -> ()
  | File _ ->
      (* clean implies on-disk, so the in-memory image can be dropped *)
      e.payload <- None);
  t.resident_pages <- t.resident_pages - 1;
  t.stats.evictions <- t.stats.evictions + 1;
  if Obs.active () then
    Obs.emit ~severity:Obs.Debug ~category:"storage" "eviction"
      [ ("pool", Obs.Str t.label);
        ("page", Obs.Int victim);
        ("wrote_back", Obs.Bool wrote_back);
        ("evictions", Obs.Int t.stats.evictions) ]

let make_resident t id e =
  if e.resident then begin
    (* refresh LRU position *)
    unlink t e;
    push_front t id e
  end
  else begin
    if t.resident_pages >= t.pool_pages then evict_one t;
    e.resident <- true;
    t.resident_pages <- t.resident_pages + 1;
    push_front t id e;
    t.stats.physical_reads <- t.stats.physical_reads + 1
  end

(* Fetch the payload, faulting it in from the disk layer when the file
   backend dropped it at eviction. *)
let payload_of t id e =
  match e.payload with
  | Some p -> p
  | None -> (
      match t.backend with
      | Mem -> assert false (* the memory backend never drops payloads *)
      | File { disk; pool; codec } ->
          let p = codec.decode (Disk.read_page disk pool ~id) in
          e.payload <- Some p;
          p)

(* ---- public operations ---- *)

let alloc t payload =
  let id = t.next_id in
  t.next_id <- id + 1;
  let e =
    { payload = Some payload; resident = false; dirty = true; prev = nil; next = nil }
  in
  Hashtbl.add t.pages id e;
  t.stats.allocations <- t.stats.allocations + 1;
  (* a freshly allocated page is written in memory, not read from disk *)
  if t.resident_pages >= t.pool_pages then evict_one t;
  e.resident <- true;
  t.resident_pages <- t.resident_pages + 1;
  push_front t id e;
  id

let read t id =
  let e = get t id in
  t.stats.logical_reads <- t.stats.logical_reads + 1;
  make_resident t id e;
  payload_of t id e

let write t id payload =
  let e = get t id in
  t.stats.logical_reads <- t.stats.logical_reads + 1;
  make_resident t id e;
  e.payload <- Some payload;
  e.dirty <- true

let free t id =
  let e = get t id in
  if e.resident then begin
    unlink t e;
    t.resident_pages <- t.resident_pages - 1
  end;
  (* a dirty page carries a pending write; dropping the page still costs
     that write (same accounting as evict_one) *)
  if e.dirty then begin
    t.stats.page_writes <- t.stats.page_writes + 1;
    e.dirty <- false
  end;
  (match t.backend with
  | Mem -> ()
  | File { disk; pool; _ } -> Disk.free_page disk pool ~id);
  Hashtbl.remove t.pages id

let flush t =
  Hashtbl.iter
    (fun id e ->
      if e.resident && e.dirty then begin
        write_back t id e;
        e.dirty <- false;
        t.stats.page_writes <- t.stats.page_writes + 1
      end)
    t.pages

let page_count t = Hashtbl.length t.pages
let resident_count t = t.resident_pages
let stats t = t.stats
