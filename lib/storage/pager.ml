type id = int

let default_page_bytes = 4096
let nil = -1

type 'a entry = {
  mutable payload : 'a;
  mutable resident : bool;
  mutable dirty : bool;
  (* LRU doubly-linked list links (only meaningful while resident) *)
  mutable prev : id;
  mutable next : id;
}

type 'a t = {
  pages : (id, 'a entry) Hashtbl.t;
  mutable next_id : int;
  pool_pages : int;
  mutable resident_pages : int;
  mutable lru_head : id;  (* most recently used *)
  mutable lru_tail : id;  (* least recently used *)
  stats : Stats.t;
  label : string;  (* telemetry attribution: which pool this traffic is *)
}

let create ?(label = "pager") ?(pool_pages = 1024) () =
  if pool_pages < 1 then invalid_arg "Pager.create: pool_pages < 1";
  {
    pages = Hashtbl.create 4096;
    next_id = 0;
    pool_pages;
    resident_pages = 0;
    lru_head = nil;
    lru_tail = nil;
    stats = Stats.create ();
    label;
  }

let label t = t.label
let pool_pages t = t.pool_pages

let get t id =
  match Hashtbl.find_opt t.pages id with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Pager: unknown page %d" id)

(* ---- LRU list maintenance ---- *)

let unlink t e =
  let p = e.prev and n = e.next in
  if p <> nil then (Hashtbl.find t.pages p).next <- n else t.lru_head <- n;
  if n <> nil then (Hashtbl.find t.pages n).prev <- p else t.lru_tail <- p;
  e.prev <- nil;
  e.next <- nil

let push_front t id e =
  e.prev <- nil;
  e.next <- t.lru_head;
  if t.lru_head <> nil then (Hashtbl.find t.pages t.lru_head).prev <- id;
  t.lru_head <- id;
  if t.lru_tail = nil then t.lru_tail <- id

let evict_one t =
  let victim = t.lru_tail in
  assert (victim <> nil);
  let e = Hashtbl.find t.pages victim in
  unlink t e;
  e.resident <- false;
  let wrote_back = e.dirty in
  if e.dirty then begin
    t.stats.page_writes <- t.stats.page_writes + 1;
    e.dirty <- false
  end;
  t.resident_pages <- t.resident_pages - 1;
  t.stats.evictions <- t.stats.evictions + 1;
  if Obs.active () then
    Obs.emit ~severity:Obs.Debug ~category:"storage" "eviction"
      [ ("pool", Obs.Str t.label);
        ("page", Obs.Int victim);
        ("wrote_back", Obs.Bool wrote_back);
        ("evictions", Obs.Int t.stats.evictions) ]

let make_resident t id e =
  if e.resident then begin
    (* refresh LRU position *)
    unlink t e;
    push_front t id e
  end
  else begin
    if t.resident_pages >= t.pool_pages then evict_one t;
    e.resident <- true;
    t.resident_pages <- t.resident_pages + 1;
    push_front t id e;
    t.stats.physical_reads <- t.stats.physical_reads + 1
  end

(* ---- public operations ---- *)

let alloc t payload =
  let id = t.next_id in
  t.next_id <- id + 1;
  let e = { payload; resident = false; dirty = true; prev = nil; next = nil } in
  Hashtbl.add t.pages id e;
  t.stats.allocations <- t.stats.allocations + 1;
  (* a freshly allocated page is written in memory, not read from disk *)
  if t.resident_pages >= t.pool_pages then evict_one t;
  e.resident <- true;
  t.resident_pages <- t.resident_pages + 1;
  push_front t id e;
  id

let read t id =
  let e = get t id in
  t.stats.logical_reads <- t.stats.logical_reads + 1;
  make_resident t id e;
  e.payload

let write t id payload =
  let e = get t id in
  t.stats.logical_reads <- t.stats.logical_reads + 1;
  make_resident t id e;
  e.payload <- payload;
  e.dirty <- true

let free t id =
  let e = get t id in
  if e.resident then begin
    unlink t e;
    t.resident_pages <- t.resident_pages - 1
  end;
  (* a dirty page carries a pending write; dropping the page still costs
     that write (same accounting as evict_one) *)
  if e.dirty then begin
    t.stats.page_writes <- t.stats.page_writes + 1;
    e.dirty <- false
  end;
  Hashtbl.remove t.pages id

let flush t =
  Hashtbl.iter
    (fun _ e ->
      if e.resident && e.dirty then begin
        e.dirty <- false;
        t.stats.page_writes <- t.stats.page_writes + 1
      end)
    t.pages

let page_count t = Hashtbl.length t.pages
let resident_count t = t.resident_pages
let stats t = t.stats
