type t = {
  mutable logical_reads : int;
  mutable physical_reads : int;
  mutable page_writes : int;
  mutable evictions : int;
  mutable allocations : int;
  mutable write_back_bytes : int;
  mutable fsyncs : int;
}

let create () =
  {
    logical_reads = 0;
    physical_reads = 0;
    page_writes = 0;
    evictions = 0;
    allocations = 0;
    write_back_bytes = 0;
    fsyncs = 0;
  }

let reset t =
  t.logical_reads <- 0;
  t.physical_reads <- 0;
  t.page_writes <- 0;
  t.evictions <- 0;
  t.allocations <- 0;
  t.write_back_bytes <- 0;
  t.fsyncs <- 0

let copy t =
  {
    logical_reads = t.logical_reads;
    physical_reads = t.physical_reads;
    page_writes = t.page_writes;
    evictions = t.evictions;
    allocations = t.allocations;
    write_back_bytes = t.write_back_bytes;
    fsyncs = t.fsyncs;
  }

let diff later earlier =
  {
    logical_reads = later.logical_reads - earlier.logical_reads;
    physical_reads = later.physical_reads - earlier.physical_reads;
    page_writes = later.page_writes - earlier.page_writes;
    evictions = later.evictions - earlier.evictions;
    allocations = later.allocations - earlier.allocations;
    write_back_bytes = later.write_back_bytes - earlier.write_back_bytes;
    fsyncs = later.fsyncs - earlier.fsyncs;
  }

let hit_ratio t =
  if t.logical_reads = 0 then 1.0
  else 1.0 -. (float_of_int t.physical_reads /. float_of_int t.logical_reads)

let pp ppf t =
  Format.fprintf ppf
    "{ logical=%d physical=%d writes=%d evictions=%d allocs=%d wb_bytes=%d fsyncs=%d hit=%.3f }"
    t.logical_reads t.physical_reads t.page_writes t.evictions t.allocations t.write_back_bytes
    t.fsyncs (hit_ratio t)

module Histogram = struct
  (* 1-2.5-5 log-scale bounds from 1 µs to 10 s: fine enough for latency
     percentiles, coarse enough to stay a handful of ints per histogram *)
  let bounds =
    let decades = [ 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.0 ] in
    Array.of_list (List.concat_map (fun d -> [ d; 2.5 *. d; 5.0 *. d ]) decades @ [ 10.0 ])

  let nbuckets = Array.length bounds + 1 (* + overflow bucket *)

  type h = {
    mutable count : int;
    mutable sum : float;
    mutable min : float;
    mutable max : float;
    counts : int array;  (** [counts.(i)]: observations <= [bounds.(i)]; last = overflow *)
  }

  let create () =
    { count = 0; sum = 0.0; min = infinity; max = neg_infinity; counts = Array.make nbuckets 0 }

  let bucket_of v =
    let rec go i = if i >= Array.length bounds then i else if v <= bounds.(i) then i else go (i + 1) in
    go 0

  let observe h v =
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v < h.min then h.min <- v;
    if v > h.max then h.max <- v;
    let b = bucket_of v in
    h.counts.(b) <- h.counts.(b) + 1

  let count h = h.count
  let sum h = h.sum
  let mean h = if h.count = 0 then 0.0 else h.sum /. float_of_int h.count
  let min_value h = if h.count = 0 then 0.0 else h.min
  let max_value h = if h.count = 0 then 0.0 else h.max

  let percentile h p =
    if h.count = 0 then 0.0
    else begin
      let rank = Float.max 1.0 (Float.of_int h.count *. p /. 100.0) in
      let rec go i seen =
        if i >= nbuckets then h.max
        else
          let inbucket = h.counts.(i) in
          let seen' = seen + inbucket in
          if inbucket > 0 && float_of_int seen' >= rank then begin
            (* linearly interpolate within the winning bucket: reporting
               the raw upper bound would overstate sub-bucket percentiles
               by up to the 2.5x bucket ratio *)
            let lo = if i = 0 then 0.0 else bounds.(i - 1) in
            let hi = if i >= Array.length bounds then h.max else bounds.(i) in
            let frac = (rank -. float_of_int seen) /. float_of_int inbucket in
            let v = lo +. (frac *. (hi -. lo)) in
            Float.min h.max (Float.max h.min v)
          end
          else go (i + 1) seen'
      in
      go 0 0
    end

  let buckets h =
    List.init nbuckets (fun i ->
        ((if i < Array.length bounds then bounds.(i) else infinity), h.counts.(i)))

  let merge ~into h =
    into.count <- into.count + h.count;
    into.sum <- into.sum +. h.sum;
    if h.min < into.min then into.min <- h.min;
    if h.max > into.max then into.max <- h.max;
    Array.iteri (fun i n -> into.counts.(i) <- into.counts.(i) + n) h.counts

  let pp ppf h =
    if h.count = 0 then Format.fprintf ppf "(empty)"
    else
      Format.fprintf ppf
        "n=%d mean=%.3fms min=%.3fms max=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms" h.count
        (mean h *. 1000.) (min_value h *. 1000.) (max_value h *. 1000.)
        (percentile h 50.0 *. 1000.) (percentile h 95.0 *. 1000.) (percentile h 99.0 *. 1000.)
end
