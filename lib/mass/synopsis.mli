(** DataGuide-style path synopsis over a MASS store.

    One node per distinct root-to-tag path with the exact number of
    records on that path, labels spelled as {!Store.tag_of} spells them
    (element name, ["@name"], ["#text"], ["#comment"], ["#pi"],
    ["#document"]).  Derived from the store in a single document-order
    scan; {!for_store} caches per store and rebuilds when the store
    epoch moves, like the engine's plan caches.

    All axis/cardinality reasoning over the synopsis lives in
    {!Xpath.Typecheck}; {!schema} is the bridge. *)

type node = {
  syn_tag : string;
  syn_parent : node option;
  mutable syn_count : int;
  mutable syn_children : node list;  (** sorted by tag *)
}

type t

val build : Store.t -> t
(** Single-scan derivation at the store's current epoch. *)

val for_store : Store.t -> t
(** Cached {!build}, invalidated when {!Store.epoch} moves. *)

val epoch : t -> int
(** Store epoch the synopsis was derived at. *)

val paths : t -> int
(** Number of distinct root-to-tag paths (synopsis nodes). *)

val records : t -> int
(** Total records summarized, document records included. *)

val roots : t -> scope:Flex.t option -> node list
(** Document-root synopsis nodes: all documents, or the one whose
    document key equals [scope]. *)

val schema : t -> scope:Flex.t option -> node Xpath.Typecheck.schema

val chain_estimate :
  t -> scope:Flex.t option -> (Xpath.Ast.axis * Xpath.Ast.node_test * bool) list ->
  (int * bool) option
(** {!Xpath.Typecheck.chain_estimate} over {!schema}.  [None] when
    [scope] does not name a whole document the synopsis knows — then no
    claim is made and callers fall back to Table I alone. *)

val fold : t -> init:'a -> f:('a -> path:string list -> count:int -> 'a) -> 'a
(** Pre-order over every path of every document; [path] starts at
    ["#document"]. *)

val verify : Store.t -> t -> (unit, string) result
(** Consistency check: the synopsis must match a fresh store scan
    node-for-node, and its per-kind totals must equal the store's
    per-document record counters.  [Error] carries the first
    discrepancy. *)
