(** MASS — Multi-Axis Storage Structure.

    An XML repository built from three counted B+-trees:

    - the {b clustered document index}: FLEX key → node record, in
      document order, so every contiguous document region (a subtree, the
      nodes following a subtree, …) is one index range;
    - the {b name index}: (tag, FLEX key) → (), where [tag] is the element
      name, ["@name"] for attributes, ["#text"], ["#comment"] or ["#pi"]
      for the other kinds — any node-test count, global or subtree-scoped,
      is one O(log n) counted-range probe;
    - the {b value index}: (string value, FLEX key) → () over text nodes
      and attribute values — the paper's text counts [TC] and the
      [value::'v'] physical location step.

    The store holds any number of documents; each document's records live
    under a distinct top-level FLEX component, so per-document scoping is
    subtree scoping (paper §I: costs "over the entire database … or
    specific to a particular XML document or even a specific point within
    one document"). *)

type t

type doc = {
  doc_id : int;
  doc_name : string;
  doc_key : Flex.t;  (** key of the per-document Document record *)
  mutable element_count : int;
  mutable text_count : int;
  mutable attribute_count : int;
  mutable comment_count : int;
  mutable pi_count : int;
}

type backend =
  | Mem  (** the simulated in-memory disk (historical default) *)
  | File of { dir : string }
      (** durable storage: one {!Storage.Disk} store in [dir] shared by
          all three indexes — a single data file of checksummed 4 KiB
          frames, one write-ahead log, one checkpoint manifest *)

val create : ?pool_pages:int -> ?order:int -> ?backend:backend -> unit -> t
(** [pool_pages] sizes each index's buffer pool; [order] is the B+-tree
    node capacity.  [backend] defaults to {!Mem} unless the environment
    variable [VAMANA_BACKEND] is set to ["file"], in which case every
    default-backend store runs on real files in a fresh per-process temp
    directory (removed at exit) — the switch that re-runs the whole test
    suite against the durable path.  A {!File} backend initializes a
    {e fresh} store in [dir]; use {!open_file} to reopen an existing one. *)

val open_file : ?pool_pages:int -> dir:string -> unit -> t
(** Reopen a file-backed store: runs crash recovery (WAL replay to the
    last committed epoch), rebuilds the document catalog and reattaches
    the three indexes to their persisted pages.  [order] comes from the
    stored metadata.
    @raise Storage.Disk.Corrupt on a missing or damaged store. *)

val close : t -> unit
(** Clean shutdown of a file-backed store: flush, checkpoint, close the
    descriptors.  A no-op on {!Mem} and on a handle whose disk is
    already closed (after {!simulate_crash} or a failed load). *)

val commit : t -> unit
(** Force a durability point now (flush dirty pages, WAL-append metadata
    and a commit marker, fsync).  Mutations do this automatically unless
    {!set_autocommit} turned it off.  A no-op on {!Mem}. *)

val checkpoint : t -> unit
(** Commit and fold the WAL into a fresh manifest (truncating the log).
    A no-op on {!Mem}. *)

val set_autocommit : t -> bool -> unit
(** Default [true]: every epoch bump commits.  [false] trades durability
    of the tail for update throughput; {!commit} remains available. *)

val data_dir : t -> string option
(** The file backend's directory, [None] on {!Mem}. *)

val disk_io : t -> Storage.Disk.io option
(** Live WAL/data-file counters of the file backend. *)

val disk_wal_bytes : t -> int option
(** Current WAL length of the file backend. *)

val last_recovery : t -> Storage.Disk.recovery option
(** What {!open_file} had to replay/discard, if anything. *)

val simulate_crash : t -> unit
(** Test support: drop the store on the floor — close the descriptors
    without flushing, committing or checkpointing, leaving the files
    exactly as a SIGKILL would.  The handle must not be used afterwards. *)

val load : t -> name:string -> Xml.Tree.t -> doc
(** Bulk-load a parsed document.  Records are keyed depth-first with
    components from {!Flex.sequence}, attributes before child nodes
    (matching XPath document order).  On the file backend the load is
    one bulk ingest made durable atomically at the end; if it raises,
    the on-disk store is rolled back to its pre-load state and this
    handle is closed (further operations fail loudly) — reopen the
    directory with {!open_file}. *)

val load_string : t -> name:string -> string -> doc
(** Parse with {!Xml.Parser.parse} and load. *)

val remove_document : t -> doc -> unit
(** Delete every record and index entry of a document.  Subsequent counts
    are immediately accurate — the paper's update-robustness argument. *)

val documents : t -> doc list
val find_document : t -> string -> doc option

val tag_of : Record.t -> string
(** Name-index tag of a record: the element name, ["@name"] for
    attributes, ["#text"], ["#comment"], ["#pi"], ["#document"].  ['@']
    and ['#'] cannot start XML names, so the non-element tags never
    collide with element names.  The path synopsis reuses this spelling
    for its per-path labels. *)

val epoch : t -> int
(** Monotonic content-mutation counter: bumped by {!load},
    {!insert_element}, {!delete_subtree} and {!remove_document}.  Two
    equal epochs bracket an interval in which store contents did not
    change — the invalidation token for result caches layered above the
    store (a cached answer tagged with the epoch it was computed at is
    valid exactly while the store still reports that epoch). *)

val doc_epoch : t -> doc -> int
(** Per-document invalidation token: the global {!epoch} value at this
    document's last content mutation through this handle, [0] if it has
    not been mutated since the handle was opened.  Mutations to {e
    other} documents leave it unchanged, so a cache scoped to one
    document can survive writes elsewhere in the store (the global
    epoch cannot distinguish them).  Process-local — reopening a file
    backend resets all tokens to 0, which is safe because any cache
    comparing them dies with the process too. *)

(** {1 Write-footprint deltas}

    Every content mutation ({!load}, {!insert_element}, {!delete_subtree},
    {!remove_document}) records a conservative description of what it
    touched: the name-index tags and value-index keys of the records it
    added or removed, and the string-value {e cones} — the element tags
    (plus ["#document"]) whose XPath string-value changed because a text
    node appeared or vanished below them.  FLEX keys are immutable and
    node values never mutate in place, so these atom classes are a
    complete account of what a mutation can change about any query's
    answer; a result cache that proves its read footprint disjoint from
    every delta since the result was computed may keep serving it.

    Deltas live in a bounded process-local ring (like {!doc_epoch}
    tokens): when old entries fall off, {!write_deltas} reports the loss
    instead of silently under-approximating. *)

type write_delta = {
  wd_epoch : int;  (** global {!epoch} value after the mutation *)
  wd_doc : int option;  (** [doc_id] of the touched document, when known *)
  wd_top : bool;
      (** ⊤: the mutation touched more distinct atoms than the recording
          cap; treat it as potentially touching everything (the atom
          lists are empty in this case) *)
  wd_tags : string list;  (** name-index tags ({!tag_of} spelling), sorted, distinct *)
  wd_values : string list;  (** value-index keys, sorted, distinct *)
  wd_cones : string list;
      (** element tags and ["#document"] whose string-value changed *)
}

val write_deltas : t -> since:int -> write_delta list option
(** All deltas with [wd_epoch > since], newest first.  [None] when the
    bounded ring no longer covers the interval (a delta newer than
    [since] was dropped, or [since] predates this handle) — the caller
    must then fall back to epoch invalidation. *)

val last_write_delta : t -> write_delta option
(** The most recent mutation's delta, if any mutation happened through
    this handle. *)

val root_element_key : doc -> t -> Flex.t option
(** Key of the document's root element. *)

(** {1 Record access (data touch, charged to the buffer pool)} *)

val get : t -> Flex.t -> Record.t option
val get_exn : t -> Flex.t -> Record.t
val string_value : t -> Flex.t -> string
(** XPath string-value of the node at the key (concatenated descendant
    text for elements/documents). *)

(** {1 Counting (index-only, no record access)} *)

val count_test :
  t -> ?scope:Flex.t -> principal:Record.kind -> Xpath.Ast.node_test -> int
(** Exact count of nodes satisfying a node test, optionally scoped to the
    subtree of [scope].  [Wildcard]/[Node_test] scoped counts fall back to
    the subtree size (a sound upper bound that still avoids data access);
    their global counts are exact via per-store counters. *)

val text_value_count : t -> ?scope:Flex.t -> string -> int
(** The paper's TC: occurrences of a literal as a full text-node or
    attribute value. *)

val test_present : t -> ?scope:Flex.t -> principal:Record.kind -> Xpath.Ast.node_test -> bool
(** [count_test > 0].  A [false] answer is a proof of absence — counts
    are exact or sound upper bounds — which the static analyzer turns
    into plan pruning (a step on an absent tag is provably empty). *)

val value_present : t -> ?scope:Flex.t -> string -> bool
(** [text_value_count > 0]; same proof-of-absence reading for values. *)

val subtree_size : t -> Flex.t -> int
(** Number of records (all kinds) in a subtree, the node included. *)

val total_records : t -> int

val preorder_rank : t -> Flex.t -> int
(** Store-wide document-order position of a key (index-only probe). *)

val document_rank : t -> Flex.t -> int
(** Document-order position within the key's own document; the document
    record ranks 0, matching {!Xml.Tree} preorder ids. *)

(** {1 Cursors}

    A cursor yields FLEX keys on demand ([None] when exhausted).  Keys
    flow through query pipelines; records are only materialized via
    {!get} when a predicate or output needs them. *)

type cursor = unit -> Flex.t option

val axis_cursor : t -> Xpath.Ast.axis -> Xpath.Ast.node_test -> Flex.t -> cursor
(** All 13 axes.  Forward axes yield document order; reverse axes yield
    reverse document order (XPath proximity order). *)

val test_cursor :
  ?scope:Flex.t -> t -> principal:Record.kind -> Xpath.Ast.node_test -> cursor
(** All keys satisfying a node test within a scope, in document order —
    the posting-list primitive (index-only for named tests; clustered
    scan with kind filtering for wildcard/node tests). *)

val value_cursor : ?scope:Flex.t -> t -> string -> cursor
(** Keys of text/attribute nodes whose value equals the literal — the
    [value::'v'] location step. *)

val value_range_cursor : ?scope:Flex.t -> t -> lo:string option -> hi:string option -> cursor
(** Keys of text/attribute nodes whose value is within a lexicographic
    range (inclusive bounds); supports string range predicates. *)

val fold_document : t -> doc -> ('a -> Flex.t -> Record.t -> 'a) -> 'a -> 'a
(** Sequential scan over every record of a document in document order
    (attributes included).  Charges the page reads of a full clustered
    scan — the access path of the scan-based baseline engine. *)

val iter_document : t -> doc -> (Flex.t -> Record.t -> unit) -> unit

(** {1 Dynamic updates}

    Ordered insertion between siblings via {!Flex.between} — exercising
    FLEX's defining property and the paper's claim that statistics remain
    exact under updates. *)

val insert_element :
  t -> parent:Flex.t -> ?after:Flex.t -> string -> (string * string) list -> string option ->
  Flex.t
(** [insert_element t ~parent ?after name attrs text] inserts a new
    element (with optional attributes and a text child) under [parent],
    after sibling [after] (or as first child).  Returns the new key.
    @raise Invalid_argument if [parent] is unknown or [after] is not a
    child of [parent]. *)

val delete_subtree : t -> Flex.t -> int
(** Remove a node and its subtree from all indexes; returns the number of
    records removed. *)

val name_statistics : t -> (string * int) list
(** Every name-index tag with its entry count (element names verbatim,
    attributes as ["@name"], other kinds as ["#text"] etc.), sorted.
    One full index sweep — the raw material of a static data dictionary. *)

val value_statistics : t -> (string * int) list
(** Every indexed text/attribute value with its occurrence count. *)

(** {1 Subtree reconstruction} *)

val to_tree : t -> Flex.t -> Xml.Tree.t option
(** Rebuild the XML subtree rooted at a key (one clustered scan).
    Returns a document whose root element is the node; [None] for keys of
    non-element, non-document kinds or unknown keys. *)

val to_xml : ?indent:int -> t -> Flex.t -> string option
(** Serialize the node: full subtree markup for elements/documents, the
    string value for attribute/text/comment/PI nodes. *)

val validate : t -> unit
(** Cross-check the clustered index, name index, value index and the
    per-document counters against each other.
    @raise Failure describing the first inconsistency.  Test support. *)

(** {1 Persistence}

    Versioned binary snapshots of the whole store (all documents, records
    in document order).  The indexes are rebuilt on load from the sorted
    record stream. *)

exception Corrupt_snapshot of string

val save_file : t -> string -> unit

val load_file : ?pool_pages:int -> ?order:int -> ?backend:backend -> string -> t
(** @raise Corrupt_snapshot on malformed input;
    @raise Sys_error on I/O failure.  With a {!File} backend the rebuild
    runs through the bulk-ingest path (no WAL traffic, one closing
    checkpoint); if it fails, the target directory is left holding a
    valid empty store. *)

(** {1 Statistics} *)

type statistics = {
  record_count : int;
  document_count : int;
  doc_index_pages : int;
  name_index_pages : int;
  value_index_pages : int;
  doc_index_height : int;
  tuples_per_page : float;
  io : Storage.Stats.t;  (** aggregated across the three indexes *)
}

val statistics : t -> statistics
val io_stats : t -> Storage.Stats.t
(** Aggregate snapshot of the three pagers' counters. *)

val reset_io_stats : t -> unit

val io_by_index : t -> (string * Storage.Stats.t) list
(** The {e live} counter records of each index pager
    ([doc_index]/[name_index]/[value_index]) — snapshot with
    {!Storage.Stats.copy} and {!Storage.Stats.diff} around a query to
    attribute page traffic to an individual index. *)

type pool_info = {
  pool_index : string;
  pool_capacity : int;  (** configured pool size, pages *)
  pool_resident : int;
  pool_pages_total : int;  (** live pages, resident or not *)
  pool_io : Storage.Stats.t;  (** snapshot, not live *)
}

val pool_by_index : t -> pool_info list
(** Buffer-pool occupancy and traffic per index — the [vamana stats]
    breakdown. *)

val document_of_key : t -> Flex.t -> doc option
(** The document whose top-level FLEX component prefixes the key. *)

(** {1 Structure introspection} *)

type structure = {
  s_max_depth : int;  (** deepest record, document record = 0 *)
  s_depths : (int * int) list;  (** depth → record count, ascending *)
  s_fanouts : (int * int) list;
      (** direct sub-record count (attributes included) → number of
          element/document records with that fanout, ascending *)
  s_max_fanout : int;
  s_mean_fanout : float;
}

val structure_statistics : t -> doc -> structure
(** Depth and fanout distributions of one document: a single clustered
    scan (charged to the pool like any scan). *)
