module FlexKey = struct
  type t = Flex.t

  let compare = Flex.compare
  let pp = Flex.pp
end

module TagKey = struct
  type t = string * Flex.t

  let compare (t1, k1) (t2, k2) =
    let c = String.compare t1 t2 in
    if c <> 0 then c else Flex.compare k1 k2

  let pp ppf (t, k) = Format.fprintf ppf "(%s,%a)" t Flex.pp k
end

module DocTree = Btree.Make (FlexKey)
module TagTree = Btree.Make (TagKey)

type doc = {
  doc_id : int;
  doc_name : string;
  doc_key : Flex.t;
  mutable element_count : int;
  mutable text_count : int;
  mutable attribute_count : int;
  mutable comment_count : int;
  mutable pi_count : int;
}

(* Per-mutation write footprint: which name-index tags, value-index keys
   and string-value cones a content mutation touched.  Caches layered
   above the store intersect these against a cached entry's read
   footprint to decide whether the entry provably survived the write. *)
type write_delta = {
  wd_epoch : int;
  wd_doc : int option;
  wd_top : bool;
  wd_tags : string list;
  wd_values : string list;
  wd_cones : string list;
}

type t = {
  doc_index : Record.t DocTree.t;
  name_index : unit TagTree.t;
  value_index : unit TagTree.t;
  mutable docs : doc list;  (** in root-component order *)
  mutable next_doc_id : int;
  mutable epoch : int;  (** bumped by every content mutation *)
  doc_epochs : (int, int) Hashtbl.t;
      (** doc_id → global epoch at that document's last content
          mutation; absent = untouched since open.  Process-local (not
          persisted): the token only has to be stable for the lifetime
          of caches layered above this handle. *)
  mutable deltas : write_delta list;
      (** newest first, bounded by {!delta_capacity}; process-local like
          [doc_epochs] *)
  mutable deltas_dropped_through : int;
      (** epoch high-water mark of deltas evicted from the bounded ring:
          coverage of the ring is only complete for tokens at or above
          this value *)
  order : int;
  disk : Storage.Disk.t option;  (** [Some] on the file backend *)
  mutable autocommit : bool;
}

(* ---- page codecs (file backend) ---- *)

let kind_code (k : Record.kind) =
  match k with
  | Record.Document -> 0
  | Record.Element -> 1
  | Record.Attribute -> 2
  | Record.Text -> 3
  | Record.Comment -> 4
  | Record.Pi -> 5

let kind_of_code = function
  | 0 -> Record.Document
  | 1 -> Record.Element
  | 2 -> Record.Attribute
  | 3 -> Record.Text
  | 4 -> Record.Comment
  | 5 -> Record.Pi
  | c -> failwith (Printf.sprintf "Mass snapshot: bad kind code %d" c)

let enc_flex b k = Storage.Binio.w_str b (Flex.encode k)
let dec_flex r = Flex.decode (Storage.Binio.r_str r)

let enc_tag b (tag, k) =
  Storage.Binio.w_str b tag;
  enc_flex b k

let dec_tag r =
  let tag = Storage.Binio.r_str r in
  (tag, dec_flex r)

let enc_record b (r : Record.t) =
  enc_flex b r.key;
  Storage.Binio.w_u8 b (kind_code r.kind);
  Storage.Binio.w_str b r.name;
  Storage.Binio.w_str b r.value

let dec_record rd =
  let key = dec_flex rd in
  let kind = kind_of_code (Storage.Binio.r_u8 rd) in
  let name = Storage.Binio.r_str rd in
  let value = Storage.Binio.r_str rd in
  { Record.key; kind; name; value }

let doc_node_codec : Record.t DocTree.node Storage.Pager.codec =
  DocTree.node_codec ~enc_key:enc_flex ~dec_key:dec_flex ~enc_val:enc_record
    ~dec_val:dec_record

let tag_node_codec : unit TagTree.node Storage.Pager.codec =
  TagTree.node_codec ~enc_key:enc_tag ~dec_key:dec_tag
    ~enc_val:(fun _ () -> ())
    ~dec_val:(fun _ -> ())

(* ---- backend selection ---- *)

type backend = Mem | File of { dir : string }

(* VAMANA_BACKEND=file redirects every [create] without an explicit backend
   to real files in a per-process temp tree, so the whole test suite can be
   re-run against the durable path unchanged. *)
let temp_counter = ref 0

let temp_root =
  lazy
    (let dir =
       Filename.concat
         (Filename.get_temp_dir_name ())
         (Printf.sprintf "vamana_stores_%d" (Unix.getpid ()))
     in
     let rec rm_rf p =
       match Sys.is_directory p with
       | true ->
           Array.iter (fun f -> rm_rf (Filename.concat p f)) (Sys.readdir p);
           Unix.rmdir p
       | false -> Sys.remove p
       | exception Sys_error _ -> ()
     in
     at_exit (fun () -> try rm_rf dir with _ -> ());
     (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
     dir)

let default_backend () =
  match Sys.getenv_opt "VAMANA_BACKEND" with
  | Some "file" ->
      incr temp_counter;
      File
        {
          dir =
            Filename.concat (Lazy.force temp_root)
              (Printf.sprintf "store%d" !temp_counter);
        }
  | _ -> Mem

(* ---- store metadata: everything outside the trees' pages ----

   Serialized into the disk layer's metadata blob, so it rides in every WAL
   commit and manifest: document table, id counter, epoch, tree roots and
   the order the trees were built with. *)

let meta_version = 1

let encode_meta t =
  let b = Buffer.create 512 in
  Storage.Binio.w_u32 b meta_version;
  Storage.Binio.w_u64 b t.epoch;
  Storage.Binio.w_u64 b t.next_doc_id;
  Storage.Binio.w_u32 b t.order;
  Storage.Binio.w_u32 b (List.length t.docs);
  List.iter
    (fun d ->
      Storage.Binio.w_u64 b d.doc_id;
      Storage.Binio.w_str b d.doc_name;
      Storage.Binio.w_str b (Flex.encode d.doc_key);
      Storage.Binio.w_u64 b d.element_count;
      Storage.Binio.w_u64 b d.text_count;
      Storage.Binio.w_u64 b d.attribute_count;
      Storage.Binio.w_u64 b d.comment_count;
      Storage.Binio.w_u64 b d.pi_count)
    t.docs;
  Storage.Binio.w_u64 b (DocTree.root_id t.doc_index);
  Storage.Binio.w_u64 b (TagTree.root_id t.name_index);
  Storage.Binio.w_u64 b (TagTree.root_id t.value_index);
  Buffer.contents b

let flush_indexes t =
  DocTree.flush t.doc_index;
  TagTree.flush t.name_index;
  TagTree.flush t.value_index

let commit t =
  match t.disk with
  | None -> ()
  | Some disk ->
      flush_indexes t;
      Storage.Disk.set_metadata disk (encode_meta t);
      Storage.Disk.commit disk ~epoch:t.epoch

let checkpoint t =
  match t.disk with
  | None -> ()
  | Some disk ->
      flush_indexes t;
      Storage.Disk.set_metadata disk (encode_meta t);
      Storage.Disk.checkpoint disk ~epoch:t.epoch

let maybe_commit t =
  match t.disk with
  | Some disk when t.autocommit && not (Storage.Disk.in_bulk disk) -> commit t
  | _ -> ()

let set_autocommit t on = t.autocommit <- on
let data_dir t = Option.map Storage.Disk.dir t.disk
let disk_io t = Option.map Storage.Disk.io t.disk
let disk_wal_bytes t = Option.map Storage.Disk.wal_bytes t.disk
let last_recovery t = Option.bind t.disk Storage.Disk.last_recovery

let close t =
  match t.disk with
  | None -> ()
  | Some disk ->
      if not (Storage.Disk.is_closed disk) then begin
        if not (Storage.Disk.in_bulk disk) then checkpoint t;
        Storage.Disk.close disk
      end

let simulate_crash t =
  match t.disk with None -> () | Some disk -> Storage.Disk.close disk

(* Run a bulk ingest [f] against the disk (a plain call on Mem): on success
   one end_bulk checkpoint makes the whole batch durable at once.  If [f]
   raises, the in-memory indexes are partially mutated and cannot be rolled
   back, so abort the disk to its pre-bulk state and close it — the partial
   load can then never be silently committed (later uses of this handle
   fail loudly) and reopening the directory yields the pre-load store. *)
let bulk_ingest t f =
  match t.disk with
  | None -> f ()
  | Some d -> (
      Storage.Disk.begin_bulk d;
      match f () with
      | v ->
          flush_indexes t;
          Storage.Disk.set_metadata d (encode_meta t);
          Storage.Disk.end_bulk d ~epoch:t.epoch;
          v
      | exception e ->
          (try Storage.Disk.abort_bulk d with _ -> ());
          Storage.Disk.close d;
          raise e)

let create ?pool_pages ?(order = 64) ?backend () =
  let backend = match backend with Some b -> b | None -> default_backend () in
  match backend with
  | Mem ->
      {
        doc_index = DocTree.create ~label:"doc_index" ~order ?pool_pages ();
        name_index = TagTree.create ~label:"name_index" ~order ?pool_pages ();
        value_index = TagTree.create ~label:"value_index" ~order ?pool_pages ();
        docs = [];
        next_doc_id = 0;
        epoch = 0;
        doc_epochs = Hashtbl.create 8;
        deltas = [];
        deltas_dropped_through = 0;
        order;
        disk = None;
        autocommit = true;
      }
  | File { dir } ->
      let disk = Storage.Disk.create ~dir in
      let mk name codec =
        Storage.Pager.File { disk; pool = Storage.Disk.pool disk name; codec }
      in
      let t =
        {
          doc_index =
            DocTree.create ~label:"doc_index" ~order ?pool_pages
              ~backend:(mk "doc_index" doc_node_codec) ();
          name_index =
            TagTree.create ~label:"name_index" ~order ?pool_pages
              ~backend:(mk "name_index" tag_node_codec) ();
          value_index =
            TagTree.create ~label:"value_index" ~order ?pool_pages
              ~backend:(mk "value_index" tag_node_codec) ();
          docs = [];
          next_doc_id = 0;
          epoch = 0;
          doc_epochs = Hashtbl.create 8;
          deltas = [];
          deltas_dropped_through = 0;
          order;
          disk = Some disk;
          autocommit = true;
        }
      in
      (* Checkpoint, not commit: the manifest [Disk.create] just wrote is
         already at epoch 0 and recovery only replays WAL batches with a
         strictly newer epoch, so a commit here would be dropped on
         replay — a crash before the first checkpoint (including one mid
         first bulk load, whose writes bypass the WAL) would then leave
         a store without metadata that [open_file] refuses.  Writing the
         metadata into the manifest itself makes the empty store
         immediately reopenable on every crash path. *)
      checkpoint t;
      t

let open_file ?pool_pages ~dir () =
  let disk = Storage.Disk.open_dir ~dir in
  let meta = Storage.Disk.metadata disk in
  let fail msg =
    Storage.Disk.close disk;
    raise (Storage.Disk.Corrupt (Printf.sprintf "%s: %s" dir msg))
  in
  if String.length meta = 0 then fail "store has no metadata";
  try
    let r = Storage.Binio.reader meta in
    let version = Storage.Binio.r_u32 r in
    if version <> meta_version then
      fail (Printf.sprintf "unsupported store metadata version %d" version);
    let epoch = Storage.Binio.r_u64 r in
    let next_doc_id = Storage.Binio.r_u64 r in
    let order = Storage.Binio.r_u32 r in
    let ndocs = Storage.Binio.r_u32 r in
    let docs =
      List.init ndocs (fun _ ->
          let doc_id = Storage.Binio.r_u64 r in
          let doc_name = Storage.Binio.r_str r in
          let doc_key = Flex.decode (Storage.Binio.r_str r) in
          let element_count = Storage.Binio.r_u64 r in
          let text_count = Storage.Binio.r_u64 r in
          let attribute_count = Storage.Binio.r_u64 r in
          let comment_count = Storage.Binio.r_u64 r in
          let pi_count = Storage.Binio.r_u64 r in
          {
            doc_id;
            doc_name;
            doc_key;
            element_count;
            text_count;
            attribute_count;
            comment_count;
            pi_count;
          })
    in
    let doc_root = Storage.Binio.r_u64 r in
    let name_root = Storage.Binio.r_u64 r in
    let value_root = Storage.Binio.r_u64 r in
    let mk name codec =
      Storage.Pager.File { disk; pool = Storage.Disk.pool disk name; codec }
    in
    {
      doc_index =
        DocTree.open_existing ~label:"doc_index" ~order ?pool_pages
          ~backend:(mk "doc_index" doc_node_codec) ~root:doc_root ();
      name_index =
        TagTree.open_existing ~label:"name_index" ~order ?pool_pages
          ~backend:(mk "name_index" tag_node_codec) ~root:name_root ();
      value_index =
        TagTree.open_existing ~label:"value_index" ~order ?pool_pages
          ~backend:(mk "value_index" tag_node_codec) ~root:value_root ();
      docs;
      next_doc_id;
      epoch;
      doc_epochs = Hashtbl.create 8;
      (* deltas are process-local: a reopened store knows nothing about
         mutations before the open, so coverage starts at this epoch *)
      deltas = [];
      deltas_dropped_through = epoch;
      order;
      disk = Some disk;
      autocommit = true;
    }
  with Storage.Binio.Short -> fail "truncated store metadata"

let epoch t = t.epoch

let doc_epoch t doc =
  match Hashtbl.find_opt t.doc_epochs doc.doc_id with Some e -> e | None -> 0

let bump_epoch t =
  t.epoch <- t.epoch + 1;
  maybe_commit t

(* record that this mutation touched [doc]: result caches scoped to one
   document compare this token instead of the global epoch, so writes to
   one document no longer flush every other document's cached answers *)
let note_doc_mutation t = function
  | Some doc -> Hashtbl.replace t.doc_epochs doc.doc_id t.epoch
  | None -> ()

(* ---- probes ----

   [Btree.seek]/[rank] take monotone probes: negative strictly before the
   position, non-negative at or after it.  [Flex.bound_compare_key] is the
   opposite sign convention (bound vs key), hence the negation. *)

let key_probe bound k = -Flex.bound_compare_key bound k

let tag_probe tag bound (tag', k) =
  let c = String.compare tag' tag in
  if c <> 0 then c else key_probe bound k

(* tag of a record in the name index; '@' and '#' cannot start XML names,
   so attribute/text/comment/pi/document entries never collide with
   element names *)
let tag_of (r : Record.t) =
  match r.kind with
  | Record.Element -> r.name
  | Record.Attribute -> "@" ^ r.name
  | Record.Text -> "#text"
  | Record.Comment -> "#comment"
  | Record.Pi -> "#pi"
  | Record.Document -> "#document"

let indexed_value (r : Record.t) =
  match r.kind with Record.Text | Record.Attribute -> Some r.value | _ -> None

(* ---- write-footprint deltas ----

   Every content mutation records which name-index tags and value-index
   keys it added or removed, plus the string-value "cones": the element
   tags (and "#document") whose XPath string-value — concatenated
   descendant text — changed because a text node appeared or vanished
   below them.  FLEX keys are immutable and node values never mutate in
   place, so these three atom classes are a complete description of what
   a mutation can change about any query's answer. *)

let delta_capacity = 128
let delta_atom_cap = 64

let record_delta t ~doc ?(top = false) ~tags ~values ~cones () =
  let dedup l = List.sort_uniq String.compare l in
  let tags = dedup tags and values = dedup values and cones = dedup cones in
  let top =
    top
    || List.length tags > delta_atom_cap
    || List.length values > delta_atom_cap
    || List.length cones > delta_atom_cap
  in
  let wd =
    { wd_epoch = t.epoch;
      wd_doc = Option.map (fun d -> d.doc_id) doc;
      wd_top = top;
      wd_tags = (if top then [] else tags);
      wd_values = (if top then [] else values);
      wd_cones = (if top then [] else cones) }
  in
  let rec take n = function
    | [] -> ([], None)
    | x :: rest ->
        if n = 0 then ([], Some x)
        else
          let kept, dropped = take (n - 1) rest in
          (x :: kept, dropped)
  in
  let kept, dropped = take delta_capacity (wd :: t.deltas) in
  (* the first entry past capacity is the newest of those dropped, so its
     epoch is the ring's new coverage floor *)
  (match dropped with
  | Some d -> t.deltas_dropped_through <- max t.deltas_dropped_through d.wd_epoch
  | None -> ());
  t.deltas <- kept

(* bounded atom accumulator: distinct strings with early collapse to ⊤,
   so bulk mutations never materialize unbounded atom lists *)
let acc_put top tbl k =
  if not !top then begin
    if not (Hashtbl.mem tbl k) then Hashtbl.add tbl k ();
    if Hashtbl.length tbl > delta_atom_cap then top := true
  end

let acc_keys tbl = Hashtbl.fold (fun k () acc -> k :: acc) tbl []

let write_deltas t ~since =
  if since < t.deltas_dropped_through then None
  else Some (List.filter (fun d -> d.wd_epoch > since) t.deltas)

let last_write_delta t = match t.deltas with d :: _ -> Some d | [] -> None

let insert_record t (r : Record.t) =
  DocTree.insert t.doc_index r.key r;
  TagTree.insert t.name_index (tag_of r, r.key) ();
  match indexed_value r with
  | Some v -> TagTree.insert t.value_index (v, r.key) ()
  | None -> ()

let remove_record t (r : Record.t) =
  ignore (DocTree.delete t.doc_index r.key);
  ignore (TagTree.delete t.name_index (tag_of r, r.key));
  match indexed_value r with
  | Some v -> ignore (TagTree.delete t.value_index (v, r.key))
  | None -> ()

(* ---- document loading ---- *)

let bump doc (kind : Record.kind) n =
  match kind with
  | Record.Element -> doc.element_count <- doc.element_count + n
  | Record.Text -> doc.text_count <- doc.text_count + n
  | Record.Attribute -> doc.attribute_count <- doc.attribute_count + n
  | Record.Comment -> doc.comment_count <- doc.comment_count + n
  | Record.Pi -> doc.pi_count <- doc.pi_count + n
  | Record.Document -> ()

let doc_of_key t key =
  if Flex.depth key = 0 then None
  else
    let root = Flex.prefix key 1 in
    List.find_opt (fun d -> Flex.equal d.doc_key root) t.docs

let load t ~name tree =
  (* On the file backend a load is one bulk ingest: pages stream to the data
     file without WAL traffic and the closing checkpoint makes the whole
     document durable at once (a crash or exception mid-load recovers to
     the pre-load state). *)
  bulk_ingest t @@ fun () ->
  let last_component =
    List.fold_left
      (fun acc d ->
        match Flex.last_component d.doc_key with
        | Some c -> (
            match acc with
            | Some prev when String.compare prev c >= 0 -> acc
            | _ -> Some c)
        | None -> acc)
      None t.docs
  in
  let root_component = Flex.between last_component None in
  let doc_key = Flex.of_components [ root_component ] in
  let doc =
    {
      doc_id = t.next_doc_id;
      doc_name = name;
      doc_key;
      element_count = 0;
      text_count = 0;
      attribute_count = 0;
      comment_count = 0;
      pi_count = 0;
    }
  in
  t.next_doc_id <- t.next_doc_id + 1;
  (* accumulate the load's write footprint with an early collapse to ⊤ so
     a bulk ingest never materializes an unbounded atom list *)
  let d_top = ref false in
  let d_tags = Hashtbl.create 32 and d_values = Hashtbl.create 32 in
  let note (r : Record.t) =
    acc_put d_top d_tags (tag_of r);
    match indexed_value r with Some v -> acc_put d_top d_values v | None -> ()
  in
  let doc_record = { Record.key = doc_key; kind = Record.Document; name; value = "" } in
  insert_record t doc_record;
  note doc_record;
  let add key kind nm value =
    let r = { Record.key; kind; name = nm; value } in
    insert_record t r;
    note r;
    bump doc kind 1
  in
  let rec walk key (n : Xml.Tree.node) =
    match n.Xml.Tree.kind with
    | Xml.Tree.Document -> assert false
    | Xml.Tree.Text s -> add key Record.Text "" s
    | Xml.Tree.Comment s -> add key Record.Comment "" s
    | Xml.Tree.Pi (target, data) -> add key Record.Pi target data
    | Xml.Tree.Attribute (an, av) -> add key Record.Attribute an av
    | Xml.Tree.Element en ->
        add key Record.Element en "";
        let attrs = n.Xml.Tree.attributes and children = n.Xml.Tree.children in
        let total = Array.length attrs + Array.length children in
        let comps = Array.of_list (Flex.sequence total) in
        Array.iteri (fun i c -> walk (Flex.child key comps.(i)) c) attrs;
        let na = Array.length attrs in
        Array.iteri (fun i c -> walk (Flex.child key comps.(na + i)) c) children
  in
  let top = tree.Xml.Tree.children in
  let comps = Array.of_list (Flex.sequence (Array.length top)) in
  Array.iteri (fun i c -> walk (Flex.child doc_key comps.(i)) c) top;
  t.docs <- t.docs @ [ doc ];
  bump_epoch t;
  note_doc_mutation t (Some doc);
  (* no string-value cones: a load creates only new nodes, so no existing
     node's string-value changes *)
  record_delta t ~doc:(Some doc) ~top:!d_top ~tags:(acc_keys d_tags)
    ~values:(acc_keys d_values) ~cones:[] ();
  doc

let load_string t ~name src = load t ~name (Xml.Parser.parse src)
let documents t = t.docs
let find_document t name = List.find_opt (fun d -> String.equal d.doc_name name) t.docs

(* ---- record access ---- *)

let get t key = DocTree.find t.doc_index key

let get_exn t key =
  match get t key with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Mass.Store: no record at %s" (Flex.to_string key))

let subtree_bounds key =
  let lo, hi = Flex.subtree_range key in
  (key_probe lo, key_probe hi)

let string_value t key =
  match get t key with
  | None -> ""
  | Some r -> (
      match r.Record.kind with
      | Record.Text | Record.Comment -> r.Record.value
      | Record.Attribute -> r.Record.value
      | Record.Pi -> r.Record.value
      | Record.Element | Record.Document ->
          let buf = Buffer.create 32 in
          let lo, hi = Flex.subtree_range key in
          let c = DocTree.seek t.doc_index (key_probe lo) in
          let rec go () =
            match DocTree.next c with
            | Some (k, r) when Flex.bound_compare_key hi k > 0 ->
                (match r.Record.kind with
                | Record.Text -> Buffer.add_string buf r.Record.value
                | Record.Document | Record.Element | Record.Attribute | Record.Comment
                | Record.Pi ->
                    ());
                go ()
            | Some _ | None -> ()
          in
          go ();
          Buffer.contents buf)

(* ---- counting (index-only) ---- *)

let scope_bounds = function
  | None -> (Flex.Min, Flex.Max)
  | Some scope -> Flex.subtree_range scope

let count_tag t ?scope tag =
  let lo, hi = scope_bounds scope in
  TagTree.count_range t.name_index ~lo:(tag_probe tag lo) ~hi:(tag_probe tag hi)

let subtree_size t key =
  let lo, hi = subtree_bounds key in
  DocTree.count_range t.doc_index ~lo ~hi

let totals t =
  List.fold_left
    (fun (e, x, a, c, p) d ->
      ( e + d.element_count,
        x + d.text_count,
        a + d.attribute_count,
        c + d.comment_count,
        p + d.pi_count ))
    (0, 0, 0, 0, 0) t.docs

let count_test t ?scope ~principal test =
  match (test : Xpath.Ast.node_test) with
  | Xpath.Ast.Name_test n ->
      let tag = match principal with Record.Attribute -> "@" ^ n | _ -> n in
      count_tag t ?scope tag
  | Xpath.Ast.Text_test -> count_tag t ?scope "#text"
  | Xpath.Ast.Comment_test -> count_tag t ?scope "#comment"
  | Xpath.Ast.Pi_test _ -> count_tag t ?scope "#pi"
  | Xpath.Ast.Wildcard | Xpath.Ast.Node_test -> (
      match scope with
      | Some key -> subtree_size t key
      | None -> (
          let e, x, a, c, p = totals t in
          match (test, principal) with
          | Xpath.Ast.Wildcard, Record.Attribute -> a
          | Xpath.Ast.Wildcard, _ -> e
          | Xpath.Ast.Node_test, Record.Attribute -> a
          | Xpath.Ast.Node_test, _ -> e + x + c + p
          | _ -> assert false))

let text_value_count t ?scope v =
  let lo, hi = scope_bounds scope in
  TagTree.count_range t.value_index ~lo:(tag_probe v lo) ~hi:(tag_probe v hi)

(* emptiness probes: a zero count from the counted indexes is a proof
   that no matching node exists (counts are exact or sound upper
   bounds), which static analysis turns into plan pruning *)
let test_present t ?scope ~principal test = count_test t ?scope ~principal test > 0
let value_present t ?scope v = text_value_count t ?scope v > 0

let total_records t = DocTree.length t.doc_index

let preorder_rank t key = DocTree.rank t.doc_index (key_probe (Flex.Before key))

let document_rank t key =
  if Flex.depth key = 0 then preorder_rank t key
  else preorder_rank t key - preorder_rank t (Flex.prefix key 1)

(* ---- cursors ---- *)

type cursor = unit -> Flex.t option

let empty_cursor () = None

let cursor_of_list keys =
  let rest = ref keys in
  fun () ->
    match !rest with
    | [] -> None
    | k :: tl ->
        rest := tl;
        Some k

(* forward scan of one tag's entries within a key range, with a key filter *)
let tag_scan tree tag ~lo ~hi ~filter =
  let c = TagTree.seek tree (tag_probe tag lo) in
  let rec pull () =
    match TagTree.next c with
    | Some ((tag', k), ()) when String.equal tag' tag && Flex.bound_compare_key hi k > 0 ->
        if filter k then Some k else pull ()
    | Some _ | None -> None
  in
  pull

(* reverse scan of one tag's entries, starting just before [hi] *)
let tag_scan_rev tree tag ~lo ~hi ~filter =
  let c = TagTree.seek tree (tag_probe tag hi) in
  let rec pull () =
    match TagTree.prev c with
    | Some ((tag', k), ()) when String.equal tag' tag && Flex.bound_compare_key lo k < 0 ->
        if filter k then Some k else pull ()
    | Some _ | None -> None
  in
  pull

(* forward scan of the clustered index over a key range *)
let doc_scan t ~lo ~hi ~filter =
  let c = DocTree.seek t.doc_index (key_probe lo) in
  let rec pull () =
    match DocTree.next c with
    | Some (k, r) when Flex.bound_compare_key hi k > 0 ->
        if filter k r then Some k else pull ()
    | Some _ | None -> None
  in
  pull

(* reverse scan of the clustered index, starting just before [hi] *)
let doc_scan_rev t ~lo ~hi ~filter =
  let c = DocTree.seek t.doc_index (key_probe hi) in
  let rec pull () =
    match DocTree.prev c with
    | Some (k, r) when Flex.bound_compare_key lo k < 0 ->
        if filter k r then Some k else pull ()
    | Some _ | None -> None
  in
  pull

(* children of [parent] by skipping each child's subtree with a fresh
   O(log n) seek — the clustered-index "jump" the paper credits MASS with *)
let child_skip_scan t parent ~yield =
  let state = ref (Flex.After_key parent) in
  let _, stop = Flex.subtree_range parent in
  let rec pull () =
    let c = DocTree.seek t.doc_index (key_probe !state) in
    match DocTree.next c with
    | Some (k, r) when Flex.bound_compare_key stop k > 0 ->
        state := Flex.After_subtree k;
        if yield k r then Some k else pull ()
    | Some _ | None -> None
  in
  pull

let non_attribute (r : Record.t) = r.Record.kind <> Record.Attribute

(* named tag for index-driven evaluation, when the node test pins one *)
let tag_for_test ~principal (test : Xpath.Ast.node_test) =
  match test with
  | Xpath.Ast.Name_test n -> (
      match (principal : Record.kind) with
      | Record.Attribute -> Some ("@" ^ n)
      | _ -> Some n)
  | Xpath.Ast.Text_test -> Some "#text"
  | Xpath.Ast.Comment_test -> Some "#comment"
  | Xpath.Ast.Pi_test None -> Some "#pi"
  | Xpath.Ast.Pi_test (Some _) -> None (* target needs the record *)
  | Xpath.Ast.Wildcard | Xpath.Ast.Node_test -> None

let axis_cursor t (axis : Xpath.Ast.axis) test ctx : cursor =
  let principal =
    match axis with Xpath.Ast.Attribute -> Record.Attribute | _ -> Record.Element
  in
  let depth = Flex.depth ctx in
  let named = tag_for_test ~principal test in
  let matches r = Record.matches_test ~principal test r in
  let doc_root = if depth = 0 then None else Some (Flex.prefix ctx 1) in
  match axis with
  | Xpath.Ast.Self ->
      let done_ = ref false in
      fun () ->
        if !done_ then None
        else begin
          done_ := true;
          match get t ctx with Some r when matches r -> Some ctx | _ -> None
        end
  | Xpath.Ast.Child -> (
      let lo, hi = Flex.descendants_range ctx in
      match named with
      | Some tag ->
          tag_scan t.name_index tag ~lo ~hi ~filter:(fun k -> Flex.depth k = depth + 1)
      | None ->
          child_skip_scan t ctx ~yield:(fun _ r -> non_attribute r && matches r))
  | Xpath.Ast.Descendant -> (
      let lo, hi = Flex.descendants_range ctx in
      match named with
      | Some tag -> tag_scan t.name_index tag ~lo ~hi ~filter:(fun _ -> true)
      | None -> doc_scan t ~lo ~hi ~filter:(fun _ r -> non_attribute r && matches r))
  | Xpath.Ast.Descendant_or_self -> (
      let lo, hi = Flex.subtree_range ctx in
      match named with
      | Some tag -> tag_scan t.name_index tag ~lo ~hi ~filter:(fun _ -> true)
      | None ->
          (* the context node itself stays in even when it is an attribute *)
          doc_scan t ~lo ~hi ~filter:(fun k r ->
              (non_attribute r || Flex.equal k ctx) && matches r))
  | Xpath.Ast.Attribute -> (
      let lo, hi = Flex.descendants_range ctx in
      (* only a name test can ride the name index here: the attribute axis
         contains attribute nodes only, so kind tests select nothing *)
      match test with
      | Xpath.Ast.Name_test n ->
          tag_scan t.name_index ("@" ^ n) ~lo ~hi ~filter:(fun k -> Flex.depth k = depth + 1)
      | Xpath.Ast.Wildcard | Xpath.Ast.Node_test ->
          child_skip_scan t ctx ~yield:(fun _ r -> r.Record.kind = Record.Attribute)
      | Xpath.Ast.Text_test | Xpath.Ast.Comment_test | Xpath.Ast.Pi_test _ -> empty_cursor)
  | Xpath.Ast.Parent -> (
      match Flex.parent ctx with
      | None -> empty_cursor
      | Some p -> (
          match get t p with
          | Some r when matches r -> cursor_of_list [ p ]
          | _ -> empty_cursor))
  | Xpath.Ast.Ancestor | Xpath.Ast.Ancestor_or_self ->
      (* proximity order: nearest ancestor first *)
      let start = if axis = Xpath.Ast.Ancestor_or_self then depth else depth - 1 in
      let keys = ref (List.init (max start 0) (fun i -> Flex.prefix ctx (start - i))) in
      let rec pull () =
        match !keys with
        | [] -> None
        | k :: tl -> (
            keys := tl;
            match get t k with Some r when matches r -> Some k | _ -> pull ())
      in
      pull
  | Xpath.Ast.Following -> (
      match doc_root with
      | None -> empty_cursor
      | Some root -> (
          let lo = Flex.After_subtree ctx in
          let _, hi = Flex.subtree_range root in
          match named with
          | Some tag -> tag_scan t.name_index tag ~lo ~hi ~filter:(fun _ -> true)
          | None -> doc_scan t ~lo ~hi ~filter:(fun _ r -> non_attribute r && matches r)))
  | Xpath.Ast.Preceding -> (
      match doc_root with
      | None -> empty_cursor
      | Some root -> (
          let lo, _ = Flex.descendants_range root in
          let hi = Flex.Before ctx in
          let not_ancestor k = not (Flex.is_ancestor k ctx) in
          match named with
          | Some tag -> tag_scan_rev t.name_index tag ~lo ~hi ~filter:not_ancestor
          | None ->
              doc_scan_rev t ~lo ~hi ~filter:(fun k r ->
                  not_ancestor k && non_attribute r && matches r)))
  | Xpath.Ast.Following_sibling -> (
      match Flex.parent ctx with
      | None -> empty_cursor
      (* a document node's Flex parent is the store root, but in the data
         model documents have no siblings — without this guard the axis
         would leak the other documents of a multi-document store *)
      | Some _ when depth <= 1 -> empty_cursor
      | Some _ when (match get t ctx with
                    | Some { Record.kind = Record.Attribute; _ } -> true
                    | _ -> false) ->
          (* attribute nodes have no siblings *)
          empty_cursor
      | Some p -> (
          let lo = Flex.After_subtree ctx in
          let _, hi = Flex.subtree_range p in
          match named with
          | Some tag ->
              tag_scan t.name_index tag ~lo ~hi ~filter:(fun k -> Flex.depth k = depth)
          | None ->
              let state = ref lo in
              let rec pull () =
                let c = DocTree.seek t.doc_index (key_probe !state) in
                match DocTree.next c with
                | Some (k, r) when Flex.bound_compare_key hi k > 0 ->
                    state := Flex.After_subtree k;
                    if non_attribute r && matches r then Some k else pull ()
                | Some _ | None -> None
              in
              pull))
  | Xpath.Ast.Preceding_sibling -> (
      match Flex.parent ctx with
      | None -> empty_cursor
      | Some _ when depth <= 1 -> empty_cursor
      | Some _ when (match get t ctx with
                    | Some { Record.kind = Record.Attribute; _ } -> true
                    | _ -> false) ->
          empty_cursor
      | Some p -> (
          let lo, _ = Flex.descendants_range p in
          let hi = Flex.Before ctx in
          match named with
          | Some tag ->
              tag_scan_rev t.name_index tag ~lo ~hi ~filter:(fun k -> Flex.depth k = depth)
          | None ->
              (* reverse child scan: truncating any descendant to the
                 sibling depth jumps straight to the sibling *)
              let state = ref hi in
              let rec pull () =
                let c = DocTree.seek t.doc_index (key_probe !state) in
                match DocTree.prev c with
                | Some (k, _) when Flex.bound_compare_key lo k < 0 -> (
                    let sibling = Flex.prefix k depth in
                    state := Flex.Before sibling;
                    match get t sibling with
                    | Some r when non_attribute r && matches r -> Some sibling
                    | _ -> pull ())
                | Some _ | None -> None
              in
              pull))
  | Xpath.Ast.Namespace -> empty_cursor

let test_cursor ?scope t ~principal test =
  let lo, hi = scope_bounds scope in
  match tag_for_test ~principal test with
  | Some tag -> tag_scan t.name_index tag ~lo ~hi ~filter:(fun _ -> true)
  | None ->
      let kind_ok (r : Record.t) =
        match (principal : Record.kind) with
        | Record.Attribute -> r.kind = Record.Attribute
        | _ -> r.kind <> Record.Attribute
      in
      doc_scan t ~lo ~hi ~filter:(fun _ r ->
          kind_ok r && Record.matches_test ~principal test r)

let value_cursor ?scope t v =
  let lo, hi = scope_bounds scope in
  tag_scan t.value_index v ~lo ~hi ~filter:(fun _ -> true)

let value_range_cursor ?scope t ~lo ~hi =
  let klo, khi = scope_bounds scope in
  let start_probe (tag, k) =
    match lo with
    | None -> 0
    | Some l ->
        let c = String.compare tag l in
        if c <> 0 then c else key_probe klo k
  in
  let c = TagTree.seek t.value_index start_probe in
  let rec pull () =
    match TagTree.next c with
    | Some ((tag, k), ()) -> (
        match hi with
        | Some h when String.compare tag h > 0 -> None
        | _ ->
            if Flex.key_in_range ~lo:klo ~hi:khi k then Some k else pull ())
    | None -> None
  in
  pull

let fold_document t doc f init =
  let lo, hi = Flex.subtree_range doc.doc_key in
  let c = DocTree.seek t.doc_index (key_probe lo) in
  let rec go acc =
    match DocTree.next c with
    | Some (k, r) when Flex.bound_compare_key hi k > 0 -> go (f acc k r)
    | Some _ | None -> acc
  in
  go init

let iter_document t doc f = fold_document t doc (fun () k r -> f k r) ()

(* ---- dynamic updates ---- *)

let child_components t parent =
  let scan = child_skip_scan t parent ~yield:(fun _ _ -> true) in
  let rec go acc =
    match scan () with
    | Some k -> (
        match Flex.last_component k with Some c -> go (c :: acc) | None -> go acc)
    | None -> List.rev acc
  in
  go []

(* Element tags on the ancestor chain of [key] (plus the document
   string-value): the nodes whose XPath string-value changes when a text
   node appears or disappears at or below [key]. *)
let ancestor_cones t key =
  let rec go acc k =
    if Flex.depth k = 0 then acc
    else
      let acc =
        match get t k with
        | Some { Record.kind = Record.Element; name; _ } -> name :: acc
        | _ -> acc
      in
      match Flex.parent k with Some p -> go acc p | None -> acc
  in
  "#document" :: go [] key

let insert_element t ~parent ?after name attrs text =
  (match get t parent with
  | Some { Record.kind = Record.Element | Record.Document; _ } -> ()
  | Some _ -> invalid_arg "Mass.Store.insert_element: parent cannot hold children"
  | None -> invalid_arg "Mass.Store.insert_element: unknown parent");
  let siblings = child_components t parent in
  let lo, hi =
    match after with
    | None -> (
        (* append after the last existing child *)
        match List.rev siblings with last :: _ -> (Some last, None) | [] -> (None, None))
    | Some sib ->
        (match Flex.parent sib with
        | Some p when Flex.equal p parent -> ()
        | _ -> invalid_arg "Mass.Store.insert_element: 'after' is not a child of parent");
        let sc = Option.get (Flex.last_component sib) in
        let next = List.find_opt (fun c -> String.compare c sc > 0) siblings in
        (Some sc, next)
  in
  let comp = Flex.between lo hi in
  let key = Flex.child parent comp in
  let doc = doc_of_key t key in
  let add k kind nm value =
    insert_record t { Record.key = k; kind; name = nm; value };
    match doc with Some d -> bump d kind 1 | None -> ()
  in
  add key Record.Element name "";
  let inner = Flex.sequence (List.length attrs + if text = None then 0 else 1) in
  List.iteri (fun i (an, av) -> add (Flex.child key (List.nth inner i)) Record.Attribute an av) attrs;
  (match text with
  | Some s ->
      add (Flex.child key (List.nth inner (List.length attrs))) Record.Text "" s
  | None -> ());
  bump_epoch t;
  note_doc_mutation t doc;
  let tags =
    (name :: List.map (fun (an, _) -> "@" ^ an) attrs)
    @ (if text = None then [] else [ "#text" ])
  in
  let values = List.map snd attrs @ Option.to_list text in
  (* a text child changes the string-value of every ancestor element (the
     new element's own string-value is covered by its tag atom) *)
  let cones = if text = None then [] else ancestor_cones t parent in
  record_delta t ~doc ~tags ~values ~cones ();
  key

let delete_subtree t key =
  let lo, hi = Flex.subtree_range key in
  let doc = doc_of_key t key in
  (* the ancestor chain must be resolved before the subtree disappears *)
  let ancestors = ancestor_cones t key in
  (* collect first: deleting invalidates cursors *)
  let scan = doc_scan t ~lo ~hi ~filter:(fun _ _ -> true) in
  let rec collect acc =
    match scan () with
    | Some k -> collect (k :: acc)
    | None -> acc
  in
  let keys = collect [] in
  let n = List.length keys in
  let d_top = ref false in
  let d_tags = Hashtbl.create 32
  and d_values = Hashtbl.create 32
  and d_elems = Hashtbl.create 32 in
  let has_text = ref false in
  List.iter
    (fun k ->
      match get t k with
      | Some r ->
          acc_put d_top d_tags (tag_of r);
          (match indexed_value r with Some v -> acc_put d_top d_values v | None -> ());
          (match r.Record.kind with
          | Record.Text -> has_text := true
          | Record.Element -> acc_put d_top d_elems r.Record.name
          | _ -> ());
          remove_record t r;
          (match doc with Some d -> bump d r.Record.kind (-1) | None -> ())
      | None -> ())
    keys;
  bump_epoch t;
  note_doc_mutation t doc;
  (* deleted text changed the string-value of its ancestors: any element
     inside the subtree (a sound over-approximation of the text's actual
     ancestors there) plus the chain above the subtree root *)
  let cones = if !has_text then ancestors @ acc_keys d_elems else [] in
  record_delta t ~doc ~top:!d_top ~tags:(acc_keys d_tags) ~values:(acc_keys d_values)
    ~cones ();
  n

let remove_document t doc =
  (* one commit covering both the subtree deletion and the catalog update *)
  let saved = t.autocommit in
  t.autocommit <- false;
  Fun.protect
    ~finally:(fun () -> t.autocommit <- saved)
    (fun () -> ignore (delete_subtree t doc.doc_key));
  t.docs <- List.filter (fun d -> d.doc_id <> doc.doc_id) t.docs;
  Hashtbl.remove t.doc_epochs doc.doc_id;
  maybe_commit t

let root_element_key doc t =
  let scan =
    child_skip_scan t doc.doc_key ~yield:(fun _ r -> r.Record.kind = Record.Element)
  in
  scan ()

(* aggregate per-tag entry counts by one index sweep *)
let tag_statistics tree =
  let counts = Hashtbl.create 256 in
  TagTree.iter
    (fun (tag, _) () ->
      Hashtbl.replace counts tag (1 + Option.value ~default:0 (Hashtbl.find_opt counts tag)))
    tree;
  Hashtbl.fold (fun tag n acc -> (tag, n) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let name_statistics t = tag_statistics t.name_index
let value_statistics t = tag_statistics t.value_index

(* ---- subtree reconstruction ---- *)

let to_tree t key =
  match get t key with
  | None -> None
  | Some root_record ->
      (* one clustered scan of the subtree, rebuilding the spec bottom-up
         via a stack of open elements *)
      let lo, hi = Flex.subtree_range key in
      let records =
        let c = DocTree.seek t.doc_index (key_probe lo) in
        let rec go acc =
          match DocTree.next c with
          | Some (k, r) when Flex.bound_compare_key hi k > 0 -> go ((k, r) :: acc)
          | Some _ | None -> List.rev acc
        in
        go []
      in
      let spec_of_leaf (r : Record.t) =
        match r.kind with
        | Record.Text -> Some (Xml.Tree.D r.value)
        | Record.Comment -> Some (Xml.Tree.Cm r.value)
        | Record.Pi -> Some (Xml.Tree.Proc (r.name, r.value))
        | Record.Element | Record.Attribute | Record.Document -> None
      in
      (* frame: element key, name, collected attrs (rev), children (rev) *)
      let rec close_to depth stack =
        match stack with
        | (k, name, attrs, children) :: (pk, pname, pattrs, pchildren) :: rest
          when Flex.depth k > depth ->
            let e = Xml.Tree.E (name, List.rev attrs, List.rev children) in
            close_to depth ((pk, pname, pattrs, e :: pchildren) :: rest)
        | _ -> stack
      in
      let push stack (k, (r : Record.t)) =
        (* a record at depth d terminates every open frame at depth >= d *)
        let stack = close_to (Flex.depth k - 1) stack in
        match r.kind with
        | Record.Element | Record.Document -> (k, r.name, [], []) :: stack
        | Record.Attribute -> (
            match stack with
            | (pk, pname, pattrs, pchildren) :: rest ->
                (pk, pname, (r.name, r.value) :: pattrs, pchildren) :: rest
            | [] -> stack)
        | Record.Text | Record.Comment | Record.Pi -> (
            match (spec_of_leaf r, stack) with
            | Some spec, (pk, pname, pattrs, pchildren) :: rest ->
                (pk, pname, pattrs, spec :: pchildren) :: rest
            | _, _ -> stack)
      in
      let stack = List.fold_left push [] records in
      let stack = close_to (Flex.depth key) stack in
      (match (root_record.Record.kind, stack) with
      | Record.Document, [ (_, _, _, children) ] -> Some (Xml.Tree.document (List.rev children))
      | Record.Element, [ (_, name, attrs, children) ] ->
          Some (Xml.Tree.document [ Xml.Tree.E (name, List.rev attrs, List.rev children) ])
      | _ -> None)

let to_xml ?indent t key =
  match get t key with
  | None -> None
  | Some { Record.kind = Record.Document; _ } ->
      Option.map (Xml.Writer.to_string ?indent) (to_tree t key)
  | Some { Record.kind = Record.Element; _ } ->
      Option.map
        (fun tree -> Xml.Writer.to_string ?indent (Xml.Tree.root_element tree))
        (to_tree t key)
  | Some ({ Record.kind = Record.Attribute | Record.Text | Record.Comment | Record.Pi; _ } as r)
    ->
      Some r.Record.value

(* ---- integrity validation (test support) ---- *)

let validate t =
  let fail fmt = Format.kasprintf failwith fmt in
  (* every clustered record must have exactly its index entries *)
  let doc_records = ref 0 in
  List.iter
    (fun d ->
      ignore
        (fold_document t d
           (fun () k (r : Record.t) ->
             incr doc_records;
             if not (Flex.equal k r.key) then fail "record key mismatch at %s" (Flex.to_string k);
             if not (TagTree.mem t.name_index (tag_of r, k)) then
               fail "missing name-index entry for %s" (Flex.to_string k);
             match indexed_value r with
             | Some v ->
                 if not (TagTree.mem t.value_index (v, k)) then
                   fail "missing value-index entry for %s" (Flex.to_string k)
             | None -> ())
           ()))
    t.docs;
  if !doc_records <> total_records t then
    fail "documents cover %d records, doc index holds %d" !doc_records (total_records t);
  (* no dangling name/value entries *)
  TagTree.iter
    (fun (tag, k) () ->
      match get t k with
      | Some r -> if not (String.equal (tag_of r) tag) then fail "stale name entry %s" tag
      | None -> fail "dangling name-index entry (%s, %s)" tag (Flex.to_string k))
    t.name_index;
  TagTree.iter
    (fun (v, k) () ->
      match get t k with
      | Some r -> (
          match indexed_value r with
          | Some v' when String.equal v v' -> ()
          | _ -> fail "stale value entry %S" v)
      | None -> fail "dangling value-index entry (%S, %s)" v (Flex.to_string k))
    t.value_index;
  (* per-document counters match reality *)
  List.iter
    (fun d ->
      let e = ref 0 and x = ref 0 and a = ref 0 and c = ref 0 and p = ref 0 in
      iter_document t d (fun _ r ->
          match r.Record.kind with
          | Record.Element -> incr e
          | Record.Text -> incr x
          | Record.Attribute -> incr a
          | Record.Comment -> incr c
          | Record.Pi -> incr p
          | Record.Document -> ());
      if !e <> d.element_count then fail "%s: element counter %d <> %d" d.doc_name d.element_count !e;
      if !x <> d.text_count then fail "%s: text counter" d.doc_name;
      if !a <> d.attribute_count then fail "%s: attribute counter" d.doc_name;
      if !c <> d.comment_count then fail "%s: comment counter" d.doc_name;
      if !p <> d.pi_count then fail "%s: pi counter" d.doc_name)
    t.docs

(* ---- persistence ----

   Snapshot format (versioned, little-endian):
     magic "MASSSNAP" + u64 version
     u64 document count, then per document:
       string name, string encoded doc key, 5 x u64 kind counters
     u64 record count, then per record:
       string encoded key, u8 kind, string name, string value
   Records are written in document order, so reloading re-inserts them in
   sorted order (the B+-trees' best case). *)

let snapshot_magic = "MASSSNAP"
let snapshot_version = 1L

let write_u64 buf n = Buffer.add_int64_le buf (Int64.of_int n)

let write_string buf s =
  write_u64 buf (String.length s);
  Buffer.add_string buf s

let save_file t path =
  let buf = Buffer.create (1 lsl 20) in
  Buffer.add_string buf snapshot_magic;
  Buffer.add_int64_le buf snapshot_version;
  write_u64 buf (List.length t.docs);
  List.iter
    (fun d ->
      write_string buf d.doc_name;
      write_string buf (Flex.encode d.doc_key);
      write_u64 buf d.element_count;
      write_u64 buf d.text_count;
      write_u64 buf d.attribute_count;
      write_u64 buf d.comment_count;
      write_u64 buf d.pi_count)
    t.docs;
  write_u64 buf (total_records t);
  List.iter
    (fun d ->
      ignore
        (fold_document t d
           (fun () _ (r : Record.t) ->
             write_string buf (Flex.encode r.key);
             Buffer.add_uint8 buf (kind_code r.kind);
             write_string buf r.name;
             write_string buf r.value)
           ()))
    t.docs;
  let oc = open_out_bin path in
  Buffer.output_buffer oc buf;
  close_out oc

exception Corrupt_snapshot of string

let load_file ?pool_pages ?order ?backend path =
  let ic = open_in_bin path in
  let fail msg =
    close_in ic;
    raise (Corrupt_snapshot (Printf.sprintf "%s: %s" path msg))
  in
  let read_exact n =
    match really_input_string ic n with
    | s -> s
    | exception End_of_file -> fail "truncated"
  in
  let read_u64 () =
    let s = read_exact 8 in
    let n = Int64.to_int (String.get_int64_le s 0) in
    if n < 0 then fail "negative length" else n
  in
  let read_string () = read_exact (read_u64 ()) in
  if not (String.equal (read_exact (String.length snapshot_magic)) snapshot_magic) then
    fail "bad magic";
  let version = String.get_int64_le (read_exact 8) 0 in
  if version <> snapshot_version then fail (Printf.sprintf "unsupported version %Ld" version);
  let t = create ?pool_pages ?order ?backend () in
  bulk_ingest t @@ fun () ->
  let ndocs = read_u64 () in
  let docs =
    List.init ndocs (fun i ->
        let doc_name = read_string () in
        let doc_key = Flex.decode (read_string ()) in
        let element_count = read_u64 () in
        let text_count = read_u64 () in
        let attribute_count = read_u64 () in
        let comment_count = read_u64 () in
        let pi_count = read_u64 () in
        { doc_id = i; doc_name; doc_key; element_count; text_count; attribute_count;
          comment_count; pi_count })
  in
  t.docs <- docs;
  t.next_doc_id <- ndocs;
  let nrecords = read_u64 () in
  for _ = 1 to nrecords do
    let key = Flex.decode (read_string ()) in
    let kind =
      match kind_of_code (Char.code (read_exact 1).[0]) with
      | k -> k
      | exception Failure msg -> fail msg
    in
    let name = read_string () in
    let value = read_string () in
    insert_record t { Record.key; kind; name; value }
  done;
  (* trailing garbage indicates corruption *)
  (match input_char ic with
  | _ -> fail "trailing data"
  | exception End_of_file -> ());
  close_in ic;
  t

(* ---- statistics ---- *)

type statistics = {
  record_count : int;
  document_count : int;
  doc_index_pages : int;
  name_index_pages : int;
  value_index_pages : int;
  doc_index_height : int;
  tuples_per_page : float;
  io : Storage.Stats.t;
}

(* live per-index counters: the mutable Stats records of each pager, so
   callers snapshot with [Stats.copy] and diff around a query to
   attribute page traffic to an individual index *)
let io_by_index t =
  [ ("doc_index", DocTree.stats t.doc_index);
    ("name_index", TagTree.stats t.name_index);
    ("value_index", TagTree.stats t.value_index) ]

type pool_info = {
  pool_index : string;
  pool_capacity : int;  (** configured pool size, pages *)
  pool_resident : int;
  pool_pages_total : int;  (** live pages, resident or not *)
  pool_io : Storage.Stats.t;  (** snapshot, not live *)
}

let pool_by_index t =
  [ { pool_index = "doc_index";
      pool_capacity = DocTree.pool_pages t.doc_index;
      pool_resident = DocTree.resident_count t.doc_index;
      pool_pages_total = DocTree.page_count t.doc_index;
      pool_io = Storage.Stats.copy (DocTree.stats t.doc_index) };
    { pool_index = "name_index";
      pool_capacity = TagTree.pool_pages t.name_index;
      pool_resident = TagTree.resident_count t.name_index;
      pool_pages_total = TagTree.page_count t.name_index;
      pool_io = Storage.Stats.copy (TagTree.stats t.name_index) };
    { pool_index = "value_index";
      pool_capacity = TagTree.pool_pages t.value_index;
      pool_resident = TagTree.resident_count t.value_index;
      pool_pages_total = TagTree.page_count t.value_index;
      pool_io = Storage.Stats.copy (TagTree.stats t.value_index) } ]

let document_of_key = doc_of_key

let io_stats t =
  let acc = Storage.Stats.create () in
  let add (s : Storage.Stats.t) =
    acc.Storage.Stats.logical_reads <- acc.Storage.Stats.logical_reads + s.Storage.Stats.logical_reads;
    acc.Storage.Stats.physical_reads <- acc.Storage.Stats.physical_reads + s.Storage.Stats.physical_reads;
    acc.Storage.Stats.page_writes <- acc.Storage.Stats.page_writes + s.Storage.Stats.page_writes;
    acc.Storage.Stats.evictions <- acc.Storage.Stats.evictions + s.Storage.Stats.evictions;
    acc.Storage.Stats.allocations <- acc.Storage.Stats.allocations + s.Storage.Stats.allocations;
    acc.Storage.Stats.write_back_bytes <-
      acc.Storage.Stats.write_back_bytes + s.Storage.Stats.write_back_bytes;
    acc.Storage.Stats.fsyncs <- acc.Storage.Stats.fsyncs + s.Storage.Stats.fsyncs
  in
  add (DocTree.stats t.doc_index);
  add (TagTree.stats t.name_index);
  add (TagTree.stats t.value_index);
  acc

let reset_io_stats t =
  Storage.Stats.reset (DocTree.stats t.doc_index);
  Storage.Stats.reset (TagTree.stats t.name_index);
  Storage.Stats.reset (TagTree.stats t.value_index)

type structure = {
  s_max_depth : int;
  s_depths : (int * int) list;
  s_fanouts : (int * int) list;
  s_max_fanout : int;
  s_mean_fanout : float;
}

(* one clustered scan; fanout falls out of a stack of open containers
   (document-order means every record closes all deeper frames first) *)
let structure_statistics t doc =
  let depth0 = Flex.depth doc.doc_key in
  let depths = Hashtbl.create 32 in
  let fanouts = Hashtbl.create 64 in
  let bump tbl k =
    Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
  in
  let stack = ref [] in
  let rec close_to d =
    match !stack with
    | (sd, n) :: rest when sd >= d ->
        bump fanouts !n;
        stack := rest;
        close_to d
    | _ -> ()
  in
  iter_document t doc (fun k (r : Record.t) ->
      let d = Flex.depth k in
      bump depths (d - depth0);
      close_to d;
      (match !stack with (_, n) :: _ -> incr n | [] -> ());
      match r.Record.kind with
      | Record.Element | Record.Document -> stack := (d, ref 0) :: !stack
      | Record.Attribute | Record.Text | Record.Comment | Record.Pi -> ());
  close_to depth0;
  let sorted tbl =
    Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let s_depths = sorted depths and s_fanouts = sorted fanouts in
  let containers = List.fold_left (fun acc (_, n) -> acc + n) 0 s_fanouts in
  let children = List.fold_left (fun acc (f, n) -> acc + (f * n)) 0 s_fanouts in
  {
    s_max_depth = List.fold_left (fun acc (d, _) -> max acc d) 0 s_depths;
    s_depths;
    s_fanouts;
    s_max_fanout = List.fold_left (fun acc (f, _) -> max acc f) 0 s_fanouts;
    s_mean_fanout =
      (if containers = 0 then 0.0 else float_of_int children /. float_of_int containers);
  }

let statistics t =
  let records = total_records t in
  let doc_pages = DocTree.page_count t.doc_index in
  {
    record_count = records;
    document_count = List.length t.docs;
    doc_index_pages = doc_pages;
    name_index_pages = TagTree.page_count t.name_index;
    value_index_pages = TagTree.page_count t.value_index;
    doc_index_height = DocTree.height t.doc_index;
    tuples_per_page = (if doc_pages = 0 then 0.0 else float_of_int records /. float_of_int doc_pages);
    io = io_stats t;
  }
