(* DataGuide-style path synopsis over a MASS store.

   One node per distinct root-to-tag path, labelled with {!Store.tag_of}
   spellings and carrying the exact number of records on that path.
   Built in a single document-order scan (parents precede children, so a
   depth-indexed stack of synopsis nodes suffices), rebuilt lazily and
   invalidated by the store epoch like the engine's plan caches.

   The synopsis instantiates {!Xpath.Typecheck.schema}, which is where
   all axis reasoning lives; this module only owns the tree, its
   construction, and the store-facing cache. *)

type node = {
  syn_tag : string;
  syn_parent : node option;
  mutable syn_count : int;
  mutable syn_children : node list;  (* sorted by tag once built *)
}

type t = {
  syn_epoch : int;  (** store epoch the synopsis was derived at *)
  syn_docs : (Flex.t * node) list;  (** document key → "#document" synopsis node *)
  syn_paths : int;  (** distinct root-to-tag paths *)
  syn_records : int;  (** records summarized (including document records) *)
}

let epoch t = t.syn_epoch
let paths t = t.syn_paths
let records t = t.syn_records

let rec sort_tree n =
  let children =
    List.sort (fun a b -> String.compare a.syn_tag b.syn_tag) n.syn_children
  in
  n.syn_children <- children;
  List.iter sort_tree children

let build_doc store (doc : Store.doc) =
  let root =
    { syn_tag = "#document"; syn_parent = None; syn_count = 0; syn_children = [] }
  in
  (* stack.(d) = synopsis node of the record currently open at depth d+1;
     document order guarantees a record's parent was seen first *)
  let stack = ref (Array.make 16 root) in
  let ensure d =
    if d >= Array.length !stack then begin
      let bigger = Array.make (2 * d) root in
      Array.blit !stack 0 bigger 0 (Array.length !stack);
      stack := bigger
    end
  in
  Store.iter_document store doc (fun key record ->
      let d = Flex.depth key in
      ensure d;
      if d = 1 then begin
        root.syn_count <- root.syn_count + 1;
        !stack.(0) <- root
      end
      else begin
        let parent = !stack.(d - 2) in
        let tag = Store.tag_of record in
        let n =
          match List.find_opt (fun c -> c.syn_tag = tag) parent.syn_children with
          | Some c -> c
          | None ->
              let c =
                { syn_tag = tag; syn_parent = Some parent; syn_count = 0; syn_children = [] }
              in
              parent.syn_children <- c :: parent.syn_children;
              c
        in
        n.syn_count <- n.syn_count + 1;
        !stack.(d - 1) <- n
      end);
  sort_tree root;
  (doc.Store.doc_key, root)

let rec tree_stats n (paths, records) =
  List.fold_left
    (fun acc c -> tree_stats c acc)
    (paths + 1, records + n.syn_count)
    n.syn_children

let build store =
  let ep = Store.epoch store in
  let docs = List.map (build_doc store) (Store.documents store) in
  let paths, records =
    List.fold_left (fun acc (_, root) -> tree_stats root acc) (0, 0) docs
  in
  { syn_epoch = ep; syn_docs = docs; syn_paths = paths; syn_records = records }

(* ---- per-store cache ---- *)

(* Keyed by physical store identity; a handful of live stores at most
   (tests, CLI, service), so a short list with LRU-ish trimming does. *)
let cache : (Store.t * t) list ref = ref []
let cache_limit = 8

let for_store store =
  match List.find_opt (fun (s, _) -> s == store) !cache with
  | Some (_, syn) when syn.syn_epoch = Store.epoch store -> syn
  | _ ->
      let syn = build store in
      let rest = List.filter (fun (s, _) -> not (s == store)) !cache in
      let rest =
        if List.length rest >= cache_limit then List.filteri (fun i _ -> i < cache_limit - 1) rest
        else rest
      in
      cache := (store, syn) :: rest;
      syn

(* ---- schema instantiation ---- *)

let roots t ~scope =
  match scope with
  | None -> List.map snd t.syn_docs
  | Some key ->
      List.filter_map
        (fun (dk, root) -> if Flex.equal dk key then Some root else None)
        t.syn_docs

let schema t ~scope =
  {
    Xpath.Typecheck.sch_roots = roots t ~scope;
    sch_tag = (fun n -> n.syn_tag);
    sch_count = (fun n -> n.syn_count);
    sch_children = (fun n -> n.syn_children);
    sch_parent = (fun n -> n.syn_parent);
  }

let chain_estimate t ~scope spec =
  match (scope, roots t ~scope) with
  | Some _, [] ->
      (* scope is not a whole document (or an unknown one): the synopsis
         cannot place it, so claim nothing *)
      None
  | _ -> Some (Xpath.Typecheck.chain_estimate (schema t ~scope) spec)

(* ---- dumping and verification ---- *)

let fold t ~init ~f =
  let rec go acc rev_path n =
    let rev_path = n.syn_tag :: rev_path in
    let acc = f acc ~path:(List.rev rev_path) ~count:n.syn_count in
    List.fold_left (fun acc c -> go acc rev_path c) acc n.syn_children
  in
  List.fold_left (fun acc (_, root) -> go acc [] root) init t.syn_docs

let rec equal_tree a b =
  a.syn_tag = b.syn_tag && a.syn_count = b.syn_count
  && List.length a.syn_children = List.length b.syn_children
  && List.for_all2 equal_tree a.syn_children b.syn_children

(* Recount one kind over a synopsis tree for the doc-counter cross-check. *)
let rec kind_total pred n acc =
  let acc = if pred n.syn_tag then acc + n.syn_count else acc in
  List.fold_left (fun acc c -> kind_total pred c acc) acc n.syn_children

let verify store t =
  if t.syn_epoch <> Store.epoch store then
    Error
      (Printf.sprintf "synopsis is stale: built at epoch %d, store is at %d" t.syn_epoch
         (Store.epoch store))
  else
    let fresh = build store in
    let doc_of key docs = List.find_opt (fun (dk, _) -> Flex.equal dk key) docs in
    let mismatch =
      List.find_map
        (fun (dk, root) ->
          match doc_of dk fresh.syn_docs with
          | None -> Some (Printf.sprintf "document %s missing from rescan" (Flex.to_string dk))
          | Some (_, fresh_root) ->
              if equal_tree root fresh_root then None
              else Some (Printf.sprintf "document %s: synopsis disagrees with rescan" (Flex.to_string dk)))
        t.syn_docs
    in
    match mismatch with
    | Some m -> Error m
    | None ->
        if List.length t.syn_docs <> List.length fresh.syn_docs then
          Error "document set disagrees with rescan"
        else
          (* cross-check against the store's per-document kind counters *)
          List.fold_left
            (fun acc (doc : Store.doc) ->
              match acc with
              | Error _ -> acc
              | Ok () -> (
                  match doc_of doc.Store.doc_key t.syn_docs with
                  | None -> Error (Printf.sprintf "no synopsis for document %S" doc.Store.doc_name)
                  | Some (_, root) ->
                      let is_elem tag =
                        String.length tag > 0 && tag.[0] <> '@' && tag.[0] <> '#'
                      in
                      let checks =
                        [
                          ("element", doc.Store.element_count, kind_total is_elem root 0);
                          ("text", doc.Store.text_count, kind_total (( = ) "#text") root 0);
                          ( "attribute",
                            doc.Store.attribute_count,
                            kind_total (fun tag -> String.length tag > 0 && tag.[0] = '@') root 0 );
                          ("comment", doc.Store.comment_count, kind_total (( = ) "#comment") root 0);
                          ("pi", doc.Store.pi_count, kind_total (( = ) "#pi") root 0);
                        ]
                      in
                      List.fold_left
                        (fun acc (what, expected, got) ->
                          match acc with
                          | Error _ -> acc
                          | Ok () ->
                              if expected = got then Ok ()
                              else
                                Error
                                  (Printf.sprintf
                                     "document %S: %s count %d in store, %d in synopsis"
                                     doc.Store.doc_name what expected got))
                        (Ok ()) checks))
            (Ok ()) (Store.documents store)
