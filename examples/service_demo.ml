(* Service demo: the cached, metered query-service layer.

   Shows the three service features end to end: a warm plan cache
   (repeat queries skip parse/compile/optimize), the epoch-invalidated
   result cache (a store update between identical queries always yields
   fresh results), and the metrics snapshot.

     dune exec examples/service_demo.exe *)

module Store = Mass.Store
module Service = Vamana_service.Service

let document =
  {xml|<site><people>
  <person id="p1"><name>Ada</name><address><city>Turin</city></address></person>
  <person id="p2"><name>Grace</name><address><city>Arlington</city></address></person>
</people></site>|xml}

let tag = function `Hit -> "hit" | `Miss -> "miss" | `Stale -> "stale" | `Bypass -> "-"

let run service doc q =
  match Service.query_doc service doc q with
  | Error msg -> Printf.printf "  %-12s error: %s\n" q msg
  | Ok o ->
      Printf.printf "  %-12s %d results  (plan %s, result %s, %.3f ms)\n" q
        (List.length o.Service.result.Vamana.Engine.keys)
        (tag o.Service.plan_cache) (tag o.Service.result_cache)
        (o.Service.total_time *. 1000.)

let () =
  let store = Store.create () in
  let doc = Store.load_string store ~name:"site.xml" document in
  let service = Service.create store in

  Printf.printf "1. cold query, then a warm repeat (plan + result cache hits):\n";
  run service doc "//person";
  run service doc "//person";

  Printf.printf "\n2. mutate the store: the epoch bump invalidates the cached result\n";
  let people =
    match Vamana.Engine.query_doc store doc "/site/people" with
    | Ok r -> List.hd r.Vamana.Engine.keys
    | Error e -> failwith e
  in
  ignore (Store.insert_element store ~parent:people "person" [ ("id", "p3") ] (Some "Hedy"));
  Printf.printf "   (inserted person p3; store epoch is now %d)\n" (Store.epoch store);
  run service doc "//person";
  run service doc "//person";

  Printf.printf "\n3. metrics snapshot:\n\n%s" (Service.snapshot_text service)
