(* Tests for the XQuery-lite FLWOR layer. *)

module Store = Mass.Store

let doc_src =
  {xml|<site>
  <people>
    <person id="p1"><name>Ann</name><age>34</age><city>Boston</city></person>
    <person id="p2"><name>Bob</name><age>28</age><city>Monroe</city></person>
    <person id="p3"><name>Cid</name><age>45</age><city>Boston</city></person>
  </people>
  <sales>
    <sale who="p1" amount="10"/>
    <sale who="p2" amount="25"/>
    <sale who="p1" amount="5"/>
  </sales>
</site>|xml}

let setup () =
  let store = Store.create () in
  let doc = Store.load_string store ~name:"t.xml" doc_src in
  (store, doc.Store.doc_key)

let run src =
  let store, ctx = setup () in
  Xquery.run_to_xml store ~context:ctx src

let test_plain_expression () =
  Alcotest.(check string) "bare path query" "<name>Ann</name>\n<name>Bob</name>\n<name>Cid</name>"
    (run "//person/name");
  Alcotest.(check string) "atomic" "3" (run "count(//person)")

let test_for_return_constructor () =
  Alcotest.(check string) "constructed elements"
    "<row><name>Ann</name></row>\n<row><name>Bob</name></row>\n<row><name>Cid</name></row>"
    (run "for $p in //person return <row>{$p/name}</row>")

let test_where () =
  Alcotest.(check string) "where filters"
    "<bostonian>Ann</bostonian>\n<bostonian>Cid</bostonian>"
    (run "for $p in //person where $p/city = 'Boston' return <bostonian>{$p/name/text()}</bostonian>")

let test_let () =
  Alcotest.(check string) "let binds values" "<n>3</n>"
    (run "let $c := count(//person) return <n>{$c}</n>")

let test_order_by () =
  Alcotest.(check string) "order by name" "Ann\nBob\nCid"
    (run "for $p in //person order by $p/name return $p/name/text()");
  Alcotest.(check string) "descending" "Cid\nBob\nAnn"
    (run "for $p in //person order by $p/name descending return $p/name/text()")

let test_nested_for_join () =
  (* a value join between people and their sales *)
  Alcotest.(check string) "join amounts"
    "<a>10</a>\n<a>5</a>\n<a>25</a>"
    (run
       "for $p in //person, $s in //sale where $s/@who = $p/@id return <a>{$s/@amount}</a>")

let test_variable_rooted_plan () =
  (* $p/name compiles to a VAMANA plan re-rooted per binding; the result
     must match the navigational semantics *)
  Alcotest.(check string) "variable-rooted path" "Ann\nBob\nCid"
    (run "for $p in //person return $p/name/text()")

let test_node_splice_copies_subtree () =
  Alcotest.(check string) "subtree copied into constructor"
    "<copy><person id=\"p2\"><name>Bob</name><age>28</age><city>Monroe</city></person></copy>"
    (run "for $p in //person where $p/@id = 'p2' return <copy>{$p}</copy>")

let test_static_attributes_and_empty () =
  Alcotest.(check string) "static attrs, nested, empty"
    "<out kind=\"x\"><empty/><v>34</v></out>"
    (run "for $p in //person where $p/name = 'Ann' return <out kind=\"x\"><empty/><v>{$p/age/text()}</v></out>")

let test_errors () =
  let store, ctx = setup () in
  List.iter
    (fun src ->
      match Xquery.run store ~context:ctx src with
      | exception Xquery.Error _ -> ()
      | _ -> Alcotest.fail ("expected error for " ^ src))
    [ "for $p in //person";          (* missing return *)
      "for p in //person return $p"; (* missing $ *)
      "for $p in return $p";         (* empty expression *)
      "for $p in //person return <a>{$p}</b>"; (* mismatched constructor *)
      "for $p in //person return <a>{$q}</a>"; (* unbound variable *)
      "let $x = 3 return $x" ]       (* = instead of := *)

let test_parse_validation () =
  Xquery.parse "for $p in //person where $p/age > 30 return <r>{$p/name}</r>";
  match Xquery.parse "for $p in" with
  | exception Xquery.Error _ -> ()
  | _ -> Alcotest.fail "expected parse error"

let suite =
  ( "xquery",
    [ Alcotest.test_case "plain expressions" `Quick test_plain_expression;
      Alcotest.test_case "for/return with constructor" `Quick test_for_return_constructor;
      Alcotest.test_case "where" `Quick test_where;
      Alcotest.test_case "let" `Quick test_let;
      Alcotest.test_case "order by" `Quick test_order_by;
      Alcotest.test_case "nested for (join)" `Quick test_nested_for_join;
      Alcotest.test_case "variable-rooted plans" `Quick test_variable_rooted_plan;
      Alcotest.test_case "node splice copies subtree" `Quick test_node_splice_copies_subtree;
      Alcotest.test_case "static attributes and empty elements" `Quick test_static_attributes_and_empty;
      Alcotest.test_case "errors" `Quick test_errors;
      Alcotest.test_case "parse validation" `Quick test_parse_validation ] )
