(* Tests for the XML data model, parser and writer. *)

open Xml

let person_doc =
  {xml|<?xml version="1.0"?>
<site>
  <person id="person144">
    <name>Yung Flach</name>
    <emailaddress>Flach@auth.gr</emailaddress>
    <address>
      <street>92 Pfisterer St</street>
      <city>Monroe</city>
      <country>United States</country>
      <zipcode>12</zipcode>
    </address>
    <watches>
      <watch open_auction="open_auction108"/>
      <watch open_auction="open_auction94"/>
      <watch open_auction="open_auction110"/>
    </watches>
  </person>
</site>|xml}

let count_kind pred doc =
  Tree.fold_preorder (fun n node -> if pred node then n + 1 else n) 0 doc

let test_parse_paper_fragment () =
  let doc = Parser.parse person_doc in
  let elements n = match n.Tree.kind with Tree.Element _ -> true | _ -> false in
  Alcotest.(check int) "element count" 13 (count_kind elements doc);
  let watches = count_kind (fun n -> Tree.name n = "watch" && Tree.is_element n) doc in
  Alcotest.(check int) "watch count" 3 watches;
  let attrs = count_kind Tree.is_attribute doc in
  Alcotest.(check int) "attribute count" 4 attrs;
  let root = Tree.root_element doc in
  Alcotest.(check string) "root name" "site" (Tree.name root)

let test_string_value () =
  let doc = Parser.parse person_doc in
  let person = List.find (fun n -> Tree.name n = "person") (Tree.descendant_nodes doc) in
  let name = List.find (fun n -> Tree.name n = "name") (Tree.descendant_nodes person) in
  Alcotest.(check string) "name value" "Yung Flach" (Tree.string_value name);
  let address = List.find (fun n -> Tree.name n = "address") (Tree.descendant_nodes person) in
  Alcotest.(check string) "address concat" "92 Pfisterer StMonroeUnited States12"
    (Tree.string_value address)

let test_preorder_ids () =
  let doc = Parser.parse person_doc in
  let last = ref (-1) in
  Tree.iter_preorder
    (fun n ->
      Alcotest.(check bool) "ids strictly increase" true (n.Tree.id > !last);
      last := n.Tree.id)
    doc;
  Alcotest.(check int) "node_count matches max id" (!last + 1) (Tree.node_count doc)

let test_parent_links () =
  let doc = Parser.parse person_doc in
  Tree.iter_preorder
    (fun n ->
      match n.Tree.parent with
      | None -> Alcotest.(check bool) "only document lacks parent" true (n.Tree.kind = Tree.Document)
      | Some p ->
          let in_children = Array.exists (fun c -> c == n) p.Tree.children in
          let in_attrs = Array.exists (fun c -> c == n) p.Tree.attributes in
          Alcotest.(check bool) "child listed under parent" true (in_children || in_attrs))
    doc

let test_entities_and_cdata () =
  let doc =
    Parser.parse
      "<r a='x&amp;y'>one &lt;two&gt; &#65;&#x42; <![CDATA[<raw & stuff>]]> &quot;q&apos;</r>"
  in
  let root = Tree.root_element doc in
  Alcotest.(check string) "text expansion" "one <two> AB <raw & stuff> \"q'"
    (Tree.string_value root);
  match root.Tree.attributes with
  | [| a |] -> Alcotest.(check string) "attr expansion" "x&y" (Tree.string_value a)
  | _ -> Alcotest.fail "expected one attribute"

let test_comments_pis_doctype () =
  let doc =
    Parser.parse
      "<?xml version=\"1.0\"?><!DOCTYPE site [<!ELEMENT site ANY>]><!-- hi --><r><?p data?><!--in--></r>"
  in
  let root = Tree.root_element doc in
  Alcotest.(check int) "two children" 2 (Array.length root.Tree.children);
  (match root.Tree.children.(0).Tree.kind with
  | Tree.Pi (t, d) ->
      Alcotest.(check string) "pi target" "p" t;
      Alcotest.(check string) "pi data" "data" d
  | _ -> Alcotest.fail "expected PI");
  match root.Tree.children.(1).Tree.kind with
  | Tree.Comment c -> Alcotest.(check string) "comment" "in" c
  | _ -> Alcotest.fail "expected comment"

let test_whitespace_modes () =
  let src = "<a>\n  <b/>\n</a>" in
  let trimmed = Parser.parse src in
  Alcotest.(check int) "whitespace dropped" 1
    (Array.length (Tree.root_element trimmed).Tree.children);
  let kept = Parser.parse ~keep_whitespace:true src in
  Alcotest.(check int) "whitespace kept" 3
    (Array.length (Tree.root_element kept).Tree.children)

let check_parse_error src =
  match Parser.parse src with
  | exception Parser.Error _ -> ()
  | _ -> Alcotest.fail (Printf.sprintf "expected parse error for %S" src)

let test_malformed () =
  List.iter check_parse_error
    [ "<a><b></a>";          (* mismatched close *)
      "<a>";                 (* unterminated *)
      "<a x='1' x='2'/>";    (* duplicate attribute *)
      "text only";           (* no root *)
      "<a/><b/>";            (* two roots *)
      "<a>&unknown;</a>";    (* undefined entity *)
      "<a b=c/>";            (* unquoted attribute *)
      "<a><![CDATA[x</a>";   (* unterminated CDATA *)
      "";                    (* empty input *)
      "<a>&#;</a>" ]         (* empty char ref *)

let test_error_position () =
  match Parser.parse "<a>\n<b></c>\n</a>" with
  | exception Parser.Error { line; col = _; msg = _ } ->
      Alcotest.(check int) "error line" 2 line
  | _ -> Alcotest.fail "expected error"

let test_roundtrip () =
  let doc = Parser.parse person_doc in
  let out = Writer.to_string doc in
  let doc2 = Parser.parse out in
  Alcotest.(check bool) "roundtrip spec equality" true
    (Tree.element_spec doc = Tree.element_spec doc2);
  (* pretty-printing also roundtrips *)
  let doc3 = Parser.parse (Writer.to_string ~indent:2 doc) in
  Alcotest.(check bool) "pretty roundtrip" true
    (Tree.element_spec doc = Tree.element_spec doc3)

let test_escaping () =
  Alcotest.(check string) "text" "a&amp;b&lt;c&gt;d" (Writer.escape_text "a&b<c>d");
  Alcotest.(check string) "attr" "a&amp;&quot;b&lt;" (Writer.escape_attr "a&\"b<");
  let doc = Tree.document [ Tree.E ("r", [ ("k", "a\"&<") ], [ Tree.D "x<&>y" ]) ] in
  let doc2 = Parser.parse (Writer.to_string doc) in
  Alcotest.(check bool) "escaped roundtrip" true
    (Tree.element_spec doc = Tree.element_spec doc2)

(* property: generated random documents roundtrip through writer+parser *)
let gen_text =
  QCheck.Gen.string_size ~gen:(QCheck.Gen.oneofl [ 'a'; 'b'; '&'; '<'; '>'; '"'; ' '; 'z' ])
    (QCheck.Gen.int_range 1 10)

let gen_name_str =
  let open QCheck.Gen in
  let* c = char_range 'a' 'z' in
  let* rest = string_size ~gen:(char_range 'a' 'z') (int_range 0 5) in
  return (String.make 1 c ^ rest)

let gen_spec =
  let open QCheck.Gen in
  fix
    (fun self depth ->
      if depth = 0 then
        let* s = gen_text in
        (* avoid whitespace-only text: parser drops it by default *)
        return (Tree.D ("x" ^ s))
      else
        let* name = gen_name_str in
        let* nattrs = int_range 0 2 in
        let* attr_names = list_size (return nattrs) gen_name_str in
        let attr_names = List.sort_uniq String.compare attr_names in
        let* attrs =
          flatten_l (List.map (fun an -> map (fun v -> (an, v)) gen_text) attr_names)
        in
        let* nchildren = int_range 0 3 in
        let* children = list_size (return nchildren) (self (depth - 1)) in
        return (Tree.E (name, attrs, children)))
    3

(* Adjacent text nodes merge on reparse; normalize before comparing. *)
let rec normalize_spec = function
  | Tree.E (n, attrs, children) ->
      let rec merge = function
        | Tree.D a :: Tree.D b :: rest -> merge (Tree.D (a ^ b) :: rest)
        | x :: rest -> normalize_spec x :: merge rest
        | [] -> []
      in
      Tree.E (n, attrs, merge children)
  | other -> other

let prop_roundtrip =
  QCheck.Test.make ~name:"write/parse roundtrip on random documents" ~count:200
    (QCheck.make gen_spec) (fun spec ->
      match spec with
      | Tree.E _ ->
          let doc = Tree.document [ spec ] in
          let doc2 = Parser.parse (Writer.to_string doc) in
          normalize_spec (Tree.element_spec doc) = normalize_spec (Tree.element_spec doc2)
      | _ -> QCheck.assume_fail ())

let suite =
  ( "xml",
    [ Alcotest.test_case "parse paper fragment" `Quick test_parse_paper_fragment;
      Alcotest.test_case "string value" `Quick test_string_value;
      Alcotest.test_case "preorder ids" `Quick test_preorder_ids;
      Alcotest.test_case "parent links" `Quick test_parent_links;
      Alcotest.test_case "entities and cdata" `Quick test_entities_and_cdata;
      Alcotest.test_case "comments pis doctype" `Quick test_comments_pis_doctype;
      Alcotest.test_case "whitespace modes" `Quick test_whitespace_modes;
      Alcotest.test_case "malformed inputs" `Quick test_malformed;
      Alcotest.test_case "error position" `Quick test_error_position;
      Alcotest.test_case "roundtrip" `Quick test_roundtrip;
      Alcotest.test_case "escaping" `Quick test_escaping;
      QCheck_alcotest.to_alcotest prop_roundtrip ] )
