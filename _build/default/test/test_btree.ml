(* Tests for the counted B+-tree, including a model-based property suite. *)

module IntKey = struct
  type t = int

  let compare = Int.compare
  let pp = Format.pp_print_int
end

module T = Btree.Make (IntKey)

let mk ?(order = 4) entries =
  let t = T.create ~order () in
  List.iter (fun (k, v) -> T.insert t k v) entries;
  t

let test_empty () =
  let t = T.create () in
  Alcotest.(check int) "length" 0 (T.length t);
  Alcotest.(check int) "height" 1 (T.height t);
  Alcotest.(check bool) "find" true (T.find t 3 = None);
  Alcotest.(check bool) "min" true (T.min_binding t = None);
  Alcotest.(check bool) "max" true (T.max_binding t = None);
  T.check_invariants t

let test_insert_find () =
  let t = mk (List.init 100 (fun i -> (i * 3, string_of_int i))) in
  T.check_invariants t;
  Alcotest.(check int) "length" 100 (T.length t);
  Alcotest.(check bool) "height grew" true (T.height t > 1);
  for i = 0 to 99 do
    Alcotest.(check (option string)) "present" (Some (string_of_int i)) (T.find t (i * 3));
    Alcotest.(check (option string)) "absent" None (T.find t ((i * 3) + 1))
  done

let test_upsert () =
  let t = mk [ (1, "a"); (2, "b") ] in
  T.insert t 1 "z";
  Alcotest.(check int) "length unchanged" 2 (T.length t);
  Alcotest.(check (option string)) "replaced" (Some "z") (T.find t 1);
  T.check_invariants t

let test_delete () =
  let t = mk (List.init 50 (fun i -> (i, i))) in
  Alcotest.(check bool) "delete present" true (T.delete t 25);
  Alcotest.(check bool) "delete absent" false (T.delete t 25);
  Alcotest.(check int) "length" 49 (T.length t);
  Alcotest.(check (option int)) "gone" None (T.find t 25);
  T.check_invariants t;
  (* empty out a whole region; cursors must skip the empty leaves *)
  for i = 10 to 20 do
    ignore (T.delete t i)
  done;
  T.check_invariants t;
  let c = T.seek_key t 9 in
  Alcotest.(check (option (pair int int))) "9 present" (Some (9, 9)) (T.next c);
  Alcotest.(check (option (pair int int))) "jumps region" (Some (21, 21)) (T.next c)

let test_ordered_iteration () =
  let entries = List.init 200 (fun i -> (i * 7 mod 401, i)) in
  let t = mk entries in
  let keys = List.map fst (T.to_list t) in
  let sorted = List.sort_uniq Int.compare (List.map fst entries) in
  Alcotest.(check (list int)) "iteration sorted" sorted keys

let test_cursor_bidirectional () =
  let t = mk (List.init 30 (fun i -> (i, i))) in
  let c = T.seek_key t 10 in
  Alcotest.(check (option (pair int int))) "next" (Some (10, 10)) (T.next c);
  Alcotest.(check (option (pair int int))) "next again" (Some (11, 11)) (T.next c);
  Alcotest.(check (option (pair int int))) "back" (Some (11, 11)) (T.prev c);
  Alcotest.(check (option (pair int int))) "back again" (Some (10, 10)) (T.prev c);
  Alcotest.(check (option (pair int int))) "back once more" (Some (9, 9)) (T.prev c);
  let c = T.seek_min t in
  Alcotest.(check (option (pair int int))) "prev at min" None (T.prev c);
  let c = T.seek_max t in
  Alcotest.(check (option (pair int int))) "next at max" None (T.next c);
  Alcotest.(check (option (pair int int))) "prev at max" (Some (29, 29)) (T.prev c)

let test_peek () =
  let t = mk [ (1, 1); (2, 2) ] in
  let c = T.seek_min t in
  Alcotest.(check (option (pair int int))) "peek" (Some (1, 1)) (T.peek c);
  Alcotest.(check (option (pair int int))) "peek does not advance" (Some (1, 1)) (T.next c)

let test_rank_count () =
  let t = mk (List.init 100 (fun i -> (2 * i, i))) in
  (* keys 0,2,...,198 *)
  Alcotest.(check int) "rank of 50-bound" 25 (T.rank t (fun k -> Int.compare k 50));
  Alcotest.(check int) "rank of odd bound" 26 (T.rank t (fun k -> Int.compare k 51));
  Alcotest.(check int) "count [10,20)" 5
    (T.count_range t ~lo:(fun k -> Int.compare k 10) ~hi:(fun k -> Int.compare k 20));
  Alcotest.(check int) "count everything" 100
    (T.count_range t ~lo:(fun _ -> 0) ~hi:(fun _ -> -1));
  Alcotest.(check int) "count empty range" 0
    (T.count_range t ~lo:(fun k -> Int.compare k 20) ~hi:(fun k -> Int.compare k 10))

let test_count_without_data_reads () =
  (* counting must touch O(height) pages, far fewer than iterating *)
  let t = mk ~order:8 (List.init 5000 (fun i -> (i, i))) in
  let s0 = (T.stats t).Storage.Stats.logical_reads in
  let n = T.count_range t ~lo:(fun k -> Int.compare k 100) ~hi:(fun k -> Int.compare k 4900) in
  let reads = (T.stats t).Storage.Stats.logical_reads - s0 in
  Alcotest.(check int) "count correct" 4800 n;
  Alcotest.(check bool)
    (Printf.sprintf "count touched %d pages (<= 2*height+2)" reads)
    true
    (reads <= (2 * T.height t) + 2)

let test_seek_probe () =
  let t = mk (List.init 50 (fun i -> (3 * i, i))) in
  (* probe for first key >= 50 -> 51 *)
  let c = T.seek t (fun k -> Int.compare k 50) in
  Alcotest.(check (option (pair int int))) "first >= 50" (Some (51, 17)) (T.next c)

(* ---- model-based property tests ---- *)

module IntMap = Map.Make (Int)

type op = Insert of int * int | Delete of int | Find of int

let gen_ops =
  let open QCheck.Gen in
  let key = int_range 0 120 in
  let op =
    frequency
      [ (5, map2 (fun k v -> Insert (k, v)) key (int_range 0 1000));
        (2, map (fun k -> Delete k) key);
        (2, map (fun k -> Find k) key) ]
  in
  list_size (int_range 1 400) op

let print_ops ops =
  String.concat ";"
    (List.map
       (function
         | Insert (k, v) -> Printf.sprintf "I(%d,%d)" k v
         | Delete k -> Printf.sprintf "D%d" k
         | Find k -> Printf.sprintf "F%d" k)
       ops)

let prop_model =
  QCheck.Test.make ~name:"btree agrees with Map under random ops" ~count:150
    (QCheck.make ~print:print_ops gen_ops) (fun ops ->
      let t = T.create ~order:4 () in
      let model = ref IntMap.empty in
      List.for_all
        (fun op ->
          (match op with
          | Insert (k, v) ->
              T.insert t k v;
              model := IntMap.add k v !model
          | Delete k ->
              let removed = T.delete t k in
              let expected = IntMap.mem k !model in
              model := IntMap.remove k !model;
              if removed <> expected then failwith "delete result mismatch"
          | Find _ -> ());
          match op with
          | Find k -> T.find t k = IntMap.find_opt k !model
          | _ -> true)
        ops
      &&
      (T.check_invariants t;
       T.to_list t = IntMap.bindings !model
       && T.length t = IntMap.cardinal !model))

let prop_rank_model =
  QCheck.Test.make ~name:"rank/count agree with model" ~count:100
    (QCheck.make ~print:print_ops gen_ops) (fun ops ->
      let t = T.create ~order:4 () in
      let model = ref IntMap.empty in
      List.iter
        (function
          | Insert (k, v) ->
              T.insert t k v;
              model := IntMap.add k v !model
          | Delete k ->
              ignore (T.delete t k);
              model := IntMap.remove k !model
          | Find _ -> ())
        ops;
      List.for_all
        (fun b ->
          let expected = IntMap.cardinal (IntMap.filter (fun k _ -> k < b) !model) in
          T.rank t (fun k -> Int.compare k b) = expected)
        [ 0; 1; 17; 60; 121; 1000 ])

let prop_cursor_model =
  QCheck.Test.make ~name:"cursor forward+backward scan matches model" ~count:100
    (QCheck.make ~print:print_ops gen_ops) (fun ops ->
      let t = T.create ~order:4 () in
      let model = ref IntMap.empty in
      List.iter
        (function
          | Insert (k, v) ->
              T.insert t k v;
              model := IntMap.add k v !model
          | Delete k ->
              ignore (T.delete t k);
              model := IntMap.remove k !model
          | Find _ -> ())
        ops;
      let forward = T.to_list t in
      let backward =
        let c = T.seek_max t in
        let rec go acc = match T.prev c with Some e -> go (e :: acc) | None -> acc in
        go []
      in
      forward = IntMap.bindings !model && backward = forward)

let suite =
  ( "btree",
    [ Alcotest.test_case "empty tree" `Quick test_empty;
      Alcotest.test_case "insert and find" `Quick test_insert_find;
      Alcotest.test_case "upsert" `Quick test_upsert;
      Alcotest.test_case "delete" `Quick test_delete;
      Alcotest.test_case "ordered iteration" `Quick test_ordered_iteration;
      Alcotest.test_case "cursor bidirectional" `Quick test_cursor_bidirectional;
      Alcotest.test_case "peek" `Quick test_peek;
      Alcotest.test_case "rank and count" `Quick test_rank_count;
      Alcotest.test_case "count is index-only" `Quick test_count_without_data_reads;
      Alcotest.test_case "seek by probe" `Quick test_seek_probe;
      QCheck_alcotest.to_alcotest prop_model;
      QCheck_alcotest.to_alcotest prop_rank_model;
      QCheck_alcotest.to_alcotest prop_cursor_model ] )
