(* Tests for the generic XPath evaluator: value coercions, comparison
   semantics, and the core function library (XPath 1.0 §3.4, §4). *)

module Store = Mass.Store
module E = Mass.Nav.E

let doc_src =
  {xml|<inventory>
  <item sku="A1"><name>bolt</name><qty>12</qty><price>0.25</price></item>
  <item sku="B2"><name>nut</name><qty>40</qty><price>0.10</price></item>
  <item sku="C3"><name>washer  plate</name><qty>0</qty><price>1.50</price></item>
  <note>  spaced   text  </note>
</inventory>|xml}

let setup () =
  let store = Store.create () in
  let doc = Store.load_string store ~name:"inv.xml" doc_src in
  (store, doc.Store.doc_key)

let eval src =
  let store, ctx = setup () in
  (store, E.eval store ~context:ctx (Xpath.Parser.parse src))

let check_num name src expected =
  match eval src with
  | store, v ->
      ignore store;
      (match v with
      | Xpath.Eval.Num f -> Alcotest.(check (float 1e-9)) name expected f
      | _ -> Alcotest.fail (name ^ ": expected a number"))

let check_str name src expected =
  match eval src with
  | _, Xpath.Eval.Str s -> Alcotest.(check string) name expected s
  | _, _ -> Alcotest.fail (name ^ ": expected a string")

let check_bool name src expected =
  match eval src with
  | store, v -> Alcotest.(check bool) name expected (E.to_boolean store v)

let test_numbers () =
  check_num "count" "count(//item)" 3.0;
  check_num "sum" "sum(//qty)" 52.0;
  check_num "arith" "1 + 2 * 3 - 4" 3.0;
  check_num "div" "7 div 2" 3.5;
  check_num "mod" "7 mod 2" 1.0;
  check_num "neg" "-(2 + 3)" (-5.0);
  check_num "floor" "floor(2.7)" 2.0;
  check_num "ceiling" "ceiling(2.1)" 3.0;
  check_num "round up" "round(2.5)" 3.0;
  check_num "round down" "round(2.4)" 2.0;
  check_num "round negative" "round(-2.5)" (-2.0);
  check_num "number of string" "number('42.5')" 42.5;
  check_num "number coerces node" "number(//item[1]/qty)" 12.0;
  check_num "string-length" "string-length('hello')" 5.0

let test_nan_propagation () =
  let store, v = eval "number('not a number')" in
  ignore store;
  (match v with
  | Xpath.Eval.Num f -> Alcotest.(check bool) "NaN" true (Float.is_nan f)
  | _ -> Alcotest.fail "expected number");
  (* NaN compares false with everything *)
  check_bool "NaN = NaN is false" "number('x') = number('y')" false;
  check_bool "NaN < 1 is false" "number('x') < 1" false

let test_strings () =
  check_str "concat" "concat('a', 'b', 'c')" "abc";
  check_str "substring" "substring('12345', 2, 3)" "234";
  check_str "substring from" "substring('12345', 2)" "2345";
  (* spec edge cases *)
  check_str "substring rounding" "substring('12345', 1.5, 2.6)" "234";
  check_str "substring clamps" "substring('12345', 0, 3)" "12";
  check_str "substring-before" "substring-before('1999/04/01', '/')" "1999";
  check_str "substring-after" "substring-after('1999/04/01', '/')" "04/01";
  check_str "substring-before absent" "substring-before('abc', 'z')" "";
  check_str "translate" "translate('bar', 'abc', 'ABC')" "BAr";
  check_str "translate removes" "translate('--aaa--', 'abc-', 'ABC')" "AAA";
  check_str "normalize-space" "normalize-space('  a   b  ')" "a b";
  check_str "normalize-space of node" "normalize-space(//note)" "spaced text";
  check_str "string of number" "string(12)" "12";
  check_str "string of decimal" "string(1.5)" "1.5";
  check_str "string of node" "string(//item[1]/name)" "bolt"

let test_booleans () =
  check_bool "true()" "true()" true;
  check_bool "false()" "false()" false;
  check_bool "not" "not(1 = 2)" true;
  check_bool "boolean of empty nodeset" "boolean(//missing)" false;
  check_bool "boolean of nodeset" "boolean(//item)" true;
  check_bool "boolean of zero" "boolean(0)" false;
  check_bool "boolean of empty string" "boolean('')" false;
  check_bool "boolean of string" "boolean('x')" true;
  check_bool "contains" "contains('database', 'tab')" true;
  check_bool "contains empty needle" "contains('x', '')" true;
  check_bool "starts-with" "starts-with('database', 'data')" true;
  check_bool "starts-with false" "starts-with('database', 'base')" false

let test_name_functions () =
  check_str "name()" "name(//item[1])" "item";
  check_str "local-name()" "local-name(//item[1])" "item";
  check_str "name of attribute" "name(//item[1]/@sku)" "sku";
  check_str "name of empty" "name(//missing)" ""

let test_comparison_semantics () =
  (* node-set vs literal: existential *)
  check_bool "any qty = 40" "//qty = 40" true;
  check_bool "any qty = 41" "//qty = 41" false;
  (* both = and != can hold simultaneously over node-sets *)
  check_bool "exists qty = 12" "//qty = 12" true;
  check_bool "exists qty != 12" "//qty != 12" true;
  (* relational comparisons coerce to numbers *)
  check_bool "price < 1" "//item[1]/price < 1" true;
  check_bool "string numeric compare" "'10' > '9'" true;
  (* node-set vs node-set *)
  check_bool "nodeset eq nodeset" "//item[1]/qty = //qty" true;
  (* boolean coercion wins *)
  check_bool "nodeset = true()" "//missing = false()" true

let test_union () =
  let store, ctx = setup () in
  match E.eval store ~context:ctx (Xpath.Parser.parse "//name | //qty") with
  | Xpath.Eval.Nodes ns ->
      Alcotest.(check int) "union size" 6 (List.length ns);
      (* document order, no duplicates *)
      let sorted = List.sort_uniq Flex.compare ns in
      Alcotest.(check bool) "sorted unique" true (List.equal Flex.equal sorted ns)
  | _ -> Alcotest.fail "expected node-set"

let test_positional () =
  let store, ctx = setup () in
  let names src =
    match E.eval store ~context:ctx (Xpath.Parser.parse src) with
    | Xpath.Eval.Nodes ns -> List.map (Store.string_value store) ns
    | _ -> Alcotest.fail "expected node-set"
  in
  Alcotest.(check (list string)) "[1]" [ "bolt" ] (names "//item[1]/name");
  Alcotest.(check (list string)) "[last()]" [ "washer  plate" ] (names "//item[last()]/name");
  Alcotest.(check (list string)) "[position()>1]" [ "nut"; "washer  plate" ]
    (names "//item[position() > 1]/name");
  (* positional predicates on a reverse axis count in proximity order *)
  Alcotest.(check (list string)) "reverse axis position"
    [ "nut" ]
    (names "//item[3]/preceding-sibling::item[1]/name");
  Alcotest.(check (list string)) "filter expr position" [ "nut" ] (names "(//item)[2]/name")

let test_unsupported () =
  let store, ctx = setup () in
  (match E.eval store ~context:ctx (Xpath.Parser.parse "unknown-fn(1)") with
  | exception Xpath.Eval.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported");
  match E.eval store ~context:ctx (Xpath.Parser.parse "'a'[1]") with
  | exception Xpath.Eval.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported for predicate on string"

let test_number_formatting () =
  Alcotest.(check string) "integer" "12" (E.number_to_string 12.0);
  Alcotest.(check string) "negative" "-3" (E.number_to_string (-3.0));
  Alcotest.(check string) "decimal" "1.5" (E.number_to_string 1.5);
  Alcotest.(check string) "NaN" "NaN" (E.number_to_string Float.nan);
  Alcotest.(check string) "inf" "Infinity" (E.number_to_string Float.infinity);
  Alcotest.(check string) "-inf" "-Infinity" (E.number_to_string Float.neg_infinity);
  Alcotest.(check string) "zero" "0" (E.number_to_string 0.0)

(* the DOM instantiation of the evaluator must agree on pure functions *)
let test_cross_space_agreement () =
  let tree = Xml.Parser.parse doc_src in
  let dom = Baselines.Dom_engine.create tree in
  let store, ctx = setup () in
  List.iter
    (fun src ->
      let mass_v =
        E.to_string_value store (E.eval store ~context:ctx (Xpath.Parser.parse src))
      in
      match Baselines.Dom_engine.eval dom src with
      | Ok v ->
          let dom_v =
            match v with
            | Xpath.Eval.Str s -> s
            | Xpath.Eval.Num f -> E.number_to_string f
            | Xpath.Eval.Bool b -> string_of_bool b
            | Xpath.Eval.Nodes _ -> "nodes"
          in
          let mass_v = if mass_v = "true" || mass_v = "false" then mass_v else mass_v in
          Alcotest.(check string) src dom_v mass_v
      | Error e -> Alcotest.fail (src ^ ": " ^ e))
    [ "count(//item)"; "sum(//qty)"; "string(//item[2]/name)"; "normalize-space(//note)";
      "concat(name(//item[1]), '-', string(//item[1]/@sku))"; "string-length(string(//note))" ]

let suite =
  ( "eval",
    [ Alcotest.test_case "numeric functions" `Quick test_numbers;
      Alcotest.test_case "NaN propagation" `Quick test_nan_propagation;
      Alcotest.test_case "string functions" `Quick test_strings;
      Alcotest.test_case "boolean functions" `Quick test_booleans;
      Alcotest.test_case "name functions" `Quick test_name_functions;
      Alcotest.test_case "comparison semantics" `Quick test_comparison_semantics;
      Alcotest.test_case "union" `Quick test_union;
      Alcotest.test_case "positional predicates" `Quick test_positional;
      Alcotest.test_case "unsupported constructs" `Quick test_unsupported;
      Alcotest.test_case "number formatting" `Quick test_number_formatting;
      Alcotest.test_case "cross-space agreement" `Quick test_cross_space_agreement ] )
