(* Tests for MASS store snapshots: save/load roundtrips, corruption
   detection, and post-load behaviour (queries, counts, updates). *)

module Store = Mass.Store

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("vamana_test_" ^ name)

let with_file name f =
  let path = tmp name in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

let build_store () =
  let store = Store.create () in
  let d1 = Xmark.load store ~name:"auction.xml" 0.3 in
  let d2 = Store.load_string store ~name:"tiny.xml" "<r><x a='1'>t</x><!--c--><?p d?></r>" in
  (store, d1, d2)

let test_roundtrip () =
  with_file "roundtrip.snap" @@ fun path ->
  let store, d1, _ = build_store () in
  Store.save_file store path;
  let store2 = Store.load_file path in
  Alcotest.(check int) "record count" (Store.total_records store) (Store.total_records store2);
  Alcotest.(check int) "documents" 2 (List.length (Store.documents store2));
  let d1' = Option.get (Store.find_document store2 "auction.xml") in
  Alcotest.(check int) "element counter" d1.Store.element_count d1'.Store.element_count;
  Alcotest.(check int) "text counter" d1.Store.text_count d1'.Store.text_count;
  Alcotest.(check int) "attribute counter" d1.Store.attribute_count d1'.Store.attribute_count;
  (* queries agree before and after *)
  List.iter
    (fun q ->
      let run store doc =
        match Vamana.Engine.query_doc store doc q with
        | Ok r -> List.map Flex.to_string r.Vamana.Engine.keys
        | Error e -> Alcotest.fail e
      in
      Alcotest.(check (list string)) q (run store d1) (run store2 d1'))
    [ "//person/address"; "//province[text()='Vermont']/ancestor::person";
      "//watches/watch/ancestor::person" ]

let test_comments_and_pis_survive () =
  with_file "kinds.snap" @@ fun path ->
  let store, _, _ = build_store () in
  Store.save_file store path;
  let store2 = Store.load_file path in
  let d2 = Option.get (Store.find_document store2 "tiny.xml") in
  let count test = Store.count_test store2 ~scope:d2.Store.doc_key ~principal:Mass.Record.Element test in
  Alcotest.(check int) "comment" 1 (count Xpath.Ast.Comment_test);
  Alcotest.(check int) "pi" 1 (count (Xpath.Ast.Pi_test None));
  Alcotest.(check int) "attr" 1
    (Store.count_test store2 ~scope:d2.Store.doc_key ~principal:Mass.Record.Attribute
       (Xpath.Ast.Name_test "a"));
  Alcotest.(check int) "tc attr value" 1 (Store.text_value_count store2 ~scope:d2.Store.doc_key "1")

let test_updates_after_load () =
  with_file "updates.snap" @@ fun path ->
  let store, _, _ = build_store () in
  Store.save_file store path;
  let store2 = Store.load_file path in
  let d2 = Option.get (Store.find_document store2 "tiny.xml") in
  let root = Option.get (Store.root_element_key d2 store2) in
  let _ = Store.insert_element store2 ~parent:root "y" [] (Some "new") in
  Alcotest.(check int) "insert works after load" 1
    (Store.count_test store2 ~principal:Mass.Record.Element (Xpath.Ast.Name_test "y"));
  (* and a fresh document can still be loaded without key collisions *)
  let d3 = Store.load_string store2 ~name:"extra.xml" "<z/>" in
  Alcotest.(check int) "three documents" 3 (List.length (Store.documents store2));
  Alcotest.(check bool) "distinct roots" true
    (not (Flex.equal d3.Store.doc_key d2.Store.doc_key))

let test_corruption_detection () =
  with_file "corrupt.snap" @@ fun path ->
  let store, _, _ = build_store () in
  Store.save_file store path;
  let data =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let write s =
    let oc = open_out_bin path in
    output_string oc s;
    close_out oc
  in
  let expect_corrupt what s =
    write s;
    match Store.load_file path with
    | exception Store.Corrupt_snapshot _ -> ()
    | _ -> Alcotest.fail ("expected Corrupt_snapshot for " ^ what)
  in
  expect_corrupt "bad magic" ("XXXX" ^ String.sub data 4 (String.length data - 4));
  expect_corrupt "truncated" (String.sub data 0 (String.length data / 2));
  expect_corrupt "trailing garbage" (data ^ "junk");
  let flipped = Bytes.of_string data in
  (* corrupt the version field *)
  Bytes.set flipped 8 '\xFF';
  expect_corrupt "bad version" (Bytes.to_string flipped)

let test_empty_store () =
  with_file "empty.snap" @@ fun path ->
  let store = Store.create () in
  Store.save_file store path;
  let store2 = Store.load_file path in
  Alcotest.(check int) "no docs" 0 (List.length (Store.documents store2));
  Alcotest.(check int) "no records" 0 (Store.total_records store2)

let suite =
  ( "snapshot",
    [ Alcotest.test_case "roundtrip" `Quick test_roundtrip;
      Alcotest.test_case "all node kinds survive" `Quick test_comments_and_pis_survive;
      Alcotest.test_case "updates after load" `Quick test_updates_after_load;
      Alcotest.test_case "corruption detection" `Quick test_corruption_detection;
      Alcotest.test_case "empty store" `Quick test_empty_store ] )
