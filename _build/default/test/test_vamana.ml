(* Tests for the VAMANA engine: compiler, executor, cost model, optimizer.

   The load-bearing oracle: for a corpus of queries and for random
   documents, the pipelined plan executor (optimized and unoptimized)
   returns exactly the node set of the generic XPath evaluator. *)

open Vamana
module Store = Mass.Store

let auction_doc =
  {xml|<site>
  <regions><namerica>
    <item id="item0"><name>rusty bike</name><description>old</description></item>
    <item id="item1"><name>teapot</name><description>fine china</description></item>
  </namerica></regions>
  <people>
    <person id="person0">
      <name>Yung Flach</name>
      <emailaddress>Flach@auth.gr</emailaddress>
      <address><street>92 Pfisterer St</street><city>Monroe</city>
        <country>United States</country><province>Vermont</province><zipcode>12</zipcode></address>
      <watches><watch open_auction="oa108"/><watch open_auction="oa94"/></watches>
    </person>
    <person id="person1">
      <name>Ann Smith</name>
      <address><city>Boston</city><province>Texas</province></address>
      <watches><watch open_auction="oa1"/></watches>
    </person>
    <person id="person2"><name>Bob Stone</name></person>
  </people>
  <open_auctions>
    <open_auction id="oa1"><itemref item="item0"/><price>12.5</price><quantity>1</quantity></open_auction>
    <open_auction id="oa2"><itemref item="item1"/><price>3.5</price><quantity>2</quantity></open_auction>
  </open_auctions>
</site>|xml}

let setup () =
  let store = Store.create () in
  let doc = Store.load_string store ~name:"auction.xml" auction_doc in
  (store, doc)

let paper_queries =
  [ "//person/address";
    "//watches/watch/ancestor::person";
    "/descendant::name/parent::*/self::person/address";
    "//itemref/following-sibling::price/parent::*";
    "//province[text()='Vermont']/ancestor::person";
    "descendant::name/parent::*/self::person/address";
    "//name[text()='Yung Flach']/following-sibling::emailaddress" ]

let corpus =
  paper_queries
  @ [ "//person";
      "//person/name";
      "//person[address]/name";
      "//person[address/city='Monroe']";
      "//address[not(province)]";
      "//person[@id='person1']/name";
      "//watch/@open_auction";
      "//person[watches/watch]/address/city";
      "//city/preceding-sibling::street";
      "//province/preceding::emailaddress";
      "//name/following::price";
      "//item/description/..";
      "//person/node()";
      "//address/*";
      "//person[2]";
      "//person[position() > 1]/name";
      "//person[last()]";
      "//open_auction[price > 4]/itemref";
      "//open_auction[quantity = 1 or price < 4]";
      "//person[name = 'Bob Stone' and not(address)]";
      "//person/descendant-or-self::*/name";
      "//address/ancestor-or-self::person";
      "/site/people/person/address/province";
      "//text()";
      "//comment()";
      "//person[count(watches/watch) = 2]/name" ]

let run_nav store ~context src =
  match Xpath.Parser.parse src with
  | Xpath.Ast.Path p -> Nav.E.eval_path store ~context p
  | _ -> Alcotest.fail ("not a path: " ^ src)

let keys_to_string keys = String.concat "," (List.map Flex.to_string keys)

let check_engine_agrees ~optimize store doc src =
  let expected = run_nav store ~context:doc.Store.doc_key src in
  match Engine.query ~optimize store ~context:doc.Store.doc_key src with
  | Error msg -> Alcotest.fail (Printf.sprintf "%s: %s" src msg)
  | Ok r ->
      Alcotest.(check string)
        (Printf.sprintf "%s (optimize=%b)" src optimize)
        (keys_to_string expected) (keys_to_string r.Engine.keys)

let test_corpus_vqp () =
  let store, doc = setup () in
  List.iter (check_engine_agrees ~optimize:false store doc) corpus

let test_corpus_vqp_opt () =
  let store, doc = setup () in
  List.iter (check_engine_agrees ~optimize:true store doc) corpus

let test_results_nonempty () =
  (* guard against vacuous agreement: the paper queries must select nodes *)
  let store, doc = setup () in
  List.iter
    (fun src ->
      match Engine.query store ~context:doc.Store.doc_key src with
      | Ok r ->
          Alcotest.(check bool) (src ^ " selects nodes") true (List.length r.Engine.keys > 0)
      | Error msg -> Alcotest.fail msg)
    paper_queries

(* ---- paper running examples ---- *)

let chain_kinds plan =
  List.map
    (fun (op : Plan.op) ->
      match op.Plan.kind with
      | Plan.Root -> "R"
      | Plan.Step (axis, test) ->
          Printf.sprintf "%s::%s" (Xpath.Ast.axis_name axis) (Xpath.Ast.node_test_to_string test)
      | Plan.Value_step (v, _) -> Printf.sprintf "value::'%s'" v
      | Plan.Step_generic s -> "generic::" ^ Xpath.Ast.node_test_to_string s.Xpath.Ast.test)
    (Plan.context_chain plan)

let test_cleanup_fig5 () =
  (* descendant::name/parent::*/self::person => descendant::name/parent::person *)
  let plan =
    match Compile.compile_query "descendant::name/parent::*/self::person/address" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let cleaned = Rewrite.apply_cleanup plan in
  Alcotest.(check (list string)) "merged self step"
    [ "R"; "child::address"; "parent::person"; "descendant::name" ]
    (chain_kinds cleaned)

let test_optimize_q1_fig8_fig11 () =
  (* //person/address ends as descendant::address[parent::person] *)
  let store, doc = setup () in
  let plan =
    match Compile.compile_query "//person/address" with Ok p -> p | Error e -> Alcotest.fail e
  in
  let o = Optimizer.optimize store ~scope:(Some doc.Store.doc_key) plan in
  Alcotest.(check (list string)) "pushed-down plan" [ "R"; "descendant::address" ]
    (chain_kinds o.Optimizer.plan);
  let final_step = Option.get o.Optimizer.plan.Plan.context in
  Alcotest.(check bool) "has parent::person exist predicate" true
    (List.exists
       (function
         | Plan.Exists sub -> (
             match sub.Plan.kind with
             | Plan.Step (Xpath.Ast.Parent, Xpath.Ast.Name_test "person") -> true
             | _ -> false)
         | _ -> false)
       final_step.Plan.predicates);
  Alcotest.(check bool) "applied at least one rule" true (List.length o.Optimizer.trace >= 1)

let test_optimize_q2_fig9 () =
  (* //name[text()='Yung Flach'] uses the value index after optimization *)
  let store, doc = setup () in
  let plan =
    match Compile.compile_query "//name[text()='Yung Flach']/following-sibling::emailaddress" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let o = Optimizer.optimize store ~scope:(Some doc.Store.doc_key) plan in
  Alcotest.(check (list string)) "value-index plan"
    [ "R"; "following-sibling::emailaddress"; "parent::name"; "value::'Yung Flach'" ]
    (chain_kinds o.Optimizer.plan)

let test_optimize_q2_dup_elim () =
  (* //watches/watch/ancestor::person => //watches[watch]/ancestor::person *)
  let store, doc = setup () in
  let plan =
    match Compile.compile_query "//watches/watch/ancestor::person" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let o = Optimizer.optimize store ~scope:(Some doc.Store.doc_key) plan in
  Alcotest.(check (list string)) "dup-elim plan" [ "R"; "ancestor::person"; "descendant::watches" ]
    (chain_kinds o.Optimizer.plan);
  (* the raw (non-deduplicated) stream of the optimized plan must be
     duplicate-free while the default plan's is not *)
  let raw_default = Exec.run_raw store ~context:doc.Store.doc_key plan in
  let raw_opt = Exec.run_raw store ~context:doc.Store.doc_key o.Optimizer.plan in
  Alcotest.(check bool) "default emits duplicates" true
    (List.length raw_default > List.length (List.sort_uniq Flex.compare raw_default));
  Alcotest.(check int) "optimized emits no duplicates"
    (List.length (List.sort_uniq Flex.compare raw_opt))
    (List.length raw_opt)

(* ---- cost model ---- *)

let test_cost_q1_annotations () =
  let store, doc = setup () in
  let plan =
    match Compile.compile_query "//person/address" with Ok p -> p | Error e -> Alcotest.fail e
  in
  let plan = Rewrite.apply_cleanup plan in
  let costed = Cost.estimate store ~scope:(Some doc.Store.doc_key) plan in
  (* chain: R / child::address / descendant::person *)
  match Plan.context_chain plan with
  | [ root; address; person ] ->
      let s_person = Hashtbl.find costed person.Plan.id in
      let s_address = Hashtbl.find costed address.Plan.id in
      let s_root = Hashtbl.find costed root.Plan.id in
      Alcotest.(check int) "person COUNT" 3 s_person.Cost.count;
      Alcotest.(check int) "person IN = COUNT (leaf)" 3 s_person.Cost.input;
      Alcotest.(check int) "person OUT" 3 s_person.Cost.output;
      Alcotest.(check int) "address COUNT" 2 s_address.Cost.count;
      Alcotest.(check int) "address IN" 3 s_address.Cost.input;
      Alcotest.(check int) "address OUT = min(COUNT)" 2 s_address.Cost.output;
      Alcotest.(check int) "root passes through" 2 s_root.Cost.output;
      Alcotest.(check bool) "address is most selective" true
        (s_address.Cost.selectivity > s_person.Cost.selectivity)
  | _ -> Alcotest.fail "unexpected chain shape"

let test_cost_table_one () =
  List.iter
    (fun (axis, count, input, expected) ->
      let open Xpath.Ast in
      let plan =
        Plan.mk
          ~context:(Plan.mk (Plan.Step (Self, Node_test)))
          (Plan.Step (axis, Wildcard))
      in
      ignore plan;
      (* direct check through the exposed estimator would need a store;
         validate the table through a tiny handwritten store instead *)
      ignore (count, input, expected))
    [];
  (* Table I via a store: downward OUT=COUNT, upward OUT=IN *)
  let store, doc = setup () in
  let q src =
    match Compile.compile_query src with Ok p -> Rewrite.apply_cleanup p | Error e -> Alcotest.fail e
  in
  let costed_out src =
    let plan = q src in
    let costed = Cost.estimate store ~scope:(Some doc.Store.doc_key) plan in
    (Hashtbl.find costed (Option.get plan.Plan.context).Plan.id).Cost.output
  in
  (* parent axis: OUT = IN (all 5 names flow through), paper Fig. 6 *)
  Alcotest.(check int) "parent::person OUT = IN" 5 (costed_out "//name/parent::person");
  (* child axis: OUT = COUNT *)
  Alcotest.(check int) "child::address OUT = COUNT" 2 (costed_out "//person/address")

let test_cost_is_upper_bound () =
  let store, doc = setup () in
  List.iter
    (fun src ->
      match Compile.compile_query src with
      | Error e -> Alcotest.fail e
      | Ok plan ->
          let plan = Rewrite.apply_cleanup plan in
          let costed = Cost.estimate store ~scope:(Some doc.Store.doc_key) plan in
          let est = (Hashtbl.find costed plan.Plan.id).Cost.output in
          let actual = List.length (Exec.run_raw store ~context:doc.Store.doc_key plan) in
          Alcotest.(check bool)
            (Printf.sprintf "%s: est %d >= actual %d" src est actual)
            true (est >= actual))
    paper_queries

let test_optimizer_monotone_trace () =
  let store, doc = setup () in
  List.iter
    (fun src ->
      match Compile.compile_query src with
      | Error e -> Alcotest.fail e
      | Ok plan ->
          let o = Optimizer.optimize store ~scope:(Some doc.Store.doc_key) plan in
          List.iter
            (fun (t : Optimizer.trace_entry) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: %s %d -> %d" src t.Optimizer.rule t.Optimizer.cost_before
                   t.Optimizer.cost_after)
                true
                (t.Optimizer.cost_after <= t.Optimizer.cost_before))
            o.Optimizer.trace)
    corpus

(* ---- engine facade ---- *)

let test_engine_explain () =
  let store, doc = setup () in
  match Engine.explain store doc "//person/address" with
  | Ok s ->
      Alcotest.(check bool) "mentions default plan" true
        (String.length s > 0 && String.sub s 0 7 = "Default");
      let contains needle hay =
        let n = String.length needle and h = String.length hay in
        let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "mentions a rewrite" true (contains "applied" s);
      Alcotest.(check bool) "shows counts" true (contains "COUNT=" s)
  | Error e -> Alcotest.fail e

let test_engine_eval () =
  let store, doc = setup () in
  (match Engine.eval store ~context:doc.Store.doc_key "count(//person)" with
  | Ok (Xpath.Eval.Num f) -> Alcotest.(check (float 0.0)) "count" 3.0 f
  | Ok _ -> Alcotest.fail "expected a number"
  | Error e -> Alcotest.fail e);
  match Engine.eval store ~context:doc.Store.doc_key "string(//person[1]/name)" with
  | Ok (Xpath.Eval.Str s) -> Alcotest.(check string) "string" "Yung Flach" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.fail e

let test_query_store_multidoc () =
  let store = Store.create () in
  let _ = Store.load_string store ~name:"a.xml" "<r><person><name>A</name></person></r>" in
  let _ = Store.load_string store ~name:"b.xml" "<r><person><name>B</name></person><person><name>C</name></person></r>" in
  match Engine.query_store store "//person/name" with
  | Ok results ->
      let names =
        List.concat_map
          (fun ((_ : Store.doc), (r : Engine.result)) ->
            List.map (Store.string_value store) r.Engine.keys)
          results
      in
      Alcotest.(check (list string)) "all documents queried" [ "A"; "B"; "C" ] names
  | Error e -> Alcotest.fail e

let test_engine_timings_and_io () =
  let store, doc = setup () in
  match Engine.query store ~context:doc.Store.doc_key "//person/address" with
  | Ok r ->
      Alcotest.(check bool) "io recorded" true (r.Engine.io.Storage.Stats.logical_reads > 0);
      Alcotest.(check bool) "optimizer ran" true (r.Engine.optimizer <> None);
      Alcotest.(check bool) "times nonnegative" true
        (r.Engine.compile_time >= 0.0 && r.Engine.optimize_time >= 0.0
       && r.Engine.execute_time >= 0.0)
  | Error e -> Alcotest.fail e

(* ---- property: VQP & VQP-OPT agree with the evaluator on random docs ---- *)

let gen_tree =
  let open QCheck.Gen in
  let name = oneofl [ "person"; "name"; "address"; "city"; "watch"; "a" ] in
  let rec spec depth =
    if depth = 0 then
      oneof [ map (fun s -> Xml.Tree.D s) (oneofl [ "Monroe"; "x"; "12" ]) ]
    else
      let* n = name in
      let* nc = int_range 0 3 in
      let* children = list_size (return nc) (spec (depth - 1)) in
      let* with_attr = bool in
      let attrs = if with_attr then [ ("id", "i") ] else [] in
      return (Xml.Tree.E (n, attrs, children))
  in
  let* root = spec 3 in
  match root with
  | Xml.Tree.E _ -> return (Xml.Tree.document [ root ])
  | _ -> return (Xml.Tree.document [ Xml.Tree.E ("r", [], [ root ]) ])

let random_queries =
  [ "//person/address"; "//name"; "//person[name]"; "//city/ancestor::person";
    "//address/city"; "//person//city"; "//city[text()='Monroe']/ancestor::person";
    "//watch/parent::*"; "//name/following-sibling::address"; "//person[@id='i']";
    "//address/preceding-sibling::name"; "//person[2]"; "//city/.." ]

let prop_engine_matches_evaluator =
  QCheck.Test.make ~name:"VQP and VQP-OPT match the generic evaluator" ~count:40
    (QCheck.make gen_tree) (fun tree ->
      let store = Store.create () in
      let doc = Store.load store ~name:"gen" tree in
      List.for_all
        (fun src ->
          let expected = run_nav store ~context:doc.Store.doc_key src in
          let run opt =
            match Engine.query ~optimize:opt store ~context:doc.Store.doc_key src with
            | Ok r -> r.Engine.keys
            | Error e -> failwith e
          in
          let vqp = run false and vqp_opt = run true in
          let same = List.equal Flex.equal in
          if not (same expected vqp && same expected vqp_opt) then begin
            Printf.eprintf "DISAGREE %s\n  eval: %s\n  vqp:  %s\n  opt:  %s\n" src
              (keys_to_string expected) (keys_to_string vqp) (keys_to_string vqp_opt);
            false
          end
          else true)
        random_queries)


let test_nonstandard_positional () =
  (* position() in a shape outside the algebra's Position operator must
     still evaluate with true positional semantics (via Step_generic) *)
  let store, doc = setup () in
  let expected = run_nav store ~context:doc.Store.doc_key "//person[position() mod 2 = 1]/name" in
  match Engine.query store ~context:doc.Store.doc_key "//person[position() mod 2 = 1]/name" with
  | Ok r ->
      Alcotest.(check string) "odd-position persons" (keys_to_string expected)
        (keys_to_string r.Engine.keys);
      Alcotest.(check int) "two odd positions" 2 (List.length r.Engine.keys)
  | Error e -> Alcotest.fail e

let suite =
  ( "vamana",
    [ Alcotest.test_case "corpus: VQP matches evaluator" `Quick test_corpus_vqp;
      Alcotest.test_case "corpus: VQP-OPT matches evaluator" `Quick test_corpus_vqp_opt;
      Alcotest.test_case "paper queries select nodes" `Quick test_results_nonempty;
      Alcotest.test_case "clean-up merges self steps (Fig 5)" `Quick test_cleanup_fig5;
      Alcotest.test_case "Q1 optimization (Figs 8+11)" `Quick test_optimize_q1_fig8_fig11;
      Alcotest.test_case "Q2 value-index rewrite (Fig 9)" `Quick test_optimize_q2_fig9;
      Alcotest.test_case "Q2 duplicate elimination" `Quick test_optimize_q2_dup_elim;
      Alcotest.test_case "cost annotations (Fig 6)" `Quick test_cost_q1_annotations;
      Alcotest.test_case "cost Table I" `Quick test_cost_table_one;
      Alcotest.test_case "estimates are upper bounds" `Quick test_cost_is_upper_bound;
      Alcotest.test_case "optimizer cost is monotone" `Quick test_optimizer_monotone_trace;
      Alcotest.test_case "explain output" `Quick test_engine_explain;
      Alcotest.test_case "generic eval facade" `Quick test_engine_eval;
      Alcotest.test_case "timings and io" `Quick test_engine_timings_and_io;
      Alcotest.test_case "query_store over multiple documents" `Quick test_query_store_multidoc;
      Alcotest.test_case "non-standard positional predicates" `Quick test_nonstandard_positional;
      QCheck_alcotest.to_alcotest prop_engine_matches_evaluator ] )
