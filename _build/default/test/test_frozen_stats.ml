(* Tests for the frozen-dictionary statistics source: exact at capture,
   stale after updates, while the live source stays exact (the paper's
   update-robustness argument, quantified). *)

module Store = Mass.Store
open Vamana

let setup () =
  let store = Store.create () in
  let doc =
    Store.load_string store ~name:"t.xml"
      "<site><people><person><name>A</name></person><person><name>B</name></person></people></site>"
  in
  (store, doc)

let estimate_out stats ~scope q =
  match Compile.compile_query q with
  | Error e -> Alcotest.fail e
  | Ok plan ->
      let plan = Rewrite.apply_cleanup plan in
      let costed = Cost.estimate_with stats ~scope plan in
      (Hashtbl.find costed plan.Plan.id).Cost.output

let test_exact_at_capture () =
  let store, doc = setup () in
  let frozen = Frozen_stats.source (Frozen_stats.capture store) in
  let live = Cost.live_statistics store in
  let scope = Some doc.Store.doc_key in
  List.iter
    (fun q ->
      Alcotest.(check int) (q ^ " agrees at capture")
        (estimate_out live ~scope q) (estimate_out frozen ~scope q))
    [ "//person"; "//name"; "//name[text()='A']" ]

let test_stale_after_updates () =
  let store, doc = setup () in
  let frozen = Frozen_stats.source (Frozen_stats.capture store) in
  let live = Cost.live_statistics store in
  let scope = Some doc.Store.doc_key in
  let people =
    match Engine.query_doc store doc "/site/people" with
    | Ok r -> List.hd r.Engine.keys
    | Error e -> Alcotest.fail e
  in
  for i = 1 to 10 do
    ignore (Store.insert_element store ~parent:people "person" [] (Some (Printf.sprintf "p%d" i)))
  done;
  Alcotest.(check int) "frozen still reports 2" 2 (estimate_out frozen ~scope "//person");
  Alcotest.(check int) "live reports 12" 12 (estimate_out live ~scope "//person");
  let actual =
    match Engine.query_doc store doc "//person" with
    | Ok r -> List.length r.Engine.keys
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check int) "live estimate equals actual" actual (estimate_out live ~scope "//person")

let test_optimizer_with_frozen_stats () =
  (* the optimizer still terminates and produces a correct (if possibly
     slower) plan when steered by stale statistics *)
  let store, doc = setup () in
  let frozen = Frozen_stats.capture store in
  let people =
    match Engine.query_doc store doc "/site/people" with
    | Ok r -> List.hd r.Engine.keys
    | Error e -> Alcotest.fail e
  in
  for i = 1 to 5 do
    ignore (Store.insert_element store ~parent:people "person" [] (Some (Printf.sprintf "x%d" i)))
  done;
  match Compile.compile_query "//person[text()='x3']" with
  | Error e -> Alcotest.fail e
  | Ok plan ->
      let o =
        Optimizer.optimize ~stats:(Frozen_stats.source frozen) store
          ~scope:(Some doc.Store.doc_key) plan
      in
      let keys = Exec.run store ~context:doc.Store.doc_key o.Optimizer.plan in
      Alcotest.(check int) "stale-planned query still correct" 1 (List.length keys)

let test_bookkeeping () =
  let store, _ = setup () in
  let f = Frozen_stats.capture store in
  Alcotest.(check int) "no updates recorded" 0 (Frozen_stats.update_count f);
  let f = Frozen_stats.age f ~updates:7 in
  Alcotest.(check int) "updates recorded" 7 (Frozen_stats.update_count f);
  Alcotest.(check bool) "names counted" true (Frozen_stats.distinct_names f > 0);
  Alcotest.(check bool) "values counted" true (Frozen_stats.distinct_values f > 0)

let suite =
  ( "frozen_stats",
    [ Alcotest.test_case "exact at capture" `Quick test_exact_at_capture;
      Alcotest.test_case "stale after updates" `Quick test_stale_after_updates;
      Alcotest.test_case "optimizer with frozen stats" `Quick test_optimizer_with_frozen_stats;
      Alcotest.test_case "bookkeeping" `Quick test_bookkeeping ] )
