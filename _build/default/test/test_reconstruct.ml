(* Tests for subtree reconstruction (Store.to_tree / to_xml) and store
   integrity validation. *)

module Store = Mass.Store

let src =
  {xml|<site><person id="p1"><name>Ann</name><!--note--><?pi data?><address><city>Boston</city></address></person><person id="p2"/></site>|xml}

let setup () =
  let store = Store.create () in
  let doc = Store.load_string store ~name:"t.xml" src in
  (store, doc)

let find store doc q =
  match Vamana.Engine.query_doc store doc q with
  | Ok r -> r.Vamana.Engine.keys
  | Error e -> Alcotest.fail e

let test_roundtrip_document () =
  let store, doc = setup () in
  match Store.to_tree store doc.Store.doc_key with
  | Some tree ->
      let reparsed = Xml.Parser.parse src in
      Alcotest.(check bool) "document spec equal" true
        (Xml.Tree.element_spec tree = Xml.Tree.element_spec reparsed)
  | None -> Alcotest.fail "to_tree returned None for document"

let test_element_subtree () =
  let store, doc = setup () in
  let person = List.hd (find store doc "//person[@id='p1']") in
  match Store.to_xml store person with
  | Some xml ->
      Alcotest.(check string) "subtree markup"
        "<person id=\"p1\"><name>Ann</name><!--note--><?pi data?><address><city>Boston</city></address></person>"
        xml
  | None -> Alcotest.fail "to_xml returned None"

let test_empty_element () =
  let store, doc = setup () in
  let p2 = List.hd (find store doc "//person[@id='p2']") in
  Alcotest.(check (option string)) "self-closing" (Some "<person id=\"p2\"/>")
    (Store.to_xml store p2)

let test_leaf_kinds () =
  let store, doc = setup () in
  let text = List.hd (find store doc "//name/text()") in
  Alcotest.(check (option string)) "text value" (Some "Ann") (Store.to_xml store text);
  let attr = List.hd (find store doc "//person[@id='p1']/@id") in
  Alcotest.(check (option string)) "attr value" (Some "p1") (Store.to_xml store attr)

let test_unknown_key () =
  let store, _ = setup () in
  Alcotest.(check (option string)) "unknown key" None
    (Store.to_xml store (Flex.of_components [ "zz"; "zz" ]))

let test_validate_clean_stores () =
  let store, _ = setup () in
  Store.validate store;
  (* still valid after updates and a second document *)
  let d2 = Store.load_string store ~name:"u.xml" "<r><a/></r>" in
  let root = Option.get (Store.root_element_key d2 store) in
  let k = Store.insert_element store ~parent:root "b" [ ("x", "1") ] (Some "v") in
  Store.validate store;
  ignore (Store.delete_subtree store k);
  Store.validate store;
  Store.remove_document store d2;
  Store.validate store

let test_validate_after_xmark_and_snapshot () =
  let store = Store.create () in
  let _ = Xmark.load store 0.3 in
  Store.validate store;
  let path = Filename.temp_file "vamana_validate" ".snap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Store.save_file store path;
      let store2 = Store.load_file path in
      Store.validate store2)

(* reconstruction roundtrips on random documents *)
let prop_reconstruct_roundtrip =
  QCheck.Test.make ~name:"to_tree inverts load" ~count:60 (QCheck.make Test_vamana.gen_tree)
    (fun tree ->
      let store = Store.create () in
      let doc = Store.load store ~name:"gen" tree in
      match Store.to_tree store doc.Store.doc_key with
      | Some rebuilt -> Xml.Tree.element_spec rebuilt = Xml.Tree.element_spec tree
      | None -> false)

let suite =
  ( "reconstruct",
    [ Alcotest.test_case "document roundtrip" `Quick test_roundtrip_document;
      Alcotest.test_case "element subtree" `Quick test_element_subtree;
      Alcotest.test_case "empty element" `Quick test_empty_element;
      Alcotest.test_case "leaf kinds" `Quick test_leaf_kinds;
      Alcotest.test_case "unknown key" `Quick test_unknown_key;
      Alcotest.test_case "validate clean stores" `Quick test_validate_clean_stores;
      Alcotest.test_case "validate xmark and snapshot" `Quick test_validate_after_xmark_and_snapshot;
      QCheck_alcotest.to_alcotest prop_reconstruct_roundtrip ] )
