(* Cross-engine agreement: VAMANA (default and optimized plans), the DOM
   traversal engine, the sequential-scan engine, and the structural-join
   engine must return the same node sets on their common query surface. *)

module Store = Mass.Store
open Baselines

let auction_doc = Test_vamana.auction_doc

let setup () =
  let store = Store.create () in
  let tree = Xml.Parser.parse auction_doc in
  let doc = Store.load store ~name:"auction.xml" tree in
  (store, tree, doc)

(* queries every engine supports (no positional predicates; join engine
   additionally lacks sibling/following/preceding axes) *)
let common_queries =
  [ "//person/address";
    "//watches/watch/ancestor::person";
    "/descendant::name/parent::*/self::person/address";
    "//province[text()='Vermont']/ancestor::person";
    "//person";
    "//person[address]/name";
    "//person[address/city='Monroe']";
    "//person[@id='person1']/name";
    "//watch/@open_auction";
    "//item/description/..";
    "//address/*";
    "//person[name = 'Bob Stone' and not(address)]";
    "/site/people/person/address/province";
    "//address/ancestor-or-self::person";
    "//text()" ]

(* queries with sibling/ordering axes: all engines except the join engine *)
let sibling_queries =
  [ "//itemref/following-sibling::price/parent::*";
    "//name[text()='Yung Flach']/following-sibling::emailaddress";
    "//city/preceding-sibling::street";
    "//province/preceding::emailaddress";
    "//name/following::price" ]

let vamana_ranks ~optimize store doc src =
  match Vamana.Engine.query ~optimize store ~context:doc.Store.doc_key src with
  | Ok r -> List.map (Store.document_rank store) r.Vamana.Engine.keys
  | Error e -> Alcotest.fail (src ^ ": vamana: " ^ e)

let ranks_to_string rs = String.concat "," (List.map string_of_int rs)

let test_all_engines_agree () =
  let store, tree, doc = setup () in
  let dom = Dom_engine.create tree in
  let scan = Scan_engine.create store doc in
  let join = Join_engine.create store doc in
  List.iter
    (fun src ->
      let expected = vamana_ranks ~optimize:false store doc src in
      let check name = function
        | Ok ranks ->
            Alcotest.(check string)
              (Printf.sprintf "%s (%s)" src name)
              (ranks_to_string expected) (ranks_to_string ranks)
        | Error e -> Alcotest.fail (Printf.sprintf "%s (%s): %s" src name e)
      in
      check "vamana-opt" (Ok (vamana_ranks ~optimize:true store doc src));
      check "dom" (Dom_engine.query_ranks dom src);
      check "scan" (Scan_engine.query_ranks scan src);
      check "join" (Join_engine.query_ranks join src))
    common_queries

let test_sibling_queries () =
  let store, tree, doc = setup () in
  let dom = Dom_engine.create tree in
  let scan = Scan_engine.create store doc in
  let join = Join_engine.create store doc in
  List.iter
    (fun src ->
      let expected = vamana_ranks ~optimize:true store doc src in
      (match Dom_engine.query_ranks dom src with
      | Ok ranks ->
          Alcotest.(check string) (src ^ " (dom)") (ranks_to_string expected)
            (ranks_to_string ranks)
      | Error e -> Alcotest.fail (src ^ " dom: " ^ e));
      (match Scan_engine.query_ranks scan src with
      | Ok ranks ->
          Alcotest.(check string) (src ^ " (scan)") (ranks_to_string expected)
            (ranks_to_string ranks)
      | Error e -> Alcotest.fail (src ^ " scan: " ^ e));
      (* the paper: eXist fails on these axes *)
      match Join_engine.query_ranks join src with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (src ^ ": join engine should reject sibling/ordering axes"))
    sibling_queries

let test_dom_budget () =
  let tree = Xml.Parser.parse "<r><a/><b/><c/></r>" in
  match Dom_engine.create ~node_budget:3 tree with
  | exception Dom_engine.Document_too_large { nodes; budget } ->
      Alcotest.(check bool) "reports sizes" true (nodes > budget)
  | _ -> Alcotest.fail "expected Document_too_large"

let test_join_cap () =
  let store, _, doc = setup () in
  match Join_engine.create ~record_cap:10 store doc with
  | exception Join_engine.Document_too_large { records; cap } ->
      Alcotest.(check bool) "reports sizes" true (records > cap)
  | _ -> Alcotest.fail "expected Document_too_large"

let test_positional_rejection () =
  let store, _, doc = setup () in
  let scan = Scan_engine.create store doc in
  let join = Join_engine.create store doc in
  List.iter
    (fun src ->
      (match Scan_engine.query scan src with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (src ^ ": scan engine should reject positional predicates"));
      match Join_engine.query join src with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (src ^ ": join engine should reject positional predicates"))
    [ "//person[2]"; "//person[position() > 1]"; "//person[last()]" ]

let test_dom_full_semantics () =
  (* the DOM engine supports what the index engines specialize away *)
  let _, tree, _ = setup () in
  let dom = Dom_engine.create tree in
  (match Dom_engine.query_ranks dom "//person[2]/name" with
  | Ok [ _ ] -> ()
  | Ok other -> Alcotest.fail (Printf.sprintf "expected 1 result, got %d" (List.length other))
  | Error e -> Alcotest.fail e);
  match Dom_engine.eval dom "count(//person)" with
  | Ok (Xpath.Eval.Num f) -> Alcotest.(check (float 0.)) "count" 3.0 f
  | Ok _ | Error _ -> Alcotest.fail "count failed"

(* random-document cross-engine property *)
let prop_cross_engine =
  QCheck.Test.make ~name:"engines agree on random documents" ~count:30
    (QCheck.make Test_vamana.gen_tree) (fun tree ->
      let store = Store.create () in
      let doc = Store.load store ~name:"gen" tree in
      (* rebuild the DOM from the same spec to keep ids aligned *)
      let dom = Dom_engine.create tree in
      let scan = Scan_engine.create store doc in
      let join = Join_engine.create store doc in
      let queries =
        [ "//person/address"; "//name"; "//person[name]"; "//city/ancestor::person";
          "//person//city"; "//city[text()='Monroe']/ancestor::person"; "//person[@id='i']";
          "//address/city/.." ]
      in
      List.for_all
        (fun src ->
          let expected = vamana_ranks ~optimize:true store doc src in
          let ok name = function
            | Ok ranks ->
                ranks = expected
                ||
                (Printf.eprintf "DISAGREE %s (%s): expected %s got %s\n" src name
                   (ranks_to_string expected) (ranks_to_string ranks);
                 false)
            | Error e ->
                Printf.eprintf "ERROR %s (%s): %s\n" src name e;
                false
          in
          ok "dom" (Dom_engine.query_ranks dom src)
          && ok "scan" (Scan_engine.query_ranks scan src)
          && ok "join" (Join_engine.query_ranks join src)
          && ok "vqp" (Ok (vamana_ranks ~optimize:false store doc src)))
        queries)

let suite =
  ( "baselines",
    [ Alcotest.test_case "all engines agree (common surface)" `Quick test_all_engines_agree;
      Alcotest.test_case "sibling axes: join engine rejects" `Quick test_sibling_queries;
      Alcotest.test_case "dom node budget" `Quick test_dom_budget;
      Alcotest.test_case "join record cap" `Quick test_join_cap;
      Alcotest.test_case "positional rejection" `Quick test_positional_rejection;
      Alcotest.test_case "dom full semantics" `Quick test_dom_full_semantics;
      QCheck_alcotest.to_alcotest prop_cross_engine ] )
