(* End-to-end integration: the paper's benchmark queries on a generated
   XMark document, all engines compared, union queries, and the full
   pipeline (generate → serialize → parse → load → query → reconstruct). *)

module Store = Mass.Store

let megabytes = 0.5

let setup () =
  let store = Store.create () in
  let tree = Xmark.generate megabytes in
  let doc = Store.load store ~name:"auction.xml" tree in
  (store, tree, doc)

let paper_queries =
  [ "//person/address";
    "//watches/watch/ancestor::person";
    "/descendant::name/parent::*/self::person/address";
    "//itemref/following-sibling::price/parent::*";
    "//province[text()='Vermont']/ancestor::person" ]

let test_cross_engine_on_xmark () =
  let store, tree, doc = setup () in
  let dom = Baselines.Dom_engine.create tree in
  let scan = Baselines.Scan_engine.create store doc in
  let join = Baselines.Join_engine.create store doc in
  List.iter
    (fun q ->
      let vamana =
        match Vamana.Engine.query_doc store doc q with
        | Ok r -> List.map (Store.document_rank store) r.Vamana.Engine.keys
        | Error e -> Alcotest.fail (q ^ ": " ^ e)
      in
      Alcotest.(check bool) (q ^ " selects nodes") true (vamana <> []);
      (match Baselines.Dom_engine.query_ranks dom q with
      | Ok ranks -> Alcotest.(check (list int)) (q ^ " dom") vamana ranks
      | Error e -> Alcotest.fail (q ^ " dom: " ^ e));
      (match Baselines.Scan_engine.query_ranks scan q with
      | Ok ranks -> Alcotest.(check (list int)) (q ^ " scan") vamana ranks
      | Error e -> Alcotest.fail (q ^ " scan: " ^ e));
      match Baselines.Join_engine.query_ranks join q with
      | Ok ranks -> Alcotest.(check (list int)) (q ^ " join") vamana ranks
      | Error _ -> () (* sibling axes unsupported, per the paper *))
    paper_queries

let test_union_queries () =
  let store, _, doc = setup () in
  let run q =
    match Vamana.Engine.query_doc store doc q with
    | Ok r -> r.Vamana.Engine.keys
    | Error e -> Alcotest.fail (q ^ ": " ^ e)
  in
  let a = run "//itemref" and b = run "//price" in
  let u = run "//itemref | //price" in
  Alcotest.(check int) "union cardinality" (List.length a + List.length b) (List.length u);
  let merged = List.sort_uniq Flex.compare (a @ b) in
  Alcotest.(check bool) "union is the merged set" true (List.equal Flex.equal merged u);
  (* unions agree with the generic evaluator *)
  (match Vamana.Engine.eval store ~context:doc.Store.doc_key "//itemref | //price" with
  | Ok (Xpath.Eval.Nodes ns) -> Alcotest.(check bool) "matches evaluator" true (List.equal Flex.equal ns u)
  | Ok _ | Error _ -> Alcotest.fail "evaluator union failed");
  (* three-way unions and optimization both work *)
  let t = run "//city | //province | //zipcode" in
  Alcotest.(check bool) "three-way union" true (List.length t > 0);
  match Vamana.Engine.query_doc ~optimize:false store doc "//itemref | //price" with
  | Ok r -> Alcotest.(check bool) "unoptimized union agrees" true (List.equal Flex.equal u r.Vamana.Engine.keys)
  | Error e -> Alcotest.fail e

let test_full_pipeline_roundtrip () =
  (* generate → serialize → parse → load → query → reconstruct → parse *)
  let source = Xmark.generate_string 0.1 in
  let store = Store.create () in
  let doc = Store.load store ~name:"roundtrip.xml" (Xml.Parser.parse source) in
  let person =
    match Vamana.Engine.query_doc store doc "//person[@id='person0']" with
    | Ok r -> List.hd r.Vamana.Engine.keys
    | Error e -> Alcotest.fail e
  in
  match Store.to_xml store person with
  | Some xml ->
      let reparsed = Xml.Parser.parse xml in
      Alcotest.(check string) "reconstructed person parses back" "person"
        (Xml.Tree.name (Xml.Tree.root_element reparsed));
      Alcotest.(check bool) "contains Yung Flach" true
        (Xml.Tree.string_value (Xml.Tree.root_element reparsed)
         |> fun s ->
         let rec find i =
           i + 10 <= String.length s && (String.sub s i 10 = "Yung Flach" || find (i + 1))
         in
         find 0)
  | None -> Alcotest.fail "reconstruction failed"

let test_snapshot_pipeline () =
  let store, _, doc = setup () in
  let path = Filename.temp_file "vamana_integration" ".snap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Store.save_file store path;
      let store2 = Store.load_file path in
      let doc2 = Option.get (Store.find_document store2 "auction.xml") in
      List.iter
        (fun q ->
          let run s d =
            match Vamana.Engine.query_doc s d q with
            | Ok r -> List.map Flex.to_string r.Vamana.Engine.keys
            | Error e -> Alcotest.fail e
          in
          Alcotest.(check (list string)) (q ^ " after snapshot") (run store doc) (run store2 doc2))
        paper_queries;
      ignore (Store.validate store2))

let test_xquery_on_xmark () =
  let store, _, doc = setup () in
  let out =
    Xquery.run_to_xml store ~context:doc.Store.doc_key
      "for $p in //person where $p/address/province = 'Vermont' return <v>{$p/name/text()}</v>"
  in
  Alcotest.(check bool) "Yung Flach reported" true
    (let rec find i =
       i + 10 <= String.length out && (String.sub out i 10 = "Yung Flach" || find (i + 1))
     in
     find 0)

let suite =
  ( "integration",
    [ Alcotest.test_case "cross-engine on XMark" `Quick test_cross_engine_on_xmark;
      Alcotest.test_case "union queries" `Quick test_union_queries;
      Alcotest.test_case "full pipeline roundtrip" `Quick test_full_pipeline_roundtrip;
      Alcotest.test_case "snapshot pipeline" `Quick test_snapshot_pipeline;
      Alcotest.test_case "xquery on XMark" `Quick test_xquery_on_xmark ] )
