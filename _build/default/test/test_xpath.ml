(* Tests for the XPath lexer and parser. *)

open Xpath

let parse = Parser.parse
let to_string = Ast.expr_to_string

let check_roundtrip src expected =
  let e = parse src in
  Alcotest.(check string) src expected (to_string e);
  (* the canonical form must reparse to an equal AST *)
  let e2 = parse (to_string e) in
  Alcotest.(check bool) ("reparse " ^ src) true (Ast.equal_expr e e2)

let test_paper_queries () =
  (* the five benchmark queries of §VIII plus the two running examples *)
  check_roundtrip "//person/address"
    "/descendant-or-self::node()/child::person/child::address";
  check_roundtrip "//watches/watch/ancestor::person"
    "/descendant-or-self::node()/child::watches/child::watch/ancestor::person";
  check_roundtrip "/descendant::name/parent::*/self::person/address"
    "/descendant::name/parent::*/self::person/child::address";
  check_roundtrip "//itemref/following-sibling::price/parent::*"
    "/descendant-or-self::node()/child::itemref/following-sibling::price/parent::*";
  check_roundtrip "//province[text()='Vermont']/ancestor::person"
    "/descendant-or-self::node()/child::province[child::text() = 'Vermont']/ancestor::person";
  check_roundtrip "//name[text()='Yung Flach']/following-sibling::emailaddress"
    "/descendant-or-self::node()/child::name[child::text() = 'Yung Flach']/following-sibling::emailaddress"

let test_all_axes () =
  List.iter
    (fun axis ->
      let name = Ast.axis_name axis in
      let src = Printf.sprintf "%s::foo" name in
      match parse src with
      | Ast.Path { absolute = false; steps = [ { Ast.axis = a; test = Name_test "foo"; predicates = [] } ] } ->
          Alcotest.(check string) src name (Ast.axis_name a)
      | _ -> Alcotest.fail ("bad parse for " ^ src))
    Ast.all_axes;
  Alcotest.(check int) "13 axes" 13 (List.length Ast.all_axes)

let test_abbreviations () =
  check_roundtrip "." "self::node()";
  check_roundtrip ".." "parent::node()";
  check_roundtrip "@id" "attribute::id";
  check_roundtrip "a//b" "child::a/descendant-or-self::node()/child::b";
  check_roundtrip "//*" "/descendant-or-self::node()/child::*";
  check_roundtrip "/" "/";
  check_roundtrip "../@*" "parent::node()/attribute::*"

let test_node_tests () =
  check_roundtrip "text()" "child::text()";
  check_roundtrip "node()" "child::node()";
  check_roundtrip "comment()" "child::comment()";
  check_roundtrip "processing-instruction()" "child::processing-instruction()";
  check_roundtrip "processing-instruction('x')" "child::processing-instruction('x')"

let test_predicates () =
  check_roundtrip "a[1]" "child::a[1]";
  check_roundtrip "a[last()]" "child::a[last()]";
  check_roundtrip "a[position() > 2]" "child::a[position() > 2]";
  check_roundtrip "a[@id='x'][2]" "child::a[attribute::id = 'x'][2]";
  check_roundtrip "a[b and c or d]" "child::a[child::b and child::c or child::d]" |> ignore;
  (* and binds tighter than or *)
  match parse "a[b and c or d]" with
  | Ast.Path { steps = [ { predicates = [ Ast.Binop (Ast.Or, Ast.Binop (Ast.And, _, _), _) ]; _ } ]; _ } ->
      ()
  | e -> Alcotest.fail ("precedence wrong: " ^ to_string e)

let test_arithmetic_and_disambiguation () =
  (* '*' as operator vs wildcard *)
  check_roundtrip "2 * 3" "2 * 3";
  check_roundtrip "a/*" "child::a/child::*";
  check_roundtrip "a[x * 2 > 3]" "child::a[child::x * 2 > 3]";
  check_roundtrip "6 div 2 mod 2" "6 div 2 mod 2";
  check_roundtrip "1 + 2 * 3" "1 + 2 * 3";
  (match parse "1 + 2 * 3" with
  | Ast.Binop (Ast.Add, Ast.Number 1., Ast.Binop (Ast.Mul, _, _)) -> ()
  | e -> Alcotest.fail ("mul precedence: " ^ to_string e));
  check_roundtrip "-1 + 2" "-1 + 2";
  (* an element named 'div' used as a name, not operator *)
  check_roundtrip "a/div" "child::a/child::div"

let test_functions () =
  check_roundtrip "count(//person)" "count(/descendant-or-self::node()/child::person)";
  check_roundtrip "contains(name, 'x')" "contains(child::name, 'x')";
  check_roundtrip "not(a = b)" "not(child::a = child::b)";
  check_roundtrip "concat('a', 'b', 'c')" "concat('a', 'b', 'c')"

let test_union_and_filter () =
  check_roundtrip "a | b" "child::a | child::b";
  check_roundtrip "(//a)[1]" "(/descendant-or-self::node()/child::a)[1]";
  check_roundtrip "(//a)[1]/b" "(/descendant-or-self::node()/child::a)[1]/child::b"

let test_literals () =
  check_roundtrip "'x'" "'x'";
  check_roundtrip "\"it's\"" "\"it's\"";
  (match parse "a = 3.5" with
  | Ast.Binop (Ast.Eq, _, Ast.Number 3.5) -> ()
  | e -> Alcotest.fail ("number: " ^ to_string e));
  match parse "a = .5" with
  | Ast.Binop (Ast.Eq, _, Ast.Number 0.5) -> ()
  | e -> Alcotest.fail ("leading-dot number: " ^ to_string e)

let check_syntax_error src =
  match parse src with
  | exception Parser.Error _ -> ()
  | e -> Alcotest.fail (Printf.sprintf "expected error for %S, got %s" src (to_string e))

let test_errors () =
  List.iter check_syntax_error
    [ "";
      "a[";
      "a]";
      "//";
      "child::";
      "unknownaxis::a";
      "a/'lit'";
      "f(a,)";
      "a = ";
      "1 !";
      "'unterminated" ]

let test_variables () =
  check_roundtrip "$x" "$x";
  check_roundtrip "$x/name" "$x/child::name";
  check_roundtrip "$a = $b" "$a = $b";
  match parse "$p/address/city" with
  | Ast.Located (Ast.Var "p", { Ast.steps = [ _; _ ]; _ }) -> ()
  | e -> Alcotest.fail ("variable path: " ^ to_string e)

let test_parse_path () =
  let p = Parser.parse_path "//person/address" in
  Alcotest.(check int) "steps" 3 (List.length p.Ast.steps);
  Alcotest.(check bool) "absolute" true p.Ast.absolute;
  match Parser.parse_path "1 + 2" with
  | exception Parser.Error _ -> ()
  | _ -> Alcotest.fail "expected non-path rejection"

let test_reverse_axes () =
  List.iter
    (fun (axis, expected) ->
      Alcotest.(check bool) (Ast.axis_name axis) expected (Ast.is_reverse_axis axis))
    [ (Ast.Parent, true); (Ast.Ancestor, true); (Ast.Ancestor_or_self, true);
      (Ast.Preceding, true); (Ast.Preceding_sibling, true); (Ast.Child, false);
      (Ast.Descendant, false); (Ast.Following, false); (Ast.Self, false);
      (Ast.Attribute, false) ]

(* property: printing a random path reparses to an equal AST *)
let gen_axis = QCheck.Gen.oneofl Ast.all_axes

let gen_test =
  QCheck.Gen.oneofl
    [ Ast.Name_test "person"; Ast.Name_test "address"; Ast.Wildcard; Ast.Text_test;
      Ast.Node_test; Ast.Comment_test ]

let gen_simple_pred =
  QCheck.Gen.oneofl
    [ Ast.Number 1.; Ast.Path { absolute = false; steps = [ Ast.step Ast.Child (Ast.Name_test "x") ] };
      Ast.Binop (Ast.Eq, Ast.Path { absolute = false; steps = [ Ast.step Ast.Child Ast.Text_test ] },
         Ast.Literal "v") ]

let gen_path =
  let open QCheck.Gen in
  let* absolute = bool in
  let* nsteps = int_range 1 5 in
  let* steps =
    list_size (return nsteps)
      (let* axis = gen_axis in
       let* test = gen_test in
       let* npred = int_range 0 2 in
       let* predicates = list_size (return npred) gen_simple_pred in
       return { Ast.axis; test; predicates })
  in
  return { Ast.absolute; steps }

let prop_print_parse =
  QCheck.Test.make ~name:"print/parse roundtrip on random paths" ~count:300
    (QCheck.make ~print:Ast.path_to_string gen_path) (fun p ->
      match parse (Ast.path_to_string p) with
      | Ast.Path p2 -> Ast.equal_path p p2
      | _ -> false)

let suite =
  ( "xpath",
    [ Alcotest.test_case "paper queries" `Quick test_paper_queries;
      Alcotest.test_case "all 13 axes" `Quick test_all_axes;
      Alcotest.test_case "abbreviations" `Quick test_abbreviations;
      Alcotest.test_case "node tests" `Quick test_node_tests;
      Alcotest.test_case "predicates" `Quick test_predicates;
      Alcotest.test_case "arithmetic and disambiguation" `Quick test_arithmetic_and_disambiguation;
      Alcotest.test_case "functions" `Quick test_functions;
      Alcotest.test_case "union and filter" `Quick test_union_and_filter;
      Alcotest.test_case "literals" `Quick test_literals;
      Alcotest.test_case "syntax errors" `Quick test_errors;
      Alcotest.test_case "variables" `Quick test_variables;
      Alcotest.test_case "parse_path" `Quick test_parse_path;
      Alcotest.test_case "reverse axes" `Quick test_reverse_axes;
      QCheck_alcotest.to_alcotest prop_print_parse ] )
