(* Tests for the pipelined executor: operator states (paper Algorithm 1),
   dynamic context setting (Algorithm 2), predicate layers, value steps,
   and the index-only property of key pipelines. *)

open Vamana
module Store = Mass.Store

let doc_src =
  {xml|<root>
  <a><b>one</b><b>two</b><c/></a>
  <a><b>three</b></a>
  <a><c/></a>
</root>|xml}

let setup () =
  let store = Store.create () in
  let doc = Store.load_string store ~name:"t.xml" doc_src in
  (store, doc.Store.doc_key)

let compile src =
  match Compile.compile_query src with Ok p -> p | Error e -> Alcotest.fail e

let test_state_machine () =
  let store, ctx = setup () in
  let it = Exec.build store ~context:ctx (compile "//a") in
  Alcotest.(check bool) "starts INITIAL" true (Exec.state it = `Initial);
  let first = Exec.next it in
  Alcotest.(check bool) "first tuple" true (first <> None);
  Alcotest.(check bool) "FETCHING while streaming" true (Exec.state it = `Fetching);
  let rec drain n = if Exec.next it = None then n else drain (n + 1) in
  Alcotest.(check int) "three a elements" 3 (drain 1);
  Alcotest.(check bool) "OUT_OF_TUPLES at end" true (Exec.state it = `Out_of_tuples);
  Alcotest.(check bool) "stays exhausted" true (Exec.next it = None)

let test_reset () =
  let store, ctx = setup () in
  let plan = compile "b" in
  (* relative plan: re-root at each <a> *)
  let a_keys = Exec.run store ~context:ctx (compile "//a") in
  let it = Exec.build store ~context:ctx plan in
  let counts =
    List.map
      (fun a ->
        Exec.reset it a;
        let rec drain n = if Exec.next it = None then n else drain (n + 1) in
        drain 0)
      a_keys
  in
  Alcotest.(check (list int)) "b children per a" [ 2; 1; 0 ] counts

let test_predicate_layers () =
  let store, ctx = setup () in
  (* layered predicates: a filter layer, then a positional layer counting
     the survivors of the first *)
  let keys = Exec.run store ~context:ctx (compile "//a[b][2]") in
  Alcotest.(check int) "second a with b" 1 (List.length keys);
  let keys2 = Exec.run store ~context:ctx (compile "//a[c][2]") in
  Alcotest.(check int) "second a with c" 1 (List.length keys2);
  (* survivors differ between the two filters, so the positions pick
     different nodes: a2 (second with b) vs a3 (second with c) *)
  Alcotest.(check bool) "different nodes" false
    (Flex.equal (List.hd keys) (List.hd keys2))

let test_run_raw_duplicates () =
  let store, ctx = setup () in
  (* every b has an a parent: parent::a emits one tuple per b *)
  let raw = Exec.run_raw store ~context:ctx (compile "//b/parent::a") in
  let dedup = Exec.run store ~context:ctx (compile "//b/parent::a") in
  Alcotest.(check int) "raw has per-b tuples" 3 (List.length raw);
  Alcotest.(check int) "run dedups" 2 (List.length dedup)

let test_value_step_execution () =
  let store, ctx = setup () in
  let doc = List.hd (Store.documents store) in
  (* build the optimizer's value plan directly *)
  let value_op = Plan.mk (Plan.Value_step ("two", Some Xpath.Ast.Text_test)) in
  let parent_op =
    Plan.mk ~context:value_op (Plan.Step (Xpath.Ast.Parent, Xpath.Ast.Name_test "b"))
  in
  let root = Plan.mk ~context:parent_op Plan.Root in
  ignore doc;
  let keys = Exec.run store ~context:ctx root in
  Alcotest.(check int) "one b with text 'two'" 1 (List.length keys);
  Alcotest.(check string) "value" "two" (Store.string_value store (List.hd keys))

let test_value_step_source_filter () =
  let store = Store.create () in
  let d = Store.load_string store ~name:"t" "<r><x k='v'/><y>v</y></r>" in
  let ctx = d.Store.doc_key in
  let run source =
    let value_op = Plan.mk (Plan.Value_step ("v", source)) in
    let root = Plan.mk ~context:value_op Plan.Root in
    Exec.run store ~context:ctx root
  in
  Alcotest.(check int) "unfiltered finds text and attribute" 2 (List.length (run None));
  Alcotest.(check int) "text() only" 1 (List.length (run (Some Xpath.Ast.Text_test)));
  Alcotest.(check int) "attribute k only" 1
    (List.length (run (Some (Xpath.Ast.Name_test "k"))))

let test_index_only_pipeline () =
  (* a pure structural query must not read more pages than a fraction of
     the store: keys flow, records are not materialized *)
  let store = Store.create () in
  let d = Xmark.load store 1.0 in
  let plan = compile "//person/address" in
  let o = Optimizer.optimize store ~scope:(Some d.Store.doc_key) plan in
  Store.reset_io_stats store;
  let keys = Exec.run store ~context:d.Store.doc_key o.Optimizer.plan in
  let reads = (Store.io_stats store).Storage.Stats.logical_reads in
  let total = Store.total_records store in
  Alcotest.(check bool) "has results" true (List.length keys > 50);
  Alcotest.(check bool)
    (Printf.sprintf "page reads (%d) well below record count (%d)" reads total)
    true
    (reads < total / 4)

let test_generic_step () =
  let store, ctx = setup () in
  (* last() forces Step_generic *)
  let plan = compile "//a/b[last()]" in
  let has_generic =
    List.exists
      (fun (op : Plan.op) -> match op.Plan.kind with Plan.Step_generic _ -> true | _ -> false)
      (Plan.subtree_ops plan)
  in
  Alcotest.(check bool) "compiled to generic step" true has_generic;
  let values = List.map (Store.string_value store) (Exec.run store ~context:ctx plan) in
  Alcotest.(check (list string)) "last b per a" [ "two"; "three" ] values

let test_empty_results () =
  let store, ctx = setup () in
  Alcotest.(check int) "missing name" 0 (List.length (Exec.run store ~context:ctx (compile "//zzz")));
  Alcotest.(check int) "unsatisfiable predicate" 0
    (List.length (Exec.run store ~context:ctx (compile "//a[zzz]")));
  Alcotest.(check int) "namespace axis empty" 0
    (List.length (Exec.run store ~context:ctx (compile "//a/namespace::*")))

let test_binary_predicate_operands () =
  let store, ctx = setup () in
  let run src = List.length (Exec.run store ~context:ctx (compile src)) in
  Alcotest.(check int) "path = literal" 1 (run "//a[b = 'two']");
  Alcotest.(check int) "literal = path" 1 (run "//a[\'two\' = b]");
  Alcotest.(check int) "path != literal (existential)" 2 (run "//a[b != 'two']");
  Alcotest.(check int) "number comparison" 0 (run "//a[b = 5]");
  Alcotest.(check int) "and" 1 (run "//a[b and c]");
  Alcotest.(check int) "or" 3 (run "//a[b or c]");
  Alcotest.(check int) "not" 1 (run "//a[not(b)]")

let suite =
  ( "exec",
    [ Alcotest.test_case "operator state machine" `Quick test_state_machine;
      Alcotest.test_case "dynamic context reset" `Quick test_reset;
      Alcotest.test_case "predicate layers" `Quick test_predicate_layers;
      Alcotest.test_case "raw stream vs set semantics" `Quick test_run_raw_duplicates;
      Alcotest.test_case "value step execution" `Quick test_value_step_execution;
      Alcotest.test_case "value step source filter" `Quick test_value_step_source_filter;
      Alcotest.test_case "index-only pipeline" `Quick test_index_only_pipeline;
      Alcotest.test_case "generic step (last())" `Quick test_generic_step;
      Alcotest.test_case "empty results" `Quick test_empty_results;
      Alcotest.test_case "binary predicate operands" `Quick test_binary_predicate_operands ] )
