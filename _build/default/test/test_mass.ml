(* Tests for the MASS storage structure: loading, counting, axis cursors.

   The central property: every MASS axis cursor agrees with the DOM
   reference semantics (Baselines.Dom_nav) on random documents, for all
   13 axes and all node-test shapes. *)

open Mass

let person_doc =
  {xml|<site>
  <person id="person144">
    <name>Yung Flach</name>
    <emailaddress>Flach@auth.gr</emailaddress>
    <address>
      <street>92 Pfisterer St</street>
      <city>Monroe</city>
      <country>United States</country>
      <zipcode>12</zipcode>
    </address>
    <watches>
      <watch open_auction="open_auction108"/>
      <watch open_auction="open_auction94"/>
      <watch open_auction="open_auction110"/>
    </watches>
  </person>
  <person id="person145">
    <name>Ann Smith</name>
    <address><city>Monroe</city></address>
  </person>
</site>|xml}

let setup src =
  let store = Store.create () in
  let tree = Xml.Parser.parse src in
  let doc = Store.load store ~name:"test.xml" tree in
  (store, tree, doc)

(* Map each Tree node to its MASS key by walking both structures in step. *)
let build_key_map store tree doc =
  let map = Hashtbl.create 64 in
  let rec walk key (n : Xml.Tree.node) =
    Hashtbl.add map n.Xml.Tree.id key;
    let attr_cursor = Store.axis_cursor store Xpath.Ast.Attribute Xpath.Ast.Node_test key in
    Array.iter
      (fun (a : Xml.Tree.node) ->
        match attr_cursor () with
        | Some ak -> Hashtbl.add map a.Xml.Tree.id ak
        | None -> Alcotest.fail "missing attribute record")
      n.Xml.Tree.attributes;
    let child_cursor = Store.axis_cursor store Xpath.Ast.Child Xpath.Ast.Node_test key in
    Array.iter
      (fun (c : Xml.Tree.node) ->
        match child_cursor () with
        | Some ck -> walk ck c
        | None -> Alcotest.fail "missing child record")
      n.Xml.Tree.children
  in
  walk doc.Store.doc_key tree;
  map

let test_load_counts () =
  let store, _, doc = setup person_doc in
  Alcotest.(check int) "persons" 2 (Store.count_test store ~principal:Record.Element (Xpath.Ast.Name_test "person"));
  Alcotest.(check int) "addresses" 2 (Store.count_test store ~principal:Record.Element (Xpath.Ast.Name_test "address"));
  Alcotest.(check int) "names" 2 (Store.count_test store ~principal:Record.Element (Xpath.Ast.Name_test "name"));
  Alcotest.(check int) "watch" 3 (Store.count_test store ~principal:Record.Element (Xpath.Ast.Name_test "watch"));
  Alcotest.(check int) "elements total" doc.Store.element_count
    (Store.count_test store ~principal:Record.Element Xpath.Ast.Wildcard);
  Alcotest.(check int) "attrs" 5 doc.Store.attribute_count;
  Alcotest.(check int) "text nodes" doc.Store.text_count
    (Store.count_test store ~principal:Record.Element Xpath.Ast.Text_test);
  Alcotest.(check int) "id attributes" 2
    (Store.count_test store ~principal:Record.Attribute (Xpath.Ast.Name_test "id"))

let test_text_counts () =
  let store, _, _ = setup person_doc in
  Alcotest.(check int) "TC Yung Flach" 1 (Store.text_value_count store "Yung Flach");
  Alcotest.(check int) "TC Monroe" 2 (Store.text_value_count store "Monroe");
  Alcotest.(check int) "TC absent" 0 (Store.text_value_count store "Nobody");
  (* attribute values are indexed too *)
  Alcotest.(check int) "TC attr value" 1 (Store.text_value_count store "open_auction94")

let test_scoped_counts () =
  let store, _, doc = setup person_doc in
  let persons =
    let c = Store.axis_cursor store Xpath.Ast.Descendant (Xpath.Ast.Name_test "person") doc.Store.doc_key in
    let rec go acc = match c () with Some k -> go (k :: acc) | None -> List.rev acc in
    go []
  in
  Alcotest.(check int) "two persons" 2 (List.length persons);
  let p1 = List.nth persons 0 in
  Alcotest.(check int) "city in person1 subtree" 1
    (Store.count_test store ~scope:p1 ~principal:Record.Element (Xpath.Ast.Name_test "city"));
  Alcotest.(check int) "watch in person1" 3
    (Store.count_test store ~scope:p1 ~principal:Record.Element (Xpath.Ast.Name_test "watch"));
  let p2 = List.nth persons 1 in
  Alcotest.(check int) "watch in person2" 0
    (Store.count_test store ~scope:p2 ~principal:Record.Element (Xpath.Ast.Name_test "watch"));
  Alcotest.(check int) "TC Monroe scoped" 1 (Store.text_value_count store ~scope:p2 "Monroe")

let test_counts_are_index_only () =
  let store, _, _ = setup person_doc in
  (* force everything out of the measurable window *)
  Store.reset_io_stats store;
  let before = (Store.io_stats store).Storage.Stats.logical_reads in
  ignore (Store.count_test store ~principal:Record.Element (Xpath.Ast.Name_test "person"));
  ignore (Store.text_value_count store "Monroe");
  let after = (Store.io_stats store).Storage.Stats.logical_reads in
  Alcotest.(check bool)
    (Printf.sprintf "counting touched %d pages" (after - before))
    true
    (after - before <= 12)

let test_string_value () =
  let store, _, doc = setup person_doc in
  let name_cursor = Store.axis_cursor store Xpath.Ast.Descendant (Xpath.Ast.Name_test "name") doc.Store.doc_key in
  match name_cursor () with
  | Some k -> Alcotest.(check string) "string value" "Yung Flach" (Store.string_value store k)
  | None -> Alcotest.fail "no name element"

let test_value_cursor () =
  let store, _, _ = setup person_doc in
  let c = Store.value_cursor store "Monroe" in
  let rec go acc = match c () with Some k -> go (k :: acc) | None -> List.rev acc in
  let keys = go [] in
  Alcotest.(check int) "two Monroe text nodes" 2 (List.length keys);
  List.iter
    (fun k ->
      let r = Store.get_exn store k in
      Alcotest.(check string) "is text" "text" (Record.kind_to_string r.Record.kind);
      Alcotest.(check string) "value" "Monroe" r.Record.value)
    keys

let test_value_range_cursor () =
  let store, _, _ = setup person_doc in
  let c = Store.value_range_cursor store ~lo:(Some "M") ~hi:(Some "N") in
  let rec go acc = match c () with Some k -> go (k :: acc) | None -> acc in
  (* Monroe x2 *)
  Alcotest.(check int) "values in [M,N]" 2 (List.length (go []))

let test_multiple_documents () =
  let store = Store.create () in
  let d1 = Store.load_string store ~name:"a.xml" "<a><x/><x/></a>" in
  let d2 = Store.load_string store ~name:"b.xml" "<b><x/></b>" in
  Alcotest.(check int) "global x count" 3
    (Store.count_test store ~principal:Record.Element (Xpath.Ast.Name_test "x"));
  Alcotest.(check int) "doc1 x count" 2
    (Store.count_test store ~scope:d1.Store.doc_key ~principal:Record.Element (Xpath.Ast.Name_test "x"));
  Alcotest.(check int) "doc2 x count" 1
    (Store.count_test store ~scope:d2.Store.doc_key ~principal:Record.Element (Xpath.Ast.Name_test "x"));
  (* following must not leak across documents *)
  let root1 = Option.get (Store.root_element_key d1 store) in
  let c = Store.axis_cursor store Xpath.Ast.Following (Xpath.Ast.Name_test "x") root1 in
  Alcotest.(check bool) "no following across docs" true (c () = None);
  Alcotest.(check bool) "find by name" true (Store.find_document store "b.xml" <> None);
  Store.remove_document store d1;
  Alcotest.(check int) "count after removal" 1
    (Store.count_test store ~principal:Record.Element (Xpath.Ast.Name_test "x"));
  Alcotest.(check int) "docs left" 1 (List.length (Store.documents store))

let test_dynamic_insert_delete () =
  let store, _, doc = setup person_doc in
  let persons =
    let c = Store.axis_cursor store Xpath.Ast.Descendant (Xpath.Ast.Name_test "person") doc.Store.doc_key in
    let rec go acc = match c () with Some k -> go (k :: acc) | None -> List.rev acc in
    go []
  in
  let p1 = List.nth persons 0 in
  (* insert a new province element under person1's address *)
  let address =
    let c = Store.axis_cursor store Xpath.Ast.Descendant (Xpath.Ast.Name_test "address") p1 in
    Option.get (c ())
  in
  let key = Store.insert_element store ~parent:address "province" [] (Some "Vermont") in
  Alcotest.(check int) "province count updated" 1
    (Store.count_test store ~principal:Record.Element (Xpath.Ast.Name_test "province"));
  Alcotest.(check int) "TC Vermont" 1 (Store.text_value_count store "Vermont");
  Alcotest.(check string) "string value" "Vermont" (Store.string_value store key);
  (* child axis from address now sees it *)
  let c = Store.axis_cursor store Xpath.Ast.Child (Xpath.Ast.Name_test "province") address in
  Alcotest.(check bool) "child cursor finds it" true (c () <> None);
  (* and counts drop after delete *)
  let removed = Store.delete_subtree store key in
  Alcotest.(check int) "removed records" 2 removed;
  Alcotest.(check int) "province gone" 0
    (Store.count_test store ~principal:Record.Element (Xpath.Ast.Name_test "province"));
  Alcotest.(check int) "TC gone" 0 (Store.text_value_count store "Vermont")

let test_insert_between_siblings () =
  let store = Store.create () in
  let doc = Store.load_string store ~name:"t" "<r><a/><b/></r>" in
  let root = Option.get (Store.root_element_key doc store) in
  let a =
    let c = Store.axis_cursor store Xpath.Ast.Child (Xpath.Ast.Name_test "a") root in
    Option.get (c ())
  in
  let _mid = Store.insert_element store ~parent:root ~after:a "m" [] None in
  let c = Store.axis_cursor store Xpath.Ast.Child Xpath.Ast.Wildcard root in
  let rec names acc =
    match c () with
    | Some k -> names ((Store.get_exn store k).Record.name :: acc)
    | None -> List.rev acc
  in
  Alcotest.(check (list string)) "sibling order" [ "a"; "m"; "b" ] (names [])

let test_statistics () =
  let store, _, _ = setup person_doc in
  let s = Store.statistics store in
  Alcotest.(check bool) "records positive" true (s.Store.record_count > 20);
  Alcotest.(check int) "one document" 1 s.Store.document_count;
  Alcotest.(check bool) "tuples per page positive" true (s.Store.tuples_per_page > 0.0);
  Alcotest.(check bool) "height >= 1" true (s.Store.doc_index_height >= 1)

(* ---- the big agreement property ---- *)

let gen_tree =
  let open QCheck.Gen in
  let name = oneofl [ "a"; "b"; "c"; "person"; "name" ] in
  let rec spec depth =
    if depth = 0 then
      oneof
        [ map (fun s -> Xml.Tree.D ("t" ^ s)) (string_size ~gen:(char_range 'a' 'c') (return 2));
          return (Xml.Tree.Cm "note");
          return (Xml.Tree.Proc ("pi", "d")) ]
    else
      let* n = name in
      let* nattr = int_range 0 2 in
      let attr_names = List.filteri (fun i _ -> i < nattr) [ "id"; "k" ] in
      let* attrs = flatten_l (List.map (fun a -> map (fun v -> (a, "v" ^ v)) (string_size ~gen:(char_range 'a' 'b') (return 1))) attr_names) in
      let* nc = int_range 0 3 in
      let* children = list_size (return nc) (spec (depth - 1)) in
      return (Xml.Tree.E (n, attrs, children))
  in
  let* root = spec 3 in
  match root with
  | Xml.Tree.E _ -> return (Xml.Tree.document [ root ])
  | _ -> return (Xml.Tree.document [ Xml.Tree.E ("r", [], [ root ]) ])

(* deeper, narrower trees exercise long FLEX keys and deep axis chains *)
let gen_deep_tree =
  let open QCheck.Gen in
  let name = oneofl [ "a"; "b"; "c" ] in
  let rec spec depth =
    if depth = 0 then map (fun s -> Xml.Tree.D ("t" ^ s)) (string_size ~gen:(char_range 'a' 'b') (return 1))
    else
      let* n = name in
      let* nc = int_range 1 2 in
      let* children = list_size (return nc) (spec (depth - 1)) in
      return (Xml.Tree.E (n, [], children))
  in
  let* root = spec 6 in
  match root with
  | Xml.Tree.E _ -> return (Xml.Tree.document [ root ])
  | _ -> return (Xml.Tree.document [ Xml.Tree.E ("r", [], [ root ]) ])

let all_tests =
  [ Xpath.Ast.Name_test "a"; Xpath.Ast.Name_test "person"; Xpath.Ast.Wildcard;
    Xpath.Ast.Text_test; Xpath.Ast.Node_test; Xpath.Ast.Comment_test; Xpath.Ast.Pi_test None ]

let axis_agreement_property tree =
      let store = Store.create () in
      let doc = Store.load store ~name:"gen" tree in
      let key_map = build_key_map store tree doc in
      let ok = ref true in
      Xml.Tree.iter_preorder
        (fun n ->
          let ctx = Hashtbl.find key_map n.Xml.Tree.id in
          List.iter
            (fun axis ->
              List.iter
                (fun test ->
                  let expected =
                    Baselines.Dom_nav.select axis test n
                    |> List.map (fun (m : Xml.Tree.node) -> Hashtbl.find key_map m.Xml.Tree.id)
                  in
                  let actual =
                    let c = Store.axis_cursor store axis test ctx in
                    let rec go acc =
                      match c () with Some k -> go (k :: acc) | None -> List.rev acc
                    in
                    go []
                  in
                  if not (List.equal Flex.equal expected actual) then begin
                    ok := false;
                    Printf.eprintf "MISMATCH axis=%s test=%s ctx=%s\n  expected: %s\n  actual:   %s\n"
                      (Xpath.Ast.axis_name axis)
                      (Xpath.Ast.node_test_to_string test)
                      (Flex.to_string ctx)
                      (String.concat "," (List.map Flex.to_string expected))
                      (String.concat "," (List.map Flex.to_string actual))
                  end)
                all_tests)
            Xpath.Ast.all_axes)
        tree;
      !ok

let prop_axis_agreement =
  QCheck.Test.make ~name:"MASS axis cursors agree with DOM reference" ~count:60
    (QCheck.make gen_tree) axis_agreement_property

let prop_axis_agreement_deep =
  QCheck.Test.make ~name:"axis agreement on deep trees" ~count:15
    (QCheck.make gen_deep_tree) axis_agreement_property

let prop_count_matches_cursor =
  QCheck.Test.make ~name:"count_test equals cursor cardinality for named tests" ~count:60
    (QCheck.make gen_tree) (fun tree ->
      let store = Store.create () in
      let doc = Store.load store ~name:"gen" tree in
      List.for_all
        (fun test ->
          let counted = Store.count_test store ~principal:Record.Element test in
          let scanned =
            let c = Store.axis_cursor store Xpath.Ast.Descendant test doc.Store.doc_key in
            let rec go n = match c () with Some _ -> go (n + 1) | None -> n in
            go 0
          in
          counted = scanned)
        [ Xpath.Ast.Name_test "a"; Xpath.Ast.Name_test "person"; Xpath.Ast.Text_test;
          Xpath.Ast.Comment_test ])

let suite =
  ( "mass",
    [ Alcotest.test_case "load and counts" `Quick test_load_counts;
      Alcotest.test_case "text value counts" `Quick test_text_counts;
      Alcotest.test_case "scoped counts" `Quick test_scoped_counts;
      Alcotest.test_case "counts are index-only" `Quick test_counts_are_index_only;
      Alcotest.test_case "string value" `Quick test_string_value;
      Alcotest.test_case "value cursor" `Quick test_value_cursor;
      Alcotest.test_case "value range cursor" `Quick test_value_range_cursor;
      Alcotest.test_case "multiple documents" `Quick test_multiple_documents;
      Alcotest.test_case "dynamic insert and delete" `Quick test_dynamic_insert_delete;
      Alcotest.test_case "insert between siblings" `Quick test_insert_between_siblings;
      Alcotest.test_case "statistics" `Quick test_statistics;
      QCheck_alcotest.to_alcotest prop_axis_agreement;
      QCheck_alcotest.to_alcotest prop_axis_agreement_deep;
      QCheck_alcotest.to_alcotest prop_count_matches_cursor ] )
