(* Tests for the XMark-style generator: determinism, calibration, and the
   structural features the paper's queries depend on. *)

module Store = Mass.Store

let count store test =
  Store.count_test store ~principal:Mass.Record.Element (Xpath.Ast.Name_test test)

let test_calibration_10mb_counts () =
  (* the paper's 10 MB document: 2550 person, 1256 address, 4825 name *)
  let c = Xmark.plan ~megabytes:10.0 in
  Alcotest.(check int) "persons" 2550 c.Xmark.persons;
  Alcotest.(check int) "addresses" 1256 c.Xmark.addresses;
  Alcotest.(check int) "names" 4825 c.Xmark.names

let test_generated_counts_match_plan () =
  let megabytes = 0.5 in
  let c = Xmark.plan ~megabytes in
  let store = Store.create () in
  let _doc = Xmark.load store megabytes in
  Alcotest.(check int) "person elements" c.Xmark.persons (count store "person");
  Alcotest.(check int) "address elements" c.Xmark.addresses (count store "address");
  Alcotest.(check int) "name elements" c.Xmark.names (count store "name");
  Alcotest.(check int) "item elements" c.Xmark.items (count store "item");
  Alcotest.(check int) "category elements" c.Xmark.categories (count store "category");
  Alcotest.(check int) "open auctions" c.Xmark.open_auctions (count store "open_auction");
  Alcotest.(check int) "closed auctions" c.Xmark.closed_auctions (count store "closed_auction");
  (* every closed auction has an itemref followed by a price sibling (Q4) *)
  Alcotest.(check bool) "itemrefs present" true (count store "itemref" >= c.Xmark.closed_auctions);
  Alcotest.(check int) "prices" c.Xmark.closed_auctions (count store "price")

let test_determinism () =
  let a = Xmark.generate_string ~seed:7L 0.05 in
  let b = Xmark.generate_string ~seed:7L 0.05 in
  let c = Xmark.generate_string ~seed:8L 0.05 in
  Alcotest.(check bool) "same seed, same doc" true (String.equal a b);
  Alcotest.(check bool) "different seed, different doc" false (String.equal a c)

let test_single_yung_flach () =
  let store = Store.create () in
  let _ = Xmark.load store 0.5 in
  Alcotest.(check int) "exactly one Yung Flach" 1 (Store.text_value_count store "Yung Flach")

let test_queries_have_results () =
  let store = Store.create () in
  let doc = Xmark.load store 0.5 in
  List.iter
    (fun src ->
      match Vamana.Engine.query store ~context:doc.Store.doc_key src with
      | Ok r ->
          Alcotest.(check bool) (src ^ " nonempty") true (List.length r.Vamana.Engine.keys > 0)
      | Error e -> Alcotest.fail (src ^ ": " ^ e))
    [ "//person/address";
      "//watches/watch/ancestor::person";
      "/descendant::name/parent::*/self::person/address";
      "//itemref/following-sibling::price/parent::*";
      "//province[text()='Vermont']/ancestor::person";
      "//name[text()='Yung Flach']/following-sibling::emailaddress" ]

let test_size_scaling () =
  let small = String.length (Xmark.generate_string 0.1) in
  let large = String.length (Xmark.generate_string 0.4) in
  Alcotest.(check bool)
    (Printf.sprintf "0.4MB doc (%d bytes) is ~4x the 0.1MB doc (%d bytes)" large small)
    true
    (float_of_int large > 2.5 *. float_of_int small
    && float_of_int large < 6.0 *. float_of_int small);
  (* serialized size lands within a reasonable factor of the label *)
  Alcotest.(check bool)
    (Printf.sprintf "0.4MB doc is %d bytes" large)
    true
    (large > 100_000 && large < 1_600_000)

let test_parse_roundtrip () =
  let s = Xmark.generate_string 0.05 in
  let doc = Xml.Parser.parse s in
  Alcotest.(check string) "root is site" "site" (Xml.Tree.name (Xml.Tree.root_element doc))

let suite =
  ( "xmark",
    [ Alcotest.test_case "paper calibration at 10MB" `Quick test_calibration_10mb_counts;
      Alcotest.test_case "generated counts match plan" `Quick test_generated_counts_match_plan;
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "single Yung Flach" `Quick test_single_yung_flach;
      Alcotest.test_case "paper queries have results" `Quick test_queries_have_results;
      Alcotest.test_case "size scaling" `Quick test_size_scaling;
      Alcotest.test_case "parse roundtrip" `Quick test_parse_roundtrip ] )
