test/test_storage.ml: Alcotest Array Fun List Pager Printf QCheck QCheck_alcotest Stats Storage
