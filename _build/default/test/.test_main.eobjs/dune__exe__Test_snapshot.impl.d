test/test_snapshot.ml: Alcotest Bytes Filename Flex Fun List Mass Option String Sys Vamana Xmark Xpath
