test/test_frozen_stats.ml: Alcotest Compile Cost Engine Exec Frozen_stats Hashtbl List Mass Optimizer Plan Printf Rewrite Vamana
