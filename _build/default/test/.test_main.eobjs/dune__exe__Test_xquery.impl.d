test/test_xquery.ml: Alcotest List Mass Xquery
