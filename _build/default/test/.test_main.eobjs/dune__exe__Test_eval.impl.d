test/test_eval.ml: Alcotest Baselines Flex Float List Mass Xml Xpath
