test/test_xml.ml: Alcotest Array List Parser Printf QCheck QCheck_alcotest String Tree Writer Xml
