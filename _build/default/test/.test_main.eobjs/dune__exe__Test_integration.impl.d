test/test_integration.ml: Alcotest Baselines Filename Flex Fun List Mass Option String Sys Vamana Xmark Xml Xpath Xquery
