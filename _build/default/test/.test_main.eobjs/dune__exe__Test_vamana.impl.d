test/test_vamana.ml: Alcotest Compile Cost Engine Exec Flex Hashtbl List Mass Nav Optimizer Option Plan Printf QCheck QCheck_alcotest Rewrite Storage String Vamana Xml Xpath
