test/test_reconstruct.ml: Alcotest Filename Flex Fun List Mass Option QCheck QCheck_alcotest Sys Test_vamana Vamana Xmark Xml
