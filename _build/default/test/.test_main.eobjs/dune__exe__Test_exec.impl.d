test/test_exec.ml: Alcotest Compile Exec Flex List Mass Optimizer Plan Printf Storage Vamana Xmark Xpath
