test/test_updates.ml: Alcotest Flex Hashtbl List Mass Option Printf QCheck QCheck_alcotest String Vamana Xpath
