test/test_xpath.ml: Alcotest Ast List Parser Printf QCheck QCheck_alcotest Xpath
