test/test_baselines.ml: Alcotest Baselines Dom_engine Join_engine List Mass Printf QCheck QCheck_alcotest Scan_engine String Test_vamana Vamana Xml Xpath
