test/test_xmark.ml: Alcotest List Mass Printf String Vamana Xmark Xml Xpath
