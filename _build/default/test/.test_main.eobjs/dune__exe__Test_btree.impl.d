test/test_btree.ml: Alcotest Btree Format Int List Map Printf QCheck QCheck_alcotest Storage String
