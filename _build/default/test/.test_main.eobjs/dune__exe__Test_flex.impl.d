test/test_flex.ml: Alcotest Array Flex Fun List Option Printf QCheck QCheck_alcotest Stdlib String
