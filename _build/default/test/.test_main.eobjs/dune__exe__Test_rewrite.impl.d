test/test_rewrite.ml: Alcotest Compile Exec Flex List Mass Plan Printf QCheck QCheck_alcotest Rewrite String Test_vamana Vamana Xpath
