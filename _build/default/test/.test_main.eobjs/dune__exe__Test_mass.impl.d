test/test_mass.ml: Alcotest Array Baselines Flex Hashtbl List Mass Option Printf QCheck QCheck_alcotest Record Storage Store String Xml Xpath
