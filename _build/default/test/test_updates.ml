(* Update robustness: the paper's claim that statistics stay exact under
   inserts and deletes because they are computed from the live index
   (§I: "cost accuracy is not affected by updates, inserts and deletes"). *)

module Store = Mass.Store

let base_doc = "<site><people/></site>"

let setup () =
  let store = Store.create () in
  let doc = Store.load_string store ~name:"t.xml" base_doc in
  (store, doc)

let people_key store doc =
  let c = Store.axis_cursor store Xpath.Ast.Descendant (Xpath.Ast.Name_test "people") doc.Store.doc_key in
  Option.get (c ())

let count store name =
  Store.count_test store ~principal:Mass.Record.Element (Xpath.Ast.Name_test name)

(* recount by scanning every record — the ground truth the index must match *)
let recount store doc name =
  Store.fold_document store doc
    (fun n _ r ->
      if r.Mass.Record.kind = Mass.Record.Element && String.equal r.Mass.Record.name name then
        n + 1
      else n)
    0

let test_counts_track_inserts () =
  let store, doc = setup () in
  let people = people_key store doc in
  for i = 1 to 20 do
    let _ =
      Store.insert_element store ~parent:people "person"
        [ ("id", Printf.sprintf "p%d" i) ]
        (Some (Printf.sprintf "name%d" i))
    in
    Alcotest.(check int) (Printf.sprintf "count after %d inserts" i) i (count store "person");
    Alcotest.(check int) "matches rescan" (recount store doc "person") (count store "person")
  done

let test_counts_track_deletes () =
  let store, doc = setup () in
  let people = people_key store doc in
  let keys =
    List.init 10 (fun i ->
        Store.insert_element store ~parent:people "person" [] (Some (string_of_int i)))
  in
  List.iteri
    (fun i k ->
      ignore (Store.delete_subtree store k);
      Alcotest.(check int) (Printf.sprintf "count after %d deletes" (i + 1)) (9 - i)
        (count store "person"))
    keys

let test_tc_tracks_updates () =
  let store, doc = setup () in
  let people = people_key store doc in
  Alcotest.(check int) "tc 0" 0 (Store.text_value_count store "Waldo");
  let k1 = Store.insert_element store ~parent:people "person" [] (Some "Waldo") in
  let _k2 = Store.insert_element store ~parent:people "person" [] (Some "Waldo") in
  Alcotest.(check int) "tc 2" 2 (Store.text_value_count store "Waldo");
  ignore (Store.delete_subtree store k1);
  Alcotest.(check int) "tc 1 after delete" 1 (Store.text_value_count store "Waldo");
  ignore doc

let test_cost_reacts_to_updates () =
  (* the optimizer's value-index decision flips as TC changes *)
  let store, doc = setup () in
  let people = people_key store doc in
  let insert name =
    Store.insert_element store ~parent:people "person" [] (Some name)
  in
  for _ = 1 to 50 do
    ignore (insert "Common")
  done;
  let rare = insert "Rare" in
  ignore rare;
  let estimate_out src =
    match Vamana.Compile.compile_query src with
    | Error e -> Alcotest.fail e
    | Ok plan ->
        let plan = Vamana.Rewrite.apply_cleanup plan in
        let costed = Vamana.Cost.estimate store ~scope:(Some doc.Store.doc_key) plan in
        (Hashtbl.find costed plan.Vamana.Plan.id).Vamana.Cost.output
  in
  let before = estimate_out "//person[text()='Rare']" in
  Alcotest.(check int) "rare estimate" 1 before;
  (* delete the rare person: estimate drops to zero immediately *)
  (match
     Vamana.Engine.query_doc store doc "//person[text()='Rare']"
   with
  | Ok r -> List.iter (fun k -> ignore (Store.delete_subtree store k)) r.Vamana.Engine.keys
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "estimate reflects delete" 0 (estimate_out "//person[text()='Rare']")

let test_queries_after_updates () =
  let store, doc = setup () in
  let people = people_key store doc in
  let p1 = Store.insert_element store ~parent:people "person" [ ("id", "a") ] None in
  let p2 = Store.insert_element store ~parent:people "person" [ ("id", "b") ] None in
  let _addr = Store.insert_element store ~parent:p1 "address" [] (Some "Monroe") in
  (* insert p3 between p1 and p2 using FLEX between-keys *)
  let p3 = Store.insert_element store ~parent:people ~after:p1 "person" [ ("id", "c") ] None in
  let ids =
    match Vamana.Engine.query_doc store doc "//person/@id" with
    | Ok r -> List.map (fun k -> (Store.get_exn store k).Mass.Record.value) r.Vamana.Engine.keys
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check (list string)) "document order respects between-insert" [ "a"; "c"; "b" ] ids;
  ignore (p2, p3);
  match Vamana.Engine.query_doc store doc "//person[address]/@id" with
  | Ok r ->
      Alcotest.(check int) "person with address" 1 (List.length r.Vamana.Engine.keys)
  | Error e -> Alcotest.fail e

(* random update workloads keep every structure consistent *)
type update_op = Insert of int | Delete of int

let gen_ops =
  let open QCheck.Gen in
  list_size (int_range 1 60)
    (frequency [ (3, map (fun i -> Insert i) (int_range 0 9)); (1, map (fun i -> Delete i) (int_range 0 99)) ])

let print_ops ops =
  String.concat ";"
    (List.map (function Insert i -> Printf.sprintf "I%d" i | Delete i -> Printf.sprintf "D%d" i) ops)

let prop_updates_consistent =
  QCheck.Test.make ~name:"random update workload keeps counts and axes exact" ~count:60
    (QCheck.make ~print:print_ops gen_ops) (fun ops ->
      let store, doc = setup () in
      let people = people_key store doc in
      let live = ref [] in
      List.iter
        (fun op ->
          match op with
          | Insert tag ->
              let name = Printf.sprintf "t%d" tag in
              let k = Store.insert_element store ~parent:people name [] (Some name) in
              live := k :: !live
          | Delete idx -> (
              match !live with
              | [] -> ()
              | l ->
                  let k = List.nth l (idx mod List.length l) in
                  ignore (Store.delete_subtree store k);
                  live := List.filter (fun k' -> not (Flex.equal k k')) l))
        ops;
      (* counts per tag match a full rescan *)
      let ok_counts =
        List.for_all
          (fun tag ->
            let name = Printf.sprintf "t%d" tag in
            count store name = recount store doc name
            && Store.text_value_count store name = recount store doc name)
          [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
      in
      (* child axis yields exactly the live keys, in order *)
      let children =
        let c = Store.axis_cursor store Xpath.Ast.Child Xpath.Ast.Wildcard people in
        let rec go acc = match c () with Some k -> go (k :: acc) | None -> List.rev acc in
        go []
      in
      let expected = List.sort Flex.compare !live in
      (* full three-index cross-validation after the workload *)
      Store.validate store;
      ok_counts
      && List.equal Flex.equal expected children
      && Store.subtree_size store people = 1 + (2 * List.length !live))

let suite =
  ( "updates",
    [ Alcotest.test_case "counts track inserts" `Quick test_counts_track_inserts;
      Alcotest.test_case "counts track deletes" `Quick test_counts_track_deletes;
      Alcotest.test_case "text counts track updates" `Quick test_tc_tracks_updates;
      Alcotest.test_case "cost estimates react to updates" `Quick test_cost_reacts_to_updates;
      Alcotest.test_case "queries after updates" `Quick test_queries_after_updates;
      QCheck_alcotest.to_alcotest prop_updates_consistent ] )
