(* Unit and property tests for FLEX structural keys. *)

let key cs = Flex.of_components cs

let check_order a b =
  Alcotest.(check bool)
    (Printf.sprintf "%s < %s" (Flex.to_string a) (Flex.to_string b))
    true
    (Flex.compare a b < 0)

let test_document_order () =
  (* pre-order of the paper's Figure 10 fragment *)
  let site = key [ "b" ] in
  let person = key [ "b"; "d"; "y" ] in
  let name = key [ "b"; "d"; "y"; "b" ] in
  let email = key [ "b"; "d"; "y"; "c" ] in
  let address = key [ "b"; "d"; "y"; "d" ] in
  let street = key [ "b"; "d"; "y"; "d"; "b" ] in
  let person2 = key [ "b"; "d"; "z" ] in
  check_order Flex.document site;
  check_order site person;
  check_order person name;
  check_order name email;
  check_order email address;
  check_order address street;
  check_order street person2;
  (* sibling vs deeper earlier sibling: a.d.y.c.a < a.d.z *)
  check_order street person2;
  (* a.d < a.dd style: longer component sorts after the shorter-component
     subtree *)
  check_order (key [ "b"; "d"; "x" ]) (key [ "b"; "dd" ])

let test_component_validity () =
  Alcotest.(check bool) "empty invalid" false (Flex.is_valid_component "");
  Alcotest.(check bool) "trailing a invalid" false (Flex.is_valid_component "ba");
  Alcotest.(check bool) "uppercase invalid" false (Flex.is_valid_component "B");
  Alcotest.(check bool) "digit invalid" false (Flex.is_valid_component "b1");
  Alcotest.(check bool) "b valid" true (Flex.is_valid_component "b");
  Alcotest.(check bool) "ab valid" true (Flex.is_valid_component "ab");
  Alcotest.check_raises "of_components rejects" (Invalid_argument "Flex: invalid component \"xa\"")
    (fun () -> ignore (key [ "xa" ]))

let test_ancestry () =
  let a = key [ "b"; "d" ] in
  let b = key [ "b"; "d"; "y"; "c" ] in
  Alcotest.(check bool) "ancestor" true (Flex.is_ancestor a b);
  Alcotest.(check bool) "not self" false (Flex.is_ancestor a a);
  Alcotest.(check bool) "or-self" true (Flex.is_ancestor_or_self a a);
  Alcotest.(check bool) "document ancestor of all" true (Flex.is_ancestor Flex.document b);
  Alcotest.(check bool) "sibling not ancestor" false
    (Flex.is_ancestor (key [ "b"; "d" ]) (key [ "b"; "dd" ]));
  Alcotest.(check string) "common ancestor" "b.d"
    (Flex.to_string (Flex.common_ancestor b (key [ "b"; "d"; "z" ])));
  Alcotest.(check string) "parent" "b.d.y"
    (Flex.to_string (Option.get (Flex.parent (key [ "b"; "d"; "y"; "c" ]))));
  Alcotest.(check bool) "document has no parent" true (Flex.parent Flex.document = None);
  Alcotest.(check string) "prefix depth 1" "b" (Flex.to_string (Flex.prefix b 1))

let test_between_basic () =
  let checks =
    [ (Some "b", Some "c"); (Some "b", Some "bc"); (None, Some "b");
      (Some "z", None); (None, None); (Some "b", Some "d");
      (Some "bz", Some "c"); (Some "n", Some "nb") ]
  in
  List.iter
    (fun (lo, hi) ->
      let m = Flex.between lo hi in
      Alcotest.(check bool)
        (Printf.sprintf "valid between %s %s -> %s"
           (Option.value lo ~default:"-inf") (Option.value hi ~default:"+inf") m)
        true
        (Flex.is_valid_component m
        && (match lo with None -> true | Some l -> String.compare l m < 0)
        && match hi with None -> true | Some h -> String.compare m h < 0))
    checks;
  Alcotest.check_raises "between rejects lo >= hi"
    (Invalid_argument "Flex.between: \"c\" >= \"c\"") (fun () ->
      ignore (Flex.between (Some "c") (Some "c")))

let test_sequence () =
  List.iter
    (fun n ->
      let cs = Flex.sequence n in
      Alcotest.(check int) (Printf.sprintf "sequence %d length" n) n (List.length cs);
      List.iter
        (fun c ->
          Alcotest.(check bool) ("valid " ^ c) true (Flex.is_valid_component c))
        cs;
      let rec sorted = function
        | a :: (b :: _ as rest) -> String.compare a b < 0 && sorted rest
        | _ -> true
      in
      Alcotest.(check bool) (Printf.sprintf "sequence %d sorted" n) true (sorted cs))
    [ 0; 1; 2; 25; 26; 624; 625; 626; 1000 ]

let test_bounds () =
  let k = key [ "b"; "d" ] in
  let desc = key [ "b"; "d"; "y" ] in
  let sib = key [ "b"; "dd" ] in
  let before = key [ "b"; "c" ] in
  let lo, hi = Flex.subtree_range k in
  Alcotest.(check bool) "self in subtree" true (Flex.key_in_range ~lo ~hi k);
  Alcotest.(check bool) "descendant in subtree" true (Flex.key_in_range ~lo ~hi desc);
  Alcotest.(check bool) "sibling out" false (Flex.key_in_range ~lo ~hi sib);
  Alcotest.(check bool) "earlier out" false (Flex.key_in_range ~lo ~hi before);
  let lo, hi = Flex.descendants_range k in
  Alcotest.(check bool) "self not in descendants" false (Flex.key_in_range ~lo ~hi k);
  Alcotest.(check bool) "descendant in descendants" true (Flex.key_in_range ~lo ~hi desc);
  Alcotest.(check bool) "sibling not in descendants" false (Flex.key_in_range ~lo ~hi sib)

let test_serialization () =
  let k = key [ "b"; "d"; "y"; "c" ] in
  Alcotest.(check string) "to_string" "b.d.y.c" (Flex.to_string k);
  Alcotest.(check bool) "of_string roundtrip" true (Flex.equal k (Flex.of_string "b.d.y.c"));
  Alcotest.(check string) "document prints as /" "/" (Flex.to_string Flex.document);
  Alcotest.(check bool) "document roundtrip" true
    (Flex.equal Flex.document (Flex.of_string "/"));
  Alcotest.(check bool) "encode/decode roundtrip" true (Flex.equal k (Flex.decode (Flex.encode k)))

(* ---- properties ---- *)

let gen_component =
  let open QCheck.Gen in
  let* n = int_range 1 4 in
  let* body = string_size (return (n - 1)) ~gen:(char_range 'a' 'z') in
  let* last = char_range 'b' 'z' in
  return (body ^ String.make 1 last)

let gen_key =
  let open QCheck.Gen in
  let* d = int_range 0 6 in
  let* cs = list_size (return d) gen_component in
  return (Flex.of_components cs)

let arb_key = QCheck.make ~print:Flex.to_string gen_key

let prop_compare_total_order =
  QCheck.Test.make ~name:"flex compare is antisymmetric and transitive-ish" ~count:500
    (QCheck.triple arb_key arb_key arb_key) (fun (a, b, c) ->
      let sign x = Stdlib.compare x 0 in
      sign (Flex.compare a b) = -sign (Flex.compare b a)
      && (Flex.compare a b >= 0 || Flex.compare b c >= 0 || Flex.compare a c < 0))

let prop_encode_order_preserving =
  QCheck.Test.make ~name:"encode preserves order" ~count:500 (QCheck.pair arb_key arb_key)
    (fun (a, b) ->
      Stdlib.compare (Flex.compare a b) 0
      = Stdlib.compare (String.compare (Flex.encode a) (Flex.encode b)) 0)

let prop_ancestor_matches_range =
  QCheck.Test.make ~name:"subtree range = ancestor-or-self" ~count:500
    (QCheck.pair arb_key arb_key) (fun (a, k) ->
      let lo, hi = Flex.subtree_range a in
      Flex.key_in_range ~lo ~hi k = Flex.is_ancestor_or_self a k)

let prop_between =
  let gen =
    let open QCheck.Gen in
    let* a = gen_component in
    let* b = gen_component in
    return (a, b)
  in
  QCheck.Test.make ~name:"between lies strictly between" ~count:1000
    (QCheck.make ~print:(fun (a, b) -> a ^ " .. " ^ b) gen) (fun (a, b) ->
      let c = String.compare a b in
      QCheck.assume (c <> 0);
      let lo, hi = if c < 0 then (a, b) else (b, a) in
      let m = Flex.between (Some lo) (Some hi) in
      Flex.is_valid_component m && String.compare lo m < 0 && String.compare m hi < 0)

let prop_between_iterated =
  (* repeatedly splitting the same interval must keep producing fresh keys *)
  QCheck.Test.make ~name:"between supports repeated splitting" ~count:50 QCheck.unit
    (fun () ->
      let rec go lo hi n =
        n = 0
        ||
        let m = Flex.between lo hi in
        (match lo with None -> true | Some l -> String.compare l m < 0)
        && (match hi with None -> true | Some h -> String.compare m h < 0)
        && go lo (Some m) (n - 1)
      in
      go (Some "b") (Some "c") 60)

let prop_sequence_between_compatible =
  QCheck.Test.make ~name:"sequence components admit between-insertion" ~count:20
    (QCheck.make ~print:string_of_int (QCheck.Gen.int_range 2 80)) (fun n ->
      let cs = Array.of_list (Flex.sequence n) in
      Array.for_all
        (fun i ->
          let m = Flex.between (Some cs.(i)) (Some cs.(i + 1)) in
          String.compare cs.(i) m < 0 && String.compare m cs.(i + 1) < 0)
        (Array.init (n - 1) Fun.id))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_compare_total_order; prop_encode_order_preserving; prop_ancestor_matches_range;
      prop_between; prop_between_iterated; prop_sequence_between_compatible ]

let suite =
  ( "flex",
    [ Alcotest.test_case "document order" `Quick test_document_order;
      Alcotest.test_case "component validity" `Quick test_component_validity;
      Alcotest.test_case "ancestry" `Quick test_ancestry;
      Alcotest.test_case "between basic" `Quick test_between_basic;
      Alcotest.test_case "sequence" `Quick test_sequence;
      Alcotest.test_case "bounds" `Quick test_bounds;
      Alcotest.test_case "serialization" `Quick test_serialization ]
    @ props )
