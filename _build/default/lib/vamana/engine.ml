module Store = Mass.Store

let log_src = Logs.Src.create "vamana.engine" ~doc:"VAMANA engine facade"

module Log = (val Logs.src_log log_src)

type result = {
  keys : Flex.t list;
  default_plan : Plan.op;
  executed_plan : Plan.op;
  optimizer : Optimizer.outcome option;
  compile_time : float;
  optimize_time : float;
  execute_time : float;
  io : Storage.Stats.t;
}

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let scope_of_context context = if Flex.depth context = 0 then None else Some (Flex.prefix context 1)

(* a top-level union evaluates as independent plans whose result sets
   merge; each branch is optimized separately *)
let rec union_branches (e : Xpath.Ast.expr) =
  match e with
  | Xpath.Ast.Binop (Xpath.Ast.Union, a, b) -> (
      match (union_branches a, union_branches b) with
      | Some xs, Some ys -> Some (xs @ ys)
      | _ -> None)
  | Xpath.Ast.Path p -> Some [ p ]
  | _ -> None

let compile_union src =
  match Xpath.Parser.parse src with
  | exception (Xpath.Parser.Error _ as exn) ->
      Error (Option.value ~default:"parse error" (Xpath.Parser.error_to_string exn))
  | ast -> (
      match union_branches ast with
      | Some paths -> Ok (List.map Compile.compile_path paths)
      | None -> Error "expression is not a location path or union of paths")

let query ?(optimize = true) store ~context src =
  match time (fun () -> Compile.compile_query src) with
  | Error _, _ -> (
      (* not a single path: try a union of paths *)
      match time (fun () -> compile_union src) with
      | Error msg, _ -> Error msg
      | Ok plans, compile_time ->
          let scope = scope_of_context context in
          let outcomes, optimize_time =
            if optimize then
              let os, t =
                time (fun () -> List.map (Optimizer.optimize store ~scope) plans)
              in
              (Some os, t)
            else (None, 0.0)
          in
          let executed =
            match outcomes with
            | Some os -> List.map (fun (o : Optimizer.outcome) -> o.Optimizer.plan) os
            | None -> plans
          in
          let io_before = Storage.Stats.copy (Store.io_stats store) in
          let keys, execute_time =
            time (fun () ->
                List.sort_uniq Flex.compare
                  (List.concat_map (fun p -> Exec.run store ~context p) executed))
          in
          let io = Storage.Stats.diff (Store.io_stats store) io_before in
          Ok
            { keys;
              default_plan = List.hd plans;
              executed_plan = List.hd executed;
              optimizer = Option.map List.hd outcomes;
              compile_time; optimize_time; execute_time; io })
  | Ok default_plan, compile_time ->
      let optimizer, optimize_time =
        if optimize then
          let o, t =
            time (fun () -> Optimizer.optimize store ~scope:(scope_of_context context) default_plan)
          in
          (Some o, t)
        else (None, 0.0)
      in
      let executed_plan =
        match optimizer with Some o -> o.Optimizer.plan | None -> default_plan
      in
      let io_before = Storage.Stats.copy (Store.io_stats store) in
      let keys, execute_time = time (fun () -> Exec.run store ~context executed_plan) in
      let io = Storage.Stats.diff (Store.io_stats store) io_before in
      Log.debug (fun m ->
          m "%s: %d results, compile %.3fms opt %.3fms exec %.3fms, %d page reads" src
            (List.length keys) (compile_time *. 1000.) (optimize_time *. 1000.)
            (execute_time *. 1000.) io.Storage.Stats.logical_reads);
      Ok
        { keys; default_plan; executed_plan; optimizer; compile_time; optimize_time;
          execute_time; io }

let query_doc ?optimize store doc src = query ?optimize store ~context:doc.Store.doc_key src

let query_store ?optimize store src =
  (* one pipeline per document; results concatenate in store order because
     document roots are ordered FLEX components *)
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | doc :: rest -> (
        match query_doc ?optimize store doc src with
        | Ok r -> go ((doc, r) :: acc) rest
        | Error _ as e -> e)
  in
  go [] (Store.documents store)

let eval store ~context src =
  match Xpath.Parser.parse src with
  | exception (Xpath.Parser.Error _ as exn) ->
      Error (Option.value ~default:"parse error" (Xpath.Parser.error_to_string exn))
  | ast -> (
      match Nav.E.eval store ~context ast with
      | v -> Ok v
      | exception Xpath.Eval.Unsupported msg -> Error msg)

let materialize store keys = List.filter_map (Store.get store) keys

let explain ?(optimize = true) store doc src =
  match Compile.compile_query src with
  | Error msg -> Error msg
  | Ok default_plan ->
      let scope = Some doc.Store.doc_key in
      let buf = Buffer.create 512 in
      let ppf = Format.formatter_of_buffer buf in
      let costed = Cost.estimate store ~scope default_plan in
      Format.fprintf ppf "Default plan:@.%a@." (Cost.pp_annotated costed) default_plan;
      (if optimize then begin
         let o = Optimizer.optimize store ~scope default_plan in
         List.iter
           (fun (t : Optimizer.trace_entry) ->
             Format.fprintf ppf "applied %s at %s: cost %d -> %d@." t.Optimizer.rule
               t.Optimizer.target t.Optimizer.cost_before t.Optimizer.cost_after)
           o.Optimizer.trace;
         Format.fprintf ppf "Optimized plan (%d iterations):@.%a@." o.Optimizer.iterations
           (Cost.pp_annotated o.Optimizer.cost) o.Optimizer.plan
       end);
      Format.pp_print_flush ppf ();
      Ok (Buffer.contents buf)
