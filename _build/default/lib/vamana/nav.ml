include Mass.Nav
