lib/vamana/plan.ml: Format List Option Printf String Xpath
