lib/vamana/nav.ml: Mass
