lib/vamana/optimizer.mli: Cost Flex Mass Plan Rewrite
