lib/vamana/engine.mli: Flex Mass Optimizer Plan Result Storage Xpath
