lib/vamana/compile.ml: Ast List Parser Plan Xpath
