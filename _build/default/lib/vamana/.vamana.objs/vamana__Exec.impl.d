lib/vamana/exec.ml: Ast Flex List Mass Nav Option Plan String Xpath
