lib/vamana/compile.mli: Plan Xpath
