lib/vamana/cost.mli: Flex Format Hashtbl Mass Plan Xpath
