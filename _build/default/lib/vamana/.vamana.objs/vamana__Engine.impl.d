lib/vamana/engine.ml: Buffer Compile Cost Exec Flex Format List Logs Mass Nav Optimizer Option Plan Storage Unix Xpath
