lib/vamana/frozen_stats.mli: Cost Mass
