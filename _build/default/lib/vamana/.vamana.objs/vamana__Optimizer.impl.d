lib/vamana/optimizer.ml: Cost List Logs Plan Rewrite
