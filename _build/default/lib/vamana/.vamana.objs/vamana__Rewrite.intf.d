lib/vamana/rewrite.mli: Plan
