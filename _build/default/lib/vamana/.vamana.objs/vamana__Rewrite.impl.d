lib/vamana/rewrite.ml: Ast List Plan String Xpath
