lib/vamana/frozen_stats.ml: Cost Hashtbl List Mass Option String Xpath
