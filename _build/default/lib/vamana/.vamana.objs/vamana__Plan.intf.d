lib/vamana/plan.mli: Format Xpath
