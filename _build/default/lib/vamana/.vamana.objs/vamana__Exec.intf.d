lib/vamana/exec.mli: Flex Mass Plan
