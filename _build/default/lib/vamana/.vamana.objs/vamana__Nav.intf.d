lib/vamana/nav.mli: Mass
