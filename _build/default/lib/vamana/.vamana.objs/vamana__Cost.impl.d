lib/vamana/cost.ml: Ast Flex Float Format Hashtbl List Mass Plan Printf String Xpath
