(** VAMANA engine facade: compile → (optionally) optimize → execute.

    Results are FLEX keys in document order without duplicates, plus the
    plans, cost annotations, optimizer trace, timings and buffer-pool I/O
    deltas — everything the benchmark harness reports. *)

type result = {
  keys : Flex.t list;  (** document order, duplicate-free *)
  default_plan : Plan.op;
  executed_plan : Plan.op;  (** = [default_plan] when optimization is off *)
  optimizer : Optimizer.outcome option;
  compile_time : float;  (** seconds *)
  optimize_time : float;
  execute_time : float;
  io : Storage.Stats.t;  (** I/O performed by execution only *)
}

val query :
  ?optimize:bool -> Mass.Store.t -> context:Flex.t -> string -> (result, string) Result.t
(** Run an XPath location path — or a union of location paths — rooted at
    [context] (normally a document key from {!Mass.Store.documents}).
    [optimize] defaults to [true] (the paper's VQP-OPT; pass [false] for
    VQP).  Union branches compile and optimize independently; for a union,
    the plan/optimizer fields report the first branch. *)

val query_doc :
  ?optimize:bool -> Mass.Store.t -> Mass.Store.doc -> string -> (result, string) Result.t

val query_store :
  ?optimize:bool ->
  Mass.Store.t ->
  string ->
  ((Mass.Store.doc * result) list, string) Result.t
(** Run the query against every document in the store (the paper's
    whole-database scope); per-document plans are optimized with
    per-document statistics. *)

val eval :
  Mass.Store.t -> context:Flex.t -> string -> (Flex.t Xpath.Eval.value, string) Result.t
(** Evaluate an arbitrary XPath expression (not necessarily a path)
    through the generic evaluator — e.g. [count(//person)]. *)

val materialize : Mass.Store.t -> Flex.t list -> Mass.Record.t list
(** Fetch the records for a result (data access, charged to the pool). *)

val explain : ?optimize:bool -> Mass.Store.t -> Mass.Store.doc -> string -> (string, string) Result.t
(** Cost-annotated plan rendering (paper Figures 6–9 style), including
    the optimizer trace. *)
