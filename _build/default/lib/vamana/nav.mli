(** Re-export of {!Mass.Nav}: the MASS-backed node space and generic
    evaluator used for fallback predicate evaluation. *)

include module type of Mass.Nav
