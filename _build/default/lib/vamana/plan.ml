type op = { id : int; kind : kind; context : op option; predicates : pred list }

and kind =
  | Root
  | Step of Xpath.Ast.axis * Xpath.Ast.node_test
  | Value_step of string * Xpath.Ast.node_test option
  | Step_generic of Xpath.Ast.step

and pred =
  | Exists of op
  | Binary of int * Xpath.Ast.binop * operand * operand
  | And of pred * pred
  | Or of pred * pred
  | Not of pred
  | Position of Xpath.Ast.binop * float
  | Generic of Xpath.Ast.expr

and operand =
  | Path_operand of op
  | Literal of int * string
  | Number_operand of float

let counter = ref 0

let fresh_id () =
  incr counter;
  !counter

let mk ?context ?(predicates = []) kind = { id = fresh_id (); kind; context; predicates }

let context_chain op =
  let rec go acc op = match op.context with None -> op :: acc | Some c -> go (op :: acc) c in
  List.rev (go [] op)

let rec leaf op = match op.context with None -> op | Some c -> leaf c

let rebuild_chain ops =
  match List.rev ops with
  | [] -> None
  | leaf :: rest ->
      let leaf = { leaf with context = None } in
      Some (List.fold_left (fun child parent -> { parent with context = Some child }) leaf rest)

let rec iter_ops f op =
  f op;
  (match op.context with Some c -> iter_ops f c | None -> ());
  List.iter (iter_pred f) op.predicates

and iter_pred f = function
  | Exists sub -> iter_ops f sub
  | Binary (_, _, a, b) ->
      iter_operand f a;
      iter_operand f b
  | And (a, b) | Or (a, b) ->
      iter_pred f a;
      iter_pred f b
  | Not p -> iter_pred f p
  | Position _ | Generic _ -> ()

and iter_operand f = function
  | Path_operand sub -> iter_ops f sub
  | Literal _ | Number_operand _ -> ()

let subtree_ops op =
  let acc = ref [] in
  iter_ops (fun o -> acc := o :: !acc) op;
  List.rev !acc

let binop_symbol (b : Xpath.Ast.binop) =
  match b with
  | Xpath.Ast.Eq -> "="
  | Xpath.Ast.Neq -> "!="
  | Xpath.Ast.Lt -> "<"
  | Xpath.Ast.Le -> "<="
  | Xpath.Ast.Gt -> ">"
  | Xpath.Ast.Ge -> ">="
  | Xpath.Ast.And -> "and"
  | Xpath.Ast.Or -> "or"
  | Xpath.Ast.Add -> "+"
  | Xpath.Ast.Sub -> "-"
  | Xpath.Ast.Mul -> "*"
  | Xpath.Ast.Div -> "div"
  | Xpath.Ast.Mod -> "mod"
  | Xpath.Ast.Union -> "|"

let kind_to_string op =
  match op.kind with
  | Root -> Printf.sprintf "R%d" op.id
  | Step (axis, test) ->
      Printf.sprintf "Φ%d %s::%s" op.id (Xpath.Ast.axis_name axis)
        (Xpath.Ast.node_test_to_string test)
  | Value_step (v, src) ->
      Printf.sprintf "Φ%d value::'%s'%s" op.id v
        (match src with
        | None -> ""
        | Some t -> Printf.sprintf " (source %s)" (Xpath.Ast.node_test_to_string t))
  | Step_generic s -> Printf.sprintf "Φ%d generic %s" op.id (Xpath.Ast.node_test_to_string s.Xpath.Ast.test)

let rec pp_op ppf ~indent op =
  let pad = String.make indent ' ' in
  Format.fprintf ppf "%s%s@," pad (kind_to_string op);
  List.iter (pp_pred ppf ~indent:(indent + 2)) op.predicates;
  match op.context with Some c -> pp_op ppf ~indent:(indent + 2) c | None -> ()

and pp_pred ppf ~indent pred =
  let pad = String.make indent ' ' in
  match pred with
  | Exists sub ->
      Format.fprintf ppf "%sξ exists@," pad;
      pp_op ppf ~indent:(indent + 2) sub
  | Binary (id, cond, a, b) ->
      Format.fprintf ppf "%sβ%d %s@," pad id (binop_symbol cond);
      pp_operand ppf ~indent:(indent + 2) a;
      pp_operand ppf ~indent:(indent + 2) b
  | And (a, b) ->
      Format.fprintf ppf "%sand@," pad;
      pp_pred ppf ~indent:(indent + 2) a;
      pp_pred ppf ~indent:(indent + 2) b
  | Or (a, b) ->
      Format.fprintf ppf "%sor@," pad;
      pp_pred ppf ~indent:(indent + 2) a;
      pp_pred ppf ~indent:(indent + 2) b
  | Not p ->
      Format.fprintf ppf "%snot@," pad;
      pp_pred ppf ~indent:(indent + 2) p
  | Position (cond, n) ->
      Format.fprintf ppf "%sposition() %s %s@," pad (binop_symbol cond)
        (Xpath.Ast.expr_to_string (Xpath.Ast.Number n))
  | Generic e -> Format.fprintf ppf "%s[%s]@," pad (Xpath.Ast.expr_to_string e)

and pp_operand ppf ~indent operand =
  let pad = String.make indent ' ' in
  match operand with
  | Path_operand sub -> pp_op ppf ~indent sub
  | Literal (id, v) -> Format.fprintf ppf "%sL%d '%s'@," pad id v
  | Number_operand f ->
      Format.fprintf ppf "%s%s@," pad (Xpath.Ast.expr_to_string (Xpath.Ast.Number f))

let pp ppf op =
  Format.fprintf ppf "@[<v>";
  pp_op ppf ~indent:0 op;
  Format.fprintf ppf "@]"

let to_string op = Format.asprintf "%a" pp op

let rec equal_structure a b =
  a.kind = b.kind
  && Option.equal equal_structure a.context b.context
  && List.equal equal_pred a.predicates b.predicates

and equal_pred p q =
  match (p, q) with
  | Exists a, Exists b -> equal_structure a b
  | Binary (_, c1, a1, b1), Binary (_, c2, a2, b2) ->
      c1 = c2 && equal_operand a1 a2 && equal_operand b1 b2
  | And (a1, b1), And (a2, b2) | Or (a1, b1), Or (a2, b2) ->
      equal_pred a1 a2 && equal_pred b1 b2
  | Not a, Not b -> equal_pred a b
  | Position (c1, n1), Position (c2, n2) -> c1 = c2 && n1 = n2
  | Generic e1, Generic e2 -> Xpath.Ast.equal_expr e1 e2
  | (Exists _ | Binary _ | And _ | Or _ | Not _ | Position _ | Generic _), _ -> false

and equal_operand a b =
  match (a, b) with
  | Path_operand x, Path_operand y -> equal_structure x y
  | Literal (_, v1), Literal (_, v2) -> String.equal v1 v2
  | Number_operand f1, Number_operand f2 -> f1 = f2
  | (Path_operand _ | Literal _ | Number_operand _), _ -> false
