(** A frozen statistics snapshot: the static data dictionary the paper
    argues against (§I, §II).

    [capture] copies every name-index and value-index count at a moment in
    time; the resulting {!Cost.statistics_source} keeps answering with
    those numbers no matter how the store changes afterwards, and — like a
    real dictionary/histogram — has no subtree granularity (scoped
    requests fall back to the global figure).  Feeding it to
    {!Optimizer.optimize} shows how estimate error grows under updates
    while the live index-backed source stays exact
    (`bench/main.exe staleness`). *)

type t

val capture : Mass.Store.t -> t
(** One sweep over both secondary indexes. *)

val source : t -> Cost.statistics_source

val age : t -> updates:int -> t
(** Bookkeeping helper: same statistics, recorded update count (for
    reporting only). *)

val update_count : t -> int
val distinct_names : t -> int
val distinct_values : t -> int
