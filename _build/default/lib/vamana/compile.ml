open Xpath

let rec uses_last (e : Ast.expr) =
  match e with
  | Ast.Call ("last", []) -> true
  | Ast.Call (_, args) -> List.exists uses_last args
  | Ast.Binop (_, a, b) -> uses_last a || uses_last b
  | Ast.Neg a -> uses_last a
  | Ast.Filter (a, preds) -> uses_last a || List.exists uses_last preds
  | Ast.Located (a, p) -> uses_last a || path_uses_last p
  | Ast.Path p -> path_uses_last p
  | Ast.Literal _ | Ast.Number _ | Ast.Var _ -> false

and path_uses_last p =
  List.exists (fun s -> List.exists uses_last s.Ast.predicates) p.Ast.steps

(* Any position()/last() use: predicates relying on these need the fully
   positional generic step evaluation unless they compile to the algebra's
   Position operator. *)
let rec uses_positional (e : Ast.expr) =
  match e with
  | Ast.Call (("last" | "position"), []) -> true
  | Ast.Call (_, args) -> List.exists uses_positional args
  | Ast.Binop (_, a, b) -> uses_positional a || uses_positional b
  | Ast.Neg a -> uses_positional a
  | Ast.Filter (a, preds) -> uses_positional a || List.exists uses_positional preds
  | Ast.Located (a, p) ->
      uses_positional a
      || List.exists (fun s -> List.exists uses_positional s.Ast.predicates) p.Ast.steps
  | Ast.Path p -> List.exists (fun s -> List.exists uses_positional s.Ast.predicates) p.Ast.steps
  | Ast.Literal _ | Ast.Number _ | Ast.Var _ -> false

(* ---- predicate compilation ---- *)

let rec compile_operand (e : Ast.expr) : Plan.operand option =
  match e with
  | Ast.Literal s -> Some (Plan.Literal (Plan.fresh_id (), s))
  | Ast.Number f -> Some (Plan.Number_operand f)
  | Ast.Path p when not p.Ast.absolute -> (
      match compile_relative p.Ast.steps with
      | Some op -> Some (Plan.Path_operand op)
      | None -> None)
  | _ -> None

and compile_predicate (e : Ast.expr) : Plan.pred =
  if uses_last e then Plan.Generic e
  else
    match e with
    | Ast.Number n -> Plan.Position (Ast.Eq, n)
    | Ast.Binop (((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as cmp), a, b) -> (
        match (a, b) with
        | Ast.Call ("position", []), Ast.Number n -> Plan.Position (cmp, n)
        | Ast.Number n, Ast.Call ("position", []) ->
            let flip : Ast.binop -> Ast.binop = function
              | Ast.Lt -> Ast.Gt
              | Ast.Le -> Ast.Ge
              | Ast.Gt -> Ast.Lt
              | Ast.Ge -> Ast.Le
              | other -> other
            in
            Plan.Position (flip cmp, n)
        | _ -> (
            match (compile_operand a, compile_operand b) with
            | Some oa, Some ob -> Plan.Binary (Plan.fresh_id (), cmp, oa, ob)
            | _ -> Plan.Generic e))
    | Ast.Binop (Ast.And, a, b) -> Plan.And (compile_predicate a, compile_predicate b)
    | Ast.Binop (Ast.Or, a, b) -> Plan.Or (compile_predicate a, compile_predicate b)
    | Ast.Call ("not", [ a ]) -> Plan.Not (compile_predicate a)
    | Ast.Path p when not p.Ast.absolute -> (
        match compile_relative p.Ast.steps with
        | Some op -> Plan.Exists op
        | None -> Plan.Generic e)
    | _ -> Plan.Generic e

(* A relative step chain compiles leaf-first: the first step is the chain
   leaf (it receives the outer context), the last step is the chain top. *)
and compile_step ?context (s : Ast.step) : Plan.op =
  if List.exists uses_last s.Ast.predicates then Plan.mk ?context (Plan.Step_generic s)
  else
    let predicates = List.map compile_predicate s.Ast.predicates in
    (* a positional expression that did not compile to the algebra's
       Position operator needs full positional semantics *)
    let needs_generic =
      List.exists
        (function Plan.Generic e -> uses_positional e | _ -> false)
        predicates
    in
    if needs_generic then Plan.mk ?context (Plan.Step_generic s)
    else Plan.mk ?context ~predicates (Plan.Step (s.Ast.axis, s.Ast.test))

and compile_relative steps : Plan.op option =
  List.fold_left (fun context s -> Some (compile_step ?context s)) None steps

let compile_path (p : Ast.path) =
  let chain = compile_relative p.Ast.steps in
  Plan.mk ?context:chain Plan.Root

let compile_query src =
  match Parser.parse src with
  | Ast.Path p -> Ok (compile_path p)
  | _ -> Error "expression is not a location path; use the generic evaluator"
  | exception (Parser.Error _ as exn) -> (
      match Parser.error_to_string exn with
      | Some msg -> Error msg
      | None -> Error "parse error")
