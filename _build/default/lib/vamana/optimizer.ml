let log_src = Logs.Src.create "vamana.optimizer" ~doc:"VAMANA cost-driven optimizer"

module Log = (val Logs.src_log log_src)

type trace_entry = {
  rule : string;
  target : string;
  cost_before : int;
  cost_after : int;
}

type outcome = {
  plan : Plan.op;
  iterations : int;
  trace : trace_entry list;
  cost : Cost.costed;
}

let max_iterations = 16

let optimize ?(rules = Rewrite.cost_rules) ?stats store ~scope plan =
  let plan = Rewrite.apply_cleanup plan in
  let rec loop plan iterations trace =
    if iterations >= max_iterations then finish plan iterations trace
    else begin
      let costed = Cost.estimate ?stats store ~scope plan in
      let current_cost = Cost.total_output costed plan in
      let ordered = Cost.ordered_by_selectivity costed plan in
      (* most selective operator first; first admissible rewrite wins *)
      let candidate =
        List.fold_left
          (fun acc ((op : Plan.op), _) ->
            match acc with
            | Some _ -> acc
            | None ->
                List.fold_left
                  (fun acc (rule : Rewrite.rule) ->
                    match acc with
                    | Some _ -> acc
                    | None -> (
                        match rule.Rewrite.apply plan ~target:op.Plan.id with
                        | None -> None
                        | Some plan' ->
                            let plan' = Rewrite.apply_cleanup plan' in
                            let costed' = Cost.estimate ?stats store ~scope plan' in
                            let cost' = Cost.total_output costed' plan' in
                            if cost' <= current_cost then
                              Some
                                ( plan',
                                  { rule = rule.Rewrite.name;
                                    target = Plan.kind_to_string op;
                                    cost_before = current_cost;
                                    cost_after = cost' } )
                            else None))
                  None rules)
          None ordered
      in
      match candidate with
      | Some (plan', entry) ->
          Log.debug (fun m ->
              m "applied %s at %s: cost %d -> %d" entry.rule entry.target entry.cost_before
                entry.cost_after);
          loop plan' (iterations + 1) (entry :: trace)
      | None -> finish plan iterations trace
    end
  and finish plan iterations trace =
    { plan; iterations; trace = List.rev trace; cost = Cost.estimate ?stats store ~scope plan }
  in
  loop plan 0 []
