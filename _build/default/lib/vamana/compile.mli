(** XPath AST → default VAMANA physical plan (paper §IV-A, Figure 4).

    Each location step maps to exactly one step operator; the first step
    becomes the context-chain leaf and the plan is topped with the root
    operator.  Predicate expressions compile to the specialized predicate
    operators where the algebra has them (existence paths, binary
    comparisons against literals, positional filters) and to [Generic]
    evaluator calls otherwise.  Steps using [last()] compile to
    [Step_generic] so that full positional semantics are preserved. *)

val compile_path : Xpath.Ast.path -> Plan.op
(** Build the default plan for a location path.  The returned operator is
    the plan root ([R]). *)

val compile_query : string -> (Plan.op, string) result
(** Parse and compile; [Error] carries a human-readable message.  Only
    plain location paths compile to plans — other expressions must go
    through the generic evaluator ({!Nav.E.eval}). *)

val uses_last : Xpath.Ast.expr -> bool
(** Whether an expression depends on [last()] (forces generic step
    evaluation). *)

val uses_positional : Xpath.Ast.expr -> bool
(** Whether an expression depends on [position()] or [last()]. *)
