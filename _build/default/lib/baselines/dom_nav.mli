(** Textbook DOM navigation: the XPath axes defined directly over the
    in-memory {!Xml.Tree} model.

    This is the reference semantics — the specification each index-based
    cursor implementation is tested against — and the traversal core of
    the Jaxen-like DOM baseline engine. *)

val principal_kind : Xpath.Ast.axis -> [ `Element | `Attribute ]

val matches_test :
  principal:[ `Element | `Attribute ] -> Xpath.Ast.node_test -> Xml.Tree.node -> bool

val axis_nodes : Xpath.Ast.axis -> Xml.Tree.node -> Xml.Tree.node list
(** All nodes on the axis from the context node, in axis order (document
    order for forward axes, reverse document order / proximity order for
    reverse axes).  Attribute and namespace nodes appear only on their own
    axes, per the XPath data model. *)

val select : Xpath.Ast.axis -> Xpath.Ast.node_test -> Xml.Tree.node -> Xml.Tree.node list
(** {!axis_nodes} filtered by the node test. *)
