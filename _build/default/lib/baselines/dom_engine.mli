(** DOM-traversal baseline (the paper's Jaxen stand-in).

    Loads the whole document into an in-memory DOM and evaluates queries
    by top-down tree traversal through the generic evaluator over
    {!Dom_nav}.  Faithful to the class of engines the paper compares
    against: complete XPath semantics, no indexes, and a hard memory
    wall — the engine refuses documents above its node budget, mirroring
    "Jaxen does not support large XML documents of sizes >= 10Mb". *)

exception Document_too_large of { nodes : int; budget : int }

type t

val default_node_budget : int
(** ≈ the node count of a 10 MB XMark document. *)

val create : ?node_budget:int -> Xml.Tree.t -> t
(** @raise Document_too_large if the document exceeds the budget. *)

val query : t -> string -> (Xml.Tree.node list, string) result
(** Evaluate an XPath location path; document order, duplicate-free. *)

val query_ranks : t -> string -> (int list, string) result
(** Results as preorder ids (comparable across engines). *)

val eval : t -> string -> (Xml.Tree.node Xpath.Eval.value, string) result
