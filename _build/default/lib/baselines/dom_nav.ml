open Xml

let principal_kind = function
  | Xpath.Ast.Attribute -> `Attribute
  | Xpath.Ast.Child | Xpath.Ast.Descendant | Xpath.Ast.Descendant_or_self | Xpath.Ast.Parent
  | Xpath.Ast.Ancestor | Xpath.Ast.Ancestor_or_self | Xpath.Ast.Following
  | Xpath.Ast.Following_sibling | Xpath.Ast.Preceding | Xpath.Ast.Preceding_sibling
  | Xpath.Ast.Self | Xpath.Ast.Namespace ->
      `Element

let matches_test ~principal test (n : Tree.node) =
  match test with
  | Xpath.Ast.Name_test name -> (
      match (principal, n.Tree.kind) with
      | `Element, Tree.Element en -> String.equal en name
      | `Attribute, Tree.Attribute (an, _) -> String.equal an name
      | _ -> false)
  | Xpath.Ast.Wildcard -> (
      match (principal, n.Tree.kind) with
      | `Element, Tree.Element _ | `Attribute, Tree.Attribute _ -> true
      | _ -> false)
  | Xpath.Ast.Text_test -> Tree.is_text n
  | Xpath.Ast.Comment_test -> ( match n.Tree.kind with Tree.Comment _ -> true | _ -> false)
  | Xpath.Ast.Node_test -> true
  | Xpath.Ast.Pi_test target -> (
      match n.Tree.kind with
      | Tree.Pi (t, _) -> ( match target with None -> true | Some x -> String.equal t x)
      | _ -> false)

let children n = Array.to_list n.Tree.children

let rec descendants n =
  List.concat_map (fun c -> c :: descendants c) (children n)

let ancestors n =
  let rec go acc = function
    | Some p -> go (p :: acc) p.Tree.parent
    | None -> acc
  in
  (* proximity order: nearest first *)
  List.rev (go [] n.Tree.parent)

let document_of n =
  let rec go m = match m.Tree.parent with Some p -> go p | None -> m in
  go n

(* Preorder ids are contiguous within a subtree (attributes are numbered
   between their element and its children), so the subtree occupies the id
   range [n.id, subtree_max n]. *)
let rec subtree_max n =
  Array.fold_left
    (fun acc c -> max acc (subtree_max c))
    (Array.fold_left (fun acc a -> max acc a.Tree.id) n.Tree.id n.Tree.attributes)
    n.Tree.children

let siblings_after n =
  if Tree.is_attribute n then []
  else
    match n.Tree.parent with
    | None -> []
    | Some p -> List.filter (fun s -> s.Tree.id > n.Tree.id) (children p)

let siblings_before n =
  if Tree.is_attribute n then []
  else
    match n.Tree.parent with
    | None -> []
    | Some p ->
        (* reverse document order: nearest sibling first *)
        List.rev (List.filter (fun s -> s.Tree.id < n.Tree.id) (children p))

let following n =
  let doc = document_of n in
  let last = subtree_max n in
  Tree.fold_preorder
    (fun acc m -> if m.Tree.id > last && not (Tree.is_attribute m) then m :: acc else acc)
    [] doc
  |> List.rev

let preceding n =
  let doc = document_of n in
  let anc = List.map (fun a -> a.Tree.id) (ancestors n) in
  (* reverse document order *)
  Tree.fold_preorder
    (fun acc m ->
      if m.Tree.id < n.Tree.id && (not (Tree.is_attribute m)) && not (List.mem m.Tree.id anc)
      then m :: acc
      else acc)
    [] doc

let axis_nodes (axis : Xpath.Ast.axis) n =
  match axis with
  | Xpath.Ast.Self -> [ n ]
  | Xpath.Ast.Child -> children n
  | Xpath.Ast.Descendant -> descendants n
  | Xpath.Ast.Descendant_or_self -> n :: descendants n
  | Xpath.Ast.Parent -> ( match n.Tree.parent with Some p -> [ p ] | None -> [])
  | Xpath.Ast.Ancestor -> ancestors n
  | Xpath.Ast.Ancestor_or_self -> n :: ancestors n
  | Xpath.Ast.Following -> following n
  | Xpath.Ast.Preceding -> preceding n
  | Xpath.Ast.Following_sibling -> siblings_after n
  | Xpath.Ast.Preceding_sibling -> siblings_before n
  | Xpath.Ast.Attribute -> Array.to_list n.Tree.attributes
  | Xpath.Ast.Namespace -> []

let select axis test n =
  let principal = principal_kind axis in
  List.filter (matches_test ~principal test) (axis_nodes axis n)
