lib/baselines/scan_engine.ml: Array Ast Flex Hashtbl List Mass Option Parser Result Xpath
