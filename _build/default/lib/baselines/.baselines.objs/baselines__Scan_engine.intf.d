lib/baselines/scan_engine.mli: Flex Mass
