lib/baselines/dom_nav.ml: Array List String Tree Xml Xpath
