lib/baselines/join_engine.mli: Flex Mass
