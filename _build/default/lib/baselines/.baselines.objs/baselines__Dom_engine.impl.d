lib/baselines/dom_engine.ml: Dom_nav List Option Result Xml Xpath
