lib/baselines/join_engine.ml: Ast Flex Hashtbl List Mass Option Parser Printf Result Xpath
