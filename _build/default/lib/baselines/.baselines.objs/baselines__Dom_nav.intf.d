lib/baselines/dom_nav.mli: Xml Xpath
