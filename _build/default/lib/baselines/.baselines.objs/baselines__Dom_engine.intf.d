lib/baselines/dom_engine.mli: Xml Xpath
