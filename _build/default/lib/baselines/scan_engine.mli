(** Sequential-scan baseline (the paper's Galax stand-in).

    Evaluates each location step with one full clustered scan of the
    document, testing every record's structural relation to the context
    set by key arithmetic; predicate sub-expressions are themselves
    evaluated by per-candidate scans.  No secondary index is ever used,
    so the engine is complete on its supported surface but degrades
    steeply with document size — the profile the paper measures for
    Galax.

    Limitation (documented in DESIGN.md): positional predicates ([n],
    [position()], [last()]) are rejected — set-at-a-time scanning has no
    per-context tuple order. *)

type t

val create : Mass.Store.t -> Mass.Store.doc -> t

val query : t -> string -> (Flex.t list, string) result
(** Document order, duplicate-free. *)

val query_ranks : t -> string -> (int list, string) result
(** Results as within-document preorder positions. *)
