module Store = Mass.Store
module Record = Mass.Record
open Xpath

exception Unsupported of string
exception Document_too_large of { records : int; cap : int }

type t = { store : Store.t; doc : Store.doc }

let default_record_cap = 1_200_000

let create ?(record_cap = default_record_cap) store doc =
  let records = Store.subtree_size store doc.Store.doc_key in
  if records > record_cap then raise (Document_too_large { records; cap = record_cap });
  { store; doc }

(* ---- posting lists ----

   One name-index range scan per (document, node test): the access path
   eXist's path joins are built on. *)

let posting t (axis : Ast.axis) (test : Ast.node_test) =
  let principal = match axis with Ast.Attribute -> Record.Attribute | _ -> Record.Element in
  let cursor = Store.test_cursor ~scope:t.doc.Store.doc_key t.store ~principal test in
  let rec go acc = match cursor () with Some k -> go (k :: acc) | None -> List.rev acc in
  go []

(* ---- structural joins ---- *)

let to_set keys =
  let h = Hashtbl.create (List.length keys * 2) in
  List.iter (fun k -> Hashtbl.replace h (Flex.encode k) ()) keys;
  h

let mem set k = Hashtbl.mem set (Flex.encode k)

let prefix_in set k ~or_self =
  let d = Flex.depth k in
  let stop = if or_self then d else d - 1 in
  let rec go i = i <= stop && (mem set (Flex.prefix k i) || go (i + 1)) in
  (* prefixes at every depth, self included when [or_self] *)
  go 0

let step_join t ctx_keys (s : Ast.step) =
  let axis = s.Ast.axis in
  let test = s.Ast.test in
  match axis with
  | Ast.Following | Ast.Preceding | Ast.Following_sibling | Ast.Preceding_sibling
  | Ast.Namespace ->
      raise
        (Unsupported
           (Printf.sprintf "join engine: axis %s is not supported" (Ast.axis_name axis)))
  | Ast.Child | Ast.Descendant | Ast.Descendant_or_self | Ast.Attribute ->
      let ctx = to_set ctx_keys in
      let postings = posting t axis test in
      List.filter
        (fun k ->
          match axis with
          | Ast.Child | Ast.Attribute -> (
              match Flex.parent k with Some p -> mem ctx p | None -> false)
          | Ast.Descendant -> prefix_in ctx k ~or_self:false
          | Ast.Descendant_or_self -> prefix_in ctx k ~or_self:true
          | _ -> assert false)
        postings
  | Ast.Self | Ast.Parent | Ast.Ancestor | Ast.Ancestor_or_self ->
      (* derive candidate keys from the context set, then check the node
         test against the stored record *)
      let principal = Record.Element in
      let candidates =
        match axis with
        | Ast.Self -> ctx_keys
        | Ast.Parent -> List.filter_map Flex.parent ctx_keys
        | Ast.Ancestor ->
            List.concat_map
              (fun k -> List.init (Flex.depth k) (fun i -> Flex.prefix k i))
              ctx_keys
        | Ast.Ancestor_or_self ->
            List.concat_map
              (fun k -> List.init (Flex.depth k + 1) (fun i -> Flex.prefix k i))
              ctx_keys
        | _ -> assert false
      in
      let candidates = List.sort_uniq Flex.compare candidates in
      List.filter
        (fun k ->
          Flex.depth k > 0
          &&
          match Store.get t.store k with
          | Some r -> Record.matches_test ~principal test r
          | None -> false)
        candidates

(* value predicates: per-candidate tree traversal over stored records —
   the paper's "eXist has to switch back to a tree traversal algorithm
   for predicate evaluation" *)
let eval_predicate t candidate pred =
  match Mass.Nav.E.eval t.store ~context:candidate pred with
  | v -> Mass.Nav.E.to_boolean t.store v

let apply_predicates t keys preds =
  List.filter (fun k -> List.for_all (eval_predicate t k) preds) keys

let rec positional (e : Ast.expr) =
  match e with
  | Ast.Number _ -> true
  | Ast.Call (("position" | "last"), []) -> true
  | Ast.Call (_, args) -> List.exists positional args
  | Ast.Binop (_, a, b) -> positional a || positional b
  | Ast.Neg a -> positional a
  | Ast.Filter (a, preds) -> positional a || List.exists positional preds
  | Ast.Located (a, p) -> positional a || List.exists step_positional p.Ast.steps
  | Ast.Path p -> List.exists step_positional p.Ast.steps
  | Ast.Literal _ | Ast.Var _ -> false

and step_positional s = List.exists positional s.Ast.predicates

let query t src =
  match Parser.parse src with
  | exception (Parser.Error _ as exn) ->
      Error (Option.value ~default:"parse error" (Parser.error_to_string exn))
  | Ast.Path p -> (
      if List.exists step_positional p.Ast.steps then
        Error "join engine: positional predicates are not supported"
      else
        try
          let result =
            List.fold_left
              (fun ctxs s ->
                let joined = step_join t ctxs s in
                apply_predicates t joined s.Ast.predicates)
              [ t.doc.Store.doc_key ] p.Ast.steps
          in
          Ok (List.sort_uniq Flex.compare result)
        with Unsupported msg -> Error msg)
  | _ -> Error "join engine: only location paths are supported"

let query_ranks t src =
  Result.map (List.map (Store.document_rank t.store)) (query t src)
