module Store = Mass.Store
module Record = Mass.Record
open Xpath

type t = { store : Store.t; doc : Store.doc }

let create store doc = { store; doc }

(* ---- positional-predicate detection ---- *)

let rec expr_positional (e : Ast.expr) =
  match e with
  | Ast.Number _ -> false (* positional only in predicate position; checked there *)
  | Ast.Call (("position" | "last"), []) -> true
  | Ast.Call (_, args) -> List.exists expr_positional args
  | Ast.Binop (_, a, b) -> expr_positional a || expr_positional b
  | Ast.Neg a -> expr_positional a
  | Ast.Filter (a, preds) ->
      expr_positional a || List.exists predicate_positional preds
  | Ast.Located (a, p) -> expr_positional a || path_positional p
  | Ast.Path p -> path_positional p
  | Ast.Literal _ | Ast.Var _ -> false

and predicate_positional (e : Ast.expr) =
  match e with Ast.Number _ -> true | _ -> expr_positional e

and path_positional (p : Ast.path) =
  List.exists (fun s -> List.exists predicate_positional s.Ast.predicates) p.Ast.steps

(* ---- structural relations by key arithmetic ---- *)

(* context sets with the auxiliary structures used for O(log)/O(1)
   relation checks during a scan *)
type ctxset = {
  sorted : Flex.t array;
  members : (string, unit) Hashtbl.t;
  parents : (string, unit) Hashtbl.t;
  (* parent key -> (min, max) non-attribute context child under it *)
  sibling_groups : (string, Flex.t * Flex.t) Hashtbl.t;
}

let encode = Flex.encode

let build_ctxset store keys =
  let sorted = Array.of_list keys in
  let members = Hashtbl.create (Array.length sorted * 2) in
  let parents = Hashtbl.create (Array.length sorted * 2) in
  let sibling_groups = Hashtbl.create 16 in
  Array.iter
    (fun k ->
      Hashtbl.replace members (encode k) ();
      match Flex.parent k with
      | Some p -> (
          Hashtbl.replace parents (encode p) ();
          let is_attr =
            match Store.get store k with
            | Some { Record.kind = Record.Attribute; _ } -> true
            | _ -> false
          in
          if not is_attr then
            let ep = encode p in
            match Hashtbl.find_opt sibling_groups ep with
            | None -> Hashtbl.replace sibling_groups ep (k, k)
            | Some (lo, hi) ->
                let lo = if Flex.compare k lo < 0 then k else lo in
                let hi = if Flex.compare k hi > 0 then k else hi in
                Hashtbl.replace sibling_groups ep (lo, hi))
      | None -> ())
    sorted;
  { sorted; members; parents; sibling_groups }

let mem cs k = Hashtbl.mem cs.members (encode k)

let proper_prefix_in cs k =
  let d = Flex.depth k in
  let rec go i = i < d && (mem cs (Flex.prefix k i) || go (i + 1)) in
  go 0

let count_prefixes_in cs k =
  let d = Flex.depth k in
  let n = ref 0 in
  for i = 0 to d - 1 do
    if mem cs (Flex.prefix k i) then incr n
  done;
  !n

(* number of context keys strictly before k in document order *)
let rank_lt cs k =
  let lo = ref 0 and hi = ref (Array.length cs.sorted) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Flex.compare cs.sorted.(mid) k < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let count_in_subtree cs k =
  (* contexts in [k, end of subtree(k)) *)
  let lo, hi = Flex.subtree_range k in
  let first =
    let a = ref 0 and b = ref (Array.length cs.sorted) in
    while !a < !b do
      let mid = (!a + !b) / 2 in
      if Flex.bound_compare_key lo cs.sorted.(mid) > 0 then a := mid + 1 else b := mid
    done;
    !a
  in
  let rec count i n =
    if i < Array.length cs.sorted && Flex.bound_compare_key hi cs.sorted.(i) > 0 then
      count (i + 1) (n + 1)
    else n
  in
  count first 0

let first_ctx_after cs k =
  let i = rank_lt cs k in
  let i = if i < Array.length cs.sorted && Flex.equal cs.sorted.(i) k then i + 1 else i in
  if i < Array.length cs.sorted then Some cs.sorted.(i) else None

(* Is record (k, r) on [axis] of at least one context in [cs]? *)
let related cs (axis : Ast.axis) k (r : Record.t) =
  let non_attr = r.Record.kind <> Record.Attribute in
  match axis with
  | Ast.Self -> mem cs k
  | Ast.Child -> (
      non_attr && match Flex.parent k with Some p -> mem cs p | None -> false)
  | Ast.Attribute -> (
      r.Record.kind = Record.Attribute
      && match Flex.parent k with Some p -> mem cs p | None -> false)
  | Ast.Descendant -> non_attr && proper_prefix_in cs k
  | Ast.Descendant_or_self -> mem cs k || (non_attr && proper_prefix_in cs k)
  | Ast.Parent -> Hashtbl.mem cs.parents (encode k)
  | Ast.Ancestor -> (
      match first_ctx_after cs k with
      | Some c -> Flex.is_ancestor k c
      | None -> false)
  | Ast.Ancestor_or_self -> (
      mem cs k
      || match first_ctx_after cs k with Some c -> Flex.is_ancestor k c | None -> false)
  | Ast.Following -> non_attr && rank_lt cs k > count_prefixes_in cs k
  | Ast.Preceding -> non_attr && Array.length cs.sorted - rank_lt cs k > count_in_subtree cs k
  | Ast.Following_sibling -> (
      non_attr
      && match Flex.parent k with
         | Some p -> (
             match Hashtbl.find_opt cs.sibling_groups (encode p) with
             | Some (lo, _) -> Flex.compare lo k < 0
             | None -> false)
         | None -> false)
  | Ast.Preceding_sibling -> (
      non_attr
      && match Flex.parent k with
         | Some p -> (
             match Hashtbl.find_opt cs.sibling_groups (encode p) with
             | Some (_, hi) -> Flex.compare hi k > 0
             | None -> false)
         | None -> false)
  | Ast.Namespace -> false

(* ---- per-context node space for predicate evaluation ----

   select = one full scan per call: the no-index strawman. *)

let single_related ctx (axis : Ast.axis) k (r : Record.t) =
  let non_attr = r.Record.kind <> Record.Attribute in
  match axis with
  | Ast.Self -> Flex.equal k ctx
  | Ast.Child -> (
      non_attr && match Flex.parent k with Some p -> Flex.equal p ctx | None -> false)
  | Ast.Attribute -> (
      r.Record.kind = Record.Attribute
      && match Flex.parent k with Some p -> Flex.equal p ctx | None -> false)
  | Ast.Descendant -> non_attr && Flex.is_ancestor ctx k
  | Ast.Descendant_or_self -> Flex.equal k ctx || (non_attr && Flex.is_ancestor ctx k)
  | Ast.Parent -> ( match Flex.parent ctx with Some p -> Flex.equal p k | None -> false)
  | Ast.Ancestor -> Flex.is_ancestor k ctx
  | Ast.Ancestor_or_self -> Flex.equal k ctx || Flex.is_ancestor k ctx
  | Ast.Following -> non_attr && Flex.compare k ctx > 0 && not (Flex.is_ancestor ctx k)
  | Ast.Preceding -> non_attr && Flex.compare k ctx < 0 && not (Flex.is_ancestor k ctx)
  | Ast.Following_sibling | Ast.Preceding_sibling -> (
      non_attr
      &&
      match (Flex.parent k, Flex.parent ctx) with
      | Some pk, Some pc ->
          Flex.equal pk pc
          && (if axis = Ast.Following_sibling then Flex.compare k ctx > 0
              else Flex.compare k ctx < 0)
          && not (Flex.equal k ctx)
      | _ -> false)
  | Ast.Namespace -> false

module Space = struct
  type nonrec t = t
  type node = Flex.t

  let compare = Flex.compare

  let select t axis test ctx =
    (* attribute/sibling special case: attributes have no siblings *)
    let ctx_is_attr =
      match Store.get t.store ctx with
      | Some { Record.kind = Record.Attribute; _ } -> true
      | _ -> false
    in
    if ctx_is_attr && (axis = Ast.Following_sibling || axis = Ast.Preceding_sibling) then []
    else begin
      let principal =
        match axis with Ast.Attribute -> Record.Attribute | _ -> Record.Element
      in
      let out =
        Store.fold_document t.store t.doc
          (fun acc k r ->
            if single_related ctx axis k r && Record.matches_test ~principal test r then
              k :: acc
            else acc)
          []
      in
      if Ast.is_reverse_axis axis then out else List.rev out
    end

  let string_value t k = Store.string_value t.store k

  let name t k =
    match Store.get t.store k with Some r -> r.Record.name | None -> ""
end

module E = Xpath.Eval.Make (Space)

(* ---- set-at-a-time path evaluation ---- *)

let eval_step t ctx_keys (s : Ast.step) =
  let cs = build_ctxset t.store ctx_keys in
  let principal =
    match s.Ast.axis with Ast.Attribute -> Record.Attribute | _ -> Record.Element
  in
  (* handle sibling axes on attribute contexts: exclude attribute context
     keys from sibling groups happens in build_ctxset already *)
  let matches =
    Store.fold_document t.store t.doc
      (fun acc k r ->
        if related cs s.Ast.axis k r && Record.matches_test ~principal s.Ast.test r then
          k :: acc
        else acc)
      []
    |> List.rev
  in
  (* non-positional predicates: evaluate per candidate *)
  List.filter
    (fun k ->
      List.for_all
        (fun pred ->
          match E.eval t ~context:k pred with
          | v -> E.to_boolean t v)
        s.Ast.predicates)
    matches

let query t src =
  match Parser.parse src with
  | exception (Parser.Error _ as exn) ->
      Error (Option.value ~default:"parse error" (Parser.error_to_string exn))
  | Ast.Path p ->
      if path_positional p then
        Error "scan engine: positional predicates are not supported"
      else
        let start = [ t.doc.Store.doc_key ] in
        let result =
          List.fold_left (fun ctxs s -> eval_step t ctxs s) start p.Ast.steps
        in
        Ok result
  | _ -> Error "scan engine: only location paths are supported"

let query_ranks t src =
  Result.map (List.map (Store.document_rank t.store)) (query t src)
