exception Document_too_large of { nodes : int; budget : int }

module Space = struct
  type t = unit
  type node = Xml.Tree.node

  let compare = Xml.Tree.doc_order_compare
  let select () axis test n = Dom_nav.select axis test n
  let string_value () n = Xml.Tree.string_value n
  let name () n = Xml.Tree.name n
end

module E = Xpath.Eval.Make (Space)

type t = { doc : Xml.Tree.t }

(* a 10 MB XMark document holds roughly 170k elements plus text and
   attribute nodes *)
let default_node_budget = 500_000

let create ?(node_budget = default_node_budget) doc =
  let nodes = Xml.Tree.node_count doc in
  if nodes > node_budget then raise (Document_too_large { nodes; budget = node_budget });
  { doc }

let query t src =
  match Xpath.Parser.parse src with
  | exception (Xpath.Parser.Error _ as exn) ->
      Error (Option.value ~default:"parse error" (Xpath.Parser.error_to_string exn))
  | ast -> (
      match E.eval () ~context:t.doc ast with
      | Xpath.Eval.Nodes ns -> Ok ns
      | _ -> Error "expression is not a node-set query"
      | exception Xpath.Eval.Unsupported msg -> Error msg)

let query_ranks t src =
  Result.map (List.map (fun (n : Xml.Tree.node) -> n.Xml.Tree.id)) (query t src)

let eval t src =
  match Xpath.Parser.parse src with
  | exception (Xpath.Parser.Error _ as exn) ->
      Error (Option.value ~default:"parse error" (Xpath.Parser.error_to_string exn))
  | ast -> (
      match E.eval () ~context:t.doc ast with
      | v -> Ok v
      | exception Xpath.Eval.Unsupported msg -> Error msg)
