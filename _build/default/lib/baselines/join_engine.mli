(** Structural-join baseline (the paper's eXist stand-in).

    Evaluates location steps set-at-a-time: the name index supplies the
    full posting list for the step's node test, which is then joined
    structurally (by FLEX-key containment/parenthood) with the context
    set.  Value predicates fall back to per-candidate tree traversal over
    stored records — the penalty the paper measures on Q5.  Mirroring the
    paper's observations about eXist:

    - sibling and following/preceding axes raise {!Unsupported}
      ("eXist currently fails to execute all XPath axes like
      following-sibling, previous-sibling");
    - positional predicates raise {!Unsupported};
    - documents above the record cap are refused
      ("eXist is unable to store large complex documents >= 20Mb"). *)

exception Unsupported of string
exception Document_too_large of { records : int; cap : int }

type t

val default_record_cap : int
(** ≈ the record count of a 20 MB XMark document. *)

val create : ?record_cap:int -> Mass.Store.t -> Mass.Store.doc -> t
(** @raise Document_too_large when the document exceeds the cap. *)

val query : t -> string -> (Flex.t list, string) result
(** Document order, duplicate-free.  Unsupported features are reported as
    [Error]. *)

val query_ranks : t -> string -> (int list, string) result
