type kind =
  | Document
  | Element of string
  | Attribute of string * string
  | Text of string
  | Comment of string
  | Pi of string * string

type node = {
  id : int;
  kind : kind;
  mutable parent : node option;
  mutable children : node array;
  mutable attributes : node array;
}

type t = node

type spec =
  | E of string * (string * string) list * spec list
  | D of string
  | Cm of string
  | Proc of string * string

let mk id kind = { id; kind; parent = None; children = [||]; attributes = [||] }

let document roots =
  let counter = ref 0 in
  let next () =
    let id = !counter in
    incr counter;
    id
  in
  let rec build spec =
    match spec with
    | D s -> mk (next ()) (Text s)
    | Cm s -> mk (next ()) (Comment s)
    | Proc (t, d) -> mk (next ()) (Pi (t, d))
    | E (name, attrs, children) ->
        let n = mk (next ()) (Element name) in
        let seen = Hashtbl.create 4 in
        let attr_nodes =
          List.map
            (fun (an, av) ->
              if Hashtbl.mem seen an then
                invalid_arg (Printf.sprintf "Tree.document: duplicate attribute %S" an);
              Hashtbl.add seen an ();
              let a = mk (next ()) (Attribute (an, av)) in
              a.parent <- Some n;
              a)
            attrs
        in
        n.attributes <- Array.of_list attr_nodes;
        let child_nodes = List.map build children in
        List.iter (fun c -> c.parent <- Some n) child_nodes;
        n.children <- Array.of_list child_nodes;
        n
  in
  let doc = mk (next ()) Document in
  let elements =
    List.filter (function E _ -> true | _ -> false) roots
  in
  (match elements with
  | [ _ ] -> ()
  | [] -> invalid_arg "Tree.document: no root element"
  | _ -> invalid_arg "Tree.document: multiple root elements");
  List.iter
    (function
      | D _ -> invalid_arg "Tree.document: character data at top level"
      | E _ | Cm _ | Proc _ -> ())
    roots;
  let children = List.map build roots in
  List.iter (fun c -> c.parent <- Some doc) children;
  doc.children <- Array.of_list children;
  doc

let rec element_spec n =
  match n.kind with
  | Document -> (
      match Array.to_list n.children with
      | [ c ] -> element_spec c
      | cs -> (
          match List.find_opt (fun c -> match c.kind with Element _ -> true | _ -> false) cs with
          | Some c -> element_spec c
          | None -> invalid_arg "Tree.element_spec: empty document"))
  | Element name ->
      let attrs =
        Array.to_list n.attributes
        |> List.map (fun a ->
               match a.kind with
               | Attribute (an, av) -> (an, av)
               | _ -> assert false)
      in
      E (name, attrs, List.map element_spec (Array.to_list n.children))
  | Text s -> D s
  | Comment s -> Cm s
  | Pi (t, d) -> Proc (t, d)
  | Attribute _ -> invalid_arg "Tree.element_spec: attribute node"

let name n =
  match n.kind with
  | Element s | Pi (s, _) -> s
  | Attribute (s, _) -> s
  | Document | Text _ | Comment _ -> ""

let string_value n =
  match n.kind with
  | Text s | Comment s -> s
  | Attribute (_, v) -> v
  | Pi (_, d) -> d
  | Document | Element _ ->
      let buf = Buffer.create 16 in
      let rec go n =
        match n.kind with
        | Text s -> Buffer.add_string buf s
        | Element _ | Document -> Array.iter go n.children
        | Attribute _ | Comment _ | Pi _ -> ()
      in
      go n;
      Buffer.contents buf

let root_element doc =
  match doc.kind with
  | Document -> (
      let is_elt c = match c.kind with Element _ -> true | _ -> false in
      match Array.to_list doc.children |> List.find_opt is_elt with
      | Some e -> e
      | None -> invalid_arg "Tree.root_element: no root element")
  | Element _ | Attribute _ | Text _ | Comment _ | Pi _ ->
      invalid_arg "Tree.root_element: not a document node"

let is_element n = match n.kind with Element _ -> true | _ -> false
let is_text n = match n.kind with Text _ -> true | _ -> false
let is_attribute n = match n.kind with Attribute _ -> true | _ -> false
let doc_order_compare a b = Int.compare a.id b.id

let iter_preorder f doc =
  let rec go n =
    f n;
    Array.iter f n.attributes;
    Array.iter go n.children
  in
  go doc

let fold_preorder f init doc =
  let acc = ref init in
  iter_preorder (fun n -> acc := f !acc n) doc;
  !acc

let descendant_nodes n =
  let out = ref [] in
  let rec go n =
    Array.iter
      (fun c ->
        out := c :: !out;
        go c)
      n.children
  in
  go n;
  List.rev !out

let node_count doc = fold_preorder (fun n _ -> n + 1) 0 doc

let pp_kind ppf = function
  | Document -> Format.pp_print_string ppf "document"
  | Element s -> Format.fprintf ppf "element(%s)" s
  | Attribute (n, v) -> Format.fprintf ppf "attribute(%s=%S)" n v
  | Text s -> Format.fprintf ppf "text(%S)" s
  | Comment s -> Format.fprintf ppf "comment(%S)" s
  | Pi (t, d) -> Format.fprintf ppf "pi(%s,%S)" t d
