exception Error of { line : int; col : int; msg : string }

type state = { src : string; mutable pos : int; mutable line : int; mutable bol : int }

let fail st fmt =
  Format.kasprintf
    (fun msg -> raise (Error { line = st.line; col = st.pos - st.bol + 1; msg }))
    fmt

let eof st = st.pos >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.pos]

let advance st =
  (if not (eof st) then
     match st.src.[st.pos] with
     | '\n' ->
         st.line <- st.line + 1;
         st.bol <- st.pos + 1
     | _ -> ());
  st.pos <- st.pos + 1

let next st =
  let c = peek st in
  if eof st then fail st "unexpected end of input";
  advance st;
  c

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let expect st s =
  if looking_at st s then
    for _ = 1 to String.length s do
      advance st
    done
  else fail st "expected %S" s

let is_space = function ' ' | '\t' | '\r' | '\n' -> true | _ -> false
let skip_space st = while (not (eof st)) && is_space (peek st) do advance st done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
  || Char.code c >= 128

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  if not (is_name_start (peek st)) then fail st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

(* Entity and character references.  Appends the expansion to [buf]. *)
let parse_reference st buf =
  expect st "&";
  if peek st = '#' then begin
    advance st;
    let hex = peek st = 'x' in
    if hex then advance st;
    let start = st.pos in
    let digit c =
      if hex then
        (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
      else c >= '0' && c <= '9'
    in
    while (not (eof st)) && digit (peek st) do
      advance st
    done;
    if st.pos = start then fail st "empty character reference";
    let digits = String.sub st.src start (st.pos - start) in
    expect st ";";
    let code =
      try int_of_string (if hex then "0x" ^ digits else digits)
      with Failure _ -> fail st "invalid character reference &#%s;" digits
    in
    if code <= 0 || code > 0x10FFFF then fail st "character reference out of range";
    (* UTF-8 encode *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  end
  else begin
    let name = parse_name st in
    expect st ";";
    match name with
    | "amp" -> Buffer.add_char buf '&'
    | "lt" -> Buffer.add_char buf '<'
    | "gt" -> Buffer.add_char buf '>'
    | "quot" -> Buffer.add_char buf '"'
    | "apos" -> Buffer.add_char buf '\''
    | other -> fail st "unknown entity &%s; (external entities unsupported)" other
  end

let parse_attr_value st =
  let quote = next st in
  if quote <> '"' && quote <> '\'' then fail st "expected quoted attribute value";
  let buf = Buffer.create 16 in
  let rec go () =
    if eof st then fail st "unterminated attribute value"
    else
      match peek st with
      | c when c = quote -> advance st
      | '&' ->
          parse_reference st buf;
          go ()
      | '<' -> fail st "'<' not allowed in attribute value"
      | c ->
          advance st;
          Buffer.add_char buf c;
          go ()
  in
  go ();
  Buffer.contents buf

let parse_comment st =
  expect st "<!--";
  let start = st.pos in
  let rec go () =
    if eof st then fail st "unterminated comment"
    else if looking_at st "-->" then begin
      let s = String.sub st.src start (st.pos - start) in
      expect st "-->";
      s
    end
    else begin
      advance st;
      go ()
    end
  in
  go ()

let parse_pi st =
  expect st "<?";
  let target = parse_name st in
  skip_space st;
  let start = st.pos in
  let rec go () =
    if eof st then fail st "unterminated processing instruction"
    else if looking_at st "?>" then begin
      let s = String.sub st.src start (st.pos - start) in
      expect st "?>";
      s
    end
    else begin
      advance st;
      go ()
    end
  in
  (target, go ())

let parse_cdata st buf =
  expect st "<![CDATA[";
  let rec go () =
    if eof st then fail st "unterminated CDATA section"
    else if looking_at st "]]>" then expect st "]]>"
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      go ()
    end
  in
  go ()

let skip_doctype st =
  expect st "<!DOCTYPE";
  (* skip to matching '>' allowing one level of [...] internal subset *)
  let rec go depth =
    if eof st then fail st "unterminated DOCTYPE"
    else
      match next st with
      | '[' -> go (depth + 1)
      | ']' -> go (depth - 1)
      | '>' when depth = 0 -> ()
      | _ -> go depth
  in
  go 0

let is_blank s =
  let ok = ref true in
  String.iter (fun c -> if not (is_space c) then ok := false) s;
  !ok

let parse ?(keep_whitespace = false) src =
  let st = { src; pos = 0; line = 1; bol = 0 } in
  (* optional BOM *)
  if looking_at st "\xEF\xBB\xBF" then expect st "\xEF\xBB\xBF";
  let flush_text buf acc =
    if Buffer.length buf = 0 then acc
    else begin
      let s = Buffer.contents buf in
      Buffer.clear buf;
      if (not keep_whitespace) && is_blank s then acc else Tree.D s :: acc
    end
  in
  (* parse element content until the closing tag of [name]; returns specs *)
  let rec parse_element () =
    expect st "<";
    let name = parse_name st in
    let rec attrs acc =
      skip_space st;
      if looking_at st "/>" then begin
        expect st "/>";
        (List.rev acc, [])
      end
      else if looking_at st ">" then begin
        expect st ">";
        (List.rev acc, parse_content name)
      end
      else begin
        let an = parse_name st in
        skip_space st;
        expect st "=";
        skip_space st;
        let av = parse_attr_value st in
        if List.mem_assoc an acc then fail st "duplicate attribute %S" an;
        attrs ((an, av) :: acc)
      end
    in
    let attributes, children = attrs [] in
    Tree.E (name, attributes, children)
  and parse_content element_name =
    let buf = Buffer.create 64 in
    let rec go acc =
      if eof st then fail st "unterminated element <%s>" element_name
      else if looking_at st "</" then begin
        let acc = flush_text buf acc in
        expect st "</";
        let closing = parse_name st in
        if not (String.equal closing element_name) then
          fail st "mismatched closing tag </%s> (expected </%s>)" closing element_name;
        skip_space st;
        expect st ">";
        List.rev acc
      end
      else if looking_at st "<!--" then begin
        let acc = flush_text buf acc in
        let c = parse_comment st in
        go (Tree.Cm c :: acc)
      end
      else if looking_at st "<![CDATA[" then begin
        parse_cdata st buf;
        go acc
      end
      else if looking_at st "<?" then begin
        let acc = flush_text buf acc in
        let t, d = parse_pi st in
        go (Tree.Proc (t, d) :: acc)
      end
      else if looking_at st "<" then begin
        let acc = flush_text buf acc in
        go (parse_element () :: acc)
      end
      else if looking_at st "&" then begin
        parse_reference st buf;
        go acc
      end
      else begin
        Buffer.add_char buf (peek st);
        advance st;
        go acc
      end
    in
    go []
  in
  (* prolog *)
  let rec prolog acc =
    skip_space st;
    if looking_at st "<?xml" then begin
      let _ = parse_pi st in
      prolog acc
    end
    else if looking_at st "<?" then begin
      let t, d = parse_pi st in
      prolog (Tree.Proc (t, d) :: acc)
    end
    else if looking_at st "<!--" then begin
      let c = parse_comment st in
      prolog (Tree.Cm c :: acc)
    end
    else if looking_at st "<!DOCTYPE" then begin
      skip_doctype st;
      prolog acc
    end
    else acc
  in
  let pre = prolog [] in
  if eof st then fail st "missing root element";
  if not (looking_at st "<") then fail st "expected root element";
  let root = parse_element () in
  (* epilog *)
  let rec epilog acc =
    skip_space st;
    if eof st then acc
    else if looking_at st "<!--" then begin
      let c = parse_comment st in
      epilog (Tree.Cm c :: acc)
    end
    else if looking_at st "<?" then begin
      let t, d = parse_pi st in
      epilog (Tree.Proc (t, d) :: acc)
    end
    else fail st "content after root element"
  in
  let post = epilog [] in
  Tree.document (List.rev pre @ [ root ] @ List.rev post)

let parse_file ?keep_whitespace path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse ?keep_whitespace s

let error_to_string = function
  | Error { line; col; msg } -> Some (Printf.sprintf "XML parse error at %d:%d: %s" line col msg)
  | _ -> None
