(** XML serializer: inverse of {!Parser} for documents the parser accepts. *)

val escape_text : string -> string
(** Escape ampersand and angle brackets for character-data context. *)

val escape_attr : string -> string
(** Escape ampersand, left angle bracket and double quote for
    double-quoted attribute context. *)

val to_buffer : ?indent:int -> Buffer.t -> Tree.t -> unit
(** Serialize a document (or any subtree) into a buffer.  With [indent],
    pretty-prints using that many spaces per level; element content that
    contains text nodes is kept inline to preserve string values. *)

val to_string : ?indent:int -> Tree.t -> string
val to_file : ?indent:int -> string -> Tree.t -> unit
