(** In-memory XML document model (DOM-style).

    Nodes carry parent links and preorder identifiers, which is what the
    DOM-traversal baseline engine and the MASS bulk loader need.  The model
    covers the XPath 1.0 node kinds used by the paper: document, element,
    attribute, text, comment and processing instruction.  Namespaces are
    out of scope (the paper's engine and workload do not use them);
    qualified names are kept verbatim. *)

type kind =
  | Document
  | Element of string  (** tag name *)
  | Attribute of string * string  (** name, value *)
  | Text of string
  | Comment of string
  | Pi of string * string  (** target, data *)

type node = private {
  id : int;  (** preorder position within the document; the document node is 0.  Attribute nodes are numbered after their owner element, before its children. *)
  kind : kind;
  mutable parent : node option;
  mutable children : node array;  (** document and element nodes only *)
  mutable attributes : node array;  (** element nodes only *)
}

type t = node
(** A document is represented by its [Document] node. *)

(** {1 Construction} *)

type spec =
  | E of string * (string * string) list * spec list
      (** element: name, attributes, children *)
  | D of string  (** character data *)
  | Cm of string  (** comment *)
  | Proc of string * string  (** processing instruction *)

val document : spec list -> t
(** [document roots] builds a document from a spec forest, wiring parent
    links and assigning preorder ids.
    @raise Invalid_argument if the forest has no or multiple root
    elements, or text at top level. *)

val element_spec : t -> spec
(** Convert back to a spec (drops the document node). *)

(** {1 Accessors} *)

val name : node -> string
(** Element/attribute/PI name; [""] for other kinds. *)

val string_value : node -> string
(** XPath string-value: concatenated descendant text for document and
    element nodes; the value itself for attribute, text, comment, PI. *)

val root_element : t -> node
(** @raise Invalid_argument if applied to a non-document node with no root. *)

val is_element : node -> bool
val is_text : node -> bool
val is_attribute : node -> bool

val doc_order_compare : node -> node -> int
(** Compare by preorder id (valid within one document). *)

(** {1 Traversal} *)

val iter_preorder : (node -> unit) -> t -> unit
(** Visit every node (including attribute nodes, after their owner
    element and before its children) in document order. *)

val fold_preorder : ('a -> node -> 'a) -> 'a -> t -> 'a

val descendant_nodes : node -> node list
(** Proper descendants in document order (attributes excluded, per XPath). *)

val node_count : t -> int
(** Total number of nodes including the document node and attributes. *)

val pp_kind : Format.formatter -> kind -> unit
