lib/xml/parser.ml: Buffer Char Format List Printf String Tree
