lib/xml/tree.ml: Array Buffer Format Hashtbl Int List Printf
