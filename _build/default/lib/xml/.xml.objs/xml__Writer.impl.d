lib/xml/writer.ml: Array Buffer String Tree
