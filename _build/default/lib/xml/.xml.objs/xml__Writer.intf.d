lib/xml/writer.mli: Buffer Tree
