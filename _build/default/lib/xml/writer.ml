let escape gen s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match gen c with
      | Some rep -> Buffer.add_string buf rep
      | None -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_text =
  escape (function
    | '&' -> Some "&amp;"
    | '<' -> Some "&lt;"
    | '>' -> Some "&gt;"
    | _ -> None)

let escape_attr =
  escape (function
    | '&' -> Some "&amp;"
    | '<' -> Some "&lt;"
    | '"' -> Some "&quot;"
    | _ -> None)

let to_buffer ?indent buf doc =
  let pad level =
    match indent with
    | Some n ->
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (n * level) ' ')
    | None -> ()
  in
  let has_text n =
    Array.exists (fun (c : Tree.node) -> Tree.is_text c) n.Tree.children
  in
  let rec node level inline (n : Tree.node) =
    match n.kind with
    | Tree.Document -> Array.iter (node level false) n.children
    | Tree.Text s -> Buffer.add_string buf (escape_text s)
    | Tree.Comment s ->
        if not inline then pad level;
        Buffer.add_string buf "<!--";
        Buffer.add_string buf s;
        Buffer.add_string buf "-->"
    | Tree.Pi (t, d) ->
        if not inline then pad level;
        Buffer.add_string buf "<?";
        Buffer.add_string buf t;
        if String.length d > 0 then begin
          Buffer.add_char buf ' ';
          Buffer.add_string buf d
        end;
        Buffer.add_string buf "?>"
    | Tree.Attribute (an, av) ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf an;
        Buffer.add_string buf "=\"";
        Buffer.add_string buf (escape_attr av);
        Buffer.add_char buf '"'
    | Tree.Element name ->
        if not inline then pad level;
        Buffer.add_char buf '<';
        Buffer.add_string buf name;
        Array.iter (node level true) n.attributes;
        if Array.length n.children = 0 then Buffer.add_string buf "/>"
        else begin
          Buffer.add_char buf '>';
          let keep_inline = has_text n || indent = None in
          Array.iter (node (level + 1) keep_inline) n.children;
          if not keep_inline then pad level;
          Buffer.add_string buf "</";
          Buffer.add_string buf name;
          Buffer.add_char buf '>'
        end
  in
  match doc.Tree.kind with
  | Tree.Document ->
      Buffer.add_string buf "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
      Array.iter (node 0 false) doc.children;
      if indent <> None then Buffer.add_char buf '\n'
  | _ -> node 0 true doc

let to_string ?indent doc =
  let buf = Buffer.create 1024 in
  to_buffer ?indent buf doc;
  Buffer.contents buf

let to_file ?indent path doc =
  let oc = open_out_bin path in
  let buf = Buffer.create 65536 in
  to_buffer ?indent buf doc;
  Buffer.output_buffer oc buf;
  close_out oc
