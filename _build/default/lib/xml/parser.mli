(** From-scratch XML 1.0 parser.

    Supports the subset needed for data-oriented documents: prolog, DOCTYPE
    (skipped, internal subset tolerated, no external entities), elements,
    attributes (single or double quoted), character data, CDATA sections,
    comments, processing instructions, predefined entities
    ([&amp;] [&lt;] [&gt;] [&quot;] [&apos;]) and character references
    ([&#NN;], [&#xHH;]).  Checks well-formedness: tag balance, single root
    element, attribute uniqueness. *)

exception Error of { line : int; col : int; msg : string }
(** Raised on malformed input, with a 1-based source position. *)

val parse : ?keep_whitespace:bool -> string -> Tree.t
(** Parse a complete document.  Whitespace-only text nodes are dropped
    unless [keep_whitespace] is [true] (data-oriented default, matching
    how the paper's engines count nodes). *)

val parse_file : ?keep_whitespace:bool -> string -> Tree.t
(** Parse the contents of a file. *)

val error_to_string : exn -> string option
(** Human-readable rendering of {!Error}; [None] for other exceptions. *)
