(** Generic XPath 1.0 evaluator, parameterized by a node space.

    The evaluator implements the language semantics once — value model,
    type coercions, comparison rules, the core function library, location
    paths with positional predicates — while the node space supplies the
    {e access path}: how an axis is enumerated and how values are fetched.
    The repository instantiates it three ways: index navigation over MASS,
    DOM traversal (the Jaxen-like baseline) and full-table scans (the
    Galax-like baseline), so all engines share one semantics and differ
    only in data access, which is exactly the dimension the paper's
    experiments compare. *)

type 'node value =
  | Nodes of 'node list  (** in document order, duplicate-free *)
  | Num of float
  | Str of string
  | Bool of bool

module type NODE_SPACE = sig
  type t
  (** Handle to a node (a FLEX key, a DOM node, …). *)

  type node

  val compare : node -> node -> int
  (** Document order; also the identity used for set semantics. *)

  val select : t -> Ast.axis -> Ast.node_test -> node -> node list
  (** Nodes on the axis passing the node test, in {e axis order} (document
      order for forward axes, reverse document order for reverse axes). *)

  val string_value : t -> node -> string
  val name : t -> node -> string
  (** Qualified name ([""] for unnamed kinds). *)
end

exception Unsupported of string
(** Raised for language features outside scope (e.g. unknown functions). *)

module Make (N : NODE_SPACE) : sig
  val eval :
    ?vars:(string -> N.node value option) -> N.t -> context:N.node -> Ast.expr -> N.node value
  (** Evaluate an expression with a single context node (position and size
      1, per the XPath model for the initial context).  [vars] resolves
      [$name] references (default: none bound, raising {!Unsupported}). *)

  val eval_path :
    ?vars:(string -> N.node value option) -> N.t -> context:N.node -> Ast.path -> N.node list
  (** Evaluate a location path; result in document order, duplicate-free. *)

  (** {1 Value coercions} (exposed for engines that mix evaluators) *)

  val to_boolean : N.t -> N.node value -> bool
  val to_number : N.t -> N.node value -> float
  val to_string_value : N.t -> N.node value -> string
  val number_to_string : float -> string
end
