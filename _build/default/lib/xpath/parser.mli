(** Recursive-descent XPath 1.0 parser. *)

exception Error of { pos : int; msg : string }
(** Syntax error with a 0-based character offset into the source. *)

val parse : string -> Ast.expr
(** Parse a complete XPath expression.
    @raise Error on malformed input.  Variable references parse to
    {!Ast.Var}; binding them is the caller's concern (the XQuery layer
    supplies an environment; bare engine queries reject them at
    evaluation time). *)

val parse_path : string -> Ast.path
(** Parse an expression that must be a location path.
    @raise Error if the expression is not a plain location path. *)

val error_to_string : exn -> string option
