type 'node value =
  | Nodes of 'node list
  | Num of float
  | Str of string
  | Bool of bool

module type NODE_SPACE = sig
  type t
  type node

  val compare : node -> node -> int
  val select : t -> Ast.axis -> Ast.node_test -> node -> node list
  val string_value : t -> node -> string
  val name : t -> node -> string
end

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

module Make (N : NODE_SPACE) = struct
  (* ---- node-set helpers ---- *)

  let sort_dedup nodes =
    let sorted = List.sort_uniq N.compare nodes in
    sorted

  (* ---- coercions (XPath 1.0 §3.2, §4) ---- *)

  let number_of_string s =
    let s = String.trim s in
    if s = "" then Float.nan
    else match float_of_string_opt s with Some f -> f | None -> Float.nan

  let number_to_string f =
    if Float.is_nan f then "NaN"
    else if f = Float.infinity then "Infinity"
    else if f = Float.neg_infinity then "-Infinity"
    else if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%.12g" f

  let to_boolean t = function
    | Bool b -> b
    | Num f -> f <> 0.0 && not (Float.is_nan f)
    | Str s -> String.length s > 0
    | Nodes ns ->
        ignore t;
        ns <> []

  let to_string_value t = function
    | Str s -> s
    | Num f -> number_to_string f
    | Bool b -> if b then "true" else "false"
    | Nodes [] -> ""
    | Nodes (n :: _) -> N.string_value t n

  let to_number t v =
    match v with
    | Num f -> f
    | Str s -> number_of_string s
    | Bool b -> if b then 1.0 else 0.0
    | Nodes _ -> number_of_string (to_string_value t v)

  (* ---- comparisons (XPath 1.0 §3.4) ---- *)

  let cmp_op : Ast.binop -> (float -> float -> bool) option = function
    | Ast.Lt -> Some ( < )
    | Ast.Le -> Some ( <= )
    | Ast.Gt -> Some ( > )
    | Ast.Ge -> Some ( >= )
    | _ -> None

  let equality_on_strings op a b =
    match (op : Ast.binop) with
    | Ast.Eq -> String.equal a b
    | Ast.Neq -> not (String.equal a b)
    | _ -> assert false

  let equality_on_numbers op a b =
    match (op : Ast.binop) with
    | Ast.Eq -> a = b
    | Ast.Neq -> a <> b
    | _ -> assert false

  let compare_values t op left right =
    match cmp_op op with
    | Some rel -> (
        (* relational: existential over node-sets, numeric otherwise *)
        match (left, right) with
        | Nodes la, Nodes lb ->
            List.exists
              (fun a ->
                let na = number_of_string (N.string_value t a) in
                List.exists (fun b -> rel na (number_of_string (N.string_value t b))) lb)
              la
        | Nodes la, v ->
            let nv = to_number t v in
            List.exists (fun a -> rel (number_of_string (N.string_value t a)) nv) la
        | v, Nodes lb ->
            let nv = to_number t v in
            List.exists (fun b -> rel nv (number_of_string (N.string_value t b))) lb
        | a, b -> rel (to_number t a) (to_number t b))
    | None -> (
        (* = and != *)
        match (left, right) with
        | Nodes la, Nodes lb ->
            List.exists
              (fun a ->
                let sa = N.string_value t a in
                List.exists (fun b -> equality_on_strings op sa (N.string_value t b)) lb)
              la
        | Nodes ln, (Num _ as v) | (Num _ as v), Nodes ln ->
            let nv = to_number t v in
            List.exists
              (fun n -> equality_on_numbers op (number_of_string (N.string_value t n)) nv)
              ln
        | Nodes ln, (Str s) | (Str s), Nodes ln ->
            List.exists (fun n -> equality_on_strings op (N.string_value t n) s) ln
        | Nodes _, (Bool _ as v) | (Bool _ as v), Nodes _ ->
            let b1 = to_boolean t left and b2 = to_boolean t right in
            ignore v;
            equality_on_numbers op (if b1 then 1. else 0.) (if b2 then 1. else 0.)
        | a, b ->
            if (match a with Bool _ -> true | _ -> false) || (match b with Bool _ -> true | _ -> false)
            then equality_on_numbers op (if to_boolean t a then 1. else 0.) (if to_boolean t b then 1. else 0.)
            else if (match a with Num _ -> true | _ -> false) || (match b with Num _ -> true | _ -> false)
            then equality_on_numbers op (to_number t a) (to_number t b)
            else equality_on_strings op (to_string_value t a) (to_string_value t b))

  (* ---- evaluation ---- *)

  type ctx = {
    node : N.node;
    position : int;
    size : int Lazy.t;
    vars : string -> N.node value option;
  }

  let rec eval_expr t ctx (e : Ast.expr) : N.node value =
    match e with
    | Ast.Literal s -> Str s
    | Ast.Number f -> Num f
    | Ast.Var v -> (
        match ctx.vars v with
        | Some value -> value
        | None -> unsupported "unbound variable $%s" v)
    | Ast.Neg e -> Num (-.to_number t (eval_expr t ctx e))
    | Ast.Path p -> Nodes (path t ~vars:ctx.vars ctx.node p)
    | Ast.Binop (Ast.Union, a, b) -> (
        match (eval_expr t ctx a, eval_expr t ctx b) with
        | Nodes na, Nodes nb -> Nodes (sort_dedup (na @ nb))
        | _ -> unsupported "union of non-node-sets")
    | Ast.Binop (Ast.Or, a, b) ->
        Bool (to_boolean t (eval_expr t ctx a) || to_boolean t (eval_expr t ctx b))
    | Ast.Binop (Ast.And, a, b) ->
        Bool (to_boolean t (eval_expr t ctx a) && to_boolean t (eval_expr t ctx b))
    | Ast.Binop ((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op, a, b) ->
        Bool (compare_values t op (eval_expr t ctx a) (eval_expr t ctx b))
    | Ast.Binop (Ast.Add, a, b) -> arith t ctx ( +. ) a b
    | Ast.Binop (Ast.Sub, a, b) -> arith t ctx ( -. ) a b
    | Ast.Binop (Ast.Mul, a, b) -> arith t ctx ( *. ) a b
    | Ast.Binop (Ast.Div, a, b) -> arith t ctx ( /. ) a b
    | Ast.Binop (Ast.Mod, a, b) -> arith t ctx Float.rem a b
    | Ast.Call (f, args) -> call t ctx f args
    | Ast.Filter (e, preds) -> (
        match eval_expr t ctx e with
        | Nodes ns -> Nodes (apply_predicates t ~vars:ctx.vars ns preds)
        | _ -> unsupported "predicate applied to a non-node-set")
    | Ast.Located (e, p) -> (
        match eval_expr t ctx e with
        | Nodes ns ->
            Nodes
              (sort_dedup
                 (List.concat_map (fun n -> relative_path t ~vars:ctx.vars n p.Ast.steps) ns))
        | _ -> unsupported "path applied to a non-node-set")

  and arith t ctx f a b =
    Num (f (to_number t (eval_expr t ctx a)) (to_number t (eval_expr t ctx b)))

  (* Predicates filter a node list that is already in axis order, so
     position() is simply the 1-based index (proximity position on reverse
     axes, per the XPath model). *)
  and apply_predicates t ~vars nodes preds =
    List.fold_left
      (fun ns pred ->
        let size = lazy (List.length ns) in
        List.filteri
          (fun i n ->
            let ctx = { node = n; position = i + 1; size; vars } in
            match eval_expr t ctx pred with
            | Num f -> f = float_of_int ctx.position
            | v -> to_boolean t v)
          ns)
      nodes preds

  and step t ~vars node (s : Ast.step) =
    let selected = N.select t s.Ast.axis s.Ast.test node in
    apply_predicates t ~vars selected s.Ast.predicates

  and relative_path t ~vars node steps =
    match steps with
    | [] -> [ node ]
    | s :: rest ->
        let here = step t ~vars node s in
        (* document order + set semantics between steps *)
        sort_dedup (List.concat_map (fun n -> relative_path t ~vars n rest) here)

  and path t ~vars node (p : Ast.path) =
    let start =
      if p.Ast.absolute then
        (* the document node is the top of the ancestor-or-self chain *)
        match List.rev (N.select t Ast.Ancestor_or_self Ast.Node_test node) with
        | top :: _ -> top
        | [] -> node
      else node
    in
    sort_dedup (relative_path t ~vars start p.Ast.steps)

  and call t ctx f args =
    let arg i =
      match List.nth_opt args i with
      | Some a -> eval_expr t ctx a
      | None -> unsupported "missing argument %d of %s()" (i + 1) f
    in
    let optional_nodes () =
      match args with
      | [] -> Nodes [ ctx.node ]
      | a :: _ -> eval_expr t ctx a
    in
    let str i = to_string_value t (arg i) in
    let num i = to_number t (arg i) in
    match (f, List.length args) with
    | "position", 0 -> Num (float_of_int ctx.position)
    | "last", 0 -> Num (float_of_int (Lazy.force ctx.size))
    | "count", 1 -> (
        match arg 0 with
        | Nodes ns -> Num (float_of_int (List.length ns))
        | _ -> unsupported "count() of a non-node-set")
    | "not", 1 -> Bool (not (to_boolean t (arg 0)))
    | "true", 0 -> Bool true
    | "false", 0 -> Bool false
    | "boolean", 1 -> Bool (to_boolean t (arg 0))
    | "number", 0 -> Num (to_number t (Nodes [ ctx.node ]))
    | "number", 1 -> Num (num 0)
    | "string", 0 -> Str (N.string_value t ctx.node)
    | "string", 1 -> Str (str 0)
    | "concat", n when n >= 2 ->
        Str (String.concat "" (List.init n str))
    | "contains", 2 ->
        let hay = str 0 and needle = str 1 in
        let nh = String.length hay and nn = String.length needle in
        let rec find i = i + nn <= nh && (String.sub hay i nn = needle || find (i + 1)) in
        Bool (nn = 0 || find 0)
    | "starts-with", 2 ->
        let s = str 0 and p = str 1 in
        Bool (String.length p <= String.length s && String.sub s 0 (String.length p) = p)
    | "string-length", (0 | 1) ->
        let s = if args = [] then N.string_value t ctx.node else str 0 in
        Num (float_of_int (String.length s))
    | "normalize-space", (0 | 1) ->
        let s = if args = [] then N.string_value t ctx.node else str 0 in
        let words = String.split_on_char ' ' (String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s) in
        Str (String.concat " " (List.filter (fun w -> w <> "") words))
    | "name", (0 | 1) | "local-name", (0 | 1) -> (
        let target =
          match optional_nodes () with
          | Nodes (n :: _) -> Some n
          | Nodes [] -> None
          | _ -> unsupported "%s() of a non-node-set" f
        in
        match target with
        | None -> Str ""
        | Some n ->
            let full = N.name t n in
            if String.equal f "name" then Str full
            else
              Str
                (match String.rindex_opt full ':' with
                | Some i -> String.sub full (i + 1) (String.length full - i - 1)
                | None -> full))
    | "sum", 1 -> (
        match arg 0 with
        | Nodes ns ->
            Num (List.fold_left (fun acc n -> acc +. number_of_string (N.string_value t n)) 0.0 ns)
        | _ -> unsupported "sum() of a non-node-set")
    | "floor", 1 -> Num (Float.floor (num 0))
    | "ceiling", 1 -> Num (Float.ceil (num 0))
    | "round", 1 ->
        let x = num 0 in
        Num (if Float.is_nan x then x else Float.floor (x +. 0.5))
    | "substring-before", 2 ->
        let s = str 0 and sep = str 1 in
        Str
          (match find_sub s sep with
          | Some i -> String.sub s 0 i
          | None -> "")
    | "substring-after", 2 ->
        let s = str 0 and sep = str 1 in
        Str
          (match find_sub s sep with
          | Some i -> String.sub s (i + String.length sep) (String.length s - i - String.length sep)
          | None -> "")
    | "substring", (2 | 3) ->
        let s = str 0 in
        let start = Float.floor (num 1 +. 0.5) in
        let len =
          if List.length args = 3 then Float.floor (num 2 +. 0.5)
          else Float.infinity
        in
        let n = String.length s in
        let first = max 1 (int_of_float (max start (-1e9))) in
        let last_excl =
          if len = Float.infinity then n + 1
          else int_of_float (min (start +. len) (float_of_int (n + 1)))
        in
        if Float.is_nan start || Float.is_nan len || last_excl <= first || first > n then Str ""
        else Str (String.sub s (first - 1) (min (last_excl - first) (n - first + 1)))
    | "translate", 3 ->
        let s = str 0 and from = str 1 and into = str 2 in
        let buf = Buffer.create (String.length s) in
        String.iter
          (fun c ->
            match String.index_opt from c with
            | Some i when i < String.length into -> Buffer.add_char buf into.[i]
            | Some _ -> ()
            | None -> Buffer.add_char buf c)
          s;
        Str (Buffer.contents buf)
    | _ -> unsupported "function %s/%d" f (List.length args)

  and find_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1) in
    if m = 0 then Some 0 else go 0

  let no_vars _ = None

  let eval ?(vars = no_vars) t ~context e =
    eval_expr t { node = context; position = 1; size = lazy 1; vars } e

  let eval_path ?(vars = no_vars) t ~context p = path t ~vars context p
end
