lib/xpath/parser.ml: Array Ast Format Lexer List Printf
