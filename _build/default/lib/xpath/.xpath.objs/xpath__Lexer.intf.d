lib/xpath/lexer.mli:
