lib/xpath/eval.ml: Ast Buffer Float Format Lazy List Printf String
