lib/xpath/lexer.ml: Array Char Format List Printf String
