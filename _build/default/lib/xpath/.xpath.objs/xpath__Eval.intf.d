lib/xpath/eval.mli: Ast
