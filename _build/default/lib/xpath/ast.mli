(** XPath 1.0 abstract syntax.

    Covers the language surface the paper targets: all 13 axes, the node
    tests, predicates (value, range and position), the core function
    library, boolean/arithmetic operators, and node-set union. *)

type axis =
  | Child
  | Descendant
  | Descendant_or_self
  | Parent
  | Ancestor
  | Ancestor_or_self
  | Following
  | Following_sibling
  | Preceding
  | Preceding_sibling
  | Self
  | Attribute
  | Namespace
      (** Parsed and costed for completeness; evaluates to the empty set
          because the data model keeps qualified names verbatim and
          carries no namespace nodes. *)

val all_axes : axis list
(** The 13 XPath axes. *)

val axis_name : axis -> string
(** XPath surface syntax, e.g. ["following-sibling"]. *)

val axis_of_name : string -> axis option

val is_reverse_axis : axis -> bool
(** Ancestor, ancestor-or-self, parent, preceding, preceding-sibling. *)

type node_test =
  | Name_test of string  (** element name (or attribute name on the attribute axis) *)
  | Wildcard  (** [*] *)
  | Text_test  (** [text()] *)
  | Node_test  (** [node()] *)
  | Comment_test  (** [comment()] *)
  | Pi_test of string option  (** [processing-instruction()], optionally with a target literal *)

type binop =
  | Or
  | And
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Union  (** node-set union, [|] *)

type expr =
  | Path of path
  | Literal of string
  | Number of float
  | Var of string  (** [$name] — bound by an enclosing XQuery-style expression *)
  | Binop of binop * expr * expr
  | Neg of expr
  | Call of string * expr list
  | Filter of expr * expr list  (** primary expression with predicates *)
  | Located of expr * path  (** [FilterExpr / RelativeLocationPath] *)

and path = { absolute : bool; steps : step list }

and step = { axis : axis; test : node_test; predicates : expr list }

val step : ?predicates:expr list -> axis -> node_test -> step

val path_expr : path -> expr
(** Wrap a path, simplifying [Path] application. *)

(** {1 Printing}

    The printer emits unabbreviated syntax that reparses to an equal
    AST (used by round-trip tests and plan explanations). *)

val node_test_to_string : node_test -> string
val expr_to_string : expr -> string
val path_to_string : path -> string
val pp_expr : Format.formatter -> expr -> unit
val pp_path : Format.formatter -> path -> unit

val equal_expr : expr -> expr -> bool
val equal_path : path -> path -> bool
