type axis =
  | Child
  | Descendant
  | Descendant_or_self
  | Parent
  | Ancestor
  | Ancestor_or_self
  | Following
  | Following_sibling
  | Preceding
  | Preceding_sibling
  | Self
  | Attribute
  | Namespace

let all_axes =
  [ Child; Descendant; Descendant_or_self; Parent; Ancestor; Ancestor_or_self; Following;
    Following_sibling; Preceding; Preceding_sibling; Self; Attribute; Namespace ]

let axis_name = function
  | Child -> "child"
  | Descendant -> "descendant"
  | Descendant_or_self -> "descendant-or-self"
  | Parent -> "parent"
  | Ancestor -> "ancestor"
  | Ancestor_or_self -> "ancestor-or-self"
  | Following -> "following"
  | Following_sibling -> "following-sibling"
  | Preceding -> "preceding"
  | Preceding_sibling -> "preceding-sibling"
  | Self -> "self"
  | Attribute -> "attribute"
  | Namespace -> "namespace"

let axis_of_name s = List.find_opt (fun a -> String.equal (axis_name a) s) all_axes

let is_reverse_axis = function
  | Parent | Ancestor | Ancestor_or_self | Preceding | Preceding_sibling -> true
  | Child | Descendant | Descendant_or_self | Following | Following_sibling | Self
  | Attribute | Namespace ->
      false

type node_test =
  | Name_test of string
  | Wildcard
  | Text_test
  | Node_test
  | Comment_test
  | Pi_test of string option

type binop = Or | And | Eq | Neq | Lt | Le | Gt | Ge | Add | Sub | Mul | Div | Mod | Union

type expr =
  | Path of path
  | Literal of string
  | Number of float
  | Var of string
  | Binop of binop * expr * expr
  | Neg of expr
  | Call of string * expr list
  | Filter of expr * expr list
  | Located of expr * path

and path = { absolute : bool; steps : step list }
and step = { axis : axis; test : node_test; predicates : expr list }

let step ?(predicates = []) axis test = { axis; test; predicates }
let path_expr p = Path p

let node_test_to_string = function
  | Name_test s -> s
  | Wildcard -> "*"
  | Text_test -> "text()"
  | Node_test -> "node()"
  | Comment_test -> "comment()"
  | Pi_test None -> "processing-instruction()"
  | Pi_test (Some t) -> Printf.sprintf "processing-instruction('%s')" t

let binop_name = function
  | Or -> "or"
  | And -> "and"
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "div"
  | Mod -> "mod"
  | Union -> "|"

(* Binding strengths for parenthesisation when printing. *)
let prec = function
  | Or -> 1
  | And -> 2
  | Eq | Neq -> 3
  | Lt | Le | Gt | Ge -> 4
  | Add | Sub -> 5
  | Mul | Div | Mod -> 6
  | Union -> 7

let quote_literal s =
  if String.contains s '\'' then Printf.sprintf "\"%s\"" s else Printf.sprintf "'%s'" s

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let rec expr_to_prec level e =
  match e with
  | Path p -> path_to_string p
  | Literal s -> quote_literal s
  | Number f -> number_to_string f
  | Var v -> "$" ^ v
  | Neg e -> "-" ^ expr_to_prec 8 e
  | Call (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map (expr_to_prec 0) args))
  | Filter (e, preds) ->
      (* parenthesize paths so the predicate binds to the whole expression,
         not to the final step *)
      let inner =
        match e with
        | Path _ -> "(" ^ expr_to_prec 0 e ^ ")"
        | _ -> expr_to_prec 8 e
      in
      inner ^ predicates_to_string preds
  | Located (e, p) -> expr_to_prec 8 e ^ "/" ^ path_to_string { p with absolute = false }
  | Binop (op, a, b) ->
      let p = prec op in
      let s =
        Printf.sprintf "%s %s %s" (expr_to_prec p a) (binop_name op) (expr_to_prec (p + 1) b)
      in
      if p < level then "(" ^ s ^ ")" else s

and predicates_to_string preds =
  String.concat "" (List.map (fun e -> "[" ^ expr_to_prec 0 e ^ "]") preds)

and step_to_string { axis; test; predicates } =
  Printf.sprintf "%s::%s%s" (axis_name axis) (node_test_to_string test)
    (predicates_to_string predicates)

and path_to_string { absolute; steps } =
  let body = String.concat "/" (List.map step_to_string steps) in
  if absolute then "/" ^ body else body

let expr_to_string = expr_to_prec 0
let pp_expr ppf e = Format.pp_print_string ppf (expr_to_string e)
let pp_path ppf p = Format.pp_print_string ppf (path_to_string p)
let equal_expr (a : expr) (b : expr) = a = b
let equal_path (a : path) (b : path) = a = b
