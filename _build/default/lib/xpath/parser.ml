exception Error of { pos : int; msg : string }

let fail pos fmt = Format.kasprintf (fun msg -> raise (Error { pos; msg })) fmt

type state = { toks : (Lexer.token * int) array; mutable i : int }

let peek st = fst st.toks.(st.i)
let peek2 st = if st.i + 1 < Array.length st.toks then fst st.toks.(st.i + 1) else Lexer.EOF
let pos st = snd st.toks.(st.i)
let advance st = st.i <- st.i + 1

let expect st tok =
  if peek st = tok then advance st
  else fail (pos st) "expected %s, found %s" (Lexer.token_to_string tok)
         (Lexer.token_to_string (peek st))

let node_type_names = [ "text"; "node"; "comment"; "processing-instruction" ]

(* ---- steps and node tests ---- *)

let parse_node_test st : Ast.node_test =
  match peek st with
  | Lexer.STAR ->
      advance st;
      Ast.Wildcard
  | Lexer.NAME name when peek2 st = Lexer.LPAREN && List.mem name node_type_names ->
      advance st;
      expect st Lexer.LPAREN;
      let test =
        match name with
        | "text" -> Ast.Text_test
        | "node" -> Ast.Node_test
        | "comment" -> Ast.Comment_test
        | "processing-instruction" -> (
            match peek st with
            | Lexer.LIT target ->
                advance st;
                Ast.Pi_test (Some target)
            | _ -> Ast.Pi_test None)
        | _ -> assert false
      in
      expect st Lexer.RPAREN;
      test
  | Lexer.NAME name ->
      advance st;
      Ast.Name_test name
  | t -> fail (pos st) "expected a node test, found %s" (Lexer.token_to_string t)

let rec parse_step st : Ast.step =
  match peek st with
  | Lexer.DOT ->
      advance st;
      Ast.step Ast.Self Ast.Node_test
  | Lexer.DOTDOT ->
      advance st;
      Ast.step Ast.Parent Ast.Node_test
  | Lexer.AT ->
      advance st;
      let test = parse_node_test st in
      let predicates = parse_predicates st in
      { Ast.axis = Ast.Attribute; test; predicates }
  | Lexer.NAME name when peek2 st = Lexer.COLONCOLON -> (
      match Ast.axis_of_name name with
      | Some axis ->
          advance st;
          advance st;
          let test = parse_node_test st in
          let predicates = parse_predicates st in
          { Ast.axis; test; predicates }
      | None -> fail (pos st) "unknown axis %S" name)
  | _ ->
      let test = parse_node_test st in
      let predicates = parse_predicates st in
      { Ast.axis = Ast.Child; test; predicates }

and parse_predicates st =
  if peek st = Lexer.LBRACK then begin
    advance st;
    let e = parse_or st in
    expect st Lexer.RBRACK;
    e :: parse_predicates st
  end
  else []

and parse_relative_path st : Ast.step list =
  let s = parse_step st in
  match peek st with
  | Lexer.SLASH ->
      advance st;
      s :: parse_relative_path st
  | Lexer.DSLASH ->
      advance st;
      s :: Ast.step Ast.Descendant_or_self Ast.Node_test :: parse_relative_path st
  | _ -> [ s ]

and parse_location_path st : Ast.path =
  match peek st with
  | Lexer.SLASH ->
      advance st;
      let steps =
        match peek st with
        | Lexer.NAME _ | Lexer.STAR | Lexer.AT | Lexer.DOT | Lexer.DOTDOT ->
            parse_relative_path st
        | _ -> []
      in
      { Ast.absolute = true; steps }
  | Lexer.DSLASH ->
      advance st;
      let steps = parse_relative_path st in
      { Ast.absolute = true; steps = Ast.step Ast.Descendant_or_self Ast.Node_test :: steps }
  | _ -> { Ast.absolute = false; steps = parse_relative_path st }

(* ---- expressions ---- *)

and starts_location_path st =
  match peek st with
  | Lexer.SLASH | Lexer.DSLASH | Lexer.STAR | Lexer.AT | Lexer.DOT | Lexer.DOTDOT -> true
  | Lexer.NAME name ->
      if peek2 st = Lexer.LPAREN then List.mem name node_type_names else true
  | _ -> false

and parse_primary st : Ast.expr =
  match peek st with
  | Lexer.LPAREN ->
      advance st;
      let e = parse_or st in
      expect st Lexer.RPAREN;
      e
  | Lexer.LIT s ->
      advance st;
      Ast.Literal s
  | Lexer.NUM f ->
      advance st;
      Ast.Number f
  | Lexer.VAR v ->
      advance st;
      Ast.Var v
  | Lexer.NAME f when peek2 st = Lexer.LPAREN ->
      advance st;
      expect st Lexer.LPAREN;
      let arguments =
        if peek st = Lexer.RPAREN then []
        else begin
          let rec more acc =
            if peek st = Lexer.COMMA then begin
              advance st;
              more (parse_or st :: acc)
            end
            else List.rev acc
          in
          more [ parse_or st ]
        end
      in
      expect st Lexer.RPAREN;
      Ast.Call (f, arguments)
  | t -> fail (pos st) "expected an expression, found %s" (Lexer.token_to_string t)

and parse_path_expr st : Ast.expr =
  let is_filter_start =
    match peek st with
    | Lexer.LPAREN | Lexer.LIT _ | Lexer.NUM _ | Lexer.VAR _ -> true
    | Lexer.NAME name when peek2 st = Lexer.LPAREN -> not (List.mem name node_type_names)
    | _ -> false
  in
  if is_filter_start then begin
    let prim = parse_primary st in
    let preds = parse_predicates st in
    let filtered = if preds = [] then prim else Ast.Filter (prim, preds) in
    match peek st with
    | Lexer.SLASH ->
        advance st;
        Ast.Located (filtered, { Ast.absolute = false; steps = parse_relative_path st })
    | Lexer.DSLASH ->
        advance st;
        Ast.Located
          ( filtered,
            { Ast.absolute = false;
              steps = Ast.step Ast.Descendant_or_self Ast.Node_test :: parse_relative_path st
            } )
    | _ -> filtered
  end
  else if starts_location_path st then Ast.Path (parse_location_path st)
  else fail (pos st) "expected a path or expression, found %s" (Lexer.token_to_string (peek st))

and parse_union st =
  let e = parse_path_expr st in
  if peek st = Lexer.PIPE then begin
    advance st;
    Ast.Binop (Ast.Union, e, parse_union st)
  end
  else e

and parse_unary st =
  if peek st = Lexer.MINUS then begin
    advance st;
    Ast.Neg (parse_unary st)
  end
  else parse_union st

and binary_level ops sub st =
  let rec loop acc =
    match List.assoc_opt (peek st) ops with
    | Some op ->
        advance st;
        loop (Ast.Binop (op, acc, sub st))
    | None -> acc
  in
  loop (sub st)

and parse_multiplicative st =
  binary_level [ (Lexer.MUL, Ast.Mul); (Lexer.DIV, Ast.Div); (Lexer.MOD, Ast.Mod) ]
    parse_unary st

and parse_additive st =
  binary_level [ (Lexer.PLUS, Ast.Add); (Lexer.MINUS, Ast.Sub) ] parse_multiplicative st

and parse_relational st =
  binary_level
    [ (Lexer.LT, Ast.Lt); (Lexer.LE, Ast.Le); (Lexer.GT, Ast.Gt); (Lexer.GE, Ast.Ge) ]
    parse_additive st

and parse_equality st =
  binary_level [ (Lexer.EQ, Ast.Eq); (Lexer.NEQ, Ast.Neq) ] parse_relational st

and parse_and st = binary_level [ (Lexer.AND, Ast.And) ] parse_equality st
and parse_or st = binary_level [ (Lexer.OR, Ast.Or) ] parse_and st

let parse src =
  let toks =
    try Lexer.tokenize src
    with Lexer.Error { pos; msg } -> raise (Error { pos; msg })
  in
  let st = { toks; i = 0 } in
  let e = parse_or st in
  if peek st <> Lexer.EOF then
    fail (pos st) "trailing input starting with %s" (Lexer.token_to_string (peek st));
  e

let parse_path src =
  match parse src with
  | Ast.Path p -> p
  | _ -> raise (Error { pos = 0; msg = "expression is not a plain location path" })

let error_to_string = function
  | Error { pos; msg } -> Some (Printf.sprintf "XPath error at offset %d: %s" pos msg)
  | _ -> None
