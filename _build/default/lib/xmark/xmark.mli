(** Deterministic XMark-style document generator.

    Reimplementation of the slice of the XMark benchmark schema
    (Schmidt et al., VLDB 2002) that the paper's workload touches:
    regions/items, categories, people (name, emailaddress, address with
    street/city/country/province/zipcode, watches/watch), open auctions
    (itemref, price, …) and closed auctions.  Element frequencies are
    calibrated to the counts the paper reports for its 10 MB document —
    2550 [person], 1256 [address], 4825 [name] — and scale linearly, so
    plan costs and optimizer decisions reproduce the paper's (paper
    Figures 6–9 use exactly these numbers).

    The generator is seeded and pure: the same seed and size always
    produce the same document.  Exactly one person is named
    "Yung Flach" (the running example Q2) and the [province] elements
    draw from the US states, so ["Vermont"] is rare but present
    (benchmark query Q5). *)

type counts = {
  persons : int;
  addresses : int;  (** persons with an address child *)
  names : int;  (** all [name] elements: persons + items + categories *)
  items : int;
  categories : int;
  open_auctions : int;
  closed_auctions : int;
}

val plan : megabytes:float -> counts
(** Element counts generated for a given target size (deterministic,
    independent of seed). *)

val generate : ?seed:int64 -> float -> Xml.Tree.t
(** [generate mb] builds an [mb]-megabyte document: the size calibrates
    both element counts and serialized bytes (filler description text
    pads the latter). *)

val generate_string : ?seed:int64 -> float -> string
(** Serialized form of {!generate}. *)

val load : ?seed:int64 -> ?name:string -> Mass.Store.t -> float -> Mass.Store.doc
(** Generate and bulk-load into a MASS store. *)
