(* Deterministic splitmix64 PRNG: seeded, portable, no global state. *)
module Prng = struct
  type t = { mutable state : int64 }

  let create seed = { state = seed }

  let next t =
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let int t bound =
    if bound <= 0 then invalid_arg "Prng.int: bound <= 0";
    Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int) (Int64.of_int bound))

  let range t lo hi = lo + int t (hi - lo + 1)
  let chance t p = float_of_int (int t 1_000_000) /. 1_000_000.0 < p
  let choice t arr = arr.(int t (Array.length arr))
end

type counts = {
  persons : int;
  addresses : int;
  names : int;
  items : int;
  categories : int;
  open_auctions : int;
  closed_auctions : int;
}

(* calibration: the paper's 10 MB document has 2550 person, 1256 address
   and 4825 name elements *)
let persons_per_mb = 255.0
let items_per_mb = 217.5
let categories_per_mb = 10.0
let open_auctions_per_mb = 120.0
let closed_auctions_per_mb = 97.5
let address_probability = 1256.0 /. 2550.0

let plan ~megabytes =
  let n per = int_of_float (Float.round (per *. megabytes)) in
  let persons = max 1 (n persons_per_mb) in
  let items = max 1 (n items_per_mb) in
  let categories = max 1 (n categories_per_mb) in
  (* addresses are drawn per person with a fixed probability; the plan
     reports the deterministic expectation used by the generator, which
     assigns exactly this many addresses to the first persons in a
     deterministic shuffle *)
  let addresses = int_of_float (Float.round (float_of_int persons *. address_probability)) in
  {
    persons;
    addresses;
    names = persons + items + categories;
    items;
    categories;
    open_auctions = max 1 (n open_auctions_per_mb);
    closed_auctions = max 1 (n closed_auctions_per_mb);
  }

(* ---- vocabulary ---- *)

let first_names =
  [| "Ann"; "Bob"; "Carla"; "Dmitri"; "Elena"; "Farid"; "Grace"; "Hugo"; "Ines"; "Jorge";
     "Keiko"; "Lars"; "Mona"; "Nils"; "Olga"; "Pierre"; "Qi"; "Rosa"; "Sven"; "Tara";
     "Umar"; "Vera"; "Walid"; "Xenia"; "Yosef"; "Zara"; "Amir"; "Berta"; "Chen"; "Dora" |]

let last_names =
  [| "Smith"; "Stone"; "Ngata"; "Kowalski"; "Okafor"; "Petrov"; "Garcia"; "Tanaka"; "Muller";
     "Rossi"; "Dubois"; "Novak"; "Silva"; "Khan"; "Larsen"; "Moreau"; "Haddad"; "Olsen";
     "Vargas"; "Weber"; "Yamada"; "Zhou"; "Andersen"; "Bianchi"; "Costa"; "Duarte" |]

let cities =
  [| "Monroe"; "Boston"; "Austin"; "Dayton"; "Fresno"; "Salem"; "Omaha"; "Tucson"; "Tacoma";
     "Albany"; "Mobile"; "Laredo"; "Toledo"; "Reno"; "Provo" |]

let streets =
  [| "Pfisterer St"; "Main St"; "Oak Ave"; "Maple Dr"; "Cedar Ln"; "Elm St"; "Pine Rd";
     "Lake View"; "Hill Crest"; "River Bend" |]

let countries = [| "United States"; "Germany"; "Japan"; "Brazil"; "France"; "India" |]

let provinces =
  [| "Alabama"; "Alaska"; "Arizona"; "Arkansas"; "California"; "Colorado"; "Connecticut";
     "Delaware"; "Florida"; "Georgia"; "Hawaii"; "Idaho"; "Illinois"; "Indiana"; "Iowa";
     "Kansas"; "Kentucky"; "Louisiana"; "Maine"; "Maryland"; "Massachusetts"; "Michigan";
     "Minnesota"; "Mississippi"; "Missouri"; "Montana"; "Nebraska"; "Nevada";
     "New Hampshire"; "New Jersey"; "New Mexico"; "New York"; "North Carolina";
     "North Dakota"; "Ohio"; "Oklahoma"; "Oregon"; "Pennsylvania"; "Rhode Island";
     "South Carolina"; "South Dakota"; "Tennessee"; "Texas"; "Utah"; "Vermont"; "Virginia";
     "Washington"; "West Virginia"; "Wisconsin"; "Wyoming" |]

let words =
  [| "auction"; "vintage"; "rare"; "mint"; "condition"; "original"; "box"; "signed";
     "limited"; "edition"; "antique"; "restored"; "working"; "collector"; "estate"; "lot";
     "shipping"; "included"; "bronze"; "ceramic"; "walnut"; "brass"; "engraved"; "handmade";
     "pristine"; "catalogue"; "numbered"; "certificate"; "provenance"; "gallery" |]

let item_nouns =
  [| "bike"; "teapot"; "lamp"; "clock"; "radio"; "camera"; "violin"; "atlas"; "rug";
     "mirror"; "chair"; "vase"; "stamp"; "coin"; "print" |]

let adjectives =
  [| "rusty"; "gilded"; "tiny"; "grand"; "blue"; "carved"; "woven"; "etched"; "antique";
     "modern" |]

(* ---- generation ---- *)

open Xml.Tree

let text_block rng n_words =
  let buf = Buffer.create (n_words * 8) in
  for i = 0 to n_words - 1 do
    if i > 0 then Buffer.add_char buf ' ';
    Buffer.add_string buf (Prng.choice rng words)
  done;
  Buffer.contents buf

let person rng ~index ~with_address =
  let name =
    if index = 0 then "Yung Flach"
    else Prng.choice rng first_names ^ " " ^ Prng.choice rng last_names
  in
  let email =
    Printf.sprintf "%s@example%d.org"
      (String.map (function ' ' -> '.' | c -> c) name)
      (Prng.int rng 100)
  in
  let address =
    if not with_address then []
    else begin
      let base =
        [ E ("street", [], [ D (Printf.sprintf "%d %s" (Prng.range rng 1 99) (Prng.choice rng streets)) ]);
          E ("city", [], [ D (Prng.choice rng cities) ]);
          E ("country", [], [ D (Prng.choice rng countries) ]) ]
      in
      let province =
        (* person 0 is pinned to Vermont so benchmark query Q5 always has
           matches at every scale *)
        if index = 0 then [ E ("province", [], [ D "Vermont" ]) ]
        else if Prng.chance rng 0.35 then
          [ E ("province", [], [ D (Prng.choice rng provinces) ]) ]
        else []
      in
      let zip = [ E ("zipcode", [], [ D (string_of_int (Prng.range rng 10 99999)) ]) ] in
      [ E ("address", [], base @ province @ zip) ]
    end
  in
  let watches =
    if Prng.chance rng 0.55 then
      let n = Prng.range rng 1 4 in
      [ E ("watches", [],
           List.init n (fun _ ->
               E ("watch", [ ("open_auction", Printf.sprintf "open_auction%d" (Prng.int rng 5000)) ], []))) ]
    else []
  in
  let profile =
    if Prng.chance rng 0.4 then
      [ E ("profile", [ ("income", Printf.sprintf "%d.%02d" (Prng.range rng 9 120) (Prng.int rng 100)) ],
           [ E ("interest", [ ("category", Printf.sprintf "category%d" (Prng.int rng 100)) ], []);
             E ("education", [], [ D "Graduate School" ]) ]) ]
    else []
  in
  E ( "person",
      [ ("id", Printf.sprintf "person%d" index) ],
      [ E ("name", [], [ D name ]); E ("emailaddress", [], [ D email ]) ]
      @ address @ profile @ watches )

let item rng ~index ~region_size =
  let name = Prng.choice rng adjectives ^ " " ^ Prng.choice rng item_nouns in
  E ( "item",
      [ ("id", Printf.sprintf "item%d" index) ],
      [ E ("location", [], [ D (Prng.choice rng countries) ]);
        E ("quantity", [], [ D (string_of_int (Prng.range rng 1 9)) ]);
        E ("name", [], [ D name ]);
        E ("payment", [], [ D "Creditcard" ]);
        E ("description", [], [ E ("text", [], [ D (text_block rng region_size) ]) ]);
        E ("shipping", [], [ D "Will ship internationally" ]) ] )

let category rng ~index =
  E ( "category",
      [ ("id", Printf.sprintf "category%d" index) ],
      [ E ("name", [], [ D (Prng.choice rng words) ]);
        E ("description", [], [ E ("text", [], [ D (text_block rng 80) ]) ]) ] )

let price_string rng = Printf.sprintf "%d.%02d" (Prng.range rng 1 400) (Prng.int rng 100)

let open_auction rng ~index ~items =
  let bidders = Prng.range rng 0 3 in
  E ( "open_auction",
      [ ("id", Printf.sprintf "open_auction%d" index) ],
      [ E ("initial", [], [ D (price_string rng) ]) ]
      @ List.init bidders (fun _ ->
            E ( "bidder", [],
                [ E ("date", [], [ D (Printf.sprintf "%02d/%02d/2001" (Prng.range rng 1 12) (Prng.range rng 1 28)) ]);
                  E ("increase", [], [ D (price_string rng) ]) ] ))
      @ [ E ("current", [], [ D (price_string rng) ]);
          E ("itemref", [ ("item", Printf.sprintf "item%d" (Prng.int rng (max items 1))) ], []);
          E ("seller", [ ("person", Printf.sprintf "person%d" (Prng.int rng 5000)) ], []);
          E ("annotation", [], [ E ("description", [], [ E ("text", [], [ D (text_block rng 140) ]) ]) ]);
          E ("quantity", [], [ D (string_of_int (Prng.range rng 1 5)) ]);
          E ("type", [], [ D "Regular" ]);
          E ("interval", [],
             [ E ("start", [], [ D "01/01/2001" ]); E ("end", [], [ D "12/31/2001" ]) ]) ] )

let closed_auction rng ~index ~items =
  ignore index;
  E ( "closed_auction", [],
      [ E ("seller", [ ("person", Printf.sprintf "person%d" (Prng.int rng 5000)) ], []);
        E ("buyer", [ ("person", Printf.sprintf "person%d" (Prng.int rng 5000)) ], []);
        E ("itemref", [ ("item", Printf.sprintf "item%d" (Prng.int rng (max items 1))) ], []);
        E ("price", [], [ D (price_string rng) ]);
        E ("date", [], [ D (Printf.sprintf "%02d/%02d/2001" (Prng.range rng 1 12) (Prng.range rng 1 28)) ]);
        E ("quantity", [], [ D (string_of_int (Prng.range rng 1 5)) ]);
        E ("type", [], [ D "Regular" ]);
        E ("annotation", [], [ E ("description", [], [ E ("text", [], [ D (text_block rng 110) ]) ]) ]) ] )

let generate ?(seed = 42L) megabytes =
  let c = plan ~megabytes in
  let rng = Prng.create seed in
  (* deterministic address assignment: exactly [c.addresses] persons get
     an address, spread evenly so early and late persons both have them *)
  let has_address index =
    (* Bresenham spread of exactly [c.addresses] addresses over the
       persons; index 0 always qualifies (Yung Flach keeps Q5 satisfiable) *)
    c.persons > 0 && index * c.addresses mod c.persons < c.addresses
  in
  let regions =
    let region name lo hi =
      E (name, [], List.init (max 0 (hi - lo)) (fun i -> item rng ~index:(lo + i) ~region_size:(Prng.range rng 260 420)))
    in
    let half = c.items / 2 in
    E ("regions", [], [ region "namerica" 0 half; region "europe" half c.items ])
  in
  let categories =
    E ("categories", [], List.init c.categories (fun i -> category rng ~index:i))
  in
  let people =
    E ("people", [], List.init c.persons (fun i -> person rng ~index:i ~with_address:(has_address i)))
  in
  let opens =
    E ("open_auctions", [], List.init c.open_auctions (fun i -> open_auction rng ~index:i ~items:c.items))
  in
  let closeds =
    E ("closed_auctions", [], List.init c.closed_auctions (fun i -> closed_auction rng ~index:i ~items:c.items))
  in
  document [ E ("site", [], [ regions; categories; people; opens; closeds ]) ]

let generate_string ?seed megabytes = Xml.Writer.to_string (generate ?seed megabytes)

let load ?seed ?(name = "auction.xml") store megabytes =
  Mass.Store.load store ~name (generate ?seed megabytes)
