let collect cursor =
  let rec go acc = match cursor () with Some k -> go (k :: acc) | None -> List.rev acc in
  go []

module Space = struct
  type t = Store.t
  type node = Flex.t

  let compare = Flex.compare
  let select store axis test key = collect (Store.axis_cursor store axis test key)
  let string_value = Store.string_value

  let name store key =
    match Store.get store key with Some r -> r.Record.name | None -> ""
end

module E = Xpath.Eval.Make (Space)
